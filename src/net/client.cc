#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace distperm {
namespace net {

namespace {
util::Status IoError(const std::string& what) {
  return util::Status::IoError("net: " + what + ": " +
                               std::strerror(errno));
}

void SetSocketTimeout(int fd, int option, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

/// connect(2) with a deadline: non-blocking connect, poll for
/// writability, then SO_ERROR tells whether the handshake succeeded.
util::Status ConnectWithTimeout(int fd, const sockaddr_in& address,
                                int timeout_ms) {
  if (timeout_ms <= 0) {
    if (connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
      return IoError("connect");
    }
    return util::Status::OK();
  }
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return IoError("fcntl");
  }
  int rc = connect(fd, reinterpret_cast<const sockaddr*>(&address),
                   sizeof(address));
  if (rc != 0 && errno != EINPROGRESS) return IoError("connect");
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    do {
      rc = poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return IoError("poll");
    if (rc == 0) {
      return util::Status::DeadlineExceeded(
          "net: connect timed out after " + std::to_string(timeout_ms) +
          " ms");
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      return IoError("getsockopt");
    }
    if (so_error != 0) {
      return util::Status::IoError("net: connect: " +
                                   std::string(std::strerror(so_error)));
    }
  }
  if (fcntl(fd, F_SETFL, flags) != 0) return IoError("fcntl");
  return util::Status::OK();
}
}  // namespace

util::Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& host, uint16_t port, const Options& options) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &address.sin_addr) != 1) {
    return util::Status::InvalidArgument(
        "net: host must be a numeric IPv4 address or \"localhost\", got "
        "\"" + host + "\"");
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return IoError("socket");
  util::Status connected =
      ConnectWithTimeout(fd, address, options.connect_timeout_ms);
  if (!connected.ok()) {
    close(fd);
    return connected;
  }
  const int enable = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  SetSocketTimeout(fd, SO_RCVTIMEO, options.recv_timeout_ms);
  SetSocketTimeout(fd, SO_SNDTIMEO, options.send_timeout_ms);
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() { close(fd_); }

util::Status Client::Ping() {
  DP_RETURN_IF_ERROR(SendFrame(MessageType::kPing, std::string()));
  auto frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame.value().first != MessageType::kPong) {
    return UnexpectedFrame(frame.value());
  }
  return util::Status::OK();
}

util::Result<WireStatus> Client::Remove(uint64_t id) {
  std::string payload;
  EncodeRemoveRequest(&payload, id);
  DP_RETURN_IF_ERROR(SendFrame(MessageType::kRemove, payload));
  auto frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame.value().first != MessageType::kRemoveResult) {
    return UnexpectedFrame(frame.value());
  }
  const std::string& bytes = frame.value().second;
  return DecodeWireStatus(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size());
}

util::Status Client::SendFrame(MessageType type,
                               const std::string& payload) {
  return SendRaw(EncodeFrame(type, payload));
}

util::Status Client::SendRaw(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = send(fd_, bytes.data() + sent, bytes.size() - sent,
                           MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return util::Status::DeadlineExceeded("net: send timed out");
    }
    return IoError("send");
  }
  return util::Status::OK();
}

util::Result<std::pair<MessageType, std::string>> Client::ReadFrame() {
  for (;;) {
    FrameView view;
    size_t frame_size = 0;
    util::Status error;
    const FrameParse parse = ParseFrame(
        reinterpret_cast<const uint8_t*>(buffer_.data()) + consumed_,
        buffer_.size() - consumed_, &view, &frame_size, &error);
    if (parse == FrameParse::kError) return error;
    if (parse == FrameParse::kComplete) {
      std::pair<MessageType, std::string> frame(
          view.type,
          std::string(reinterpret_cast<const char*>(view.payload),
                      view.payload_size));
      consumed_ += frame_size;
      if (consumed_ == buffer_.size()) {
        buffer_.clear();
        consumed_ = 0;
      }
      return frame;
    }
    // Compact before growing: the unparsed tail (at most one partial
    // frame) moves to the front so the buffer never accumulates dead
    // prefix across recv calls.
    if (consumed_ > 0) {
      buffer_.erase(0, consumed_);
      consumed_ = 0;
    }
    char chunk[65536];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return util::Status::IoError("net: connection closed by peer");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // The buffered prefix (possibly mid-frame) is kept; a later
      // ReadFrame resumes exactly where the stream paused.
      return util::Status::DeadlineExceeded("net: recv timed out");
    }
    return IoError("recv");
  }
}

util::Result<WireSearchResponse> Client::ReadSearchResponse() {
  auto frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame.value().first != MessageType::kSearchResult) {
    return UnexpectedFrame(frame.value());
  }
  const std::string& bytes = frame.value().second;
  return DecodeSearchResponse(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
}

util::Status Client::UnexpectedFrame(
    const std::pair<MessageType, std::string>& frame) {
  if (frame.first == MessageType::kError) {
    auto status = DecodeWireStatus(
        reinterpret_cast<const uint8_t*>(frame.second.data()),
        frame.second.size());
    if (status.ok()) {
      return util::Status::InvalidArgument(
          "net: server rejected the stream (" +
          std::string(WireCodeName(status.value().code)) + ": " +
          status.value().message + ")");
    }
  }
  return util::Status::Internal(
      "net: unexpected frame type " +
      std::to_string(static_cast<int>(frame.first)));
}

}  // namespace net
}  // namespace distperm
