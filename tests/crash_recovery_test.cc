// Crash recovery with a real process kill.
//
// The test forks a writer child that opens a durable store
// (fsync=always), inserts a deterministic stream of points, and
// compacts periodically, signalling the parent over a pipe right
// before each compaction.  The parent SIGKILLs the child on one of
// those signals — so the kill lands in or around a compaction, the
// hardest window (tmp snapshot write, WAL rotation, generation swap,
// old-file retirement) — then reopens the directory and requires that
// the recovered store is exactly the seed data plus a prefix of the
// insert stream, and answers queries fingerprint-identically to a
// fresh in-memory build over that same prefix.
//
// Which compaction triggers the kill rotates across invocations, so
// CI's `--gtest_repeat=20` loop sweeps the kill point through
// different phases of the rotation protocol.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "dataset/vector_gen.h"
#include "engine/live_database.h"
#include "engine/query.h"
#include "metric/lp.h"
#include "storage/env.h"
#include "util/rng.h"

namespace distperm {
namespace engine {
namespace {

using metric::Vector;

#if defined(__SANITIZE_THREAD__)
constexpr bool kForkUnsafe = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kForkUnsafe = true;
#else
constexpr bool kForkUnsafe = false;
#endif
#else
constexpr bool kForkUnsafe = false;
#endif

constexpr size_t kBaseCount = 80;
constexpr size_t kStreamCount = 120;
constexpr size_t kInsertsPerCompact = 25;
constexpr uint64_t kSeed = 97;
const char kSpecTail[] = ",wal_dir=";

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

std::vector<Vector> BaseData() {
  util::Rng rng(181);
  return dataset::UniformCube(kBaseCount, 3, &rng);
}

std::vector<Vector> StreamData() {
  util::Rng rng(182);
  return dataset::UniformCube(kStreamCount, 3, &rng);
}

std::string StoreSpec(const std::string& dir) {
  return std::string("vp-tree:fsync=always") + kSpecTail + dir;
}

/// The child's whole life.  No gtest here: any failure is an abnormal
/// exit code the parent turns into a test failure.
[[noreturn]] void WriterChild(const std::string& dir, int signal_fd) {
  auto live = LiveDatabase<Vector>::Open(BaseData(), L2(), 2,
                                         StoreSpec(dir), kSeed);
  if (!live.ok()) _exit(2);
  const std::vector<Vector> stream = StreamData();
  for (size_t i = 0; i < stream.size(); ++i) {
    if (!live.value()->Insert(stream[i]).ok()) _exit(3);
    if ((i + 1) % kInsertsPerCompact == 0) {
      const char byte = 'c';
      if (::write(signal_fd, &byte, 1) != 1) _exit(4);
      if (!live.value()->Compact().ok()) _exit(5);
    }
  }
  _exit(0);
}

TEST(CrashRecovery, KillMidCompactionRecoversAckedPrefix) {
  if (kForkUnsafe) {
    GTEST_SKIP() << "fork-based crash test is not run under TSan";
  }
  storage::Env* env = storage::Env::Default();
  const std::string dir = ::testing::TempDir() + "/crash_recovery_store";
  ASSERT_TRUE(env->CreateDir(dir).ok());
  auto stale = env->ListDir(dir);
  ASSERT_TRUE(stale.ok());
  for (const std::string& file : stale.value()) {
    ASSERT_TRUE(env->DeleteFile(dir + "/" + file).ok());
  }

  // Rotate the kill point across repeated invocations (gtest_repeat
  // keeps static state), so the SIGKILL sweeps the rotation protocol.
  static int invocation = 0;
  const int kill_on_signal = invocation++ % 4 + 1;

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(pipe_fds[0]);
    WriterChild(dir, pipe_fds[1]);  // never returns
  }
  ::close(pipe_fds[1]);

  int signals_seen = 0;
  char byte;
  while (signals_seen < kill_on_signal &&
         ::read(pipe_fds[0], &byte, 1) == 1) {
    ++signals_seen;
  }
  ::close(pipe_fds[0]);
  // Kill as the child enters (or is inside) its compaction.  If the
  // child already finished the whole stream, the kill is a no-op and
  // recovery must produce the complete dataset — also a valid case.
  ::kill(child, SIGKILL);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  if (WIFEXITED(wait_status)) {
    ASSERT_EQ(WEXITSTATUS(wait_status), 0)
        << "writer child failed before the kill";
  } else {
    ASSERT_TRUE(WIFSIGNALED(wait_status));
    ASSERT_EQ(WTERMSIG(wait_status), SIGKILL);
  }

  // Reboot: recover the store from disk alone.
  auto live = LiveDatabase<Vector>::Open({}, L2(), 2, StoreSpec(dir), kSeed);
  ASSERT_TRUE(live.ok()) << live.status();
  const std::vector<Vector> recovered = live.value()->Pin().Materialize();

  // fsync=always and no removes: the recovered view must be exactly
  // the base data followed by a prefix of the insert stream.
  const std::vector<Vector> base = BaseData();
  const std::vector<Vector> stream = StreamData();
  ASSERT_GE(recovered.size(), base.size());
  ASSERT_LE(recovered.size(), base.size() + stream.size());
  for (size_t i = 0; i < base.size(); ++i) {
    ASSERT_EQ(recovered[i], base[i]) << "base point " << i;
  }
  const size_t acked = recovered.size() - base.size();
  ASSERT_GE(acked, kill_on_signal * kInsertsPerCompact)
      << "inserts acked before the signalled compaction must survive";
  for (size_t i = 0; i < acked; ++i) {
    ASSERT_EQ(recovered[base.size() + i], stream[i]) << "stream point " << i;
  }

  // And the recovered store answers exactly like a fresh build over
  // the recovered dataset (vp-tree is exact, ids align: recovery
  // preserves the insert order, so id i is recovered[i] in both).
  auto fresh = LiveDatabase<Vector>::Open(recovered, L2(), 2, "vp-tree",
                                          kSeed);
  ASSERT_TRUE(fresh.ok());
  std::vector<QuerySpec<Vector>> batch;
  util::Rng qrng(183);
  for (int q = 0; q < 4; ++q) {
    batch.push_back(QuerySpec<Vector>::Knn(
        {qrng.NextDouble(), qrng.NextDouble(), qrng.NextDouble()}, 9));
  }
  auto got = live.value()->RunBatch(batch);
  auto want = fresh.value()->RunBatch(batch);
  ASSERT_TRUE(got.all_ok());
  ASSERT_TRUE(want.all_ok());
  for (size_t q = 0; q < batch.size(); ++q) {
    std::vector<std::pair<double, size_t>> got_pairs, want_pairs;
    for (const auto& r : got.results[q]) got_pairs.emplace_back(r.distance, r.id);
    for (const auto& r : want.results[q]) want_pairs.emplace_back(r.distance, r.id);
    std::sort(got_pairs.begin(), got_pairs.end());
    std::sort(want_pairs.begin(), want_pairs.end());
    EXPECT_EQ(got_pairs, want_pairs) << "query " << q;
  }
}

}  // namespace
}  // namespace engine
}  // namespace distperm
