// Vantage-point tree (Uhlmann 1991; Yianilos 1993).
//
// One of the tree-structured baselines the paper's introduction cites:
// each node holds a vantage point and the median distance to it; the
// inside/outside children are pruned with the triangle inequality.

#ifndef DISTPERM_INDEX_VP_TREE_H_
#define DISTPERM_INDEX_VP_TREE_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "index/index.h"
#include "util/rng.h"

namespace distperm {
namespace index {

/// Classic VP-tree with exact range and kNN queries.
template <typename P>
class VpTreeIndex : public SearchIndex<P> {
 public:
  using SearchIndex<P>::data_;

  VpTreeIndex(std::vector<P> data, metric::Metric<P> metric,
              util::Rng* rng)
      : SearchIndex<P>(std::move(data), std::move(metric)) {
    std::vector<size_t> ids(data_.size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    root_ = Build(ids, rng);
  }

  std::string name() const override { return "vp-tree"; }

  uint64_t IndexBits() const override {
    // One vantage id, one radius, two child pointers per node.
    return node_count_ * (sizeof(size_t) + sizeof(double) +
                          2 * sizeof(void*)) * 8;
  }

 protected:
  void SearchImpl(const SearchRequest<P>& request,
                  SearchContext* context) const override {
    SearchNode(root_.get(), request.point, context);
  }

 private:
  struct Node {
    size_t vantage;
    double median = 0.0;
    std::unique_ptr<Node> inside;
    std::unique_ptr<Node> outside;
  };

  std::unique_ptr<Node> Build(std::vector<size_t>& ids, util::Rng* rng) {
    if (ids.empty()) return nullptr;
    ++node_count_;
    auto node = std::make_unique<Node>();
    size_t pick = static_cast<size_t>(rng->NextBounded(ids.size()));
    std::swap(ids[pick], ids.back());
    node->vantage = ids.back();
    ids.pop_back();
    if (ids.empty()) return node;

    std::vector<std::pair<double, size_t>> by_distance;
    by_distance.reserve(ids.size());
    for (size_t id : ids) {
      by_distance.emplace_back(
          this->BuildDist(data_[node->vantage], data_[id]), id);
    }
    size_t half = by_distance.size() / 2;
    std::nth_element(by_distance.begin(), by_distance.begin() + half,
                     by_distance.end());
    node->median = by_distance[half].first;
    std::vector<size_t> inside_ids, outside_ids;
    for (const auto& [d, id] : by_distance) {
      (d < node->median ? inside_ids : outside_ids).push_back(id);
    }
    node->inside = Build(inside_ids, rng);
    node->outside = Build(outside_ids, rng);
    return node;
  }

  void SearchNode(const Node* node, const P& query,
                  SearchContext* context) const {
    if (node == nullptr || context->StopAfterBudget()) return;
    double d = this->QueryDist(data_[node->vantage], query,
                               context->stats());
    context->Emit(node->vantage, d);
    // Inside child holds points with distance-to-vantage < median.
    if (d - context->Radius() < node->median) {
      SearchNode(node->inside.get(), query, context);
    }
    if (d + context->Radius() >= node->median) {
      SearchNode(node->outside.get(), query, context);
    }
  }

  std::unique_ptr<Node> root_;
  uint64_t node_count_ = 0;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_VP_TREE_H_
