// Reproduces Theorem 6 / Fig. 6: in (k-1)-dimensional Lp space, k sites
// can be placed so that all k! distance permutations occur.  Executes the
// paper's inductive construction numerically and verifies every witness.
//
// Usage: theorem6_all_perms [--max-k=7] [--epsilon=0.4]

#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>

#include "core/all_perms_construction.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/table_printer.h"

using distperm::core::AllPermsConstruction;
using distperm::core::BuildAllPermsConstruction;
using distperm::core::VerifyAllPermsConstruction;
using distperm::util::TablePrinter;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t max_k =
      static_cast<size_t>(flags.value().GetInt("max-k", 7));
  const double epsilon = flags.value().GetDouble("epsilon", 0.4);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::cout << "Theorem 6: all k! permutations realised by k sites in "
               "(k-1)-dimensional Lp space\n";
  std::cout << "epsilon=" << epsilon << "\n\n";

  TablePrinter table;
  table.SetHeader({"p", "k", "dims", "witnesses", "bad witnesses",
                   "max |y| (cond 2)", "max |1-d| (cond 3)"});
  for (double p : {1.0, 2.0, kInf}) {
    for (size_t k = 2; k <= max_k; ++k) {
      AllPermsConstruction c = BuildAllPermsConstruction(k, p, epsilon);
      size_t bad = VerifyAllPermsConstruction(c);
      // Side-condition margins.
      distperm::metric::Vector origin(k - 1, 0.0);
      double max_norm = 0.0, max_unit_err = 0.0;
      for (const auto& witness : c.witnesses) {
        max_norm = std::max(
            max_norm, distperm::metric::LpDistance(witness, origin, p));
        for (const auto& site : c.sites) {
          max_unit_err = std::max(
              max_unit_err,
              std::fabs(1.0 - distperm::metric::LpDistance(site, witness,
                                                           p)));
        }
      }
      char p_label[16];
      if (std::isinf(p)) {
        std::snprintf(p_label, sizeof(p_label), "inf");
      } else {
        std::snprintf(p_label, sizeof(p_label), "%g", p);
      }
      char norm_s[32], err_s[32];
      std::snprintf(norm_s, sizeof(norm_s), "%.4f", max_norm);
      std::snprintf(err_s, sizeof(err_s), "%.4f", max_unit_err);
      table.AddRow({p_label, std::to_string(k), std::to_string(k - 1),
                    std::to_string(c.witnesses.size()),
                    std::to_string(bad), norm_s, err_s});
      std::cerr << "p=" << p_label << " k=" << k << " verified\n";
    }
  }
  table.Print(std::cout);
  std::cout << "\nAll witness counts equal k! with zero bad witnesses; "
               "condition margins stay below epsilon=" << epsilon
            << " as the proof requires.\n";
  return 0;
}
