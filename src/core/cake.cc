#include "core/cake.h"

#include <vector>

#include "util/status.h"

namespace distperm {
namespace core {

using util::BigUint;

BigUint CakeCount(int dimension, uint64_t cuts) {
  DP_CHECK(dimension >= 0);
  BigUint total(0);
  for (int i = 0; i <= dimension; ++i) {
    total += BigUint::Binomial(cuts, static_cast<uint64_t>(i));
  }
  return total;
}

BigUint CakeCountByRecurrence(int dimension, uint64_t cuts) {
  DP_CHECK(dimension >= 0);
  // Row for d = 0: S_0(m) = 1 for all m.
  std::vector<BigUint> row(cuts + 1, BigUint(1));
  for (int d = 1; d <= dimension; ++d) {
    std::vector<BigUint> next(cuts + 1);
    next[0] = BigUint(1);
    for (uint64_t m = 1; m <= cuts; ++m) {
      next[m] = next[m - 1] + row[m - 1];
    }
    row = std::move(next);
  }
  return row[cuts];
}

uint64_t CakeCount64(int dimension, uint64_t cuts) {
  return CakeCount(dimension, cuts).ToUint64();
}

}  // namespace core
}  // namespace distperm
