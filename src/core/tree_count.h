// Distance permutations in tree metric spaces (paper Section 3).
//
// Theorem 4: k sites in a (possibly weighted) tree metric generate at
// most C(k,2) + 1 distinct distance permutations, because each site pair
// (i, j) has exactly one "split edge" on the i-j path across which the
// comparison d(x_i, z) <= d(x_j, z) flips, and removing all split edges
// leaves at most C(k,2) + 1 components, each with a constant permutation.
//
// Corollary 5: the bound is achieved on a path of 2^(k-1) unit edges with
// sites at vertices 0, 2, 4, 8, ..., 2^(k-1).
//
// This module computes the exact count two independent ways (brute-force
// per-vertex permutations, and split-edge components) so each validates
// the other.

#ifndef DISTPERM_CORE_TREE_COUNT_H_
#define DISTPERM_CORE_TREE_COUNT_H_

#include <cstddef>
#include <vector>

#include "core/distance_permutation.h"
#include "metric/tree_metric.h"
#include "util/big_uint.h"

namespace distperm {
namespace core {

/// The Theorem 4 bound: C(k,2) + 1.
uint64_t TreePermutationBound(size_t sites);

/// Exact count of distinct distance permutations over all vertices of
/// `tree`, brute force: k single-source sweeps then one permutation per
/// vertex.  O(k n + n k log k) time.
size_t CountTreePermutationsBruteForce(const metric::WeightedTree& tree,
                                       const std::vector<size_t>& sites);

/// Exact count via the Theorem 4 argument: number of distinct split
/// edges + 1, where the split edge of a site pair (i, j) is the unique
/// edge on the i-j path whose endpoints disagree on the tie-broken
/// comparison "site i is closer than site j".
size_t CountTreePermutationsBySplitEdges(const metric::WeightedTree& tree,
                                         const std::vector<size_t>& sites);

/// All distinct permutations occurring in the tree, sorted by Lehmer
/// rank.  Requires k <= 20.
std::vector<Permutation> EnumerateTreePermutations(
    const metric::WeightedTree& tree, const std::vector<size_t>& sites);

/// The Corollary 5 extremal configuration: a path of 2^(k-1) unit edges
/// with sites at vertices 0, 2, 4, 8, ..., 2^(k-1).  Requires 1 <= k and
/// k small enough that the path fits in memory (k <= 24 or so).
struct PathConstruction {
  metric::WeightedTree tree;
  std::vector<size_t> sites;
};
PathConstruction Corollary5Construction(size_t sites);

}  // namespace core
}  // namespace distperm

#endif  // DISTPERM_CORE_TREE_COUNT_H_
