#include "core/all_perms_construction.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <tuple>

#include "core/perm_codec.h"
#include "metric/lp.h"

namespace distperm {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t Factorial(size_t n) {
  uint64_t f = 1;
  for (size_t i = 2; i <= n; ++i) f *= i;
  return f;
}

TEST(AllPerms, BaseCaseTwoSites) {
  auto construction = BuildAllPermsConstruction(2, 2.0);
  ASSERT_EQ(construction.sites.size(), 2u);
  ASSERT_EQ(construction.witnesses.size(), 2u);
  EXPECT_EQ(construction.sites[0], (metric::Vector{-1.0}));
  EXPECT_EQ(construction.sites[1], (metric::Vector{1.0}));
  EXPECT_EQ(VerifyAllPermsConstruction(construction), 0u);
}

class AllPermsSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(AllPermsSweepTest, EveryPermutationRealised) {
  auto [k, p] = GetParam();
  auto construction = BuildAllPermsConstruction(k, p);
  ASSERT_EQ(construction.sites.size(), k);
  ASSERT_EQ(construction.witnesses.size(), Factorial(k));
  // Dimensions: k sites live in k-1 dimensions (Theorem 6).
  for (const auto& site : construction.sites) {
    EXPECT_EQ(site.size(), k - 1);
  }
  EXPECT_EQ(VerifyAllPermsConstruction(construction), 0u)
      << "k=" << k << " p=" << p;
}

TEST_P(AllPermsSweepTest, WitnessPermutationsAreAllDistinct) {
  auto [k, p] = GetParam();
  auto construction = BuildAllPermsConstruction(k, p);
  std::set<uint64_t> ranks;
  for (uint64_t rank = 0; rank < construction.witnesses.size(); ++rank) {
    std::vector<double> distances(k);
    for (size_t i = 0; i < k; ++i) {
      distances[i] = metric::LpDistance(construction.sites[i],
                                        construction.witnesses[rank], p);
    }
    ranks.insert(RankPermutation(PermutationFromDistances(distances)));
  }
  EXPECT_EQ(ranks.size(), Factorial(k));
}

INSTANTIATE_TEST_SUITE_P(
    KAndMetric, AllPermsSweepTest,
    ::testing::Combine(::testing::Values<size_t>(2, 3, 4, 5),
                       ::testing::Values(1.0, 2.0, 3.0, kInf)));

TEST(AllPerms, SixSitesEuclidean) {
  auto construction = BuildAllPermsConstruction(6, 2.0);
  EXPECT_EQ(construction.witnesses.size(), 720u);
  EXPECT_EQ(VerifyAllPermsConstruction(construction), 0u);
}

TEST(AllPerms, NewSiteSitsOnNewAxis) {
  auto construction = BuildAllPermsConstruction(4, 2.0, 0.4);
  const metric::Vector& last_site = construction.sites.back();
  for (size_t i = 0; i + 1 < last_site.size(); ++i) {
    EXPECT_DOUBLE_EQ(last_site[i], 0.0);
  }
  EXPECT_DOUBLE_EQ(last_site.back(), 1.0 + 0.4 / 4.0);
}

TEST(AllPerms, SmallerEpsilonAlsoWorks) {
  auto construction = BuildAllPermsConstruction(4, 1.0, 0.1);
  EXPECT_EQ(VerifyAllPermsConstruction(construction), 0u);
}

}  // namespace
}  // namespace core
}  // namespace distperm
