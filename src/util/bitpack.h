// Bit-level packing for compact index storage.
//
// The storage results in the paper are phrased in bits per point:
// ceil(lg k!) bits for a raw permutation, ceil(lg N) bits for an index into
// a table of the N permutations that actually occur.  BitWriter/BitReader
// realize those layouts so that the storage benchmarks measure real bytes
// rather than formulas.

#ifndef DISTPERM_UTIL_BITPACK_H_
#define DISTPERM_UTIL_BITPACK_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace distperm {
namespace util {

/// Appends variable-width little-endian bit fields to a byte buffer.
class BitWriter {
 public:
  /// Appends the low `width` bits of `value`.  Requires 0 <= width <= 64
  /// and that `value` fits in `width` bits.
  void Write(uint64_t value, int width);

  /// Flushes any partial byte and returns the buffer.  The writer may be
  /// reused afterwards (it restarts empty).
  std::vector<uint8_t> Finish();

  /// Bits written since construction or the last Finish().
  size_t bit_count() const { return bit_count_; }

 private:
  std::vector<uint8_t> bytes_;
  uint64_t pending_ = 0;  // bits not yet flushed, LSB-first
  int pending_bits_ = 0;
  size_t bit_count_ = 0;
};

/// Reads back bit fields written by BitWriter.
class BitReader {
 public:
  /// Wraps `bytes`; the buffer must outlive the reader.
  explicit BitReader(const std::vector<uint8_t>& bytes) : bytes_(&bytes) {}

  /// Reads the next `width` bits.  Fatal if the buffer is exhausted.
  uint64_t Read(int width);

  /// Jumps to an absolute bit offset, enabling O(1) random access into
  /// fixed-width record layouts.  Fatal if the offset lies beyond the
  /// buffer.
  void Seek(size_t bit_offset);

  /// Bits consumed so far.
  size_t position() const { return position_; }

 private:
  const std::vector<uint8_t>* bytes_;
  size_t position_ = 0;
};

/// Number of bits needed to distinguish `count` values (0 for count <= 1).
int BitsFor(uint64_t count);

/// Returns the minimum number of bits to store one of n! permutations,
/// i.e. ceil(lg n!), computed exactly.
int BitsForFactorial(int n);

}  // namespace util
}  // namespace distperm

#endif  // DISTPERM_UTIL_BITPACK_H_
