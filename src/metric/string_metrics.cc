#include "metric/string_metrics.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/status.h"

namespace distperm {
namespace metric {

int LevenshteinDistance(const std::string& a, const std::string& b) {
  const std::string& s = a.size() <= b.size() ? a : b;
  const std::string& t = a.size() <= b.size() ? b : a;
  const size_t m = s.size();
  const size_t n = t.size();
  if (m == 0) return static_cast<int>(n);

  // Two-row DP over the shorter string.
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    const char ti = t[i - 1];
    for (size_t j = 1; j <= m; ++j) {
      int subst = prev[j - 1] + (s[j - 1] == ti ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

int LevenshteinDistanceBounded(const std::string& a, const std::string& b,
                               int cutoff) {
  const std::string& s = a.size() <= b.size() ? a : b;
  const std::string& t = a.size() <= b.size() ? b : a;
  const int m = static_cast<int>(s.size());
  const int n = static_cast<int>(t.size());
  if (n - m > cutoff) return cutoff + 1;
  if (m == 0) return n;

  const int kBig = std::numeric_limits<int>::max() / 2;
  std::vector<int> prev(m + 1, kBig), cur(m + 1, kBig);
  for (int j = 0; j <= std::min(m, cutoff); ++j) prev[j] = j;
  for (int i = 1; i <= n; ++i) {
    // Only cells with |i - j| <= cutoff can hold values <= cutoff.
    int lo = std::max(1, i - cutoff);
    int hi = std::min(m, i + cutoff);
    std::fill(cur.begin(), cur.end(), kBig);
    if (lo == 1) cur[0] = i <= cutoff ? i : kBig;
    int row_best = cur[0] == kBig ? kBig : cur[0];
    const char ti = t[i - 1];
    for (int j = lo; j <= hi; ++j) {
      int subst = prev[j - 1] + (s[j - 1] == ti ? 0 : 1);
      int best = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
      cur[j] = best;
      row_best = std::min(row_best, best);
    }
    if (row_best > cutoff) return cutoff + 1;
    std::swap(prev, cur);
  }
  return std::min(prev[m], cutoff + 1);
}

int HammingDistance(const std::string& a, const std::string& b) {
  DP_CHECK_MSG(a.size() == b.size(),
               "Hamming distance requires equal lengths");
  int count = 0;
  for (size_t i = 0; i < a.size(); ++i) count += a[i] != b[i];
  return count;
}

size_t LongestCommonPrefix(const std::string& a, const std::string& b) {
  size_t limit = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

int PrefixDistance(const std::string& a, const std::string& b) {
  size_t lcp = LongestCommonPrefix(a, b);
  return static_cast<int>(a.size() + b.size() - 2 * lcp);
}

}  // namespace metric
}  // namespace distperm
