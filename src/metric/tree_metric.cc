#include "metric/tree_metric.h"

#include <algorithm>
#include <numeric>

namespace distperm {
namespace metric {

using util::Status;

WeightedTree::WeightedTree(size_t vertex_count)
    : adjacency_(vertex_count) {}

Status WeightedTree::AddEdge(size_t u, size_t v, double weight) {
  if (finalized_) return Status::Internal("AddEdge after Finalize");
  if (u >= size() || v >= size()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loop edge");
  if (weight <= 0) return Status::InvalidArgument("non-positive weight");
  edges_.push_back({u, v, weight});
  adjacency_[u].emplace_back(v, weight);
  adjacency_[v].emplace_back(u, weight);
  return Status::OK();
}

Status WeightedTree::Finalize() {
  if (size() == 0) return Status::InvalidArgument("empty tree");
  if (edges_.size() != size() - 1) {
    return Status::InvalidArgument("a tree on n vertices needs n-1 edges");
  }
  Dfs();
  for (uint32_t d : depth_) {
    if (d == UINT32_MAX) {
      return Status::InvalidArgument("edges do not connect the tree");
    }
  }
  finalized_ = true;
  return Status::OK();
}

void WeightedTree::Dfs() {
  const size_t n = size();
  log_levels_ = 1;
  while ((size_t{1} << log_levels_) < n) ++log_levels_;
  up_.assign(log_levels_, std::vector<uint32_t>(n, 0));
  depth_.assign(n, UINT32_MAX);
  weighted_depth_.assign(n, 0.0);

  // Iterative DFS from root 0.
  std::vector<size_t> stack = {0};
  depth_[0] = 0;
  up_[0][0] = 0;
  while (!stack.empty()) {
    size_t v = stack.back();
    stack.pop_back();
    for (const auto& [w, weight] : adjacency_[v]) {
      if (depth_[w] != UINT32_MAX) continue;
      depth_[w] = depth_[v] + 1;
      weighted_depth_[w] = weighted_depth_[v] + weight;
      up_[0][w] = static_cast<uint32_t>(v);
      stack.push_back(w);
    }
  }
  for (int j = 1; j < log_levels_; ++j) {
    for (size_t v = 0; v < n; ++v) {
      up_[j][v] = up_[j - 1][up_[j - 1][v]];
    }
  }
}

size_t WeightedTree::Lca(size_t u, size_t v) const {
  DP_CHECK(finalized_);
  if (depth_[u] < depth_[v]) std::swap(u, v);
  uint32_t diff = depth_[u] - depth_[v];
  for (int j = 0; j < log_levels_; ++j) {
    if (diff & (1u << j)) u = up_[j][u];
  }
  if (u == v) return u;
  for (int j = log_levels_ - 1; j >= 0; --j) {
    if (up_[j][u] != up_[j][v]) {
      u = up_[j][u];
      v = up_[j][v];
    }
  }
  return up_[0][u];
}

size_t WeightedTree::Parent(size_t v) const {
  DP_CHECK(finalized_);
  return up_[0][v];
}

size_t WeightedTree::Depth(size_t v) const {
  DP_CHECK(finalized_);
  return depth_[v];
}

double WeightedTree::Distance(size_t u, size_t v) const {
  size_t a = Lca(u, v);
  return weighted_depth_[u] + weighted_depth_[v] - 2.0 * weighted_depth_[a];
}

size_t WeightedTree::HopCount(size_t u, size_t v) const {
  size_t a = Lca(u, v);
  return depth_[u] + depth_[v] - 2 * depth_[a];
}

std::vector<double> WeightedTree::DistancesFrom(size_t source) const {
  DP_CHECK(finalized_);
  const size_t n = size();
  std::vector<double> dist(n, -1.0);
  std::vector<size_t> stack = {source};
  dist[source] = 0.0;
  while (!stack.empty()) {
    size_t v = stack.back();
    stack.pop_back();
    for (const auto& [w, weight] : adjacency_[v]) {
      if (dist[w] >= 0.0) continue;
      dist[w] = dist[v] + weight;
      stack.push_back(w);
    }
  }
  return dist;
}

WeightedTree WeightedTree::MakePath(size_t n) {
  WeightedTree tree(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    DP_CHECK(tree.AddEdge(i, i + 1, 1.0).ok());
  }
  DP_CHECK(tree.Finalize().ok());
  return tree;
}

WeightedTree WeightedTree::MakeStar(size_t n) {
  WeightedTree tree(n);
  for (size_t i = 1; i < n; ++i) {
    DP_CHECK(tree.AddEdge(0, i, 1.0).ok());
  }
  DP_CHECK(tree.Finalize().ok());
  return tree;
}

WeightedTree WeightedTree::MakeCompleteBinary(size_t n) {
  WeightedTree tree(n);
  for (size_t i = 1; i < n; ++i) {
    DP_CHECK(tree.AddEdge((i - 1) / 2, i, 1.0).ok());
  }
  DP_CHECK(tree.Finalize().ok());
  return tree;
}

WeightedTree WeightedTree::MakeRandom(size_t n, util::Rng* rng,
                                      double min_weight, double max_weight) {
  DP_CHECK(n >= 1);
  WeightedTree tree(n);
  if (n == 1) {
    DP_CHECK(tree.Finalize().ok());
    return tree;
  }
  auto weight = [&]() {
    return min_weight == max_weight
               ? min_weight
               : rng->NextDouble(min_weight, max_weight);
  };
  if (n == 2) {
    DP_CHECK(tree.AddEdge(0, 1, weight()).ok());
    DP_CHECK(tree.Finalize().ok());
    return tree;
  }
  // Decode a uniformly random Prüfer sequence.
  std::vector<size_t> prufer(n - 2);
  for (auto& p : prufer) p = static_cast<size_t>(rng->NextBounded(n));
  std::vector<int> degree(n, 1);
  for (size_t p : prufer) ++degree[p];
  // Min-heap free of dependencies: simple scan via sorted set emulation.
  std::vector<size_t> leaves;
  for (size_t v = 0; v < n; ++v) {
    if (degree[v] == 1) leaves.push_back(v);
  }
  std::make_heap(leaves.begin(), leaves.end(), std::greater<>());
  for (size_t p : prufer) {
    std::pop_heap(leaves.begin(), leaves.end(), std::greater<>());
    size_t leaf = leaves.back();
    leaves.pop_back();
    DP_CHECK(tree.AddEdge(leaf, p, weight()).ok());
    if (--degree[p] == 1) {
      leaves.push_back(p);
      std::push_heap(leaves.begin(), leaves.end(), std::greater<>());
    }
  }
  std::pop_heap(leaves.begin(), leaves.end(), std::greater<>());
  size_t a = leaves.back();
  leaves.pop_back();
  size_t b = leaves.front();
  DP_CHECK(tree.AddEdge(a, b, weight()).ok());
  DP_CHECK(tree.Finalize().ok());
  return tree;
}

}  // namespace metric
}  // namespace distperm
