// The permutation index of Chavez, Figueroa & Navarro (2005) — the
// "distperm" index the paper instruments for its Section 5 experiments.
//
// Per database point the index stores only the point's distance
// permutation with respect to k sites (bit-packed: ceil(lg k!) bits), or
// optionally just the prefix naming its `prefix_length` closest sites —
// the truncated variant used in practice when k is large.  At query time
// the query's own permutation is computed (k metric evaluations) and
// candidates are verified in increasing Spearman-footrule order;
// reviewing only a fraction f of the database gives the probabilistic
// search of the original paper.  The index also reports the number of
// distinct permutations it stores — the quantity this paper counts — and
// its exact packed storage size.

#ifndef DISTPERM_INDEX_DISTPERM_INDEX_H_
#define DISTPERM_INDEX_DISTPERM_INDEX_H_

#include <algorithm>
#include <atomic>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/distance_permutation.h"
#include "core/perm_codec.h"
#include "core/perm_metrics.h"
#include "index/flat_data_path.h"
#include "index/index.h"
#include "index/pivot_select.h"
#include "index/query_scratch.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace distperm {
namespace index {

/// Permutation (distperm) index.  Range and kNN queries are approximate:
/// they verify the `fraction` of the database whose stored permutations
/// are footrule-closest to the query's permutation.  fraction = 1.0
/// degenerates to an ordered linear scan (exact).
template <typename P>
class DistPermIndex : public SearchIndex<P> {
 public:
  using SearchIndex<P>::data_;

  /// Builds with `site_count` random sites (the paper's protocol) and
  /// the given default verification fraction.  `prefix_length` = 0 (the
  /// default) stores full permutations; a value m in [1, site_count)
  /// stores only each point's m closest sites.
  DistPermIndex(std::vector<P> data, metric::Metric<P> metric,
                size_t site_count, util::Rng* rng, double fraction = 0.1,
                size_t prefix_length = 0)
      : SearchIndex<P>(std::move(data), std::move(metric)),
        flat_(data_, this->metric_),
        fraction_(fraction) {
    DP_CHECK(site_count >= 1 && site_count <= core::kMaxRank64Sites);
    DP_CHECK(fraction > 0.0 && fraction <= 1.0);
    prefix_ = prefix_length == 0 ? site_count
                                 : std::min(prefix_length, site_count);
    std::vector<size_t> site_ids = RandomPivots(data_, site_count, rng);
    sites_.reserve(site_count);
    for (size_t id : site_ids) sites_.push_back(data_[id]);

    // Per-site query contexts for the flat build path (sites_ is fully
    // built above and never reallocates, so the row pointers are
    // stable).
    std::vector<typename FlatDataPath<P>::QueryContext> site_ctx;
    if (flat_.enabled()) {
      site_ctx.reserve(site_count);
      for (const P& site : sites_) site_ctx.push_back(flat_.MakeQuery(site));
    }

    inv_ranks_.assign(data_.size() * site_count, 0);
    std::vector<double> distances(site_count);
    util::BitWriter writer;
    for (size_t i = 0; i < data_.size(); ++i) {
      for (size_t j = 0; j < site_count; ++j) {
        distances[j] =
            flat_.enabled()
                ? flat_.ChargedRowDistance(site_ctx[j], i,
                                           &this->build_count_)
                : this->BuildDist(sites_[j], data_[i]);
      }
      core::Permutation perm =
          prefix_ == site_count
              ? core::PermutationFromDistances(distances)
              : core::PermutationPrefixFromDistances(distances, prefix_);
      PackPermutation(perm, &writer);
      // Invert once at build time: inv_ranks_[i*k + site] is the site's
      // rank in point i's permutation, or prefix_ for sites absent from
      // a truncated prefix.  Footrule at query time is then a single
      // O(k) pass over two rank arrays with no per-pair inversion.
      uint8_t* ranks = &inv_ranks_[i * site_count];
      std::fill(ranks, ranks + site_count, static_cast<uint8_t>(prefix_));
      for (size_t r = 0; r < perm.size(); ++r) {
        ranks[perm[r]] = static_cast<uint8_t>(r);
      }
    }
    packed_bits_ = writer.bit_count();
    packed_ = writer.Finish();
  }

  /// Everything the index keeps besides the data itself — the exact
  /// members search reads.  Exported for snapshot persistence and fed
  /// back through the restore constructor: a restored index answers
  /// bit-identically to the one that exported, because SearchImpl
  /// depends on nothing outside this state.
  struct PackedState {
    std::vector<P> sites;
    size_t prefix = 0;
    double fraction = 0.1;
    std::vector<uint8_t> inv_ranks;
    std::vector<uint8_t> packed;
    uint64_t packed_bits = 0;
  };

  PackedState ExportPackedState() const {
    PackedState state;
    state.sites = sites_;
    state.prefix = prefix_;
    state.fraction = fraction();
    state.inv_ranks = inv_ranks_;
    state.packed = packed_;
    state.packed_bits = packed_bits_;
    return state;
  }

  /// Restores an index from previously exported state without paying
  /// the n x k build-time distance evaluations.  The state must match
  /// `data` (same point count it was exported over); this is checked.
  /// build_distance_computations() reports 0 for a restored index —
  /// restoration computes no distances.
  DistPermIndex(std::vector<P> data, metric::Metric<P> metric,
                PackedState state)
      : SearchIndex<P>(std::move(data), std::move(metric)),
        flat_(data_, this->metric_),
        sites_(std::move(state.sites)),
        prefix_(state.prefix),
        inv_ranks_(std::move(state.inv_ranks)),
        packed_(std::move(state.packed)),
        packed_bits_(state.packed_bits),
        fraction_(state.fraction) {
    DP_CHECK(!sites_.empty() && sites_.size() <= core::kMaxRank64Sites);
    DP_CHECK(prefix_ >= 1 && prefix_ <= sites_.size());
    DP_CHECK(fraction() > 0.0 && fraction() <= 1.0);
    DP_CHECK_MSG(inv_ranks_.size() == data_.size() * sites_.size(),
                 "restored distperm state does not match the data: "
                     << inv_ranks_.size() << " ranks for " << data_.size()
                     << " points x " << sites_.size() << " sites");
  }

  std::string name() const override {
    return prefix_ == sites_.size() ? "distperm" : "distperm-prefix";
  }

  /// Exact packed size of the stored permutations in bits.
  uint64_t IndexBits() const override { return packed_bits_; }

  /// Number of distinct (possibly truncated) permutations stored — the
  /// paper's counted quantity.  Decoded from the packed buffer: the
  /// bit-packed records and the inverted rank table are the only
  /// permutation storage the index keeps.
  size_t DistinctPermutationCount() const {
    std::unordered_set<uint64_t> seen;
    for (size_t i = 0; i < data_.size(); ++i) {
      seen.insert(PrefixKey(DecodePackedPermutation(i)));
    }
    return seen.size();
  }

  /// The stored permutation (or prefix) of database point i.
  core::Permutation StoredPermutation(size_t i) const {
    return DecodePackedPermutation(i);
  }

  /// Decodes point i's permutation from the bit-packed buffer.  Records
  /// are fixed-width, so the reader seeks straight to record i in O(1).
  core::Permutation DecodePackedPermutation(size_t i) const {
    util::BitReader reader(packed_);
    if (prefix_ == sites_.size()) {
      const int width =
          util::BitsForFactorial(static_cast<int>(sites_.size()));
      reader.Seek(i * static_cast<size_t>(width));
      return core::UnrankPermutation(reader.Read(width), sites_.size());
    }
    const int width = util::BitsFor(sites_.size());
    reader.Seek(i * prefix_ * static_cast<size_t>(width));
    core::Permutation perm(prefix_);
    for (size_t r = 0; r < prefix_; ++r) {
      perm[r] = static_cast<uint8_t>(reader.Read(width));
    }
    return perm;
  }

  /// The sites used by the index.
  const std::vector<P>& sites() const { return sites_; }

  /// Stored prefix length (equals sites().size() for full permutations).
  size_t prefix_length() const { return prefix_; }

  /// Default fraction of the database verified per query.  Stored in an
  /// atomic so the engine can retune it while queries are in flight.
  double fraction() const {
    return fraction_.load(std::memory_order_relaxed);
  }
  void set_fraction(double fraction) {
    DP_CHECK(fraction > 0.0 && fraction <= 1.0);
    fraction_.store(fraction, std::memory_order_relaxed);
  }

 protected:
  void SearchImpl(const SearchRequest<P>& request,
                  SearchContext* context) const override {
    ScanByFootrule(request.point,
                   VerifyBudget(request.approx_candidate_fraction),
                   context);
  }

 private:
  void PackPermutation(const core::Permutation& perm,
                       util::BitWriter* writer) const {
    if (prefix_ == sites_.size()) {
      // Full permutation: densest fixed-width code, ceil(lg k!) bits.
      writer->Write(core::RankPermutation(perm),
                    util::BitsForFactorial(static_cast<int>(perm.size())));
      return;
    }
    // Prefix: one ceil(lg k)-bit field per entry.
    const int width = util::BitsFor(sites_.size());
    for (uint8_t site : perm) writer->Write(site, width);
  }

  uint64_t PrefixKey(const core::Permutation& perm) const {
    if (prefix_ == sites_.size()) return core::RankPermutation(perm);
    uint64_t key = 0;
    for (uint8_t site : perm) key = key * sites_.size() + site;
    return key;
  }

  /// Points to verify on this call: `override_fraction` (a per-request
  /// SearchRequest::approx_candidate_fraction, validated to [0, 1])
  /// when non-zero, the index's configured default otherwise.
  size_t VerifyBudget(double override_fraction) const {
    const double f =
        override_fraction > 0.0 ? override_fraction : fraction();
    size_t budget =
        static_cast<size_t>(f * static_cast<double>(data_.size()));
    return std::max<size_t>(1, std::min(budget, data_.size()));
  }

  /// Computes the query permutation, scores every stored point with the
  /// O(k) rank-array footrule, selects the `budget` footrule-closest
  /// candidates with std::nth_element (partial selection — the N-budget
  /// unverified scores are never fully ordered), sorts only the
  /// selected slice into the canonical (footrule, id) order, and
  /// verifies it.  The candidate sequence is identical to fully
  /// ordering the database by (footrule, id) and taking the first
  /// `budget`, i.e. to the original full-sort formulation.
  void ScanByFootrule(const P& query, size_t budget,
                      SearchContext* context) const {
    QueryStats* stats = context->stats();
    const size_t k = sites_.size();
    std::vector<double> distances(k);
    for (size_t j = 0; j < k; ++j) {
      if (context->StopAfterBudget()) return;
      distances[j] = this->QueryDist(sites_[j], query, stats);
    }
    core::Permutation query_perm =
        prefix_ == k ? core::PermutationFromDistances(distances)
                     : core::PermutationPrefixFromDistances(distances,
                                                            prefix_);
    uint8_t query_ranks[core::kMaxSites];
    std::fill(query_ranks, query_ranks + k, static_cast<uint8_t>(prefix_));
    for (size_t r = 0; r < query_perm.size(); ++r) {
      query_ranks[query_perm[r]] = static_cast<uint8_t>(r);
    }

    std::vector<std::pair<uint32_t, uint32_t>>& scored =
        QueryScratch::ForThread().scored;
    scored.clear();
    scored.reserve(data_.size());
    const uint8_t* inv = inv_ranks_.data();
    for (size_t i = 0; i < data_.size(); ++i) {
      const int f = core::FootruleFromRanks(query_ranks, inv + i * k, k);
      scored.emplace_back(static_cast<uint32_t>(f),
                          static_cast<uint32_t>(i));
    }
    budget = std::min(budget, scored.size());
    if (budget < scored.size()) {
      std::nth_element(scored.begin(), scored.begin() + budget,
                       scored.end());
    }
    std::sort(scored.begin(), scored.begin() + budget);

    // Candidates past the verification budget are dropped on their
    // footrule score alone; everything inside it pays a true distance.
    stats->pruning_eliminated += scored.size() - budget;

    const bool flat = flat_.enabled();
    const auto ctx = flat ? flat_.MakeQuery(query)
                          : typename FlatDataPath<P>::QueryContext{};
    for (size_t v = 0; v < budget; ++v) {
      if (context->StopAfterBudget()) return;
      const size_t id = scored[v].second;
      context->Emit(
          id, flat ? flat_.ChargedRowDistance(ctx, id,
                                              &stats->distance_computations)
                   : this->QueryDist(data_[id], query, stats));
      ++stats->candidates_verified;
    }
  }

  FlatDataPath<P> flat_;
  std::vector<P> sites_;
  size_t prefix_ = 0;
  /// Row i holds the inverted permutation of point i: entry `site` is
  /// the site's rank, or prefix_length() for sites outside a stored
  /// prefix.  Flat n x k layout, one cache-resident O(k) pass per
  /// (query, point) footrule.
  std::vector<uint8_t> inv_ranks_;
  std::vector<uint8_t> packed_;
  size_t packed_bits_ = 0;
  std::atomic<double> fraction_;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_DISTPERM_INDEX_H_
