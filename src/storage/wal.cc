#include "storage/wal.h"

#include <chrono>

#include "storage/coding.h"
#include "storage/crc32.h"

namespace distperm {
namespace storage {

namespace {
constexpr size_t kFrameHeaderBytes = 16;  // u32 len + u32 crc + u64 seq
}  // namespace

util::Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "batched") return FsyncPolicy::kBatched;
  if (name == "never") return FsyncPolicy::kNever;
  return util::Status::InvalidArgument(
      "unknown fsync policy '" + name + "' (expected always|batched|never)");
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatched:
      return "batched";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

util::Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    Env* env, const std::string& path, bool truncate, uint64_t first_seq,
    const Options& options) {
  auto file = env->NewWritableFile(path, truncate);
  if (!file.ok()) return file.status();
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file).value(), first_seq, options));
}

util::Status WalWriter::Append(const std::string& payload) {
  if (broken_) {
    return util::Status::IoError("wal: previous append failed; log unusable");
  }
  std::string seq_bytes;
  PutFixed64(&seq_bytes, next_seq_);
  const uint32_t crc =
      Crc32c(payload.data(), payload.size(), Crc32c(seq_bytes));

  PutFixed32(&buffer_, static_cast<uint32_t>(payload.size()));
  PutFixed32(&buffer_, crc);
  buffer_.append(seq_bytes);
  buffer_.append(payload);
  ++next_seq_;

  if (options_.instruments.appends_total != nullptr) {
    options_.instruments.appends_total->Increment();
  }
  if (options_.instruments.bytes_total != nullptr) {
    options_.instruments.bytes_total->Add(kFrameHeaderBytes + payload.size());
  }

  util::Status status = util::Status::OK();
  switch (options_.policy) {
    case FsyncPolicy::kAlways:
      status = WriteOutAndSync();
      break;
    case FsyncPolicy::kBatched:
      if (buffer_.size() >= options_.batch_bytes) status = WriteOutAndSync();
      break;
    case FsyncPolicy::kNever:
      if (buffer_.size() >= options_.batch_bytes) status = WriteOut();
      break;
  }
  if (!status.ok()) broken_ = true;
  return status;
}

util::Status WalWriter::Sync() {
  if (broken_) {
    return util::Status::IoError("wal: previous append failed; log unusable");
  }
  util::Status status = WriteOutAndSync();
  if (!status.ok()) broken_ = true;
  return status;
}

util::Status WalWriter::Close() {
  if (file_ == nullptr) return util::Status::OK();
  util::Status status = util::Status::OK();
  if (!broken_) {
    status = options_.policy == FsyncPolicy::kNever ? WriteOut()
                                                    : WriteOutAndSync();
  }
  util::Status closed = file_->Close();
  file_.reset();
  return status.ok() ? closed : status;
}

util::Status WalWriter::WriteOut() {
  if (buffer_.empty()) return util::Status::OK();
  DP_RETURN_IF_ERROR(file_->Append(buffer_.data(), buffer_.size()));
  buffer_.clear();
  return file_->Flush();
}

util::Status WalWriter::WriteOutAndSync() {
  DP_RETURN_IF_ERROR(WriteOut());
  const auto start = std::chrono::steady_clock::now();
  DP_RETURN_IF_ERROR(file_->Sync());
  if (options_.instruments.fsync_seconds != nullptr) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    options_.instruments.fsync_seconds->Record(elapsed.count());
  }
  return util::Status::OK();
}

void WalFrameReader::Feed(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

WalFrameReader::Next WalFrameReader::Poll(WalRecord* out) {
  if (corrupt_) return Next::kCorrupt;
  const size_t available = buffer_.size() - pos_;
  if (available < kFrameHeaderBytes) return Next::kNeedMore;
  const uint8_t* frame =
      reinterpret_cast<const uint8_t*>(buffer_.data()) + pos_;
  const uint32_t payload_len = GetFixed32(frame);
  const uint32_t stored_crc = GetFixed32(frame + 4);
  const uint64_t seq = GetFixed64(frame + 8);
  if (available < kFrameHeaderBytes + static_cast<size_t>(payload_len)) {
    return Next::kNeedMore;
  }
  // Same order as ReadWal: only a complete frame can be judged corrupt
  // (a truncated header with garbage seq is a torn tail, not damage).
  if (seq != next_seq_) {
    corrupt_ = true;
    return Next::kCorrupt;
  }
  const uint8_t* payload = frame + kFrameHeaderBytes;
  const uint32_t crc = Crc32c(payload, payload_len, Crc32c(frame + 8, 8));
  if (crc != stored_crc) {
    corrupt_ = true;
    return Next::kCorrupt;
  }
  out->seq = seq;
  out->payload.assign(reinterpret_cast<const char*>(payload), payload_len);
  pos_ += kFrameHeaderBytes + payload_len;
  valid_bytes_ += kFrameHeaderBytes + payload_len;
  ++next_seq_;
  // Compact once the dead prefix dominates, so a long-lived streaming
  // reader stays O(largest frame) in memory, not O(stream).
  if (pos_ > 4096 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return Next::kRecord;
}

util::Result<WalContents> ReadWal(Env* env, const std::string& path,
                                  uint64_t first_seq) {
  auto raw = env->ReadFile(path);
  if (!raw.ok()) return raw.status();
  const std::string& bytes = raw.value();

  WalFrameReader reader(first_seq);
  reader.Feed(bytes.data(), bytes.size());
  WalContents contents;
  WalRecord record;
  while (reader.Poll(&record) == WalFrameReader::Next::kRecord) {
    contents.records.push_back(std::move(record));
  }
  contents.valid_bytes = reader.valid_bytes();
  contents.torn_tail = contents.valid_bytes < bytes.size();
  return contents;
}

}  // namespace storage
}  // namespace distperm
