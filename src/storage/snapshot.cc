#include "storage/snapshot.h"

#include <cstring>

#include "storage/coding.h"
#include "storage/crc32.h"

namespace distperm {
namespace storage {

namespace {

constexpr uint64_t kAlignment = 64;

uint64_t Align64(uint64_t offset) {
  return (offset + kAlignment - 1) & ~(kAlignment - 1);
}

/// Bounded cursor over the mapped header; every read checks remaining
/// bytes so a truncated or hostile header cannot run past the mapping.
class HeaderCursor {
 public:
  HeaderCursor(const uint8_t* data, uint64_t size) : p_(data), end_(data + size) {}

  bool ReadFixed32(uint32_t* out) {
    if (end_ - p_ < 4) return false;
    *out = GetFixed32(p_);
    p_ += 4;
    return true;
  }
  bool ReadFixed64(uint64_t* out) {
    if (end_ - p_ < 8) return false;
    *out = GetFixed64(p_);
    p_ += 8;
    return true;
  }
  bool ReadLengthPrefixed(std::string* out) {
    uint32_t len = 0;
    if (!ReadFixed32(&len)) return false;
    if (static_cast<uint64_t>(end_ - p_) < len) return false;
    out->assign(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    return true;
  }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

}  // namespace

void SnapshotWriter::AddSection(const std::string& name, std::string data) {
  Section section;
  section.name = name;
  section.size = data.size();
  section.owned = std::move(data);
  sections_.push_back(std::move(section));
}

void SnapshotWriter::AddSectionRef(const std::string& name, const void* data,
                                   uint64_t size) {
  Section section;
  section.name = name;
  section.data = data;
  section.size = size;
  sections_.push_back(std::move(section));
}

util::Status SnapshotWriter::Write(Env* env, const std::string& path) const {
  const std::string tmp_path = path + ".tmp";
  DP_RETURN_IF_ERROR(WriteFile(env, tmp_path));
  DP_RETURN_IF_ERROR(env->RenameFile(tmp_path, path));
  // Make the rename itself durable: without the directory fsync a crash
  // could bring back the old name (or neither).
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  return env->SyncDir(dir);
}

util::Status SnapshotWriter::WriteFile(Env* env,
                                       const std::string& path) const {
  // The header's size is known before its contents (offsets depend on
  // where the header ends), so compute it analytically first.
  uint64_t header_len = 8 + 4;  // magic + header_len field
  header_len += 4;              // meta_count
  for (const auto& [key, value] : meta_) {
    header_len += 4 + key.size() + 4 + value.size();
  }
  header_len += 4;  // section_count
  for (const Section& section : sections_) {
    header_len += 4 + section.name.size() + 8 + 8 + 4;
  }
  header_len += 4;  // header_crc

  std::vector<uint64_t> offsets(sections_.size());
  uint64_t cursor = Align64(header_len);
  for (size_t i = 0; i < sections_.size(); ++i) {
    offsets[i] = cursor;
    cursor = Align64(cursor + sections_[i].size);
  }

  std::string header;
  header.reserve(header_len);
  header.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutFixed32(&header, static_cast<uint32_t>(header_len));
  PutFixed32(&header, static_cast<uint32_t>(meta_.size()));
  for (const auto& [key, value] : meta_) {
    PutLengthPrefixed(&header, key);
    PutLengthPrefixed(&header, value);
  }
  PutFixed32(&header, static_cast<uint32_t>(sections_.size()));
  for (size_t i = 0; i < sections_.size(); ++i) {
    const Section& section = sections_[i];
    PutLengthPrefixed(&header, section.name);
    PutFixed64(&header, offsets[i]);
    PutFixed64(&header, section.size);
    PutFixed32(&header, Crc32c(section.bytes(), section.size));
  }
  PutFixed32(&header, Crc32c(header));
  DP_CHECK_MSG(header.size() == header_len,
               "snapshot header size mismatch: " << header.size() << " vs "
                                                 << header_len);

  auto file_result = env->NewWritableFile(path, /*truncate=*/true);
  if (!file_result.ok()) return file_result.status();
  std::unique_ptr<WritableFile> file = std::move(file_result).value();

  const std::string padding(kAlignment, '\0');
  uint64_t written = 0;
  auto pad_to = [&](uint64_t target) -> util::Status {
    while (written < target) {
      const uint64_t chunk =
          target - written < kAlignment ? target - written : kAlignment;
      DP_RETURN_IF_ERROR(file->Append(padding.data(), chunk));
      written += chunk;
    }
    return util::Status::OK();
  };

  DP_RETURN_IF_ERROR(file->Append(header));
  written = header.size();
  for (size_t i = 0; i < sections_.size(); ++i) {
    DP_RETURN_IF_ERROR(pad_to(offsets[i]));
    DP_RETURN_IF_ERROR(file->Append(sections_[i].bytes(), sections_[i].size));
    written += sections_[i].size;
  }
  DP_RETURN_IF_ERROR(file->Flush());
  DP_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

util::Result<SnapshotReader> SnapshotReader::Open(Env* env,
                                                  const std::string& path) {
  auto mapping_result = env->MapFile(path);
  if (!mapping_result.ok()) return mapping_result.status();
  std::shared_ptr<MappedFile> mapping = std::move(mapping_result).value();
  const uint8_t* base = mapping->data();
  const uint64_t size = mapping->size();

  if (size < sizeof(kSnapshotMagic) + 8) {
    return util::Status::IoError("snapshot " + path + ": file too small");
  }
  if (std::memcmp(base, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return util::Status::IoError("snapshot " + path + ": bad magic");
  }
  const uint32_t header_len = GetFixed32(base + 8);
  if (header_len < sizeof(kSnapshotMagic) + 8 || header_len > size) {
    return util::Status::IoError("snapshot " + path +
                                 ": header length out of bounds");
  }
  const uint32_t stored_header_crc = GetFixed32(base + header_len - 4);
  if (Crc32c(base, header_len - 4) != stored_header_crc) {
    return util::Status::IoError("snapshot " + path +
                                 ": header checksum mismatch");
  }

  SnapshotReader reader;
  reader.mapping_ = mapping;
  HeaderCursor cursor(base + 12, header_len - 12 - 4);
  uint32_t meta_count = 0;
  if (!cursor.ReadFixed32(&meta_count)) {
    return util::Status::IoError("snapshot " + path + ": truncated header");
  }
  for (uint32_t i = 0; i < meta_count; ++i) {
    std::string key, value;
    if (!cursor.ReadLengthPrefixed(&key) ||
        !cursor.ReadLengthPrefixed(&value)) {
      return util::Status::IoError("snapshot " + path + ": truncated header");
    }
    reader.meta_[key] = value;
  }
  uint32_t section_count = 0;
  if (!cursor.ReadFixed32(&section_count)) {
    return util::Status::IoError("snapshot " + path + ": truncated header");
  }
  for (uint32_t i = 0; i < section_count; ++i) {
    std::string name;
    uint64_t offset = 0, section_size = 0;
    uint32_t crc = 0;
    if (!cursor.ReadLengthPrefixed(&name) || !cursor.ReadFixed64(&offset) ||
        !cursor.ReadFixed64(&section_size) || !cursor.ReadFixed32(&crc)) {
      return util::Status::IoError("snapshot " + path + ": truncated header");
    }
    if (offset > size || section_size > size - offset) {
      return util::Status::IoError("snapshot " + path + ": section '" + name +
                                   "' out of bounds");
    }
    if (Crc32c(base + offset, section_size) != crc) {
      return util::Status::IoError("snapshot " + path + ": section '" + name +
                                   "' checksum mismatch");
    }
    Section section;
    section.data = base + offset;
    section.size = section_size;
    reader.sections_[name] = section;
  }
  return reader;
}

util::Result<std::string> SnapshotReader::GetMeta(
    const std::string& key) const {
  auto it = meta_.find(key);
  if (it == meta_.end()) {
    return util::Status::NotFound("snapshot meta key '" + key + "' absent");
  }
  return it->second;
}

util::Result<SnapshotReader::Section> SnapshotReader::GetSection(
    const std::string& name) const {
  auto it = sections_.find(name);
  if (it == sections_.end()) {
    return util::Status::NotFound("snapshot section '" + name + "' absent");
  }
  return it->second;
}

}  // namespace storage
}  // namespace distperm
