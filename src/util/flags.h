// Minimal command-line flag parsing for the experiment binaries.
//
// Every reproduction harness takes flags like --points, --runs, --seed so
// the paper-scale experiments can be rerun without recompiling.  Syntax:
// `--name=value` or `--name value`; bare `--name` sets a boolean flag.

#ifndef DISTPERM_UTIL_FLAGS_H_
#define DISTPERM_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace distperm {
namespace util {

/// Parsed command-line flags plus positional arguments.
class Flags {
 public:
  /// Parses argv.  Unknown flags are retained (callers validate with
  /// Has/Get); a malformed argument (e.g. `--=x`) yields an error status.
  static Result<Flags> Parse(int argc, const char* const* argv);

  /// True iff the flag was supplied.
  bool Has(const std::string& name) const;

  /// String value of the flag, or `fallback` if absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  /// Integer value of the flag, or `fallback` if absent.  Fatal if the
  /// supplied value does not parse as an integer.
  int64_t GetInt(const std::string& name, int64_t fallback) const;

  /// Double value of the flag, or `fallback` if absent.  Fatal if the
  /// supplied value does not parse.
  double GetDouble(const std::string& name, double fallback) const;

  /// Boolean value: present without value or with "true"/"1" is true.
  bool GetBool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// All flag names seen, for usage diagnostics.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace util
}  // namespace distperm

#endif  // DISTPERM_UTIL_FLAGS_H_
