// Reproduces Section 3 (Theorem 4, Corollary 5, Fig. 5): distance
// permutations in tree metric spaces.
//
//  * Corollary 5: the path construction achieves exactly C(k,2)+1
//    permutations, verified for k = 2..12 by two independent counters.
//  * Random trees: the bound holds, and typical counts fall below it.
//  * Prefix metric (Fig. 5): a dictionary of strings under the prefix
//    metric is a tree metric space; counts stay within C(k,2)+1.
//
// Usage: tree_metric_bounds [--max-k=12] [--trees=20] [--seed=3]

#include <iostream>
#include <vector>

#include "core/perm_counter.h"
#include "core/tree_count.h"
#include "dataset/string_gen.h"
#include "metric/string_metrics.h"
#include "metric/tree_metric.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::core::Corollary5Construction;
using distperm::core::CountDistinctPermutations;
using distperm::core::CountTreePermutationsBruteForce;
using distperm::core::CountTreePermutationsBySplitEdges;
using distperm::core::PathConstruction;
using distperm::core::SelectRandomSites;
using distperm::core::TreePermutationBound;
using distperm::metric::WeightedTree;
using distperm::util::Rng;
using distperm::util::TablePrinter;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t max_k =
      static_cast<size_t>(flags.value().GetInt("max-k", 12));
  const int trees = static_cast<int>(flags.value().GetInt("trees", 20));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 3));

  std::cout << "Section 3: distance permutations in tree metrics\n\n";
  std::cout << "Corollary 5: path of 2^(k-1) unit edges, sites at 0, 2, 4, "
               "8, ..., 2^(k-1)\n\n";
  TablePrinter table;
  table.SetHeader({"k", "bound C(k,2)+1", "brute-force", "split-edge",
                   "achieved"});
  for (size_t k = 2; k <= max_k; ++k) {
    PathConstruction pc = Corollary5Construction(k);
    size_t brute = CountTreePermutationsBruteForce(pc.tree, pc.sites);
    size_t split = CountTreePermutationsBySplitEdges(pc.tree, pc.sites);
    table.AddRow({std::to_string(k),
                  std::to_string(TreePermutationBound(k)),
                  std::to_string(brute), std::to_string(split),
                  brute == TreePermutationBound(k) ? "yes" : "NO"});
  }
  table.Print(std::cout);

  std::cout << "\nRandom weighted trees (n = 400): counts vs the Theorem 4 "
               "bound\n\n";
  Rng rng(seed);
  TablePrinter random_table;
  random_table.SetHeader({"k", "bound", "mean count", "max count",
                          "violations"});
  for (size_t k : {3u, 5u, 8u, 12u}) {
    double mean = 0.0;
    size_t maximum = 0, violations = 0;
    for (int t = 0; t < trees; ++t) {
      WeightedTree tree = WeightedTree::MakeRandom(400, &rng, 0.5, 2.0);
      std::vector<size_t> sites;
      for (size_t id : rng.SampleDistinct(400, k)) sites.push_back(id);
      size_t count = CountTreePermutationsBruteForce(tree, sites);
      mean += static_cast<double>(count);
      maximum = std::max(maximum, count);
      if (count > TreePermutationBound(k)) ++violations;
    }
    char mean_s[32];
    std::snprintf(mean_s, sizeof(mean_s), "%.1f", mean / trees);
    random_table.AddRow({std::to_string(k),
                         std::to_string(TreePermutationBound(k)), mean_s,
                         std::to_string(maximum),
                         std::to_string(violations)});
  }
  random_table.Print(std::cout);

  std::cout << "\nPrefix metric (Fig. 5): synthetic dictionary under the "
               "prefix distance\n\n";
  distperm::dataset::LanguageProfile profile;
  profile.name = "PrefixDemo";
  distperm::dataset::MarkovWordGenerator generator(profile);
  auto words = generator.Dictionary(20000, &rng);
  distperm::metric::Metric<std::string> prefix(
      (distperm::metric::PrefixMetric()));
  TablePrinter prefix_table;
  prefix_table.SetHeader({"k", "bound C(k,2)+1", "distinct perms"});
  for (size_t k : {3u, 5u, 8u, 12u}) {
    auto sites = SelectRandomSites(words, k, &rng);
    auto result = CountDistinctPermutations(words, sites, prefix);
    prefix_table.AddRow({std::to_string(k),
                         std::to_string(TreePermutationBound(k)),
                         std::to_string(result.distinct_permutations)});
  }
  prefix_table.Print(std::cout);
  std::cout << "\nAll prefix-metric counts obey the tree bound; long "
               "shared-prefix paths make the bound nearly achievable, as "
               "the paper notes.\n";
  return 0;
}
