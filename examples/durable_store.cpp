// Durability walkthrough: open a WAL-backed LiveDatabase, write and
// fold, then "crash" (drop the handle without any shutdown protocol),
// reopen the directory, and verify the store came back exactly — the
// folded generation from its snapshot, the unfolded tail from WAL
// replay.  Exits nonzero if any step or any equality check fails, so
// CI can run it as a recovery smoke test.
//
//   ./example_durable_store [--points=1000] [--dim=8] [--shards=2]
//                           [--index=vp-tree] [--seed=42] [--dir=...]

#include <cstdlib>
#include <iostream>
#include <memory>

#include "dataset/vector_gen.h"
#include "engine/live_database.h"
#include "engine/query.h"
#include "metric/lp.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "util/flags.h"
#include "util/rng.h"

using distperm::engine::LiveDatabase;
using distperm::engine::LiveOptions;
using distperm::engine::QuerySpec;
using distperm::metric::Vector;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 1000));
  const size_t dim = static_cast<size_t>(flags.value().GetInt("dim", 8));
  const size_t shards =
      static_cast<size_t>(flags.value().GetInt("shards", 2));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 42));
  const std::string index = flags.value().GetString("index", "vp-tree");
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = flags.value().GetString(
      "dir", std::string(tmp != nullptr ? tmp : "/tmp") +
                 "/distperm_durable_demo");

  // Start from an empty directory so the run is reproducible.
  distperm::storage::Env* env = distperm::storage::Env::Default();
  env->CreateDir(dir);
  if (auto listing = env->ListDir(dir); listing.ok()) {
    for (const std::string& name : listing.value()) {
      env->DeleteFile(dir + "/" + name);
    }
  }

  // 1. Open durably: wal_dir= and fsync= ride in the spec like any
  //    live knob.  Generation 1 is built and snapshotted before Open
  //    returns, and every later write hits the WAL first.
  distperm::util::Rng rng(seed);
  auto data = distperm::dataset::UniformCube(points, dim, &rng);
  distperm::metric::Metric<Vector> l2(distperm::metric::LpMetric::L2());
  const std::string spec =
      index + (index.find(':') == std::string::npos ? ":" : ",") +
      "wal_dir=" + dir + ",fsync=always";
  distperm::obs::MetricsRegistry metrics("durable_demo");
  LiveOptions options;
  options.metrics = &metrics;
  auto opened =
      LiveDatabase<Vector>::Open(data, l2, shards, spec, seed, options);
  if (!opened.ok()) {
    std::cerr << opened.status() << "\n";
    return 1;
  }
  std::cout << "opened " << dir << ": generation "
            << opened.value()->generation_number() << ", n="
            << opened.value()->size() << ", fsync=always\n";

  // 2. Write, fold half-way, write more — then "crash".  The Compact
  //    rotated to generation 2 (snapshot + fresh WAL); the two
  //    post-compaction inserts live only in that WAL.
  Vector probe(dim, 0.25);
  for (int i = 0; i < 6; ++i) {
    Vector p(dim, 0.1 * static_cast<double>(i + 1));
    if (auto id = opened.value()->Insert(p); !id.ok()) {
      std::cerr << id.status() << "\n";
      return 1;
    }
    if (i == 3) {
      if (auto status = opened.value()->Compact(); !status.ok()) {
        std::cerr << status << "\n";
        return 1;
      }
    }
  }
  auto before = opened.value()->RunBatch({QuerySpec<Vector>::Knn(probe, 5)});
  const size_t size_before = opened.value()->size();
  const uint64_t generation_before = opened.value()->generation_number();
  const size_t delta_before = opened.value()->delta_entries();
  opened.value().reset();  // crash: no flush call, no goodbye

  // 3. Reopen from disk alone (empty seed data: the store IS the
  //    data).  Recovery loads snapshot-2, replays the WAL tail, and
  //    resumes exactly where the crash left off.
  auto reopened =
      LiveDatabase<Vector>::Open({}, l2, shards, spec, seed, options);
  if (!reopened.ok()) {
    std::cerr << reopened.status() << "\n";
    return 1;
  }
  auto after = reopened.value()->RunBatch({QuerySpec<Vector>::Knn(probe, 5)});
  const auto replayed = metrics.GetCounter("recovery_replayed_entries");
  std::cout << "reopened: generation "
            << reopened.value()->generation_number() << ", n="
            << reopened.value()->size() << ", delta="
            << reopened.value()->delta_entries() << " (replayed "
            << replayed->Value() << " WAL records)\n";

  // 4. The recovered store must BE the pre-crash store.
  if (reopened.value()->size() != size_before ||
      reopened.value()->generation_number() != generation_before ||
      reopened.value()->delta_entries() != delta_before) {
    std::cerr << "recovered shape differs from the pre-crash store\n";
    return 1;
  }
  if (!before.all_ok() || !after.all_ok() ||
      before.results != after.results) {
    std::cerr << "recovered store answered differently\n";
    return 1;
  }
  std::cout << "recovered store answers the 5-NN batch bit-identically "
            << "to the pre-crash store\n";
  std::cout << "wal_appends_total="
            << metrics.GetCounter("wal_appends_total")->Value()
            << " wal_bytes_total="
            << metrics.GetCounter("wal_bytes_total")->Value() << "\n";
  std::cout << "done\n";
  return 0;
}
