// AESA (Vidal 1986): the classic distance-matrix elimination search.
//
// Stores the full O(n^2) matrix of pairwise distances.  At query time it
// repeatedly picks a live candidate, measures its true distance, and uses
// the stored row to tighten every other candidate's triangle-inequality
// lower bound, discarding candidates whose bound exceeds the query
// radius.  Query cost in metric evaluations is famously near-constant;
// the price is the quadratic storage the paper's introduction criticises.

#ifndef DISTPERM_INDEX_AESA_H_
#define DISTPERM_INDEX_AESA_H_

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "index/index.h"

namespace distperm {
namespace index {

/// Full-matrix AESA.  Build cost n(n-1)/2 metric evaluations; memory
/// O(n^2) doubles — use only for small databases.
template <typename P>
class AesaIndex : public SearchIndex<P> {
 public:
  using SearchIndex<P>::data_;

  AesaIndex(std::vector<P> data, metric::Metric<P> metric)
      : SearchIndex<P>(std::move(data), std::move(metric)),
        matrix_(data_.size() * data_.size(), 0.0) {
    const size_t n = data_.size();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double d = this->BuildDist(data_[i], data_[j]);
        matrix_[i * n + j] = d;
        matrix_[j * n + i] = d;
      }
    }
  }

  std::string name() const override { return "aesa"; }

  uint64_t IndexBits() const override {
    return static_cast<uint64_t>(matrix_.size()) * sizeof(double) * 8;
  }

  /// The stored distance between database points i and j.
  double StoredDistance(size_t i, size_t j) const {
    return matrix_[i * data_.size() + j];
  }

 protected:
  std::vector<SearchResult> RangeQueryImpl(const P& query, double radius,
                                           QueryStats* stats) const override {
    return RangeSearch(query, radius, MinLowerBoundPicker(), stats);
  }

  std::vector<SearchResult> KnnQueryImpl(const P& query, size_t k,
                                         QueryStats* stats) const override {
    return KnnSearch(query, k, MinLowerBoundPicker(), stats);
  }

  /// Range query driven by an arbitrary candidate picker (iAESA supplies
  /// a permutation-guided one).
  template <typename Picker>
  std::vector<SearchResult> RangeSearch(const P& query, double radius,
                                        const Picker& pick,
                                        QueryStats* stats) const {
    std::vector<SearchResult> results;
    Search(query, pick,
           [&]() { return radius; },
           [&](size_t id, double d) {
             if (d <= radius) results.push_back({id, d});
           },
           stats);
    SortResults(&results);
    return results;
  }

  /// kNN query driven by an arbitrary candidate picker.
  template <typename Picker>
  std::vector<SearchResult> KnnSearch(const P& query, size_t k,
                                      const Picker& pick,
                                      QueryStats* stats) const {
    KnnCollector collector(k);
    Search(query, pick,
           [&]() { return collector.Radius(); },
           [&](size_t id, double d) { collector.Offer(id, d); },
           stats);
    return collector.Take();
  }

  /// Core elimination loop, shared by range and kNN queries.  `pick`
  /// chooses the next live candidate (or returns n when none remain);
  /// `radius_fn` returns the current pruning radius (it shrinks during
  /// kNN); `emit` receives every point whose true distance is computed.
  /// All per-query state lives on the caller's stack, so concurrent
  /// searches never interfere.
  template <typename Picker, typename RadiusFn, typename Emit>
  void Search(const P& query, const Picker& pick, RadiusFn radius_fn,
              Emit emit, QueryStats* stats) const {
    const size_t n = data_.size();
    std::vector<double> lower(n, 0.0);
    std::vector<bool> dead(n, false);
    while (true) {
      size_t next = pick(lower, dead);
      if (next == n) break;
      dead[next] = true;
      if (lower[next] > radius_fn()) continue;  // can no longer qualify
      double d = this->QueryDist(data_[next], query, stats);
      emit(next, d);
      double radius = radius_fn();
      const double* row = &matrix_[next * n];
      for (size_t i = 0; i < n; ++i) {
        if (dead[i]) continue;
        double bound = std::fabs(d - row[i]);
        if (bound > lower[i]) lower[i] = bound;
        if (lower[i] > radius) dead[i] = true;
      }
    }
  }

  /// AESA's classic ordering: the live candidate with the smallest
  /// triangle-inequality lower bound.
  auto MinLowerBoundPicker() const {
    return [](const std::vector<double>& lower,
              const std::vector<bool>& dead) {
      const size_t n = lower.size();
      size_t best = n;
      double best_bound = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < n; ++i) {
        if (!dead[i] && lower[i] < best_bound) {
          best_bound = lower[i];
          best = i;
        }
      }
      return best;
    };
  }

  std::vector<double> matrix_;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_AESA_H_
