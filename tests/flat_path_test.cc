// Equivalence tests for the flat blocked data path: every index that
// adopts it (linear scan, LAESA, distperm) must return bit-identical
// results AND bit-identical distance-computation counts to the scalar
// Metric<P> path.  The scalar path is forced by wrapping the same
// kernel-tagged metric in an untagged lambda Metric — the distance
// function is the very same code, only the index's data path changes.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/distance_permutation.h"
#include "core/perm_metrics.h"
#include "dataset/vector_gen.h"
#include "gtest/gtest.h"
#include "index/distperm_index.h"
#include "index/laesa.h"
#include "index/linear_scan.h"
#include "metric/cosine.h"
#include "metric/lp.h"
#include "util/rng.h"

namespace distperm {
namespace {

using index::DistPermIndex;
using index::LaesaIndex;
using index::LinearScanIndex;
using index::QueryStats;
using index::SearchResult;
using metric::Metric;
using metric::Vector;

// The same distance function with the kernel tag stripped: forces the
// index onto the scalar point-at-a-time path.
Metric<Vector> Untagged(const Metric<Vector>& tagged) {
  return Metric<Vector>(tagged.name(),
                        [tagged](const Vector& a, const Vector& b) {
                          return tagged(a, b);
                        });
}

std::vector<Metric<Vector>> TaggedMetrics() {
  return {Metric<Vector>(metric::LpMetric::L1()),
          Metric<Vector>(metric::LpMetric::L2()),
          Metric<Vector>(metric::LpMetric::LInf()),
          Metric<Vector>(metric::DenseAngleMetric())};
}

std::vector<Vector> QueryPoints(size_t count, size_t dim, util::Rng* rng) {
  std::vector<Vector> queries;
  for (size_t q = 0; q < count; ++q) {
    Vector p(dim);
    for (double& c : p) c = rng->NextDouble();
    queries.push_back(std::move(p));
  }
  return queries;
}

TEST(FlatPath, LinearScanMatchesScalarPathBitExactly) {
  for (size_t dim : {3u, 8u, 32u}) {
    util::Rng rng(100 + dim);
    auto data = dataset::UniformCube(400, dim, &rng);
    auto queries = QueryPoints(12, dim, &rng);
    for (const Metric<Vector>& tagged : TaggedMetrics()) {
      LinearScanIndex<Vector> flat(data, tagged);
      LinearScanIndex<Vector> scalar(data, Untagged(tagged));
      for (const Vector& q : queries) {
        QueryStats flat_stats, scalar_stats;
        EXPECT_EQ(flat.KnnQuery(q, 7, &flat_stats),
                  scalar.KnnQuery(q, 7, &scalar_stats))
            << tagged.name() << " dim " << dim;
        EXPECT_EQ(flat_stats.distance_computations,
                  scalar_stats.distance_computations);
        const double radius = tagged.name() == "angle" ? 0.4 : 0.8;
        flat_stats = scalar_stats = QueryStats();
        EXPECT_EQ(flat.RangeQuery(q, radius, &flat_stats),
                  scalar.RangeQuery(q, radius, &scalar_stats))
            << tagged.name() << " dim " << dim;
        EXPECT_EQ(flat_stats.distance_computations,
                  scalar_stats.distance_computations);
      }
    }
  }
}

TEST(FlatPath, LaesaMatchesScalarPathBitExactly) {
  for (size_t dim : {3u, 8u}) {
    util::Rng data_rng(200 + dim);
    auto data = dataset::UniformCube(300, dim, &data_rng);
    auto queries = QueryPoints(10, dim, &data_rng);
    for (const Metric<Vector>& tagged : TaggedMetrics()) {
      util::Rng flat_rng(7), scalar_rng(7);
      LaesaIndex<Vector> flat(data, tagged, 6, &flat_rng);
      LaesaIndex<Vector> scalar(data, Untagged(tagged), 6, &scalar_rng);
      ASSERT_EQ(flat.pivot_ids(), scalar.pivot_ids());
      EXPECT_EQ(flat.build_distance_computations(),
                scalar.build_distance_computations())
          << tagged.name();
      for (size_t i = 0; i < data.size(); ++i) {
        for (size_t j = 0; j < flat.pivot_ids().size(); ++j) {
          EXPECT_EQ(flat.StoredDistance(i, j), scalar.StoredDistance(i, j));
        }
      }
      for (const Vector& q : queries) {
        QueryStats flat_stats, scalar_stats;
        EXPECT_EQ(flat.KnnQuery(q, 5, &flat_stats),
                  scalar.KnnQuery(q, 5, &scalar_stats))
            << tagged.name() << " dim " << dim;
        EXPECT_EQ(flat_stats.distance_computations,
                  scalar_stats.distance_computations)
            << tagged.name() << " dim " << dim;
        const double radius = tagged.name() == "angle" ? 0.3 : 0.6;
        flat_stats = scalar_stats = QueryStats();
        EXPECT_EQ(flat.RangeQuery(q, radius, &flat_stats),
                  scalar.RangeQuery(q, radius, &scalar_stats));
        EXPECT_EQ(flat_stats.distance_computations,
                  scalar_stats.distance_computations);
      }
    }
  }
}

TEST(FlatPath, DistPermMatchesScalarPathBitExactly) {
  for (size_t prefix : {0u, 3u}) {
    util::Rng data_rng(300 + prefix);
    auto data = dataset::UniformCube(350, 6, &data_rng);
    auto queries = QueryPoints(10, 6, &data_rng);
    for (const Metric<Vector>& tagged : TaggedMetrics()) {
      util::Rng flat_rng(9), scalar_rng(9);
      DistPermIndex<Vector> flat(data, tagged, 8, &flat_rng,
                                 /*fraction=*/0.25, prefix);
      DistPermIndex<Vector> scalar(data, Untagged(tagged), 8, &scalar_rng,
                                   /*fraction=*/0.25, prefix);
      EXPECT_EQ(flat.build_distance_computations(),
                scalar.build_distance_computations());
      for (size_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(flat.StoredPermutation(i), scalar.StoredPermutation(i));
      }
      for (const Vector& q : queries) {
        QueryStats flat_stats, scalar_stats;
        EXPECT_EQ(flat.KnnQuery(q, 5, &flat_stats),
                  scalar.KnnQuery(q, 5, &scalar_stats))
            << tagged.name() << " prefix " << prefix;
        EXPECT_EQ(flat_stats.distance_computations,
                  scalar_stats.distance_computations);
      }
    }
  }
}

// Reimplementation of the seed's candidate ranking — per-pair footrule
// over the stored permutations, counting-sorted over the full footrule
// range — to pin that the nth_element partial selection visits the
// exact same candidates in the exact same order.
std::vector<uint32_t> SeedCandidateOrder(const DistPermIndex<Vector>& index,
                                         const Vector& query,
                                         size_t budget) {
  const auto& metric = index.metric();
  const size_t k = index.sites().size();
  std::vector<double> distances(k);
  for (size_t j = 0; j < k; ++j) {
    distances[j] = metric(index.sites()[j], query);
  }
  const bool full = index.prefix_length() == k;
  core::Permutation query_perm =
      full ? core::PermutationFromDistances(distances)
           : core::PermutationPrefixFromDistances(distances,
                                                  index.prefix_length());
  const size_t max_footrule =
      full ? static_cast<size_t>(core::MaxFootrule(k))
           : k * index.prefix_length();
  std::vector<std::vector<uint32_t>> buckets(max_footrule + 1);
  for (size_t i = 0; i < index.size(); ++i) {
    core::Permutation stored = index.StoredPermutation(i);
    const int f = full ? core::SpearmanFootrule(query_perm, stored)
                       : core::PrefixFootrule(query_perm, stored, k);
    buckets[static_cast<size_t>(f)].push_back(static_cast<uint32_t>(i));
  }
  std::vector<uint32_t> order;
  for (const auto& bucket : buckets) {
    for (uint32_t id : bucket) {
      if (order.size() >= budget) return order;
      order.push_back(id);
    }
  }
  return order;
}

TEST(FlatPath, DistPermPartialSelectionMatchesSeedOrdering) {
  for (size_t prefix : {0u, 4u}) {
    util::Rng data_rng(400 + prefix);
    auto data = dataset::UniformCube(300, 5, &data_rng);
    auto queries = QueryPoints(8, 5, &data_rng);
    util::Rng site_rng(21);
    const double fraction = 0.15;
    DistPermIndex<Vector> index(data, metric::LpMetric::L2(), 10,
                                &site_rng, fraction, prefix);
    const size_t budget = static_cast<size_t>(
        fraction * static_cast<double>(data.size()));
    for (const Vector& q : queries) {
      // The verified candidate set and order are observable through a
      // range query with infinite radius: it returns exactly the
      // verified ids with their true distances.
      auto results = index.RangeQuery(
          q, std::numeric_limits<double>::infinity());
      std::vector<uint32_t> expect = SeedCandidateOrder(index, q, budget);
      ASSERT_EQ(results.size(), expect.size());
      std::vector<uint32_t> got;
      for (const SearchResult& r : results) {
        got.push_back(static_cast<uint32_t>(r.id));
      }
      std::sort(expect.begin(), expect.end());
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expect);
    }
  }
}

TEST(FlatPath, SparseDocumentSpacesStillUseScalarPath) {
  // Non-vector point types must compile and run through the scalar
  // path untouched (FlatDataPath generic stub).
  util::Rng rng(31);
  std::vector<metric::SparseVector> docs;
  for (int i = 0; i < 40; ++i) {
    metric::SparseVector doc;
    for (uint32_t d = 0; d < 6; ++d) {
      doc.emplace_back(d, rng.NextDouble() + 0.1);
    }
    docs.push_back(std::move(doc));
  }
  Metric<metric::SparseVector> angle{metric::AngleMetric()};
  EXPECT_EQ(angle.vector_kernel(), metric::VectorKernelKind::kNone);
  LinearScanIndex<metric::SparseVector> scan(docs, angle);
  QueryStats stats;
  auto results = scan.KnnQuery(docs[0], 3, &stats);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].id, 0u);
  EXPECT_EQ(stats.distance_computations, docs.size());
}

TEST(IsPermutationBitmask, HandlesFullRangeAndDuplicates) {
  core::Permutation identity(200);
  for (size_t i = 0; i < identity.size(); ++i) {
    identity[i] = static_cast<uint8_t>(i);
  }
  EXPECT_TRUE(core::IsPermutation(identity));
  std::swap(identity[0], identity[199]);
  EXPECT_TRUE(core::IsPermutation(identity));
  identity[5] = identity[7];  // duplicate
  EXPECT_FALSE(core::IsPermutation(identity));

  EXPECT_TRUE(core::IsPermutation({}));
  EXPECT_TRUE(core::IsPermutation({0}));
  EXPECT_FALSE(core::IsPermutation({1}));     // out of range
  EXPECT_FALSE(core::IsPermutation({0, 0}));  // duplicate
}

TEST(FootruleFromRanks, AgreesWithSpearmanAndPrefixFootrule) {
  util::Rng rng(41);
  for (size_t k : {2u, 5u, 9u}) {
    for (int rep = 0; rep < 30; ++rep) {
      std::vector<double> da(k), db(k);
      for (double& v : da) v = rng.NextDouble();
      for (double& v : db) v = rng.NextDouble();
      core::Permutation a = core::PermutationFromDistances(da);
      core::Permutation b = core::PermutationFromDistances(db);
      core::Permutation ra = core::InvertPermutation(a);
      core::Permutation rb = core::InvertPermutation(b);
      EXPECT_EQ(core::FootruleFromRanks(ra.data(), rb.data(), k),
                core::SpearmanFootrule(a, b));

      const size_t prefix = (k + 1) / 2;
      core::Permutation pa = core::PermutationPrefixFromDistances(da, prefix);
      core::Permutation pb = core::PermutationPrefixFromDistances(db, prefix);
      std::vector<uint8_t> rank_a(k, static_cast<uint8_t>(prefix));
      std::vector<uint8_t> rank_b(k, static_cast<uint8_t>(prefix));
      for (size_t r = 0; r < prefix; ++r) {
        rank_a[pa[r]] = static_cast<uint8_t>(r);
        rank_b[pb[r]] = static_cast<uint8_t>(r);
      }
      EXPECT_EQ(core::FootruleFromRanks(rank_a.data(), rank_b.data(), k),
                core::PrefixFootrule(pa, pb, k));
    }
  }
}

}  // namespace
}  // namespace distperm
