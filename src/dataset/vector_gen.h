// Synthetic vector dataset generators.
//
// UniformCube reproduces the paper's random-vector workload (Table 3:
// uniform on the unit cube).  The structured generators (Gaussian,
// clustered, low-dimensional embeddings, histogram-like) stand in for the
// SISAP sample databases whose defining property, for permutation
// counting, is low intrinsic dimensionality inside a higher-dimensional
// representation.

#ifndef DISTPERM_DATASET_VECTOR_GEN_H_
#define DISTPERM_DATASET_VECTOR_GEN_H_

#include <cstddef>
#include <vector>

#include "metric/metric.h"
#include "util/rng.h"

namespace distperm {
namespace dataset {

/// n points uniform on [0, 1]^d.
std::vector<metric::Vector> UniformCube(size_t n, size_t d, util::Rng* rng);

/// n points from an isotropic Gaussian centred at 1/2 with the given
/// standard deviation per coordinate.
std::vector<metric::Vector> GaussianCloud(size_t n, size_t d, double sigma,
                                          util::Rng* rng);

/// n points in `clusters` Gaussian clusters with centres uniform on the
/// cube and per-cluster spread `sigma`.
std::vector<metric::Vector> ClusteredCloud(size_t n, size_t d,
                                           size_t clusters, double sigma,
                                           util::Rng* rng);

/// n points lying near a random `intrinsic_d`-dimensional affine subspace
/// of R^ambient_d, plus isotropic noise of size `noise`.  This is the
/// canonical "high representation dimension, low intrinsic dimension"
/// shape of real feature databases (nasa, colors).
std::vector<metric::Vector> LowDimEmbedding(size_t n, size_t ambient_d,
                                            size_t intrinsic_d, double noise,
                                            util::Rng* rng);

/// n normalized histograms over d bins, each a mixture of a few smooth
/// bumps — the shape of colour histograms: nonnegative entries summing
/// to 1, strong inter-bin correlation, low intrinsic dimension.
std::vector<metric::Vector> HistogramCloud(size_t n, size_t d, size_t bumps,
                                           util::Rng* rng);

}  // namespace dataset
}  // namespace distperm

#endif  // DISTPERM_DATASET_VECTOR_GEN_H_
