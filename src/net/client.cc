#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace distperm {
namespace net {

namespace {
util::Status IoError(const std::string& what) {
  return util::Status::IoError("net: " + what + ": " +
                               std::strerror(errno));
}
}  // namespace

util::Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& host, uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &address.sin_addr) != 1) {
    return util::Status::InvalidArgument(
        "net: host must be a numeric IPv4 address or \"localhost\", got "
        "\"" + host + "\"");
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return IoError("socket");
  if (connect(fd, reinterpret_cast<const sockaddr*>(&address),
              sizeof(address)) != 0) {
    const util::Status status = IoError("connect");
    close(fd);
    return status;
  }
  const int enable = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() { close(fd_); }

util::Status Client::Ping() {
  DP_RETURN_IF_ERROR(SendFrame(MessageType::kPing, std::string()));
  auto frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame.value().first != MessageType::kPong) {
    return UnexpectedFrame(frame.value());
  }
  return util::Status::OK();
}

util::Result<WireStatus> Client::Remove(uint64_t id) {
  std::string payload;
  EncodeRemoveRequest(&payload, id);
  DP_RETURN_IF_ERROR(SendFrame(MessageType::kRemove, payload));
  auto frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame.value().first != MessageType::kRemoveResult) {
    return UnexpectedFrame(frame.value());
  }
  const std::string& bytes = frame.value().second;
  return DecodeWireStatus(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size());
}

util::Status Client::SendFrame(MessageType type,
                               const std::string& payload) {
  return SendRaw(EncodeFrame(type, payload));
}

util::Status Client::SendRaw(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = send(fd_, bytes.data() + sent, bytes.size() - sent,
                           MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return IoError("send");
  }
  return util::Status::OK();
}

util::Result<std::pair<MessageType, std::string>> Client::ReadFrame() {
  for (;;) {
    FrameView view;
    size_t frame_size = 0;
    util::Status error;
    const FrameParse parse = ParseFrame(
        reinterpret_cast<const uint8_t*>(buffer_.data()), buffer_.size(),
        &view, &frame_size, &error);
    if (parse == FrameParse::kError) return error;
    if (parse == FrameParse::kComplete) {
      std::pair<MessageType, std::string> frame(
          view.type,
          std::string(reinterpret_cast<const char*>(view.payload),
                      view.payload_size));
      buffer_.erase(0, frame_size);
      return frame;
    }
    char chunk[65536];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return util::Status::IoError("net: connection closed by peer");
    }
    if (errno == EINTR) continue;
    return IoError("recv");
  }
}

util::Result<WireSearchResponse> Client::ReadSearchResponse() {
  auto frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame.value().first != MessageType::kSearchResult) {
    return UnexpectedFrame(frame.value());
  }
  const std::string& bytes = frame.value().second;
  return DecodeSearchResponse(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
}

util::Status Client::UnexpectedFrame(
    const std::pair<MessageType, std::string>& frame) {
  if (frame.first == MessageType::kError) {
    auto status = DecodeWireStatus(
        reinterpret_cast<const uint8_t*>(frame.second.data()),
        frame.second.size());
    if (status.ok()) {
      return util::Status::InvalidArgument(
          "net: server rejected the stream (" +
          std::string(WireCodeName(status.value().code)) + ": " +
          status.value().message + ")");
    }
  }
  return util::Status::Internal(
      "net: unexpected frame type " +
      std::to_string(static_cast<int>(frame.first)));
}

}  // namespace net
}  // namespace distperm
