// Synthetic document-vector generator.
//
// Stand-in for the SISAP `long` and `short` databases (feature vectors
// extracted from news articles, compared by vector angle).  Documents are
// sparse mixtures of a few topics; each topic is a Zipf-weighted
// distribution over a slice of the vocabulary.  The topical structure
// gives the low effective dimensionality that real document collections
// show.

#ifndef DISTPERM_DATASET_DOC_GEN_H_
#define DISTPERM_DATASET_DOC_GEN_H_

#include <cstddef>
#include <vector>

#include "metric/metric.h"
#include "util/rng.h"

namespace distperm {
namespace dataset {

/// Parameters for the document generator.
struct DocCorpusProfile {
  size_t vocabulary = 5000;   ///< total distinct topical term ids
  size_t topics = 20;         ///< number of latent topics
  size_t terms_per_doc = 40;  ///< mean distinct terms per document
  double zipf_s = 1.1;        ///< Zipf exponent within a topic
  /// Shared "stopword" pool: every document draws a few terms from a
  /// common high-frequency vocabulary.  Real corpora always have this;
  /// without it short documents are exactly orthogonal, distances tie at
  /// pi/2, and permutation counts collapse.
  size_t stopwords = 50;
  double stopword_fraction = 0.2;  ///< mean fraction of terms from pool
  /// Per-document +- spread of the stopword fraction.  Varying it widens
  /// the pairwise-distance distribution (low rho); keeping it tight
  /// concentrates distances (high rho).
  double stopword_fraction_spread = 0.0;
  double length_spread = 0.5;      ///< +-relative variation in doc length
  /// Multiplicative jitter applied to every term weight, so no two
  /// documents have exactly identical profiles (prevents distance ties).
  double weight_jitter = 0.2;
};

/// Generates `n` sparse, non-zero document vectors (term id, tf weight),
/// each sorted by term id.
std::vector<metric::SparseVector> DocumentVectors(
    size_t n, const DocCorpusProfile& profile, util::Rng* rng);

}  // namespace dataset
}  // namespace distperm

#endif  // DISTPERM_DATASET_DOC_GEN_H_
