#include "metric/cosine.h"

#include <algorithm>
#include <cmath>

#include "metric/kernels.h"
#include "util/status.h"

namespace distperm {
namespace metric {

double SparseDot(const SparseVector& a, const SparseVector& b) {
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first == b[j].first) {
      sum += a[i].second * b[j].second;
      ++i;
      ++j;
    } else if (a[i].first < b[j].first) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum;
}

double SparseNorm(const SparseVector& a) {
  double sum = 0.0;
  for (const auto& [_, v] : a) sum += v * v;
  return std::sqrt(sum);
}

double AngleDistance(const SparseVector& a, const SparseVector& b) {
  double na = SparseNorm(a);
  double nb = SparseNorm(b);
  DP_CHECK_MSG(na > 0 && nb > 0, "angle distance of zero vector");
  double cosine = SparseDot(a, b) / (na * nb);
  cosine = std::clamp(cosine, -1.0, 1.0);
  return std::acos(cosine);
}

double AngleDistanceDense(const Vector& a, const Vector& b) {
  DP_CHECK_MSG(a.size() == b.size(), "dimension mismatch");
  const size_t dim = a.size();
  const double dot = DotRaw(a.data(), b.data(), dim);
  const double na = std::sqrt(DotRaw(a.data(), a.data(), dim));
  const double nb = std::sqrt(DotRaw(b.data(), b.data(), dim));
  return AngleFromParts(dot, na, nb);
}

}  // namespace metric
}  // namespace distperm
