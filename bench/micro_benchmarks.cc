// Micro-benchmarks (google-benchmark) for the primitives every
// experiment leans on: distance kernels, permutation computation,
// ranking/unranking, permutation distances, and whole-database counting
// throughput.

#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "core/distance_permutation.h"
#include "core/euclidean_count.h"
#include "core/perm_codec.h"
#include "core/perm_counter.h"
#include "core/perm_metrics.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "metric/string_metrics.h"
#include "util/rng.h"

namespace {

using distperm::core::Permutation;
using distperm::metric::Vector;

void BM_L2Distance(benchmark::State& state) {
  distperm::util::Rng rng(1);
  const size_t d = static_cast<size_t>(state.range(0));
  Vector a(d), b(d);
  for (size_t i = 0; i < d; ++i) {
    a[i] = rng.NextDouble();
    b[i] = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(distperm::metric::L2Distance(a, b));
  }
}
BENCHMARK(BM_L2Distance)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_L1Distance(benchmark::State& state) {
  distperm::util::Rng rng(2);
  const size_t d = static_cast<size_t>(state.range(0));
  Vector a(d), b(d);
  for (size_t i = 0; i < d; ++i) {
    a[i] = rng.NextDouble();
    b[i] = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(distperm::metric::L1Distance(a, b));
  }
}
BENCHMARK(BM_L1Distance)->Arg(16)->Arg(256);

void BM_Levenshtein(benchmark::State& state) {
  distperm::util::Rng rng(3);
  const size_t length = static_cast<size_t>(state.range(0));
  std::string a, b;
  for (size_t i = 0; i < length; ++i) {
    a.push_back(static_cast<char>('a' + rng.NextBounded(26)));
    b.push_back(static_cast<char>('a' + rng.NextBounded(26)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(distperm::metric::LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein)->Arg(8)->Arg(32)->Arg(128);

void BM_PermutationFromDistances(benchmark::State& state) {
  distperm::util::Rng rng(4);
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<double> distances(k);
  for (auto& d : distances) d = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        distperm::core::PermutationFromDistances(distances));
  }
}
BENCHMARK(BM_PermutationFromDistances)->Arg(4)->Arg(8)->Arg(12)->Arg(20);

void BM_RankPermutation(benchmark::State& state) {
  distperm::util::Rng rng(5);
  const size_t k = static_cast<size_t>(state.range(0));
  Permutation perm(k);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(&perm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distperm::core::RankPermutation(perm));
  }
}
BENCHMARK(BM_RankPermutation)->Arg(8)->Arg(12)->Arg(20);

void BM_UnrankPermutation(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  uint64_t rank = 12345 % 40320;
  for (auto _ : state) {
    benchmark::DoNotOptimize(distperm::core::UnrankPermutation(rank, k));
  }
}
BENCHMARK(BM_UnrankPermutation)->Arg(8)->Arg(12);

void BM_SpearmanFootrule(benchmark::State& state) {
  distperm::util::Rng rng(6);
  const size_t k = static_cast<size_t>(state.range(0));
  Permutation a(k), b(k);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  rng.Shuffle(&a);
  rng.Shuffle(&b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distperm::core::SpearmanFootrule(a, b));
  }
}
BENCHMARK(BM_SpearmanFootrule)->Arg(8)->Arg(16);

void BM_EuclideanCountTable(benchmark::State& state) {
  for (auto _ : state) {
    distperm::core::EuclideanCounter counter;
    benchmark::DoNotOptimize(counter.Count(10, 12));
  }
}
BENCHMARK(BM_EuclideanCountTable);

void BM_CountDistinctPermutations(benchmark::State& state) {
  distperm::util::Rng rng(7);
  const size_t n = static_cast<size_t>(state.range(0));
  auto data = distperm::dataset::UniformCube(n, 4, &rng);
  distperm::metric::Metric<Vector> l2(distperm::metric::LpMetric::L2());
  auto sites = distperm::core::SelectRandomSites(data, 8, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        distperm::core::CountDistinctPermutations(data, sites, l2));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_CountDistinctPermutations)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
