// Runtime index registry: string-keyed factories for every search index.
//
// A spec string selects an index structure and its build options at
// runtime — no compile-time index selection, no per-binary factory
// lambdas.  Grammar:
//
//   spec    := name [":" option ("," option)*]
//   option  := key "=" value
//   name    := [a-z0-9-]+        key := [a-z_]+
//
// Registered names and their options (defaults in parentheses):
//
//   "linear-scan"                      exhaustive scan
//   "aesa"                             full O(n^2) distance matrix
//   "iaesa"          k(6)              AESA + permutation-guided picking
//   "laesa"          k(8)              k max-min pivots, O(nk) table
//   "vp-tree"                          vantage-point tree
//   "gh-tree"                          generalized-hyperplane tree
//   "distperm"       k(8) fraction(0.1) prefix(0)   permutation index
//   "distperm-prefix" k(12) prefix(4) fraction(0.1) truncated variant
//
// Examples: "laesa:k=16", "distperm:k=6,fraction=0.2".  Every
// SearchIndex::name() is itself a valid spec, so name() round-trips
// through Create.  Unknown names, malformed option strings, unknown or
// duplicate keys, and out-of-range values come back as util::Status
// errors — never UB or CHECK-death.  Counts that exceed the database
// size (pivot/site counts on small shards) are clamped to it.

#ifndef DISTPERM_INDEX_REGISTRY_H_
#define DISTPERM_INDEX_REGISTRY_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/perm_codec.h"
#include "index/aesa.h"
#include "index/distperm_index.h"
#include "index/gh_tree.h"
#include "index/iaesa.h"
#include "index/index.h"
#include "index/laesa.h"
#include "index/linear_scan.h"
#include "index/vp_tree.h"
#include "metric/metric.h"
#include "util/rng.h"
#include "util/status.h"

namespace distperm {
namespace index {

/// A spec string split into its name and (key, value) options, in
/// order of appearance.
struct ParsedIndexSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> options;
};

/// Parses "name:key=value,..." per the grammar above.  InvalidArgument
/// on an empty or ill-formed name, a dangling ':', a malformed or
/// empty option, or a duplicate key.
util::Result<ParsedIndexSpec> ParseIndexSpec(const std::string& spec);

/// Live-store knobs that ride inside an index spec.  A spec like
/// "vp-tree:k=4,delta_scan_limit=2048,auto_compact_threshold=256"
/// fully describes a live database: the two live keys configure the
/// engine::LiveDatabase delta buffer and the residual spec ("vp-tree:
/// k=4") is what every generation's shards are built from.
struct LiveSpecOptions {
  /// Hard cap on pending delta entries.  Every query linearly scans
  /// the pinned delta window, so this bounds the per-query delta
  /// overhead; once the buffer is full, Insert/Remove return OutOfRange
  /// (backpressure) until a compaction folds the delta into a new
  /// generation.  Must be >= 1.
  size_t delta_scan_limit = 4096;
  /// Pending-entry count at which a background compaction is scheduled
  /// automatically.  0 (the default) disables auto-compaction — the
  /// owner calls Compact()/CompactAsync() itself.  When set, must be
  /// <= delta_scan_limit (the compaction must trigger before
  /// backpressure does).
  size_t auto_compact_threshold = 0;
  /// Directory for the store's write-ahead log and snapshots.  Empty
  /// (the default) keeps the store purely in memory — PR-5 behavior.
  /// Non-empty makes every Insert/Remove durable per the fsync policy
  /// and every compaction write a snapshot (see engine::LiveDatabase).
  std::string wal_dir;
  /// WAL fsync policy: "always" | "batched" | "never".  Parsed into
  /// storage::FsyncPolicy by the engine; kept as a string here so the
  /// index layer stays independent of the storage layer.
  std::string fsync = "batched";
  /// Registry spec for the per-shard delta side-indexes built over
  /// routed delta slices (parameterized by delta_index_k below).
  /// "laesa" (the default) keeps the delta leg exact; "distperm-prefix"
  /// trades exactness for the paper's candidate filtering.  The side
  /// spec must name a registered index.
  std::string delta_index = "laesa";
  /// The k knob handed to the side-index spec (pivots for laesa,
  /// permutation sites for distperm-prefix).
  size_t delta_index_k = 4;
  /// Pending delta entries below which queries keep the flat linear
  /// scan (side-indexes aren't worth building for a handful of
  /// entries) — also the rebuild cadence: side-indexes are refreshed
  /// every delta_index_min new entries.  0 disables side-indexes
  /// entirely.  Must be <= delta_scan_limit when non-zero.
  size_t delta_index_min = 256;
};

/// Splits `spec` into the live-store knobs and the residual index spec
/// with the live keys removed (option order otherwise preserved, so
/// the residual spec builds bit-identical shards).  InvalidArgument on
/// a malformed spec, a non-integer knob value, delta_scan_limit = 0,
/// or auto_compact_threshold > delta_scan_limit.
util::Result<std::pair<std::string, LiveSpecOptions>> SplitLiveSpec(
    const std::string& spec);

/// The option view a factory reads from: typed getters with defaults
/// that mark keys as consumed, plus a final unknown-key check, so a
/// misspelled option is an error instead of a silently applied default.
class IndexOptions {
 public:
  IndexOptions(std::string index_name,
               std::vector<std::pair<std::string, std::string>> options);

  /// Unsigned integer option (InvalidArgument on unparseable or
  /// negative values); `fallback` when absent.
  util::Result<size_t> GetSize(const std::string& key, size_t fallback);

  /// Floating-point option; `fallback` when absent.
  util::Result<double> GetDouble(const std::string& key, double fallback);

  /// Verbatim string option; `fallback` when absent.  Values are
  /// already non-empty and ','-free by the spec grammar.
  util::Result<std::string> GetString(const std::string& key,
                                      const std::string& fallback);

  /// OK iff every supplied option was consumed by a getter.
  util::Status CheckAllConsumed() const;

  const std::string& index_name() const { return index_name_; }

 private:
  struct Entry {
    std::string key;
    std::string value;
    bool consumed = false;
  };
  const Entry* Find(const std::string& key);

  std::string index_name_;
  std::vector<Entry> entries_;
};

/// String-keyed index factories for point type P.  Global() serves the
/// built-in seven (plus the distperm-prefix variant) and accepts
/// additional Register() calls; registration is not synchronized
/// against concurrent Create(), so register before serving.
template <typename P>
class Registry {
 public:
  using IndexPtr = std::unique_ptr<SearchIndex<P>>;
  /// Builds one index.  `data` is the (possibly empty) shard the index
  /// owns; `options` holds the spec's parsed key=value pairs; `rng`
  /// drives any randomized construction (pivot/site selection).
  using Factory = std::function<util::Result<IndexPtr>(
      std::vector<P> data, const metric::Metric<P>& metric,
      IndexOptions* options, util::Rng* rng)>;

  /// The process-wide registry for P, with the built-ins registered.
  static Registry& Global() {
    static Registry* registry = new Registry(WithBuiltins());
    return *registry;
  }

  /// Registers a factory under `name` (which must be a valid spec name
  /// and unused).
  void Register(const std::string& name, Factory factory) {
    DP_CHECK_MSG(factories_.emplace(name, std::move(factory)).second,
                 "duplicate index registration: " << name);
  }

  bool Has(const std::string& name) const {
    return factories_.find(name) != factories_.end();
  }

  /// All registered names, sorted.
  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    names.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) names.push_back(name);
    return names;
  }

  /// Parses `spec`, looks up the factory, builds the index.  NotFound
  /// for an unregistered name; InvalidArgument for malformed specs,
  /// unknown/duplicate/out-of-range options, or an index that cannot
  /// be built over `data` (e.g. permutation sites on an empty shard).
  util::Result<IndexPtr> Create(const std::string& spec,
                                std::vector<P> data,
                                const metric::Metric<P>& metric,
                                util::Rng* rng) const {
    util::Result<ParsedIndexSpec> parsed = ParseIndexSpec(spec);
    if (!parsed.ok()) return parsed.status();
    auto it = factories_.find(parsed.value().name);
    if (it == factories_.end()) {
      std::string names;
      for (const std::string& name : Names()) {
        names += names.empty() ? name : ", " + name;
      }
      return util::Status::NotFound("unknown index '" +
                                    parsed.value().name +
                                    "'; registered: " + names);
    }
    IndexOptions options(parsed.value().name,
                         std::move(parsed.value().options));
    util::Result<IndexPtr> created =
        it->second(std::move(data), metric, &options, rng);
    if (!created.ok()) return created;
    util::Status all_consumed = options.CheckAllConsumed();
    if (!all_consumed.ok()) return all_consumed;
    return created;
  }

 private:
  Registry() = default;

  static util::Status BadOption(const IndexOptions& options,
                                const std::string& message) {
    return util::Status::InvalidArgument(options.index_name() + ": " +
                                         message);
  }

  static Registry WithBuiltins() {
    Registry registry;
    registry.Register(
        "linear-scan",
        [](std::vector<P> data, const metric::Metric<P>& metric,
           IndexOptions* options, util::Rng*) -> util::Result<IndexPtr> {
          util::Status no_options = options->CheckAllConsumed();
          if (!no_options.ok()) return no_options;
          return IndexPtr(
              new LinearScanIndex<P>(std::move(data), metric));
        });
    registry.Register(
        "aesa",
        [](std::vector<P> data, const metric::Metric<P>& metric,
           IndexOptions* options, util::Rng*) -> util::Result<IndexPtr> {
          util::Status no_options = options->CheckAllConsumed();
          if (!no_options.ok()) return no_options;
          return IndexPtr(new AesaIndex<P>(std::move(data), metric));
        });
    registry.Register(
        "vp-tree",
        [](std::vector<P> data, const metric::Metric<P>& metric,
           IndexOptions* options, util::Rng* rng) -> util::Result<IndexPtr> {
          util::Status no_options = options->CheckAllConsumed();
          if (!no_options.ok()) return no_options;
          return IndexPtr(new VpTreeIndex<P>(std::move(data), metric, rng));
        });
    registry.Register(
        "gh-tree",
        [](std::vector<P> data, const metric::Metric<P>& metric,
           IndexOptions* options, util::Rng* rng) -> util::Result<IndexPtr> {
          util::Status no_options = options->CheckAllConsumed();
          if (!no_options.ok()) return no_options;
          return IndexPtr(new GhTreeIndex<P>(std::move(data), metric, rng));
        });
    registry.Register(
        "laesa",
        [](std::vector<P> data, const metric::Metric<P>& metric,
           IndexOptions* options, util::Rng* rng) -> util::Result<IndexPtr> {
          util::Result<size_t> k = options->GetSize("k", 8);
          if (!k.ok()) return k.status();
          if (k.value() == 0) {
            return BadOption(*options, "k must be >= 1");
          }
          util::Status consumed = options->CheckAllConsumed();
          if (!consumed.ok()) return consumed;
          const size_t pivots = std::min(k.value(), data.size());
          return IndexPtr(
              new LaesaIndex<P>(std::move(data), metric, pivots, rng));
        });
    registry.Register(
        "iaesa",
        [](std::vector<P> data, const metric::Metric<P>& metric,
           IndexOptions* options, util::Rng* rng) -> util::Result<IndexPtr> {
          util::Result<size_t> sites = SiteCount(options, "k", 6, data);
          if (!sites.ok()) return sites.status();
          util::Status consumed = options->CheckAllConsumed();
          if (!consumed.ok()) return consumed;
          return IndexPtr(new IaesaIndex<P>(
              std::move(data), metric,
              std::min(sites.value(), data.size()), rng));
        });
    registry.Register(
        "distperm",
        [](std::vector<P> data, const metric::Metric<P>& metric,
           IndexOptions* options, util::Rng* rng) -> util::Result<IndexPtr> {
          util::Result<size_t> requested = SiteCount(options, "k", 8, data);
          if (!requested.ok()) return requested.status();
          util::Result<double> fraction = Fraction(options, 0.1);
          if (!fraction.ok()) return fraction.status();
          util::Result<size_t> prefix = options->GetSize("prefix", 0);
          if (!prefix.ok()) return prefix.status();
          // Validate against the requested k; clamp both to the shard.
          if (prefix.value() >= requested.value() && prefix.value() != 0) {
            return BadOption(*options, "prefix must be < k (use "
                                       "prefix=0 or omit it for full "
                                       "permutations)");
          }
          util::Status consumed = options->CheckAllConsumed();
          if (!consumed.ok()) return consumed;
          const size_t sites = std::min(requested.value(), data.size());
          const size_t clamped_prefix =
              std::min(prefix.value(), sites - 1);
          return IndexPtr(new DistPermIndex<P>(
              std::move(data), metric, sites, rng, fraction.value(),
              clamped_prefix));
        });
    registry.Register(
        "distperm-prefix",
        [](std::vector<P> data, const metric::Metric<P>& metric,
           IndexOptions* options, util::Rng* rng) -> util::Result<IndexPtr> {
          util::Result<size_t> requested =
              SiteCount(options, "k", 12, data);
          if (!requested.ok()) return requested.status();
          if (requested.value() < 2) {
            return BadOption(*options,
                             "needs k >= 2 to truncate a permutation");
          }
          util::Result<double> fraction = Fraction(options, 0.1);
          if (!fraction.ok()) return fraction.status();
          util::Result<size_t> prefix = options->GetSize(
              "prefix", std::min<size_t>(4, requested.value() - 1));
          if (!prefix.ok()) return prefix.status();
          if (prefix.value() < 1 || prefix.value() >= requested.value()) {
            return BadOption(*options, "prefix must be in [1, k)");
          }
          util::Status consumed = options->CheckAllConsumed();
          if (!consumed.ok()) return consumed;
          // Clamp to the shard; a 1-point shard degenerates to a full
          // 1-site permutation (prefix 0).
          const size_t sites = std::min(requested.value(), data.size());
          const size_t clamped_prefix =
              std::min(prefix.value(), sites - 1);
          return IndexPtr(new DistPermIndex<P>(
              std::move(data), metric, sites, rng, fraction.value(),
              clamped_prefix));
        });
    return registry;
  }

  /// Shared validation for permutation-site counts: parses `key` and
  /// requires a non-empty database and a value in [1, kMaxRank64Sites].
  /// Returns the *requested* count — callers clamp to the shard size
  /// just before construction, after all option validation.
  static util::Result<size_t> SiteCount(IndexOptions* options,
                                        const std::string& key,
                                        size_t fallback,
                                        const std::vector<P>& data) {
    util::Result<size_t> sites = options->GetSize(key, fallback);
    if (!sites.ok()) return sites;
    if (sites.value() == 0) {
      return BadOption(*options, key + " must be >= 1");
    }
    if (sites.value() > core::kMaxRank64Sites) {
      return BadOption(*options,
                       key + " must be <= " +
                           std::to_string(core::kMaxRank64Sites));
    }
    if (data.empty()) {
      return BadOption(*options, "cannot build over an empty database");
    }
    return sites;
  }

  /// Shared validation for verification fractions: in (0, 1].
  static util::Result<double> Fraction(IndexOptions* options,
                                       double fallback) {
    util::Result<double> fraction = options->GetDouble("fraction", fallback);
    if (!fraction.ok()) return fraction;
    if (!(fraction.value() > 0.0 && fraction.value() <= 1.0)) {
      return BadOption(*options, "fraction must be in (0, 1]");
    }
    return fraction;
  }

  std::map<std::string, Factory> factories_;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_REGISTRY_H_
