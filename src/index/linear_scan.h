// Linear scan baseline: the naive algorithm the paper's introduction
// describes — one distance computation per database point per query.

#ifndef DISTPERM_INDEX_LINEAR_SCAN_H_
#define DISTPERM_INDEX_LINEAR_SCAN_H_

#include <string>
#include <vector>

#include "index/index.h"

namespace distperm {
namespace index {

/// Exhaustive scan.  No build cost, no auxiliary storage, n distance
/// computations per query.
template <typename P>
class LinearScanIndex : public SearchIndex<P> {
 public:
  using SearchIndex<P>::data_;

  LinearScanIndex(std::vector<P> data, metric::Metric<P> metric)
      : SearchIndex<P>(std::move(data), std::move(metric)) {}

  std::string name() const override { return "linear-scan"; }

  uint64_t IndexBits() const override { return 0; }

 protected:
  std::vector<SearchResult> RangeQueryImpl(const P& query, double radius,
                                           QueryStats* stats) const override {
    std::vector<SearchResult> results;
    for (size_t i = 0; i < data_.size(); ++i) {
      double d = this->QueryDist(data_[i], query, stats);
      if (d <= radius) results.push_back({i, d});
    }
    SortResults(&results);
    return results;
  }

  std::vector<SearchResult> KnnQueryImpl(const P& query, size_t k,
                                         QueryStats* stats) const override {
    KnnCollector collector(k);
    for (size_t i = 0; i < data_.size(); ++i) {
      collector.Offer(i, this->QueryDist(data_[i], query, stats));
    }
    return collector.Take();
  }
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_LINEAR_SCAN_H_
