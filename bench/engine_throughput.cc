// Batch engine throughput: sweeps shard count x worker threads x index
// type and reports batch wall-clock, queries/second, speedup over the
// single-threaded execution of the same sharded database, per-query
// metric evaluations, and recall against the exact linear scan.
//
// Two invariants are checked on every row and reported in the "cost"
// column: the engine's distance-computation counts with T threads must
// equal the counts with 1 thread (threading must not perturb the paper's
// cost model), and for linear-scan shards each query must cost exactly n
// metric evaluations.
//
// Index structures are selected at runtime through the index registry:
// the default sweep covers four specs, and --index=<spec> restricts the
// run to any single registry entry (e.g. --index=gh-tree or
// --index=distperm:k=12,fraction=0.1).
//
// Usage: engine_throughput [--points=4000] [--queries=48] [--dim=6]
//                          [--k=10] [--seed=7] [--index=<spec>]

#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dataset/vector_gen.h"
#include "engine/batch_stats.h"
#include "engine/query.h"
#include "engine/query_engine.h"
#include "engine/sharded_database.h"
#include "index/linear_scan.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::engine::QueryEngine;
using distperm::engine::QuerySpec;
using distperm::engine::ShardedDatabase;
using distperm::metric::Metric;
using distperm::metric::Vector;
using distperm::util::Rng;

namespace {

std::string Ms(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", seconds * 1e3);
  return buffer;
}

std::string Fixed(double v, int digits) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, v);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 4000));
  const size_t queries =
      static_cast<size_t>(flags.value().GetInt("queries", 48));
  const size_t dim = static_cast<size_t>(flags.value().GetInt("dim", 6));
  const size_t k = static_cast<size_t>(flags.value().GetInt("k", 10));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 7));

  // Registry specs to sweep: the default four, or the single spec the
  // caller asked for.
  std::vector<std::string> specs = {"linear-scan", "vp-tree", "laesa:k=8",
                                    "distperm:k=10,fraction=0.2"};
  if (flags.value().Has("index")) {
    specs = {flags.value().GetString("index", "linear-scan")};
  }

  Rng rng(seed);
  auto data = distperm::dataset::UniformCube(points, dim, &rng);
  Metric<Vector> l2(distperm::metric::LpMetric::L2());

  std::vector<QuerySpec<Vector>> batch;
  for (size_t q = 0; q < queries; ++q) {
    Vector point(dim);
    for (auto& coord : point) coord = rng.NextDouble();
    batch.push_back(QuerySpec<Vector>::Knn(point, k));
  }

  // Exact ground truth for recall, from the unsharded linear scan.
  distperm::index::LinearScanIndex<Vector> scan(data, l2);
  std::vector<std::vector<distperm::index::SearchResult>> truth;
  for (const auto& spec : batch) truth.push_back(scan.KnnQuery(spec.point, k));

  const size_t hardware = std::thread::hardware_concurrency();
  std::cout << "engine throughput: n=" << points << ", d=" << dim
            << ", batch=" << queries << " x " << k
            << "-NN, hardware threads=" << hardware << "\n\n";

  distperm::util::TablePrinter table;
  table.SetHeader({"index", "shards", "threads", "wall ms", "q/s",
                   "speedup", "dist/query", "cost", "recall"});

  bool cost_model_ok = true;
  bool concurrency_win = false;
  double best_speedup = 1.0;
  for (const std::string& spec : specs) {
    for (size_t shards : {1u, 4u, 8u}) {
      auto built = ShardedDatabase<Vector>::BuildFromRegistry(
          data, l2, shards, spec, seed);
      if (!built.ok()) {
        std::cerr << "failed to build '" << spec << "': " << built.status()
                  << "\n";
        return 1;
      }
      const ShardedDatabase<Vector>& db = built.value();
      // Single-threaded reference execution of the same sharded queries:
      // the baseline for speedup and for cost-model equality.
      QueryEngine<Vector> sequential(&db, 1);
      auto base = sequential.RunBatch(batch);

      for (size_t threads : {1u, 2u, 4u, 8u}) {
        // The 1-thread row is the base run itself; rerunning it would
        // double the work and decouple the row from its own baseline.
        auto out = base;
        if (threads > 1) {
          QueryEngine<Vector> engine(&db, threads);
          out = engine.RunBatch(batch);
        }

        bool counts_match =
            out.stats.distance_computations ==
                base.stats.distance_computations &&
            out.per_query_distance_computations ==
                base.per_query_distance_computations;
        if (spec == "linear-scan") {
          for (uint64_t per_query : out.per_query_distance_computations) {
            counts_match = counts_match && per_query == points;
          }
        }
        cost_model_ok = cost_model_ok && counts_match;

        double speedup = threads == 1
                             ? 1.0
                             : base.stats.wall_seconds /
                                   out.stats.wall_seconds;
        if (threads >= 4 && shards >= 4 && speedup > 1.05) {
          concurrency_win = true;
          if (speedup > best_speedup) best_speedup = speedup;
        }
        double qps = static_cast<double>(queries) / out.stats.wall_seconds;
        double recall = distperm::engine::AverageRecall(out.results, truth);
        table.AddRow(
            {spec, std::to_string(shards), std::to_string(threads),
             Ms(out.stats.wall_seconds), Fixed(qps, 0), Fixed(speedup, 2),
             Fixed(static_cast<double>(out.stats.distance_computations) /
                       static_cast<double>(queries),
                   1),
             counts_match ? "OK" : "MISMATCH", Fixed(recall, 3)});
      }
    }
  }
  table.Print(std::cout);

  std::cout << "\ncost model: "
            << (cost_model_ok
                    ? "OK — distance counts are identical across all "
                      "thread counts (and n/query for linear scan)"
                    : "MISMATCH — concurrency perturbed the accounting")
            << "\n";
  if (concurrency_win) {
    std::cout << "concurrency: with >=4 threads on >=4 shards the batch "
                 "ran up to "
              << Fixed(best_speedup, 2)
              << "x faster than the same sharded execution on 1 thread\n";
  } else {
    std::cout << "concurrency: no wall-clock win measured (hardware "
                 "threads="
              << hardware
              << "); on a multi-core host >=4 threads on >=4 shards beat "
                 "sequential execution\n";
  }
  return cost_model_ok ? 0 : 1;
}
