// Ablation: truncated permutation prefixes vs full permutations.
//
// Practical permutation indexes often store only each point's
// `prefix_length` closest sites.  This sweep measures what truncation
// costs: distinct-permutation count (information), index bits per
// point, and 10-NN recall at a fixed verification fraction.  It
// complements the paper's storage analysis — the full permutation's
// ceil(lg k!) bits are already small, and the Euclidean bound says most
// of those bits are redundant anyway.
//
// Usage: ablation_prefix_length [--points=20000] [--sites=16]
//                               [--queries=40] [--seed=6]

#include <cstdio>
#include <iostream>
#include <vector>

#include "dataset/vector_gen.h"
#include "index/distperm_index.h"
#include "index/linear_scan.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::index::DistPermIndex;
using distperm::index::LinearScanIndex;
using distperm::metric::LpMetric;
using distperm::metric::Metric;
using distperm::metric::Vector;
using distperm::util::Rng;
using distperm::util::TablePrinter;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 20000));
  const size_t sites =
      static_cast<size_t>(flags.value().GetInt("sites", 16));
  const int queries =
      static_cast<int>(flags.value().GetInt("queries", 40));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 6));

  Rng rng(seed);
  auto data = distperm::dataset::UniformCube(points, 4, &rng);
  Metric<Vector> l2(LpMetric::L2());
  LinearScanIndex<Vector> reference(data, l2);

  std::cout << "Ablation: permutation prefix length (d=4, k=" << sites
            << ", n=" << points << ", verify fraction 0.1)\n\n";
  TablePrinter table;
  table.SetHeader({"prefix m", "distinct perms", "bits/point",
                   "10-NN recall", "dist/query"});

  std::vector<size_t> prefix_lengths = {2, 3, 4, 6, 8, 12, sites};
  for (size_t m : prefix_lengths) {
    Rng site_rng(seed + 100);  // same sites for every m
    DistPermIndex<Vector> index(data, l2, sites, &site_rng, 0.1, m);
    double recall = 0.0;
    uint64_t cost = 0;
    Rng query_rng(seed + 200);
    for (int q = 0; q < queries; ++q) {
      Vector query(4);
      for (auto& coord : query) coord = query_rng.NextDouble();
      auto truth = reference.KnnQuery(query, 10);
      index.ResetQueryCount();
      auto result = index.KnnQuery(query, 10);
      cost += index.query_distance_computations();
      size_t hits = 0;
      for (const auto& t : truth) {
        for (const auto& r : result) {
          if (r.id == t.id) {
            ++hits;
            break;
          }
        }
      }
      recall += static_cast<double>(hits) / 10.0;
    }
    char recall_s[32], cost_s[32];
    std::snprintf(recall_s, sizeof(recall_s), "%.3f", recall / queries);
    std::snprintf(cost_s, sizeof(cost_s), "%.1f",
                  static_cast<double>(cost) / queries);
    table.AddRow({m == sites ? "full" : std::to_string(m),
                  std::to_string(index.DistinctPermutationCount()),
                  std::to_string(index.IndexBits() / points), recall_s,
                  cost_s});
    std::cerr << "prefix " << m << " done\n";
  }
  table.Print(std::cout);
  std::cout << "\nReading guide: recall climbs quickly with the prefix "
               "length and saturates well before the full permutation — "
               "consistent with the paper's finding that most of the "
               "permutation's lg k! bits carry little information in low "
               "dimensions.\n";
  return 0;
}
