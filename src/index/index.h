// Proximity-search index interface.
//
// The cost model follows the similarity-search literature (and the
// paper): metric evaluations are the expensive operation, so every index
// counts the distance computations it performs, separately for build and
// query phases.  Indexes own a copy of the database; results identify
// points by their position in that database.
//
// Queries are const and safe to issue from many threads at once: each
// call accumulates its metric evaluations in a private QueryStats and
// flushes them once into the index's atomic aggregate, so the per-call
// numbers reproduce the paper's single-threaded cost model exactly no
// matter how the calls are scheduled.
//
// The query surface is one entry point: Search() takes an
// index::SearchRequest (kNN / range / kNN-within-radius, plus optional
// distance budget and candidate-fraction knobs — see search.h) and
// returns an index::SearchResponse.  Implementations override the
// single SearchImpl virtual; the legacy RangeQuery/KnnQuery calls are
// thin shims over Search() kept for source compatibility.

#ifndef DISTPERM_INDEX_INDEX_H_
#define DISTPERM_INDEX_INDEX_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "index/query_scratch.h"
#include "index/search.h"
#include "metric/metric.h"
#include "util/status.h"

namespace distperm {
namespace index {

/// Abstract proximity index over points of type P.
///
/// Thread-safety contract: after construction, Search (and the
/// RangeQuery/KnnQuery shims) are const and may be called concurrently.
/// Implementations must keep all per-query state on the stack or in the
/// per-thread QueryScratch and charge metric evaluations to the
/// SearchContext's QueryStats, never to index members.
template <typename P>
class SearchIndex {
 public:
  /// Takes ownership of a copy of the database.
  SearchIndex(std::vector<P> data, metric::Metric<P> metric)
      : data_(std::move(data)), metric_(std::move(metric)) {}
  virtual ~SearchIndex() = default;

  SearchIndex(const SearchIndex&) = delete;
  SearchIndex& operator=(const SearchIndex&) = delete;

  /// Short name for reports ("linear-scan", "laesa", ...).  Every name
  /// is also a key in index::Registry, so name() round-trips through
  /// Registry::Create.
  virtual std::string name() const = 0;

  /// Answers one SearchRequest.  The request is validated first
  /// (InvalidArgument on k = 0 in a kNN mode, negative or NaN radius,
  /// NaN query coordinates, out-of-range candidate fraction) — a
  /// rejected request costs zero metric evaluations.  The response's
  /// stats cover exactly this call; they also feed the index-wide
  /// aggregate read by query_distance_computations().
  SearchResponse Search(const SearchRequest<P>& request) const {
    SearchResponse response;
    response.status = ValidateRequest(request);
    if (!response.status.ok()) return response;
    KnnCollector* collector = nullptr;
    if (request.mode != SearchMode::kRange) {
      collector = &QueryScratch::ForThread().collector;
      collector->Reset(request.k);
      collector->Reserve(std::min(request.k, data_.size()));
    }
    SearchContext context(request.mode, request.radius,
                          request.max_distance_computations,
                          &response.stats, collector,
                          request.initial_radius_bound,
                          request.shared_bound);
    SearchImpl(request, &context);
    response.results = context.TakeResults();
    response.truncated = context.truncated();
    query_count_.fetch_add(response.stats.distance_computations,
                           std::memory_order_relaxed);
    return response;
  }

  /// Legacy shim over Search(): all points within `radius` of `query`
  /// (inclusive), sorted by (distance, id).  When `stats` is non-null
  /// the call's metric evaluations are added to it.  Invalid input
  /// (negative/NaN radius, NaN coordinates) returns an empty result;
  /// call Search() directly for the util::Status.
  std::vector<SearchResult> RangeQuery(const P& query, double radius,
                                       QueryStats* stats = nullptr) const {
    return ShimSearch(SearchRequest<P>::Range(query, radius), stats);
  }

  /// Legacy shim over Search(): the `k` nearest points (fewer if the
  /// database is smaller), sorted by (distance, id); distance ties are
  /// broken toward lower ids.  Stats and error behavior as for
  /// RangeQuery.
  std::vector<SearchResult> KnnQuery(const P& query, size_t k,
                                     QueryStats* stats = nullptr) const {
    return ShimSearch(SearchRequest<P>::Knn(query, k), stats);
  }

  /// Bits of auxiliary storage the index keeps beyond the raw data.
  virtual uint64_t IndexBits() const = 0;

  /// Database size.
  size_t size() const { return data_.size(); }
  /// The stored database.
  const std::vector<P>& data() const { return data_; }
  /// The metric.
  const metric::Metric<P>& metric() const { return metric_; }

  /// Metric evaluations spent answering queries since ResetQueryCount(),
  /// aggregated across all threads.
  uint64_t query_distance_computations() const {
    return query_count_.load(std::memory_order_relaxed);
  }
  /// Metric evaluations spent building the index.
  uint64_t build_distance_computations() const { return build_count_; }
  /// Zeroes the query aggregate (build count is immutable after
  /// construction).
  void ResetQueryCount() {
    query_count_.store(0, std::memory_order_relaxed);
  }

 protected:
  /// The one query implementation: const, reentrant, and required to
  /// charge every metric evaluation to `context->stats()` (via
  /// QueryDist or the flat data path's charged helpers).  The
  /// implementation drives its loop with the context's Emit / Radius /
  /// StopAfterBudget and must return promptly once StopAfterBudget()
  /// reports the budget spent.  The request is pre-validated.
  virtual void SearchImpl(const SearchRequest<P>& request,
                          SearchContext* context) const = 0;

  /// Metric evaluation charged to the query phase.
  double QueryDist(const P& a, const P& b, QueryStats* stats) const {
    ++stats->distance_computations;
    return metric_(a, b);
  }
  /// Metric evaluation charged to the build phase (construction is
  /// single-threaded, so a plain counter suffices).
  double BuildDist(const P& a, const P& b) {
    ++build_count_;
    return metric_(a, b);
  }

  std::vector<P> data_;
  metric::Metric<P> metric_;
  uint64_t build_count_ = 0;

 private:
  std::vector<SearchResult> ShimSearch(SearchRequest<P> request,
                                       QueryStats* stats) const {
    SearchResponse response = Search(request);
    if (stats != nullptr) stats->Merge(response.stats);
    return std::move(response.results);
  }

  mutable std::atomic<uint64_t> query_count_{0};
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_INDEX_H_
