// Connected-component analysis of distance-permutation regions.
//
// In Euclidean space every distance permutation's region is an
// intersection of half-planes, hence convex and connected.  With the L1
// or L-infinity metrics, bisectors can contain 2-dimensional pieces and
// behave "really abnormally" (Section 2 quoting Icking et al.), and a
// single permutation's region can be disconnected.  This module counts,
// on a probing grid, both the number of distinct permutations and the
// number of connected components those permutation regions form
// (4-neighbour connectivity), making the disconnection measurable.

#ifndef DISTPERM_GEOMETRY_CELL_COMPONENTS_H_
#define DISTPERM_GEOMETRY_CELL_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "metric/metric.h"

namespace distperm {
namespace geometry {

/// Result of a grid component analysis.
struct ComponentAnalysis {
  size_t distinct_permutations = 0;
  size_t connected_components = 0;
  uint64_t probes = 0;

  /// True iff some permutation's region is split into several grid
  /// components.  (Grid artifacts can also split thin regions, so treat
  /// a small excess as noise; a large excess is structural.)
  bool HasDisconnectedRegions() const {
    return connected_components > distinct_permutations;
  }
};

/// Probes a `resolution` x `resolution` grid over [lo, hi]^2 (2-D only),
/// labels each grid point with its distance permutation under the Lp
/// metric, and counts permutations and 4-connected components via
/// union-find.
ComponentAnalysis AnalyzeCellComponents2D(
    const std::vector<metric::Vector>& sites, double p, double lo,
    double hi, size_t resolution);

}  // namespace geometry
}  // namespace distperm

#endif  // DISTPERM_GEOMETRY_CELL_COMPONENTS_H_
