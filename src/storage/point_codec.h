// Byte encoding of the engine's point types for WAL payloads and
// snapshot sections.
//
// The engine is generic over its point type P; the two instantiations
// the library ships are dense vectors (std::vector<double>) and byte
// strings (std::string, compared with edit distance).  PointCodec<P>
// gives each a self-delimiting little-endian encoding:
//
//     vector:  [u32 dim][dim x f64 little-endian bit patterns]
//     string:  [u32 len][len raw bytes]
//
// Doubles travel as IEEE-754 bit patterns, so an encode/decode round
// trip is bit-exact and a recovered store fingerprints identically to
// the store that wrote the log.  Decode is bounds-checked: a torn or
// corrupted payload yields false, never a read past the buffer.

#ifndef DISTPERM_STORAGE_POINT_CODEC_H_
#define DISTPERM_STORAGE_POINT_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/coding.h"

namespace distperm {
namespace storage {

template <typename P>
struct PointCodec;

template <>
struct PointCodec<std::vector<double>> {
  /// Stable name recorded in snapshot meta so a store written for one
  /// point type is never decoded as another.
  static constexpr const char* kName = "vector_f64";

  static void Encode(std::string* out, const std::vector<double>& point) {
    PutFixed32(out, static_cast<uint32_t>(point.size()));
    for (double v : point) PutDouble(out, v);
  }

  /// Decodes one point at `p`, advancing `*consumed` past it.  False on
  /// truncation (caller treats the payload as corrupt).
  static bool Decode(const uint8_t* p, size_t size, size_t* consumed,
                     std::vector<double>* out) {
    if (size < 4) return false;
    const uint32_t dim = GetFixed32(p);
    const size_t need = 4 + static_cast<size_t>(dim) * 8;
    if (size < need) return false;
    out->resize(dim);
    for (uint32_t i = 0; i < dim; ++i) {
      (*out)[i] = GetDouble(p + 4 + static_cast<size_t>(i) * 8);
    }
    *consumed = need;
    return true;
  }
};

template <>
struct PointCodec<std::string> {
  static constexpr const char* kName = "string";

  static void Encode(std::string* out, const std::string& point) {
    PutLengthPrefixed(out, point);
  }

  static bool Decode(const uint8_t* p, size_t size, size_t* consumed,
                     std::string* out) {
    if (size < 4) return false;
    const uint32_t len = GetFixed32(p);
    if (size < 4 + static_cast<size_t>(len)) return false;
    out->assign(reinterpret_cast<const char*>(p + 4), len);
    *consumed = 4 + static_cast<size_t>(len);
    return true;
  }
};

}  // namespace storage
}  // namespace distperm

#endif  // DISTPERM_STORAGE_POINT_CODEC_H_
