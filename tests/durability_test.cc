// Durability tests for the live engine: fresh durable opens, recovery
// (snapshot + WAL replay) that is bit-identical to the pre-crash
// store AND to a fresh build over the equivalent dataset, fault
// injection at the nasty points (torn WAL tail, failed fsync, crash
// mid-compaction), exactness of the durability metrics, and the
// DeltaLog edge cases (chunk boundaries, replay idempotence).
//
// The crash tests use storage::FaultInjectionEnv: the injected crash
// leaves exactly the bytes a SIGKILL would have, and the store is then
// reopened with the real Env — the same sequence a reboot runs.  The
// fork+SIGKILL variant lives in crash_recovery_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dataset/string_gen.h"
#include "dataset/vector_gen.h"
#include "engine/generation_store.h"
#include "engine/live_database.h"
#include "engine/query.h"
#include "engine/query_engine.h"
#include "engine/sharded_database.h"
#include "metric/lp.h"
#include "metric/string_metrics.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "util/rng.h"
#include "util/status.h"

namespace distperm {
namespace engine {
namespace {

using index::SearchResult;
using metric::Vector;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }
metric::Metric<std::string> Lev() {
  return metric::Metric<std::string>(metric::LevenshteinMetric());
}

/// A per-test store directory, emptied of any leftovers from previous
/// runs (TempDir persists across ctest invocations).
std::string FreshStoreDir(const std::string& name) {
  storage::Env* env = storage::Env::Default();
  std::string dir = ::testing::TempDir() + "/durability_" + name;
  EXPECT_TRUE(env->CreateDir(dir).ok());
  auto listing = env->ListDir(dir);
  if (listing.ok()) {
    for (const std::string& file : listing.value()) {
      env->DeleteFile(dir + "/" + file);
    }
  }
  return dir;
}

/// Appends the durability knobs to an index spec.
std::string WithWal(const std::string& spec, const std::string& dir,
                    const std::string& fsync = "always") {
  return spec + (spec.find(':') == std::string::npos ? ":" : ",") +
         "wal_dir=" + dir + ",fsync=" + fsync;
}

template <typename P>
std::vector<std::pair<double, P>> Fingerprint(
    const std::vector<SearchResult>& results,
    const std::function<P(size_t)>& resolve) {
  std::vector<std::pair<double, P>> prints;
  prints.reserve(results.size());
  for (const SearchResult& r : results) {
    prints.emplace_back(r.distance, resolve(r.id));
  }
  std::sort(prints.begin(), prints.end());
  return prints;
}

std::vector<QuerySpec<Vector>> VectorBatch(util::Rng* rng) {
  std::vector<QuerySpec<Vector>> batch;
  for (int q = 0; q < 3; ++q) {
    Vector point = {rng->NextDouble(), rng->NextDouble(), rng->NextDouble()};
    batch.push_back(QuerySpec<Vector>::Knn(point, 7));
  }
  Vector point = {rng->NextDouble(), rng->NextDouble(), rng->NextDouble()};
  batch.push_back(QuerySpec<Vector>::Range(point, 0.4));
  return batch;
}

// ---------------------------------------------------------------- DeltaLog

TEST(DeltaLog, AppendsAcrossChunkBoundaries) {
  // kChunkSize is the lazily-allocated block size: the boundary entry,
  // the one before it, and the first of the next chunk must all read
  // back intact, for several chunks' worth of appends.
  DeltaLog<std::string> log;
  const size_t n = DeltaLog<std::string>::kChunkSize * 3 + 5;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(log.Append({i % 7 == 0, i, 0, "entry-" + std::to_string(i)}));
    ASSERT_EQ(log.committed(), i + 1);
  }
  for (size_t i = 0; i < n; ++i) {
    const auto& entry = log.entry(i);
    EXPECT_EQ(entry.is_remove, i % 7 == 0) << i;
    EXPECT_EQ(entry.id, i) << i;
    EXPECT_EQ(entry.point, "entry-" + std::to_string(i)) << i;
  }
}

TEST(DeltaLog, ExactChunkMultipleThenOneMore) {
  DeltaLog<std::string> log;
  const size_t boundary = DeltaLog<std::string>::kChunkSize;
  for (size_t i = 0; i < boundary; ++i) {
    ASSERT_TRUE(log.Append({false, i, 0, "x"}));
  }
  ASSERT_EQ(log.committed(), boundary);
  EXPECT_EQ(log.entry(boundary - 1).id, boundary - 1);
  // This append is the first touch of chunk 1.
  ASSERT_TRUE(log.Append({false, boundary, 0, "first-of-chunk-1"}));
  EXPECT_EQ(log.entry(boundary).point, "first-of-chunk-1");
  EXPECT_EQ(log.entry(boundary - 1).id, boundary - 1);  // chunk 0 intact
}

// ------------------------------------------------------- fresh durable open

TEST(Durability, FreshOpenCreatesSnapshotAndWal) {
  const std::string dir = FreshStoreDir("fresh_open");
  util::Rng rng(11);
  auto data = dataset::UniformCube(40, 3, &rng);
  auto live = LiveDatabase<Vector>::Open(data, L2(), 2,
                                         WithWal("vp-tree", dir), 7);
  ASSERT_TRUE(live.ok()) << live.status();
  storage::Env* env = storage::Env::Default();
  EXPECT_TRUE(env->FileExists(dir + "/" + SnapshotFileName(1)));
  EXPECT_TRUE(env->FileExists(dir + "/" + WalFileName(1)));
  EXPECT_EQ(live.value()->generation_number(), 1u);
  EXPECT_EQ(live.value()->size(), 40u);
}

TEST(Durability, OpeningExistingStoreWithSeedDataIsRejected) {
  const std::string dir = FreshStoreDir("reject_seed");
  util::Rng rng(12);
  auto data = dataset::UniformCube(20, 3, &rng);
  const std::string spec = WithWal("vp-tree", dir);
  { ASSERT_TRUE(LiveDatabase<Vector>::Open(data, L2(), 2, spec, 7).ok()); }
  auto reopened = LiveDatabase<Vector>::Open(data, L2(), 2, spec, 7);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(Durability, MismatchedIdentityIsRefused) {
  const std::string dir = FreshStoreDir("identity");
  util::Rng rng(13);
  auto data = dataset::UniformCube(20, 3, &rng);
  { ASSERT_TRUE(LiveDatabase<Vector>::Open(data, L2(), 2,
                                           WithWal("vp-tree", dir), 7)
                    .ok()); }
  // Wrong spec, wrong seed, wrong shard count: all refused, never
  // silently served.
  EXPECT_FALSE(
      LiveDatabase<Vector>::Open({}, L2(), 2, WithWal("gh-tree", dir), 7)
          .ok());
  EXPECT_FALSE(
      LiveDatabase<Vector>::Open({}, L2(), 2, WithWal("vp-tree", dir), 8)
          .ok());
  EXPECT_FALSE(
      LiveDatabase<Vector>::Open({}, L2(), 3, WithWal("vp-tree", dir), 7)
          .ok());
}

// ------------------------------------------------- reopen is bit-identical

/// The acceptance loop: seed a durable store, apply writes (half
/// before a compaction, half after, some removes), close it, reopen
/// from disk, and require (a) the reopened view is exactly the
/// pre-close view — same ids, same points — and (b) its answers are
/// fingerprint-identical to a fresh in-memory build over the same
/// final dataset.
template <typename P>
void RoundTripStore(const std::string& tag, const std::string& base_spec,
                    bool exact, std::vector<P> data,
                    const metric::Metric<P>& metric, std::vector<P> extra,
                    const std::vector<QuerySpec<P>>& batch) {
  const std::string dir = FreshStoreDir(tag);
  const std::string spec = WithWal(base_spec, dir);
  const uint64_t seed = 29;

  std::vector<P> final_view;
  typename QueryEngine<P>::BatchOutput before;
  {
    auto live = LiveDatabase<P>::Open(data, metric, 3, spec, seed);
    ASSERT_TRUE(live.ok()) << live.status();
    auto& store = *live.value();
    const size_t half = extra.size() / 2;
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(store.Insert(extra[i]).ok());
    }
    ASSERT_TRUE(store.Remove(1).ok());
    ASSERT_TRUE(store.Compact().ok());
    for (size_t i = half; i < extra.size(); ++i) {
      ASSERT_TRUE(store.Insert(extra[i]).ok());
    }
    ASSERT_TRUE(store.Remove(0).ok());
    final_view = store.Pin().Materialize();
    before = store.RunBatch(batch);
    ASSERT_TRUE(before.all_ok());
  }

  auto reopened = LiveDatabase<P>::Open({}, metric, 3, spec, seed);
  ASSERT_TRUE(reopened.ok()) << base_spec << ": " << reopened.status();
  auto& store = *reopened.value();

  // (a) Exactly the pre-close store: same materialized view (order
  // included), same generation, and the same answers with the same ids.
  EXPECT_EQ(store.generation_number(), 2u) << base_spec;
  EXPECT_EQ(store.Pin().Materialize(), final_view) << base_spec;
  auto after = store.RunBatch(batch);
  ASSERT_TRUE(after.all_ok());
  EXPECT_EQ(after.results, before.results) << base_spec;

  // (b) For exact specs, also fingerprint-identical to a fresh
  // in-memory build over the equivalent dataset.  Approximate specs
  // (distperm) are covered by (a) only: their candidate sets depend on
  // the index layout, which a fresh build over the compacted order
  // legitimately changes.
  if (!exact) return;
  auto fresh = LiveDatabase<P>::Open(final_view, metric, 3, base_spec, seed);
  ASSERT_TRUE(fresh.ok());
  auto want = fresh.value()->RunBatch(batch);
  ASSERT_TRUE(want.all_ok());
  auto snapshot = store.Pin();
  const std::function<P(size_t)> live_resolve = [&snapshot](size_t id) {
    auto point = snapshot.ResolvePoint(id);
    EXPECT_TRUE(point.ok());
    return point.ok() ? point.value() : P{};
  };
  const std::function<P(size_t)> fresh_resolve = [&final_view](size_t id) {
    return final_view.at(id);
  };
  for (size_t q = 0; q < batch.size(); ++q) {
    EXPECT_EQ(Fingerprint<P>(after.results[q], live_resolve),
              Fingerprint<P>(want.results[q], fresh_resolve))
        << base_spec << " query " << q;
  }
}

TEST(Durability, VectorsReopenBitIdenticalAcrossSpecs) {
  for (const auto& [spec, exact] :
       {std::pair<const char*, bool>{"vp-tree", true},
        {"laesa:k=4", true},
        {"distperm:k=6,fraction=0.5", false}}) {
    util::Rng rng(31);
    auto data = dataset::UniformCube(60, 3, &rng);
    auto extra = dataset::UniformCube(20, 3, &rng);
    util::Rng qrng(32);
    RoundTripStore<Vector>(std::string("vec_") + spec[0] + spec[1], spec,
                           exact, data, L2(), extra, VectorBatch(&qrng));
  }
}

TEST(Durability, StringsReopenBitIdenticalAcrossSpecs) {
  for (const auto& [spec, exact] :
       {std::pair<const char*, bool>{"vp-tree", true},
        {"gh-tree", true},
        {"distperm:k=6,fraction=0.5", false}}) {
    util::Rng rng(33);
    auto words = dataset::DnaSequences(50, 4, 5, 12, 0.1, &rng);
    auto extra = dataset::DnaSequences(16, 4, 5, 12, 0.1, &rng);
    std::vector<QuerySpec<std::string>> batch = {
        QuerySpec<std::string>::Knn("acgtacgt", 6),
        QuerySpec<std::string>::Range(words[7], 4.0),
        QuerySpec<std::string>::KnnWithinRadius("tttt", 3, 5.0)};
    RoundTripStore<std::string>(std::string("str_") + spec[0] + spec[1],
                                spec, exact, words, Lev(), extra, batch);
  }
}

TEST(Durability, ReplayIsIdempotentAcrossRepeatedOpens) {
  // Opening a store replays its WAL onto its snapshot; opening it
  // again replays the same records again.  The state must be the same
  // every time — replay must not duplicate or re-id anything.
  const std::string dir = FreshStoreDir("idempotent");
  const std::string spec = WithWal("vp-tree", dir);
  util::Rng rng(41);
  auto data = dataset::UniformCube(30, 3, &rng);
  std::vector<Vector> view;
  {
    auto live = LiveDatabase<Vector>::Open(data, L2(), 2, spec, 5);
    ASSERT_TRUE(live.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          live.value()
              ->Insert({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()})
              .ok());
    }
    ASSERT_TRUE(live.value()->Remove(3).ok());
    view = live.value()->Pin().Materialize();
  }
  for (int reopen = 0; reopen < 3; ++reopen) {
    auto live = LiveDatabase<Vector>::Open({}, L2(), 2, spec, 5);
    ASSERT_TRUE(live.ok()) << "reopen " << reopen;
    EXPECT_EQ(live.value()->Pin().Materialize(), view) << reopen;
    EXPECT_EQ(live.value()->delta_entries(), 11u) << reopen;
  }
}

TEST(Durability, WritesAfterRecoveryChainCorrectly) {
  // The WAL continues (append mode, next seq) after a recovery; a
  // second recovery must see old and new records as one log.
  const std::string dir = FreshStoreDir("chain");
  const std::string spec = WithWal("vp-tree", dir);
  {
    auto live = LiveDatabase<Vector>::Open({{0, 0}, {1, 1}, {2, 2}}, L2(),
                                           1, spec, 3);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE(live.value()->Insert({3, 3}).ok());
  }
  {
    auto live = LiveDatabase<Vector>::Open({}, L2(), 1, spec, 3);
    ASSERT_TRUE(live.ok());
    EXPECT_EQ(live.value()->size(), 4u);
    ASSERT_TRUE(live.value()->Insert({4, 4}).ok());
    ASSERT_TRUE(live.value()->Remove(0).ok());
  }
  auto live = LiveDatabase<Vector>::Open({}, L2(), 1, spec, 3);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live.value()->size(), 4u);  // 3 base + 2 inserts - 1 remove
  EXPECT_EQ(live.value()->delta_entries(), 3u);
}

TEST(Durability, CompactionRetiresOldGenerationFiles) {
  const std::string dir = FreshStoreDir("retire");
  util::Rng rng(51);
  auto data = dataset::UniformCube(30, 3, &rng);
  auto live = LiveDatabase<Vector>::Open(data, L2(), 2,
                                         WithWal("vp-tree", dir), 9);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(live.value()->Insert({0.5, 0.5, 0.5}).ok());
  ASSERT_TRUE(live.value()->Compact().ok());
  storage::Env* env = storage::Env::Default();
  EXPECT_TRUE(env->FileExists(dir + "/" + SnapshotFileName(2)));
  EXPECT_TRUE(env->FileExists(dir + "/" + WalFileName(2)));
  EXPECT_FALSE(env->FileExists(dir + "/" + SnapshotFileName(1)));
  EXPECT_FALSE(env->FileExists(dir + "/" + WalFileName(1)));
}

TEST(Durability, StrayFilesAreCleanedOnOpen) {
  const std::string dir = FreshStoreDir("strays");
  util::Rng rng(52);
  auto data = dataset::UniformCube(20, 3, &rng);
  const std::string spec = WithWal("vp-tree", dir);
  { ASSERT_TRUE(LiveDatabase<Vector>::Open(data, L2(), 2, spec, 7).ok()); }
  // Plant the leftovers of a crashed rotation: a half-written tmp
  // snapshot and a next-generation WAL that never got published.
  storage::Env* env = storage::Env::Default();
  for (const std::string& name :
       {SnapshotFileName(2) + ".tmp", WalFileName(2)}) {
    auto file = env->NewWritableFile(dir + "/" + name, true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append(std::string("garbage")).ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
  auto live = LiveDatabase<Vector>::Open({}, L2(), 2, spec, 7);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live.value()->size(), 20u);
  EXPECT_FALSE(env->FileExists(dir + "/" + SnapshotFileName(2) + ".tmp"));
  EXPECT_FALSE(env->FileExists(dir + "/" + WalFileName(2)));
}

// ----------------------------------------------------------- fault injection

TEST(Durability, TornWalTailIsTruncatedOnRecovery) {
  const std::string dir = FreshStoreDir("torn_tail");
  const std::string spec = WithWal("vp-tree", dir, "always");
  util::Rng rng(61);
  auto data = dataset::UniformCube(30, 3, &rng);
  storage::FaultInjectionEnv fault(storage::Env::Default());
  {
    LiveOptions options;
    options.env = &fault;
    auto live = LiveDatabase<Vector>::Open(data, L2(), 2, spec, 7, options);
    ASSERT_TRUE(live.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          live.value()
              ->Insert({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()})
              .ok());
    }
    // The next insert's frame (16-byte header + 29-byte payload) tears
    // after 20 bytes — mid-frame, exactly what a power cut leaves.
    fault.CrashAfterBytes(20);
    EXPECT_FALSE(live.value()->Insert({0.1, 0.2, 0.3}).ok());
    EXPECT_TRUE(fault.crashed());
    // The failed write must not be visible in memory either.
    EXPECT_EQ(live.value()->delta_entries(), 5u);
  }
  // Reboot: reopen with the real env.  The 5 acked inserts are there
  // (fsync=always), the torn frame is gone, and the store keeps
  // accepting writes whose WAL records chain onto the truncated log.
  auto live = LiveDatabase<Vector>::Open({}, L2(), 2, spec, 7);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(live.value()->size(), 35u);
  EXPECT_EQ(live.value()->delta_entries(), 5u);
  ASSERT_TRUE(live.value()->Insert({0.4, 0.5, 0.6}).ok());
  auto again = LiveDatabase<Vector>::Open({}, L2(), 2, spec, 7);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->size(), 36u);
}

TEST(Durability, FailedFsyncSurfacesAndDoesNotCommit) {
  const std::string dir = FreshStoreDir("failed_fsync");
  const std::string spec = WithWal("vp-tree", dir, "always");
  util::Rng rng(62);
  auto data = dataset::UniformCube(20, 3, &rng);
  storage::FaultInjectionEnv fault(storage::Env::Default());
  LiveOptions options;
  options.env = &fault;
  auto live = LiveDatabase<Vector>::Open(data, L2(), 2, spec, 7, options);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(live.value()->Insert({0.1, 0.1, 0.1}).ok());

  fault.FailNextSync();
  auto failed = live.value()->Insert({0.2, 0.2, 0.2});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), util::StatusCode::kIoError);
  // WAL-before-commit: the failed insert is not in the serving view.
  EXPECT_EQ(live.value()->delta_entries(), 1u);
  // The poisoned log rejects further appends...
  EXPECT_FALSE(live.value()->Insert({0.3, 0.3, 0.3}).ok());
  // ...until a compaction rotates to a fresh log, after which the
  // store is fully usable again.
  ASSERT_TRUE(live.value()->Compact().ok());
  ASSERT_TRUE(live.value()->Insert({0.4, 0.4, 0.4}).ok());
  EXPECT_EQ(live.value()->size(), 22u);
}

TEST(Durability, CrashDuringCompactionKeepsOldGeneration) {
  const std::string dir = FreshStoreDir("crash_compact");
  const std::string spec = WithWal("vp-tree", dir, "always");
  util::Rng rng(63);
  auto data = dataset::UniformCube(40, 3, &rng);
  storage::FaultInjectionEnv fault(storage::Env::Default());
  std::vector<Vector> view_before_crash;
  {
    LiveOptions options;
    options.env = &fault;
    auto live = LiveDatabase<Vector>::Open(data, L2(), 2, spec, 7, options);
    ASSERT_TRUE(live.ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(
          live.value()
              ->Insert({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()})
              .ok());
    }
    view_before_crash = live.value()->Pin().Materialize();
    // The compaction's first durable step is the multi-kilobyte tmp
    // snapshot: a 200-byte budget tears it mid-write.
    fault.CrashAfterBytes(200);
    util::Status compacted = live.value()->Compact();
    ASSERT_FALSE(compacted.ok());
    // The old generation keeps serving in memory despite the crash.
    EXPECT_EQ(live.value()->generation_number(), 1u);
    EXPECT_EQ(live.value()->Pin().Materialize(), view_before_crash);
  }
  // Reboot with the real env: generation 1 + full WAL replay — the
  // torn tmp snapshot is ignored and cleaned up.
  auto live = LiveDatabase<Vector>::Open({}, L2(), 2, spec, 7);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(live.value()->generation_number(), 1u);
  EXPECT_EQ(live.value()->Pin().Materialize(), view_before_crash);
  auto listing = storage::Env::Default()->ListDir(dir);
  ASSERT_TRUE(listing.ok());
  for (const std::string& name : listing.value()) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

TEST(Durability, TransientCompactionFailureRetriesInBackground) {
  const std::string dir = FreshStoreDir("backoff");
  const std::string spec = WithWal("vp-tree", dir, "always");
  util::Rng rng(64);
  auto data = dataset::UniformCube(30, 3, &rng);
  storage::FaultInjectionEnv fault(storage::Env::Default());
  obs::MetricsRegistry registry("durability_test");
  LiveOptions options;
  options.env = &fault;
  options.metrics = &registry;
  auto live = LiveDatabase<Vector>::Open(data, L2(), 2, spec, 7, options);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(live.value()->Insert({0.5, 0.5, 0.5}).ok());

  // First attempt hits a failed fsync; the backoff retry succeeds.
  fault.FailNextSync();
  live.value()->CompactAsync();
  live.value()->WaitForCompaction();
  EXPECT_TRUE(live.value()->last_background_compact_status().ok());
  EXPECT_EQ(live.value()->generation_number(), 2u);
  EXPECT_GE(
      registry.GetCounter("live_compaction_failures_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("live_compactions_total")->Value(), 1u);
}

// ------------------------------------------------------------------ metrics

TEST(Durability, MetricsAreExact) {
  const std::string dir = FreshStoreDir("metrics");
  const std::string spec = WithWal("vp-tree", dir, "always");
  util::Rng rng(71);
  auto data = dataset::UniformCube(25, 3, &rng);
  // Vector WAL frames are deterministic: 16-byte header + 1-byte op +
  // 4-byte shard + 4-byte dim + 3 doubles = 49 per insert;
  // 16 + 1 + 4 + 8 = 29 per remove.
  constexpr uint64_t kInsertFrame = 49, kRemoveFrame = 29;
  {
    obs::MetricsRegistry registry("durability_test");
    LiveOptions options;
    options.metrics = &registry;
    auto live = LiveDatabase<Vector>::Open(data, L2(), 2, spec, 7, options);
    ASSERT_TRUE(live.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          live.value()
              ->Insert({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()})
              .ok());
    }
    ASSERT_TRUE(live.value()->Remove(2).ok());
    EXPECT_EQ(registry.GetCounter("wal_appends_total")->Value(), 5u);
    EXPECT_EQ(registry.GetCounter("wal_bytes_total")->Value(),
              4 * kInsertFrame + kRemoveFrame);
    // fsync=always: one recorded fsync per append.
    EXPECT_EQ(registry.GetHistogram("wal_fsync_seconds")->Snap().count(),
              5u);
    // The fresh open wrote exactly one snapshot; nothing was replayed.
    EXPECT_EQ(
        registry.GetHistogram("snapshot_write_seconds")->Snap().count(), 1u);
    EXPECT_EQ(registry.GetCounter("recovery_replayed_entries")->Value(), 0u);
  }
  {
    obs::MetricsRegistry registry("durability_test");
    LiveOptions options;
    options.metrics = &registry;
    auto live = LiveDatabase<Vector>::Open({}, L2(), 2, spec, 7, options);
    ASSERT_TRUE(live.ok());
    // Recovery replayed the 5 logged operations and wrote no snapshot.
    EXPECT_EQ(registry.GetCounter("recovery_replayed_entries")->Value(), 5u);
    EXPECT_EQ(
        registry.GetHistogram("snapshot_write_seconds")->Snap().count(), 0u);
    EXPECT_EQ(registry.GetCounter("wal_appends_total")->Value(), 0u);
    // A compaction rotates the log: the carried-over tail (5 entries)
    // is re-encoded into wal-2 and the snapshot write is timed.
    ASSERT_TRUE(live.value()->Compact().ok());
    EXPECT_EQ(registry.GetCounter("wal_appends_total")->Value(), 0u);
    EXPECT_EQ(
        registry.GetHistogram("snapshot_write_seconds")->Snap().count(), 1u);
  }
}

}  // namespace
}  // namespace engine
}  // namespace distperm
