// Similarity search in a dictionary under edit distance — the classic
// SISAP workload the paper's Table 2 instruments.  Builds several
// indexes over a synthetic dictionary, searches for near-matches of a
// misspelled word, and reports the metric evaluations each index spent.
//
//   ./example_dictionary_search [--words=20000] [--query=algorithnm]

#include <iostream>
#include <string>

#include "dataset/string_gen.h"
#include "index/distperm_index.h"
#include "index/laesa.h"
#include "index/linear_scan.h"
#include "index/vp_tree.h"
#include "metric/string_metrics.h"
#include "util/flags.h"
#include "util/rng.h"

using distperm::metric::Metric;
using distperm::util::Rng;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t word_count =
      static_cast<size_t>(flags.value().GetInt("words", 20000));

  // Build a synthetic dictionary.
  distperm::dataset::LanguageProfile profile;
  profile.name = "Demoish";
  profile.mean_length = 8.0;
  Rng rng(11);
  auto words =
      distperm::dataset::MarkovWordGenerator(profile).Dictionary(word_count,
                                                                 &rng);
  // Query: a word from the dictionary with two random edits, or a flag.
  std::string query = flags.value().GetString("query", "");
  if (query.empty()) {
    query = words[rng.NextBounded(words.size())];
    std::string original = query;
    for (int e = 0; e < 2; ++e) {
      size_t pos = rng.NextBounded(query.size());
      query[pos] = static_cast<char>('a' + rng.NextBounded(26));
    }
    std::cout << "query: \"" << query << "\" (corrupted from \"" << original
              << "\")\n";
  } else {
    std::cout << "query: \"" << query << "\"\n";
  }

  Metric<std::string> lev((distperm::metric::LevenshteinMetric()));

  distperm::index::LinearScanIndex<std::string> scan(words, lev);
  Rng r1 = rng.Split(), r2 = rng.Split(), r3 = rng.Split();
  distperm::index::LaesaIndex<std::string> laesa(words, lev, 12, &r1);
  distperm::index::VpTreeIndex<std::string> vp(words, lev, &r2);
  distperm::index::DistPermIndex<std::string> perm(words, lev, 12, &r3,
                                                   /*fraction=*/0.05);

  std::cout << "\nnearest 5 dictionary words (exact, via linear scan):\n";
  auto truth = scan.KnnQuery(query, 5);
  for (const auto& hit : truth) {
    std::cout << "  " << words[hit.id] << "  (distance " << hit.distance
              << ")\n";
  }

  std::cout << "\nmetric evaluations per index for the same query:\n";
  struct Entry {
    const char* name;
    distperm::index::SearchIndex<std::string>* index;
  };
  for (auto [name, index] :
       {Entry{"linear-scan", &scan}, Entry{"laesa k=12", &laesa},
        Entry{"vp-tree", &vp}, Entry{"distperm f=.05", &perm}}) {
    index->ResetQueryCount();
    auto hits = index->KnnQuery(query, 5);
    size_t overlap = 0;
    for (const auto& t : truth) {
      for (const auto& h : hits) overlap += h.id == t.id;
    }
    std::cout << "  " << name << ": "
              << index->query_distance_computations()
              << " distances, " << overlap << "/5 of the true neighbours, "
              << index->IndexBits() / (8 * words.size())
              << " bytes/word index overhead\n";
  }
  std::cout << "\nrange query: all words within edit distance 2\n";
  auto nearby = vp.RangeQuery(query, 2.0);
  for (const auto& hit : nearby) {
    std::cout << "  " << words[hit.id] << " (" << hit.distance << ")\n";
  }
  return 0;
}
