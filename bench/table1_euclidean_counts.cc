// Reproduces paper Table 1: the exact maximum number N_{d,2}(k) of
// distance permutations of k sites in d-dimensional Euclidean space
// (Theorem 7), plus the Corollary 8 asymptotic estimate and the implied
// storage cost in bits.
//
// Usage: table1_euclidean_counts [--max-d=10] [--max-k=12]

#include <cstdio>
#include <iostream>

#include "core/euclidean_count.h"
#include "util/flags.h"
#include "util/table_printer.h"

using distperm::core::EuclideanCounter;
using distperm::util::Flags;
using distperm::util::TablePrinter;

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const int max_d = static_cast<int>(flags.value().GetInt("max-d", 10));
  const int max_k = static_cast<int>(flags.value().GetInt("max-k", 12));

  EuclideanCounter counter;

  std::cout << "Table 1: number of distance permutations N_{d,2}(k) in "
               "Euclidean space\n\n";
  TablePrinter table;
  std::vector<std::string> header = {"d \\ k"};
  for (int k = 2; k <= max_k; ++k) header.push_back(std::to_string(k));
  table.SetHeader(header);
  for (int d = 1; d <= max_d; ++d) {
    std::vector<std::string> row = {std::to_string(d)};
    for (int k = 2; k <= max_k; ++k) {
      row.push_back(counter.Count(d, k).ToString());
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::cout << "\nCorollary 8 check: N_{d,2}(k) vs k^{2d}/(2^d d!) at "
               "k = 200\n\n";
  TablePrinter asym;
  asym.SetHeader({"d", "exact N_{d,2}(200)", "asymptotic", "ratio"});
  for (int d = 1; d <= 6; ++d) {
    double exact = counter.Count(d, 200).ToDouble();
    double estimate = EuclideanCounter::AsymptoticEstimate(d, 200);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.4f", exact / estimate);
    char exact_s[64], est_s[64];
    std::snprintf(exact_s, sizeof(exact_s), "%.4e", exact);
    std::snprintf(est_s, sizeof(est_s), "%.4e", estimate);
    asym.AddRow({std::to_string(d), exact_s, est_s, ratio});
  }
  asym.Print(std::cout);

  std::cout << "\nStorage bits per permutation: ceil(lg N_{d,2}(k)) vs "
               "ceil(lg k!) (unrestricted)\n\n";
  TablePrinter bits;
  std::vector<std::string> bits_header = {"d \\ k"};
  for (int k = 2; k <= max_k; ++k) bits_header.push_back(std::to_string(k));
  bits_header.push_back("(k=64)");
  bits.SetHeader(bits_header);
  for (int d = 1; d <= max_d; ++d) {
    std::vector<std::string> row = {std::to_string(d)};
    for (int k = 2; k <= max_k; ++k) {
      row.push_back(std::to_string(counter.StorageBits(d, k)));
    }
    row.push_back(std::to_string(counter.StorageBits(d, 64)));
    bits.AddRow(row);
  }
  bits.Print(std::cout);
  std::cout << "\nunrestricted ceil(lg k!): k=12 -> 29 bits, k=64 -> 296 "
               "bits; the d log k scaling is the paper's storage "
               "improvement.\n";
  return 0;
}
