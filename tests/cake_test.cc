#include "core/cake.h"

#include <gtest/gtest.h>

#include <tuple>

#include "util/big_uint.h"

namespace distperm {
namespace core {
namespace {

using util::BigUint;

TEST(Cake, BaseCases) {
  for (uint64_t m = 0; m <= 20; ++m) {
    EXPECT_EQ(CakeCount64(0, m), 1u);  // S_0(m) = 1
  }
  for (int d = 0; d <= 10; ++d) {
    EXPECT_EQ(CakeCount64(d, 0), 1u);  // S_d(0) = 1
  }
}

TEST(Cake, OneDimensionIsCutsPlusOne) {
  for (uint64_t m = 0; m <= 50; ++m) {
    EXPECT_EQ(CakeCount64(1, m), m + 1);
  }
}

TEST(Cake, TwoDimensionsLazyCaterer) {
  // S_2(m) = 1 + m + C(m,2): the lazy caterer's sequence.
  EXPECT_EQ(CakeCount64(2, 1), 2u);
  EXPECT_EQ(CakeCount64(2, 2), 4u);
  EXPECT_EQ(CakeCount64(2, 3), 7u);
  EXPECT_EQ(CakeCount64(2, 4), 11u);
  EXPECT_EQ(CakeCount64(2, 5), 16u);
  EXPECT_EQ(CakeCount64(2, 6), 22u);
}

TEST(Cake, ThreeDimensionsCakeNumbers) {
  // S_3(m): 1, 2, 4, 8, 15, 26, 42, ...
  EXPECT_EQ(CakeCount64(3, 1), 2u);
  EXPECT_EQ(CakeCount64(3, 2), 4u);
  EXPECT_EQ(CakeCount64(3, 3), 8u);
  EXPECT_EQ(CakeCount64(3, 4), 15u);
  EXPECT_EQ(CakeCount64(3, 5), 26u);
  EXPECT_EQ(CakeCount64(3, 6), 42u);
}

TEST(Cake, SaturatesAtPowersOfTwo) {
  // With d >= m, every subset of cuts is realisable: S_d(m) = 2^m.
  for (int m = 0; m <= 16; ++m) {
    for (int d = m; d <= m + 3; ++d) {
      EXPECT_EQ(CakeCount64(d, static_cast<uint64_t>(m)),
                uint64_t{1} << m)
          << "d=" << d << " m=" << m;
    }
  }
}

class CakeConsistencyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CakeConsistencyTest, ClosedFormMatchesRecurrence) {
  auto [d, m] = GetParam();
  EXPECT_EQ(CakeCount(d, static_cast<uint64_t>(m)),
            CakeCountByRecurrence(d, static_cast<uint64_t>(m)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CakeConsistencyTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 5,
                                                              8),
                                            ::testing::Values(0, 1, 2, 7, 20,
                                                              40)));

TEST(Cake, PriceRecurrenceHoldsPointwise) {
  for (int d = 1; d <= 6; ++d) {
    for (uint64_t m = 1; m <= 30; ++m) {
      EXPECT_EQ(CakeCount(d, m), CakeCount(d, m - 1) + CakeCount(d - 1, m - 1))
          << "d=" << d << " m=" << m;
    }
  }
}

TEST(Cake, PolynomialGrowthOrder) {
  // S_d(m) = Theta(m^d): ratio to m^d approaches 1/d!.
  double ratio3 = CakeCount(3, 3000).ToDouble() / (3000.0 * 3000.0 * 3000.0);
  EXPECT_NEAR(ratio3, 1.0 / 6.0, 0.01);
}

TEST(Cake, LargeValuesExact) {
  // S_10(100) = sum_{i<=10} C(100,i); spot-check against bignum binomials.
  BigUint expected(0);
  for (int i = 0; i <= 10; ++i) {
    expected += BigUint::Binomial(100, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(CakeCount(10, 100), expected);
}

}  // namespace
}  // namespace core
}  // namespace distperm
