// Distances between permutations.
//
// Permutation-based indexes (Chavez-Figueroa-Navarro; iAESA) order
// candidate points by how similar their stored distance permutation is to
// the query's.  The standard similarity measures are Spearman footrule,
// Spearman rho, and Kendall tau; all three treat a permutation as the
// sequence of site ranks.

#ifndef DISTPERM_CORE_PERM_METRICS_H_
#define DISTPERM_CORE_PERM_METRICS_H_

#include <cstdint>
#include <cstdlib>

#include "core/distance_permutation.h"

namespace distperm {
namespace core {

/// Spearman footrule: sum over sites of |rank_a(site) - rank_b(site)|.
/// Zero iff equal; maximum floor(k^2 / 2).
int SpearmanFootrule(const Permutation& a, const Permutation& b);

/// Spearman rho (squared version, no normalization): sum over sites of
/// (rank_a(site) - rank_b(site))^2.
int64_t SpearmanRhoSquared(const Permutation& a, const Permutation& b);

/// Kendall tau: number of site pairs ordered differently by a and b.
/// Zero iff equal; maximum C(k,2).  O(k^2) direct count.
int KendallTau(const Permutation& a, const Permutation& b);

/// Footrule distance between two permutation *prefixes* of the same
/// underlying site set: sites absent from a prefix are treated as
/// sitting at rank `prefix_length` (just past the end).  This is the
/// standard similarity used by truncated permutation indexes, which
/// store only each point's closest `prefix_length` sites.  Both inputs
/// must have equal length and contain distinct site ids.
int PrefixFootrule(const Permutation& a, const Permutation& b,
                   size_t total_sites);

/// Footrule distance from two precomputed rank arrays: sum over the k
/// sites of |a[site] - b[site]|, where each array maps site -> rank
/// (with absent sites of a truncated permutation at rank
/// prefix_length).  This is the single O(k) pass the distperm index
/// runs per stored point once it has inverted the permutations at
/// build time — no per-pair inversion, no allocation.  Equals
/// SpearmanFootrule on inverted full permutations and PrefixFootrule on
/// prefix rank arrays.
inline int FootruleFromRanks(const uint8_t* a, const uint8_t* b, size_t k) {
  int sum = 0;
  for (size_t site = 0; site < k; ++site) {
    sum += std::abs(static_cast<int>(a[site]) - static_cast<int>(b[site]));
  }
  return sum;
}

/// Maximum possible footrule value for k sites: floor(k^2 / 2).
int MaxFootrule(size_t k);

/// Maximum possible Kendall tau for k sites: C(k,2).
int MaxKendallTau(size_t k);

}  // namespace core
}  // namespace distperm

#endif  // DISTPERM_CORE_PERM_METRICS_H_
