// Storage-cost model for proximity indexes (paper Sections 1 and 4).
//
// The storage claims the paper compares:
//   * LAESA keeps k distances per point            -> O(n k log n) bits
//     (a distance is stored to enough precision to distinguish n points);
//   * raw distance permutations                    -> O(n k log k) bits;
//   * Euclidean-aware permutation codes            -> O(n d log k) bits
//     (only N_{d,2}(k) = O(k^{2d}) permutations can occur, so an index
//     into the table of occurring permutations suffices).

#ifndef DISTPERM_CORE_STORAGE_MODEL_H_
#define DISTPERM_CORE_STORAGE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace distperm {
namespace core {

/// Bit cost of one index layout over n points.
struct StorageCost {
  std::string scheme;        ///< human-readable scheme name
  uint64_t bits_per_point;   ///< amortised index bits per database point
  uint64_t total_bits;       ///< bits for the whole database (incl. tables)
};

/// Parameters of the storage comparison.
struct StorageScenario {
  uint64_t points = 0;            ///< database size n
  int sites = 0;                  ///< number of sites / pivots k
  int dimension = 0;              ///< vector dimension d (0 = non-vector)
  uint64_t occurring_perms = 0;   ///< measured distinct permutations N
};

/// Cost of LAESA: k distances per point, each lg n bits.
StorageCost LaesaCost(const StorageScenario& scenario);

/// Cost of storing a raw permutation per point: ceil(lg k!) bits.
StorageCost RawPermutationCost(const StorageScenario& scenario);

/// Cost of the table-compressed representation: each point stores
/// ceil(lg N) bits indexing a side table of the N occurring permutations
/// (table itself costs N * ceil(lg k!) bits, amortised into total_bits).
StorageCost TablePermutationCost(const StorageScenario& scenario);

/// The theoretical Euclidean bound: ceil(lg N_{d,2}(k)) bits per point,
/// i.e. Theta(d log k).  Requires dimension >= 1.
StorageCost EuclideanBoundCost(const StorageScenario& scenario);

/// All applicable costs for a scenario, in the order above.
std::vector<StorageCost> CompareStorageCosts(const StorageScenario& s);

}  // namespace core
}  // namespace distperm

#endif  // DISTPERM_CORE_STORAGE_MODEL_H_
