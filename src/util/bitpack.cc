#include "util/bitpack.h"

#include "util/big_uint.h"

namespace distperm {
namespace util {

void BitWriter::Write(uint64_t value, int width) {
  DP_CHECK(width >= 0 && width <= 64);
  if (width < 64) {
    DP_CHECK_MSG(value < (uint64_t{1} << width),
                 "value " << value << " does not fit in " << width
                          << " bits");
  }
  bit_count_ += static_cast<size_t>(width);
  while (width > 0) {
    int take = std::min(width, 8 - pending_bits_);
    pending_ |= (value & ((uint64_t{1} << take) - 1)) << pending_bits_;
    pending_bits_ += take;
    value >>= take;
    width -= take;
    if (pending_bits_ == 8) {
      bytes_.push_back(static_cast<uint8_t>(pending_));
      pending_ = 0;
      pending_bits_ = 0;
    }
  }
}

std::vector<uint8_t> BitWriter::Finish() {
  if (pending_bits_ > 0) {
    bytes_.push_back(static_cast<uint8_t>(pending_));
    pending_ = 0;
    pending_bits_ = 0;
  }
  std::vector<uint8_t> out = std::move(bytes_);
  bytes_.clear();
  bit_count_ = 0;
  return out;
}

uint64_t BitReader::Read(int width) {
  DP_CHECK(width >= 0 && width <= 64);
  uint64_t value = 0;
  int got = 0;
  while (got < width) {
    size_t byte_index = position_ >> 3;
    int bit_offset = static_cast<int>(position_ & 7);
    DP_CHECK_MSG(byte_index < bytes_->size(), "BitReader out of data");
    int take = std::min(width - got, 8 - bit_offset);
    uint64_t bits = ((*bytes_)[byte_index] >> bit_offset) &
                    ((uint64_t{1} << take) - 1);
    value |= bits << got;
    got += take;
    position_ += static_cast<size_t>(take);
  }
  return value;
}

void BitReader::Seek(size_t bit_offset) {
  DP_CHECK_MSG(bit_offset <= bytes_->size() * 8,
               "BitReader seek past end: " << bit_offset);
  position_ = bit_offset;
}

int BitsFor(uint64_t count) {
  if (count <= 1) return 0;
  int bits = 0;
  uint64_t capacity = 1;
  while (capacity < count) {
    capacity <<= 1;
    ++bits;
    if (bits == 64) break;
  }
  return bits;
}

int BitsForFactorial(int n) {
  BigUint fact = BigUint::Factorial(static_cast<uint64_t>(n < 0 ? 0 : n));
  if (fact <= BigUint(1)) return 0;
  // ceil(lg fact): bit length of (fact - 1).
  BigUint minus_one = fact - BigUint(1);
  return static_cast<int>(minus_one.BitLength());
}

}  // namespace util
}  // namespace distperm
