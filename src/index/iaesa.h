// iAESA (Figueroa, Chavez, Navarro & Paredes 2006): AESA with
// permutation-guided pivot selection.
//
// iAESA keeps AESA's full distance matrix and elimination rule, but picks
// the next candidate to measure by similarity between the candidate's
// stored distance permutation (with respect to a fixed set of sites) and
// the query's permutation, rather than by the smallest lower bound.
// Permutation similarity is a better predictor of actual proximity, so
// good pivots are found sooner and elimination is faster.  The paper
// notes the improved pivot selection is separable from the storage
// question this library studies.

#ifndef DISTPERM_INDEX_IAESA_H_
#define DISTPERM_INDEX_IAESA_H_

#include <limits>
#include <string>
#include <vector>

#include "core/distance_permutation.h"
#include "core/perm_metrics.h"
#include "index/aesa.h"
#include "index/pivot_select.h"
#include "util/rng.h"

namespace distperm {
namespace index {

/// AESA with footrule-ordered candidate selection.
template <typename P>
class IaesaIndex : public AesaIndex<P> {
 public:
  using SearchIndex<P>::data_;

  /// Builds the full matrix plus per-point permutations over
  /// `site_count` random sites.
  IaesaIndex(std::vector<P> data, metric::Metric<P> metric,
             size_t site_count, util::Rng* rng)
      : AesaIndex<P>(std::move(data), std::move(metric)) {
    DP_CHECK(site_count >= 1 && site_count <= core::kMaxRank64Sites);
    std::vector<size_t> site_ids = RandomPivots(data_, site_count, rng);
    sites_.reserve(site_count);
    for (size_t id : site_ids) sites_.push_back(data_[id]);
    permutations_.reserve(data_.size());
    std::vector<double> distances(site_count);
    for (const P& point : data_) {
      for (size_t j = 0; j < site_count; ++j) {
        distances[j] = this->BuildDist(sites_[j], point);
      }
      permutations_.push_back(core::PermutationFromDistances(distances));
    }
  }

  std::string name() const override { return "iaesa"; }

 protected:
  void SearchImpl(const SearchRequest<P>& request,
                  SearchContext* context) const override {
    std::vector<int> footrule;
    if (!QueryFootrules(request.point, context, &footrule)) return;
    this->EliminationSearch(request.point, FootrulePicker(footrule),
                            context);
  }

 private:
  /// Footrule distance from the query's permutation to every stored
  /// permutation.  Per-call state: lives on the caller's stack so
  /// concurrent queries never share it.  Returns false when the
  /// distance budget runs out while measuring the sites (the search
  /// then stops with whatever has been emitted — nothing).
  bool QueryFootrules(const P& query, SearchContext* context,
                      std::vector<int>* footrule) const {
    const size_t k = sites_.size();
    std::vector<double> distances(k);
    for (size_t j = 0; j < k; ++j) {
      if (context->StopAfterBudget()) return false;
      distances[j] = this->QueryDist(sites_[j], query, context->stats());
    }
    core::Permutation query_perm =
        core::PermutationFromDistances(distances);
    footrule->resize(data_.size());
    for (size_t i = 0; i < data_.size(); ++i) {
      (*footrule)[i] = core::SpearmanFootrule(query_perm, permutations_[i]);
    }
    return true;
  }

  /// Picks the live candidate whose stored permutation is footrule-
  /// closest to the query's (ties toward smaller lower bound).
  static auto FootrulePicker(const std::vector<int>& footrule) {
    return [&footrule](const std::vector<double>& lower,
                       const std::vector<bool>& dead) {
      const size_t n = lower.size();
      size_t best = n;
      int best_footrule = std::numeric_limits<int>::max();
      double best_bound = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < n; ++i) {
        if (dead[i]) continue;
        int f = footrule[i];
        if (f < best_footrule ||
            (f == best_footrule && lower[i] < best_bound)) {
          best_footrule = f;
          best_bound = lower[i];
          best = i;
        }
      }
      return best;
    };
  }

  std::vector<P> sites_;
  std::vector<core::Permutation> permutations_;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_IAESA_H_
