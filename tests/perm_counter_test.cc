// Tests for perm_counter.h, intrinsic_dim.h, dimension_estimate.h, and
// storage_model.h — the Section 5 measurement machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dimension_estimate.h"
#include "core/euclidean_count.h"
#include "core/intrinsic_dim.h"
#include "core/perm_counter.h"
#include "core/storage_model.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "util/rng.h"

namespace distperm {
namespace core {
namespace {

using metric::Vector;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

TEST(PermCounter, TwoSitesGiveAtMostTwoPermutations) {
  util::Rng rng(1);
  auto data = dataset::UniformCube(500, 2, &rng);
  std::vector<Vector> sites = {{0.0, 0.5}, {1.0, 0.5}};
  auto result = CountDistinctPermutations(data, sites, L2());
  EXPECT_EQ(result.distinct_permutations, 2u);
  EXPECT_EQ(result.points, 500u);
  EXPECT_EQ(result.metric_evaluations, 1000u);
}

TEST(PermCounter, IdenticalPointsGiveOnePermutation) {
  std::vector<Vector> data(50, Vector{0.25, 0.25});
  std::vector<Vector> sites = {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  auto result = CountDistinctPermutations(data, sites, L2());
  EXPECT_EQ(result.distinct_permutations, 1u);
}

TEST(PermCounter, CountNeverExceedsEuclideanMaximum) {
  util::Rng rng(2);
  EuclideanCounter counter;
  for (int d : {1, 2, 3}) {
    for (size_t k : {3u, 4u, 5u}) {
      auto data = dataset::UniformCube(2000, static_cast<size_t>(d), &rng);
      auto sites = SelectRandomSites(data, k, &rng);
      auto result = CountDistinctPermutations(data, sites, L2());
      EXPECT_LE(result.distinct_permutations,
                counter.Count64(d, static_cast<int>(k)))
          << "d=" << d << " k=" << k;
      EXPECT_GE(result.distinct_permutations, 1u);
    }
  }
}

TEST(PermCounter, OneDimensionalDataOnLineIsTreeLike) {
  // Points on a line: N <= C(k,2) + 1 regardless of ambient dimension.
  util::Rng rng(3);
  std::vector<Vector> data;
  for (int i = 0; i < 1000; ++i) {
    double t = rng.NextDouble();
    data.push_back({t, 2.0 * t, -t});  // a line in R^3
  }
  auto sites = SelectRandomSites(data, 6, &rng);
  auto result = CountDistinctPermutations(data, sites, L2());
  EXPECT_LE(result.distinct_permutations, 6u * 5u / 2u + 1u);
}

TEST(PermCounter, HistogramTotalsMatchDatabase) {
  util::Rng rng(4);
  auto data = dataset::UniformCube(300, 2, &rng);
  auto sites = SelectRandomSites(data, 4, &rng);
  auto histogram = PermutationHistogram(data, sites, L2());
  size_t total = 0;
  for (const auto& [rank, count] : histogram) {
    EXPECT_GT(count, 0u);
    total += count;
  }
  EXPECT_EQ(total, data.size());
  auto result = CountDistinctPermutations(data, sites, L2());
  EXPECT_EQ(histogram.size(), result.distinct_permutations);
}

TEST(PermCounter, PrefixCountsMatchIndividualCounts) {
  util::Rng rng(5);
  auto data = dataset::UniformCube(400, 3, &rng);
  auto sites = SelectRandomSites(data, 8, &rng);
  std::vector<size_t> ks = {3, 5, 8};
  auto combined = CountForSitePrefixes(data, sites, L2(), ks);
  ASSERT_EQ(combined.size(), 3u);
  for (size_t t = 0; t < ks.size(); ++t) {
    std::vector<Vector> prefix_sites(sites.begin(),
                                     sites.begin() + ks[t]);
    auto individual = CountDistinctPermutations(data, prefix_sites, L2());
    EXPECT_EQ(combined[t].distinct_permutations,
              individual.distinct_permutations)
        << "k=" << ks[t];
  }
}

TEST(PermCounter, MorePointsNeverReduceCount) {
  util::Rng rng(6);
  auto data = dataset::UniformCube(2000, 2, &rng);
  auto sites = SelectRandomSites(data, 5, &rng);
  std::vector<Vector> half(data.begin(), data.begin() + 1000);
  auto small = CountDistinctPermutations(half, sites, L2());
  auto large = CountDistinctPermutations(data, sites, L2());
  EXPECT_GE(large.distinct_permutations, small.distinct_permutations);
}

TEST(SelectRandomSites, DistinctAndFromData) {
  util::Rng rng(7);
  auto data = dataset::UniformCube(50, 2, &rng);
  auto sites = SelectRandomSites(data, 10, &rng);
  EXPECT_EQ(sites.size(), 10u);
  for (const auto& site : sites) {
    EXPECT_NE(std::find(data.begin(), data.end(), site), data.end());
  }
}

// ------------------------------------------------------- intrinsic dim

TEST(IntrinsicDim, StatsOfConstantDistancesHaveZeroVariance) {
  auto stats = ComputeDistanceStats({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.variance, 0.0);
  EXPECT_DOUBLE_EQ(stats.rho, 0.0);
}

TEST(IntrinsicDim, KnownSmallSample) {
  auto stats = ComputeDistanceStats({1.0, 3.0});
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.variance, 1.0);
  EXPECT_DOUBLE_EQ(stats.rho, 2.0);
  EXPECT_EQ(stats.samples, 2u);
}

TEST(IntrinsicDim, GrowsWithDimensionForUniformCubes) {
  util::Rng rng(8);
  double previous = 0.0;
  for (size_t d : {1u, 2u, 4u, 8u, 16u}) {
    auto data = dataset::UniformCube(2000, d, &rng);
    auto stats = EstimateIntrinsicDimensionality(data, L2(), 20000, &rng);
    EXPECT_GT(stats.rho, previous) << "d=" << d;
    previous = stats.rho;
  }
}

TEST(IntrinsicDim, UniformCubeRhoNearTheory) {
  // For uniform vectors with L2, rho is known to be close to d (the
  // paper's Table 3 lists e.g. rho ~ 13.35 at d = 10; at small d rho is
  // close to d itself).  Accept a generous band.
  util::Rng rng(9);
  auto data = dataset::UniformCube(4000, 2, &rng);
  auto stats = EstimateIntrinsicDimensionality(data, L2(), 40000, &rng);
  EXPECT_NEAR(stats.rho, 2.2, 0.5);
}

// --------------------------------------------------- dimension estimate

TEST(DimensionEstimate, ExactAtEuclideanMaxima) {
  EuclideanCounter counter;
  for (int d = 1; d <= 6; ++d) {
    for (int k = 4; k <= 9; ++k) {
      if (counter.Count(d, k) == counter.Count(d - 1, k)) continue;
      double estimate =
          EstimateEuclideanDimension(counter.Count64(d, k), k);
      EXPECT_NEAR(estimate, d, 1e-9) << "d=" << d << " k=" << k;
    }
  }
}

TEST(DimensionEstimate, MonotoneInCount) {
  double previous = -1.0;
  for (uint64_t count : {1ULL, 5ULL, 20ULL, 100ULL, 1000ULL, 100000ULL}) {
    double estimate = EstimateEuclideanDimension(count, 8);
    EXPECT_GE(estimate, previous);
    previous = estimate;
  }
}

TEST(DimensionEstimate, EdgeCases) {
  EXPECT_DOUBLE_EQ(EstimateEuclideanDimension(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(EstimateEuclideanDimension(1, 8), 0.0);
  // A count beyond any dimension's maximum clips at max_dimension.
  EXPECT_DOUBLE_EQ(EstimateEuclideanDimension(40321, 8, 7), 7.0);
}

TEST(DimensionEstimate, MultiTakesMedian) {
  EuclideanCounter counter;
  std::vector<std::pair<int, uint64_t>> observations = {
      {6, counter.Count64(3, 6)},
      {7, counter.Count64(3, 7)},
      {8, counter.Count64(3, 8)},
  };
  EXPECT_NEAR(EstimateEuclideanDimensionMulti(observations), 3.0, 1e-9);
}

TEST(DimensionEstimate, RecoversDimensionFromData) {
  // Count permutations of uniform data in d dims and check the estimator
  // lands near d (sampling never reaches the maximum, so the estimate is
  // biased low; allow a band).
  util::Rng rng(10);
  auto data = dataset::UniformCube(30000, 3, &rng);
  auto sites = SelectRandomSites(data, 7, &rng);
  auto result = CountDistinctPermutations(data, sites, L2());
  double estimate =
      EstimateEuclideanDimension(result.distinct_permutations, 7);
  EXPECT_GT(estimate, 1.8);
  EXPECT_LT(estimate, 3.5);
}

// ------------------------------------------------------- storage model

TEST(StorageModel, LaesaCostFormula) {
  StorageScenario s{.points = 1024, .sites = 8, .dimension = 0,
                    .occurring_perms = 0};
  auto cost = LaesaCost(s);
  EXPECT_EQ(cost.bits_per_point, 8u * 10u);  // lg 1024 = 10 bits each
  EXPECT_EQ(cost.total_bits, 1024u * 80u);
}

TEST(StorageModel, RawPermutationCost) {
  StorageScenario s{.points = 1000, .sites = 12, .dimension = 0,
                    .occurring_perms = 0};
  auto cost = RawPermutationCost(s);
  EXPECT_EQ(cost.bits_per_point, 29u);  // ceil lg 12!
}

TEST(StorageModel, TableCostUsesOccurringPerms) {
  StorageScenario s{.points = 100000, .sites = 12, .dimension = 0,
                    .occurring_perms = 1992};  // N_{2,2}(12)
  auto cost = TablePermutationCost(s);
  EXPECT_EQ(cost.bits_per_point, 11u);  // lg 1992 -> 11 bits
  EXPECT_EQ(cost.total_bits, 100000u * 11u + 1992u * 29u);
}

TEST(StorageModel, EuclideanBoundCost) {
  StorageScenario s{.points = 10, .sites = 12, .dimension = 2,
                    .occurring_perms = 0};
  auto cost = EuclideanBoundCost(s);
  EXPECT_EQ(cost.bits_per_point, 11u);  // ceil lg N_{2,2}(12) = lg 1992
}

TEST(StorageModel, PermutationSchemesBeatLaesaForLargeN) {
  StorageScenario s{.points = 1 << 20, .sites = 12, .dimension = 3,
                    .occurring_perms = 34662};
  auto costs = CompareStorageCosts(s);
  ASSERT_EQ(costs.size(), 4u);
  const auto& laesa = costs[0];
  for (size_t i = 1; i < costs.size(); ++i) {
    EXPECT_LT(costs[i].total_bits, laesa.total_bits) << costs[i].scheme;
  }
}

}  // namespace
}  // namespace core
}  // namespace distperm
