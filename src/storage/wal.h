// CRC32C-framed write-ahead log.
//
// Record layout (all little-endian):
//
//     [u32 payload_len][u32 crc][u64 seq][payload bytes]
//
// `crc` is the CRC32C of the 8-byte seq followed by the payload, so a
// frame whose length field survived a crash but whose body did not is
// still rejected.  `seq` increases by exactly 1 per record within a
// file (starting from the writer's `first_seq`), which gives replay
// two guarantees: a reader can detect a stale frame left over from a
// recycled file, and an applier can skip records at or below its
// high-water mark, making replay idempotent.
//
// Torn tails: ReadWal scans frames in order and stops at the first
// frame that is incomplete, fails its CRC, or breaks the seq chain.
// Everything before that point is returned as valid; `valid_bytes`
// tells recovery where to truncate before reopening the file for
// appends.  A torn tail is NOT an error — it is the expected result of
// a crash mid-write — so ReadWal only fails on I/O errors.
//
// Durability is a policy, not a constant:
//   kAlways   fsync after every append — no acked write is ever lost,
//             at the cost of a disk round-trip per operation.
//   kBatched  appends accumulate in a user-space buffer and are
//             written+fsynced when `batch_bytes` have piled up (or on
//             explicit Sync()).  A crash can lose the buffered tail —
//             at most `batch_bytes` of acked-but-unflushed records —
//             never a committed prefix.  This is the standard group-
//             commit trade-off and the default for live ingest.
//   kNever    no fsync (the OS flushes when it likes).  For bulk loads
//             that can be re-run.

#ifndef DISTPERM_STORAGE_WAL_H_
#define DISTPERM_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/env.h"
#include "util/status.h"

namespace distperm {
namespace storage {

enum class FsyncPolicy {
  kAlways,
  kBatched,
  kNever,
};

/// Parses "always" / "batched" / "never" (as accepted by the registry's
/// `fsync=` live knob).
util::Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name);
const char* FsyncPolicyName(FsyncPolicy policy);

/// Optional instruments a WalWriter records into; null members are
/// skipped.  Wired up by the engine when metrics are enabled.
struct WalInstruments {
  obs::Counter* appends_total = nullptr;
  obs::Counter* bytes_total = nullptr;
  obs::Histogram* fsync_seconds = nullptr;
};

/// Single-writer append handle for one WAL file.
class WalWriter {
 public:
  struct Options {
    FsyncPolicy policy = FsyncPolicy::kBatched;
    /// Buffered bytes that trigger a write+fsync under kBatched (also
    /// the write-out threshold under kNever, without the fsync).  The
    /// default is sized for throughput: kBatched's durability point is
    /// the batch boundary by definition, and a ~1 MiB group commit
    /// keeps the fsync rate low enough that logging costs write
    /// bandwidth, not disk round-trips.  Lower it (or use kAlways)
    /// when the loss window matters more than ingest speed.
    size_t batch_bytes = 1024 * 1024;
    WalInstruments instruments;
  };

  /// Opens `path` for appending.  `truncate` starts a fresh log;
  /// otherwise recovery must have truncated any torn tail first.
  /// `first_seq` is the sequence number the next record will carry
  /// (1 for a fresh log; last valid seq + 1 when continuing one).
  static util::Result<std::unique_ptr<WalWriter>> Open(
      Env* env, const std::string& path, bool truncate, uint64_t first_seq,
      const Options& options);

  /// Appends one record.  On return the record is durable under
  /// kAlways, buffered or durable under kBatched, and buffered under
  /// kNever.  A failed append leaves the log unusable for further
  /// appends (the file may hold a torn frame); the caller should
  /// surface the error and reopen via recovery.
  util::Status Append(const std::string& payload);

  /// Writes out the buffer and fsyncs, regardless of policy (under
  /// kNever this is the one way to force durability, e.g. before a
  /// snapshot rename must not outrun the log).
  util::Status Sync();

  /// Flushes (without fsync under kNever) and closes the file.
  util::Status Close();

  /// Sequence number the next Append will carry.
  uint64_t next_seq() const { return next_seq_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, uint64_t first_seq,
            const Options& options)
      : file_(std::move(file)), next_seq_(first_seq), options_(options) {}

  /// Hands the user-space buffer to the OS.
  util::Status WriteOut();
  /// WriteOut + fsync, recording the fsync latency.
  util::Status WriteOutAndSync();

  std::unique_ptr<WritableFile> file_;
  uint64_t next_seq_;
  Options options_;
  std::string buffer_;
  bool broken_ = false;
};

/// One decoded WAL record.
struct WalRecord {
  uint64_t seq = 0;
  std::string payload;
};

/// Result of scanning a WAL file.
struct WalContents {
  std::vector<WalRecord> records;
  /// Byte offset of the end of the last valid frame; recovery
  /// truncates the file here before reopening it for appends.
  uint64_t valid_bytes = 0;
  /// True when bytes past `valid_bytes` were present and discarded
  /// (a torn tail from a crash mid-write).
  bool torn_tail = false;
};

/// Incremental frame-at-a-time WAL decoder.  Feed() accepts bytes in
/// arbitrary-sized pieces (a network read, a file chunk, one byte at a
/// time); Poll() yields each fully validated record as soon as its
/// last byte arrives.  ReadWal is this class fed one whole file, and a
/// streaming replica is this class fed a socket.
///
/// Validation matches ReadWal exactly: a record is surfaced only when
/// its frame is complete, its seq continues the chain, and its CRC32C
/// checks out.  The first violation latches kCorrupt — the stream has
/// no self-synchronization, so nothing after a bad frame can be
/// trusted.  An incomplete trailing frame is kNeedMore, never corrupt.
class WalFrameReader {
 public:
  /// `first_seq` is the sequence number the first record must carry.
  explicit WalFrameReader(uint64_t first_seq) : next_seq_(first_seq) {}

  enum class Next {
    kRecord,    ///< *out holds the next record; call Poll again.
    kNeedMore,  ///< Buffered bytes end mid-frame; Feed more.
    kCorrupt,   ///< CRC failure or seq break; latched permanently.
  };

  /// Buffers `size` bytes.  Cheap; validation happens in Poll.
  void Feed(const void* data, size_t size);

  /// Yields the next record, or explains why it can't.
  Next Poll(WalRecord* out);

  /// Sequence number the next record must carry.
  uint64_t next_seq() const { return next_seq_; }
  /// Total bytes consumed by fully validated frames — the same
  /// truncation point ReadWal reports as WalContents::valid_bytes.
  uint64_t valid_bytes() const { return valid_bytes_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;  ///< Consumed prefix of buffer_ (compacted lazily).
  uint64_t next_seq_;
  uint64_t valid_bytes_ = 0;
  bool corrupt_ = false;
};

/// Scans the log at `path`, validating frames with `first_seq` as the
/// expected starting sequence.  Fails only on I/O errors (a missing
/// file is NotFound); corruption is reported via torn_tail/valid_bytes.
util::Result<WalContents> ReadWal(Env* env, const std::string& path,
                                  uint64_t first_seq);

}  // namespace storage
}  // namespace distperm

#endif  // DISTPERM_STORAGE_WAL_H_
