#include "core/perm_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/perm_codec.h"
#include "util/rng.h"

namespace distperm {
namespace core {
namespace {

std::vector<Permutation> RandomPerms(size_t n, size_t k, uint64_t seed,
                                     size_t distinct_pool) {
  util::Rng rng(seed);
  // Draw from a limited pool so the table actually compresses.
  std::vector<Permutation> pool;
  for (size_t i = 0; i < distinct_pool; ++i) {
    Permutation p(k);
    std::iota(p.begin(), p.end(), 0);
    rng.Shuffle(&p);
    pool.push_back(p);
  }
  std::vector<Permutation> perms;
  for (size_t i = 0; i < n; ++i) {
    perms.push_back(pool[rng.NextBounded(pool.size())]);
  }
  return perms;
}

TEST(PermTable, EmptyTable) {
  PermutationTable table = PermutationTable::Build({});
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.distinct(), 0u);
  EXPECT_EQ(table.TotalBits(), 0u);
}

TEST(PermTable, RoundTripsEveryPoint) {
  auto perms = RandomPerms(500, 8, 42, 37);
  PermutationTable table = PermutationTable::Build(perms);
  EXPECT_EQ(table.size(), 500u);
  EXPECT_EQ(table.sites(), 8u);
  EXPECT_LE(table.distinct(), 37u);
  for (size_t i = 0; i < perms.size(); ++i) {
    EXPECT_EQ(table.Get(i), perms[i]) << i;
  }
}

TEST(PermTable, IndexWidthIsCeilLgDistinct) {
  auto perms = RandomPerms(1000, 10, 7, 100);
  PermutationTable table = PermutationTable::Build(perms);
  size_t distinct = table.distinct();
  int expected_bits = 0;
  while ((size_t{1} << expected_bits) < distinct) ++expected_bits;
  EXPECT_EQ(table.index_bits_per_point(), expected_bits);
}

TEST(PermTable, CompressionBeatsRawWhenFewDistinct) {
  auto perms = RandomPerms(10000, 12, 3, 50);
  PermutationTable table = PermutationTable::Build(perms);
  // ceil lg 50 = 6 bits vs ceil lg 12! = 29 bits per point.
  EXPECT_LT(table.TotalBits(), table.RawBits() / 3);
}

TEST(PermTable, NoCompressionGainWhenAllDistinct) {
  // With every permutation unique, the table adds overhead; TotalBits
  // may exceed RawBits.  The structure must still round-trip.
  std::vector<Permutation> perms;
  for (size_t i = 0; i < 64; ++i) {
    perms.push_back(UnrankPermutation(i, 6));  // 64 distinct perms of 6
  }
  PermutationTable table = PermutationTable::Build(perms);
  EXPECT_EQ(table.distinct(), 64u);
  for (size_t i = 0; i < perms.size(); ++i) {
    EXPECT_EQ(table.Get(i), perms[i]);
  }
}

TEST(PermTable, SinglePermutationDatabaseUsesZeroIndexBits) {
  std::vector<Permutation> perms(100, Permutation{0, 1, 2});
  PermutationTable table = PermutationTable::Build(perms);
  EXPECT_EQ(table.distinct(), 1u);
  EXPECT_EQ(table.index_bits_per_point(), 0);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(table.Get(i), (Permutation{0, 1, 2}));
  }
}

TEST(Entropy, UniformOverPoolApproachesLgPool) {
  auto perms = RandomPerms(20000, 8, 5, 16);
  double entropy = PermutationEntropyBits(perms);
  EXPECT_GT(entropy, 3.5);
  EXPECT_LE(entropy, 4.0 + 1e-9);  // lg 16 = 4
}

TEST(Entropy, DegenerateDistributionIsZero) {
  std::vector<Permutation> perms(50, Permutation{1, 0});
  EXPECT_DOUBLE_EQ(PermutationEntropyBits(perms), 0.0);
}

TEST(Entropy, TwoEqualClassesGiveOneBit) {
  std::vector<Permutation> perms;
  for (int i = 0; i < 32; ++i) {
    perms.push_back(i % 2 == 0 ? Permutation{0, 1} : Permutation{1, 0});
  }
  EXPECT_NEAR(PermutationEntropyBits(perms), 1.0, 1e-12);
}

TEST(Entropy, BoundedByLgDistinct) {
  auto perms = RandomPerms(5000, 9, 11, 200);
  PermutationTable table = PermutationTable::Build(perms);
  double entropy = PermutationEntropyBits(perms);
  EXPECT_LE(entropy,
            std::log2(static_cast<double>(table.distinct())) + 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace distperm
