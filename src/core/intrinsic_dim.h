// Intrinsic dimensionality statistics (paper Section 5).
//
// rho, due to Chavez and Navarro, is mean^2 / (2 * variance) of the
// distance between two random points of the space.  The paper reports rho
// for each sample database (Table 2) and cautions that rho depends on the
// sampling distribution while permutation counts depend only on the
// support — the two can disagree.

#ifndef DISTPERM_CORE_INTRINSIC_DIM_H_
#define DISTPERM_CORE_INTRINSIC_DIM_H_

#include <cstdint>
#include <vector>

#include "metric/metric.h"
#include "util/rng.h"
#include "util/status.h"

namespace distperm {
namespace core {

/// Summary statistics of a pairwise-distance sample.
struct DistanceStats {
  double mean = 0.0;
  double variance = 0.0;
  double rho = 0.0;  ///< mean^2 / (2 * variance); 0 if variance is 0
  size_t samples = 0;
};

/// Computes mean/variance/rho from a vector of sampled distances.
DistanceStats ComputeDistanceStats(const std::vector<double>& distances);

/// Estimates rho by sampling `pairs` random point pairs from `data`.
template <typename P>
DistanceStats EstimateIntrinsicDimensionality(
    const std::vector<P>& data, const metric::Metric<P>& metric,
    size_t pairs, util::Rng* rng) {
  DP_CHECK(data.size() >= 2);
  std::vector<double> distances;
  distances.reserve(pairs);
  for (size_t s = 0; s < pairs; ++s) {
    size_t i = static_cast<size_t>(rng->NextBounded(data.size()));
    size_t j = static_cast<size_t>(rng->NextBounded(data.size() - 1));
    if (j >= i) ++j;  // distinct uniform pair
    distances.push_back(metric(data[i], data[j]));
  }
  return ComputeDistanceStats(distances);
}

}  // namespace core
}  // namespace distperm

#endif  // DISTPERM_CORE_INTRINSIC_DIM_H_
