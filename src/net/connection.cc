#include "net/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace distperm {
namespace net {

Connection::Connection(int fd) : fd_(fd) { Touch(); }

Connection::~Connection() { close(fd_); }

Connection::ReadResult Connection::ReadReady() {
  // Compact before growing: the unparsed tail (at most one partial
  // frame) moves to the front so the buffer never accumulates dead
  // prefix across reads.
  if (read_consumed_ > 0) {
    read_buffer_.erase(0, read_consumed_);
    read_consumed_ = 0;
  }
  char buffer[65536];
  for (;;) {
    const ssize_t n = recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      read_buffer_.append(buffer, static_cast<size_t>(n));
      bytes_read_ += static_cast<uint64_t>(n);
      Touch();
      continue;
    }
    if (n == 0) return ReadResult::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadResult::kOpen;
    if (errno == EINTR) continue;
    return ReadResult::kError;
  }
}

util::Status Connection::Flush() {
  while (write_sent_ < write_buffer_.size()) {
    const ssize_t n =
        send(fd_, write_buffer_.data() + write_sent_,
             write_buffer_.size() - write_sent_, MSG_NOSIGNAL);
    if (n > 0) {
      write_sent_ += static_cast<size_t>(n);
      bytes_written_ += static_cast<uint64_t>(n);
      Touch();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return util::Status::OK();
    if (errno == EINTR) continue;
    return util::Status::IoError(std::string("net: send: ") +
                                 std::strerror(errno));
  }
  write_buffer_.clear();
  write_sent_ = 0;
  return util::Status::OK();
}

}  // namespace net
}  // namespace distperm
