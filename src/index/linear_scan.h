// Linear scan baseline: the naive algorithm the paper's introduction
// describes — one distance computation per database point per query.
//
// For dense vectors under a kernel-tagged metric the scan runs on the
// flat data path: distances are evaluated a block at a time over the
// packed store (L2 in squared form, sqrt only on results), which is the
// cache-friendly hot loop bench_kernel_throughput measures.  Results
// and distance counts match the scalar path (one evaluation per point).

#ifndef DISTPERM_INDEX_LINEAR_SCAN_H_
#define DISTPERM_INDEX_LINEAR_SCAN_H_

#include <algorithm>
#include <string>
#include <vector>

#include "index/flat_data_path.h"
#include "index/index.h"
#include "index/query_scratch.h"

namespace distperm {
namespace index {

/// Exhaustive scan.  No build cost, no auxiliary storage, n distance
/// computations per query (fewer only under a distance budget).
template <typename P>
class LinearScanIndex : public SearchIndex<P> {
 public:
  using SearchIndex<P>::data_;

  LinearScanIndex(std::vector<P> data, metric::Metric<P> metric)
      : SearchIndex<P>(std::move(data), std::move(metric)),
        flat_(data_, this->metric_) {}

  std::string name() const override { return "linear-scan"; }

  uint64_t IndexBits() const override { return 0; }

 protected:
  void SearchImpl(const SearchRequest<P>& request,
                  SearchContext* context) const override {
    if (flat_.enabled()) {
      FlatScan(request.point, context);
      return;
    }
    for (size_t i = 0; i < data_.size(); ++i) {
      if (context->StopAfterBudget()) return;
      context->Emit(i,
                    this->QueryDist(data_[i], request.point,
                                    context->stats()));
    }
  }

 private:
  /// Blocked-kernel scan.  Scores are only used to prune: Radius() is
  /// mapped into score space conservatively, chunks of scores are
  /// discarded with one vectorized min pass each, and only candidates
  /// surviving the score filter pay ScoreToDistance and touch the
  /// result set — so emitted distances (and at sqrt ties, results) are
  /// bit-identical to the scalar path.  A distance budget sizes the
  /// final block down to the remaining allowance, so a budgeted flat
  /// scan charges exactly the budget — the same count as the scalar
  /// path.
  void FlatScan(const P& query, SearchContext* context) const {
    const auto ctx = flat_.MakeQuery(query);
    std::vector<double>& block = QueryScratch::ForThread().distance_block;
    block.resize(kDistanceBlockRows);
    const size_t n = data_.size();
    constexpr size_t kMinChunk = 64;
    double score_bound = flat_.RangeScoreBound(context->Radius());
    for (size_t begin = 0; begin < n;) {
      if (context->StopAfterBudget()) return;
      const size_t count =
          std::min({kDistanceBlockRows, n - begin,
                    static_cast<size_t>(std::min<uint64_t>(
                        context->BudgetRemaining(), kDistanceBlockRows))});
      flat_.BlockScores(ctx, begin, count, block.data());
      context->stats()->distance_computations += count;
      for (size_t c = 0; c < count; c += kMinChunk) {
        const size_t chunk = std::min(kMinChunk, count - c);
        if (metric::MinRaw(block.data() + c, chunk) > score_bound) {
          context->stats()->pruning_eliminated += chunk;
          continue;
        }
        for (size_t j = c; j < c + chunk; ++j) {
          if (block[j] > score_bound) {
            ++context->stats()->pruning_eliminated;
            continue;
          }
          context->Emit(begin + j, flat_.ScoreToDistance(block[j]));
          score_bound = flat_.RangeScoreBound(context->Radius());
        }
      }
      begin += count;
    }
  }

  FlatDataPath<P> flat_;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_LINEAR_SCAN_H_
