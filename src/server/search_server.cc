#include "server/search_server.h"

namespace distperm {
namespace server {

std::string StatzJson(const ServerStatz& statz) {
  std::string json = "{";
  const auto field = [&json](const char* name, uint64_t value, bool last) {
    json += "\"";
    json += name;
    json += "\": ";
    json += std::to_string(value);
    if (!last) json += ", ";
  };
  field("generation", statz.generation, false);
  field("delta_depth", statz.delta_depth, false);
  field("mutation_clock", statz.mutation_clock, false);
  field("remove_clock", statz.remove_clock, false);
  field("connections", statz.connections, false);
  field("requests", statz.requests, false);
  field("batches", statz.batches, false);
  field("overload_rejected", statz.overload_rejected, false);
  field("decode_errors", statz.decode_errors, false);
  field("cache_hits", statz.cache_hits, false);
  field("cache_misses", statz.cache_misses, false);
  field("cache_bound_seeds", statz.cache_bound_seeds, false);
  field("cache_invalidations", statz.cache_invalidations, false);
  field("cache_evictions", statz.cache_evictions, true);
  json += "}\n";
  return json;
}

bool ParseHttpGetPath(const std::string& buffer, std::string* path) {
  const size_t line_end = buffer.find('\n');
  if (line_end == std::string::npos) return false;
  std::string line = buffer.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  path->clear();
  const size_t first_space = line.find(' ');
  if (first_space == std::string::npos || line.substr(0, first_space) != "GET") {
    return true;  // complete but malformed line -> empty path -> 404
  }
  const size_t second_space = line.find(' ', first_space + 1);
  *path = second_space == std::string::npos
              ? line.substr(first_space + 1)
              : line.substr(first_space + 1, second_space - first_space - 1);
  return true;
}

std::string HttpTextResponse(int status_code, const std::string& body) {
  const char* reason = status_code == 200 ? "OK" : "Not Found";
  std::string response = "HTTP/1.0 " + std::to_string(status_code) + " " +
                         reason + "\r\n";
  response += "Content-Type: text/plain; charset=utf-8\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  return response;
}

}  // namespace server
}  // namespace distperm
