// Minkowski Lp metrics on real vectors (Section 4 of the paper).
//
// d(x, y) = (sum_i |x_i - y_i|^p)^(1/p) for real p >= 1, and
// d(x, y) = max_i |x_i - y_i| for p = infinity.

#ifndef DISTPERM_METRIC_LP_H_
#define DISTPERM_METRIC_LP_H_

#include <limits>
#include <string>

#include "metric/metric.h"

namespace distperm {
namespace metric {

/// L1 (Manhattan) distance.  Requires equal dimensions.
double L1Distance(const Vector& a, const Vector& b);

/// L2 (Euclidean) distance.  Requires equal dimensions.
double L2Distance(const Vector& a, const Vector& b);

/// Squared L2 distance (monotone in L2; cheaper for comparisons).
double L2DistanceSquared(const Vector& a, const Vector& b);

/// L-infinity (Chebyshev) distance.  Requires equal dimensions.
double LInfDistance(const Vector& a, const Vector& b);

/// General Lp distance for p >= 1; p may be infinity.
double LpDistance(const Vector& a, const Vector& b, double p);

/// Metric object for any p in [1, infinity].  The p = 1, 2, infinity
/// dispatch happens once at construction: operator() calls the selected
/// kernel through a function pointer with no per-evaluation checks.
class LpMetric {
 public:
  /// Constructs the Lp metric; `p` must be >= 1 (may be infinity).
  explicit LpMetric(double p);

  /// Convenience factories for the three metrics the paper evaluates.
  static LpMetric L1() { return LpMetric(1.0); }
  static LpMetric L2() { return LpMetric(2.0); }
  static LpMetric LInf() {
    return LpMetric(std::numeric_limits<double>::infinity());
  }

  double operator()(const Vector& a, const Vector& b) const {
    return fn_(a, b, p_);
  }

  /// "L1", "L2", "Linf", or "L<p>".
  std::string name() const { return name_; }

  /// The order p of the metric.
  double p() const { return p_; }

  /// kL1 / kL2 / kLInf for the specialized orders, kNone for general p.
  VectorKernelKind vector_kernel() const { return kernel_; }

 private:
  /// Kernel selected at construction; general p reads `p` per call, the
  /// specialized orders ignore it.
  using Fn = double (*)(const Vector&, const Vector&, double p);

  double p_;
  Fn fn_;
  VectorKernelKind kernel_;
  std::string name_;
};

}  // namespace metric
}  // namespace distperm

#endif  // DISTPERM_METRIC_LP_H_
