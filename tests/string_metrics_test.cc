#include "metric/string_metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.h"

namespace distperm {
namespace metric {
namespace {

TEST(Levenshtein, KnownValues) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
  EXPECT_EQ(LevenshteinDistance("intention", "execution"), 5);
  EXPECT_EQ(LevenshteinDistance("abc", "acb"), 2);
}

TEST(Levenshtein, SymmetricOnRandomWords) {
  util::Rng rng(77);
  for (int t = 0; t < 50; ++t) {
    std::string a, b;
    for (int i = 0; i < static_cast<int>(rng.NextBounded(12)); ++i) {
      a.push_back(static_cast<char>('a' + rng.NextBounded(4)));
    }
    for (int i = 0; i < static_cast<int>(rng.NextBounded(12)); ++i) {
      b.push_back(static_cast<char>('a' + rng.NextBounded(4)));
    }
    EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(b, a));
  }
}

TEST(Levenshtein, BoundedByLengthDifferenceAndMaxLength) {
  EXPECT_GE(LevenshteinDistance("aaaa", "a"), 3);
  EXPECT_LE(LevenshteinDistance("abcdef", "ghijkl"), 6);
}

TEST(LevenshteinBounded, ExactWithinCutoff) {
  util::Rng rng(78);
  for (int t = 0; t < 100; ++t) {
    std::string a, b;
    for (int i = 0; i < static_cast<int>(rng.NextBounded(15)); ++i) {
      a.push_back(static_cast<char>('a' + rng.NextBounded(3)));
    }
    for (int i = 0; i < static_cast<int>(rng.NextBounded(15)); ++i) {
      b.push_back(static_cast<char>('a' + rng.NextBounded(3)));
    }
    int exact = LevenshteinDistance(a, b);
    for (int cutoff : {0, 1, 2, 5, 20}) {
      int bounded = LevenshteinDistanceBounded(a, b, cutoff);
      if (exact <= cutoff) {
        EXPECT_EQ(bounded, exact) << a << " / " << b << " cutoff " << cutoff;
      } else {
        EXPECT_GT(bounded, cutoff) << a << " / " << b;
      }
    }
  }
}

TEST(Hamming, KnownValues) {
  EXPECT_EQ(HammingDistance("", ""), 0);
  EXPECT_EQ(HammingDistance("abc", "abc"), 0);
  EXPECT_EQ(HammingDistance("abc", "abd"), 1);
  EXPECT_EQ(HammingDistance("0000", "1111"), 4);
  EXPECT_EQ(HammingDistance("karolin", "kathrin"), 3);
}

TEST(Prefix, KnownValues) {
  // Paper Definition 3: |a| + |b| - 2 LCP(a, b).
  EXPECT_EQ(PrefixDistance("", ""), 0);
  EXPECT_EQ(PrefixDistance("abc", "abc"), 0);
  EXPECT_EQ(PrefixDistance("abc", "ab"), 1);
  EXPECT_EQ(PrefixDistance("abc", "abd"), 2);
  EXPECT_EQ(PrefixDistance("abc", "xyz"), 6);
  EXPECT_EQ(PrefixDistance("a", ""), 1);
  EXPECT_EQ(PrefixDistance("qa", "qb"), 2);
}

TEST(Prefix, LongestCommonPrefix) {
  EXPECT_EQ(LongestCommonPrefix("", "x"), 0u);
  EXPECT_EQ(LongestCommonPrefix("abcd", "abxy"), 2u);
  EXPECT_EQ(LongestCommonPrefix("same", "same"), 4u);
}

TEST(Prefix, FourPointConditionHolds) {
  // The prefix metric is a tree metric, so every 4 points satisfy
  // d(x,y)+d(z,t) <= max(d(x,z)+d(y,t), d(x,t)+d(y,z)).
  std::vector<std::string> points = {"",     "a",   "ab",  "abc", "abd",
                                     "ax",   "b",   "ba",  "bb",  "abcd"};
  for (const auto& x : points) {
    for (const auto& y : points) {
      for (const auto& z : points) {
        for (const auto& t : points) {
          int lhs = PrefixDistance(x, y) + PrefixDistance(z, t);
          int a = PrefixDistance(x, z) + PrefixDistance(y, t);
          int b = PrefixDistance(x, t) + PrefixDistance(y, z);
          EXPECT_LE(lhs, std::max(a, b))
              << x << "," << y << "," << z << "," << t;
        }
      }
    }
  }
}

TEST(StringMetricWrappers, NamesAndValues) {
  EXPECT_EQ(LevenshteinMetric().name(), "levenshtein");
  EXPECT_EQ(HammingMetric().name(), "hamming");
  EXPECT_EQ(PrefixMetric().name(), "prefix");
  EXPECT_DOUBLE_EQ(LevenshteinMetric()("kitten", "sitting"), 3.0);
  EXPECT_DOUBLE_EQ(PrefixMetric()("abc", "abd"), 2.0);
}

// Metric axioms for the string metrics over a random word population.
class StringMetricAxiomTest : public ::testing::TestWithParam<int> {};

TEST_P(StringMetricAxiomTest, TriangleInequalityLevenshtein) {
  util::Rng rng(1000 + GetParam());
  std::vector<std::string> words;
  for (int i = 0; i < 12; ++i) {
    std::string w;
    for (int j = 0; j < static_cast<int>(rng.NextBounded(8)); ++j) {
      w.push_back(static_cast<char>('a' + rng.NextBounded(3)));
    }
    words.push_back(w);
  }
  for (const auto& x : words) {
    for (const auto& y : words) {
      for (const auto& z : words) {
        EXPECT_LE(LevenshteinDistance(x, z),
                  LevenshteinDistance(x, y) + LevenshteinDistance(y, z));
      }
    }
  }
}

TEST_P(StringMetricAxiomTest, TriangleInequalityPrefix) {
  util::Rng rng(2000 + GetParam());
  std::vector<std::string> words;
  for (int i = 0; i < 12; ++i) {
    std::string w;
    for (int j = 0; j < static_cast<int>(rng.NextBounded(8)); ++j) {
      w.push_back(static_cast<char>('a' + rng.NextBounded(2)));
    }
    words.push_back(w);
  }
  for (const auto& x : words) {
    for (const auto& y : words) {
      for (const auto& z : words) {
        EXPECT_LE(PrefixDistance(x, z),
                  PrefixDistance(x, y) + PrefixDistance(y, z));
      }
    }
  }
}

TEST_P(StringMetricAxiomTest, IdentityOfIndiscernibles) {
  util::Rng rng(3000 + GetParam());
  for (int t = 0; t < 20; ++t) {
    std::string a, b;
    for (int j = 0; j < static_cast<int>(rng.NextBounded(10)); ++j) {
      a.push_back(static_cast<char>('a' + rng.NextBounded(3)));
    }
    for (int j = 0; j < static_cast<int>(rng.NextBounded(10)); ++j) {
      b.push_back(static_cast<char>('a' + rng.NextBounded(3)));
    }
    EXPECT_EQ(LevenshteinDistance(a, b) == 0, a == b);
    EXPECT_EQ(PrefixDistance(a, b) == 0, a == b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StringMetricAxiomTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace metric
}  // namespace distperm
