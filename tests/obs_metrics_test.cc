// Telemetry instrument tests: sharded counters/gauges/histograms must
// be exact under contention (the design's invariant: sharding moves
// increments across cells, never loses or double-counts them), and the
// registry's exposition must faithfully render what the instruments
// hold.  The contention tests run in the CI TSan job.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace distperm {
namespace obs {
namespace {

TEST(ObsMetrics, CounterStartsAtZeroAndAddsExactly) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

// N threads hammer one counter; the fold over the padded cells must
// equal the exact submitted total, bit for bit.
TEST(ObsMetrics, CounterIsExactUnderContention) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // Mix Increment and Add so both paths are contended.
        if (i % 4 == 0) {
          counter.Add(3);
        } else {
          counter.Increment();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Per thread: a quarter of the iterations Add(3), the rest Add(1).
  const uint64_t per_thread =
      (kPerThread / 4) * 3 + (kPerThread - kPerThread / 4);
  EXPECT_EQ(counter.Value(), kThreads * per_thread);
}

TEST(ObsMetrics, GaugeGoesUpAndDownExactly) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Add(10);
  gauge.Decrement();
  gauge.Add(-4);
  EXPECT_EQ(gauge.Value(), 5);
}

TEST(ObsMetrics, GaugeIsExactUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        // Even threads push up, odd threads pull down.
        if (t % 2 == 0) {
          gauge.Increment();
        } else {
          gauge.Decrement();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.Value(), 0);  // equal up and down traffic cancels
}

TEST(ObsMetrics, HistogramBucketLayout) {
  // Bucket 0 is the underflow bucket: everything at or below kMinValue,
  // and NaN.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinValue), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0u);
  // The last bucket is overflow and its upper bound is +infinity.
  EXPECT_EQ(Histogram::BucketIndex(1e12), Histogram::kBucketCount - 1);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kBucketCount - 1)));
  // Every recordable value lands in the bucket whose bounds contain it
  // (values chosen off the decade edges, where the log-bucket boundary
  // is only accurate to floating-point log10).
  for (double v : {2e-8, 3e-4, 0.013, 0.5, 1.7, 7.3, 2.2e3, 3e8}) {
    const size_t i = Histogram::BucketIndex(v);
    ASSERT_GT(i, 0u) << v;
    ASSERT_LT(i, Histogram::kBucketCount - 1) << v;
    EXPECT_LE(v, Histogram::BucketUpperBound(i)) << v;
    EXPECT_GT(v, Histogram::BucketUpperBound(i - 1)) << v;
  }
}

// Contended recording: bucket totals sum to the exact observation
// count, and with integer-valued samples the sum is exact too (small
// integers add without rounding in double).
TEST(ObsMetrics, HistogramIsExactUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Histogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram]() {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<double>(1 + i % 7));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto snapshot = histogram.Snap();
  EXPECT_EQ(snapshot.count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t bucket : snapshot.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, snapshot.count());
  // Sum of each thread's 1+2+...+7 cycles, exactly.
  const double per_thread =
      (kPerThread / 7) * 28.0 +
      [] {
        double tail = 0;
        for (int i = kPerThread - kPerThread % 7; i < kPerThread; ++i) {
          tail += 1 + i % 7;
        }
        return tail;
      }();
  EXPECT_DOUBLE_EQ(snapshot.sum, kThreads * per_thread);
  EXPECT_DOUBLE_EQ(snapshot.mean(), snapshot.sum / snapshot.count());
}

TEST(ObsMetrics, HistogramQuantilesAtBucketResolution) {
  Histogram histogram;
  for (int i = 0; i < 99; ++i) histogram.Record(0.0015);
  histogram.Record(2.0);
  const auto snapshot = histogram.Snap();
  EXPECT_EQ(snapshot.count(), 100u);
  // A quantile reads out as the upper bound of the bucket holding its
  // rank: p50 lands in the small value's bucket, p999 must reach the
  // outlier's.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5),
                   Histogram::BucketUpperBound(Histogram::BucketIndex(
                       0.0015)));
  EXPECT_DOUBLE_EQ(
      snapshot.Quantile(0.999),
      Histogram::BucketUpperBound(Histogram::BucketIndex(2.0)));
  EXPECT_GE(snapshot.Quantile(0.999), 2.0);
  EXPECT_LE(snapshot.Quantile(0.999), 2.0 * std::pow(10.0, 0.125));
  // Empty histogram: every quantile is 0.
  EXPECT_DOUBLE_EQ(Histogram::Snapshot{}.Quantile(0.5), 0.0);
}

TEST(ObsMetrics, RegistryReturnsStableSharedInstruments) {
  MetricsRegistry registry("r");
  Counter* a = registry.GetCounter("hits_total");
  Counter* b = registry.GetCounter("hits_total");
  EXPECT_EQ(a, b);  // same name, same instrument
  a->Increment();
  EXPECT_EQ(b->Value(), 1u);
  // A name bound to one kind refuses to be another kind.
  EXPECT_EQ(registry.GetGauge("hits_total"), nullptr);
  EXPECT_EQ(registry.GetHistogram("hits_total"), nullptr);
  EXPECT_NE(registry.GetGauge("depth"), nullptr);
  EXPECT_EQ(registry.GetCounter("depth"), nullptr);
}

TEST(ObsMetrics, TextExpositionRendersEverySeries) {
  MetricsRegistry registry("engine");
  registry.GetCounter("requests_total")->Add(7);
  registry.GetGauge("inflight")->Add(3);
  Histogram* latency = registry.GetHistogram("latency_seconds");
  latency->Record(0.001);
  latency->Record(0.001);
  latency->Record(0.5);

  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("requests_total 7"), std::string::npos) << text;
  EXPECT_NE(text.find("inflight 3"), std::string::npos) << text;
  // Histogram: cumulative populated buckets closed by +Inf, plus
  // _sum/_count.
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_seconds_count 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_seconds_sum 0.502"), std::string::npos)
      << text;
}

TEST(ObsMetrics, TextExpositionSplicesHistogramLabels) {
  MetricsRegistry registry("engine");
  registry.GetHistogram("latency_seconds{mode=\"knn\"}")->Record(0.01);
  const std::string text = registry.TextExposition();
  // The le label joins the existing label set instead of nesting.
  EXPECT_NE(text.find("latency_seconds_bucket{mode=\"knn\",le="),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_seconds_count{mode=\"knn\"} 1"),
            std::string::npos)
      << text;
}

TEST(ObsMetrics, CallbackGaugesSumAndUnregister) {
  MetricsRegistry registry("r");
  std::atomic<int> depth_a{5};
  std::atomic<int> depth_b{2};
  const uint64_t handle_a = registry.RegisterCallback(
      "queue_depth", [&depth_a]() { return depth_a.load(); });
  const uint64_t handle_b = registry.RegisterCallback(
      "queue_depth", [&depth_b]() { return depth_b.load(); });
  EXPECT_NE(registry.TextExposition().find("queue_depth 7"),
            std::string::npos);
  registry.UnregisterCallback(handle_a);
  EXPECT_NE(registry.TextExposition().find("queue_depth 2"),
            std::string::npos);
  registry.UnregisterCallback(handle_b);
  EXPECT_EQ(registry.TextExposition().find("queue_depth"),
            std::string::npos);
}

TEST(ObsMetrics, JsonExpositionCarriesPercentiles) {
  MetricsRegistry registry("engine");
  registry.GetCounter("requests_total")->Add(3);
  Histogram* latency = registry.GetHistogram("latency_seconds");
  for (int i = 0; i < 100; ++i) latency->Record(0.002);
  const std::string json = registry.JsonExposition();
  EXPECT_NE(json.find("\"registry\": \"engine\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"requests_total\": 3"), std::string::npos) << json;
  for (const char* key : {"\"count\": 100", "\"p50\"", "\"p99\"",
                          "\"p999\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
}

// Concurrent registry access: many threads resolving the same and
// different names while recording must neither crash nor lose counts.
TEST(ObsMetrics, RegistryCreationIsThreadSafe) {
  MetricsRegistry registry("r");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t]() {
      const std::string own = "series_" + std::to_string(t % 3);
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("shared_total")->Increment();
        registry.GetCounter(own)->Increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("shared_total")->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t split = 0;
  for (int s = 0; s < 3; ++s) {
    split += registry.GetCounter("series_" + std::to_string(s))->Value();
  }
  EXPECT_EQ(split, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ObsMetrics, SearchTraceSumsSpans) {
  SearchTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.total_distance_computations(), 0u);
  trace.spans.push_back({0, false, 0.0, 1.0, 10, 0.0, 0.0});
  trace.spans.push_back({1, true, 0.5, 2.0, 32, 0.0, 0.0});
  EXPECT_FALSE(trace.empty());
  EXPECT_EQ(trace.total_distance_computations(), 42u);
}

}  // namespace
}  // namespace obs
}  // namespace distperm
