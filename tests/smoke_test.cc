// Build smoke test: instantiates one object from each library so missing
// symbols surface immediately.

#include <gtest/gtest.h>

#include "core/euclidean_count.h"
#include "dataset/vector_gen.h"
#include "geometry/arrangement2d.h"
#include "index/linear_scan.h"
#include "metric/lp.h"
#include "util/rng.h"

namespace distperm {
namespace {

TEST(Smoke, EverythingLinks) {
  util::Rng rng(1);
  auto data = dataset::UniformCube(16, 3, &rng);
  metric::Metric<metric::Vector> l2(metric::LpMetric::L2());
  index::LinearScanIndex<metric::Vector> scan(data, l2);
  auto hits = scan.KnnQuery(data[0], 3);
  EXPECT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].id, 0u);

  EXPECT_EQ(core::EuclideanPermutationCount(2, 4).ToUint64(), 18u);

  geometry::LineArrangement arrangement;
  arrangement.AddLine(1, 0, 0);
  arrangement.AddLine(0, 1, 0);
  EXPECT_EQ(arrangement.CountRegions(), 4u);
}

}  // namespace
}  // namespace distperm
