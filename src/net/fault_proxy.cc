#include "net/fault_proxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace distperm {
namespace net {

namespace {
/// Blocking connect to the upstream; returns -1 on failure.
int ConnectUpstream(const std::string& host, uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &address.sin_addr) != 1) return -1;
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (connect(fd, reinterpret_cast<const sockaddr*>(&address),
              sizeof(address)) != 0) {
    close(fd);
    return -1;
  }
  const int enable = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return fd;
}

/// Writes all of [data, data+size) to a possibly non-blocking fd,
/// polling for writability on EAGAIN.  Returns false on error/hangup.
bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd, POLLOUT, 0};
      if (poll(&pfd, 1, 1000) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}
}  // namespace

util::Result<std::unique_ptr<FaultProxy>> FaultProxy::Start(
    const Options& options) {
  auto listener = Listener::Bind(options.listen_port);
  if (!listener.ok()) return listener.status();
  std::unique_ptr<FaultProxy> proxy(
      new FaultProxy(options, std::move(listener).value()));
  proxy->thread_ = std::thread([raw = proxy.get()] { raw->Run(); });
  return proxy;
}

FaultProxy::~FaultProxy() { Stop(); }

void FaultProxy::Stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

bool FaultProxy::RelayChunk(int from, int to,
                            std::atomic<uint64_t>* budget,
                            std::atomic<uint64_t>* relayed) {
  char chunk[4096];
  // Never read past the budget: the cut must land at the exact byte.
  const uint64_t allowed = budget->load();
  if (allowed == 0) {
    cuts_total_.fetch_add(1);
    budget->store(kNoCut);  // one-shot: disarm for the next connection
    return false;
  }
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(sizeof(chunk), allowed));
  const ssize_t n = recv(from, chunk, want, 0);
  if (n == 0) return false;  // peer hung up; propagate the close
  if (n < 0) {
    return errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK;
  }
  if (options_.delay_ms_per_chunk > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.delay_ms_per_chunk));
  }
  if (!SendAll(to, chunk, static_cast<size_t>(n))) return false;
  relayed->fetch_add(static_cast<uint64_t>(n));
  if (allowed != kNoCut) {
    const uint64_t remaining = allowed - static_cast<uint64_t>(n);
    if (remaining == 0) {
      cuts_total_.fetch_add(1);
      budget->store(kNoCut);  // one-shot: disarm for the next connection
      return false;
    }
    budget->store(remaining);
  }
  return true;
}

void FaultProxy::Run() {
  while (!stop_.load()) {
    // Wait for a client.
    pollfd accept_pfd{listener_->fd(), POLLIN, 0};
    if (poll(&accept_pfd, 1, 50) <= 0) continue;
    auto accepted = listener_->Accept();
    if (!accepted.ok() || accepted.value() < 0) continue;
    const int client = accepted.value();
    const int upstream =
        ConnectUpstream(options_.upstream_host, options_.upstream_port);
    if (upstream < 0) {
      close(client);
      continue;
    }
    connections_accepted_.fetch_add(1);

    // Relay until a side dies, a cut fires, or Stop().
    bool alive = true;
    while (alive && !stop_.load()) {
      pollfd pfds[2] = {{client, POLLIN, 0}, {upstream, POLLIN, 0}};
      const int ready = poll(pfds, 2, 50);
      if (ready < 0 && errno != EINTR) break;
      if (ready <= 0) continue;
      if (pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
        alive = RelayChunk(client, upstream, &to_upstream_budget_,
                           &bytes_to_upstream_);
      }
      if (alive && (pfds[1].revents & (POLLIN | POLLHUP | POLLERR))) {
        alive = RelayChunk(upstream, client, &to_client_budget_,
                           &bytes_to_client_);
      }
    }
    // Sever both directions so each peer sees a hard disconnect, not a
    // graceful half-close.
    shutdown(client, SHUT_RDWR);
    shutdown(upstream, SHUT_RDWR);
    close(client);
    close(upstream);
  }
}

}  // namespace net
}  // namespace distperm
