#include "dataset/vector_gen.h"

#include <cmath>

#include "util/status.h"

namespace distperm {
namespace dataset {

using metric::Vector;

std::vector<Vector> UniformCube(size_t n, size_t d, util::Rng* rng) {
  std::vector<Vector> points(n, Vector(d));
  for (auto& point : points) {
    for (auto& coord : point) coord = rng->NextDouble();
  }
  return points;
}

std::vector<Vector> GaussianCloud(size_t n, size_t d, double sigma,
                                  util::Rng* rng) {
  std::vector<Vector> points(n, Vector(d));
  for (auto& point : points) {
    for (auto& coord : point) coord = 0.5 + sigma * rng->NextGaussian();
  }
  return points;
}

std::vector<Vector> ClusteredCloud(size_t n, size_t d, size_t clusters,
                                   double sigma, util::Rng* rng) {
  DP_CHECK(clusters >= 1);
  std::vector<Vector> centres = UniformCube(clusters, d, rng);
  std::vector<Vector> points(n, Vector(d));
  for (auto& point : points) {
    const Vector& centre =
        centres[static_cast<size_t>(rng->NextBounded(clusters))];
    for (size_t i = 0; i < d; ++i) {
      point[i] = centre[i] + sigma * rng->NextGaussian();
    }
  }
  return points;
}

std::vector<Vector> LowDimEmbedding(size_t n, size_t ambient_d,
                                    size_t intrinsic_d, double noise,
                                    util::Rng* rng) {
  DP_CHECK(intrinsic_d >= 1 && intrinsic_d <= ambient_d);
  // Random (not orthonormalized) basis of the subspace; Gaussian entries
  // make the directions generic, which is all the experiments need.
  std::vector<Vector> basis(intrinsic_d, Vector(ambient_d));
  for (auto& direction : basis) {
    for (auto& coord : direction) {
      coord = rng->NextGaussian() / std::sqrt(static_cast<double>(ambient_d));
    }
  }
  std::vector<Vector> points(n, Vector(ambient_d, 0.0));
  for (auto& point : points) {
    for (size_t b = 0; b < intrinsic_d; ++b) {
      double coefficient = rng->NextDouble();  // uniform in the subspace
      for (size_t i = 0; i < ambient_d; ++i) {
        point[i] += coefficient * basis[b][i];
      }
    }
    if (noise > 0.0) {
      for (auto& coord : point) coord += noise * rng->NextGaussian();
    }
  }
  return points;
}

std::vector<Vector> HistogramCloud(size_t n, size_t d, size_t bumps,
                                   util::Rng* rng) {
  DP_CHECK(bumps >= 1);
  std::vector<Vector> points(n, Vector(d, 0.0));
  for (auto& point : points) {
    for (size_t b = 0; b < bumps; ++b) {
      double centre = rng->NextDouble() * static_cast<double>(d);
      double width = 1.0 + rng->NextDouble() * static_cast<double>(d) / 8.0;
      double mass = rng->NextDouble();
      for (size_t i = 0; i < d; ++i) {
        double offset = (static_cast<double>(i) - centre) / width;
        point[i] += mass * std::exp(-0.5 * offset * offset);
      }
    }
    double total = 0.0;
    for (double v : point) total += v;
    if (total > 0.0) {
      for (auto& v : point) v /= total;
    }
  }
  return points;
}

}  // namespace dataset
}  // namespace distperm
