// A self-healing read replica: a durable LiveDatabase whose only
// writer is a ReplicationClient, fronted by a read-only SearchServer.
//
// Open() bootstraps an empty directory by pulling the primary's
// current snapshot over the wire (resumable, CRC-checked), then opens
// the store through the ordinary durable recovery path — so a replica
// restarted after a crash needs no special casing: it recovers its own
// snapshot + WAL like any durable store and resumes the stream from
// its own delta_entries() + 1.
//
// Invariants this wiring enforces:
//   - read_only: wire Insert/Remove get kUnavailable; a client write
//     landing here would fork the replica from its primary.
//   - enable_replication = false: no chaining (a follow-on); the
//     replica never re-serves the stream.
//   - no auto_compact and no final Compact(): rotation is driven by
//     the primary's kWalFrameRotate frames only.  A self-initiated
//     fold would advance the local generation past the primary's and
//     force a full resync on the next handshake.
//
// Degradation: when the primary dies the server keeps answering from
// the last applied state while the client retries with backoff;
// staleness is visible as replica_lag_seconds / replica_applied_seq /
// replica_reconnects_total in the registry.

#ifndef DISTPERM_SERVER_REPLICA_SERVER_H_
#define DISTPERM_SERVER_REPLICA_SERVER_H_

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "engine/live_database.h"
#include "metric/metric.h"
#include "obs/metrics.h"
#include "server/replication_client.h"
#include "server/search_server.h"
#include "storage/env.h"
#include "util/status.h"

namespace distperm {
namespace server {

template <typename P>
class ReplicaServer {
 public:
  struct Options {
    /// Replica-local store directory (snapshot + WAL land here).
    std::string dir;
    /// Identity — must equal the primary's (spec, seed, shard_count)
    /// exactly; the handshake rejects any mismatch.  `index_spec` is
    /// the base spec without `wal_dir` (this class appends its own).
    std::string index_spec = "vp-tree";
    uint64_t seed = 0;
    size_t shard_count = 1;
    /// Extra live-spec knobs appended verbatim (e.g. "fsync=always" or
    /// "delta_scan_limit=512" to mirror the primary's).  Never pass
    /// auto_compact here — see the header comment.
    std::string live_knobs;
    size_t build_threads = 1;
    size_t engine_threads = 1;
    /// Primary endpoint, timeouts, and backoff.  `metrics` inside is
    /// ignored; the registry below is used throughout.
    typename ReplicationClient<P>::Options replication;
    /// Cap on how long Open() keeps retrying the initial snapshot
    /// bootstrap when the directory is empty and the primary is down.
    int bootstrap_timeout_ms = 30000;
    obs::MetricsRegistry* metrics = nullptr;
    /// Null uses storage::Env::Default().
    storage::Env* env = nullptr;
  };

  /// Bootstraps (if needed), recovers the local store, and wires the
  /// server + tail thread.  Nothing is listening yet — call Start().
  static util::Result<std::unique_ptr<ReplicaServer>> Open(
      const metric::Metric<P>& metric, const Options& options) {
    storage::Env* env =
        options.env != nullptr ? options.env : storage::Env::Default();
    DP_RETURN_IF_ERROR(env->CreateDir(options.dir));

    // Empty directory: pull the primary's current snapshot first, with
    // the same backoff the steady-state tail uses.  A directory that
    // already holds a snapshot recovers locally — even against a dead
    // primary — and catches up once it connects.
    bool has_snapshot = false;
    if (auto listing = env->ListDir(options.dir); listing.ok()) {
      for (const std::string& name : listing.value()) {
        if (name.rfind("snapshot-", 0) == 0) has_snapshot = true;
      }
    }
    if (!has_snapshot) {
      typename ReplicationClient<P>::Options bootstrap = options.replication;
      bootstrap.metrics = options.metrics;
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(options.bootstrap_timeout_ms);
      int64_t backoff_ms = bootstrap.backoff_initial_ms;
      for (;;) {
        util::Status status = ReplicationClient<P>::BootstrapSnapshot(
            env, options.dir, options.index_spec, options.seed,
            options.shard_count, bootstrap);
        if (status.ok()) break;
        if (std::chrono::steady_clock::now() >= deadline) return status;
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms =
            std::min<int64_t>(backoff_ms * 2, bootstrap.backoff_max_ms);
      }
    }

    std::string live_spec = options.index_spec;
    live_spec +=
        (live_spec.find(':') == std::string::npos ? ":" : ",");
    live_spec += "wal_dir=" + options.dir;
    if (!options.live_knobs.empty()) live_spec += "," + options.live_knobs;

    engine::LiveOptions live_options;
    live_options.build_threads = options.build_threads;
    live_options.metrics = options.metrics;
    live_options.env = options.env;  // null = default, same as above
    auto opened = engine::LiveDatabase<P>::Open(
        {}, metric, options.shard_count, live_spec, options.seed,
        live_options);
    if (!opened.ok()) return opened.status();

    std::unique_ptr<ReplicaServer> replica(
        new ReplicaServer(options, std::move(opened).value()));
    return replica;
  }

  ~ReplicaServer() { Shutdown(); }
  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  /// Starts listening (0 = ephemeral) and launches the tail thread.
  util::Status Start(uint16_t port) {
    DP_RETURN_IF_ERROR(server_->Start(port));
    client_->Start();
    return util::Status::OK();
  }

  util::Status StartMetrics(uint16_t port) {
    return server_->StartMetrics(port);
  }

  /// Runs the serving loop on the calling thread until Shutdown().
  void Run() { server_->Run(); }

  /// Tail thread first (no writer left), then the serving loop.
  /// Idempotent.  Deliberately NO final Compact() — see header.
  void Shutdown() {
    client_->Stop();
    server_->Shutdown();
  }

  engine::LiveDatabase<P>& db() { return *db_; }
  SearchServer<P>& server() { return *server_; }
  ReplicationClient<P>& replication() { return *client_; }

 private:
  ReplicaServer(const Options& options,
                std::unique_ptr<engine::LiveDatabase<P>> db)
      : db_(std::move(db)) {
    typename SearchServer<P>::Options server_options;
    server_options.engine_threads = options.engine_threads;
    server_options.metrics = options.metrics;
    server_options.read_only = true;
    server_options.enable_replication = false;
    server_ = std::make_unique<SearchServer<P>>(db_.get(), server_options);
    typename ReplicationClient<P>::Options client_options =
        options.replication;
    client_options.metrics = options.metrics;
    client_ = std::make_unique<ReplicationClient<P>>(db_.get(),
                                                     client_options);
  }

  std::unique_ptr<engine::LiveDatabase<P>> db_;
  std::unique_ptr<SearchServer<P>> server_;
  std::unique_ptr<ReplicationClient<P>> client_;
};

}  // namespace server
}  // namespace distperm

#endif  // DISTPERM_SERVER_REPLICA_SERVER_H_
