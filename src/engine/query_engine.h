// Concurrent batch query engine.
//
// RunBatch validates every QuerySpec (= index::SearchRequest) up front,
// fans the valid ones out as one task per (query, shard) pair onto a
// reusable worker pool, maps shard-local ids to global ids, and merges
// per-shard partials into globally correct answers: for an exact index,
// the merged results are identical to what a single index over the
// whole database would return.  Invalid requests (k = 0, negative
// radius, NaN coordinates, ...) cost nothing and come back with a
// per-query util::Status instead of CHECK-failing the batch.  Metric
// evaluations are accumulated per (query, shard) task in its own
// QueryStats slot and summed after the batch barrier, so concurrency
// never perturbs the paper's cost-model accounting.
//
// Cooperative kNN fan-out: a kNN-mode query whose shard_scheduling is
// kCooperative or kSeedFirst owns one cache-line-padded
// index::SharedSearchBound.  Every shard task reads it as an extra
// pruning cap on entry to each Radius() check and publishes its
// collector's k-th distance as it fills, so the whole fan-out converges
// toward single-index query cost instead of paying shards x the
// pruning-free cost.  kSeedFirst runs one seed shard to completion
// before submitting the rest, which then start from an already-tight
// bound.  For exact indexes the merged results are bit-identical to the
// independent (and to the single-index) answer — only which distances
// get computed changes, never which neighbours come back — because the
// shared bound can only overestimate the global k-th distance.  Which
// evaluations are saved depends on task interleaving, so per-query
// distance counts of cooperative runs are scheduling-dependent;
// kIndependent (the default) keeps the seed behavior of exactly
// reproducible counts.
//
// Distance budgets shard naively by default: each shard task receives
// the request's max_distance_computations unchanged, so a budgeted
// query's total cost is bounded by shards x budget and `truncated[q]`
// reports whether any shard stopped early.  With
// split_distance_budget, the budget is instead ceil-divided across the
// shards (remainder to the first shards, shards whose slice is zero
// skip their search and report truncation), bounding the query's total
// cost by the budget itself.
//
// Allocation behavior: the pool's threads are fixed for the engine's
// lifetime, so the per-thread index::QueryScratch buffers (kernel score
// blocks, candidate rankings, bound orderings, the pooled kNN
// collector) warm up over the first few queries a worker serves; the
// database-sized transient buffers are then reused allocation-free.
// Small fixed-size per-query allocations (site-distance vectors, result
// sets) remain.  The engine itself allocates only the per-batch slot
// arrays sized by |batch| x |shards|.

#ifndef DISTPERM_ENGINE_QUERY_ENGINE_H_
#define DISTPERM_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "engine/batch_stats.h"
#include "engine/query.h"
#include "engine/sharded_database.h"
#include "index/index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace distperm {
namespace engine {

/// Executes query batches against a ShardedDatabase on a fixed worker
/// pool.  The database is borrowed, not owned, so several engines (e.g.
/// with different thread counts) can serve the same shards.  RunBatch is
/// not reentrant: issue one batch at a time per engine.
///
/// The engine can also run without a bound database: construct with
/// just a thread count and pass the database to RunBatch explicitly.
/// That is the live-ingest serving mode — engine::LiveDatabase pins one
/// immutable engine::Generation with a single atomic acquire of its
/// state slot and hands its ShardedDatabase to RunBatch, so the whole
/// batch executes against that one generation no matter how many
/// compactions swap new generations in while the batch is in flight.
template <typename P>
class QueryEngine {
 public:
  struct BatchOutput {
    /// Per query, the merged results with global ids in canonical
    /// (distance, id) order; kNN results are truncated to k globally.
    /// Empty for queries whose status is not OK.
    std::vector<std::vector<index::SearchResult>> results;
    /// Per query: OK, or why the request was rejected.  Rejected
    /// queries execute no shard task and cost no metric evaluations.
    std::vector<util::Status> statuses;
    /// Per query: true iff at least one shard's search was stopped by
    /// the request's distance budget (results may be incomplete).
    std::vector<bool> truncated;
    /// Per query, metric evaluations summed over its shard tasks.
    std::vector<uint64_t> per_query_distance_computations;
    /// Per query, the requested trace (empty spans unless the query set
    /// collect_trace and executed).  Span times are relative to
    /// `batch_start`; a traced query's spans sum to exactly its
    /// per_query_distance_computations entry.
    std::vector<obs::SearchTrace> traces;
    /// The batch's reference clock: every span time (and the batch's
    /// wall_seconds) is measured from this instant.  Lets wrappers
    /// (LiveDatabase) rebase spans onto their own call start.
    std::chrono::steady_clock::time_point batch_start{};
    BatchStats stats;

    /// True iff every query in the batch succeeded.
    bool all_ok() const {
      for (const util::Status& status : statuses) {
        if (!status.ok()) return false;
      }
      return true;
    }
  };

  QueryEngine(const ShardedDatabase<P>* db, size_t thread_count)
      : db_(db), pool_(thread_count) {
    DP_CHECK(db != nullptr);
  }

  /// Unbound engine: just the worker pool.  Every batch must go through
  /// the RunBatch overload that names its database.
  explicit QueryEngine(size_t thread_count)
      : db_(nullptr), pool_(thread_count) {}

  ~QueryEngine() {
    if (registry_ != nullptr) {
      registry_->UnregisterCallback(queue_depth_handle_);
    }
  }

  /// Wires this engine's instruments into `registry` (see the engine_*
  /// and threadpool_* series in README.md "Observability").  Call at
  /// setup time, before RunBatch; the registry must outlive the
  /// engine.  Several engines on one registry share instruments and
  /// aggregate.  Without this call the engine records nothing — the
  /// metrics-off baseline the observability bench compares against.
  void EnableMetrics(obs::MetricsRegistry* registry) {
    DP_CHECK(registry != nullptr);
    DP_CHECK(registry_ == nullptr);
    registry_ = registry;
    metrics_.queries = registry->GetCounter("engine_queries_total");
    metrics_.rejected = registry->GetCounter("engine_queries_rejected_total");
    metrics_.truncated =
        registry->GetCounter("engine_queries_truncated_total");
    metrics_.split_budget =
        registry->GetCounter("engine_queries_split_budget_total");
    metrics_.shard_tasks = registry->GetCounter("engine_shard_tasks_total");
    metrics_.distance_computations =
        registry->GetCounter("engine_distance_computations_total");
    metrics_.pruning_eliminated =
        registry->GetCounter("engine_pruning_eliminated_total");
    metrics_.candidates_verified =
        registry->GetCounter("engine_candidates_verified_total");
    metrics_.bound_tightenings =
        registry->GetCounter("engine_coop_bound_tightenings_total");
    metrics_.queue_wait =
        registry->GetHistogram("engine_task_queue_wait_seconds");
    metrics_.task_run = registry->GetHistogram("engine_task_run_seconds");
    metrics_.query_latency =
        registry->GetHistogram("engine_query_latency_seconds");
    pool_.set_instruments(
        {registry->GetCounter("threadpool_tasks_submitted_total"),
         registry->GetCounter("threadpool_tasks_executed_total"),
         registry->GetHistogram("threadpool_task_seconds")});
    queue_depth_handle_ = registry->RegisterCallback(
        "threadpool_queue_depth",
        [this]() { return static_cast<double>(pool_.queue_depth()); });
    metrics_.enabled = true;
  }

  size_t thread_count() const { return pool_.thread_count(); }
  const ShardedDatabase<P>& database() const {
    DP_CHECK(db_ != nullptr);
    return *db_;
  }

  /// Runs the batch against the database bound at construction.
  BatchOutput RunBatch(const std::vector<QuerySpec<P>>& batch) {
    DP_CHECK(db_ != nullptr);
    return RunBatch(*db_, batch);
  }

  /// Runs the batch against `db`, which only needs to stay alive for
  /// the duration of the call.  The caller chooses the snapshot: the
  /// live-ingest path pins one generation and passes its database here,
  /// giving the batch a frozen view while writers and compactions
  /// proceed.
  BatchOutput RunBatch(const ShardedDatabase<P>& db,
                       const std::vector<QuerySpec<P>>& batch) {
    const size_t query_count = batch.size();
    const size_t shard_count = db.shard_count();
    BatchOutput out;
    out.results.resize(query_count);
    out.statuses.resize(query_count);
    out.truncated.assign(query_count, false);
    out.per_query_distance_computations.assign(query_count, 0);
    out.traces.resize(query_count);
    out.stats.query_count = query_count;
    out.stats.shard_count = shard_count;
    out.stats.thread_count = pool_.thread_count();
    if (query_count == 0) return out;

    // Validate once per query on the calling thread; invalid queries
    // never reach a worker.
    for (size_t q = 0; q < query_count; ++q) {
      out.statuses[q] = index::ValidateRequest(batch[q]);
    }

    // Per-query spec pointers: cooperative queries get one engine-owned
    // request copy with their SharedSearchBound hook installed; every
    // other query references the caller's batch directly, so the
    // default path copies no query points.  (Per-shard copies happen
    // only when a split budget forces a differing field.)
    std::vector<index::SharedSearchBound> bounds(query_count);
    std::vector<const QuerySpec<P>*> specs(query_count);
    size_t cooperative_count = 0;
    for (size_t q = 0; q < query_count; ++q) {
      if (Cooperative(batch[q], shard_count)) ++cooperative_count;
    }
    std::vector<QuerySpec<P>> cooperative_specs;
    cooperative_specs.reserve(cooperative_count);  // addresses must hold
    for (size_t q = 0; q < query_count; ++q) {
      if (Cooperative(batch[q], shard_count)) {
        cooperative_specs.push_back(batch[q]);
        cooperative_specs.back().shared_bound = &bounds[q];
        specs[q] = &cooperative_specs.back();
      } else {
        specs[q] = &batch[q];
      }
    }

    // One slot per (query, shard) task: no two tasks share a slot, so
    // workers never contend on anything but the per-query countdown and
    // (for cooperative queries) the padded shared bound.
    std::vector<index::SearchResponse> partials(query_count * shard_count);
    std::vector<PaddedCounter> tasks_left(query_count);
    for (auto& counter : tasks_left) {
      counter.value.store(shard_count, std::memory_order_relaxed);
    }
    std::vector<double> latencies(query_count, 0.0);

    // Trace slots, one per (query, shard) task, allocated only when
    // some query asked for a trace.  Like `partials`, no two tasks
    // share a slot, so tracing adds no synchronization.
    bool any_trace = false;
    for (size_t q = 0; q < query_count; ++q) {
      if (batch[q].collect_trace && out.statuses[q].ok()) any_trace = true;
    }
    std::vector<TaskTiming> trace_slots(
        any_trace ? query_count * shard_count : 0);
    const auto slot_for = [&](size_t q, size_t s) -> TaskTiming* {
      if (trace_slots.empty() || !specs[q]->collect_trace) return nullptr;
      return &trace_slots[q * shard_count + s];
    };

    const auto start = std::chrono::steady_clock::now();
    out.batch_start = start;
    // Queue-wait measurement needs per-task submit stamps; when nothing
    // records them, skip the clock reads so the metrics-off submit loop
    // stays as cheap as before.
    const bool stamp_submits = metrics_.enabled || any_trace;
    const auto submit_now = [stamp_submits, start]() {
      return stamp_submits ? std::chrono::steady_clock::now() : start;
    };

    for (size_t q = 0; q < query_count; ++q) {
      if (!out.statuses[q].ok()) continue;
      if (specs[q]->shard_scheduling == index::ShardScheduling::kSeedFirst &&
          specs[q]->shared_bound != nullptr) {
        // Two-phase: the seed shard task submits the rest of the
        // fan-out when it completes (the pool allows Submit from within
        // a task), so every other shard starts from its bound.
        pool_.Submit([this, &db, &specs, &partials, &tasks_left,
                      &latencies, &slot_for, &submit_now, start,
                      shard_count, q]() {
          RunShardTask(db, specs, partials, tasks_left, latencies, start,
                       /*submit=*/start, slot_for(q, 0), shard_count, q,
                       /*s=*/0);
          for (size_t s = 1; s < shard_count; ++s) {
            const auto submit = submit_now();
            pool_.Submit([this, &db, &specs, &partials, &tasks_left,
                          &latencies, &slot_for, start, submit, shard_count,
                          q, s]() {
              RunShardTask(db, specs, partials, tasks_left, latencies,
                           start, submit, slot_for(q, s), shard_count, q,
                           s);
            });
          }
        });
        continue;
      }
      for (size_t s = 0; s < shard_count; ++s) {
        const auto submit = submit_now();
        pool_.Submit([this, &db, &specs, &partials, &tasks_left,
                      &latencies, &slot_for, start, submit, shard_count, q,
                      s]() {
          RunShardTask(db, specs, partials, tasks_left, latencies, start,
                       submit, slot_for(q, s), shard_count, q, s);
        });
      }
    }
    pool_.Wait();

    std::vector<double> executed_latencies;
    executed_latencies.reserve(query_count);
    for (size_t q = 0; q < query_count; ++q) {
      if (!out.statuses[q].ok()) continue;
      executed_latencies.push_back(latencies[q]);
      std::vector<index::SearchResult> merged;
      size_t total = 0;
      for (size_t s = 0; s < shard_count; ++s) {
        total += partials[q * shard_count + s].results.size();
      }
      merged.reserve(total);
      uint64_t distances = 0;
      bool truncated = false;
      for (size_t s = 0; s < shard_count; ++s) {
        index::SearchResponse& partial = partials[q * shard_count + s];
        // Validation passed on the calling thread, so shard responses
        // are OK by construction; propagate defensively regardless.
        if (!partial.status.ok() && out.statuses[q].ok()) {
          out.statuses[q] = partial.status;
        }
        merged.insert(merged.end(), partial.results.begin(),
                      partial.results.end());
        distances += partial.stats.distance_computations;
        out.stats.pruning_eliminated += partial.stats.pruning_eliminated;
        out.stats.candidates_verified +=
            partial.stats.candidates_verified;
        truncated = truncated || partial.truncated;
      }
      index::SortResults(&merged);
      if (batch[q].mode != QueryType::kRange && merged.size() > batch[q].k) {
        merged.resize(batch[q].k);
      }
      out.results[q] = std::move(merged);
      out.truncated[q] = truncated;
      out.per_query_distance_computations[q] = distances;
      out.stats.distance_computations += distances;

      if (specs[q]->collect_trace && !trace_slots.empty()) {
        // One span per shard task; the per-task distance counts are
        // the partials' own QueryStats, so the spans partition the
        // query's total exactly.
        auto& spans = out.traces[q].spans;
        spans.reserve(shard_count);
        for (size_t s = 0; s < shard_count; ++s) {
          const TaskTiming& timing = trace_slots[q * shard_count + s];
          spans.push_back(
              {s, /*delta=*/false, timing.start, timing.stop,
               partials[q * shard_count + s].stats.distance_computations,
               timing.bound_entry, timing.bound_exit});
        }
        std::sort(spans.begin(), spans.end(),
                  [](const obs::SearchTrace::Span& a,
                     const obs::SearchTrace::Span& b) {
                    if (a.start_seconds != b.start_seconds) {
                      return a.start_seconds < b.start_seconds;
                    }
                    return a.shard < b.shard;
                  });
      }
    }

    out.stats.wall_seconds = Seconds(start, std::chrono::steady_clock::now());
    out.stats.latency = SummarizeLatencies(std::move(executed_latencies));

    if (metrics_.enabled) RecordBatchMetrics(batch, bounds, latencies, out);
    return out;
  }

 private:
  /// Per-query countdown of unfinished shard tasks, padded to a cache
  /// line so adjacent queries' counters never false-share under the
  /// per-task fetch_sub.
  struct alignas(64) PaddedCounter {
    std::atomic<size_t> value{0};
  };

  /// Per-(query, shard) trace slot a task fills without contention;
  /// the merge loop turns it into an obs::SearchTrace::Span.
  struct TaskTiming {
    double start = 0.0;
    double stop = 0.0;
    double bound_entry = std::numeric_limits<double>::infinity();
    double bound_exit = std::numeric_limits<double>::infinity();
  };

  /// The engine's instruments, all nullable: EnableMetrics fills them,
  /// and every recording site checks.  `enabled` short-circuits the
  /// timing reads so the metrics-off hot path takes no clocks.
  struct Instruments {
    bool enabled = false;
    obs::Counter* queries = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* truncated = nullptr;
    obs::Counter* split_budget = nullptr;
    obs::Counter* shard_tasks = nullptr;
    obs::Counter* distance_computations = nullptr;
    obs::Counter* pruning_eliminated = nullptr;
    obs::Counter* candidates_verified = nullptr;
    obs::Counter* bound_tightenings = nullptr;
    obs::Histogram* queue_wait = nullptr;
    obs::Histogram* task_run = nullptr;
    obs::Histogram* query_latency = nullptr;
  };

  /// Folds one finished batch into the registry: query/truncation
  /// counters, per-query latency observations, the cost-model totals,
  /// and the cooperative bounds' tightening counts.  Runs on the
  /// calling thread after the batch barrier, off the task hot path.
  void RecordBatchMetrics(const std::vector<QuerySpec<P>>& batch,
                          const std::vector<index::SharedSearchBound>& bounds,
                          const std::vector<double>& latencies,
                          const BatchOutput& out) {
    uint64_t executed = 0;
    uint64_t rejected = 0;
    uint64_t truncated = 0;
    uint64_t split_budget = 0;
    for (size_t q = 0; q < batch.size(); ++q) {
      if (!out.statuses[q].ok()) {
        ++rejected;
        continue;
      }
      ++executed;
      if (out.truncated[q]) ++truncated;
      if (batch[q].split_distance_budget &&
          batch[q].max_distance_computations != 0) {
        ++split_budget;
      }
      metrics_.query_latency->Record(latencies[q]);
    }
    metrics_.queries->Add(executed);
    if (rejected != 0) metrics_.rejected->Add(rejected);
    if (truncated != 0) metrics_.truncated->Add(truncated);
    if (split_budget != 0) metrics_.split_budget->Add(split_budget);
    metrics_.distance_computations->Add(out.stats.distance_computations);
    if (out.stats.pruning_eliminated != 0) {
      metrics_.pruning_eliminated->Add(out.stats.pruning_eliminated);
    }
    if (out.stats.candidates_verified != 0) {
      metrics_.candidates_verified->Add(out.stats.candidates_verified);
    }
    uint64_t tightenings = 0;
    for (const index::SharedSearchBound& bound : bounds) {
      tightenings += bound.tightenings.load(std::memory_order_relaxed);
    }
    if (tightenings != 0) metrics_.bound_tightenings->Add(tightenings);
  }

  /// True iff this request runs its shard fan-out cooperatively: a kNN
  /// mode (range queries have nothing to share), more than one shard,
  /// and a cooperative scheduling policy.
  static bool Cooperative(const QuerySpec<P>& spec, size_t shard_count) {
    return spec.shard_scheduling != index::ShardScheduling::kIndependent &&
           spec.mode != QueryType::kRange && shard_count > 1;
  }

  /// Shard s's distance budget: the full request budget by default, or
  /// its ceil-divided slice (remainder to the first shards) under
  /// split_distance_budget.
  static uint64_t ShardBudget(const QuerySpec<P>& spec, size_t s,
                              size_t shard_count) {
    const uint64_t budget = spec.max_distance_computations;
    if (!spec.split_distance_budget || budget == 0) return budget;
    const uint64_t base = budget / shard_count;
    const uint64_t extra = budget % shard_count;
    return base + (s < extra ? 1 : 0);
  }

  /// One (query, shard) task: searches the shard, maps local ids to
  /// global ids, stores the partial, and stamps the query latency when
  /// it is the last of the query's tasks to finish.  When metrics or a
  /// trace slot want timing, the task additionally reads the clock on
  /// entry/exit (and the cooperative bound, for the trace) — around
  /// the search, never inside it, so instrumented results stay
  /// bit-identical.
  void RunShardTask(const ShardedDatabase<P>& db,
                    const std::vector<const QuerySpec<P>*>& specs,
                    std::vector<index::SearchResponse>& partials,
                    std::vector<PaddedCounter>& tasks_left,
                    std::vector<double>& latencies,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point submit,
                    TaskTiming* timing, size_t shard_count, size_t q,
                    size_t s) {
    const QuerySpec<P>& spec = *specs[q];
    const bool timed = metrics_.enabled || timing != nullptr;
    std::chrono::steady_clock::time_point task_start{};
    if (timed) {
      task_start = std::chrono::steady_clock::now();
      if (metrics_.queue_wait != nullptr) {
        metrics_.queue_wait->Record(Seconds(submit, task_start));
      }
      if (timing != nullptr) {
        timing->start = Seconds(start, task_start);
        timing->bound_entry =
            spec.shared_bound != nullptr
                ? spec.shared_bound->Load()
                : std::numeric_limits<double>::infinity();
      }
    }
    index::SearchResponse response;
    const uint64_t budget = ShardBudget(spec, s, shard_count);
    if (spec.max_distance_computations != 0 && budget == 0) {
      // A split budget smaller than the shard count starves this
      // shard entirely: spend nothing, report the truncation.
      response.truncated = true;
    } else if (budget != spec.max_distance_computations) {
      QuerySpec<P> shard_spec = spec;
      shard_spec.max_distance_computations = budget;
      response = db.shard(s).Search(shard_spec);
    } else {
      response = db.shard(s).Search(spec);
    }
    const size_t offset = db.shard_offset(s);
    for (index::SearchResult& r : response.results) r.id += offset;
    partials[q * shard_count + s] = std::move(response);
    if (timed) {
      const auto task_stop = std::chrono::steady_clock::now();
      if (metrics_.task_run != nullptr) {
        metrics_.task_run->Record(Seconds(task_start, task_stop));
      }
      if (timing != nullptr) {
        timing->stop = Seconds(start, task_stop);
        timing->bound_exit =
            spec.shared_bound != nullptr
                ? spec.shared_bound->Load()
                : std::numeric_limits<double>::infinity();
      }
    }
    if (metrics_.shard_tasks != nullptr) metrics_.shard_tasks->Increment();
    // The last shard task to finish stamps the query's latency.
    if (tasks_left[q].value.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      latencies[q] = Seconds(start, std::chrono::steady_clock::now());
    }
  }

  static double Seconds(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
    return std::chrono::duration<double>(to - from).count();
  }

  const ShardedDatabase<P>* db_;
  util::ThreadPool pool_;
  obs::MetricsRegistry* registry_ = nullptr;
  uint64_t queue_depth_handle_ = 0;
  Instruments metrics_;
};

}  // namespace engine
}  // namespace distperm

#endif  // DISTPERM_ENGINE_QUERY_ENGINE_H_
