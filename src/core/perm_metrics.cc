#include "core/perm_metrics.h"

#include <cstdlib>

#include "util/status.h"

namespace distperm {
namespace core {

int SpearmanFootrule(const Permutation& a, const Permutation& b) {
  DP_CHECK(a.size() == b.size());
  Permutation rank_a = InvertPermutation(a);
  Permutation rank_b = InvertPermutation(b);
  int sum = 0;
  for (size_t site = 0; site < a.size(); ++site) {
    sum += std::abs(static_cast<int>(rank_a[site]) -
                    static_cast<int>(rank_b[site]));
  }
  return sum;
}

int64_t SpearmanRhoSquared(const Permutation& a, const Permutation& b) {
  DP_CHECK(a.size() == b.size());
  Permutation rank_a = InvertPermutation(a);
  Permutation rank_b = InvertPermutation(b);
  int64_t sum = 0;
  for (size_t site = 0; site < a.size(); ++site) {
    int64_t diff = static_cast<int>(rank_a[site]) -
                   static_cast<int>(rank_b[site]);
    sum += diff * diff;
  }
  return sum;
}

int KendallTau(const Permutation& a, const Permutation& b) {
  DP_CHECK(a.size() == b.size());
  Permutation rank_a = InvertPermutation(a);
  Permutation rank_b = InvertPermutation(b);
  const size_t k = a.size();
  int discordant = 0;
  for (size_t s = 0; s < k; ++s) {
    for (size_t t = s + 1; t < k; ++t) {
      bool order_a = rank_a[s] < rank_a[t];
      bool order_b = rank_b[s] < rank_b[t];
      discordant += order_a != order_b;
    }
  }
  return discordant;
}

int PrefixFootrule(const Permutation& a, const Permutation& b,
                   size_t total_sites) {
  DP_CHECK(a.size() == b.size());
  const int missing_rank = static_cast<int>(a.size());
  // rank_of[site] = position in the prefix, or missing_rank.
  std::vector<int> rank_a(total_sites, missing_rank);
  std::vector<int> rank_b(total_sites, missing_rank);
  for (size_t r = 0; r < a.size(); ++r) {
    DP_CHECK(a[r] < total_sites && b[r] < total_sites);
    rank_a[a[r]] = static_cast<int>(r);
    rank_b[b[r]] = static_cast<int>(r);
  }
  int sum = 0;
  for (size_t site = 0; site < total_sites; ++site) {
    sum += std::abs(rank_a[site] - rank_b[site]);
  }
  return sum;
}

int MaxFootrule(size_t k) {
  return static_cast<int>((k * k) / 2);
}

int MaxKendallTau(size_t k) {
  return static_cast<int>(k * (k - 1) / 2);
}

}  // namespace core
}  // namespace distperm
