// Reproduces paper Figures 1-4: the generalized Voronoi diagram of four
// sites in the plane.  Verifies that the Euclidean bisector arrangement
// of four generic sites has exactly 18 cells (Fig. 3), both by exact
// rational arrangement counting and by dense probing; shows the L1
// diagram (Fig. 4) has a comparable count but a *different* permutation
// set; and renders both diagrams as ASCII art.
//
// Usage: fig3_fig4_planar_cells [--resolution=600]

#include <iostream>
#include <string>
#include <vector>

#include "core/euclidean_count.h"
#include "core/perm_codec.h"
#include "geometry/arrangement2d.h"
#include "geometry/cell_enum.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace {

using distperm::core::Permutation;
using distperm::core::UnrankPermutation;
using distperm::geometry::CellEnumeration;
using distperm::metric::Vector;

std::string PermString(uint64_t rank, size_t k) {
  Permutation perm = UnrankPermutation(rank, k);
  std::string out;
  for (uint8_t site : perm) out += static_cast<char>('A' + site);
  return out;
}

// Renders the cell diagram: each probe point is drawn with a letter
// derived from its permutation rank, so cells show up as constant-letter
// areas and boundaries as letter changes.
void RenderAscii(const std::vector<Vector>& sites, double p, double lo,
                 double hi, int width, int height) {
  std::vector<double> distances(sites.size());
  for (int row = 0; row < height; ++row) {
    std::string line;
    for (int col = 0; col < width; ++col) {
      double x = lo + (hi - lo) * col / (width - 1);
      double y = hi - (hi - lo) * row / (height - 1);
      bool is_site = false;
      for (size_t s = 0; s < sites.size(); ++s) {
        if (std::abs(sites[s][0] - x) < (hi - lo) / width &&
            std::abs(sites[s][1] - y) < (hi - lo) / height) {
          line += static_cast<char>('A' + s);
          is_site = true;
          break;
        }
      }
      if (is_site) continue;
      for (size_t s = 0; s < sites.size(); ++s) {
        distances[s] = distperm::metric::LpDistance(sites[s], {x, y}, p);
      }
      uint64_t rank = distperm::core::RankPermutation(
          distperm::core::PermutationFromDistances(distances));
      line += static_cast<char>('a' + rank % 26);
    }
    std::cout << line << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t resolution =
      static_cast<size_t>(flags.value().GetInt("resolution", 600));

  // Four generic sites in the unit square (the paper's figures use a
  // similar generic configuration).
  std::vector<Vector> sites = {
      {0.1, 0.15}, {0.75, 0.3}, {0.35, 0.8}, {0.9, 0.85}};
  std::vector<distperm::geometry::IntPoint2> int_sites = {
      {100, 150}, {750, 300}, {350, 800}, {900, 850}};  // x1000

  distperm::core::EuclideanCounter counter;
  std::cout << "Figures 1-4: planar bisector diagrams of 4 sites\n\n";
  std::cout << "Theorem 7 prediction N_{2,2}(4) = " << counter.Count64(2, 4)
            << "\n";

  auto arrangement =
      distperm::geometry::EuclideanBisectorArrangement(int_sites);
  std::cout << "Exact L2 bisector arrangement: " << arrangement.line_count()
            << " lines, " << arrangement.CountVertices() << " vertices, "
            << arrangement.CountRegions() << " cells\n\n";

  CellEnumeration l2 = distperm::geometry::EnumerateCellsByGrid(
      sites, 2.0, -2.5, 3.5, resolution);
  CellEnumeration l1 = distperm::geometry::EnumerateCellsByGrid(
      sites, 1.0, -2.5, 3.5, resolution);

  distperm::util::TablePrinter table;
  table.SetHeader({"metric", "cells found", "probes"});
  table.AddRow({"L2 (Fig. 3)", std::to_string(l2.count()),
                std::to_string(l2.probes)});
  table.AddRow({"L1 (Fig. 4)", std::to_string(l1.count()),
                std::to_string(l1.probes)});
  table.Print(std::cout);

  auto only_l2 = distperm::geometry::PermutationSetDifference(
      l2.permutation_ranks, l1.permutation_ranks);
  auto only_l1 = distperm::geometry::PermutationSetDifference(
      l1.permutation_ranks, l2.permutation_ranks);
  std::cout << "\npermutations only in the L2 diagram:";
  for (uint64_t rank : only_l2) std::cout << " " << PermString(rank, 4);
  std::cout << "\npermutations only in the L1 diagram:";
  for (uint64_t rank : only_l1) std::cout << " " << PermString(rank, 4);
  std::cout << "\n(the paper: both diagrams have 18 cells for its sites, "
               "but not the same 18 permutations)\n";

  std::cout << "\nL2 diagram (cells = letter regions), window [-0.5, 1.5]^2:"
            << "\n";
  RenderAscii(sites, 2.0, -0.5, 1.5, 72, 30);
  std::cout << "\nL1 diagram, same window:\n";
  RenderAscii(sites, 1.0, -0.5, 1.5, 72, 30);
  return 0;
}
