// Minimal epoll event loop for the serving subsystem.
//
// One loop, one thread: Add/Modify/Remove are called from the loop
// thread (or before Run() starts); only Stop() and Wake() are safe
// from other threads (they signal an eventfd the loop waits on).
// Callbacks receive the ready-event mask; a callback may Remove any
// fd, including its own — the dispatcher re-checks registration
// before every invocation, so a removal in one callback safely
// cancels a later one in the same wave.
//
// The loop wakes at least every tick interval and runs the tick
// callback after every wait, so periodic work (idle sweeps, drain
// checks) happens even on a busy loop.

#ifndef DISTPERM_NET_EVENT_LOOP_H_
#define DISTPERM_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "util/status.h"

namespace distperm {
namespace net {

class EventLoop {
 public:
  using Callback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN / EPOLLOUT / ...).
  util::Status Add(int fd, uint32_t events, Callback callback);
  /// Changes the watched event mask of a registered fd.
  util::Status Modify(int fd, uint32_t events);
  /// Unregisters; safe to call for fds that were never added.
  void Remove(int fd);

  /// Dispatches until Stop().  Runs the tick callback after every
  /// epoll wait (ready or timed out).
  void Run();
  /// Makes Run() return after the current wave.  Thread-safe.
  void Stop();
  /// Interrupts the current wait without stopping.  Thread-safe.
  void Wake();

  void set_tick(std::function<void()> tick) { tick_ = std::move(tick); }
  void set_tick_interval_ms(int ms) { tick_interval_ms_ = ms; }

  bool running() const { return running_.load(std::memory_order_relaxed); }

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::unordered_map<int, Callback> callbacks_;
  std::function<void()> tick_;
  int tick_interval_ms_ = 200;
};

}  // namespace net
}  // namespace distperm

#endif  // DISTPERM_NET_EVENT_LOOP_H_
