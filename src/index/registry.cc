#include "index/registry.h"

#include <cctype>
#include <cstdlib>

namespace distperm {
namespace index {

namespace {

bool ValidNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
}

bool ValidKeyChar(char c) { return (c >= 'a' && c <= 'z') || c == '_'; }

util::Status Malformed(const std::string& spec,
                       const std::string& message) {
  return util::Status::InvalidArgument("index spec '" + spec +
                                       "': " + message);
}

}  // namespace

util::Result<ParsedIndexSpec> ParseIndexSpec(const std::string& spec) {
  ParsedIndexSpec parsed;
  const size_t colon = spec.find(':');
  parsed.name =
      spec.substr(0, colon == std::string::npos ? spec.size() : colon);
  if (parsed.name.empty()) {
    return Malformed(spec, "empty index name");
  }
  for (char c : parsed.name) {
    if (!ValidNameChar(c)) {
      return Malformed(spec, std::string("invalid character '") + c +
                                 "' in index name (allowed: [a-z0-9-])");
    }
  }
  if (colon == std::string::npos) return parsed;

  const std::string options = spec.substr(colon + 1);
  if (options.empty()) {
    return Malformed(spec, "dangling ':' with no options");
  }
  size_t begin = 0;
  while (begin <= options.size()) {
    size_t end = options.find(',', begin);
    if (end == std::string::npos) end = options.size();
    const std::string option = options.substr(begin, end - begin);
    const size_t equals = option.find('=');
    if (equals == std::string::npos) {
      return Malformed(spec, "option '" + option +
                                 "' is not of the form key=value");
    }
    const std::string key = option.substr(0, equals);
    const std::string value = option.substr(equals + 1);
    if (key.empty()) {
      return Malformed(spec, "option with an empty key");
    }
    for (char c : key) {
      if (!ValidKeyChar(c)) {
        return Malformed(spec, std::string("invalid character '") + c +
                                   "' in option key '" + key +
                                   "' (allowed: [a-z_])");
      }
    }
    if (value.empty()) {
      return Malformed(spec, "option '" + key + "' has an empty value");
    }
    for (const auto& [seen_key, seen_value] : parsed.options) {
      if (seen_key == key) {
        return Malformed(spec, "duplicate option '" + key + "'");
      }
    }
    parsed.options.emplace_back(key, value);
    begin = end + 1;
  }
  return parsed;
}

util::Result<std::pair<std::string, LiveSpecOptions>> SplitLiveSpec(
    const std::string& spec) {
  util::Result<ParsedIndexSpec> parsed = ParseIndexSpec(spec);
  if (!parsed.ok()) return parsed.status();

  std::vector<std::pair<std::string, std::string>> live_pairs;
  std::string residual = parsed.value().name;
  bool first_option = true;
  for (auto& [key, value] : parsed.value().options) {
    if (key == "delta_scan_limit" || key == "auto_compact_threshold" ||
        key == "wal_dir" || key == "fsync" || key == "delta_index" ||
        key == "delta_index_k" || key == "delta_index_min") {
      live_pairs.emplace_back(key, value);
      continue;
    }
    residual += first_option ? ":" : ",";
    residual += key + "=" + value;
    first_option = false;
  }

  // Reuse IndexOptions for the option parsing and its error messages;
  // only the live keys are present, so CheckAllConsumed is moot.
  LiveSpecOptions defaults;
  IndexOptions live("live", std::move(live_pairs));
  util::Result<size_t> limit =
      live.GetSize("delta_scan_limit", defaults.delta_scan_limit);
  if (!limit.ok()) return limit.status();
  util::Result<size_t> threshold = live.GetSize(
      "auto_compact_threshold", defaults.auto_compact_threshold);
  if (!threshold.ok()) return threshold.status();
  util::Result<std::string> wal_dir = live.GetString("wal_dir", "");
  if (!wal_dir.ok()) return wal_dir.status();
  util::Result<std::string> fsync = live.GetString("fsync", defaults.fsync);
  if (!fsync.ok()) return fsync.status();
  if (fsync.value() != "always" && fsync.value() != "batched" &&
      fsync.value() != "never") {
    return util::Status::InvalidArgument(
        "live spec '" + spec + "': fsync must be always|batched|never, got '" +
        fsync.value() + "'");
  }
  util::Result<std::string> delta_index =
      live.GetString("delta_index", defaults.delta_index);
  if (!delta_index.ok()) return delta_index.status();
  util::Result<size_t> delta_index_k =
      live.GetSize("delta_index_k", defaults.delta_index_k);
  if (!delta_index_k.ok()) return delta_index_k.status();
  // Sentinel fallback distinguishes "knob absent" (default, clamped to
  // the scan limit so small-delta specs keep working) from an explicit
  // contradictory setting (an error).
  constexpr size_t kUnsetSize = static_cast<size_t>(-1);
  util::Result<size_t> delta_index_min =
      live.GetSize("delta_index_min", kUnsetSize);
  if (!delta_index_min.ok()) return delta_index_min.status();

  LiveSpecOptions options;
  options.delta_scan_limit = limit.value();
  options.auto_compact_threshold = threshold.value();
  options.wal_dir = wal_dir.value();
  options.fsync = fsync.value();
  options.delta_index = delta_index.value();
  options.delta_index_k = delta_index_k.value();
  const bool delta_index_min_set = delta_index_min.value() != kUnsetSize;
  options.delta_index_min =
      delta_index_min_set
          ? delta_index_min.value()
          : std::min(defaults.delta_index_min, options.delta_scan_limit);
  if (options.delta_scan_limit == 0) {
    return util::Status::InvalidArgument(
        "live spec '" + spec + "': delta_scan_limit must be >= 1");
  }
  if (options.auto_compact_threshold > options.delta_scan_limit) {
    return util::Status::InvalidArgument(
        "live spec '" + spec +
        "': auto_compact_threshold must be <= delta_scan_limit "
        "(the compaction must trigger before backpressure)");
  }
  if (options.delta_index.empty()) {
    return util::Status::InvalidArgument(
        "live spec '" + spec + "': delta_index must name a registered index");
  }
  if (options.delta_index_k == 0) {
    return util::Status::InvalidArgument(
        "live spec '" + spec + "': delta_index_k must be >= 1");
  }
  if (delta_index_min_set &&
      options.delta_index_min > options.delta_scan_limit) {
    return util::Status::InvalidArgument(
        "live spec '" + spec +
        "': delta_index_min must be <= delta_scan_limit");
  }
  return std::make_pair(std::move(residual), options);
}

IndexOptions::IndexOptions(
    std::string index_name,
    std::vector<std::pair<std::string, std::string>> options)
    : index_name_(std::move(index_name)) {
  entries_.reserve(options.size());
  for (auto& [key, value] : options) {
    entries_.push_back({std::move(key), std::move(value), false});
  }
}

const IndexOptions::Entry* IndexOptions::Find(const std::string& key) {
  for (Entry& entry : entries_) {
    if (entry.key == key) {
      entry.consumed = true;
      return &entry;
    }
  }
  return nullptr;
}

util::Result<size_t> IndexOptions::GetSize(const std::string& key,
                                           size_t fallback) {
  const Entry* entry = Find(key);
  if (entry == nullptr) return fallback;
  const std::string& value = entry->value;
  if (value[0] == '-' || value[0] == '+' ||
      !std::isdigit(static_cast<unsigned char>(value[0]))) {
    return util::Status::InvalidArgument(
        index_name_ + ": option '" + key + "=" + value +
        "' is not a non-negative integer");
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size()) {
    return util::Status::InvalidArgument(
        index_name_ + ": option '" + key + "=" + value +
        "' is not a non-negative integer");
  }
  return static_cast<size_t>(parsed);
}

util::Result<double> IndexOptions::GetDouble(const std::string& key,
                                             double fallback) {
  const Entry* entry = Find(key);
  if (entry == nullptr) return fallback;
  const std::string& value = entry->value;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || value.empty()) {
    return util::Status::InvalidArgument(index_name_ + ": option '" + key +
                                         "=" + value +
                                         "' is not a number");
  }
  return parsed;
}

util::Result<std::string> IndexOptions::GetString(
    const std::string& key, const std::string& fallback) {
  const Entry* entry = Find(key);
  if (entry == nullptr) return fallback;
  return entry->value;
}

util::Status IndexOptions::CheckAllConsumed() const {
  for (const Entry& entry : entries_) {
    if (!entry.consumed) {
      return util::Status::InvalidArgument(
          index_name_ + ": unknown option '" + entry.key + "'");
    }
  }
  return util::Status::OK();
}

}  // namespace index
}  // namespace distperm
