// LAESA (Mico, Oncina & Vidal 1994): linear-storage AESA.
//
// Instead of the full distance matrix, LAESA stores the distances from
// every database point to k chosen pivots — Theta(n k) numbers.  A query
// measures its distance to each pivot, lower-bounds every candidate by
// max_j |d(q, p_j) - d(x, p_j)|, and verifies survivors in increasing
// bound order.  This is the storage baseline the permutation index
// improves on: k distances of lg n bits each versus one permutation of
// lg k! bits.

#ifndef DISTPERM_INDEX_LAESA_H_
#define DISTPERM_INDEX_LAESA_H_

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "index/flat_data_path.h"
#include "index/index.h"
#include "index/pivot_select.h"
#include "index/query_scratch.h"
#include "metric/kernels.h"
#include "util/rng.h"

namespace distperm {
namespace index {

/// Pivot-table index with exact range and kNN search.
template <typename P>
class LaesaIndex : public SearchIndex<P> {
 public:
  using SearchIndex<P>::data_;

  /// Builds with `pivot_count` max-min pivots chosen using `rng`.  On
  /// the flat path the n x k table is filled one pivot at a time with
  /// the one-query-vs-block kernels — the pivot row is the "query", the
  /// whole store is the block — which vectorizes the O(nk) build while
  /// keeping every entry bit-identical to the scalar pairwise loop (the
  /// kernels are symmetric in their arguments bit-for-bit).
  LaesaIndex(std::vector<P> data, metric::Metric<P> metric,
             size_t pivot_count, util::Rng* rng)
      : SearchIndex<P>(std::move(data), std::move(metric)),
        flat_(data_, this->metric_) {
    pivot_ids_ = MaxMinPivots(data_, this->metric_, pivot_count, rng,
                              &this->build_count_);
    const size_t n = data_.size();
    const size_t k = pivot_ids_.size();
    table_.resize(n * k);
    if (flat_.enabled()) {
      for (size_t j = 0; j < k; ++j) {
        flat_.ForEachRowDistance(pivot_ids_[j], 0, n, &this->build_count_,
                                 [this, j, k](size_t i, double d) {
                                   table_[i * k + j] = d;
                                 });
      }
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < k; ++j) {
        table_[i * k + j] = this->BuildDist(data_[i], data_[pivot_ids_[j]]);
      }
    }
  }

  std::string name() const override { return "laesa"; }

  uint64_t IndexBits() const override {
    return static_cast<uint64_t>(table_.size()) * sizeof(double) * 8;
  }

  /// The pivot ids, in selection order.
  const std::vector<size_t>& pivot_ids() const { return pivot_ids_; }

  /// Stored distance from point i to pivot j.
  double StoredDistance(size_t i, size_t j) const {
    return table_[i * pivot_ids_.size() + j];
  }

 protected:
  void SearchImpl(const SearchRequest<P>& request,
                  SearchContext* context) const override {
    const P& query = request.point;
    QueryStats* stats = context->stats();
    std::vector<double> query_to_pivot;
    if (!MeasurePivots(query, context, &query_to_pivot)) return;
    const bool flat = flat_.enabled();
    const auto ctx = flat ? flat_.MakeQuery(query)
                          : typename FlatDataPath<P>::QueryContext{};
    for (size_t j = 0; j < pivot_ids_.size(); ++j) {
      context->Emit(pivot_ids_[j], query_to_pivot[j]);
    }
    if (request.mode == SearchMode::kRange) {
      // Fixed radius: the candidate set is known up front, so verify
      // survivors in id order without building the bound ordering.
      for (size_t i = 0; i < data_.size(); ++i) {
        if (IsPivot(i)) continue;
        if (LowerBound(i, query_to_pivot) > request.radius) {
          ++stats->pruning_eliminated;
          continue;
        }
        if (context->StopAfterBudget()) return;
        context->Emit(
            i, flat ? flat_.ChargedRowDistance(
                          ctx, i, &stats->distance_computations)
                    : this->QueryDist(data_[i], query, stats));
      }
      return;
    }
    // kNN modes: verify non-pivot candidates in increasing lower-bound
    // order; stop once the bound exceeds the shrinking radius.  The
    // order array is per-thread scratch, reused allocation-free across
    // the batch.
    std::vector<std::pair<double, size_t>>& order =
        QueryScratch::ForThread().bounds;
    order.clear();
    order.reserve(data_.size());
    for (size_t i = 0; i < data_.size(); ++i) {
      if (IsPivot(i)) continue;
      order.emplace_back(LowerBound(i, query_to_pivot), i);
    }
    std::sort(order.begin(), order.end());
    size_t verified = 0;
    for (const auto& [bound, i] : order) {
      if (bound > context->Radius()) break;
      if (context->StopAfterBudget()) return;
      context->Emit(
          i, flat ? flat_.ChargedRowDistance(ctx, i,
                                             &stats->distance_computations)
                  : this->QueryDist(data_[i], query, stats));
      ++verified;
    }
    // Everything past the stopping point was eliminated by its lower
    // bound alone — no metric evaluation spent.
    stats->pruning_eliminated += order.size() - verified;
  }

 private:
  /// Measures the query against every pivot, charging one evaluation
  /// each.  Returns false when the distance budget runs out mid-way.
  bool MeasurePivots(const P& query, SearchContext* context,
                     std::vector<double>* distances) const {
    distances->resize(pivot_ids_.size());
    for (size_t j = 0; j < pivot_ids_.size(); ++j) {
      if (context->StopAfterBudget()) return false;
      (*distances)[j] = this->QueryDist(data_[pivot_ids_[j]], query,
                                        context->stats());
    }
    return true;
  }

  double LowerBound(size_t i, const std::vector<double>& query_to_pivot)
      const {
    // max_j |d(q, p_j) - d(x, p_j)| is exactly the L-infinity kernel
    // over the contiguous pivot-table row (max is associative, so the
    // vectorized form is bit-identical to the scalar loop).
    return metric::LInfRaw(query_to_pivot.data(),
                           &table_[i * pivot_ids_.size()],
                           pivot_ids_.size());
  }

  bool IsPivot(size_t i) const {
    return std::find(pivot_ids_.begin(), pivot_ids_.end(), i) !=
           pivot_ids_.end();
  }

  std::vector<size_t> pivot_ids_;
  std::vector<double> table_;  // row-major n x k
  FlatDataPath<P> flat_;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_LAESA_H_
