#include "core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/cake.h"
#include "core/euclidean_count.h"
#include "util/big_uint.h"

namespace distperm {
namespace core {
namespace {

using util::BigUint;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Bounds, HyperplanesPerBisectorValues) {
  // L2: always exactly one hyperplane.
  for (int d = 0; d <= 10; ++d) {
    EXPECT_EQ(HyperplanesPerBisector(d, 2.0), BigUint(1));
  }
  // L1: 2^{2d}.
  EXPECT_EQ(HyperplanesPerBisector(1, 1.0), BigUint(4));
  EXPECT_EQ(HyperplanesPerBisector(2, 1.0), BigUint(16));
  EXPECT_EQ(HyperplanesPerBisector(3, 1.0), BigUint(64));
  // Linf: 4d^2.
  EXPECT_EQ(HyperplanesPerBisector(1, kInf), BigUint(4));
  EXPECT_EQ(HyperplanesPerBisector(2, kInf), BigUint(16));
  EXPECT_EQ(HyperplanesPerBisector(3, kInf), BigUint(36));
  EXPECT_EQ(HyperplanesPerBisector(10, kInf), BigUint(400));
}

TEST(Bounds, L2BoundDominatesExactCount) {
  EuclideanCounter counter;
  for (int d = 1; d <= 6; ++d) {
    for (int k = 2; k <= 12; ++k) {
      EXPECT_LE(counter.Count(d, k), LpPermutationUpperBound(d, 2.0, k))
          << "d=" << d << " k=" << k;
    }
  }
}

TEST(Bounds, L1BoundCoversTheCounterexample) {
  // The paper's experiment found 108 > N_{3,2}(5) = 96 permutations in
  // 3-dimensional L1 space; Theorem 9's L1 bound must cover it.
  BigUint bound = LpPermutationUpperBound(3, 1.0, 5);
  EXPECT_GE(bound, BigUint(108));
  // And the bound is far looser than the Euclidean count, as §4 warns.
  EXPECT_GT(bound, EuclideanPermutationCount(3, 5));
}

TEST(Bounds, BoundsExceedEuclideanBound) {
  // For the same d and k the L1/Linf bounds use more hyperplanes, so
  // they always dominate the L2 bound.
  for (int d = 1; d <= 5; ++d) {
    for (int k = 2; k <= 10; ++k) {
      BigUint l2 = LpPermutationUpperBound(d, 2.0, k);
      EXPECT_GE(LpPermutationUpperBound(d, 1.0, k), l2);
      EXPECT_GE(LpPermutationUpperBound(d, kInf, k), l2);
    }
  }
}

TEST(Bounds, PolynomialInKForFixedD) {
  // Theorem 9: all bounds are O(k^{2d}) for constant d.  Check the ratio
  // bound(2k)/bound(k) approaches 2^{2d} for large k.
  for (double p : {1.0, 2.0, kInf}) {
    for (int d = 1; d <= 3; ++d) {
      double small = LpPermutationUpperBound(d, p, 200).ToDouble();
      double large = LpPermutationUpperBound(d, p, 400).ToDouble();
      double expected = std::pow(2.0, 2.0 * d);
      EXPECT_NEAR(large / small / expected, 1.0, 0.10)
          << "p=" << p << " d=" << d;
    }
  }
}

TEST(Bounds, StorageBitBoundMatchesBitLength) {
  for (double p : {1.0, 2.0, kInf}) {
    for (int d = 1; d <= 4; ++d) {
      for (int k = 2; k <= 8; ++k) {
        BigUint bound = LpPermutationUpperBound(d, p, k);
        int bits = LpStorageBitBound(d, p, k);
        // 2^bits >= bound and 2^(bits-1) < bound.
        EXPECT_GE(BigUint::Pow(BigUint(2), static_cast<uint64_t>(bits)),
                  bound);
        if (bits > 0) {
          EXPECT_LT(
              BigUint::Pow(BigUint(2), static_cast<uint64_t>(bits - 1)),
              bound);
        }
      }
    }
  }
}

TEST(Bounds, UnrestrictedPermutationBits) {
  EXPECT_EQ(UnrestrictedPermutationBits(1), 0);
  EXPECT_EQ(UnrestrictedPermutationBits(2), 1);
  EXPECT_EQ(UnrestrictedPermutationBits(3), 3);
  EXPECT_EQ(UnrestrictedPermutationBits(12), 29);
  // Stirling: lg(20!) ~ 61.1 bits.
  EXPECT_EQ(UnrestrictedPermutationBits(20), 62);
}

TEST(Bounds, StorageImprovementKicksIn) {
  // The paper's storage claim: for fixed small d, the Lp bound's bits
  // grow like d lg k, far below lg k! = Theta(k lg k).  At d = 3, k = 64
  // the permutation-set bound must already beat the raw permutation.
  EXPECT_LT(LpStorageBitBound(3, 2.0, 64), UnrestrictedPermutationBits(64));
  EXPECT_LT(LpStorageBitBound(3, 1.0, 256),
            UnrestrictedPermutationBits(256));
  EXPECT_LT(LpStorageBitBound(3, kInf, 256),
            UnrestrictedPermutationBits(256));
}

TEST(Bounds, TrivialCases) {
  for (double p : {1.0, 2.0, kInf}) {
    // One site: one (empty) permutation, zero bits.
    EXPECT_EQ(LpPermutationUpperBound(2, p, 1), BigUint(1));
    EXPECT_EQ(LpStorageBitBound(2, p, 1), 0);
    // Zero dimensions: a single point, one cell.
    EXPECT_EQ(LpPermutationUpperBound(0, p, 5), BigUint(1));
  }
}

}  // namespace
}  // namespace core
}  // namespace distperm
