// Similarity search in a dictionary under edit distance — the classic
// SISAP workload the paper's Table 2 instruments.  Builds several
// indexes over a synthetic dictionary through the runtime index
// registry (which is point-type generic: the same spec strings work
// over strings under Levenshtein as over vectors under L2), searches
// for near-matches of a misspelled word, and reports the metric
// evaluations each index spent.
//
//   ./example_dictionary_search [--words=20000] [--query=algorithnm]

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dataset/string_gen.h"
#include "index/registry.h"
#include "metric/string_metrics.h"
#include "util/flags.h"
#include "util/rng.h"

using distperm::metric::Metric;
using distperm::util::Rng;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t word_count =
      static_cast<size_t>(flags.value().GetInt("words", 20000));

  // Build a synthetic dictionary.
  distperm::dataset::LanguageProfile profile;
  profile.name = "Demoish";
  profile.mean_length = 8.0;
  Rng rng(11);
  auto words =
      distperm::dataset::MarkovWordGenerator(profile).Dictionary(word_count,
                                                                 &rng);
  // Query: a word from the dictionary with two random edits, or a flag.
  std::string query = flags.value().GetString("query", "");
  if (query.empty()) {
    query = words[rng.NextBounded(words.size())];
    std::string original = query;
    for (int e = 0; e < 2; ++e) {
      size_t pos = rng.NextBounded(query.size());
      query[pos] = static_cast<char>('a' + rng.NextBounded(26));
    }
    std::cout << "query: \"" << query << "\" (corrupted from \"" << original
              << "\")\n";
  } else {
    std::cout << "query: \"" << query << "\"\n";
  }

  Metric<std::string> lev((distperm::metric::LevenshteinMetric()));

  // One registry spec per index.  The linear scan leads: it supplies
  // the exact ground truth the others are scored against.
  const std::vector<std::string> specs = {
      "linear-scan", "laesa:k=12", "vp-tree",
      "distperm:k=12,fraction=0.05"};
  auto& registry = distperm::index::Registry<std::string>::Global();
  std::vector<std::unique_ptr<distperm::index::SearchIndex<std::string>>>
      indexes;
  for (const std::string& spec : specs) {
    Rng build_rng = rng.Split();
    auto built = registry.Create(spec, words, lev, &build_rng);
    if (!built.ok()) {
      std::cerr << "failed to build '" << spec << "': " << built.status()
                << "\n";
      return 1;
    }
    indexes.push_back(std::move(built).value());
  }

  std::cout << "\nnearest 5 dictionary words (exact, via linear scan):\n";
  auto truth = indexes.front()->KnnQuery(query, 5);
  for (const auto& hit : truth) {
    std::cout << "  " << words[hit.id] << "  (distance " << hit.distance
              << ")\n";
  }

  std::cout << "\nmetric evaluations per index for the same query:\n";
  for (size_t i = 0; i < indexes.size(); ++i) {
    auto& index = *indexes[i];
    index.ResetQueryCount();
    auto hits = index.KnnQuery(query, 5);
    size_t overlap = 0;
    for (const auto& t : truth) {
      for (const auto& h : hits) overlap += h.id == t.id;
    }
    std::cout << "  " << specs[i] << ": "
              << index.query_distance_computations()
              << " distances, " << overlap << "/5 of the true neighbours, "
              << index.IndexBits() / (8 * words.size())
              << " bytes/word index overhead\n";
  }
  std::cout << "\nrange query: all words within edit distance 2 "
               "(vp-tree)\n";
  auto nearby = indexes[2]->RangeQuery(query, 2.0);
  for (const auto& hit : nearby) {
    std::cout << "  " << words[hit.id] << " (" << hit.distance << ")\n";
  }
  return 0;
}
