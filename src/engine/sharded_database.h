// Sharded database: one SearchIndex per contiguous slice of the data.
//
// Shard s owns the global id range [offset(s), offset(s) + shard size);
// a shard-local result id maps back to a global id by adding the
// offset.  Contiguous slicing keeps that mapping O(1) and makes the
// sharded cost model additive: the metric evaluations of one query
// summed over all shards equal the evaluations a single index over the
// whole database would spend (exactly, for the linear scan).

#ifndef DISTPERM_ENGINE_SHARDED_DATABASE_H_
#define DISTPERM_ENGINE_SHARDED_DATABASE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "index/index.h"
#include "index/registry.h"
#include "metric/metric.h"
#include "util/rng.h"
#include "util/status.h"

namespace distperm {
namespace engine {

/// Owns `shard_count` indexes built over contiguous slices of one
/// database.  Immutable (and therefore freely shareable across query
/// threads) once built.
template <typename P>
class ShardedDatabase {
 public:
  /// Builds one index over one shard's slice of the data.  Called once
  /// per shard, in shard order, on the building thread.
  using IndexFactory =
      std::function<std::unique_ptr<index::SearchIndex<P>>(
          std::vector<P> shard_data, const metric::Metric<P>& metric,
          size_t shard_number)>;

  /// Splits `data` into `shard_count` contiguous slices (sizes differing
  /// by at most one) and builds an index over each.
  static ShardedDatabase Build(const std::vector<P>& data,
                               const metric::Metric<P>& metric,
                               size_t shard_count,
                               const IndexFactory& factory) {
    DP_CHECK(shard_count >= 1);
    ShardedDatabase db;
    db.total_size_ = data.size();
    const size_t base = data.size() / shard_count;
    const size_t extra = data.size() % shard_count;
    size_t offset = 0;
    for (size_t s = 0; s < shard_count; ++s) {
      size_t size = base + (s < extra ? 1 : 0);
      std::vector<P> slice(data.begin() + offset,
                           data.begin() + offset + size);
      db.offsets_.push_back(offset);
      db.shards_.push_back(factory(std::move(slice), metric, s));
      DP_CHECK(db.shards_.back() != nullptr);
      DP_CHECK(db.shards_.back()->size() == size);
      offset += size;
    }
    return db;
  }

  /// Like Build, but the index type and its options come from a
  /// runtime `index_spec` string resolved through index::Registry
  /// (e.g. "vp-tree", "laesa:k=16", "distperm:k=8,fraction=0.2").
  /// Each shard gets its own deterministic RNG stream derived from
  /// `seed`, so a given (data, spec, shard_count, seed) always builds
  /// the same database.  Returns the registry's or parser's error for
  /// bad specs instead of dying.
  static util::Result<ShardedDatabase> BuildFromRegistry(
      const std::vector<P>& data, const metric::Metric<P>& metric,
      size_t shard_count, const std::string& index_spec, uint64_t seed) {
    if (shard_count < 1) {
      return util::Status::InvalidArgument(
          "ShardedDatabase: shard_count must be >= 1");
    }
    ShardedDatabase db;
    db.total_size_ = data.size();
    const size_t base = data.size() / shard_count;
    const size_t extra = data.size() % shard_count;
    size_t offset = 0;
    for (size_t s = 0; s < shard_count; ++s) {
      size_t size = base + (s < extra ? 1 : 0);
      std::vector<P> slice(data.begin() + offset,
                           data.begin() + offset + size);
      util::Rng rng(seed * 0x9e3779b97f4a7c15ull + s);
      util::Result<std::unique_ptr<index::SearchIndex<P>>> built =
          index::Registry<P>::Global().Create(index_spec, std::move(slice),
                                              metric, &rng);
      if (!built.ok()) {
        return util::Status(built.status().code(),
                            "shard " + std::to_string(s) + ": " +
                                built.status().message());
      }
      db.offsets_.push_back(offset);
      db.shards_.push_back(std::move(built).value());
      offset += size;
    }
    return db;
  }

  size_t shard_count() const { return shards_.size(); }
  size_t size() const { return total_size_; }

  /// The index serving shard s.
  const index::SearchIndex<P>& shard(size_t s) const { return *shards_[s]; }

  /// Global id of shard s's local id 0.
  size_t shard_offset(size_t s) const { return offsets_[s]; }

  /// Name of the underlying index type (from shard 0).
  std::string index_name() const { return shards_.front()->name(); }

  /// Metric evaluations spent building all shards.
  uint64_t build_distance_computations() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->build_distance_computations();
    }
    return total;
  }

  /// Auxiliary storage across all shards, in bits.
  uint64_t IndexBits() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->IndexBits();
    return total;
  }

 private:
  ShardedDatabase() = default;

  std::vector<std::unique_ptr<index::SearchIndex<P>>> shards_;
  std::vector<size_t> offsets_;
  size_t total_size_ = 0;
};

}  // namespace engine
}  // namespace distperm

#endif  // DISTPERM_ENGINE_SHARDED_DATABASE_H_
