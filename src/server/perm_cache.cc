#include "server/perm_cache.h"

#include <atomic>
#include <chrono>
#include <list>
#include <mutex>
#include <unordered_map>

namespace distperm {
namespace server {

namespace {

/// FNV-1a over the key picks the shard; independent from the maps' own
/// std::hash so one bad hash cannot both skew shards and chain buckets.
size_t ShardHash(const std::string& key) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : key) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return static_cast<size_t>(hash);
}

using Clock = std::chrono::steady_clock;

}  // namespace

std::string PermCacheFullKey(const core::Permutation& perm,
                             const std::string& request_bytes) {
  std::string key;
  key.reserve(2 + perm.size() + request_bytes.size());
  key.push_back('A');  // answer namespace
  key.push_back(static_cast<char>(perm.size()));
  key.append(reinterpret_cast<const char*>(perm.data()), perm.size());
  key.append(request_bytes);
  return key;
}

std::string PermCachePrefixKey(const core::Permutation& perm,
                               size_t prefix_length, uint8_t mode,
                               uint64_t k) {
  const size_t length = std::min(prefix_length, perm.size());
  std::string key;
  key.reserve(2 + length + 9);
  key.push_back('B');  // bound namespace
  key.push_back(static_cast<char>(length));
  key.append(reinterpret_cast<const char*>(perm.data()), length);
  key.push_back(static_cast<char>(mode));
  storage::PutFixed64(&key, k);
  return key;
}

struct PermCacheStore::Impl {
  struct AnswerEntry {
    std::string key;
    net::WireSearchResponse response;
    CacheTags tags;
    Clock::time_point filled;
  };
  struct BoundEntry {
    double kth_distance = 0.0;
    std::vector<double> site_distances;
    uint64_t remove_clock = 0;
    Clock::time_point filled;
  };
  struct Shard {
    std::mutex mutex;
    /// Front = most recently used.
    std::list<AnswerEntry> lru;
    std::unordered_map<std::string, std::list<AnswerEntry>::iterator>
        answers;
    std::unordered_map<std::string, BoundEntry> bounds;
  };

  explicit Impl(const Options& opts) : options(opts) {
    const size_t count = std::max<size_t>(1, options.shard_count);
    shards = std::vector<Shard>(count);
    per_shard_capacity = std::max<size_t>(1, options.capacity / count);
    if (options.metrics != nullptr) {
      obs_hits = options.metrics->GetCounter("perm_cache_hits_total");
      obs_misses = options.metrics->GetCounter("perm_cache_misses_total");
      obs_bound_seeds =
          options.metrics->GetCounter("perm_cache_bound_seeds_total");
      obs_invalidations =
          options.metrics->GetCounter("perm_cache_invalidations_total");
      obs_evictions =
          options.metrics->GetCounter("perm_cache_evictions_total");
      obs_probe_distances =
          options.metrics->GetCounter("perm_cache_probe_distances_total");
    }
  }

  Shard& ShardFor(const std::string& key) {
    return shards[ShardHash(key) % shards.size()];
  }

  bool Expired(Clock::time_point filled, Clock::time_point now) const {
    if (options.ttl_seconds == 0) return false;
    return now - filled >= std::chrono::seconds(options.ttl_seconds);
  }

  void CountHit() {
    hits.fetch_add(1, std::memory_order_relaxed);
    if (obs_hits != nullptr) obs_hits->Increment();
  }
  void CountMiss() {
    misses.fetch_add(1, std::memory_order_relaxed);
    if (obs_misses != nullptr) obs_misses->Increment();
  }
  void CountInvalidation() {
    invalidations.fetch_add(1, std::memory_order_relaxed);
    if (obs_invalidations != nullptr) obs_invalidations->Increment();
  }
  void CountEviction() {
    evictions.fetch_add(1, std::memory_order_relaxed);
    if (obs_evictions != nullptr) obs_evictions->Increment();
  }

  Options options;
  std::vector<Shard> shards;
  size_t per_shard_capacity = 1;

  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> bound_seeds{0};
  std::atomic<uint64_t> invalidations{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> probe_distances{0};

  obs::Counter* obs_hits = nullptr;
  obs::Counter* obs_misses = nullptr;
  obs::Counter* obs_bound_seeds = nullptr;
  obs::Counter* obs_invalidations = nullptr;
  obs::Counter* obs_evictions = nullptr;
  obs::Counter* obs_probe_distances = nullptr;
};

PermCacheStore::PermCacheStore(const Options& options)
    : impl_(new Impl(options)) {}

PermCacheStore::~PermCacheStore() { delete impl_; }

bool PermCacheStore::LookupAnswer(const std::string& key,
                                  const CacheTags& tags,
                                  net::WireSearchResponse* out) {
  Impl::Shard& shard = impl_->ShardFor(key);
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.answers.find(key);
  if (it == shard.answers.end()) {
    impl_->CountMiss();
    return false;
  }
  const Impl::AnswerEntry& entry = *it->second;
  if (entry.tags.generation != tags.generation ||
      entry.tags.mutation_clock != tags.mutation_clock ||
      impl_->Expired(entry.filled, now)) {
    shard.lru.erase(it->second);
    shard.answers.erase(it);
    impl_->CountInvalidation();
    impl_->CountMiss();
    return false;
  }
  *out = entry.response;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  impl_->CountHit();
  return true;
}

void PermCacheStore::FillAnswer(const std::string& key,
                                const net::WireSearchResponse& response,
                                const CacheTags& tags) {
  Impl::Shard& shard = impl_->ShardFor(key);
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.answers.find(key);
  if (it != shard.answers.end()) {
    it->second->response = response;
    it->second->tags = tags;
    it->second->filled = now;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Impl::AnswerEntry{key, response, tags, now});
  shard.answers.emplace(key, shard.lru.begin());
  while (shard.answers.size() > impl_->per_shard_capacity) {
    shard.answers.erase(shard.lru.back().key);
    shard.lru.pop_back();
    impl_->CountEviction();
  }
}

bool PermCacheStore::LookupBound(const std::string& key,
                                 const CacheTags& tags, double* kth_distance,
                                 std::vector<double>* site_distances) {
  Impl::Shard& shard = impl_->ShardFor(key);
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.bounds.find(key);
  if (it == shard.bounds.end()) return false;
  if (it->second.remove_clock != tags.remove_clock ||
      impl_->Expired(it->second.filled, now)) {
    shard.bounds.erase(it);
    impl_->CountInvalidation();
    return false;
  }
  *kth_distance = it->second.kth_distance;
  *site_distances = it->second.site_distances;
  return true;
}

void PermCacheStore::FillBound(const std::string& key, double kth_distance,
                               const std::vector<double>& site_distances,
                               const CacheTags& tags) {
  Impl::Shard& shard = impl_->ShardFor(key);
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.bounds.find(key);
  if (it != shard.bounds.end()) {
    // Keep the tighter bound while both describe the same point set.
    if (it->second.remove_clock == tags.remove_clock &&
        it->second.kth_distance <= kth_distance &&
        !impl_->Expired(it->second.filled, now)) {
      return;
    }
    it->second = Impl::BoundEntry{kth_distance, site_distances,
                                  tags.remove_clock, now};
    return;
  }
  while (shard.bounds.size() >= impl_->per_shard_capacity) {
    shard.bounds.erase(shard.bounds.begin());
    impl_->CountEviction();
  }
  shard.bounds.emplace(
      key, Impl::BoundEntry{kth_distance, site_distances, tags.remove_clock,
                            now});
}

void PermCacheStore::RecordProbeDistances(uint64_t n) {
  impl_->probe_distances.fetch_add(n, std::memory_order_relaxed);
  if (impl_->obs_probe_distances != nullptr) {
    impl_->obs_probe_distances->Add(n);
  }
}

void PermCacheStore::RecordBoundSeed() {
  impl_->bound_seeds.fetch_add(1, std::memory_order_relaxed);
  if (impl_->obs_bound_seeds != nullptr) impl_->obs_bound_seeds->Increment();
}

uint64_t PermCacheStore::hits() const {
  return impl_->hits.load(std::memory_order_relaxed);
}
uint64_t PermCacheStore::misses() const {
  return impl_->misses.load(std::memory_order_relaxed);
}
uint64_t PermCacheStore::bound_seeds() const {
  return impl_->bound_seeds.load(std::memory_order_relaxed);
}
uint64_t PermCacheStore::invalidations() const {
  return impl_->invalidations.load(std::memory_order_relaxed);
}
uint64_t PermCacheStore::evictions() const {
  return impl_->evictions.load(std::memory_order_relaxed);
}
uint64_t PermCacheStore::probe_distances() const {
  return impl_->probe_distances.load(std::memory_order_relaxed);
}

const PermCacheStore::Options& PermCacheStore::options() const {
  return impl_->options;
}

}  // namespace server
}  // namespace distperm
