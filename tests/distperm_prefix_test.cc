// Tests for the truncated (prefix) variant of the permutation index and
// the prefix footrule.

#include <gtest/gtest.h>

#include "core/perm_metrics.h"
#include "dataset/vector_gen.h"
#include "index/distperm_index.h"
#include "index/linear_scan.h"
#include "metric/lp.h"
#include "util/rng.h"

namespace distperm {
namespace index {
namespace {

using core::Permutation;
using metric::Vector;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

TEST(PrefixFootrule, EqualPrefixesAreZero) {
  EXPECT_EQ(core::PrefixFootrule({0, 1}, {0, 1}, 5), 0);
  EXPECT_EQ(core::PrefixFootrule({}, {}, 5), 0);
}

TEST(PrefixFootrule, MatchesFullFootruleAtFullLength) {
  util::Rng rng(1);
  for (int t = 0; t < 30; ++t) {
    size_t k = 2 + rng.NextBounded(8);
    Permutation a(k), b(k);
    std::iota(a.begin(), a.end(), 0);
    std::iota(b.begin(), b.end(), 0);
    rng.Shuffle(&a);
    rng.Shuffle(&b);
    EXPECT_EQ(core::PrefixFootrule(a, b, k), core::SpearmanFootrule(a, b));
  }
}

TEST(PrefixFootrule, DisjointPrefixesKnownValue) {
  // k = 4, prefixes {0,1} vs {2,3}: every site is at rank 2 (missing) in
  // one prefix and at 0 or 1 in the other: |0-2|+|1-2| twice = 6.
  EXPECT_EQ(core::PrefixFootrule({0, 1}, {2, 3}, 4), 6);
}

TEST(PrefixFootrule, SwapWithinPrefix) {
  EXPECT_EQ(core::PrefixFootrule({0, 1}, {1, 0}, 4), 2);
}

TEST(PrefixFootrule, SymmetricAndTriangle) {
  util::Rng rng(2);
  const size_t k = 7, m = 3;
  std::vector<Permutation> prefixes;
  for (int i = 0; i < 10; ++i) {
    Permutation full(k);
    std::iota(full.begin(), full.end(), 0);
    rng.Shuffle(&full);
    full.resize(m);
    prefixes.push_back(full);
  }
  for (const auto& a : prefixes) {
    for (const auto& b : prefixes) {
      EXPECT_EQ(core::PrefixFootrule(a, b, k),
                core::PrefixFootrule(b, a, k));
      for (const auto& c : prefixes) {
        EXPECT_LE(core::PrefixFootrule(a, c, k),
                  core::PrefixFootrule(a, b, k) +
                      core::PrefixFootrule(b, c, k));
      }
    }
  }
}

TEST(DistPermPrefix, StoresPrefixesOnly) {
  util::Rng rng(3), site_rng(4);
  auto data = dataset::UniformCube(300, 3, &rng);
  DistPermIndex<Vector> index(data, L2(), 10, &site_rng, 0.5,
                              /*prefix_length=*/4);
  EXPECT_EQ(index.prefix_length(), 4u);
  EXPECT_EQ(index.name(), "distperm-prefix");
  for (size_t i = 0; i < data.size(); i += 37) {
    EXPECT_EQ(index.StoredPermutation(i).size(), 4u);
    EXPECT_EQ(index.DecodePackedPermutation(i), index.StoredPermutation(i));
  }
  // 4 entries * ceil(lg 10) = 4 bits each = 16 bits/point.
  EXPECT_EQ(index.IndexBits(), 300u * 16u);
}

TEST(DistPermPrefix, PrefixConsistentWithFullIndex) {
  util::Rng rng(5), r1(6), r2(6);
  auto data = dataset::UniformCube(400, 3, &rng);
  DistPermIndex<Vector> full(data, L2(), 8, &r1, 1.0);
  DistPermIndex<Vector> truncated(data, L2(), 8, &r2, 1.0,
                                  /*prefix_length=*/3);
  // Same site RNG seed => same sites; the stored prefix must equal the
  // first entries of the full permutation.
  for (size_t i = 0; i < data.size(); i += 23) {
    auto full_perm = full.StoredPermutation(i);
    auto prefix = truncated.StoredPermutation(i);
    ASSERT_EQ(prefix.size(), 3u);
    for (size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(prefix[r], full_perm[r]);
    }
  }
}

TEST(DistPermPrefix, ExactAtFullFraction) {
  util::Rng rng(7), site_rng(8);
  auto data = dataset::UniformCube(250, 2, &rng);
  DistPermIndex<Vector> index(data, L2(), 10, &site_rng, 1.0,
                              /*prefix_length=*/4);
  LinearScanIndex<Vector> reference(data, L2());
  for (int q = 0; q < 8; ++q) {
    Vector query = {rng.NextDouble(), rng.NextDouble()};
    EXPECT_EQ(index.KnnQuery(query, 5), reference.KnnQuery(query, 5));
  }
}

TEST(DistPermPrefix, RecallDegradesGracefully) {
  util::Rng rng(9), r1(10), r2(10);
  auto data = dataset::UniformCube(2000, 3, &rng);
  DistPermIndex<Vector> full(data, L2(), 12, &r1, 0.1);
  DistPermIndex<Vector> truncated(data, L2(), 12, &r2, 0.1,
                                  /*prefix_length=*/4);
  LinearScanIndex<Vector> reference(data, L2());
  size_t full_hits = 0, prefix_hits = 0, total = 0;
  for (int q = 0; q < 15; ++q) {
    Vector query = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    auto truth = reference.KnnQuery(query, 10);
    auto a = full.KnnQuery(query, 10);
    auto b = truncated.KnnQuery(query, 10);
    for (const auto& t : truth) {
      ++total;
      for (const auto& r : a) full_hits += r.id == t.id;
      for (const auto& r : b) prefix_hits += r.id == t.id;
    }
  }
  // The truncated index stores 4x less but must still beat random
  // verification (which would land near fraction = 0.1 recall).
  EXPECT_GT(static_cast<double>(prefix_hits) / total, 0.5);
  // And cannot beat the full-permutation ordering by much.
  EXPECT_LE(prefix_hits, full_hits + total / 10);
}

TEST(DistPermPrefix, DistinctCountsNeverExceedFullCounts) {
  util::Rng rng(11), r1(12), r2(12);
  auto data = dataset::UniformCube(1500, 2, &rng);
  DistPermIndex<Vector> full(data, L2(), 9, &r1, 0.1);
  DistPermIndex<Vector> truncated(data, L2(), 9, &r2, 0.1,
                                  /*prefix_length=*/3);
  // Truncation merges permutations, so the distinct count can only drop.
  EXPECT_LE(truncated.DistinctPermutationCount(),
            full.DistinctPermutationCount());
}

}  // namespace
}  // namespace index
}  // namespace distperm
