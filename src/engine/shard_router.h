// Shard routing for live-delta entries: which shard owns a point.
//
// Incremental compaction folds only the shards a delta touched, so
// every insert (and every removed base id) must name an owning shard
// deterministically.  The router is derived purely from a generation's
// shard layout:
//
//  - vectors route to the shard whose slice centroid (per-coordinate
//    mean) is L2-nearest, ties to the lowest shard number — new points
//    land in the shard already holding their neighborhood, which keeps
//    the dirty set small for clustered ingest;
//  - strings route by FNV-1a hash of the bytes mod shard_count —
//    there is no cheap geometric summary for edit distance, so an
//    even, deterministic spread is the right default.
//
// Determinism is the load-bearing property: the primary, a replica
// replaying the same rotation, and crash recovery replaying the same
// WAL all rebuild the router from bit-identical shard layouts and must
// route every point to the same shard.  Nothing here consults an RNG,
// wall clock, or pointer value.

#ifndef DISTPERM_ENGINE_SHARD_ROUTER_H_
#define DISTPERM_ENGINE_SHARD_ROUTER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/status.h"

namespace distperm {
namespace engine {

namespace internal {

inline uint64_t Fnv1a64(const char* bytes, size_t length) {
  uint64_t hash = 1469598103934665603ull;
  for (size_t i = 0; i < length; ++i) {
    hash ^= static_cast<unsigned char>(bytes[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace internal

/// Routes points to owning shards.  Built once per generation from the
/// shard slices (ShardRouter::ForSlices) and immutable afterwards —
/// safe to share with the generation across reader threads.
template <typename P>
class ShardRouter;

template <>
class ShardRouter<std::vector<double>> {
 public:
  using Point = std::vector<double>;

  /// Builds the router from a generation's shard slices: one centroid
  /// per non-empty shard.  `slice_of(s)` must return shard s's points
  /// (a const std::vector<Point>&).  Slices may be empty (a fresh
  /// store with fewer points than shards); if every shard is empty the
  /// router falls back to hashing, so routing is total either way.
  template <typename SliceFn>
  static ShardRouter ForShards(size_t shard_count, const SliceFn& slice_of) {
    DP_CHECK(shard_count >= 1);
    ShardRouter router;
    router.shard_count_ = shard_count;
    for (size_t s = 0; s < shard_count; ++s) {
      const auto& slice = slice_of(s);
      if (slice.empty()) continue;
      std::vector<double> centroid(slice.front().size(), 0.0);
      for (const auto& point : slice) {
        for (size_t d = 0; d < centroid.size() && d < point.size(); ++d) {
          centroid[d] += point[d];
        }
      }
      const double inverse = 1.0 / static_cast<double>(slice.size());
      for (double& c : centroid) c *= inverse;
      router.centroids_.push_back(std::move(centroid));
      router.centroid_shards_.push_back(s);
    }
    return router;
  }

  /// Owning shard for `point`: nearest centroid by squared L2, ties to
  /// the lowest shard number (centroids are visited in shard order and
  /// only a strictly smaller distance displaces the winner).
  uint32_t Route(const Point& point) const {
    if (centroids_.empty()) {
      return static_cast<uint32_t>(
          internal::Fnv1a64(
              reinterpret_cast<const char*>(point.data()),
              point.size() * sizeof(double)) %
          shard_count_);
    }
    size_t best = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centroids_.size(); ++c) {
      const std::vector<double>& centroid = centroids_[c];
      double distance = 0.0;
      const size_t dims = std::min(centroid.size(), point.size());
      for (size_t d = 0; d < dims; ++d) {
        const double diff = point[d] - centroid[d];
        distance += diff * diff;
      }
      if (distance < best_distance) {
        best_distance = distance;
        best = c;
      }
    }
    return static_cast<uint32_t>(centroid_shards_[best]);
  }

  size_t shard_count() const { return shard_count_; }

 private:
  size_t shard_count_ = 1;
  std::vector<std::vector<double>> centroids_;
  std::vector<size_t> centroid_shards_;
};

template <>
class ShardRouter<std::string> {
 public:
  using Point = std::string;

  template <typename SliceFn>
  static ShardRouter ForShards(size_t shard_count, const SliceFn& slice_of) {
    (void)slice_of;
    DP_CHECK(shard_count >= 1);
    ShardRouter router;
    router.shard_count_ = shard_count;
    return router;
  }

  /// Owning shard for `point`: FNV-1a over the bytes, mod shard count.
  uint32_t Route(const Point& point) const {
    return static_cast<uint32_t>(
        internal::Fnv1a64(point.data(), point.size()) % shard_count_);
  }

  size_t shard_count() const { return shard_count_; }

 private:
  size_t shard_count_ = 1;
};

}  // namespace engine
}  // namespace distperm

#endif  // DISTPERM_ENGINE_SHARD_ROUTER_H_
