// Runtime index registry tests: every registered name round-trips
// (create -> name() -> re-create), registry-built indexes answer
// exactly like directly constructed ones, spec parsing rejects every
// malformed form with a Status (never UB or death), and
// ShardedDatabase::BuildFromRegistry wires specs into the engine.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dataset/string_gen.h"
#include "dataset/vector_gen.h"
#include "engine/query_engine.h"
#include "engine/sharded_database.h"
#include "index/laesa.h"
#include "index/linear_scan.h"
#include "index/registry.h"
#include "index/vp_tree.h"
#include "metric/lp.h"
#include "metric/string_metrics.h"
#include "util/rng.h"

namespace distperm {
namespace index {
namespace {

using metric::Vector;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

TEST(Registry, RegistersTheSevenStructures) {
  const auto names = Registry<Vector>::Global().Names();
  for (const char* required :
       {"linear-scan", "aesa", "iaesa", "laesa", "vp-tree", "gh-tree",
        "distperm", "distperm-prefix"}) {
    EXPECT_TRUE(Registry<Vector>::Global().Has(required)) << required;
  }
  EXPECT_GE(names.size(), 8u);
}

// Every registered name must build with defaults, report a name() that
// is itself a valid spec, and re-create under that name.
TEST(Registry, EveryNameRoundTrips) {
  util::Rng data_rng(31);
  auto data = dataset::UniformCube(150, 3, &data_rng);
  auto& registry = Registry<Vector>::Global();
  for (const std::string& name : registry.Names()) {
    util::Rng rng(900);
    auto first = registry.Create(name, data, L2(), &rng);
    ASSERT_TRUE(first.ok()) << name << ": " << first.status();
    const std::string reported = first.value()->name();
    util::Rng rng_again(900);
    auto second = registry.Create(reported, data, L2(), &rng_again);
    ASSERT_TRUE(second.ok())
        << name << " -> name() '" << reported << "': " << second.status();
    EXPECT_EQ(second.value()->name(), reported) << name;
    // Round-tripped indexes answer queries.
    Vector query = {0.5, 0.5, 0.5};
    auto response = second.value()->Search(
        SearchRequest<Vector>::Knn(query, 3));
    EXPECT_TRUE(response.status.ok()) << reported;
    EXPECT_EQ(response.results.size(), 3u) << reported;
  }
}

// A registry-built index is the same object a direct constructor call
// builds: same RNG stream in, bit-identical answers out.
TEST(Registry, CreateMatchesDirectConstruction) {
  util::Rng data_rng(32);
  auto data = dataset::UniformCube(200, 3, &data_rng);
  auto& registry = Registry<Vector>::Global();

  util::Rng registry_rng(77);
  auto vp_registry = registry.Create("vp-tree", data, L2(), &registry_rng);
  ASSERT_TRUE(vp_registry.ok());
  util::Rng direct_rng(77);
  VpTreeIndex<Vector> vp_direct(data, L2(), &direct_rng);

  util::Rng laesa_registry_rng(78);
  auto laesa_registry =
      registry.Create("laesa:k=9", data, L2(), &laesa_registry_rng);
  ASSERT_TRUE(laesa_registry.ok());
  util::Rng laesa_direct_rng(78);
  LaesaIndex<Vector> laesa_direct(data, L2(), 9, &laesa_direct_rng);

  for (int q = 0; q < 10; ++q) {
    Vector query = {data_rng.NextDouble(), data_rng.NextDouble(),
                    data_rng.NextDouble()};
    EXPECT_EQ(vp_registry.value()->KnnQuery(query, 4),
              vp_direct.KnnQuery(query, 4));
    EXPECT_EQ(laesa_registry.value()->RangeQuery(query, 0.3),
              laesa_direct.RangeQuery(query, 0.3));
  }
  EXPECT_EQ(laesa_registry.value()->IndexBits(), laesa_direct.IndexBits());
}

TEST(Registry, OptionsSelectVariants) {
  util::Rng data_rng(33);
  auto data = dataset::UniformCube(120, 2, &data_rng);
  auto& registry = Registry<Vector>::Global();

  util::Rng r1(1);
  auto full = registry.Create("distperm:k=6,fraction=0.5", data, L2(), &r1);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value()->name(), "distperm");

  util::Rng r2(2);
  auto prefix =
      registry.Create("distperm:k=6,prefix=3", data, L2(), &r2);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix.value()->name(), "distperm-prefix");

  util::Rng r3(3);
  auto prefix_name = registry.Create("distperm-prefix", data, L2(), &r3);
  ASSERT_TRUE(prefix_name.ok());
  EXPECT_EQ(prefix_name.value()->name(), "distperm-prefix");
}

TEST(Registry, UnknownNameIsNotFound) {
  util::Rng rng(34);
  auto data = dataset::UniformCube(30, 2, &rng);
  auto result =
      Registry<Vector>::Global().Create("kd-tree", data, L2(), &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
  // The message lists what is registered, so a typo is self-diagnosing.
  EXPECT_NE(result.status().message().find("linear-scan"),
            std::string::npos)
      << result.status();
}

TEST(Registry, MalformedSpecsAreInvalidArgument) {
  util::Rng data_rng(35);
  auto data = dataset::UniformCube(40, 2, &data_rng);
  auto& registry = Registry<Vector>::Global();
  const char* malformed[] = {
      "",                      // empty name
      ":k=3",                  // empty name with options
      "laesa:",                // dangling colon
      "laesa:k",               // not key=value
      "laesa:k=",              // empty value
      "laesa:=4",              // empty key
      "laesa:k=4,",            // trailing comma
      "laesa:k=abc",           // non-numeric
      "laesa:k=-3",            // negative count
      "laesa:k=4,k=5",         // duplicate key
      "laesa:pivots=4",        // unknown option key
      "LAESA",                 // invalid name character
      "laesa:K=4",             // invalid key character
      "distperm:fraction=0",   // fraction out of (0, 1]
      "distperm:fraction=1.5", // fraction out of (0, 1]
      "distperm:fraction=x",   // unparseable double
      "distperm:k=0",          // zero sites
      "distperm:k=25",         // above the rank-codec limit (20)
      "distperm:k=6,prefix=6", // prefix must be < k
      "distperm-prefix:k=6,prefix=0",  // prefix must be >= 1
      "iaesa:k=0",
      "linear-scan:k=3",       // option on an option-free index
  };
  for (const char* spec : malformed) {
    util::Rng rng(36);
    auto result = registry.Create(spec, data, L2(), &rng);
    ASSERT_FALSE(result.ok()) << "'" << spec << "' unexpectedly built";
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument)
        << "'" << spec << "': " << result.status();
  }
}

TEST(Registry, EmptyAndTinyDatabases) {
  auto& registry = Registry<Vector>::Global();
  std::vector<Vector> empty;
  util::Rng rng(37);
  // Structure-free indexes build over nothing and answer with nothing.
  for (const char* spec : {"linear-scan", "aesa", "vp-tree", "gh-tree",
                           "laesa"}) {
    util::Rng build_rng(38);
    auto built = registry.Create(spec, empty, L2(), &build_rng);
    ASSERT_TRUE(built.ok()) << spec << ": " << built.status();
    auto response =
        built.value()->Search(SearchRequest<Vector>::Knn({0.5, 0.5}, 3));
    EXPECT_TRUE(response.status.ok()) << spec;
    EXPECT_TRUE(response.results.empty()) << spec;
  }
  // Site-based indexes cannot choose sites from an empty database.
  for (const char* spec : {"distperm", "iaesa", "distperm-prefix"}) {
    util::Rng build_rng(39);
    auto built = registry.Create(spec, empty, L2(), &build_rng);
    ASSERT_FALSE(built.ok()) << spec;
    EXPECT_EQ(built.status().code(), util::StatusCode::kInvalidArgument);
  }
  // Counts clamp to tiny databases instead of CHECK-failing.
  std::vector<Vector> three = {{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.9}};
  for (const char* spec :
       {"laesa:k=8", "distperm:k=16,fraction=1.0", "iaesa:k=12"}) {
    util::Rng build_rng(40);
    auto built = registry.Create(spec, three, L2(), &build_rng);
    ASSERT_TRUE(built.ok()) << spec << ": " << built.status();
    auto response = built.value()->Search(
        SearchRequest<Vector>::Range({0.5, 0.5}, 10.0));
    EXPECT_TRUE(response.status.ok());
    EXPECT_EQ(response.results.size(), 3u) << spec;
  }
  // Explicit prefixes valid for the requested k also clamp with the
  // sites on small shards instead of erroring.
  for (const char* spec :
       {"distperm:k=8,prefix=4", "distperm-prefix:k=8,prefix=5"}) {
    util::Rng build_rng(41);
    auto built = registry.Create(spec, three, L2(), &build_rng);
    ASSERT_TRUE(built.ok()) << spec << ": " << built.status();
  }
  auto tiny_shards = engine::ShardedDatabase<Vector>::BuildFromRegistry(
      dataset::UniformCube(6, 2, &rng), L2(), 3, "distperm:k=8,prefix=4",
      9);
  EXPECT_TRUE(tiny_shards.ok()) << tiny_shards.status();
}

// The registry is point-type generic: the same specs build indexes
// over strings under Levenshtein.
TEST(Registry, WorksOverStringSpaces) {
  util::Rng rng(41);
  auto words = dataset::DnaSequences(80, 4, 6, 12, 0.1, &rng);
  metric::Metric<std::string> lev((metric::LevenshteinMetric()));
  LinearScanIndex<std::string> reference(words, lev);
  auto& registry = Registry<std::string>::Global();
  for (const char* spec : {"vp-tree", "laesa:k=5", "gh-tree", "aesa"}) {
    util::Rng build_rng(42);
    auto built = registry.Create(spec, words, lev, &build_rng);
    ASSERT_TRUE(built.ok()) << spec << ": " << built.status();
    for (int q = 0; q < 5; ++q) {
      const std::string& query = words[rng.NextBounded(words.size())];
      EXPECT_EQ(built.value()->KnnQuery(query, 4),
                reference.KnnQuery(query, 4))
          << spec;
    }
  }
}

// BuildFromRegistry: spec-selected sharded databases serve through the
// engine with exactly the unsharded linear-scan answers.
TEST(Registry, ShardedDatabaseBuildFromRegistry) {
  util::Rng rng(43);
  auto data = dataset::UniformCube(260, 3, &rng);
  std::vector<engine::QuerySpec<Vector>> batch;
  for (int q = 0; q < 8; ++q) {
    Vector point = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    batch.push_back(q % 2 == 0
                        ? engine::QuerySpec<Vector>::Knn(point, 6)
                        : engine::QuerySpec<Vector>::Range(point, 0.3));
  }
  LinearScanIndex<Vector> reference(data, L2());
  std::vector<std::vector<SearchResult>> truth;
  for (const auto& spec : batch) {
    truth.push_back(spec.mode == SearchMode::kKnn
                        ? reference.KnnQuery(spec.point, spec.k)
                        : reference.RangeQuery(spec.point, spec.radius));
  }

  for (const char* spec : {"linear-scan", "vp-tree", "laesa:k=6"}) {
    for (size_t shards : {1u, 3u, 5u}) {
      auto db = engine::ShardedDatabase<Vector>::BuildFromRegistry(
          data, L2(), shards, spec, 500);
      ASSERT_TRUE(db.ok()) << spec << ": " << db.status();
      EXPECT_EQ(db.value().shard_count(), shards);
      engine::QueryEngine<Vector> engine(&db.value(), 3);
      auto out = engine.RunBatch(batch);
      EXPECT_TRUE(out.all_ok());
      for (size_t q = 0; q < batch.size(); ++q) {
        EXPECT_EQ(out.results[q], truth[q])
            << spec << " shards=" << shards << " query=" << q;
      }
    }
  }

  // Determinism: the same (data, spec, shards, seed) builds a database
  // that answers identically.
  auto a = engine::ShardedDatabase<Vector>::BuildFromRegistry(
      data, L2(), 4, "vp-tree", 7);
  auto b = engine::ShardedDatabase<Vector>::BuildFromRegistry(
      data, L2(), 4, "vp-tree", 7);
  ASSERT_TRUE(a.ok() && b.ok());
  engine::QueryEngine<Vector> ea(&a.value(), 2), eb(&b.value(), 2);
  auto ra = ea.RunBatch(batch), rb = eb.RunBatch(batch);
  EXPECT_EQ(ra.results, rb.results);
  EXPECT_EQ(ra.per_query_distance_computations,
            rb.per_query_distance_computations);

  // Errors propagate with the failing shard named.
  auto bad = engine::ShardedDatabase<Vector>::BuildFromRegistry(
      data, L2(), 2, "laesa:k=oops", 1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("shard 0"), std::string::npos);

  auto zero_shards = engine::ShardedDatabase<Vector>::BuildFromRegistry(
      data, L2(), 0, "linear-scan", 1);
  ASSERT_FALSE(zero_shards.ok());
}

}  // namespace
}  // namespace index
}  // namespace distperm
