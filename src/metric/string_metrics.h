// String metrics: Levenshtein edit distance, Hamming distance, and the
// paper's prefix distance (Definition 3, a tree metric on strings).

#ifndef DISTPERM_METRIC_STRING_METRICS_H_
#define DISTPERM_METRIC_STRING_METRICS_H_

#include <cstdint>
#include <string>

namespace distperm {
namespace metric {

/// Levenshtein (unit-cost insert/delete/substitute) edit distance.
int LevenshteinDistance(const std::string& a, const std::string& b);

/// Levenshtein distance with early exit: returns any value > `cutoff`
/// as soon as the true distance is known to exceed `cutoff` (banded DP,
/// O(cutoff * min(|a|, |b|)) time).  Exact when the result is <= cutoff.
int LevenshteinDistanceBounded(const std::string& a, const std::string& b,
                               int cutoff);

/// Hamming distance between equal-length strings (fatal on length
/// mismatch).
int HammingDistance(const std::string& a, const std::string& b);

/// Prefix distance (paper Definition 3): |a| + |b| - 2 * LCP(a, b), where
/// edits add/remove one letter at the right end.  This is the path metric
/// of the trie containing the strings, hence a tree metric.
int PrefixDistance(const std::string& a, const std::string& b);

/// Length of the longest common prefix of two strings.
size_t LongestCommonPrefix(const std::string& a, const std::string& b);

/// Metric wrapper for Levenshtein distance.
class LevenshteinMetric {
 public:
  double operator()(const std::string& a, const std::string& b) const {
    return static_cast<double>(LevenshteinDistance(a, b));
  }
  std::string name() const { return "levenshtein"; }
};

/// Metric wrapper for Hamming distance.
class HammingMetric {
 public:
  double operator()(const std::string& a, const std::string& b) const {
    return static_cast<double>(HammingDistance(a, b));
  }
  std::string name() const { return "hamming"; }
};

/// Metric wrapper for the prefix (tree) distance.
class PrefixMetric {
 public:
  double operator()(const std::string& a, const std::string& b) const {
    return static_cast<double>(PrefixDistance(a, b));
  }
  std::string name() const { return "prefix"; }
};

}  // namespace metric
}  // namespace distperm

#endif  // DISTPERM_METRIC_STRING_METRICS_H_
