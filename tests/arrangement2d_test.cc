#include "geometry/arrangement2d.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/euclidean_count.h"
#include "util/rng.h"

namespace distperm {
namespace geometry {
namespace {

TEST(Line, CanonicalizationDeduplicates) {
  Line a{2, 4, 6};
  Line b{1, 2, 3};
  Line c{-1, -2, -3};
  a.Canonicalize();
  b.Canonicalize();
  c.Canonicalize();
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(Line, VerticalLineSignFix) {
  Line a{0, -3, 6};
  a.Canonicalize();
  EXPECT_EQ(a, (Line{0, 1, -2}));
}

TEST(Arrangement, EmptyHasOneRegion) {
  LineArrangement arrangement;
  EXPECT_EQ(arrangement.CountRegions(), 1u);
  EXPECT_EQ(arrangement.CountVertices(), 0u);
}

TEST(Arrangement, SingleLineTwoRegions) {
  LineArrangement arrangement;
  arrangement.AddLine(1, 0, 0);
  EXPECT_EQ(arrangement.CountRegions(), 2u);
}

TEST(Arrangement, ParallelLinesStack) {
  LineArrangement arrangement;
  for (int c = 0; c < 5; ++c) arrangement.AddLine(1, 0, c);
  EXPECT_EQ(arrangement.line_count(), 5u);
  EXPECT_EQ(arrangement.CountVertices(), 0u);
  EXPECT_EQ(arrangement.CountRegions(), 6u);
}

TEST(Arrangement, DuplicateLinesIgnored) {
  LineArrangement arrangement;
  arrangement.AddLine(1, 0, 0);
  arrangement.AddLine(2, 0, 0);
  arrangement.AddLine(-3, 0, 0);
  EXPECT_EQ(arrangement.line_count(), 1u);
  EXPECT_EQ(arrangement.CountRegions(), 2u);
}

TEST(Arrangement, GeneralPositionMatchesLazyCaterer) {
  // m lines in general position: 1 + m + C(m,2) regions.
  LineArrangement arrangement;
  // Slopes 1..5 with scattered intercepts: no two parallel, no three
  // concurrent.
  arrangement.AddLine(1, -1, 0);    // y = x
  arrangement.AddLine(2, -1, 1);    // y = 2x - 1
  arrangement.AddLine(3, -1, 5);    // y = 3x - 5
  arrangement.AddLine(4, -1, 17);   // y = 4x - 17
  arrangement.AddLine(5, -1, 40);   // y = 5x - 40
  EXPECT_EQ(arrangement.CountVertices(), 10u);
  EXPECT_EQ(arrangement.CountRegions(), 1u + 5u + 10u);
}

TEST(Arrangement, ThreeConcurrentLines) {
  LineArrangement arrangement;
  arrangement.AddLine(1, 0, 0);   // x = 0
  arrangement.AddLine(0, 1, 0);   // y = 0
  arrangement.AddLine(1, -1, 0);  // y = x
  EXPECT_EQ(arrangement.CountVertices(), 1u);
  EXPECT_EQ(arrangement.CountRegions(), 6u);
}

TEST(Arrangement, PencilOfLines) {
  // m concurrent lines: 2m regions.
  LineArrangement arrangement;
  arrangement.AddLine(1, 0, 0);
  arrangement.AddLine(0, 1, 0);
  arrangement.AddLine(1, 1, 0);
  arrangement.AddLine(1, -1, 0);
  arrangement.AddLine(2, 1, 0);
  EXPECT_EQ(arrangement.CountRegions(), 10u);
}

TEST(EuclideanBisectors, TriangleGivesSixCells) {
  // Any non-degenerate triangle: three bisectors concurrent at the
  // circumcentre, 6 cells = N_{2,2}(3) = 3!.
  LineArrangement arrangement =
      EuclideanBisectorArrangement({{0, 0}, {4, 0}, {1, 3}});
  EXPECT_EQ(arrangement.CountRegions(), 6u);
}

TEST(EuclideanBisectors, CollinearSitesDegenerate) {
  // Collinear sites: parallel bisectors, only C(k,2)+1 cells.
  LineArrangement arrangement =
      EuclideanBisectorArrangement({{0, 0}, {2, 0}, {5, 0}});
  EXPECT_EQ(arrangement.CountRegions(), 4u);
}

TEST(EuclideanBisectors, SquareIsDegenerate) {
  // The unit square: bisector pairs coincide and all pass through the
  // centre; 4 distinct lines, one 4-fold point, 8 cells — well below the
  // generic 18.  Exercises duplicate-line removal and multiplicities.
  LineArrangement arrangement =
      EuclideanBisectorArrangement({{0, 0}, {2, 0}, {0, 2}, {2, 2}});
  EXPECT_EQ(arrangement.line_count(), 4u);
  EXPECT_EQ(arrangement.CountVertices(), 1u);
  EXPECT_EQ(arrangement.CountRegions(), 8u);
}

TEST(EuclideanBisectors, GenericFourSitesGiveEighteenCells) {
  // The paper's Fig. 3: four generic sites produce exactly 18 cells.
  LineArrangement arrangement =
      EuclideanBisectorArrangement({{0, 0}, {7, 1}, {3, 6}, {9, 8}});
  EXPECT_EQ(arrangement.CountRegions(), 18u);
}

// The headline geometric validation: for random integer sites in general
// position, the exact bisector arrangement realises exactly N_{2,2}(k)
// cells — Theorem 7 checked against real geometry.
class BisectorCellCountTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BisectorCellCountTest, MatchesTheorem7) {
  auto [k, seed] = GetParam();
  util::Rng rng(7000 + static_cast<uint64_t>(seed) * 131 + k);
  std::vector<IntPoint2> sites;
  while (sites.size() < static_cast<size_t>(k)) {
    IntPoint2 site = {rng.NextInt(-100000, 100000),
                      rng.NextInt(-100000, 100000)};
    if (std::find(sites.begin(), sites.end(), site) == sites.end()) {
      sites.push_back(site);
    }
  }
  LineArrangement arrangement = EuclideanBisectorArrangement(sites);
  core::EuclideanCounter counter;
  EXPECT_EQ(arrangement.CountRegions(), counter.Count64(2, k))
      << "k=" << k << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BisectorCellCountTest,
                         ::testing::Combine(::testing::Values(2, 3, 4, 5, 6,
                                                              7),
                                            ::testing::Range(0, 5)));

}  // namespace
}  // namespace geometry
}  // namespace distperm
