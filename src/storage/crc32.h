// CRC32C (Castagnoli) checksums for the on-disk formats.
//
// Every WAL frame and snapshot section carries a CRC32C so recovery can
// tell a torn or corrupted tail from valid data.  The implementation
// picks the SSE4.2 CRC32 instruction at runtime when the host has it
// (~an order of magnitude faster than table lookup, which matters when
// Open() checksums a multi-megabyte snapshot) and falls back to a
// slicing-by-8 table everywhere else.  Both paths produce identical
// values — the polynomial is fixed by the format, not the host.

#ifndef DISTPERM_STORAGE_CRC32_H_
#define DISTPERM_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace distperm {
namespace storage {

/// CRC32C of `size` bytes at `data`, seeded with `seed` (pass a previous
/// result to checksum data arriving in pieces; 0 for a fresh checksum).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(const std::string& data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace storage
}  // namespace distperm

#endif  // DISTPERM_STORAGE_CRC32_H_
