// Arbitrary-precision unsigned integers.
//
// The exact permutation counts in the paper grow like k^(2d): already at
// d = 10, k = 30 the Euclidean count N_{d,2}(k) overflows 64 bits, and the
// Theorem 9 bounds contain factors like 2^(2d^2).  BigUint keeps every
// count exact.  The representation is a little-endian vector of 32-bit
// limbs with no leading zero limb (zero is an empty vector).  Only the
// operations the library needs are provided; this is not a general bignum
// package.

#ifndef DISTPERM_UTIL_BIG_UINT_H_
#define DISTPERM_UTIL_BIG_UINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace distperm {
namespace util {

/// Arbitrary-precision unsigned integer.
class BigUint {
 public:
  /// Constructs zero.
  BigUint() = default;
  /// Constructs from a 64-bit value.
  BigUint(uint64_t value);  // NOLINT: implicit by design

  /// Parses a decimal string.  Fails on empty input or non-digit chars.
  static Result<BigUint> FromDecimalString(const std::string& text);

  /// True iff the value is zero.
  bool IsZero() const { return limbs_.empty(); }

  /// True iff the value fits in 64 bits.
  bool FitsUint64() const { return limbs_.size() <= 2; }

  /// The low 64 bits of the value.  Fatal if !FitsUint64().
  uint64_t ToUint64() const;

  /// Approximate conversion to double (may overflow to +inf).
  double ToDouble() const;

  /// Number of bits in the binary representation (0 for zero).
  size_t BitLength() const;

  /// Decimal rendering.
  std::string ToString() const;

  BigUint& operator+=(const BigUint& other);
  BigUint& operator-=(const BigUint& other);  ///< Fatal on underflow.
  BigUint& operator*=(const BigUint& other);

  friend BigUint operator+(BigUint a, const BigUint& b) { return a += b; }
  friend BigUint operator-(BigUint a, const BigUint& b) { return a -= b; }
  friend BigUint operator*(BigUint a, const BigUint& b) { return a *= b; }

  /// Multiplies by a small value in place.
  BigUint& MulSmall(uint32_t factor);
  /// Adds a small value in place.
  BigUint& AddSmall(uint32_t value);
  /// Divides by a small nonzero value in place; returns the remainder.
  uint32_t DivSmall(uint32_t divisor);

  /// Three-way comparison: -1, 0, or +1.
  int Compare(const BigUint& other) const;

  friend bool operator==(const BigUint& a, const BigUint& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const BigUint& a, const BigUint& b) {
    return a.Compare(b) != 0;
  }
  friend bool operator<(const BigUint& a, const BigUint& b) {
    return a.Compare(b) < 0;
  }
  friend bool operator<=(const BigUint& a, const BigUint& b) {
    return a.Compare(b) <= 0;
  }
  friend bool operator>(const BigUint& a, const BigUint& b) {
    return a.Compare(b) > 0;
  }
  friend bool operator>=(const BigUint& a, const BigUint& b) {
    return a.Compare(b) >= 0;
  }

  /// Returns base**exponent.
  static BigUint Pow(const BigUint& base, uint64_t exponent);
  /// Returns n! (0! = 1).
  static BigUint Factorial(uint64_t n);
  /// Returns the binomial coefficient C(n, k) (0 when k > n).
  static BigUint Binomial(uint64_t n, uint64_t k);

 private:
  void Trim();

  std::vector<uint32_t> limbs_;  // little-endian, no leading zero limb
};

std::ostream& operator<<(std::ostream& os, const BigUint& value);

}  // namespace util
}  // namespace distperm

#endif  // DISTPERM_UTIL_BIG_UINT_H_
