#include "metric/kernels.h"

#include <cmath>

namespace distperm {
namespace metric {

// All four kernels share the same shape: a 4-lane unrolled body with
// independent accumulators (no cross-iteration dependence, so GCC/Clang
// emit packed SIMD at -O2/-O3 without -ffast-math), then a sequential
// tail for dim % 4.

double L1Raw(const double* __restrict a, const double* __restrict b,
             size_t dim) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += std::fabs(a[i] - b[i]);
    acc1 += std::fabs(a[i + 1] - b[i + 1]);
    acc2 += std::fabs(a[i + 2] - b[i + 2]);
    acc3 += std::fabs(a[i + 3] - b[i + 3]);
  }
  double sum = (acc0 + acc1) + (acc2 + acc3);
  for (; i < dim; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

double L2sqRaw(const double* __restrict a, const double* __restrict b,
               size_t dim) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  double sum = (acc0 + acc1) + (acc2 + acc3);
  for (; i < dim; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

// Max via comparison (the seed's `if (diff > best)` form, which lowers
// to maxsd/maxpd) rather than std::fmax, whose NaN-handling contract
// forces a libm call under default FP rules.
double LInfRaw(const double* __restrict a, const double* __restrict b,
               size_t dim) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const double d0 = std::fabs(a[i] - b[i]);
    const double d1 = std::fabs(a[i + 1] - b[i + 1]);
    const double d2 = std::fabs(a[i + 2] - b[i + 2]);
    const double d3 = std::fabs(a[i + 3] - b[i + 3]);
    acc0 = d0 > acc0 ? d0 : acc0;
    acc1 = d1 > acc1 ? d1 : acc1;
    acc2 = d2 > acc2 ? d2 : acc2;
    acc3 = d3 > acc3 ? d3 : acc3;
  }
  double best = acc0 > acc1 ? acc0 : acc1;
  best = acc2 > best ? acc2 : best;
  best = acc3 > best ? acc3 : best;
  for (; i < dim; ++i) {
    const double d = std::fabs(a[i] - b[i]);
    best = d > best ? d : best;
  }
  return best;
}

double DotRaw(const double* __restrict a, const double* __restrict b,
              size_t dim) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  double sum = (acc0 + acc1) + (acc2 + acc3);
  for (; i < dim; ++i) sum += a[i] * b[i];
  return sum;
}

void L1Block(const double* __restrict query, const double* __restrict rows,
             size_t row_count, size_t stride, size_t dim,
             double* __restrict out) {
  for (size_t r = 0; r < row_count; ++r) {
    out[r] = L1Raw(query, rows + r * stride, dim);
  }
}

void L2sqBlock(const double* __restrict query, const double* __restrict rows,
               size_t row_count, size_t stride, size_t dim,
               double* __restrict out) {
  for (size_t r = 0; r < row_count; ++r) {
    out[r] = L2sqRaw(query, rows + r * stride, dim);
  }
}

void LInfBlock(const double* __restrict query, const double* __restrict rows,
               size_t row_count, size_t stride, size_t dim,
               double* __restrict out) {
  for (size_t r = 0; r < row_count; ++r) {
    out[r] = LInfRaw(query, rows + r * stride, dim);
  }
}

void DotBlock(const double* __restrict query, const double* __restrict rows,
              size_t row_count, size_t stride, size_t dim,
              double* __restrict out) {
  for (size_t r = 0; r < row_count; ++r) {
    out[r] = DotRaw(query, rows + r * stride, dim);
  }
}

double MinRaw(const double* __restrict x, size_t n) {
  if (n == 0) return 0.0;
  double acc0 = x[0], acc1 = x[0], acc2 = x[0], acc3 = x[0];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = x[i] < acc0 ? x[i] : acc0;
    acc1 = x[i + 1] < acc1 ? x[i + 1] : acc1;
    acc2 = x[i + 2] < acc2 ? x[i + 2] : acc2;
    acc3 = x[i + 3] < acc3 ? x[i + 3] : acc3;
  }
  double best = acc0 < acc1 ? acc0 : acc1;
  best = acc2 < best ? acc2 : best;
  best = acc3 < best ? acc3 : best;
  for (; i < n; ++i) best = x[i] < best ? x[i] : best;
  return best;
}

}  // namespace metric
}  // namespace distperm
