// On-disk form of an engine::Generation and the WAL record codec —
// the glue between the storage layer's containers and the engine's
// types.
//
// A generation snapshot is a storage::SnapshotWriter container with:
//
//   meta   format="generation.v1", point_kind, spec, seed, shard_count,
//          generation, point_count, index_state ("distperm"|"rebuild"),
//          shard_sizes/shard_epochs (comma-joined per-shard layout and
//          rebuild epochs; absent in pre-incremental snapshots, which
//          imply the uniform split), and for vectors dim/stride
//   sections
//     "vectors"   (vector stores)  the row-major FlatVectorStore block,
//                 64-byte-aligned rows, dropped into the file verbatim
//                 so the mmap'd bytes are exactly the in-memory layout
//     "points"    (string stores)  concatenated PointCodec encodings
//     "shard<N>"  (index_state=distperm) the N-th shard's exported
//                 DistPermIndex state, bit-packed permutations included
//
// Restore is bit-identical either way: a "distperm" snapshot feeds the
// exported state straight back through DistPermIndex's restore
// constructor (no build-time distance evaluations — this is what makes
// Open() an order of magnitude cheaper than a cold build), and a
// "rebuild" snapshot replays the deterministic registry build with the
// recorded (spec, seed, shard_count), which reproduces the original
// shards exactly by the engine's determinism guarantee.
//
// The snapshot records the identity of the store it belongs to (spec,
// seed, shard count, point kind); ReadGenerationSnapshot refuses a
// mismatch instead of silently serving an index built with different
// parameters.

#ifndef DISTPERM_ENGINE_GENERATION_STORE_H_
#define DISTPERM_ENGINE_GENERATION_STORE_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dataset/flat_vector_store.h"
#include "engine/generation.h"
#include "engine/sharded_database.h"
#include "index/distperm_index.h"
#include "metric/metric.h"
#include "storage/coding.h"
#include "storage/env.h"
#include "storage/point_codec.h"
#include "storage/snapshot.h"
#include "util/status.h"

namespace distperm {
namespace engine {

// ------------------------------------------------------- store file names

/// "snapshot-<generation>.snap" (zero-padded so lexicographic order is
/// numeric order).
inline std::string SnapshotFileName(uint64_t generation) {
  char name[32];
  std::snprintf(name, sizeof(name), "snapshot-%08llu.snap",
                static_cast<unsigned long long>(generation));
  return name;
}

/// "wal-<generation>.log": the log of writes on top of that generation.
inline std::string WalFileName(uint64_t generation) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08llu.log",
                static_cast<unsigned long long>(generation));
  return name;
}

/// Parses a store file name; returns true and fills (is_snapshot,
/// generation) for the two forms above, false for anything else
/// (including .tmp leftovers, which recovery deletes).
inline bool ParseStoreFileName(const std::string& name, bool* is_snapshot,
                               uint64_t* generation) {
  const auto parse = [&](const std::string& prefix,
                         const std::string& suffix) -> bool {
    if (name.size() <= prefix.size() + suffix.size()) return false;
    if (name.compare(0, prefix.size(), prefix) != 0) return false;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      return false;
    }
    uint64_t value = 0;
    for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') return false;
      value = value * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    *generation = value;
    return true;
  };
  if (parse("snapshot-", ".snap")) {
    *is_snapshot = true;
    return true;
  }
  if (parse("wal-", ".log")) {
    *is_snapshot = false;
    return true;
  }
  return false;
}

// --------------------------------------------------------- WAL record codec

/// One decoded live-store WAL operation.  Every record carries the
/// owning shard under the generation it was logged against — the tag
/// that lets incremental compaction fold only dirty shards, and lets
/// recovery and replicas reproduce the primary's routing without
/// re-deriving it.
template <typename P>
struct WalOp {
  bool is_remove = false;
  uint32_t shard = 0;  ///< Owning shard under the logged-against generation.
  uint64_t id = 0;     ///< Target id; meaningful for removes only.
  P point{};           ///< Inserted point; meaningful for inserts only.
};

namespace internal {
inline constexpr uint8_t kWalOpInsert = 1;
inline constexpr uint8_t kWalOpRemove = 2;
}  // namespace internal

template <typename P>
std::string EncodeWalInsert(const P& point, uint32_t shard) {
  std::string payload;
  payload.push_back(static_cast<char>(internal::kWalOpInsert));
  storage::PutFixed32(&payload, shard);
  storage::PointCodec<P>::Encode(&payload, point);
  return payload;
}

template <typename P>
std::string EncodeWalRemove(uint64_t id, uint32_t shard) {
  std::string payload;
  payload.push_back(static_cast<char>(internal::kWalOpRemove));
  storage::PutFixed32(&payload, shard);
  storage::PutFixed64(&payload, id);
  return payload;
}

template <typename P>
util::Result<WalOp<P>> DecodeWalRecord(const std::string& payload) {
  if (payload.size() < 5) {
    return util::Status::IoError("wal record: truncated payload");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(payload.data());
  WalOp<P> op;
  op.shard = storage::GetFixed32(p + 1);
  if (p[0] == internal::kWalOpInsert) {
    size_t consumed = 0;
    if (!storage::PointCodec<P>::Decode(p + 5, payload.size() - 5, &consumed,
                                        &op.point) ||
        consumed != payload.size() - 5) {
      return util::Status::IoError("wal record: malformed insert payload");
    }
    return op;
  }
  if (p[0] == internal::kWalOpRemove) {
    if (payload.size() != 13) {
      return util::Status::IoError("wal record: malformed remove payload");
    }
    op.is_remove = true;
    op.id = storage::GetFixed64(p + 5);
    return op;
  }
  return util::Status::IoError("wal record: unknown op byte " +
                               std::to_string(p[0]));
}

// ------------------------------------------------------ generation snapshot

namespace internal {

/// Bounds-checked reader over a snapshot section.
class SectionCursor {
 public:
  SectionCursor(const uint8_t* data, uint64_t size)
      : p_(data), end_(data + size) {}

  bool ReadFixed32(uint32_t* out) {
    if (remaining() < 4) return false;
    *out = storage::GetFixed32(p_);
    p_ += 4;
    return true;
  }
  bool ReadFixed64(uint64_t* out) {
    if (remaining() < 8) return false;
    *out = storage::GetFixed64(p_);
    p_ += 8;
    return true;
  }
  bool ReadDouble(double* out) {
    if (remaining() < 8) return false;
    *out = storage::GetDouble(p_);
    p_ += 8;
    return true;
  }
  bool ReadBytes(std::vector<uint8_t>* out, uint64_t size) {
    if (remaining() < size) return false;
    out->assign(p_, p_ + size);
    p_ += size;
    return true;
  }
  template <typename P>
  bool ReadPoint(P* out) {
    size_t consumed = 0;
    if (!storage::PointCodec<P>::Decode(p_, remaining(), &consumed, out)) {
      return false;
    }
    p_ += consumed;
    return true;
  }
  uint64_t remaining() const { return static_cast<uint64_t>(end_ - p_); }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

/// Serialized DistPermIndex::PackedState (sites via PointCodec, bulk
/// byte arrays length-prefixed).
template <typename P>
std::string EncodeDistPermState(
    const typename index::DistPermIndex<P>::PackedState& state) {
  std::string out;
  storage::PutFixed32(&out, static_cast<uint32_t>(state.sites.size()));
  for (const P& site : state.sites) {
    storage::PointCodec<P>::Encode(&out, site);
  }
  storage::PutFixed64(&out, state.prefix);
  storage::PutDouble(&out, state.fraction);
  storage::PutFixed64(&out, state.inv_ranks.size());
  out.append(reinterpret_cast<const char*>(state.inv_ranks.data()),
             state.inv_ranks.size());
  storage::PutFixed64(&out, state.packed.size());
  out.append(reinterpret_cast<const char*>(state.packed.data()),
             state.packed.size());
  storage::PutFixed64(&out, state.packed_bits);
  return out;
}

template <typename P>
bool DecodeDistPermState(const uint8_t* data, uint64_t size,
                         typename index::DistPermIndex<P>::PackedState* out) {
  SectionCursor cursor(data, size);
  uint32_t site_count = 0;
  if (!cursor.ReadFixed32(&site_count)) return false;
  out->sites.resize(site_count);
  for (uint32_t i = 0; i < site_count; ++i) {
    if (!cursor.template ReadPoint<P>(&out->sites[i])) return false;
  }
  uint64_t prefix = 0, inv_size = 0, packed_size = 0;
  if (!cursor.ReadFixed64(&prefix)) return false;
  out->prefix = prefix;
  if (!cursor.ReadDouble(&out->fraction)) return false;
  if (!cursor.ReadFixed64(&inv_size)) return false;
  if (!cursor.ReadBytes(&out->inv_ranks, inv_size)) return false;
  if (!cursor.ReadFixed64(&packed_size)) return false;
  if (!cursor.ReadBytes(&out->packed, packed_size)) return false;
  if (!cursor.ReadFixed64(&out->packed_bits)) return false;
  return cursor.remaining() == 0;
}

/// Adds the point payload of a generation to the snapshot.  The vector
/// form packs the points into a FlatVectorStore and drops its aligned
/// block in verbatim; the returned holder must outlive
/// SnapshotWriter::Write.
inline std::shared_ptr<void> AddPointSections(
    storage::SnapshotWriter* writer, const std::vector<metric::Vector>& data) {
  auto store = std::make_shared<dataset::FlatVectorStore>(data);
  writer->SetMeta("dim", std::to_string(store->dim()));
  writer->SetMeta("stride", std::to_string(store->stride()));
  writer->AddSectionRef("vectors", store->data(), store->AllocatedBytes());
  return store;
}

inline std::shared_ptr<void> AddPointSections(
    storage::SnapshotWriter* writer, const std::vector<std::string>& data) {
  std::string encoded;
  for (const std::string& point : data) {
    storage::PointCodec<std::string>::Encode(&encoded, point);
  }
  writer->AddSection("points", std::move(encoded));
  return nullptr;
}

inline util::Result<std::vector<metric::Vector>> ReadPoints(
    const storage::SnapshotReader& reader, uint64_t count,
    const std::vector<metric::Vector>*) {
  std::vector<metric::Vector> points(count);
  if (count == 0) return points;
  auto dim_meta = reader.GetMeta("dim");
  if (!dim_meta.ok()) return dim_meta.status();
  auto stride_meta = reader.GetMeta("stride");
  if (!stride_meta.ok()) return stride_meta.status();
  const uint64_t dim = std::stoull(dim_meta.value());
  const uint64_t stride = std::stoull(stride_meta.value());
  auto section = reader.GetSection("vectors");
  if (!section.ok()) return section.status();
  if (stride < dim || section.value().size < count * stride * sizeof(double)) {
    return util::Status::IoError(
        "snapshot vectors section does not cover point_count x stride");
  }
  const double* rows = reinterpret_cast<const double*>(section.value().data);
  for (uint64_t i = 0; i < count; ++i) {
    // assign() writes each row once; resize()+memcpy would zero-fill
    // first and write the 100k-point restore path's bytes twice.
    const double* row = rows + i * stride;
    points[i].assign(row, row + dim);
  }
  return points;
}

inline util::Result<std::vector<std::string>> ReadPoints(
    const storage::SnapshotReader& reader, uint64_t count,
    const std::vector<std::string>*) {
  std::vector<std::string> points(count);
  auto section = reader.GetSection("points");
  if (!section.ok()) return section.status();
  SectionCursor cursor(section.value().data, section.value().size);
  for (uint64_t i = 0; i < count; ++i) {
    if (!cursor.ReadPoint(&points[i])) {
      return util::Status::IoError(
          "snapshot points section truncated at point " + std::to_string(i));
    }
  }
  return points;
}

inline std::string JoinUint64List(const std::vector<uint64_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += std::to_string(values[i]);
  }
  return out;
}

inline bool ParseUint64List(const std::string& text,
                            std::vector<uint64_t>* out) {
  out->clear();
  if (text.empty()) return false;
  uint64_t value = 0;
  bool have_digit = false;
  for (char c : text) {
    if (c == ',') {
      if (!have_digit) return false;
      out->push_back(value);
      value = 0;
      have_digit = false;
      continue;
    }
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
    have_digit = true;
  }
  if (!have_digit) return false;
  out->push_back(value);
  return true;
}

/// Moves `points` apart into slices of the recorded per-shard sizes —
/// the layout the snapshot was written with, which routed deltas made
/// non-uniform.
template <typename P>
std::vector<std::vector<P>> SlicesBySizes(std::vector<P> points,
                                          const std::vector<uint64_t>& sizes) {
  std::vector<std::vector<P>> slices;
  slices.reserve(sizes.size());
  size_t offset = 0;
  for (uint64_t size : sizes) {
    auto begin = points.begin() + static_cast<ptrdiff_t>(offset);
    slices.emplace_back(std::make_move_iterator(begin),
                        std::make_move_iterator(begin + size));
    offset += size;
  }
  return slices;
}

}  // namespace internal

/// Writes `generation` to `path`.  With `atomic` (the default) the
/// container goes through the tmp+rename protocol and lands published;
/// with atomic=false the bytes are written and fsynced directly at
/// `path` (a .tmp name by convention) and the caller publishes with
/// RenameFile + SyncDir once its ordering constraints allow — the
/// engine's WAL rotation must sync the next log before the snapshot
/// rename makes the new generation recoverable.  Captures the
/// per-shard DistPermIndex state when every shard is one; otherwise
/// records index_state="rebuild" and the reader replays the
/// deterministic registry build.
template <typename P>
util::Status WriteGenerationSnapshot(storage::Env* env,
                                     const std::string& path,
                                     const Generation<P>& generation,
                                     bool atomic = true) {
  storage::SnapshotWriter writer;
  writer.SetMeta("format", "generation.v1");
  writer.SetMeta("point_kind", storage::PointCodec<P>::kName);
  writer.SetMeta("spec", generation.index_spec());
  writer.SetMeta("seed", std::to_string(generation.seed()));
  writer.SetMeta("generation", std::to_string(generation.number()));
  writer.SetMeta("shard_count",
                 std::to_string(generation.database().shard_count()));
  writer.SetMeta("point_count", std::to_string(generation.size()));
  // Shard layout + rebuild epochs: routed deltas make shard sizes
  // non-uniform, and restore must slice the points exactly as they
  // were sliced when the snapshot's shards were built.  Epochs record
  // which generation last rebuilt each shard so recovery and replicas
  // agree with the primary's sharing decisions bit-for-bit.
  {
    const std::vector<size_t> sizes = generation.database().ShardSizes();
    writer.SetMeta("shard_sizes",
                   internal::JoinUint64List(std::vector<uint64_t>(
                       sizes.begin(), sizes.end())));
    writer.SetMeta("shard_epochs",
                   internal::JoinUint64List(generation.epochs()));
  }

  const std::vector<P> data = generation.CollectData();
  // Holder keeps the packed vector block alive until Write returns.
  std::shared_ptr<void> holder =
      internal::AddPointSections(&writer, data);

  const ShardedDatabase<P>& db = generation.database();
  std::vector<std::string> shard_states;
  bool all_distperm = true;
  for (size_t s = 0; s < db.shard_count(); ++s) {
    const auto* distperm =
        dynamic_cast<const index::DistPermIndex<P>*>(&db.shard(s));
    if (distperm == nullptr) {
      all_distperm = false;
      break;
    }
    shard_states.push_back(internal::EncodeDistPermState<P>(
        distperm->ExportPackedState()));
  }
  writer.SetMeta("index_state", all_distperm ? "distperm" : "rebuild");
  if (all_distperm) {
    for (size_t s = 0; s < shard_states.size(); ++s) {
      writer.AddSection("shard" + std::to_string(s),
                        std::move(shard_states[s]));
    }
  }
  return atomic ? writer.Write(env, path) : writer.WriteFile(env, path);
}

/// Loads the generation at `path`, validating it against the store's
/// identity.  Restores DistPermIndex shards from their exported state
/// when the snapshot carries it; rebuilds through the registry
/// otherwise.  Both paths yield shards bit-identical to the ones the
/// snapshot was written from.
template <typename P>
util::Result<std::shared_ptr<const Generation<P>>> ReadGenerationSnapshot(
    storage::Env* env, const std::string& path,
    const metric::Metric<P>& metric, size_t shard_count,
    const std::string& index_spec, uint64_t seed, size_t build_threads) {
  auto opened = storage::SnapshotReader::Open(env, path);
  if (!opened.ok()) return opened.status();
  const storage::SnapshotReader& reader = opened.value();

  const auto expect_meta = [&](const std::string& key,
                               const std::string& want) -> util::Status {
    auto got = reader.GetMeta(key);
    if (!got.ok()) return got.status();
    if (got.value() != want) {
      return util::Status::InvalidArgument(
          "snapshot " + path + ": " + key + " is '" + got.value() +
          "' but the store expects '" + want + "'");
    }
    return util::Status::OK();
  };
  DP_RETURN_IF_ERROR(expect_meta("format", "generation.v1"));
  DP_RETURN_IF_ERROR(
      expect_meta("point_kind", storage::PointCodec<P>::kName));
  DP_RETURN_IF_ERROR(expect_meta("spec", index_spec));
  DP_RETURN_IF_ERROR(expect_meta("seed", std::to_string(seed)));
  DP_RETURN_IF_ERROR(
      expect_meta("shard_count", std::to_string(shard_count)));

  auto generation_meta = reader.GetMeta("generation");
  if (!generation_meta.ok()) return generation_meta.status();
  const uint64_t number = std::stoull(generation_meta.value());
  auto count_meta = reader.GetMeta("point_count");
  if (!count_meta.ok()) return count_meta.status();
  const uint64_t point_count = std::stoull(count_meta.value());

  auto points =
      internal::ReadPoints(reader, point_count, static_cast<std::vector<P>*>(nullptr));
  if (!points.ok()) return points.status();

  // Shard layout: recorded explicitly since incremental compaction made
  // slices non-uniform.  Snapshots written before the layout meta
  // existed imply the uniform split (sizes differ by at most one).
  std::vector<uint64_t> shard_sizes;
  if (auto sizes_meta = reader.GetMeta("shard_sizes"); sizes_meta.ok()) {
    if (!internal::ParseUint64List(sizes_meta.value(), &shard_sizes) ||
        shard_sizes.size() != shard_count) {
      return util::Status::IoError("snapshot " + path +
                                   ": malformed shard_sizes meta");
    }
    uint64_t total = 0;
    for (uint64_t size : shard_sizes) total += size;
    if (total != point_count) {
      return util::Status::IoError(
          "snapshot " + path + ": shard_sizes do not sum to point_count");
    }
  } else {
    const uint64_t base = point_count / shard_count;
    const uint64_t extra = point_count % shard_count;
    for (size_t s = 0; s < shard_count; ++s) {
      shard_sizes.push_back(base + (s < extra ? 1 : 0));
    }
  }
  std::vector<uint64_t> shard_epochs;
  if (auto epochs_meta = reader.GetMeta("shard_epochs"); epochs_meta.ok()) {
    if (!internal::ParseUint64List(epochs_meta.value(), &shard_epochs) ||
        shard_epochs.size() != shard_count) {
      return util::Status::IoError("snapshot " + path +
                                   ": malformed shard_epochs meta");
    }
  }

  std::vector<std::vector<P>> slices =
      internal::SlicesBySizes(std::move(points).value(), shard_sizes);

  auto state_meta = reader.GetMeta("index_state");
  if (!state_meta.ok()) return state_meta.status();
  if (state_meta.value() == "distperm") {
    // Pre-decode every shard's state, then hand each to the restore
    // constructor inside the (possibly parallel) sharded build.
    std::vector<typename index::DistPermIndex<P>::PackedState> states(
        shard_count);
    for (size_t s = 0; s < shard_count; ++s) {
      auto section = reader.GetSection("shard" + std::to_string(s));
      if (!section.ok()) return section.status();
      if (!internal::DecodeDistPermState<P>(section.value().data,
                                            section.value().size,
                                            &states[s])) {
        return util::Status::IoError("snapshot " + path + ": shard " +
                                     std::to_string(s) +
                                     " state is malformed");
      }
    }
    ShardedDatabase<P> db = ShardedDatabase<P>::BuildSliced(
        std::move(slices), metric,
        [&states](std::vector<P> shard_data,
                  const metric::Metric<P>& shard_metric, size_t s)
            -> std::unique_ptr<index::SearchIndex<P>> {
          return std::make_unique<index::DistPermIndex<P>>(
              std::move(shard_data), shard_metric, std::move(states[s]));
        },
        build_threads);
    return Generation<P>::Adopt(std::move(db), index_spec, seed, number,
                                std::move(shard_epochs));
  }

  util::Result<ShardedDatabase<P>> rebuilt =
      ShardedDatabase<P>::BuildFromRegistrySliced(std::move(slices), metric,
                                                  index_spec, seed,
                                                  build_threads);
  if (!rebuilt.ok()) return rebuilt.status();
  return Generation<P>::Adopt(std::move(rebuilt).value(), index_spec, seed,
                              number, std::move(shard_epochs));
}

}  // namespace engine
}  // namespace distperm

#endif  // DISTPERM_ENGINE_GENERATION_STORE_H_
