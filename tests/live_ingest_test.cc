// Single-threaded live-ingest semantics: a LiveDatabase must be
// indistinguishable from a plain engine while idle, make every
// insert/remove visible immediately (exactly, through the delta scan,
// for approximate base indexes too), keep budget/truncation accounting
// untouched by the delta path, and — after Compact() — answer
// bit-identically to a fresh ShardedDatabase built over the equivalent
// final dataset, for every index spec in the registry, over vectors
// and strings.
//
// Id spaces differ between a live view (generation ids + delta ids)
// and a fresh build (positions in the materialized dataset), so
// pre-compaction comparisons use (distance, point) fingerprints;
// post-compaction the numbering coincides and equality is strict.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dataset/string_gen.h"
#include "dataset/vector_gen.h"
#include "engine/live_database.h"
#include "engine/query.h"
#include "engine/query_engine.h"
#include "engine/sharded_database.h"
#include "index/registry.h"
#include "metric/lp.h"
#include "metric/string_metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/status.h"

namespace distperm {
namespace engine {
namespace {

using index::SearchResult;
using metric::Vector;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

// Exact specs answer identically to a linear scan; approximate ones
// (distperm family) are only pinned post-compaction, where determinism
// makes live and fresh builds the same object.
const std::vector<std::string> kExactSpecs = {
    "linear-scan", "aesa", "vp-tree", "gh-tree", "laesa:k=4", "iaesa:k=4"};
const std::vector<std::string> kApproxSpecs = {
    "distperm:k=6,fraction=0.5", "distperm-prefix:k=6,prefix=2"};

// Canonical (distance, point) multiset of one result list, for
// comparisons across id spaces.
template <typename P>
std::vector<std::pair<double, P>> Fingerprint(
    const std::vector<SearchResult>& results,
    const std::function<P(size_t)>& resolve) {
  std::vector<std::pair<double, P>> prints;
  prints.reserve(results.size());
  for (const SearchResult& r : results) {
    prints.emplace_back(r.distance, resolve(r.id));
  }
  std::sort(prints.begin(), prints.end());
  return prints;
}

template <typename P>
std::function<P(size_t)> SnapshotResolver(
    const typename LiveDatabase<P>::Snapshot& snapshot) {
  return [&snapshot](size_t id) {
    auto point = snapshot.ResolvePoint(id);
    EXPECT_TRUE(point.ok()) << "unresolvable id " << id;
    return point.ok() ? point.value() : P{};
  };
}

template <typename P>
std::function<P(size_t)> DatasetResolver(const std::vector<P>& data) {
  return [&data](size_t id) { return data.at(id); };
}

std::vector<QuerySpec<Vector>> MixedVectorBatch(size_t dim, util::Rng* rng) {
  std::vector<QuerySpec<Vector>> batch;
  for (int q = 0; q < 4; ++q) {
    Vector point(dim);
    for (double& c : point) c = rng->NextDouble(-0.2, 1.2);
    batch.push_back(QuerySpec<Vector>::Knn(point, 3 + q));
  }
  for (int q = 0; q < 2; ++q) {
    Vector point(dim);
    for (double& c : point) c = rng->NextDouble();
    batch.push_back(QuerySpec<Vector>::Range(point, 0.2 + 0.2 * q));
  }
  Vector point(dim, 0.5);
  batch.push_back(QuerySpec<Vector>::KnnWithinRadius(point, 4, 0.6));
  return batch;
}

// A fresh registry-built engine over `data`, answering `batch`.
template <typename P>
typename QueryEngine<P>::BatchOutput FreshAnswers(
    const std::vector<P>& data, const metric::Metric<P>& metric,
    size_t shards, const std::string& spec, uint64_t seed,
    const std::vector<QuerySpec<P>>& batch) {
  auto built = ShardedDatabase<P>::BuildFromRegistry(data, metric, shards,
                                                     spec, seed);
  EXPECT_TRUE(built.ok()) << built.status();
  QueryEngine<P> engine(1);
  return engine.RunBatch(built.value(), batch);
}

// A fresh engine with each shard rebuilt over its pre-routed slice
// (Snapshot::MaterializeSlices) — the full-rebuild reference an
// incremental compaction of the same view must match bit-for-bit.
template <typename P>
typename QueryEngine<P>::BatchOutput FreshSlicedAnswers(
    std::vector<std::vector<P>> slices, const metric::Metric<P>& metric,
    const std::string& spec, uint64_t seed,
    const std::vector<QuerySpec<P>>& batch) {
  auto built = ShardedDatabase<P>::BuildFromRegistrySliced(
      std::move(slices), metric, spec, seed);
  EXPECT_TRUE(built.ok()) << built.status();
  QueryEngine<P> engine(1);
  return engine.RunBatch(built.value(), batch);
}

TEST(LiveIngest, IdleStoreMatchesPlainEngineBitForBit) {
  util::Rng rng(401);
  auto data = dataset::UniformCube(60, 2, &rng);
  std::vector<QuerySpec<Vector>> batch = MixedVectorBatch(2, &rng);
  for (const std::string& spec : index::Registry<Vector>::Global().Names()) {
    auto plain = ShardedDatabase<Vector>::BuildFromRegistry(data, L2(), 2,
                                                            spec, 7);
    ASSERT_TRUE(plain.ok()) << spec;
    QueryEngine<Vector> plain_engine(&plain.value(), 1);
    auto want = plain_engine.RunBatch(batch);

    auto live = LiveDatabase<Vector>::Open(data, L2(), 2, spec, 7);
    ASSERT_TRUE(live.ok()) << spec;
    auto got = live.value()->RunBatch(batch);

    EXPECT_EQ(got.results, want.results) << spec;
    EXPECT_EQ(got.truncated, want.truncated) << spec;
    EXPECT_EQ(got.per_query_distance_computations,
              want.per_query_distance_computations)
        << spec;
    EXPECT_EQ(live.value()->generation_number(), 1u);
    EXPECT_EQ(live.value()->delta_entries(), 0u);
  }
}

// Inserted points are served exactly (linear delta scan) no matter how
// approximate the base index is; removed points vanish; both survive
// compaction, where ids are remapped but the points stay.
TEST(LiveIngest, InsertRemoveVisibilityAcrossEverySpec) {
  util::Rng rng(402);
  auto data = dataset::UniformCube(40, 2, &rng);
  for (const std::string& spec : index::Registry<Vector>::Global().Names()) {
    auto live_result = LiveDatabase<Vector>::Open(data, L2(), 2, spec, 11);
    ASSERT_TRUE(live_result.ok()) << spec;
    auto& live = *live_result.value();

    // Five points clustered far from the base cube: they are the
    // exact 5-NN of a probe at their center, whatever the base index.
    std::vector<size_t> inserted_ids;
    for (int i = 0; i < 5; ++i) {
      Vector p = {2.0 + 0.01 * i, 2.0 - 0.01 * i};
      auto id = live.Insert(p);
      ASSERT_TRUE(id.ok()) << spec;
      inserted_ids.push_back(id.value());
    }
    EXPECT_EQ(live.delta_entries(), 5u);
    Vector probe = {2.0, 2.0};
    auto out = live.RunBatch({QuerySpec<Vector>::Knn(probe, 5)});
    ASSERT_TRUE(out.all_ok()) << spec;
    ASSERT_EQ(out.results[0].size(), 5u) << spec;
    for (const SearchResult& r : out.results[0]) {
      EXPECT_NE(std::find(inserted_ids.begin(), inserted_ids.end(), r.id),
                inserted_ids.end())
          << spec;
    }

    // Removing a pending insert and a base point hides both at once.
    ASSERT_TRUE(live.Remove(inserted_ids[2]).ok()) << spec;
    ASSERT_TRUE(live.Remove(0).ok()) << spec;
    out = live.RunBatch({QuerySpec<Vector>::Knn(probe, 5),
                         QuerySpec<Vector>::Knn(data[0], live.size())});
    ASSERT_TRUE(out.all_ok()) << spec;
    for (const SearchResult& r : out.results[0]) {
      EXPECT_NE(r.id, inserted_ids[2]) << spec;
    }
    for (const SearchResult& r : out.results[1]) {
      EXPECT_NE(r.id, 0u) << spec;
    }

    // Double-remove and unknown ids are NotFound, at zero cost.
    EXPECT_EQ(live.Remove(0).code(), util::StatusCode::kNotFound);
    EXPECT_EQ(live.Remove(1000).code(), util::StatusCode::kNotFound);

    // Compaction preserves the view: same points, compacted ids.
    ASSERT_TRUE(live.Compact().ok()) << spec;
    EXPECT_EQ(live.generation_number(), 2u);
    EXPECT_EQ(live.delta_entries(), 0u);
    EXPECT_EQ(live.size(), data.size() - 1 + 4);
    auto snapshot = live.Pin();
    auto resolve = SnapshotResolver<Vector>(snapshot);
    out = live.RunBatch({QuerySpec<Vector>::Knn(probe, 4)});
    ASSERT_TRUE(out.all_ok()) << spec;
    // Folded into the base, the inserts are now found by the index
    // itself — exactly for exact indexes (approximate specs may trade
    // them away, but must never resurrect the removed points).
    const bool exact = spec.rfind("distperm", 0) != 0;
    if (exact) {
      ASSERT_EQ(out.results[0].size(), 4u) << spec;
    }
    for (const SearchResult& r : out.results[0]) {
      const Vector p = resolve(r.id);
      if (exact) {
        EXPECT_NEAR(p[0], 2.0, 0.05) << spec;
      }
      EXPECT_NE(p, (Vector{2.02, 1.98})) << spec;  // the removed insert
      EXPECT_NE(p, data[0]) << spec;               // the removed base point
    }
  }
}

TEST(LiveIngest, ExactSpecsMatchFreshBuildBeforeAndAfterCompaction) {
  util::Rng rng(403);
  auto data = dataset::UniformCube(50, 2, &rng);
  for (const std::string& spec : kExactSpecs) {
    auto live_result = LiveDatabase<Vector>::Open(data, L2(), 3, spec, 13);
    ASSERT_TRUE(live_result.ok()) << spec;
    auto& live = *live_result.value();

    util::Rng write_rng(500);
    std::vector<size_t> delta_ids;
    for (int i = 0; i < 12; ++i) {
      Vector p = {write_rng.NextDouble(), write_rng.NextDouble()};
      auto id = live.Insert(std::move(p));
      ASSERT_TRUE(id.ok());
      delta_ids.push_back(id.value());
    }
    ASSERT_TRUE(live.Remove(3).ok());
    ASSERT_TRUE(live.Remove(17).ok());
    ASSERT_TRUE(live.Remove(delta_ids[5]).ok());

    util::Rng query_rng(501);
    auto batch = MixedVectorBatch(2, &query_rng);

    auto snapshot = live.Pin();
    const std::vector<Vector> final_data = snapshot.Materialize();
    EXPECT_EQ(final_data.size(), data.size() - 2 + 11);
    EXPECT_EQ(snapshot.live_size(), final_data.size());
    auto fresh = FreshAnswers(final_data, L2(), 3, spec, 13, batch);
    auto got = live.RunBatch(batch);
    ASSERT_TRUE(got.all_ok()) << spec;
    auto live_resolve = SnapshotResolver<Vector>(snapshot);
    auto fresh_resolve = DatasetResolver(final_data);
    for (size_t q = 0; q < batch.size(); ++q) {
      EXPECT_EQ(Fingerprint(got.results[q], live_resolve),
                Fingerprint(fresh.results[q], fresh_resolve))
          << spec << " query " << q;
    }

    // Post-compaction the id spaces coincide: results, counts, and
    // truncation flags are bit-identical to a fresh build over the
    // same routed slices (compaction folds per shard, so the sliced
    // build — not the uniform split — is the reference object).
    auto fresh_sliced =
        FreshSlicedAnswers(snapshot.MaterializeSlices(), L2(), spec, 13,
                           batch);
    ASSERT_TRUE(live.Compact().ok()) << spec;
    auto compacted = live.RunBatch(batch);
    EXPECT_EQ(compacted.results, fresh_sliced.results) << spec;
    EXPECT_EQ(compacted.per_query_distance_computations,
              fresh_sliced.per_query_distance_computations)
        << spec;
    EXPECT_EQ(compacted.truncated, fresh_sliced.truncated) << spec;
  }
}

TEST(LiveIngest, ApproxSpecsMatchFreshBuildAfterCompaction) {
  util::Rng rng(404);
  auto data = dataset::UniformCube(50, 2, &rng);
  for (const std::string& spec : kApproxSpecs) {
    auto live_result = LiveDatabase<Vector>::Open(data, L2(), 2, spec, 19);
    ASSERT_TRUE(live_result.ok()) << spec;
    auto& live = *live_result.value();
    util::Rng write_rng(502);
    for (int i = 0; i < 9; ++i) {
      ASSERT_TRUE(
          live.Insert({write_rng.NextDouble(), write_rng.NextDouble()})
              .ok());
    }
    ASSERT_TRUE(live.Remove(7).ok());
    auto slices = live.Pin().MaterializeSlices();
    ASSERT_TRUE(live.Compact().ok()) << spec;

    util::Rng query_rng(503);
    auto batch = MixedVectorBatch(2, &query_rng);
    auto fresh = FreshSlicedAnswers(std::move(slices), L2(), spec, 19, batch);
    auto got = live.RunBatch(batch);
    EXPECT_EQ(got.results, fresh.results) << spec;
    EXPECT_EQ(got.per_query_distance_computations,
              fresh.per_query_distance_computations)
        << spec;
  }
}

TEST(LiveIngest, StringsUnderLevenshtein) {
  util::Rng rng(405);
  auto words = dataset::DnaSequences(60, 4, 5, 12, 0.1, &rng);
  metric::Metric<std::string> lev((metric::LevenshteinMetric()));
  auto live_result =
      LiveDatabase<std::string>::Open(words, lev, 3, "vp-tree", 23);
  ASSERT_TRUE(live_result.ok());
  auto& live = *live_result.value();

  ASSERT_TRUE(live.Insert("ACGTACGTACGT").ok());
  ASSERT_TRUE(live.Insert("TTTTTTTT").ok());
  ASSERT_TRUE(live.Remove(5).ok());

  std::vector<QuerySpec<std::string>> batch = {
      QuerySpec<std::string>::Knn("ACGTACGT", 6),
      QuerySpec<std::string>::Range(words[10], 4.0),
      QuerySpec<std::string>::KnnWithinRadius("TTTTTT", 3, 5.0)};

  auto snapshot = live.Pin();
  const std::vector<std::string> final_data = snapshot.Materialize();
  auto fresh = FreshAnswers(final_data, lev, 3, "vp-tree", 23, batch);
  auto got = live.RunBatch(batch);
  ASSERT_TRUE(got.all_ok());
  auto live_resolve = SnapshotResolver<std::string>(snapshot);
  auto fresh_resolve = DatasetResolver(final_data);
  for (size_t q = 0; q < batch.size(); ++q) {
    EXPECT_EQ(Fingerprint(got.results[q], live_resolve),
              Fingerprint(fresh.results[q], fresh_resolve))
        << q;
  }

  auto fresh_sliced = FreshSlicedAnswers(snapshot.MaterializeSlices(), lev,
                                         "vp-tree", 23, batch);
  ASSERT_TRUE(live.Compact().ok());
  auto compacted = live.RunBatch(batch);
  EXPECT_EQ(compacted.results, fresh_sliced.results);
  EXPECT_EQ(compacted.per_query_distance_computations,
            fresh_sliced.per_query_distance_computations);
}

// The delta path must not disturb budget/truncation accounting: the
// generation search spends exactly what the plain engine spends, the
// delta leg adds exactly |alive inserts| evaluations per executed
// query, and rejected queries still cost nothing.
TEST(LiveIngest, BudgetAndTruncationAccountingUnchangedByDeltaPath) {
  util::Rng rng(406);
  const size_t n = 90;
  const size_t shards = 3;
  auto data = dataset::UniformCube(n, 2, &rng);
  auto live_result =
      LiveDatabase<Vector>::Open(data, L2(), shards, "linear-scan", 29);
  ASSERT_TRUE(live_result.ok());
  auto& live = *live_result.value();

  const uint64_t budget = 10;
  std::vector<QuerySpec<Vector>> batch = {
      QuerySpec<Vector>::Knn({0.4, 0.4}, 3).WithDistanceBudget(budget),
      QuerySpec<Vector>::Knn({0.4, 0.4}, 3),
      QuerySpec<Vector>::Knn({0.4, 0.4}, 0),  // invalid
  };

  // Idle: bit-identical to the plain engine.
  auto plain = ShardedDatabase<Vector>::BuildFromRegistry(data, L2(), shards,
                                                          "linear-scan", 29);
  ASSERT_TRUE(plain.ok());
  QueryEngine<Vector> plain_engine(&plain.value(), 1);
  auto want = plain_engine.RunBatch(batch);
  auto idle = live.RunBatch(batch);
  EXPECT_EQ(idle.results, want.results);
  EXPECT_EQ(idle.truncated, want.truncated);
  EXPECT_EQ(idle.per_query_distance_computations,
            want.per_query_distance_computations);
  EXPECT_TRUE(idle.truncated[0]);
  EXPECT_EQ(idle.per_query_distance_computations[0], budget * shards);
  EXPECT_EQ(idle.per_query_distance_computations[1], n);

  // With 7 pending inserts: the base leg's budget behavior is
  // untouched and the delta leg adds exactly 7 per executed query.
  const size_t inserts = 7;
  for (size_t i = 0; i < inserts; ++i) {
    ASSERT_TRUE(live.Insert({2.0, 2.0 + 0.1 * static_cast<double>(i)}).ok());
  }
  auto out = live.RunBatch(batch);
  EXPECT_TRUE(out.truncated[0]);
  EXPECT_EQ(out.per_query_distance_computations[0],
            budget * shards + inserts);
  EXPECT_FALSE(out.truncated[1]);
  EXPECT_EQ(out.per_query_distance_computations[1], n + inserts);
  EXPECT_FALSE(out.statuses[2].ok());
  EXPECT_EQ(out.per_query_distance_computations[2], 0u);
  EXPECT_EQ(out.stats.latency.count, 2u);
}

TEST(LiveIngest, SpecKnobsParseAndValidate) {
  auto split =
      index::SplitLiveSpec("laesa:k=4,delta_scan_limit=8,auto_compact_threshold=2");
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split.value().first, "laesa:k=4");
  EXPECT_EQ(split.value().second.delta_scan_limit, 8u);
  EXPECT_EQ(split.value().second.auto_compact_threshold, 2u);

  auto defaults = index::SplitLiveSpec("vp-tree");
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults.value().first, "vp-tree");
  EXPECT_EQ(defaults.value().second.delta_scan_limit, 4096u);
  EXPECT_EQ(defaults.value().second.auto_compact_threshold, 0u);
  EXPECT_EQ(defaults.value().second.delta_index, "laesa");
  EXPECT_EQ(defaults.value().second.delta_index_k, 4u);
  EXPECT_EQ(defaults.value().second.delta_index_min, 256u);

  // The delta side-index knobs parse and strip like the others.
  auto side = index::SplitLiveSpec(
      "vp-tree:delta_index=iaesa,delta_index_k=6,delta_index_min=32,"
      "delta_scan_limit=64");
  ASSERT_TRUE(side.ok());
  EXPECT_EQ(side.value().first, "vp-tree");
  EXPECT_EQ(side.value().second.delta_index, "iaesa");
  EXPECT_EQ(side.value().second.delta_index_k, 6u);
  EXPECT_EQ(side.value().second.delta_index_min, 32u);

  // An unset delta_index_min clamps to the scan limit (the default 256
  // would otherwise exceed — and invalidate — small-window specs); an
  // explicit contradictory setting is an error, and 0 disables the
  // side-indexes outright.
  auto clamped = index::SplitLiveSpec("vp-tree:delta_scan_limit=64");
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped.value().second.delta_index_min, 64u);
  auto disabled = index::SplitLiveSpec("vp-tree:delta_index_min=0");
  ASSERT_TRUE(disabled.ok());
  EXPECT_EQ(disabled.value().second.delta_index_min, 0u);

  for (const std::string& bad :
       {std::string("vp-tree:delta_scan_limit=0"),
        std::string("vp-tree:delta_scan_limit=2,auto_compact_threshold=3"),
        std::string("vp-tree:delta_scan_limit=abc"),
        std::string("vp-tree:delta_index_k=0"),
        std::string("vp-tree:delta_index_min=9,delta_scan_limit=8"),
        std::string(":delta_scan_limit=2")}) {
    EXPECT_EQ(index::SplitLiveSpec(bad).status().code(),
              util::StatusCode::kInvalidArgument)
        << bad;
  }

  // Unknown residual specs still surface the registry's error.
  util::Rng rng(407);
  auto data = dataset::UniformCube(10, 2, &rng);
  EXPECT_EQ(LiveDatabase<Vector>::Open(data, L2(), 2,
                                       "no-such-index:delta_scan_limit=4", 1)
                .status()
                .code(),
            util::StatusCode::kNotFound);
}

TEST(LiveIngest, DeltaScanLimitAppliesBackpressure) {
  util::Rng rng(408);
  auto data = dataset::UniformCube(20, 2, &rng);
  auto live_result = LiveDatabase<Vector>::Open(
      data, L2(), 2, "vp-tree:delta_scan_limit=3", 31);
  ASSERT_TRUE(live_result.ok());
  auto& live = *live_result.value();
  EXPECT_EQ(live.delta_scan_limit(), 3u);

  ASSERT_TRUE(live.Insert({1.0, 1.0}).ok());
  ASSERT_TRUE(live.Insert({1.1, 1.1}).ok());
  ASSERT_TRUE(live.Remove(0).ok());
  // Full: both write kinds push back with OutOfRange.
  EXPECT_EQ(live.Insert({1.2, 1.2}).status().code(),
            util::StatusCode::kOutOfRange);
  EXPECT_EQ(live.Remove(1).code(), util::StatusCode::kOutOfRange);

  ASSERT_TRUE(live.Compact().ok());
  EXPECT_EQ(live.delta_entries(), 0u);
  ASSERT_TRUE(live.Insert({1.2, 1.2}).ok());
  EXPECT_EQ(live.size(), 20u - 1 + 3);
}

TEST(LiveIngest, AutoCompactionRunsInBackground) {
  util::Rng rng(409);
  auto data = dataset::UniformCube(30, 2, &rng);
  auto live_result = LiveDatabase<Vector>::Open(
      data, L2(), 2, "vp-tree:auto_compact_threshold=4,delta_scan_limit=64",
      37);
  ASSERT_TRUE(live_result.ok());
  auto& live = *live_result.value();
  EXPECT_EQ(live.auto_compact_threshold(), 4u);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        live.Insert({2.0 + 0.1 * static_cast<double>(i), 2.0}).ok());
  }
  live.WaitForCompaction();
  EXPECT_TRUE(live.last_background_compact_status().ok());
  EXPECT_EQ(live.generation_number(), 2u);
  EXPECT_EQ(live.delta_entries(), 0u);
  EXPECT_EQ(live.size(), 34u);

  // The folded generation answers like a fresh build over the data.
  auto snapshot = live.Pin();
  auto batch = MixedVectorBatch(2, &rng);
  auto fresh =
      FreshAnswers(snapshot.Materialize(), L2(), 2, "vp-tree", 37, batch);
  auto got = live.RunBatch(batch);
  EXPECT_EQ(got.results, fresh.results);
}

// CompactPrefix folds only part of the window; the pending tail is
// carried into the new generation with every id remapped into the new
// space — including removes that target points the fold just moved.
TEST(LiveIngest, CompactPrefixRemapsThePendingTail) {
  util::Rng rng(410);
  auto data = dataset::UniformCube(10, 2, &rng);
  auto live_result =
      LiveDatabase<Vector>::Open(data, L2(), 2, "linear-scan", 41);
  ASSERT_TRUE(live_result.ok());
  auto& live = *live_result.value();

  const Vector a = {3.0, 3.0};
  const Vector b = {4.0, 4.0};
  auto id_a = live.Insert(a);
  auto id_b = live.Insert(b);
  ASSERT_TRUE(id_a.ok());
  ASSERT_TRUE(id_b.ok());
  EXPECT_EQ(id_a.value(), 10u);
  EXPECT_EQ(id_b.value(), 11u);
  ASSERT_TRUE(live.Remove(2).ok());             // folded below
  ASSERT_TRUE(live.Remove(id_a.value()).ok());  // stays in the tail

  // Fold the first three entries (both inserts + the base remove); the
  // remove of `a` rides the tail and must now target a's new id.
  ASSERT_TRUE(live.CompactPrefix(3).ok());
  EXPECT_EQ(live.generation_number(), 2u);
  EXPECT_EQ(live.delta_entries(), 1u);
  EXPECT_EQ(live.size(), 10u);  // 9 base survivors + b (a removed)

  auto snapshot = live.Pin();
  auto resolve = SnapshotResolver<Vector>(snapshot);
  auto out = live.RunBatch({QuerySpec<Vector>::Knn({3.5, 3.5}, 2)});
  ASSERT_TRUE(out.all_ok());
  ASSERT_EQ(out.results[0].size(), 2u);
  EXPECT_EQ(resolve(out.results[0][0].id), b);  // a is gone, b closest
  for (const auto& r : out.results[0]) EXPECT_NE(resolve(r.id), a);

  // Folding the rest reaches the same final state as a fresh build.
  ASSERT_TRUE(live.Compact().ok());
  EXPECT_EQ(live.delta_entries(), 0u);
  auto final_data = live.Pin().Materialize();
  EXPECT_EQ(final_data.size(), 10u);
  auto batch = MixedVectorBatch(2, &rng);
  auto fresh = FreshAnswers(final_data, L2(), 2, "linear-scan", 41, batch);
  auto got = live.RunBatch(batch);
  EXPECT_EQ(got.results, fresh.results);
}

// Swapped-out generations must free themselves as soon as the last pin
// drops: nothing in the store may keep a retired generation alive.
TEST(LiveIngest, RetiredGenerationsAreFreedWhenUnpinned) {
  util::Rng rng(411);
  auto data = dataset::UniformCube(25, 2, &rng);
  auto live_result =
      LiveDatabase<Vector>::Open(data, L2(), 2, "vp-tree", 43);
  ASSERT_TRUE(live_result.ok());
  auto& live = *live_result.value();

  std::weak_ptr<const Generation<Vector>> retired;
  {
    auto snapshot = live.Pin();
    retired = snapshot.generation();
    ASSERT_TRUE(live.Insert({0.5, 0.5}).ok());
    ASSERT_TRUE(live.Compact().ok());
    // The pin still holds generation 1 alive — and its frozen view
    // predates both the insert and the swap.
    EXPECT_FALSE(retired.expired());
    EXPECT_EQ(snapshot.generation_number(), 1u);
    EXPECT_EQ(snapshot.live_size(), 25u);
  }
  EXPECT_TRUE(retired.expired());
  EXPECT_EQ(live.generation_number(), 2u);

  std::weak_ptr<const Generation<Vector>> current = live.Pin().generation();
  EXPECT_FALSE(current.expired());  // the store itself pins the head
}

// A traced live query gets one delta-leg span prepended to the shard
// spans, every span rebased onto the call's own clock, and the spans
// still partition the query's delta-inclusive distance count exactly.
// Tracing changes nothing else: results and accounting stay identical
// to the untraced run.
TEST(LiveIngest, TraceCoversDeltaLegAndSumsExactly) {
  util::Rng rng(412);
  auto data = dataset::UniformCube(50, 2, &rng);
  const size_t shards = 3;
  auto live_result =
      LiveDatabase<Vector>::Open(data, L2(), shards, "linear-scan", 47);
  ASSERT_TRUE(live_result.ok());
  auto& live = *live_result.value();
  ASSERT_TRUE(live.Insert({0.5, 0.5}).ok());
  ASSERT_TRUE(live.Insert({0.6, 0.6}).ok());
  ASSERT_TRUE(live.Remove(0).ok());

  std::vector<QuerySpec<Vector>> plain = {
      QuerySpec<Vector>::Knn({0.5, 0.5}, 4),
      QuerySpec<Vector>::Range({0.3, 0.7}, 0.4),
  };
  std::vector<QuerySpec<Vector>> traced = plain;
  for (auto& spec : traced) spec.WithTrace();

  auto base = live.RunBatch(plain);
  auto out = live.RunBatch(traced);
  ASSERT_TRUE(out.all_ok());
  EXPECT_EQ(out.results, base.results);
  EXPECT_EQ(out.per_query_distance_computations,
            base.per_query_distance_computations);
  for (size_t q = 0; q < traced.size(); ++q) {
    const obs::SearchTrace& trace = out.traces[q];
    ASSERT_EQ(trace.spans.size(), shards + 1) << q;  // delta + shards
    EXPECT_TRUE(trace.spans[0].delta) << q;
    // Two alive inserts: the delta leg pays exactly two distances.
    EXPECT_EQ(trace.spans[0].distance_computations, 2u) << q;
    for (size_t i = 1; i < trace.spans.size(); ++i) {
      EXPECT_FALSE(trace.spans[i].delta) << q;
    }
    EXPECT_EQ(trace.total_distance_computations(),
              out.per_query_distance_computations[q])
        << q;
    for (const obs::SearchTrace::Span& span : trace.spans) {
      EXPECT_GE(span.start_seconds, 0.0) << q;
      EXPECT_LE(span.start_seconds, span.stop_seconds) << q;
    }
  }

  // After compaction the delta is empty: traces drop the delta span
  // and flow straight from the engine.
  ASSERT_TRUE(live.Compact().ok());
  auto folded = live.RunBatch(traced);
  ASSERT_TRUE(folded.all_ok());
  for (size_t q = 0; q < traced.size(); ++q) {
    EXPECT_EQ(folded.traces[q].spans.size(), shards) << q;
    EXPECT_EQ(folded.traces[q].total_distance_computations(),
              folded.per_query_distance_computations[q])
        << q;
  }
}

// LiveOptions.metrics wires the store into a registry: write and
// compaction counters are exact, the compaction histograms record each
// fold, and the delta-depth / pinned-generation gauges read out
// point-in-time truth at exposition.
TEST(LiveIngest, MetricsRecordWritesCompactionsAndGauges) {
  util::Rng rng(413);
  auto data = dataset::UniformCube(30, 2, &rng);
  obs::MetricsRegistry registry("live");
  LiveOptions options;
  options.metrics = &registry;
  auto live_result = LiveDatabase<Vector>::Open(
      data, L2(), 2, "vp-tree:delta_scan_limit=4", 53, options);
  ASSERT_TRUE(live_result.ok());
  auto& live = *live_result.value();

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(live.Insert({2.0 + 0.1 * i, 2.0}).ok());
  }
  ASSERT_TRUE(live.Remove(0).ok());
  // The window is at its delta_scan_limit: one rejected write.
  EXPECT_FALSE(live.Insert({9.0, 9.0}).ok());

  EXPECT_EQ(registry.GetCounter("live_inserts_total")->Value(), 3u);
  EXPECT_EQ(registry.GetCounter("live_removes_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("live_backpressure_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("live_compactions_total")->Value(), 0u);
  std::string text = registry.TextExposition();
  EXPECT_NE(text.find("live_delta_depth 4"), std::string::npos) << text;

  ASSERT_TRUE(live.Compact().ok());
  EXPECT_EQ(registry.GetCounter("live_compactions_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("live_compaction_failures_total")->Value(),
            0u);
  EXPECT_EQ(
      registry.GetHistogram("live_compaction_seconds")->Snap().count(), 1u);
  // The folded-entries histogram saw this fold's 4-entry window.
  EXPECT_DOUBLE_EQ(
      registry.GetHistogram("live_compaction_folded_entries")->Snap().sum,
      4.0);
  text = registry.TextExposition();
  EXPECT_NE(text.find("live_delta_depth 0"), std::string::npos) << text;
  EXPECT_NE(text.find("live_pinned_generations 1"), std::string::npos)
      << text;

  // The built-in serving engine shares the registry.
  auto out = live.RunBatch({QuerySpec<Vector>::Knn({0.5, 0.5}, 3)});
  ASSERT_TRUE(out.all_ok());
  EXPECT_EQ(registry.GetCounter("engine_queries_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("engine_distance_computations_total")
                ->Value(),
            out.stats.distance_computations);
}

}  // namespace
}  // namespace engine
}  // namespace distperm
