// Synthetic stand-ins for the SISAP sample databases (paper Table 2).
//
// The SISAP metric-space library's sample data (dictionaries in seven
// languages, listeria gene sequences, document vectors, colour
// histograms, NASA feature vectors) is not available offline, so each
// database is replaced by a generator matched in cardinality, point type,
// metric, and — as far as the permutation-counting behaviour is concerned
// — in structure (clustered, low intrinsic dimension).  DESIGN.md §4
// records the substitution rationale.

#ifndef DISTPERM_DATASET_SISAP_SYNTH_H_
#define DISTPERM_DATASET_SISAP_SYNTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "metric/metric.h"
#include "util/status.h"

namespace distperm {
namespace dataset {

/// Point representation of a stand-in database.
enum class SisapKind {
  kDictionary,  ///< strings under Levenshtein distance
  kDna,         ///< strings under Levenshtein distance
  kDocuments,   ///< sparse vectors under angle distance
  kVectors,     ///< dense vectors under L2
};

/// Catalogue entry for one stand-in database.
struct SisapDatabaseInfo {
  std::string name;      ///< paper's database name ("Dutch", "nasa", ...)
  size_t paper_n;        ///< cardinality reported in the paper's Table 2
  double paper_rho;      ///< intrinsic dimensionality reported in Table 2
  SisapKind kind;
  std::string metric_name;
};

/// The twelve databases of the paper's Table 2, in the paper's order.
const std::vector<SisapDatabaseInfo>& SisapCatalogue();

/// Looks up a catalogue entry by name.
util::Result<SisapDatabaseInfo> FindSisapDatabase(const std::string& name);

/// Builds a string database ("Dutch".."Spanish" dictionaries, or
/// "listeria").  `scale` multiplies the paper's cardinality (use < 1 for
/// quick runs).  Fatal if `name` is not a string database.
std::vector<std::string> MakeStringDatabase(const std::string& name,
                                            double scale, uint64_t seed);

/// Builds a document database ("long" or "short").
std::vector<metric::SparseVector> MakeDocDatabase(const std::string& name,
                                                  double scale,
                                                  uint64_t seed);

/// Builds a dense-vector database ("colors" or "nasa").
std::vector<metric::Vector> MakeVectorDatabase(const std::string& name,
                                               double scale, uint64_t seed);

/// Scaled cardinality: max(64, round(paper_n * scale)).
size_t ScaledCardinality(const SisapDatabaseInfo& info, double scale);

}  // namespace dataset
}  // namespace distperm

#endif  // DISTPERM_DATASET_SISAP_SYNTH_H_
