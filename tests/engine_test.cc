// Concurrent batch query engine tests: sharded, threaded execution must
// return exactly the results of a sequential linear scan over the whole
// database (same ids, distances, canonical (distance, id) order), and
// the engine's distance accounting must reproduce the single-threaded
// cost model no matter how many workers run.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dataset/string_gen.h"
#include "dataset/vector_gen.h"
#include "engine/batch_stats.h"
#include "engine/query.h"
#include "engine/query_engine.h"
#include "engine/sharded_database.h"
#include "index/laesa.h"
#include "index/linear_scan.h"
#include "index/vp_tree.h"
#include "metric/lp.h"
#include "metric/string_metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace distperm {
namespace engine {
namespace {

using index::LinearScanIndex;
using index::SearchIndex;
using index::SearchResult;
using metric::Vector;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

template <typename P>
typename ShardedDatabase<P>::IndexFactory LinearFactory() {
  return [](std::vector<P> data, const metric::Metric<P>& metric, size_t) {
    return std::make_unique<LinearScanIndex<P>>(std::move(data), metric);
  };
}

template <typename P>
typename ShardedDatabase<P>::IndexFactory VpFactory(uint64_t seed) {
  return [seed](std::vector<P> data, const metric::Metric<P>& metric,
                size_t shard) {
    util::Rng rng(seed + shard);
    return std::make_unique<index::VpTreeIndex<P>>(std::move(data), metric,
                                                   &rng);
  };
}

template <typename P>
typename ShardedDatabase<P>::IndexFactory LaesaFactory(uint64_t seed,
                                                       size_t pivots) {
  return [seed, pivots](std::vector<P> data,
                        const metric::Metric<P>& metric, size_t shard) {
    util::Rng rng(seed + shard);
    size_t count = std::min(pivots, data.size());
    return std::make_unique<index::LaesaIndex<P>>(std::move(data), metric,
                                                  count, &rng);
  };
}

// Sequential ground truth: one linear scan over the unsharded database.
template <typename P>
std::vector<std::vector<SearchResult>> SequentialTruth(
    const std::vector<P>& data, const metric::Metric<P>& metric,
    const std::vector<QuerySpec<P>>& batch) {
  LinearScanIndex<P> scan(data, metric);
  std::vector<std::vector<SearchResult>> truth;
  truth.reserve(batch.size());
  for (const auto& spec : batch) {
    truth.push_back(spec.mode == QueryType::kKnn
                        ? scan.KnnQuery(spec.point, spec.k)
                        : scan.RangeQuery(spec.point, spec.radius));
  }
  return truth;
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter]() { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIsABarrierAndPoolIsReusable) {
  util::ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 1; round <= 5; ++round) {
    for (int i = 0; i < 40; ++i) {
      pool.Submit([&counter]() { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), round * 40);
  }
}

TEST(ThreadPool, ZeroRequestedThreadsStillWorks) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran]() { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  util::ThreadPool pool(2);
  pool.Wait();
}

// Regression for destructor vs. Submit-from-task (allowed since the
// engine's two-phase scheduling): destroying the pool while running
// tasks are still submitting chained work must drain every submission
// — idle workers may exit early on the shutdown flag, but a task's own
// worker always picks its chain up, so nothing is dropped.  Run under
// TSan by the CI tsan job.
TEST(ThreadPool, DestructorDrainsChainsStillSubmitting) {
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    counter.store(0);
    // Declared outside the pool's scope so chained tasks can still
    // call it while the destructor drains.
    std::function<void(int)> chain;
    {
      util::ThreadPool pool(3);
      chain = [&pool, &counter, &chain](int depth) {
        counter.fetch_add(1);
        if (depth > 0) pool.Submit([&chain, depth]() { chain(depth - 1); });
      };
      // Each root task submits a chain of depth 5 from within tasks;
      // the pool is destroyed immediately, with no Wait(), while the
      // chains are still growing.
      for (int i = 0; i < 4; ++i) {
        pool.Submit([&chain]() { chain(5); });
      }
    }
    // 4 roots x (1 + 5 chained) tasks each, none lost.
    EXPECT_EQ(counter.load(), 4 * 6) << "round " << round;
  }
}

// The pool's introspection accessors: submitted/executed counts are
// exact, and queue_depth reports tasks waiting behind a busy worker.
TEST(ThreadPool, CountersTrackSubmittedQueuedAndExecutedTasks) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.submitted_count(), 0u);
  EXPECT_EQ(pool.executed_count(), 0u);
  EXPECT_EQ(pool.queue_depth(), 0u);

  // Block the single worker so further submissions must queue.
  std::atomic<bool> release{false};
  std::atomic<bool> started{false};
  pool.Submit([&release, &started]() {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 3; ++i) {
    pool.Submit([]() {});
  }
  EXPECT_EQ(pool.submitted_count(), 4u);
  EXPECT_EQ(pool.queue_depth(), 3u);  // blocker runs, three wait
  EXPECT_EQ(pool.executed_count(), 0u);

  release.store(true);
  pool.Wait();
  EXPECT_EQ(pool.submitted_count(), 4u);
  EXPECT_EQ(pool.executed_count(), 4u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ShardedDatabase, ContiguousSlicingCoversEveryPoint) {
  util::Rng rng(90);
  auto data = dataset::UniformCube(103, 2, &rng);  // not divisible by 4
  auto db = ShardedDatabase<Vector>::Build(data, L2(), 4,
                                           LinearFactory<Vector>());
  ASSERT_EQ(db.shard_count(), 4u);
  EXPECT_EQ(db.size(), data.size());
  size_t covered = 0;
  for (size_t s = 0; s < db.shard_count(); ++s) {
    EXPECT_EQ(db.shard_offset(s), covered);
    for (size_t i = 0; i < db.shard(s).size(); ++i) {
      EXPECT_EQ(db.shard(s).data()[i], data[covered + i]);
    }
    covered += db.shard(s).size();
  }
  EXPECT_EQ(covered, data.size());
  EXPECT_EQ(db.index_name(), "linear-scan");
}

// The satellite-task test: batched sharded kNN/range results must be
// identical to sequential LinearScanIndex results across metrics, index
// types, shard counts, thread counts, and seeds.
TEST(QueryEngine, ShardedBatchesMatchSequentialLinearScanOnVectors) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    util::Rng rng(1000 + seed);
    auto data = dataset::UniformCube(350, 3, &rng);

    std::vector<QuerySpec<Vector>> batch;
    for (int q = 0; q < 12; ++q) {
      Vector point(3);
      for (auto& c : point) c = rng.NextDouble(-0.2, 1.2);
      if (q % 2 == 0) {
        batch.push_back(QuerySpec<Vector>::Knn(point, 1 + q));
      } else {
        batch.push_back(QuerySpec<Vector>::Range(point, 0.05 + 0.08 * q));
      }
    }
    auto truth = SequentialTruth(data, L2(), batch);

    std::vector<typename ShardedDatabase<Vector>::IndexFactory> factories =
        {LinearFactory<Vector>(), VpFactory<Vector>(seed),
         LaesaFactory<Vector>(seed, 6)};
    for (size_t f = 0; f < factories.size(); ++f) {
      for (size_t shards : {1u, 3u, 4u, 7u}) {
        auto db = ShardedDatabase<Vector>::Build(data, L2(), shards,
                                                 factories[f]);
        for (size_t threads : {1u, 4u}) {
          QueryEngine<Vector> engine(&db, threads);
          auto out = engine.RunBatch(batch);
          ASSERT_EQ(out.results.size(), batch.size());
          for (size_t q = 0; q < batch.size(); ++q) {
            EXPECT_EQ(out.results[q], truth[q])
                << "factory=" << f << " shards=" << shards
                << " threads=" << threads << " query=" << q;
          }
          EXPECT_EQ(AverageRecall(out.results, truth), 1.0);
        }
      }
    }
  }
}

TEST(QueryEngine, ShardedBatchesMatchSequentialLinearScanOnStrings) {
  util::Rng rng(77);
  auto words = dataset::DnaSequences(140, 4, 6, 16, 0.1, &rng);
  metric::Metric<std::string> lev((metric::LevenshteinMetric()));

  std::vector<QuerySpec<std::string>> batch;
  for (int q = 0; q < 10; ++q) {
    const std::string& point = words[rng.NextBounded(words.size())];
    if (q % 2 == 0) {
      batch.push_back(QuerySpec<std::string>::Knn(point, 5));
    } else {
      batch.push_back(QuerySpec<std::string>::Range(point, 3.0));
    }
  }
  auto truth = SequentialTruth(words, lev, batch);

  auto db = ShardedDatabase<std::string>::Build(words, lev, 5,
                                                VpFactory<std::string>(9));
  QueryEngine<std::string> engine(&db, 4);
  auto out = engine.RunBatch(batch);
  for (size_t q = 0; q < batch.size(); ++q) {
    EXPECT_EQ(out.results[q], truth[q]) << q;
  }
}

// Linear-scan shards make the cost model exactly additive: every query
// costs n metric evaluations regardless of sharding or threading.
TEST(QueryEngine, DistanceAccountingMatchesSingleThreadedCostModel) {
  util::Rng rng(31);
  const size_t n = 257;
  auto data = dataset::UniformCube(n, 2, &rng);
  std::vector<QuerySpec<Vector>> batch;
  for (int q = 0; q < 9; ++q) {
    batch.push_back(QuerySpec<Vector>::Knn({rng.NextDouble(),
                                            rng.NextDouble()},
                                           5));
  }
  for (size_t shards : {1u, 4u, 6u}) {
    auto db = ShardedDatabase<Vector>::Build(data, L2(), shards,
                                             LinearFactory<Vector>());
    for (size_t threads : {1u, 4u}) {
      QueryEngine<Vector> engine(&db, threads);
      auto out = engine.RunBatch(batch);
      for (size_t q = 0; q < batch.size(); ++q) {
        EXPECT_EQ(out.per_query_distance_computations[q], n)
            << "shards=" << shards << " threads=" << threads;
      }
      EXPECT_EQ(out.stats.distance_computations, batch.size() * n);
    }
  }
}

// Any exact index's engine-reported counts must be independent of the
// worker count: threading may reorder work but never changes what the
// shards compute.
TEST(QueryEngine, ThreadCountDoesNotPerturbDistanceCounts) {
  util::Rng rng(32);
  auto data = dataset::UniformCube(300, 3, &rng);
  std::vector<QuerySpec<Vector>> batch;
  for (int q = 0; q < 8; ++q) {
    Vector point = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    batch.push_back(q % 2 == 0 ? QuerySpec<Vector>::Knn(point, 7)
                               : QuerySpec<Vector>::Range(point, 0.3));
  }
  auto db = ShardedDatabase<Vector>::Build(data, L2(), 4,
                                           VpFactory<Vector>(21));
  QueryEngine<Vector> single(&db, 1);
  QueryEngine<Vector> pooled(&db, 8);
  auto a = single.RunBatch(batch);
  auto b = pooled.RunBatch(batch);
  EXPECT_EQ(a.stats.distance_computations, b.stats.distance_computations);
  EXPECT_EQ(a.per_query_distance_computations,
            b.per_query_distance_computations);
  EXPECT_EQ(a.results, b.results);
}

TEST(QueryEngine, BatchStatsAreFilledIn) {
  util::Rng rng(33);
  auto data = dataset::UniformCube(120, 2, &rng);
  auto db = ShardedDatabase<Vector>::Build(data, L2(), 3,
                                           LinearFactory<Vector>());
  QueryEngine<Vector> engine(&db, 2);
  std::vector<QuerySpec<Vector>> batch(
      6, QuerySpec<Vector>::Knn({0.5, 0.5}, 4));
  auto out = engine.RunBatch(batch);
  EXPECT_EQ(out.stats.query_count, 6u);
  EXPECT_EQ(out.stats.shard_count, 3u);
  EXPECT_EQ(out.stats.thread_count, 2u);
  EXPECT_GT(out.stats.wall_seconds, 0.0);
  EXPECT_EQ(out.stats.latency.count, 6u);
  EXPECT_GT(out.stats.latency.min_seconds, 0.0);
  EXPECT_LE(out.stats.latency.min_seconds, out.stats.latency.mean_seconds);
  EXPECT_LE(out.stats.latency.mean_seconds, out.stats.latency.max_seconds);
  EXPECT_LE(out.stats.latency.max_seconds, out.stats.wall_seconds);
}

TEST(QueryEngine, EdgeCases) {
  util::Rng rng(34);
  auto data = dataset::UniformCube(10, 2, &rng);
  // More shards than points: some shards are empty.
  auto db = ShardedDatabase<Vector>::Build(data, L2(), 16,
                                           LinearFactory<Vector>());
  QueryEngine<Vector> engine(&db, 4);

  // Empty batch.
  auto empty = engine.RunBatch({});
  EXPECT_TRUE(empty.results.empty());
  EXPECT_EQ(empty.stats.distance_computations, 0u);

  // k larger than the database.
  auto out = engine.RunBatch({QuerySpec<Vector>::Knn({0.5, 0.5}, 50)});
  ASSERT_EQ(out.results.size(), 1u);
  EXPECT_EQ(out.results[0].size(), data.size());
  LinearScanIndex<Vector> scan(data, L2());
  EXPECT_EQ(out.results[0], scan.KnnQuery({0.5, 0.5}, 50));

  // Radius nothing matches.
  auto none = engine.RunBatch({QuerySpec<Vector>::Range({9.0, 9.0}, 0.01)});
  EXPECT_TRUE(none.results[0].empty());
}

// Direct concurrent queries against one shared index: the const API must
// be safe without the engine, and the per-call stats must sum to the
// index's atomic aggregate.
TEST(SearchIndexConcurrency, SharedIndexServesManyThreads) {
  util::Rng rng(35);
  auto data = dataset::UniformCube(400, 3, &rng);
  util::Rng tree_rng(36);
  const index::VpTreeIndex<Vector> shared(data, L2(), &tree_rng);
  LinearScanIndex<Vector> reference(data, L2());

  std::vector<Vector> queries;
  std::vector<std::vector<SearchResult>> truth;
  for (int q = 0; q < 32; ++q) {
    Vector point = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    truth.push_back(reference.KnnQuery(point, 6));
    queries.push_back(std::move(point));
  }

  ASSERT_EQ(shared.query_distance_computations(), 0u);
  std::atomic<uint64_t> stats_total{0};
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      for (size_t q = t; q < queries.size(); q += 4) {
        index::QueryStats stats;
        auto result = shared.KnnQuery(queries[q], 6, &stats);
        if (result != truth[q]) mismatches.fetch_add(1);
        stats_total.fetch_add(stats.distance_computations);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(shared.query_distance_computations(), stats_total.load());
}

// Invalid requests in a batch come back with per-query statuses
// instead of asserting; valid queries in the same batch are answered
// exactly and the rejected ones cost nothing.
TEST(QueryEngine, PropagatesPerQueryStatuses) {
  util::Rng rng(44);
  auto data = dataset::UniformCube(150, 2, &rng);
  auto db = ShardedDatabase<Vector>::Build(data, L2(), 3,
                                           LinearFactory<Vector>());
  QueryEngine<Vector> engine(&db, 2);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<QuerySpec<Vector>> batch = {
      QuerySpec<Vector>::Knn({0.5, 0.5}, 4),          // valid
      QuerySpec<Vector>::Knn({0.5, 0.5}, 0),          // k = 0
      QuerySpec<Vector>::Range({0.5, 0.5}, -2.0),     // negative radius
      QuerySpec<Vector>::Range({0.5, 0.5}, 0.2),      // valid
      QuerySpec<Vector>::Knn({nan, 0.5}, 3),          // NaN coordinate
  };
  auto out = engine.RunBatch(batch);
  ASSERT_EQ(out.statuses.size(), batch.size());
  EXPECT_FALSE(out.all_ok());
  EXPECT_TRUE(out.statuses[0].ok());
  EXPECT_TRUE(out.statuses[3].ok());
  for (size_t q : {1u, 2u, 4u}) {
    EXPECT_EQ(out.statuses[q].code(), util::StatusCode::kInvalidArgument)
        << q;
    EXPECT_TRUE(out.results[q].empty()) << q;
    EXPECT_EQ(out.per_query_distance_computations[q], 0u) << q;
  }
  // Valid queries are unperturbed: exact answers, exact accounting.
  LinearScanIndex<Vector> scan(data, L2());
  EXPECT_EQ(out.results[0], scan.KnnQuery({0.5, 0.5}, 4));
  EXPECT_EQ(out.results[3], scan.RangeQuery({0.5, 0.5}, 0.2));
  EXPECT_EQ(out.per_query_distance_computations[0], data.size());
  // Only executed queries appear in the latency summary.
  EXPECT_EQ(out.stats.latency.count, 2u);
}

// A distance budget propagates through the engine: each shard task
// honors it, the per-query truncated flag reports it, and unbudgeted
// queries in the same batch keep their exact accounting.
TEST(QueryEngine, PropagatesTruncationUnderDistanceBudget) {
  util::Rng rng(45);
  const size_t n = 240;
  auto data = dataset::UniformCube(n, 2, &rng);
  const size_t shards = 3;
  auto db = ShardedDatabase<Vector>::Build(data, L2(), shards,
                                           LinearFactory<Vector>());
  QueryEngine<Vector> engine(&db, 2);

  const uint64_t budget = 20;
  std::vector<QuerySpec<Vector>> batch = {
      QuerySpec<Vector>::Knn({0.4, 0.4}, 3).WithDistanceBudget(budget),
      QuerySpec<Vector>::Knn({0.4, 0.4}, 3),
  };
  auto out = engine.RunBatch(batch);
  ASSERT_TRUE(out.all_ok());
  EXPECT_TRUE(out.truncated[0]);
  // The budget applies per (query, shard) task.
  EXPECT_EQ(out.per_query_distance_computations[0], budget * shards);
  EXPECT_FALSE(out.truncated[1]);
  EXPECT_EQ(out.per_query_distance_computations[1], n);
}

// The kNN-within-radius mode flows through sharded execution: merged
// engine answers equal the single-index response.
TEST(QueryEngine, KnnWithinRadiusMatchesSingleIndex) {
  util::Rng rng(46);
  auto data = dataset::UniformCube(300, 3, &rng);
  auto db = ShardedDatabase<Vector>::Build(data, L2(), 4,
                                           VpFactory<Vector>(11));
  QueryEngine<Vector> engine(&db, 3);
  LinearScanIndex<Vector> scan(data, L2());
  std::vector<QuerySpec<Vector>> batch;
  for (int q = 0; q < 10; ++q) {
    Vector point = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    batch.push_back(
        QuerySpec<Vector>::KnnWithinRadius(point, 1 + q, 0.05 + 0.05 * q));
  }
  auto out = engine.RunBatch(batch);
  ASSERT_TRUE(out.all_ok());
  for (size_t q = 0; q < batch.size(); ++q) {
    auto truth = scan.Search(batch[q]);
    ASSERT_TRUE(truth.status.ok());
    EXPECT_EQ(out.results[q], truth.results) << q;
  }
}

TEST(BatchStatsHelpers, LatencySummary) {
  auto summary = SummarizeLatencies({0.4, 0.1, 0.3, 0.2});
  EXPECT_EQ(summary.count, 4u);
  EXPECT_DOUBLE_EQ(summary.min_seconds, 0.1);
  EXPECT_DOUBLE_EQ(summary.max_seconds, 0.4);
  EXPECT_DOUBLE_EQ(summary.mean_seconds, 0.25);
  // Interpolated percentiles: rank q * (n - 1) between the order
  // statistics, so p99 of 4 samples sits just below the max instead of
  // snapping to it (the old nearest-rank rule reported 0.4 here).
  EXPECT_DOUBLE_EQ(summary.p99_seconds,
                   0.3 + (0.99 * 3.0 - 2.0) * (0.4 - 0.3));
  EXPECT_DOUBLE_EQ(summary.p999_seconds,
                   0.3 + (0.999 * 3.0 - 2.0) * (0.4 - 0.3));
  EXPECT_EQ(SummarizeLatencies({}).count, 0u);
}

// One sample: every percentile is that sample, exactly.
TEST(BatchStatsHelpers, LatencySummarySingleElement) {
  auto summary = SummarizeLatencies({0.2});
  EXPECT_EQ(summary.count, 1u);
  EXPECT_DOUBLE_EQ(summary.min_seconds, 0.2);
  EXPECT_DOUBLE_EQ(summary.mean_seconds, 0.2);
  EXPECT_DOUBLE_EQ(summary.p99_seconds, 0.2);
  EXPECT_DOUBLE_EQ(summary.p999_seconds, 0.2);
  EXPECT_DOUBLE_EQ(summary.max_seconds, 0.2);
}

// Two samples {a, b}: quantile q interpolates to a + q * (b - a).
TEST(BatchStatsHelpers, LatencySummaryTwoElements) {
  auto summary = SummarizeLatencies({0.3, 0.1});
  EXPECT_EQ(summary.count, 2u);
  EXPECT_DOUBLE_EQ(summary.min_seconds, 0.1);
  EXPECT_DOUBLE_EQ(summary.max_seconds, 0.3);
  EXPECT_DOUBLE_EQ(summary.mean_seconds, 0.2);
  EXPECT_DOUBLE_EQ(summary.p99_seconds, 0.1 + 0.99 * (0.3 - 0.1));
  EXPECT_DOUBLE_EQ(summary.p999_seconds, 0.1 + 0.999 * (0.3 - 0.1));
}

// One hundred samples 0.01 .. 1.00: p99 interpolates between the 99th
// and 100th order statistics at rank 0.99 * 99 = 98.01, p999 at rank
// 98.901 — neither snaps to the max.
TEST(BatchStatsHelpers, LatencySummaryHundredElements) {
  std::vector<double> seconds(100);
  for (size_t i = 0; i < seconds.size(); ++i) {
    seconds[i] = static_cast<double>(i + 1) / 100.0;
  }
  auto summary = SummarizeLatencies(seconds);
  EXPECT_EQ(summary.count, 100u);
  EXPECT_DOUBLE_EQ(summary.min_seconds, 0.01);
  EXPECT_DOUBLE_EQ(summary.max_seconds, 1.0);
  const double p99_rank = 0.99 * 99.0;    // 98.01
  const double p999_rank = 0.999 * 99.0;  // 98.901
  EXPECT_DOUBLE_EQ(summary.p99_seconds,
                   0.99 + (p99_rank - 98.0) * (1.0 - 0.99));
  EXPECT_DOUBLE_EQ(summary.p999_seconds,
                   0.99 + (p999_rank - 98.0) * (1.0 - 0.99));
  EXPECT_LT(summary.p99_seconds, summary.p999_seconds);
  EXPECT_LT(summary.p999_seconds, summary.max_seconds);
}

// A batch where every query is rejected executes nothing: the latency
// summary must be the empty (all-zero) summary, not a summary of
// garbage slots, while the batch's wall clock still ticks.
TEST(QueryEngine, LatencySummaryOnFullyRejectedBatch) {
  util::Rng rng(47);
  auto data = dataset::UniformCube(80, 2, &rng);
  auto db = ShardedDatabase<Vector>::Build(data, L2(), 2,
                                           LinearFactory<Vector>());
  QueryEngine<Vector> engine(&db, 2);
  std::vector<QuerySpec<Vector>> batch = {
      QuerySpec<Vector>::Knn({0.5, 0.5}, 0),       // k = 0
      QuerySpec<Vector>::Range({0.5, 0.5}, -1.0),  // negative radius
  };
  auto out = engine.RunBatch(batch);
  EXPECT_FALSE(out.all_ok());
  EXPECT_EQ(out.stats.latency.count, 0u);
  EXPECT_DOUBLE_EQ(out.stats.latency.min_seconds, 0.0);
  EXPECT_DOUBLE_EQ(out.stats.latency.mean_seconds, 0.0);
  EXPECT_DOUBLE_EQ(out.stats.latency.p99_seconds, 0.0);
  EXPECT_DOUBLE_EQ(out.stats.latency.max_seconds, 0.0);
  EXPECT_GT(out.stats.wall_seconds, 0.0);
  EXPECT_EQ(out.stats.distance_computations, 0u);
}

// With one executed query among rejected ones, the summary degenerates
// to that query's latency on every percentile.
TEST(QueryEngine, LatencySummaryWithSingleExecutedQuery) {
  util::Rng rng(48);
  auto data = dataset::UniformCube(80, 2, &rng);
  auto db = ShardedDatabase<Vector>::Build(data, L2(), 2,
                                           LinearFactory<Vector>());
  QueryEngine<Vector> engine(&db, 2);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<QuerySpec<Vector>> batch = {
      QuerySpec<Vector>::Knn({nan, 0.5}, 3),  // NaN coordinate
      QuerySpec<Vector>::Knn({0.5, 0.5}, 3),  // the only executed query
      QuerySpec<Vector>::Knn({0.5, 0.5}, 0),  // k = 0
  };
  auto out = engine.RunBatch(batch);
  EXPECT_FALSE(out.all_ok());
  EXPECT_TRUE(out.statuses[1].ok());
  EXPECT_EQ(out.stats.latency.count, 1u);
  EXPECT_GT(out.stats.latency.min_seconds, 0.0);
  EXPECT_DOUBLE_EQ(out.stats.latency.min_seconds,
                   out.stats.latency.max_seconds);
  EXPECT_DOUBLE_EQ(out.stats.latency.mean_seconds,
                   out.stats.latency.max_seconds);
  EXPECT_DOUBLE_EQ(out.stats.latency.p99_seconds,
                   out.stats.latency.max_seconds);
  EXPECT_LE(out.stats.latency.max_seconds, out.stats.wall_seconds);
}

// Tracing is pure observation: a traced batch returns bit-identical
// results and identical distance accounting to the untraced batch, and
// each traced query's spans partition its distance count exactly — one
// span per shard, spans ordered by start time, every span's window
// inside the batch wall clock.
TEST(QueryEngine, TraceSpansPartitionDistanceCountsExactly) {
  util::Rng rng(49);
  auto data = dataset::UniformCube(320, 3, &rng);
  const size_t shards = 4;
  auto db = ShardedDatabase<Vector>::Build(data, L2(), shards,
                                           VpFactory<Vector>(12));
  QueryEngine<Vector> engine(&db, 3);

  std::vector<QuerySpec<Vector>> plain;
  for (int q = 0; q < 8; ++q) {
    Vector point = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    plain.push_back(q % 2 == 0 ? QuerySpec<Vector>::Knn(point, 5)
                               : QuerySpec<Vector>::Range(point, 0.25));
  }
  std::vector<QuerySpec<Vector>> traced = plain;
  for (auto& spec : traced) spec.WithTrace();

  auto base = engine.RunBatch(plain);
  auto out = engine.RunBatch(traced);
  ASSERT_TRUE(out.all_ok());
  EXPECT_EQ(out.results, base.results);
  EXPECT_EQ(out.per_query_distance_computations,
            base.per_query_distance_computations);
  for (size_t q = 0; q < traced.size(); ++q) {
    // Untraced batches carry empty traces.
    EXPECT_TRUE(base.traces[q].empty()) << q;
    const obs::SearchTrace& trace = out.traces[q];
    ASSERT_EQ(trace.spans.size(), shards) << q;
    EXPECT_EQ(trace.total_distance_computations(),
              out.per_query_distance_computations[q])
        << q;
    std::vector<bool> seen(shards, false);
    for (size_t i = 0; i < trace.spans.size(); ++i) {
      const obs::SearchTrace::Span& span = trace.spans[i];
      EXPECT_FALSE(span.delta);
      ASSERT_LT(span.shard, shards);
      EXPECT_FALSE(seen[span.shard]);  // one span per shard
      seen[span.shard] = true;
      EXPECT_GE(span.start_seconds, 0.0);
      EXPECT_LE(span.start_seconds, span.stop_seconds);
      EXPECT_LE(span.stop_seconds, out.stats.wall_seconds);
      if (i > 0) {
        EXPECT_LE(trace.spans[i - 1].start_seconds, span.start_seconds);
      }
    }
  }
}

// Tracing a cooperative fan-out records the shared bound at span entry
// and exit; the bound can only tighten, and results stay exact.
TEST(QueryEngine, TraceRecordsCooperativeBoundTightening) {
  util::Rng rng(50);
  auto data = dataset::UniformCube(400, 3, &rng);
  auto db = ShardedDatabase<Vector>::Build(data, L2(), 4,
                                           VpFactory<Vector>(13));
  QueryEngine<Vector> engine(&db, 4);
  LinearScanIndex<Vector> scan(data, L2());

  Vector point = {0.4, 0.5, 0.6};
  auto out = engine.RunBatch(
      {QuerySpec<Vector>::Knn(point, 5).WithShardScheduling(index::ShardScheduling::kCooperative).WithTrace()});
  ASSERT_TRUE(out.all_ok());
  EXPECT_EQ(out.results[0], scan.KnnQuery(point, 5));
  const obs::SearchTrace& trace = out.traces[0];
  ASSERT_EQ(trace.spans.size(), 4u);
  EXPECT_EQ(trace.total_distance_computations(),
            out.per_query_distance_computations[0]);
  for (const auto& span : trace.spans) {
    EXPECT_LE(span.bound_exit, span.bound_entry) << span.shard;
  }
  // Some shard finished with the bound pulled down to a finite radius.
  double tightest = std::numeric_limits<double>::infinity();
  for (const auto& span : trace.spans) {
    tightest = std::min(tightest, span.bound_exit);
  }
  EXPECT_TRUE(std::isfinite(tightest));
}

// EnableMetrics wires the engine into a registry: after a batch the
// counters reproduce the batch's exact accounting, the latency
// histogram holds one observation per executed query, and both
// expositions name the engine series.
TEST(QueryEngine, EnableMetricsPopulatesRegistry) {
  util::Rng rng(51);
  auto data = dataset::UniformCube(200, 2, &rng);
  const size_t shards = 3;
  auto db = ShardedDatabase<Vector>::Build(data, L2(), shards,
                                           LinearFactory<Vector>());
  obs::MetricsRegistry registry("test");
  QueryEngine<Vector> engine(&db, 2);
  engine.EnableMetrics(&registry);

  std::vector<QuerySpec<Vector>> batch = {
      QuerySpec<Vector>::Knn({0.5, 0.5}, 4),
      QuerySpec<Vector>::Range({0.2, 0.8}, 0.3),
      QuerySpec<Vector>::Knn({0.5, 0.5}, 0),  // rejected: k = 0
      QuerySpec<Vector>::Knn({0.1, 0.1}, 3).WithDistanceBudget(10),
  };
  auto out = engine.RunBatch(batch);

  EXPECT_EQ(registry.GetCounter("engine_queries_total")->Value(), 3u);
  EXPECT_EQ(registry.GetCounter("engine_queries_rejected_total")->Value(),
            1u);
  EXPECT_EQ(registry.GetCounter("engine_queries_truncated_total")->Value(),
            1u);
  EXPECT_EQ(registry.GetCounter("engine_shard_tasks_total")->Value(),
            3u * shards);
  EXPECT_EQ(
      registry.GetCounter("engine_distance_computations_total")->Value(),
      out.stats.distance_computations);
  EXPECT_EQ(
      registry.GetHistogram("engine_query_latency_seconds")->Snap().count(),
      3u);
  EXPECT_EQ(registry.GetHistogram("engine_task_run_seconds")->Snap().count(),
            3u * shards);
  EXPECT_EQ(registry.GetCounter("threadpool_tasks_executed_total")->Value(),
            3u * shards);

  // A second batch accumulates into the same instruments.
  engine.RunBatch({QuerySpec<Vector>::Knn({0.3, 0.3}, 2)});
  EXPECT_EQ(registry.GetCounter("engine_queries_total")->Value(), 4u);

  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("engine_queries_total 4"), std::string::npos) << text;
  EXPECT_NE(text.find("threadpool_queue_depth 0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("engine_query_latency_seconds_count 4"),
            std::string::npos)
      << text;
  const std::string json = registry.JsonExposition();
  EXPECT_NE(json.find("\"engine_queries_total\": 4"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"engine_query_latency_seconds\""), std::string::npos)
      << json;
}

// Metrics record cooperative bound tightenings and the pruning
// statistics indexes report; a LAESA-sharded engine exercises both.
TEST(QueryEngine, MetricsCoverPruningAndCooperativeSeries) {
  util::Rng rng(52);
  auto data = dataset::UniformCube(300, 3, &rng);
  auto db = ShardedDatabase<Vector>::Build(data, L2(), 4,
                                           LaesaFactory<Vector>(7, 6));
  obs::MetricsRegistry registry("coop");
  QueryEngine<Vector> engine(&db, 4);
  engine.EnableMetrics(&registry);

  std::vector<QuerySpec<Vector>> batch;
  for (int q = 0; q < 6; ++q) {
    Vector point = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    batch.push_back(QuerySpec<Vector>::Knn(point, 4).WithShardScheduling(index::ShardScheduling::kCooperative));
  }
  auto out = engine.RunBatch(batch);
  ASSERT_TRUE(out.all_ok());
  EXPECT_EQ(registry.GetCounter("engine_pruning_eliminated_total")->Value(),
            out.stats.pruning_eliminated);
  EXPECT_GT(out.stats.pruning_eliminated, 0u);
  // Each query's fan-out publishes its k-th distance at least once.
  EXPECT_GE(
      registry.GetCounter("engine_coop_bound_tightenings_total")->Value(),
      batch.size());
}

TEST(BatchStatsHelpers, AverageRecall) {
  std::vector<std::vector<SearchResult>> truth = {
      {{1, 0.1}, {2, 0.2}}, {{3, 0.3}}, {}};
  std::vector<std::vector<SearchResult>> actual = {
      {{1, 0.1}}, {{4, 0.4}}, {}};
  // Query 0: 1/2, query 1: 0/1, query 2 (empty truth): 1.
  EXPECT_DOUBLE_EQ(AverageRecall(actual, truth), (0.5 + 0.0 + 1.0) / 3.0);
  EXPECT_DOUBLE_EQ(AverageRecall(truth, truth), 1.0);
}

}  // namespace
}  // namespace engine
}  // namespace distperm
