// Network front door over a LiveDatabase.
//
// One epoll thread owns everything: accepts, frame parsing, admission,
// cache probes, and the engine call itself.  Search frames that arrive
// back-to-back on a connection are coalesced into one
// QueryEngine::RunBatch against a single pinned snapshot (the engine
// parallelizes internally across its worker pool), so a pipelining
// client gets batch throughput without the server juggling futures.
// Any non-search frame (ping/insert/remove) flushes the pending batch
// first — responses always leave in request order.
//
// Admission control spends a distance-computation budget as currency:
// each search's cost is estimated from the live store's size (clamped
// by the request's own budget when it has one), and a batch stops
// admitting once the estimates exceed `max_inflight_distance_budget`.
// Rejected requests get an explicit kUnavailable response — overload
// is an answer, not a dropped connection.  The first request of a
// batch is always admitted, so a budget below the cost of one search
// degrades to serial execution instead of livelock.
//
// The perm cache (see perm_cache.h) sits in front of the engine:
// mutation tags are read BEFORE the snapshot pin, hits replay verbatim
// (flagged kResponseCacheHit), and prefix-cell neighbours seed
// initial_radius_bound (flagged kResponseBoundSeeded) — exactness-
// preserving, so the bound path only ever reduces distance
// computations.  The bound path is disabled automatically for
// approximate ("distperm*") index specs.
//
// Shutdown() is thread-safe: the next tick closes the listeners,
// flushes every connection, and stops the loop — callers then drop
// the server and run their own final Compact() for durable stores.

#ifndef DISTPERM_SERVER_SEARCH_SERVER_H_
#define DISTPERM_SERVER_SEARCH_SERVER_H_

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "engine/live_database.h"
#include "engine/query_engine.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/listener.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "server/perm_cache.h"
#include "storage/crc32.h"
#include "storage/point_codec.h"
#include "util/status.h"

namespace distperm {
namespace server {

/// Point-in-time snapshot for the /statz page (built in the .cc so the
/// JSON shape has one owner).
struct ServerStatz {
  uint64_t generation = 0;
  uint64_t delta_depth = 0;
  uint64_t mutation_clock = 0;
  uint64_t remove_clock = 0;
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t overload_rejected = 0;
  uint64_t decode_errors = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_bound_seeds = 0;
  uint64_t cache_invalidations = 0;
  uint64_t cache_evictions = 0;
};
std::string StatzJson(const ServerStatz& statz);

/// True once `buffer` holds a complete HTTP request line; extracts the
/// GET path ("" for malformed lines).
bool ParseHttpGetPath(const std::string& buffer, std::string* path);
std::string HttpTextResponse(int status_code, const std::string& body);

template <typename P>
class SearchServer {
 public:
  struct Options {
    /// Worker threads of the server-owned QueryEngine.
    size_t engine_threads = 1;
    /// Admission currency: estimated distance computations a batch may
    /// admit.  0 = unlimited.
    uint64_t max_inflight_distance_budget = 0;
    /// Cap on search requests coalesced into one batch per connection;
    /// the overflow gets kUnavailable.
    size_t max_requests_per_connection = 256;
    size_t max_connections = 1024;
    /// Idle connections older than this are closed by the tick sweep.
    /// 0 = never.
    uint64_t idle_timeout_ms = 0;
    /// Perm-cache answer capacity; 0 = cache off.
    size_t perm_cache_capacity = 0;
    /// Sites sampled from the store at startup for the cache's
    /// distance permutations.
    size_t perm_cache_sites = 12;
    size_t perm_cache_prefix = 4;
    uint64_t perm_cache_ttl_seconds = 0;
    obs::MetricsRegistry* metrics = nullptr;
    /// Serve replication (handshake / snapshot chunks / WAL stream) to
    /// followers.  Effective only for durable stores — replication
    /// ships snapshot files and WAL positions, which in-memory stores
    /// do not have.
    bool enable_replication = true;
    /// Snapshot transfer chunk size.  Each chunk is one kSnapshotChunk
    /// frame, so this bounds the per-subscriber write-buffer spike and
    /// must stay well under net::kMaxPayloadSize.
    size_t replication_chunk_bytes = 256 * 1024;
    /// Reject wire Insert/Remove with kUnavailable — the replica mode:
    /// the only writer is the replication apply path, and a client
    /// write landing on a follower would fork it from its primary.
    bool read_only = false;
  };

  SearchServer(engine::LiveDatabase<P>* db, const Options& options)
      : db_(db), options_(options), engine_(options.engine_threads) {
    DP_CHECK(db_ != nullptr);
    if (options_.metrics != nullptr) {
      engine_.EnableMetrics(options_.metrics);
      obs_accepted_ = options_.metrics->GetCounter(
          "server_connections_accepted_total");
      obs_requests_ = options_.metrics->GetCounter("server_requests_total");
      obs_overload_ = options_.metrics->GetCounter(
          "server_overload_rejected_total");
      obs_decode_errors_ =
          options_.metrics->GetCounter("server_decode_errors_total");
      obs_batches_ = options_.metrics->GetCounter("server_batches_total");
      connections_gauge_handle_ = options_.metrics->RegisterCallback(
          "server_active_connections",
          [this]() { return static_cast<double>(connections_.size()); });
    }
    bounds_allowed_ = db_->index_spec().rfind("distperm", 0) != 0;
    approx_size_.store(std::max<uint64_t>(1, db_->size()),
                       std::memory_order_relaxed);
    if (options_.perm_cache_capacity > 0) {
      typename PermCache<P>::Options cache_options;
      cache_options.capacity = options_.perm_cache_capacity;
      cache_options.prefix_length = options_.perm_cache_prefix;
      cache_options.ttl_seconds = options_.perm_cache_ttl_seconds;
      cache_options.enable_bounds = bounds_allowed_;
      cache_options.metrics = options_.metrics;
      cache_ = std::make_unique<PermCache<P>>(db_->metric(), cache_options);
      SampleCacheSites();
    }
    if (options_.enable_replication && db_->durable()) {
      source_listener_ = std::make_unique<SourceListener>(this);
      engine::ReplicationSeed seed =
          db_->AttachReplicationListener(source_listener_.get());
      repl_generation_ = seed.generation;
      repl_history_ = std::move(seed.records);
      replication_enabled_ = true;
      if (options_.metrics != nullptr) {
        obs_repl_handshakes_ = options_.metrics->GetCounter(
            "replication_handshakes_total");
        obs_repl_chunks_ = options_.metrics->GetCounter(
            "replication_snapshot_chunks_total");
        obs_repl_chunk_bytes_ = options_.metrics->GetCounter(
            "replication_snapshot_bytes_total");
        obs_repl_frames_ = options_.metrics->GetCounter(
            "replication_wal_frames_total");
        repl_subscribers_gauge_handle_ = options_.metrics->RegisterCallback(
            "replication_subscribers", [this]() {
              return static_cast<double>(repl_subscriber_count_.load(
                  std::memory_order_relaxed));
            });
        repl_gauge_registered_ = true;
      }
    }
    loop_.set_tick([this]() { Tick(); });
  }

  ~SearchServer() {
    // Detach first: after this returns no writer thread is inside a
    // listener callback, so member teardown cannot race one.
    if (source_listener_ != nullptr) db_->DetachReplicationListener();
    if (options_.metrics != nullptr) {
      if (repl_gauge_registered_) {
        options_.metrics->UnregisterCallback(repl_subscribers_gauge_handle_);
      }
      options_.metrics->UnregisterCallback(connections_gauge_handle_);
    }
  }
  SearchServer(const SearchServer&) = delete;
  SearchServer& operator=(const SearchServer&) = delete;

  /// Binds the search port (0 = ephemeral; see port()).
  util::Status Start(uint16_t port) {
    auto listener = net::Listener::Bind(port);
    if (!listener.ok()) return listener.status();
    listener_ = std::move(listener).value();
    return loop_.Add(listener_->fd(), EPOLLIN,
                     [this](uint32_t) { AcceptReady(); });
  }

  /// Binds the plaintext metrics port (GET /metrics, GET /statz).
  util::Status StartMetrics(uint16_t port) {
    auto listener = net::Listener::Bind(port);
    if (!listener.ok()) return listener.status();
    metrics_listener_ = std::move(listener).value();
    return loop_.Add(metrics_listener_->fd(), EPOLLIN,
                     [this](uint32_t) { AcceptMetricsReady(); });
  }

  uint16_t port() const { return listener_ ? listener_->port() : 0; }
  uint16_t metrics_port() const {
    return metrics_listener_ ? metrics_listener_->port() : 0;
  }

  /// Blocks serving until Shutdown().
  void Run() { loop_.Run(); }

  /// Thread/signal-safe-ish graceful stop: the next tick closes the
  /// listeners, flushes connections, and stops the loop.
  void Shutdown() {
    draining_.store(true, std::memory_order_release);
    loop_.Wake();
  }

  // Test accessors (loop-thread values mirrored in relaxed atomics).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t overload_rejected() const {
    return overloads_.load(std::memory_order_relaxed);
  }
  uint64_t decode_errors() const {
    return decode_errors_.load(std::memory_order_relaxed);
  }
  uint64_t batches_executed() const {
    return batches_.load(std::memory_order_relaxed);
  }
  const PermCacheStore* cache_store() const {
    return cache_ ? &cache_->store() : nullptr;
  }

 private:
  struct BatchItem {
    index::SearchRequest<P> request;
    bool no_cache = false;
    bool rejected = false;
    std::string reject_message;
  };

  /// Evenly spaced ids over the initial snapshot; removed ids (holes)
  /// are skipped, and fewer than two surviving sites disable the cache.
  void SampleCacheSites() {
    typename engine::LiveDatabase<P>::Snapshot snapshot = db_->Pin();
    const size_t n =
        snapshot.database().size() + snapshot.delta_entries();
    if (n == 0) return;
    const size_t want =
        std::min(options_.perm_cache_sites, std::min(n, core::kMaxSites));
    std::vector<P> sites;
    sites.reserve(want);
    for (size_t i = 0; i < want; ++i) {
      util::Result<P> point = snapshot.ResolvePoint(i * n / want);
      if (point.ok()) sites.push_back(std::move(point).value());
    }
    cache_->SetSites(std::move(sites));
  }

  void AcceptReady() {
    for (;;) {
      util::Result<int> accepted = listener_->Accept();
      if (!accepted.ok()) return;
      const int fd = accepted.value();
      if (fd < 0) return;
      if (draining_.load(std::memory_order_acquire) ||
          connections_.size() + metrics_connections_.size() >=
              options_.max_connections) {
        close(fd);
        continue;
      }
      Count(&accepted_, obs_accepted_);
      connections_.emplace(fd, std::make_unique<net::Connection>(fd));
      loop_.Add(fd, EPOLLIN,
                [this, fd](uint32_t events) { ConnectionReady(fd, events); });
    }
  }

  void AcceptMetricsReady() {
    for (;;) {
      util::Result<int> accepted = metrics_listener_->Accept();
      if (!accepted.ok()) return;
      const int fd = accepted.value();
      if (fd < 0) return;
      if (draining_.load(std::memory_order_acquire)) {
        close(fd);
        continue;
      }
      metrics_connections_.emplace(fd, std::make_unique<net::Connection>(fd));
      loop_.Add(fd, EPOLLIN,
                [this, fd](uint32_t events) { MetricsReady(fd, events); });
    }
  }

  void ConnectionReady(int fd, uint32_t events) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    net::Connection& conn = *it->second;
    bool close_after = false;
    if ((events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
      const net::Connection::ReadResult read = conn.ReadReady();
      const bool keep = ProcessFrames(&conn, &close_after);
      if (!keep || read != net::Connection::ReadResult::kOpen) {
        // Answer what we parsed, then drop: flush below and close.
        close_after = true;
      }
    }
    if (!conn.Flush().ok()) {
      CloseConnection(fd);
      return;
    }
    if (close_after && !conn.has_pending_write()) {
      CloseConnection(fd);
      return;
    }
    if (close_after) closing_.emplace(fd, true);
    UpdateInterest(fd, conn);
  }

  void MetricsReady(int fd, uint32_t events) {
    auto it = metrics_connections_.find(fd);
    if (it == metrics_connections_.end()) return;
    net::Connection& conn = *it->second;
    bool respond = false;
    std::string path;
    if ((events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
      const net::Connection::ReadResult read = conn.ReadReady();
      respond = ParseHttpGetPath(
          std::string(conn.read_data(), conn.read_size()), &path);
      if (!respond && read != net::Connection::ReadResult::kOpen) {
        CloseMetricsConnection(fd);
        return;
      }
    }
    if (respond) {
      conn.Queue(MetricsResponse(path));
      closing_.emplace(fd, true);
    }
    if (!conn.Flush().ok() ||
        (closing_.count(fd) != 0 && !conn.has_pending_write())) {
      CloseMetricsConnection(fd);
      return;
    }
    UpdateInterest(fd, conn);
  }

  std::string MetricsResponse(const std::string& path) {
    if (path == "/metrics") {
      const std::string body = options_.metrics != nullptr
                                   ? options_.metrics->TextExposition()
                                   : std::string("# no metrics registry\n");
      return HttpTextResponse(200, body);
    }
    if (path == "/statz") {
      ServerStatz statz;
      statz.generation = db_->generation_number();
      statz.delta_depth = db_->delta_entries();
      statz.mutation_clock = db_->mutation_clock();
      statz.remove_clock = db_->remove_clock();
      statz.connections = connections_.size();
      statz.requests = requests_.load(std::memory_order_relaxed);
      statz.batches = batches_.load(std::memory_order_relaxed);
      statz.overload_rejected = overloads_.load(std::memory_order_relaxed);
      statz.decode_errors = decode_errors_.load(std::memory_order_relaxed);
      if (cache_) {
        const PermCacheStore& store = cache_->store();
        statz.cache_hits = store.hits();
        statz.cache_misses = store.misses();
        statz.cache_bound_seeds = store.bound_seeds();
        statz.cache_invalidations = store.invalidations();
        statz.cache_evictions = store.evictions();
      }
      return HttpTextResponse(200, StatzJson(statz));
    }
    return HttpTextResponse(404, "not found: " + path + "\n");
  }

  /// Parses every complete frame in the connection's read buffer.
  /// Returns false when the connection must close (protocol error).
  bool ProcessFrames(net::Connection* conn, bool* close_after) {
    std::vector<BatchItem> batch;
    uint64_t batch_cost = 0;
    bool keep = true;
    for (;;) {
      net::FrameView view;
      size_t frame_size = 0;
      util::Status error;
      const net::FrameParse parse = net::ParseFrame(
          reinterpret_cast<const uint8_t*>(conn->read_data()),
          conn->read_size(), &view, &frame_size, &error);
      if (parse == net::FrameParse::kIncomplete) break;
      if (parse == net::FrameParse::kError) {
        ExecuteSearchBatch(conn, &batch);
        SendError(conn, net::WireStatus::FromStatus(error));
        Count(&decode_errors_, obs_decode_errors_);
        keep = false;
        break;
      }
      const bool frame_ok = DispatchFrame(conn, view, &batch, &batch_cost);
      conn->Consume(frame_size);
      if (!frame_ok) {
        keep = false;
        break;
      }
    }
    ExecuteSearchBatch(conn, &batch);
    if (!keep) *close_after = true;
    return keep;
  }

  bool DispatchFrame(net::Connection* conn, const net::FrameView& view,
                     std::vector<BatchItem>* batch, uint64_t* batch_cost) {
    switch (view.type) {
      case net::MessageType::kPing: {
        ExecuteSearchBatch(conn, batch);
        conn->Queue(net::EncodeFrame(net::MessageType::kPong, ""));
        return true;
      }
      case net::MessageType::kSearch: {
        auto decoded = net::DecodeSearchRequest<P>(view.payload,
                                                   view.payload_size);
        if (!decoded.ok()) {
          ExecuteSearchBatch(conn, batch);
          SendError(conn, net::WireStatus::FromStatus(decoded.status()));
          Count(&decode_errors_, obs_decode_errors_);
          return false;
        }
        BatchItem item;
        item.request = std::move(decoded.value().request);
        item.no_cache = decoded.value().no_cache;
        Admit(&item, batch->size(), batch_cost);
        batch->push_back(std::move(item));
        return true;
      }
      case net::MessageType::kInsert: {
        ExecuteSearchBatch(conn, batch);
        net::WireInsertResponse response;
        if (options_.read_only) {
          response.status = net::WireStatus::Unavailable(
              "read-only replica: writes arrive via replication");
          std::string payload;
          net::EncodeInsertResponse(&payload, response);
          conn->Queue(
              net::EncodeFrame(net::MessageType::kInsertResult, payload));
          return true;
        }
        auto point = net::DecodeInsertRequest<P>(view.payload,
                                                 view.payload_size);
        if (!point.ok()) {
          response.status = net::WireStatus::FromStatus(point.status());
          Count(&decode_errors_, obs_decode_errors_);
        } else {
          util::Result<size_t> id = db_->Insert(std::move(point).value());
          if (id.ok()) {
            response.id = id.value();
          } else {
            response.status = net::WireStatus::FromStatus(id.status());
          }
        }
        std::string payload;
        net::EncodeInsertResponse(&payload, response);
        conn->Queue(
            net::EncodeFrame(net::MessageType::kInsertResult, payload));
        return true;
      }
      case net::MessageType::kRemove: {
        ExecuteSearchBatch(conn, batch);
        net::WireStatus response;
        if (options_.read_only) {
          response = net::WireStatus::Unavailable(
              "read-only replica: writes arrive via replication");
          std::string payload;
          net::EncodeWireStatus(&payload, response);
          conn->Queue(
              net::EncodeFrame(net::MessageType::kRemoveResult, payload));
          return true;
        }
        auto id = net::DecodeRemoveRequest(view.payload, view.payload_size);
        if (!id.ok()) {
          response = net::WireStatus::FromStatus(id.status());
          Count(&decode_errors_, obs_decode_errors_);
        } else {
          response = net::WireStatus::FromStatus(db_->Remove(id.value()));
        }
        std::string payload;
        net::EncodeWireStatus(&payload, response);
        conn->Queue(
            net::EncodeFrame(net::MessageType::kRemoveResult, payload));
        return true;
      }
      case net::MessageType::kCatchUpHandshake: {
        ExecuteSearchBatch(conn, batch);
        return HandleCatchUpHandshake(conn, view);
      }
      case net::MessageType::kFetchSnapshot: {
        ExecuteSearchBatch(conn, batch);
        return HandleFetchSnapshot(conn, view);
      }
      case net::MessageType::kStreamWal: {
        ExecuteSearchBatch(conn, batch);
        return HandleStreamWal(conn, view);
      }
      default: {
        ExecuteSearchBatch(conn, batch);
        SendError(conn,
                  {net::WireCode::kInvalidArgument,
                   "unexpected client frame type " +
                       std::to_string(static_cast<int>(view.type))});
        Count(&decode_errors_, obs_decode_errors_);
        return false;
      }
    }
  }

  /// Admission: per-connection batch cap, then the distance budget.
  /// The first request of a batch is always admitted (progress
  /// guarantee); after that, estimated cost must fit the budget.
  void Admit(BatchItem* item, size_t batch_size, uint64_t* batch_cost) {
    if (batch_size >= options_.max_requests_per_connection) {
      item->rejected = true;
      item->reject_message =
          "admission: per-connection request cap (" +
          std::to_string(options_.max_requests_per_connection) +
          ") exceeded";
      Count(&overloads_, obs_overload_);
      return;
    }
    const uint64_t approx = approx_size_.load(std::memory_order_relaxed);
    uint64_t estimate = approx;
    if (item->request.max_distance_computations > 0) {
      estimate = std::min<uint64_t>(
          estimate, item->request.max_distance_computations);
    }
    if (options_.max_inflight_distance_budget > 0 && batch_size > 0 &&
        *batch_cost + estimate > options_.max_inflight_distance_budget) {
      item->rejected = true;
      item->reject_message =
          "admission: distance budget exhausted (estimated " +
          std::to_string(estimate) + " over a batch budget of " +
          std::to_string(options_.max_inflight_distance_budget) + ")";
      Count(&overloads_, obs_overload_);
      return;
    }
    *batch_cost += estimate;
  }

  void ExecuteSearchBatch(net::Connection* conn,
                          std::vector<BatchItem>* batch) {
    if (batch->empty()) return;
    Count(&batches_, obs_batches_);
    // Tags first, pin second: an entry stamped with these tags only
    // serves while zero mutations landed since they were read.
    CacheTags tags;
    tags.generation = db_->generation_number();
    tags.mutation_clock = db_->mutation_clock();
    tags.remove_clock = db_->remove_clock();
    typename engine::LiveDatabase<P>::Snapshot snapshot = db_->Pin();
    approx_size_.store(
        snapshot.database().size() + snapshot.delta_entries(),
        std::memory_order_relaxed);

    const size_t count = batch->size();
    std::vector<CacheProbe> probes(count);
    std::vector<engine::QuerySpec<P>> engine_batch;
    constexpr size_t kNotRun = static_cast<size_t>(-1);
    std::vector<size_t> engine_index(count, kNotRun);
    for (size_t i = 0; i < count; ++i) {
      BatchItem& item = (*batch)[i];
      if (item.rejected) continue;
      if (cache_ && !item.no_cache) {
        probes[i] = cache_->Lookup(item.request, tags, bounds_allowed_);
        if (probes[i].hit) continue;
      }
      engine::QuerySpec<P> spec = item.request;
      if (probes[i].bound_seeded &&
          probes[i].bound < spec.initial_radius_bound) {
        spec.initial_radius_bound = probes[i].bound;
      }
      engine_index[i] = engine_batch.size();
      engine_batch.push_back(std::move(spec));
    }

    typename engine::QueryEngine<P>::BatchOutput out;
    if (!engine_batch.empty()) {
      out = db_->RunBatch(engine_, snapshot, engine_batch);
    }

    for (size_t i = 0; i < count; ++i) {
      BatchItem& item = (*batch)[i];
      net::WireSearchResponse response;
      if (item.rejected) {
        response.status = net::WireStatus::Unavailable(item.reject_message);
      } else if (probes[i].hit) {
        response = probes[i].cached;
        response.cache_hit = true;
      } else {
        const size_t j = engine_index[i];
        if (!out.statuses[j].ok()) {
          response.status = net::WireStatus::FromStatus(out.statuses[j]);
        }
        response.truncated = out.truncated[j];
        response.bound_seeded = probes[i].bound_seeded;
        response.generation = snapshot.generation_number();
        response.stats.distance_computations =
            out.per_query_distance_computations[j];
        response.results = std::move(out.results[j]);
        if (cache_ && !item.no_cache && response.status.ok()) {
          cache_->Fill(probes[i], item.request, response, tags);
        }
      }
      Count(&requests_, obs_requests_);
      std::string payload;
      net::EncodeSearchResponse(&payload, response);
      conn->Queue(
          net::EncodeFrame(net::MessageType::kSearchResult, payload));
    }
    batch->clear();
  }

  // ------------------------------------------------ replication source

  /// One event of the store's write stream, queued by SourceListener on
  /// the writer's thread and drained in order on the loop thread.
  struct ReplEvent {
    bool rotate = false;
    uint64_t generation = 0;
    uint64_t seq = 0;     // records
    std::string record;   // records
    uint64_t folded = 0;  // rotates
    std::vector<std::string> carried;  // rotates
  };

  /// The LiveDatabase tap.  Runs under the store's write mutex, so it
  /// only copies into the inbox and wakes the loop — the inbox mutex is
  /// the sole lock it takes, and the loop thread never takes the write
  /// mutex while holding the inbox mutex, so no cycle exists.
  struct SourceListener : engine::ReplicationListener {
    explicit SourceListener(SearchServer* server) : server(server) {}
    void OnRecord(uint64_t generation, uint64_t seq,
                  const std::string& record) override {
      ReplEvent event;
      event.generation = generation;
      event.seq = seq;
      event.record = record;
      server->EnqueueReplEvent(std::move(event));
    }
    void OnRotate(uint64_t new_generation, uint64_t folded,
                  std::vector<std::string> carried) override {
      ReplEvent event;
      event.rotate = true;
      event.generation = new_generation;
      event.folded = folded;
      event.carried = std::move(carried);
      server->EnqueueReplEvent(std::move(event));
    }
    SearchServer* server;
  };

  void EnqueueReplEvent(ReplEvent event) {
    {
      std::lock_guard<std::mutex> lock(repl_inbox_mutex_);
      repl_inbox_.push_back(std::move(event));
    }
    loop_.Wake();  // the loop's tick drains promptly
  }

  /// Applies queued write-stream events to the loop-thread mirror
  /// (generation + per-seq history) and pushes the frames to every
  /// subscribed replica.  Called from the tick and before handling any
  /// replication frame, so handshake answers are never stale.
  void DrainReplicationEvents() {
    if (!replication_enabled_) return;
    std::vector<ReplEvent> events;
    {
      std::lock_guard<std::mutex> lock(repl_inbox_mutex_);
      events.swap(repl_inbox_);
    }
    if (events.empty()) return;
    std::unordered_set<int> touched;
    for (ReplEvent& event : events) {
      net::WalStreamFrame frame;
      frame.generation = event.generation;
      if (event.rotate) {
        // Subscribers rerun the fold locally; the carried tail becomes
        // the new history so late joiners can resume mid-tail.
        repl_generation_ = event.generation;
        repl_history_ = std::move(event.carried);
        frame.kind = net::kWalFrameRotate;
        frame.folded = event.folded;
      } else {
        DP_CHECK(event.generation == repl_generation_ &&
                 event.seq == repl_history_.size() + 1);
        frame.kind = net::kWalFrameRecord;
        frame.seq = event.seq;
        frame.record = event.record;
        repl_history_.push_back(std::move(event.record));
      }
      if (repl_subscribers_.empty()) continue;
      std::string payload;
      net::EncodeWalStreamFrame(&payload, frame);
      const std::string encoded =
          net::EncodeFrame(net::MessageType::kWalFrame, payload);
      for (const int fd : repl_subscribers_) {
        auto it = connections_.find(fd);
        if (it == connections_.end()) continue;
        it->second->Queue(encoded);
        touched.insert(fd);
        if (obs_repl_frames_ != nullptr) obs_repl_frames_->Increment();
      }
    }
    for (const int fd : touched) {
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      if (!it->second->Flush().ok()) {
        CloseConnection(fd);
        continue;
      }
      UpdateInterest(fd, *it->second);
    }
  }

  /// Maps (and pins) snapshot-<generation>.snap.  The shared_ptr keeps
  /// the mapping alive even after a compaction unlinks the file, so an
  /// in-flight transfer finishes off the old bytes — the replica's
  /// next handshake then points it at the new generation.
  util::Result<std::shared_ptr<storage::MappedFile>> EnsureSnapshotMapped(
      uint64_t generation) {
    if (repl_snapshot_map_ != nullptr && repl_snapshot_gen_ == generation) {
      return repl_snapshot_map_;
    }
    auto mapped = db_->env()->MapFile(
        db_->wal_dir() + "/" + engine::SnapshotFileName(generation));
    if (!mapped.ok()) return mapped.status();
    repl_snapshot_map_ = std::move(mapped).value();
    repl_snapshot_gen_ = generation;
    return repl_snapshot_map_;
  }

  bool HandleCatchUpHandshake(net::Connection* conn,
                              const net::FrameView& view) {
    DrainReplicationEvents();
    auto decoded =
        net::DecodeCatchUpRequest(view.payload, view.payload_size);
    if (!decoded.ok()) {
      SendError(conn, net::WireStatus::FromStatus(decoded.status()));
      Count(&decode_errors_, obs_decode_errors_);
      return false;
    }
    net::CatchUpResponse response;
    if (!replication_enabled_) {
      response.status = {
          net::WireCode::kUnimplemented,
          "replication: not served here (in-memory store or disabled)"};
    } else {
      const net::CatchUpRequest& request = decoded.value();
      if (request.point_kind != storage::PointCodec<P>::kName ||
          request.spec != db_->index_spec() ||
          request.seed != db_->seed() ||
          request.shard_count != db_->shard_count()) {
        // Determinism only holds for identical build parameters, and
        // replication leans on it — refuse a mismatched follower.
        response.status = {
            net::WireCode::kInvalidArgument,
            "replication: identity mismatch (replica must use the "
            "primary's point kind, spec, seed, and shard count)"};
      } else {
        response.generation = repl_generation_;
        response.next_seq = repl_history_.size() + 1;
        const bool in_history =
            request.generation == repl_generation_ &&
            request.next_seq >= 1 &&
            request.next_seq <= repl_history_.size() + 1;
        if (in_history) {
          response.action = net::CatchUpAction::kStreamWal;
        } else {
          response.action = net::CatchUpAction::kFetchSnapshot;
          auto mapped = EnsureSnapshotMapped(repl_generation_);
          if (!mapped.ok()) {
            response.status = net::WireStatus::FromStatus(mapped.status());
          } else {
            response.snapshot_bytes = mapped.value()->size();
          }
        }
      }
    }
    if (obs_repl_handshakes_ != nullptr) obs_repl_handshakes_->Increment();
    std::string payload;
    net::EncodeCatchUpResponse(&payload, response);
    conn->Queue(
        net::EncodeFrame(net::MessageType::kCatchUpHandshake, payload));
    return true;
  }

  bool HandleFetchSnapshot(net::Connection* conn,
                           const net::FrameView& view) {
    DrainReplicationEvents();
    auto decoded =
        net::DecodeFetchSnapshotRequest(view.payload, view.payload_size);
    if (!decoded.ok()) {
      SendError(conn, net::WireStatus::FromStatus(decoded.status()));
      Count(&decode_errors_, obs_decode_errors_);
      return false;
    }
    net::SnapshotChunk chunk;
    chunk.generation = decoded.value().generation;
    if (!replication_enabled_) {
      chunk.status = {
          net::WireCode::kUnimplemented,
          "replication: not served here (in-memory store or disabled)"};
    } else {
      // An error status (e.g. the generation rotated away before the
      // handshake pinned it) rides back in the chunk; the replica
      // re-handshakes and fetches the current generation instead.
      auto mapped = EnsureSnapshotMapped(decoded.value().generation);
      if (!mapped.ok()) {
        chunk.status = net::WireStatus::FromStatus(mapped.status());
      } else {
        const storage::MappedFile& file = *mapped.value();
        const uint64_t offset = decoded.value().offset;
        chunk.total_bytes = file.size();
        chunk.offset = offset;
        if (offset > file.size()) {
          chunk.status = {net::WireCode::kInvalidArgument,
                          "replication: offset past end of snapshot"};
        } else {
          const size_t n = static_cast<size_t>(std::min<uint64_t>(
              options_.replication_chunk_bytes, file.size() - offset));
          chunk.data.assign(
              reinterpret_cast<const char*>(file.data()) + offset, n);
          chunk.crc = storage::Crc32c(chunk.data.data(), n);
          chunk.last = offset + n == file.size();
          if (obs_repl_chunks_ != nullptr) obs_repl_chunks_->Increment();
          if (obs_repl_chunk_bytes_ != nullptr) {
            obs_repl_chunk_bytes_->Add(n);
          }
        }
      }
    }
    std::string payload;
    net::EncodeSnapshotChunk(&payload, chunk);
    conn->Queue(
        net::EncodeFrame(net::MessageType::kSnapshotChunk, payload));
    return true;
  }

  bool HandleStreamWal(net::Connection* conn, const net::FrameView& view) {
    DrainReplicationEvents();
    auto decoded =
        net::DecodeStreamWalRequest(view.payload, view.payload_size);
    if (!decoded.ok()) {
      SendError(conn, net::WireStatus::FromStatus(decoded.status()));
      Count(&decode_errors_, obs_decode_errors_);
      return false;
    }
    if (!replication_enabled_) {
      SendError(conn, {
          net::WireCode::kUnimplemented,
          "replication: not served here (in-memory store or disabled)"});
      return false;
    }
    const net::StreamWalRequest& request = decoded.value();
    if (request.generation != repl_generation_ || request.next_seq < 1 ||
        request.next_seq > repl_history_.size() + 1) {
      // Position gone (compacted past it, or a stale generation): the
      // replica re-handshakes, which routes it to a snapshot fetch.
      SendError(conn,
                {net::WireCode::kNotFound,
                 "replication: position (generation " +
                     std::to_string(request.generation) + ", seq " +
                     std::to_string(request.next_seq) +
                     ") is gone; handshake again"});
      return false;
    }
    // Replay the retained history from the asked seq, then subscribe:
    // everything later arrives via DrainReplicationEvents in commit
    // order, so the stream has no gap and no duplicate.
    for (size_t i = request.next_seq - 1; i < repl_history_.size(); ++i) {
      net::WalStreamFrame frame;
      frame.kind = net::kWalFrameRecord;
      frame.generation = repl_generation_;
      frame.seq = i + 1;
      frame.record = repl_history_[i];
      std::string payload;
      net::EncodeWalStreamFrame(&payload, frame);
      conn->Queue(net::EncodeFrame(net::MessageType::kWalFrame, payload));
      if (obs_repl_frames_ != nullptr) obs_repl_frames_->Increment();
    }
    repl_subscribers_.insert(conn->fd());
    repl_subscriber_count_.store(repl_subscribers_.size(),
                                 std::memory_order_relaxed);
    return true;
  }

  void SendError(net::Connection* conn, const net::WireStatus& status) {
    std::string payload;
    net::EncodeWireStatus(&payload, status);
    conn->Queue(net::EncodeFrame(net::MessageType::kError, payload));
  }

  void UpdateInterest(int fd, const net::Connection& conn) {
    loop_.Modify(fd, conn.has_pending_write() ? (EPOLLIN | EPOLLOUT)
                                              : EPOLLIN);
  }

  void CloseConnection(int fd) {
    loop_.Remove(fd);
    closing_.erase(fd);
    if (repl_subscribers_.erase(fd) != 0) {
      repl_subscriber_count_.store(repl_subscribers_.size(),
                                   std::memory_order_relaxed);
    }
    connections_.erase(fd);  // Connection dtor closes the fd.
  }

  void CloseMetricsConnection(int fd) {
    loop_.Remove(fd);
    closing_.erase(fd);
    metrics_connections_.erase(fd);
  }

  void Tick() {
    DrainReplicationEvents();
    if (draining_.load(std::memory_order_acquire)) {
      if (listener_) {
        loop_.Remove(listener_->fd());
        listener_.reset();
      }
      if (metrics_listener_) {
        loop_.Remove(metrics_listener_->fd());
        metrics_listener_.reset();
      }
      // Everything parsed has been answered inline; flush best-effort
      // and drop the rest.
      for (auto& entry : connections_) entry.second->Flush();
      for (auto& entry : metrics_connections_) entry.second->Flush();
      while (!connections_.empty()) {
        CloseConnection(connections_.begin()->first);
      }
      while (!metrics_connections_.empty()) {
        CloseMetricsConnection(metrics_connections_.begin()->first);
      }
      loop_.Stop();
      return;
    }
    if (options_.idle_timeout_ms == 0) return;
    const auto now = std::chrono::steady_clock::now();
    const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
    std::vector<int> idle;
    for (const auto& entry : connections_) {
      if (now - entry.second->last_activity() >= limit) {
        idle.push_back(entry.first);
      }
    }
    for (const int fd : idle) CloseConnection(fd);
  }

  void Count(std::atomic<uint64_t>* mirror, obs::Counter* counter) {
    mirror->fetch_add(1, std::memory_order_relaxed);
    if (counter != nullptr) counter->Increment();
  }

  engine::LiveDatabase<P>* db_;
  Options options_;
  engine::QueryEngine<P> engine_;
  net::EventLoop loop_;
  std::unique_ptr<net::Listener> listener_;
  std::unique_ptr<net::Listener> metrics_listener_;
  std::unordered_map<int, std::unique_ptr<net::Connection>> connections_;
  std::unordered_map<int, std::unique_ptr<net::Connection>>
      metrics_connections_;
  std::unordered_map<int, bool> closing_;
  std::unique_ptr<PermCache<P>> cache_;
  bool bounds_allowed_ = true;
  std::atomic<bool> draining_{false};
  /// Approximate live size, refreshed from each batch's snapshot; the
  /// admission estimator's notion of "one full scan".
  std::atomic<uint64_t> approx_size_{1};

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> overloads_{0};
  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<uint64_t> batches_{0};

  obs::Counter* obs_accepted_ = nullptr;
  obs::Counter* obs_requests_ = nullptr;
  obs::Counter* obs_overload_ = nullptr;
  obs::Counter* obs_decode_errors_ = nullptr;
  obs::Counter* obs_batches_ = nullptr;
  uint64_t connections_gauge_handle_ = 0;

  /// Replication source state.  The inbox is the writer->loop handoff
  /// (under repl_inbox_mutex_); everything else is loop-thread-only
  /// except the subscriber-count mirror the gauge reads.
  bool replication_enabled_ = false;
  std::unique_ptr<SourceListener> source_listener_;
  std::mutex repl_inbox_mutex_;
  std::vector<ReplEvent> repl_inbox_;
  uint64_t repl_generation_ = 0;
  std::vector<std::string> repl_history_;  ///< seq i+1 = history[i]
  std::unordered_set<int> repl_subscribers_;
  std::shared_ptr<storage::MappedFile> repl_snapshot_map_;
  uint64_t repl_snapshot_gen_ = 0;
  std::atomic<uint64_t> repl_subscriber_count_{0};
  obs::Counter* obs_repl_handshakes_ = nullptr;
  obs::Counter* obs_repl_chunks_ = nullptr;
  obs::Counter* obs_repl_chunk_bytes_ = nullptr;
  obs::Counter* obs_repl_frames_ = nullptr;
  uint64_t repl_subscribers_gauge_handle_ = 0;
  bool repl_gauge_registered_ = false;
};

}  // namespace server
}  // namespace distperm

#endif  // DISTPERM_SERVER_SEARCH_SERVER_H_
