// Non-blocking TCP listener.

#ifndef DISTPERM_NET_LISTENER_H_
#define DISTPERM_NET_LISTENER_H_

#include <cstdint>
#include <memory>

#include "util/status.h"

namespace distperm {
namespace net {

class Listener {
 public:
  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port — read it back
  /// with port()) and listens, non-blocking, SO_REUSEADDR.
  static util::Result<std::unique_ptr<Listener>> Bind(uint16_t port);

  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

  /// Accepts one pending connection as a non-blocking, TCP_NODELAY
  /// socket.  Returns -1 (not an error) when none is pending.
  util::Result<int> Accept();

 private:
  Listener(int fd, uint16_t port) : fd_(fd), port_(port) {}
  int fd_;
  uint16_t port_;
};

}  // namespace net
}  // namespace distperm

#endif  // DISTPERM_NET_LISTENER_H_
