// Runtime index selection demo: build any registered index over a
// random vector database by spec string, serve a batch of
// SearchRequests through the engine, and report results, cost, and
// truncation.  CI runs this binary once per registry entry, so a
// factory that stops building (or an index that stops answering) fails
// the pipeline rather than a user.
//
//   ./example_search_cli --list
//   ./example_search_cli --index=laesa:k=16 [--points=2000] [--dim=4]
//       [--shards=2] [--threads=2] [--queries=8]
//       [--mode=knn|range|knn-within-radius] [--k=5] [--radius=0.25]
//       [--budget=0] [--fraction=0] [--seed=42] [--trace]
//
// --budget caps the metric evaluations per (query, shard) task
// (truncated queries are flagged); --fraction overrides the distperm
// verification fraction per request; --trace prints each query's
// per-shard span table (timing, distances, pruning bound) after the
// results — tracing observes only, so results and counts are
// unchanged.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "dataset/vector_gen.h"
#include "engine/batch_stats.h"
#include "engine/query.h"
#include "engine/query_engine.h"
#include "engine/sharded_database.h"
#include "index/linear_scan.h"
#include "index/registry.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::engine::QueryEngine;
using distperm::engine::QuerySpec;
using distperm::engine::ShardedDatabase;
using distperm::index::Registry;
using distperm::index::SearchMode;
using distperm::metric::Vector;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  if (flags.value().GetBool("list", false)) {
    for (const std::string& name : Registry<Vector>::Global().Names()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  const std::string spec = flags.value().GetString("index", "linear-scan");
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 2000));
  const size_t dim = static_cast<size_t>(flags.value().GetInt("dim", 4));
  const size_t shards =
      static_cast<size_t>(flags.value().GetInt("shards", 2));
  const size_t threads =
      static_cast<size_t>(flags.value().GetInt("threads", 2));
  const size_t queries =
      static_cast<size_t>(flags.value().GetInt("queries", 8));
  const std::string mode_name =
      flags.value().GetString("mode", "knn");
  const size_t k = static_cast<size_t>(flags.value().GetInt("k", 5));
  const double radius = flags.value().GetDouble("radius", 0.25);
  const uint64_t budget =
      static_cast<uint64_t>(flags.value().GetInt("budget", 0));
  const double fraction = flags.value().GetDouble("fraction", 0.0);
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 42));
  const bool trace = flags.value().GetBool("trace", false);

  SearchMode mode;
  if (mode_name == "knn") {
    mode = SearchMode::kKnn;
  } else if (mode_name == "range") {
    mode = SearchMode::kRange;
  } else if (mode_name == "knn-within-radius") {
    mode = SearchMode::kKnnWithinRadius;
  } else {
    std::cerr << "unknown --mode '" << mode_name
              << "' (knn | range | knn-within-radius)\n";
    return 1;
  }

  distperm::util::Rng rng(seed);
  auto data = distperm::dataset::UniformCube(points, dim, &rng);
  distperm::metric::Metric<Vector> l2(distperm::metric::LpMetric::L2());

  auto db = ShardedDatabase<Vector>::BuildFromRegistry(data, l2, shards,
                                                       spec, seed);
  if (!db.ok()) {
    std::cerr << "failed to build '" << spec << "': " << db.status()
              << "\n";
    return 1;
  }
  std::cout << "index " << db.value().index_name() << " (spec '" << spec
            << "'): " << db.value().size() << " points, "
            << db.value().shard_count() << " shards, "
            << db.value().build_distance_computations()
            << " build distances, "
            << db.value().IndexBits() / 8 << " bytes auxiliary storage\n";

  std::vector<QuerySpec<Vector>> batch;
  for (size_t q = 0; q < queries; ++q) {
    Vector point(dim);
    for (auto& coordinate : point) coordinate = rng.NextDouble();
    QuerySpec<Vector> request =
        mode == SearchMode::kKnn
            ? QuerySpec<Vector>::Knn(point, k)
            : mode == SearchMode::kRange
                  ? QuerySpec<Vector>::Range(point, radius)
                  : QuerySpec<Vector>::KnnWithinRadius(point, k, radius);
    request.WithDistanceBudget(budget)
        .WithCandidateFraction(fraction)
        .WithTrace(trace);
    batch.push_back(std::move(request));
  }

  QueryEngine<Vector> engine(&db.value(), threads);
  auto out = engine.RunBatch(batch);

  distperm::util::TablePrinter table;
  table.SetHeader({"query", "status", "results", "nearest", "distances",
                   "truncated"});
  bool all_ok = true;
  for (size_t q = 0; q < batch.size(); ++q) {
    all_ok = all_ok && out.statuses[q].ok();
    std::string nearest =
        out.results[q].empty()
            ? "-"
            : "#" + std::to_string(out.results[q].front().id);
    table.AddRow({std::to_string(q), out.statuses[q].ToString(),
                  std::to_string(out.results[q].size()), nearest,
                  std::to_string(out.per_query_distance_computations[q]),
                  out.truncated[q] ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::cout << "batch: " << out.stats.distance_computations
            << " metric evaluations over " << out.stats.wall_seconds * 1e3
            << " ms on " << out.stats.thread_count << " threads\n";

  if (trace) {
    const auto us = [](double seconds) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.1f", seconds * 1e6);
      return std::string(buffer);
    };
    const auto bound = [](double b) {
      if (std::isinf(b)) return std::string("inf");
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.4f", b);
      return std::string(buffer);
    };
    std::cout << "\nper-shard spans (times relative to batch start; span "
                 "distances sum to each query's total):\n";
    distperm::util::TablePrinter spans;
    spans.SetHeader({"query", "span", "start us", "stop us", "distances",
                     "bound in", "bound out"});
    for (size_t q = 0; q < batch.size(); ++q) {
      for (const auto& span : out.traces[q].spans) {
        spans.AddRow({std::to_string(q),
                      span.delta ? "delta"
                                 : "shard " + std::to_string(span.shard),
                      us(span.start_seconds), us(span.stop_seconds),
                      std::to_string(span.distance_computations),
                      bound(span.bound_entry), bound(span.bound_exit)});
      }
    }
    spans.Print(std::cout);
  }

  // Recall vs the exact linear scan (1.000 for exact indexes when no
  // budget truncates the search).
  distperm::index::LinearScanIndex<Vector> scan(data, l2);
  std::vector<std::vector<distperm::index::SearchResult>> truth;
  for (const auto& request : batch) {
    QuerySpec<Vector> reference = request;
    reference.WithDistanceBudget(0).WithCandidateFraction(0.0);
    auto response = scan.Search(reference);
    if (!response.status.ok()) {
      std::cerr << "reference scan rejected request: " << response.status
                << "\n";
      return 1;
    }
    truth.push_back(std::move(response.results));
  }
  std::cout << "recall vs exact linear scan: "
            << distperm::engine::AverageRecall(out.results, truth) << "\n";

  if (!all_ok) {
    std::cerr << "some queries failed\n";
    return 1;
  }
  return 0;
}
