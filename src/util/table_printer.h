// Aligned plain-text table rendering for the benchmark harnesses.
//
// Every reproduction binary prints tables in the same layout as the paper
// (Table 1, Table 2, Table 3) so that side-by-side comparison is easy.

#ifndef DISTPERM_UTIL_TABLE_PRINTER_H_
#define DISTPERM_UTIL_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace distperm {
namespace util {

/// Accumulates rows of string cells and renders them with columns padded
/// to the widest cell.  Numeric-looking cells are right-aligned, others
/// left-aligned.
class TablePrinter {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row.  Rows may have differing lengths; short rows are
  /// padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Convenience: appends a row built from streamable values.
  template <typename... Args>
  void AddRowValues(const Args&... args) {
    AddRow({Format(args)...});
  }

  /// Renders the table to `os` with a rule under the header.
  void Print(std::ostream& os) const;

  /// Renders the table to a string.
  std::string ToString() const;

  /// Number of data rows added.
  size_t row_count() const { return rows_.size(); }

  /// Formats a value for a cell (doubles with trailing-zero trimming).
  static std::string Format(const std::string& v) { return v; }
  static std::string Format(const char* v) { return v; }
  static std::string Format(double v);
  template <typename T>
  static std::string Format(const T& v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace util
}  // namespace distperm

#endif  // DISTPERM_UTIL_TABLE_PRINTER_H_
