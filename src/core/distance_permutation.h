// Distance permutations (paper Section 1).
//
// Given k sites x_1..x_k in a metric space and a point y, the distance
// permutation Pi_y is the unique permutation of {1..k} sorting the site
// indices by increasing distance from y, breaking distance ties by
// increasing site index.  Internally sites are 0-based: perm[r] is the
// index of the (r+1)-th closest site.

#ifndef DISTPERM_CORE_DISTANCE_PERMUTATION_H_
#define DISTPERM_CORE_DISTANCE_PERMUTATION_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "metric/metric.h"
#include "util/status.h"

namespace distperm {
namespace core {

/// A permutation of {0..k-1}; perm[rank] = site index at that rank.
/// uint8_t limits k to 256 sites, far beyond any published permutation
/// index configuration (the paper evaluates k <= 12).
using Permutation = std::vector<uint8_t>;

/// Maximum supported number of sites.
inline constexpr size_t kMaxSites = 256;

/// True iff `perm` is a permutation of {0..perm.size()-1}.
bool IsPermutation(const Permutation& perm);

/// Computes the distance permutation from a vector of site distances
/// (distances[i] = d(x_i, y)).  Ties break toward the lower site index,
/// exactly as in the paper's definition.
Permutation PermutationFromDistances(const std::vector<double>& distances);

/// Inverse of a permutation: result[site] = rank of that site.
Permutation InvertPermutation(const Permutation& perm);

/// Computes the distance permutation of `point` with respect to `sites`
/// under `metric`, evaluating the metric k times.
template <typename P>
Permutation ComputeDistancePermutation(const std::vector<P>& sites,
                                       const metric::Metric<P>& metric,
                                       const P& point) {
  DP_CHECK(sites.size() <= kMaxSites);
  std::vector<double> distances(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    distances[i] = metric(sites[i], point);
  }
  return PermutationFromDistances(distances);
}

/// Computes only the first `prefix_length` entries of the distance
/// permutation (the "closest `prefix_length` sites"), as used by
/// truncated permutation indexes.
Permutation PermutationPrefixFromDistances(
    const std::vector<double>& distances, size_t prefix_length);

}  // namespace core
}  // namespace distperm

#endif  // DISTPERM_CORE_DISTANCE_PERMUTATION_H_
