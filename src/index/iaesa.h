// iAESA (Figueroa, Chavez, Navarro & Paredes 2006): AESA with
// permutation-guided pivot selection.
//
// iAESA keeps AESA's full distance matrix and elimination rule, but picks
// the next candidate to measure by similarity between the candidate's
// stored distance permutation (with respect to a fixed set of sites) and
// the query's permutation, rather than by the smallest lower bound.
// Permutation similarity is a better predictor of actual proximity, so
// good pivots are found sooner and elimination is faster.  The paper
// notes the improved pivot selection is separable from the storage
// question this library studies.

#ifndef DISTPERM_INDEX_IAESA_H_
#define DISTPERM_INDEX_IAESA_H_

#include <limits>
#include <string>
#include <vector>

#include "core/distance_permutation.h"
#include "core/perm_metrics.h"
#include "index/aesa.h"
#include "index/pivot_select.h"
#include "util/rng.h"

namespace distperm {
namespace index {

/// AESA with footrule-ordered candidate selection.
template <typename P>
class IaesaIndex : public AesaIndex<P> {
 public:
  using SearchIndex<P>::data_;

  /// Builds the full matrix plus per-point permutations over
  /// `site_count` random sites.
  IaesaIndex(std::vector<P> data, metric::Metric<P> metric,
             size_t site_count, util::Rng* rng)
      : AesaIndex<P>(std::move(data), std::move(metric)) {
    DP_CHECK(site_count >= 1 && site_count <= core::kMaxRank64Sites);
    std::vector<size_t> site_ids = RandomPivots(data_, site_count, rng);
    sites_.reserve(site_count);
    for (size_t id : site_ids) sites_.push_back(data_[id]);
    permutations_.reserve(data_.size());
    std::vector<double> distances(site_count);
    for (const P& point : data_) {
      for (size_t j = 0; j < site_count; ++j) {
        distances[j] = this->BuildDist(sites_[j], point);
      }
      permutations_.push_back(core::PermutationFromDistances(distances));
    }
  }

  std::string name() const override { return "iaesa"; }

  std::vector<SearchResult> RangeQuery(const P& query,
                                       double radius) override {
    PrepareQueryPermutation(query);
    return AesaIndex<P>::RangeQuery(query, radius);
  }

  std::vector<SearchResult> KnnQuery(const P& query, size_t k) override {
    PrepareQueryPermutation(query);
    return AesaIndex<P>::KnnQuery(query, k);
  }

 protected:
  /// Picks the live candidate whose stored permutation is footrule-
  /// closest to the query's (ties toward smaller lower bound).
  size_t PickNextCandidate(const std::vector<double>& lower,
                           const std::vector<bool>& dead,
                           const P& query) override {
    (void)query;
    const size_t n = data_.size();
    size_t best = n;
    int best_footrule = std::numeric_limits<int>::max();
    double best_bound = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (dead[i]) continue;
      int f = footrule_cache_[i];
      if (f < best_footrule ||
          (f == best_footrule && lower[i] < best_bound)) {
        best_footrule = f;
        best_bound = lower[i];
        best = i;
      }
    }
    return best;
  }

 private:
  void PrepareQueryPermutation(const P& query) {
    const size_t k = sites_.size();
    std::vector<double> distances(k);
    for (size_t j = 0; j < k; ++j) {
      distances[j] = this->QueryDist(sites_[j], query);
    }
    core::Permutation query_perm =
        core::PermutationFromDistances(distances);
    footrule_cache_.resize(data_.size());
    for (size_t i = 0; i < data_.size(); ++i) {
      footrule_cache_[i] =
          core::SpearmanFootrule(query_perm, permutations_[i]);
    }
  }

  std::vector<P> sites_;
  std::vector<core::Permutation> permutations_;
  std::vector<int> footrule_cache_;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_IAESA_H_
