#include "metric/lp.h"

#include <cmath>
#include <cstdio>

#include "util/status.h"

namespace distperm {
namespace metric {

using util::Status;

double L1Distance(const Vector& a, const Vector& b) {
  DP_CHECK_MSG(a.size() == b.size(), "dimension mismatch");
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

double L2DistanceSquared(const Vector& a, const Vector& b) {
  DP_CHECK_MSG(a.size() == b.size(), "dimension mismatch");
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

double L2Distance(const Vector& a, const Vector& b) {
  return std::sqrt(L2DistanceSquared(a, b));
}

double LInfDistance(const Vector& a, const Vector& b) {
  DP_CHECK_MSG(a.size() == b.size(), "dimension mismatch");
  double best = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = std::fabs(a[i] - b[i]);
    if (diff > best) best = diff;
  }
  return best;
}

double LpDistance(const Vector& a, const Vector& b, double p) {
  DP_CHECK_MSG(p >= 1.0, "Lp requires p >= 1");
  if (p == 1.0) return L1Distance(a, b);
  if (p == 2.0) return L2Distance(a, b);
  if (std::isinf(p)) return LInfDistance(a, b);
  DP_CHECK_MSG(a.size() == b.size(), "dimension mismatch");
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::pow(std::fabs(a[i] - b[i]), p);
  }
  return std::pow(sum, 1.0 / p);
}

LpMetric::LpMetric(double p) : p_(p) {
  DP_CHECK_MSG(p >= 1.0, "Lp requires p >= 1");
  if (p == 1.0) {
    name_ = "L1";
  } else if (p == 2.0) {
    name_ = "L2";
  } else if (std::isinf(p)) {
    name_ = "Linf";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "L%g", p);
    name_ = buf;
  }
}

double LpMetric::operator()(const Vector& a, const Vector& b) const {
  return LpDistance(a, b, p_);
}

}  // namespace metric
}  // namespace distperm
