// Status / Result error-handling primitives.
//
// Following the idiom used by Arrow and RocksDB, the library does not throw
// exceptions across public API boundaries.  Fallible operations return a
// Status (or a Result<T> carrying a value on success), and callers decide
// how to react.  Internal invariant violations use DP_CHECK, which aborts
// with a diagnostic: an invariant failure is a bug, not an error condition.

#ifndef DISTPERM_UTIL_STATUS_H_
#define DISTPERM_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace distperm {
namespace util {

/// Machine-readable category for a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kIoError = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kDeadlineExceeded = 7,
};

/// Human-readable name of a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an explanatory message.
///
/// A default-constructed Status is OK.  Statuses are cheap to copy (the
/// message is only populated on failure paths).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns the OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with the given message.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns an OutOfRange status with the given message.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Returns a NotFound status with the given message.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Returns an IoError status with the given message.
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  /// Returns an Unimplemented status with the given message.
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  /// Returns an Internal status with the given message.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Returns a DeadlineExceeded status with the given message (an
  /// operation with a deadline — a socket read, a connect — timed out;
  /// distinguishable from kIoError so callers can retry or keep-alive).
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The failure message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or a failure Status.
///
/// Accessing the value of a failed Result is a fatal error; check ok()
/// first (or use ValueOr for a fallback).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT: implicit by design
  /// Constructs a failed result from a non-OK status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      std::cerr << "Result constructed from OK status without a value\n";
      std::abort();
    }
  }

  /// True iff the result carries a value.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure status, or OK if the result carries a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The carried value.  Fatal if !ok().
  const T& value() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  /// The carried value (mutable).  Fatal if !ok().
  T& value() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  /// Moves the carried value out.  Fatal if !ok().
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  /// Returns the carried value, or `fallback` if the result failed.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result::value() on failed result: "
                << std::get<Status>(repr_).ToString() << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

/// Aborts with a diagnostic if `cond` is false.  For invariants, not for
/// recoverable errors.
#define DP_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::distperm::util::internal::CheckFailed(__FILE__, __LINE__,     \
                                              #cond, "");             \
    }                                                                 \
  } while (0)

/// DP_CHECK with an additional streamed message.
#define DP_CHECK_MSG(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream dp_check_oss_;                               \
      dp_check_oss_ << msg;                                           \
      ::distperm::util::internal::CheckFailed(__FILE__, __LINE__,     \
                                              #cond,                  \
                                              dp_check_oss_.str());   \
    }                                                                 \
  } while (0)

/// Propagates a non-OK Status from the current function.
#define DP_RETURN_IF_ERROR(expr)                       \
  do {                                                 \
    ::distperm::util::Status dp_status_ = (expr);      \
    if (!dp_status_.ok()) return dp_status_;           \
  } while (0)

}  // namespace util
}  // namespace distperm

#endif  // DISTPERM_UTIL_STATUS_H_
