// Replication end to end on loopback: a replica bootstrapped from the
// primary's snapshot must tail the WAL stream into a bit-identical
// store, survive primary rotations mid-stream, resume a severed
// snapshot transfer from its partial file, keep serving (stale) reads
// while the primary is down, and reconnect-and-resume from its own
// next_seq without re-fetching the snapshot.  The satellites ride
// along: the replication codecs reject every truncation, the
// WalFrameReader decodes a byte-at-a-time stream exactly like a whole
// file, client socket deadlines surface as kDeadlineExceeded without
// corrupting a mid-frame buffer, read-only replicas refuse wire
// writes, and the replica_*/replication_* series land in the
// Prometheus exposition with exact counts.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dataset/vector_gen.h"
#include "engine/generation_store.h"
#include "engine/live_database.h"
#include "engine/query_engine.h"
#include "metric/lp.h"
#include "net/client.h"
#include "net/fault_proxy.h"
#include "net/listener.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "server/replica_server.h"
#include "server/replication_client.h"
#include "server/search_server.h"
#include "storage/coding.h"
#include "storage/crc32.h"
#include "storage/env.h"
#include "storage/wal.h"
#include "util/rng.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace distperm {
namespace server {
namespace {

using engine::LiveDatabase;
using engine::QueryEngine;
using index::SearchRequest;
using metric::Vector;
using net::Client;
using net::WireCode;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

constexpr uint64_t kSeed = 20260809;
constexpr size_t kShards = 2;
const char kSpec[] = "vp-tree";

std::string FreshDir(const std::string& name) {
  storage::Env* env = storage::Env::Default();
  const std::string dir = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(env->CreateDir(dir).ok());
  if (auto listing = env->ListDir(dir); listing.ok()) {
    for (const std::string& file : listing.value()) {
      env->DeleteFile(dir + "/" + file);
    }
  }
  return dir;
}

/// A durable primary whose SearchServer can be stopped and restarted
/// on the same port while the store (and its WAL history) stays up —
/// the shape every reconnect test needs.
struct Primary {
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<LiveDatabase<Vector>> db;
  std::unique_ptr<SearchServer<Vector>> server;
  std::thread thread;
  uint16_t port = 0;

  static std::unique_ptr<Primary> Start(
      const std::string& dir, size_t n, size_t dim,
      SearchServer<Vector>::Options options = {}) {
    auto primary = std::make_unique<Primary>();
    primary->metrics = std::make_unique<obs::MetricsRegistry>("primary");
    util::Rng rng(kSeed);
    std::vector<Vector> data = dataset::UniformCube(n, dim, &rng);
    const std::string live_spec =
        std::string(kSpec) + ":wal_dir=" + dir;
    auto opened = LiveDatabase<Vector>::Open(std::move(data), L2(),
                                             kShards, live_spec, kSeed);
    EXPECT_TRUE(opened.ok()) << opened.status();
    if (!opened.ok()) return nullptr;
    primary->db = std::move(opened).value();
    if (!primary->StartServer(0, options)) return nullptr;
    return primary;
  }

  bool StartServer(uint16_t port_hint,
                   SearchServer<Vector>::Options options = {}) {
    options.metrics = metrics.get();
    server = std::make_unique<SearchServer<Vector>>(db.get(), options);
    auto started = server->Start(port_hint);
    EXPECT_TRUE(started.ok()) << started;
    if (!started.ok()) return false;
    port = server->port();
    SearchServer<Vector>* raw = server.get();
    thread = std::thread([raw]() { raw->Run(); });
    return true;
  }

  /// Stops serving; the db (and the port number) survive for a
  /// restart.
  void StopServer() {
    if (!server) return;
    server->Shutdown();
    thread.join();
    server.reset();
  }

  ~Primary() {
    StopServer();
    server.reset();
    db.reset();
  }
};

ReplicaServer<Vector>::Options ReplicaOptions(
    const std::string& dir, uint16_t primary_port,
    obs::MetricsRegistry* metrics) {
  ReplicaServer<Vector>::Options options;
  options.dir = dir;
  options.index_spec = kSpec;
  options.seed = kSeed;
  options.shard_count = kShards;
  options.metrics = metrics;
  options.replication.primary_port = primary_port;
  // Short enough that Stop() joins fast and keepalive pings flow
  // during quiet waits; pings answered promptly never strike out, so
  // reconnect counts stay exact.
  options.replication.idle_timeout_ms = 250;
  options.replication.backoff_initial_ms = 20;
  options.replication.backoff_max_ms = 200;
  return options;
}

/// Spins until `done` or the deadline; returns whether `done` held.
bool WaitFor(const std::function<bool()>& done, int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

void ExpectStoresIdentical(LiveDatabase<Vector>& a, LiveDatabase<Vector>& b,
                           const std::string& context) {
  EXPECT_EQ(a.generation_number(), b.generation_number()) << context;
  EXPECT_EQ(a.delta_entries(), b.delta_entries()) << context;
  const std::vector<Vector> left = a.Pin().Materialize();
  const std::vector<Vector> right = b.Pin().Materialize();
  ASSERT_EQ(left.size(), right.size()) << context;
  for (size_t i = 0; i < left.size(); ++i) {
    ASSERT_EQ(left[i], right[i]) << context << " point " << i;
  }
  // Replaying the primary's fold must make the replica take the exact
  // same incremental-compaction decisions: the same per-shard slicing
  // AND the same rebuild-vs-share choice for every shard.  Shard sizes
  // pin the slicing; epochs pin which generation last rebuilt each
  // shard — a replica that rebuilt a shard the primary shared (or vice
  // versa) diverges here even though the points all match.
  const auto a_pin = a.Pin();
  const auto b_pin = b.Pin();
  EXPECT_EQ(a_pin.database().ShardSizes(), b_pin.database().ShardSizes())
      << context;
  EXPECT_EQ(a_pin.generation()->epochs(), b_pin.generation()->epochs())
      << context;
}

// -------------------------------------------------------------- codecs

TEST(Replication, CodecsRoundTripAndSurviveTruncation) {
  net::CatchUpRequest request;
  request.point_kind = "vector_f64";
  request.spec = "distperm:k=6,fraction=0.5";
  request.seed = 0xfeedface;
  request.shard_count = 7;
  request.generation = 12;
  request.next_seq = 90001;
  std::string bytes;
  net::EncodeCatchUpRequest(&bytes, request);
  auto decoded = net::DecodeCatchUpRequest(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().point_kind, request.point_kind);
  EXPECT_EQ(decoded.value().spec, request.spec);
  EXPECT_EQ(decoded.value().seed, request.seed);
  EXPECT_EQ(decoded.value().shard_count, request.shard_count);
  EXPECT_EQ(decoded.value().generation, request.generation);
  EXPECT_EQ(decoded.value().next_seq, request.next_seq);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(net::DecodeCatchUpRequest(
                     reinterpret_cast<const uint8_t*>(bytes.data()), cut)
                     .ok())
        << "truncation at " << cut << " must not decode";
  }

  net::CatchUpResponse response;
  response.status = net::WireStatus::Unavailable("busy");
  response.action = net::CatchUpAction::kFetchSnapshot;
  response.generation = 3;
  response.next_seq = 41;
  response.snapshot_bytes = 1 << 20;
  bytes.clear();
  net::EncodeCatchUpResponse(&bytes, response);
  auto response_decoded = net::DecodeCatchUpResponse(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  ASSERT_TRUE(response_decoded.ok());
  EXPECT_EQ(response_decoded.value().status.code, WireCode::kUnavailable);
  EXPECT_EQ(response_decoded.value().status.message, "busy");
  EXPECT_EQ(response_decoded.value().action,
            net::CatchUpAction::kFetchSnapshot);
  EXPECT_EQ(response_decoded.value().generation, 3u);
  EXPECT_EQ(response_decoded.value().next_seq, 41u);
  EXPECT_EQ(response_decoded.value().snapshot_bytes, uint64_t{1} << 20);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(net::DecodeCatchUpResponse(
                     reinterpret_cast<const uint8_t*>(bytes.data()), cut)
                     .ok());
  }

  net::SnapshotChunk chunk;
  chunk.generation = 9;
  chunk.total_bytes = 100;
  chunk.offset = 64;
  chunk.last = true;
  chunk.data = "the last thirty-six bytes of a snap";
  chunk.crc = storage::Crc32c(chunk.data.data(), chunk.data.size());
  bytes.clear();
  net::EncodeSnapshotChunk(&bytes, chunk);
  auto chunk_decoded = net::DecodeSnapshotChunk(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  ASSERT_TRUE(chunk_decoded.ok());
  EXPECT_EQ(chunk_decoded.value().generation, 9u);
  EXPECT_EQ(chunk_decoded.value().offset, 64u);
  EXPECT_TRUE(chunk_decoded.value().last);
  EXPECT_EQ(chunk_decoded.value().data, chunk.data);
  EXPECT_EQ(chunk_decoded.value().crc, chunk.crc);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(net::DecodeSnapshotChunk(
                     reinterpret_cast<const uint8_t*>(bytes.data()), cut)
                     .ok());
  }

  net::WalStreamFrame frame;
  frame.kind = net::kWalFrameRotate;
  frame.generation = 4;
  frame.folded = 2048;
  bytes.clear();
  net::EncodeWalStreamFrame(&bytes, frame);
  auto frame_decoded = net::DecodeWalStreamFrame(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  ASSERT_TRUE(frame_decoded.ok());
  EXPECT_EQ(frame_decoded.value().kind, net::kWalFrameRotate);
  EXPECT_EQ(frame_decoded.value().generation, 4u);
  EXPECT_EQ(frame_decoded.value().folded, 2048u);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(net::DecodeWalStreamFrame(
                     reinterpret_cast<const uint8_t*>(bytes.data()), cut)
                     .ok());
  }
}

// ------------------------------------------------------ WalFrameReader

std::string EncodeWalFrame(uint64_t seq, const std::string& payload) {
  std::string seq_bytes;
  storage::PutFixed64(&seq_bytes, seq);
  std::string frame;
  storage::PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  storage::PutFixed32(
      &frame, storage::Crc32c(payload.data(), payload.size(),
                              storage::Crc32c(seq_bytes)));
  frame.append(seq_bytes);
  frame.append(payload);
  return frame;
}

TEST(Replication, WalFrameReaderByteAtATimeMatchesWholeBuffer) {
  const std::vector<std::string> payloads = {"alpha", "", "gamma gamma",
                                             std::string(300, 'x')};
  std::string stream;
  for (size_t i = 0; i < payloads.size(); ++i) {
    stream += EncodeWalFrame(/*seq=*/i + 1, payloads[i]);
  }
  // Plus a torn half-frame at the tail.
  const std::string torn = EncodeWalFrame(5, "never finished");
  stream += torn.substr(0, torn.size() - 3);

  storage::WalFrameReader reader(/*first_seq=*/1);
  std::vector<storage::WalRecord> records;
  for (char byte : stream) {
    reader.Feed(&byte, 1);
    storage::WalRecord record;
    while (reader.Poll(&record) == storage::WalFrameReader::Next::kRecord) {
      records.push_back(record);
    }
  }
  ASSERT_EQ(records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(records[i].seq, i + 1);
    EXPECT_EQ(records[i].payload, payloads[i]);
  }
  // The torn tail is "need more", never corruption, and valid_bytes
  // stops exactly at the last whole frame.
  storage::WalRecord record;
  EXPECT_EQ(reader.Poll(&record), storage::WalFrameReader::Next::kNeedMore);
  uint64_t whole = 0;
  for (size_t i = 0; i < payloads.size(); ++i) {
    whole += 16 + payloads[i].size();
  }
  EXPECT_EQ(reader.valid_bytes(), whole);
  EXPECT_EQ(reader.next_seq(), 5u);
}

TEST(Replication, WalFrameReaderLatchesOnCorruptionAndSeqSkips) {
  std::string good = EncodeWalFrame(1, "fine");
  std::string bad = EncodeWalFrame(2, "flipped");
  bad[8 + 2] ^= 0x40;  // corrupt the seq field -> CRC mismatch
  storage::WalFrameReader reader(1);
  reader.Feed(good.data(), good.size());
  reader.Feed(bad.data(), bad.size());
  storage::WalRecord record;
  EXPECT_EQ(reader.Poll(&record), storage::WalFrameReader::Next::kRecord);
  EXPECT_EQ(reader.Poll(&record), storage::WalFrameReader::Next::kCorrupt);
  // Latched: feeding pristine frames afterwards cannot resurrect it.
  std::string next = EncodeWalFrame(2, "pristine");
  reader.Feed(next.data(), next.size());
  EXPECT_EQ(reader.Poll(&record), storage::WalFrameReader::Next::kCorrupt);

  // A well-formed frame with the wrong sequence number is corruption
  // too (a gap means the stream skipped a record).
  storage::WalFrameReader strict(5);
  std::string wrong_seq = EncodeWalFrame(7, "skipped ahead");
  strict.Feed(wrong_seq.data(), wrong_seq.size());
  EXPECT_EQ(strict.Poll(&record), storage::WalFrameReader::Next::kCorrupt);
}

// ----------------------------------------------------- client deadlines

TEST(Replication, ClientRecvTimeoutPreservesPartialFrame) {
  auto listener = net::Listener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status();

  auto client = Client::Connect(
      "127.0.0.1", listener.value()->port(),
      Client::Options{/*connect_timeout_ms=*/2000, /*recv_timeout_ms=*/100,
                      /*send_timeout_ms=*/2000});
  ASSERT_TRUE(client.ok()) << client.status();

  int server_fd = -1;
  for (int i = 0; i < 200 && server_fd < 0; ++i) {
    auto accepted = listener.value()->Accept();
    ASSERT_TRUE(accepted.ok());
    server_fd = accepted.value();
    if (server_fd < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_GE(server_fd, 0);

  // Nothing sent yet: the deadline must surface as kDeadlineExceeded,
  // not a generic error and not a hang.
  auto timed_out = client.value()->ReadFrame();
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), util::StatusCode::kDeadlineExceeded);

  // Half a frame, a timeout in the middle, then the rest: the buffered
  // prefix must survive the deadline and the frame decode intact.
  const std::string frame = net::EncodeFrame(net::MessageType::kPong, "");
  ASSERT_EQ(send(server_fd, frame.data(), 7, 0), 7);
  auto mid_frame = client.value()->ReadFrame();
  ASSERT_FALSE(mid_frame.ok());
  EXPECT_EQ(mid_frame.status().code(),
            util::StatusCode::kDeadlineExceeded);
  ASSERT_EQ(send(server_fd, frame.data() + 7, frame.size() - 7, 0),
            static_cast<ssize_t>(frame.size() - 7));
  auto whole = client.value()->ReadFrame();
  ASSERT_TRUE(whole.ok()) << whole.status();
  EXPECT_EQ(whole.value().first, net::MessageType::kPong);
  close(server_fd);
}

// ------------------------------------------------------------------ e2e

TEST(Replication, BootstrapTailRotateConvergeWithExactMetrics) {
  const std::string primary_dir = FreshDir("repl_primary_basic");
  const std::string replica_dir = FreshDir("repl_replica_basic");
  auto primary = Primary::Start(primary_dir, 400, 4);
  ASSERT_NE(primary, nullptr);

  obs::MetricsRegistry replica_metrics("replica");
  auto opened = ReplicaServer<Vector>::Open(
      L2(), ReplicaOptions(replica_dir, primary->port, &replica_metrics));
  ASSERT_TRUE(opened.ok()) << opened.status();
  ReplicaServer<Vector>& replica = *opened.value();
  EXPECT_EQ(replica.db().size(), 400u);  // bootstrapped snapshot
  ASSERT_TRUE(replica.Start(0).ok());
  std::thread serving([&replica]() { replica.Run(); });

  // Live tail: inserts and removes land on the primary's write path
  // and must stream through in commit order.
  util::Rng rng(7);
  const std::vector<Vector> extra = dataset::UniformCube(25, 4, &rng);
  for (const Vector& point : extra) {
    ASSERT_TRUE(primary->db->Insert(point).ok());
  }
  ASSERT_TRUE(primary->db->Remove(3).ok());
  ASSERT_TRUE(primary->db->Remove(410).ok());
  ASSERT_TRUE(WaitFor([&]() {
    return replica.replication().applied_seq() ==
               primary->db->delta_entries() &&
           replica.db().generation_number() ==
               primary->db->generation_number();
  })) << "replica never caught up; last error: "
      << replica.replication().last_error();
  ExpectStoresIdentical(*primary->db, replica.db(), "after live tail");

  // Rotation mid-stream: the primary folds; the replica replays the
  // same fold locally and must land on the identical generation.
  ASSERT_TRUE(primary->db->Compact().ok());
  const std::vector<Vector> after = dataset::UniformCube(5, 4, &rng);
  for (const Vector& point : after) {
    ASSERT_TRUE(primary->db->Insert(point).ok());
  }
  ASSERT_TRUE(WaitFor([&]() {
    return replica.db().generation_number() ==
               primary->db->generation_number() &&
           replica.replication().applied_seq() ==
               primary->db->delta_entries();
  })) << "replica never converged past the rotation; last error: "
      << replica.replication().last_error();
  ExpectStoresIdentical(*primary->db, replica.db(), "after rotation");

  // Reads served by the replica are bit-identical to a local run over
  // the primary's store.
  auto client = Client::Connect("127.0.0.1", replica.server().port());
  ASSERT_TRUE(client.ok()) << client.status();
  std::vector<SearchRequest<Vector>> batch;
  util::Rng qrng(9);
  for (int q = 0; q < 6; ++q) {
    batch.push_back(SearchRequest<Vector>::Knn(
        dataset::UniformCube(1, 4, &qrng)[0], 5));
  }
  QueryEngine<Vector> local_engine(1);
  const auto local = primary->db->RunBatch(local_engine, batch);
  auto remote = client.value()->SearchBatch(batch);
  ASSERT_TRUE(remote.ok()) << remote.status();
  ASSERT_EQ(remote.value().size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(remote.value()[i].status.ok());
    ASSERT_EQ(remote.value()[i].results.size(), local.results[i].size());
    for (size_t r = 0; r < local.results[i].size(); ++r) {
      EXPECT_EQ(remote.value()[i].results[r].id, local.results[i][r].id);
      EXPECT_EQ(remote.value()[i].results[r].distance,
                local.results[i][r].distance);
    }
  }

  // Exact counts, both sides of the wire (satellite: the series must
  // land in the Prometheus exposition, not just internal accessors).
  // 25 inserts + 2 removes before the rotation, 5 inserts after; one
  // bootstrap handshake + one streaming handshake; the whole snapshot
  // fit one default-sized chunk.
  const std::string replica_text = replica_metrics.TextExposition();
  EXPECT_NE(replica_text.find("replica_applied_records_total 32"),
            std::string::npos)
      << replica_text;
  EXPECT_NE(replica_text.find("replica_rotations_total 1"),
            std::string::npos);
  EXPECT_NE(replica_text.find("replica_reconnects_total 1"),
            std::string::npos);
  EXPECT_NE(replica_text.find("replica_snapshot_chunks_total 1"),
            std::string::npos);
  EXPECT_NE(replica_text.find("replica_snapshot_resumes_total 0"),
            std::string::npos);
  EXPECT_NE(replica_text.find("replica_applied_seq 5"), std::string::npos);
  EXPECT_NE(replica_text.find("replica_lag_seconds "), std::string::npos);
  const std::string primary_text = primary->metrics->TextExposition();
  EXPECT_NE(primary_text.find("replication_handshakes_total 2"),
            std::string::npos)
      << primary_text;
  EXPECT_NE(primary_text.find("replication_snapshot_chunks_total 1"),
            std::string::npos);
  EXPECT_NE(primary_text.find("replication_subscribers 1"),
            std::string::npos);
  // 32 record frames + 1 rotate frame to one subscriber.
  EXPECT_NE(primary_text.find("replication_wal_frames_total 33"),
            std::string::npos)
      << primary_text;

  // Skewed incremental fold: fold the pending tail, then insert six
  // copies of one far-away point — they all route to a single shard,
  // so the primary rebuilds exactly one shard and shares the other.
  // The replica replays the same fold and must take the identical
  // share-vs-rebuild decisions: same stats, and (via the epochs check
  // in ExpectStoresIdentical) the same per-shard rebuild history.
  ASSERT_TRUE(primary->db->Compact().ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(primary->db->Insert(Vector{5.0, 5.0, 5.0, 5.0}).ok());
  }
  ASSERT_TRUE(primary->db->Compact().ok());
  const engine::LiveCompactionStats primary_stats =
      primary->db->last_compaction_stats();
  EXPECT_FALSE(primary_stats.rebalanced);
  EXPECT_EQ(primary_stats.shards_rebuilt, 1u);
  EXPECT_EQ(primary_stats.shards_shared, kShards - 1);
  ASSERT_TRUE(WaitFor([&]() {
    return replica.db().generation_number() ==
               primary->db->generation_number() &&
           replica.replication().applied_seq() ==
               primary->db->delta_entries();
  })) << "replica never converged past the skewed fold; last error: "
      << replica.replication().last_error();
  const engine::LiveCompactionStats replica_stats =
      replica.db().last_compaction_stats();
  EXPECT_FALSE(replica_stats.rebalanced);
  EXPECT_EQ(replica_stats.shards_rebuilt, primary_stats.shards_rebuilt);
  EXPECT_EQ(replica_stats.shards_shared, primary_stats.shards_shared);
  EXPECT_EQ(replica_stats.folded_entries, primary_stats.folded_entries);
  ExpectStoresIdentical(*primary->db, replica.db(),
                        "after skewed incremental fold");

  replica.Shutdown();
  serving.join();
}

TEST(Replication, PrimaryLossDegradesThenResumesWithoutRefetch) {
  const std::string primary_dir = FreshDir("repl_primary_loss");
  const std::string replica_dir = FreshDir("repl_replica_loss");
  auto primary = Primary::Start(primary_dir, 200, 4);
  ASSERT_NE(primary, nullptr);
  const uint16_t primary_port = primary->port;

  obs::MetricsRegistry replica_metrics("replica");
  auto opened = ReplicaServer<Vector>::Open(
      L2(), ReplicaOptions(replica_dir, primary_port, &replica_metrics));
  ASSERT_TRUE(opened.ok()) << opened.status();
  ReplicaServer<Vector>& replica = *opened.value();
  ASSERT_TRUE(replica.Start(0).ok());
  std::thread serving([&replica]() { replica.Run(); });

  ASSERT_TRUE(primary->db->Insert(Vector{9.0, 9.0, 9.0, 9.0}).ok());
  ASSERT_TRUE(WaitFor([&]() {
    return replica.replication().applied_seq() == 1;
  }));
  const uint64_t chunks_after_bootstrap =
      replica_metrics.GetCounter("replica_snapshot_chunks_total")->Value();

  // Primary gone: the replica must keep answering from its last
  // applied state while its lag grows.
  primary->StopServer();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  auto client = Client::Connect("127.0.0.1", replica.server().port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto stale = client.value()->Search(
      SearchRequest<Vector>::Knn(Vector{9.0, 9.0, 9.0, 9.0}, 1));
  ASSERT_TRUE(stale.ok()) << stale.status();
  ASSERT_TRUE(stale.value().status.ok());
  ASSERT_EQ(stale.value().results.size(), 1u);
  EXPECT_EQ(stale.value().results[0].distance, 0.0);
  EXPECT_GT(replica.replication().lag_seconds(), 0.3);

  // Primary back on the same port with more writes committed while the
  // replica was away: it must reconnect, resume from its own next_seq,
  // and converge WITHOUT re-fetching the snapshot.
  ASSERT_TRUE(primary->db->Insert(Vector{8.0, 8.0, 8.0, 8.0}).ok());
  const uint64_t reconnects_before = replica.replication().reconnects();
  ASSERT_TRUE(primary->StartServer(primary_port));
  ASSERT_TRUE(WaitFor([&]() {
    return replica.replication().applied_seq() ==
           primary->db->delta_entries();
  })) << "replica never re-converged; last error: "
      << replica.replication().last_error();
  EXPECT_GT(replica.replication().reconnects(), reconnects_before);
  EXPECT_EQ(
      replica_metrics.GetCounter("replica_snapshot_chunks_total")->Value(),
      chunks_after_bootstrap)
      << "resume must ride the WAL stream, not a snapshot re-fetch";
  EXPECT_LT(replica.replication().lag_seconds(), 5.0);
  ExpectStoresIdentical(*primary->db, replica.db(), "after reconnect");

  replica.Shutdown();
  serving.join();
}

TEST(Replication, SnapshotTransferCutMidStreamResumesFromPartial) {
  const std::string primary_dir = FreshDir("repl_primary_cut");
  const std::string replica_dir = FreshDir("repl_replica_cut");
  SearchServer<Vector>::Options small_chunks;
  small_chunks.replication_chunk_bytes = 4096;
  auto primary = Primary::Start(primary_dir, 2000, 8, small_chunks);
  ASSERT_NE(primary, nullptr);

  net::FaultProxy::Options proxy_options;
  proxy_options.upstream_port = primary->port;
  // Enough for the handshake plus a couple of chunks, then sever
  // mid-chunk.
  proxy_options.cut_to_client_after_bytes = 10000;
  auto proxy = net::FaultProxy::Start(proxy_options);
  ASSERT_TRUE(proxy.ok()) << proxy.status();

  obs::MetricsRegistry metrics("bootstrap");
  ReplicationClient<Vector>::Options options;
  options.primary_port = proxy.value()->port();
  options.idle_timeout_ms = 500;
  options.metrics = &metrics;
  storage::Env* env = storage::Env::Default();

  // First attempt dies mid-transfer but leaves a CRC-verified partial.
  util::Status first = ReplicationClient<Vector>::BootstrapSnapshot(
      env, replica_dir, kSpec, kSeed, kShards, options);
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(proxy.value()->cuts_total(), 1u);
  const std::string partial_path =
      replica_dir + "/" + engine::SnapshotFileName(1) + ".partial";
  auto partial = env->MapFile(partial_path);
  ASSERT_TRUE(partial.ok()) << "a cut transfer must leave its partial";
  EXPECT_GT(partial.value()->size(), 0u);
  const uint64_t partial_bytes = partial.value()->size();

  // Second attempt (cut disarmed itself) resumes at the partial's
  // byte offset instead of starting over.
  util::Status second = ReplicationClient<Vector>::BootstrapSnapshot(
      env, replica_dir, kSpec, kSeed, kShards, options);
  ASSERT_TRUE(second.ok()) << second;
  EXPECT_EQ(metrics.GetCounter("replica_snapshot_resumes_total")->Value(),
            1u);
  EXPECT_FALSE(env->MapFile(partial_path).ok())
      << "the partial must be renamed away on completion";
  // Bytes pulled over both attempts together cover the file exactly
  // once: the resume did not re-download the prefix.
  const std::string final_path =
      replica_dir + "/" + engine::SnapshotFileName(1);
  auto final_file = env->MapFile(final_path);
  ASSERT_TRUE(final_file.ok());
  EXPECT_EQ(metrics.GetCounter("replica_snapshot_bytes_total")->Value(),
            final_file.value()->size());
  EXPECT_GT(final_file.value()->size(), partial_bytes);

  // And the stitched file is a valid, identity-matching snapshot.
  auto loaded = engine::ReadGenerationSnapshot<Vector>(
      env, final_path, L2(), kShards, kSpec, kSeed, /*build_threads=*/1);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value()->size(), 2000u);
}

TEST(Replication, ReadOnlyReplicaRejectsWireWrites) {
  const std::string primary_dir = FreshDir("repl_primary_ro");
  const std::string replica_dir = FreshDir("repl_replica_ro");
  auto primary = Primary::Start(primary_dir, 100, 4);
  ASSERT_NE(primary, nullptr);

  obs::MetricsRegistry replica_metrics("replica");
  auto opened = ReplicaServer<Vector>::Open(
      L2(), ReplicaOptions(replica_dir, primary->port, &replica_metrics));
  ASSERT_TRUE(opened.ok()) << opened.status();
  ReplicaServer<Vector>& replica = *opened.value();
  ASSERT_TRUE(replica.Start(0).ok());
  std::thread serving([&replica]() { replica.Run(); });

  auto client = Client::Connect("127.0.0.1", replica.server().port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto inserted = client.value()->Insert(Vector{1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(inserted.ok()) << inserted.status();
  EXPECT_EQ(inserted.value().status.code, WireCode::kUnavailable);
  auto removed = client.value()->Remove(0);
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ(removed.value().code, WireCode::kUnavailable);
  EXPECT_EQ(replica.db().size(), 100u) << "rejected writes must not land";

  // Reads still work on the same connection.
  auto found = client.value()->Search(
      SearchRequest<Vector>::Knn(Vector{0.5, 0.5, 0.5, 0.5}, 3));
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found.value().status.ok());
  EXPECT_EQ(found.value().results.size(), 3u);

  replica.Shutdown();
  serving.join();
}

TEST(Replication, HandshakeRejectsIdentityMismatch) {
  const std::string primary_dir = FreshDir("repl_primary_identity");
  auto primary = Primary::Start(primary_dir, 50, 4);
  ASSERT_NE(primary, nullptr);

  auto client = Client::Connect("127.0.0.1", primary->port);
  ASSERT_TRUE(client.ok());
  net::CatchUpRequest request;
  request.point_kind = "vector_f64";
  request.spec = "gh-tree";  // primary is vp-tree
  request.seed = kSeed;
  request.shard_count = kShards;
  std::string payload;
  net::EncodeCatchUpRequest(&payload, request);
  ASSERT_TRUE(client.value()
                  ->SendFrame(net::MessageType::kCatchUpHandshake, payload)
                  .ok());
  auto frame = client.value()->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame.value().first, net::MessageType::kCatchUpHandshake);
  auto response = net::DecodeCatchUpResponse(
      reinterpret_cast<const uint8_t*>(frame.value().second.data()),
      frame.value().second.size());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status.code, WireCode::kInvalidArgument);

  // An in-memory (non-durable) primary declines replication outright.
  util::Rng rng(3);
  auto mem = LiveDatabase<Vector>::Open(dataset::UniformCube(50, 4, &rng),
                                        L2(), kShards, kSpec, kSeed);
  ASSERT_TRUE(mem.ok());
  obs::MetricsRegistry mem_metrics("mem");
  SearchServer<Vector>::Options mem_options;
  mem_options.metrics = &mem_metrics;
  SearchServer<Vector> mem_server(mem.value().get(), mem_options);
  ASSERT_TRUE(mem_server.Start(0).ok());
  std::thread mem_thread([&mem_server]() { mem_server.Run(); });
  auto mem_client = Client::Connect("127.0.0.1", mem_server.port());
  ASSERT_TRUE(mem_client.ok());
  request.spec = kSpec;
  payload.clear();
  net::EncodeCatchUpRequest(&payload, request);
  ASSERT_TRUE(mem_client.value()
                  ->SendFrame(net::MessageType::kCatchUpHandshake, payload)
                  .ok());
  auto mem_frame = mem_client.value()->ReadFrame();
  ASSERT_TRUE(mem_frame.ok());
  auto mem_response = net::DecodeCatchUpResponse(
      reinterpret_cast<const uint8_t*>(mem_frame.value().second.data()),
      mem_frame.value().second.size());
  ASSERT_TRUE(mem_response.ok());
  EXPECT_EQ(mem_response.value().status.code, WireCode::kUnimplemented);
  mem_server.Shutdown();
  mem_thread.join();
}

}  // namespace
}  // namespace server
}  // namespace distperm
