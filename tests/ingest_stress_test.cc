// Concurrency stress for the live-ingest path: writer threads racing
// reader threads across repeated compactions.  The correctness oracle
// is the pin itself — a reader pins a (generation, delta window) view,
// queries it, and then verifies the answers against a fresh build of
// exactly that view's materialized dataset, so any torn read, lost
// update, or leak of a racing write into a pinned view shows up as a
// hard mismatch.  Run under ThreadSanitizer by the CI tsan job.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dataset/vector_gen.h"
#include "engine/live_database.h"
#include "engine/query.h"
#include "engine/query_engine.h"
#include "engine/sharded_database.h"
#include "index/linear_scan.h"
#include "metric/lp.h"
#include "util/rng.h"

namespace distperm {
namespace engine {
namespace {

using index::SearchResult;
using metric::Vector;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

// (distance, point) fingerprint — id spaces differ between a live view
// and a fresh build over its materialized dataset.
std::vector<std::pair<double, Vector>> Fingerprint(
    const std::vector<SearchResult>& results,
    const std::function<Vector(size_t)>& resolve) {
  std::vector<std::pair<double, Vector>> prints;
  prints.reserve(results.size());
  for (const SearchResult& r : results) {
    prints.emplace_back(r.distance, resolve(r.id));
  }
  std::sort(prints.begin(), prints.end());
  return prints;
}

// Verifies one pinned view: the live answers over `snapshot` must be
// bit-identical (as (distance, point) sets) to a fresh registry build
// over snapshot.Materialize() with the store's own spec/seed/shards —
// the acceptance bar for queries racing Compact().
void VerifyPinnedView(const LiveDatabase<Vector>& live,
                      const LiveDatabase<Vector>::Snapshot& snapshot,
                      QueryEngine<Vector>& engine,
                      const std::vector<QuerySpec<Vector>>& batch,
                      std::atomic<size_t>* mismatches) {
  auto got = live.RunBatch(engine, snapshot, batch);
  ASSERT_TRUE(got.all_ok());

  const std::vector<Vector> pinned_data = snapshot.Materialize();
  auto fresh = ShardedDatabase<Vector>::BuildFromRegistry(
      pinned_data, live.metric(), live.shard_count(), live.index_spec(),
      live.seed());
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  QueryEngine<Vector> fresh_engine(1);
  auto want = fresh_engine.RunBatch(fresh.value(), batch);

  const auto live_resolve = [&snapshot](size_t id) {
    auto point = snapshot.ResolvePoint(id);
    EXPECT_TRUE(point.ok()) << "unresolvable id " << id;
    return point.ok() ? point.value() : Vector{};
  };
  const auto fresh_resolve = [&pinned_data](size_t id) {
    return pinned_data.at(id);
  };
  for (size_t q = 0; q < batch.size(); ++q) {
    if (Fingerprint(got.results[q], live_resolve) !=
        Fingerprint(want.results[q], fresh_resolve)) {
      mismatches->fetch_add(1);
      ADD_FAILURE() << "pinned generation " << snapshot.generation_number()
                    << " delta " << snapshot.delta_entries() << " query "
                    << q << ": live answer diverges from a fresh build of "
                    << "the pinned view";
    }
  }
}

std::vector<QuerySpec<Vector>> ReaderBatch(util::Rng* rng) {
  std::vector<QuerySpec<Vector>> batch;
  for (int q = 0; q < 2; ++q) {
    Vector point = {rng->NextDouble(), rng->NextDouble(), rng->NextDouble()};
    batch.push_back(QuerySpec<Vector>::Knn(point, 8));
  }
  Vector point = {rng->NextDouble(), rng->NextDouble(), rng->NextDouble()};
  batch.push_back(QuerySpec<Vector>::Range(point, 0.35));
  batch.push_back(QuerySpec<Vector>::KnnWithinRadius(point, 5, 0.6));
  return batch;
}

// N writers inserting, M readers pin-verifying, one compactor swapping
// generations as fast as it can.  Every pinned view must stay frozen
// and correct; every accepted insert must survive to the final state;
// every retired generation must free itself once unpinned.
TEST(IngestStress, WritersRacingReadersAcrossCompactions) {
  util::Rng rng(601);
  auto data = dataset::UniformCube(120, 3, &rng);
  auto live_result =
      LiveDatabase<Vector>::Open(data, L2(), 3, "vp-tree", 17);
  ASSERT_TRUE(live_result.ok());
  auto& live = *live_result.value();

  constexpr size_t kWriters = 2;
  constexpr size_t kInsertsPerWriter = 50;
  constexpr size_t kReaders = 2;
  constexpr size_t kReaderIterations = 10;

  std::atomic<bool> writers_done{false};
  std::atomic<size_t> accepted_inserts{0};
  std::atomic<size_t> mismatches{0};
  std::vector<std::weak_ptr<const Generation<Vector>>> retired;
  std::mutex retired_mutex;

  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&live, &accepted_inserts, w]() {
      util::Rng writer_rng(700 + w);
      for (size_t i = 0; i < kInsertsPerWriter;) {
        Vector point = {writer_rng.NextDouble(), writer_rng.NextDouble(),
                        writer_rng.NextDouble()};
        auto id = live.Insert(std::move(point));
        if (id.ok()) {
          accepted_inserts.fetch_add(1);
          ++i;
        } else {
          // Backpressure: wait for the compactor to make room.
          std::this_thread::yield();
        }
      }
    });
  }
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&live, &mismatches, r]() {
      util::Rng reader_rng(800 + r);
      QueryEngine<Vector> engine(2);
      for (size_t i = 0; i < kReaderIterations; ++i) {
        auto batch = ReaderBatch(&reader_rng);
        auto snapshot = live.Pin();
        VerifyPinnedView(live, snapshot, engine, batch, &mismatches);
      }
    });
  }
  threads.emplace_back([&live, &writers_done, &retired, &retired_mutex]() {
    while (!writers_done.load()) {
      auto before = live.Pin().generation();
      ASSERT_TRUE(live.Compact().ok());
      if (live.generation_number() > before->number()) {
        std::lock_guard<std::mutex> lock(retired_mutex);
        retired.emplace_back(before);
      }
      before.reset();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (size_t t = 0; t < kWriters + kReaders; ++t) threads[t].join();
  writers_done.store(true);
  threads.back().join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(accepted_inserts.load(), kWriters * kInsertsPerWriter);

  // No lost updates: the final compacted state holds the base plus
  // every accepted insert, and answers like a fresh build.
  ASSERT_TRUE(live.Compact().ok());
  EXPECT_EQ(live.delta_entries(), 0u);
  EXPECT_EQ(live.size(), data.size() + kWriters * kInsertsPerWriter);
  QueryEngine<Vector> engine(1);
  util::Rng final_rng(900);
  std::atomic<size_t> final_mismatches{0};
  VerifyPinnedView(live, live.Pin(), engine, ReaderBatch(&final_rng),
                   &final_mismatches);
  EXPECT_EQ(final_mismatches.load(), 0u);

  // No leaks: every retired generation's refcount reached zero once
  // the swap (and the verifying readers) let go of it.
  EXPECT_GE(retired.size(), 1u);
  for (const auto& generation : retired) {
    EXPECT_TRUE(generation.expired());
  }
}

// Removals racing readers (no compaction, so ids are stable): pinned
// views must agree with their own materialization at every point of
// the removal stream, and removed points must stay gone.
TEST(IngestStress, RemovalsRacingReadersWithoutCompaction) {
  util::Rng rng(602);
  auto data = dataset::UniformCube(140, 3, &rng);
  auto live_result =
      LiveDatabase<Vector>::Open(data, L2(), 2, "linear-scan", 19);
  ASSERT_TRUE(live_result.ok());
  auto& live = *live_result.value();

  constexpr size_t kWriters = 2;
  constexpr size_t kRemovalsPerWriter = 40;
  std::atomic<size_t> mismatches{0};

  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&live, w]() {
      // Disjoint id ranges: every removal targets a live point.
      for (size_t i = 0; i < kRemovalsPerWriter; ++i) {
        ASSERT_TRUE(live.Remove(w * kRemovalsPerWriter + i).ok());
        if (i % 8 == 0) std::this_thread::yield();
      }
    });
  }
  for (size_t r = 0; r < 2; ++r) {
    threads.emplace_back([&live, &mismatches, r]() {
      util::Rng reader_rng(810 + r);
      QueryEngine<Vector> engine(2);
      for (size_t i = 0; i < 8; ++i) {
        auto batch = ReaderBatch(&reader_rng);
        auto snapshot = live.Pin();
        VerifyPinnedView(live, snapshot, engine, batch, &mismatches);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);

  EXPECT_EQ(live.size(), data.size() - kWriters * kRemovalsPerWriter);
  ASSERT_TRUE(live.Compact().ok());
  EXPECT_EQ(live.size(), data.size() - kWriters * kRemovalsPerWriter);

  // Every removed point is gone from a full scan of the final state.
  auto snapshot = live.Pin();
  const std::vector<Vector> final_data = snapshot.Materialize();
  for (size_t id = 0; id < kWriters * kRemovalsPerWriter; ++id) {
    EXPECT_EQ(std::find(final_data.begin(), final_data.end(), data[id]),
              final_data.end())
        << id;
  }
}

// Auto-compaction scheduled from racing writer threads: the background
// pool absorbs Submit calls from arbitrary threads while readers pin
// and verify; the store must settle into a fully folded, correct state.
TEST(IngestStress, AutoCompactionUnderConcurrentWriters) {
  util::Rng rng(603);
  auto data = dataset::UniformCube(100, 3, &rng);
  auto live_result = LiveDatabase<Vector>::Open(
      data, L2(), 2, "vp-tree:auto_compact_threshold=16,delta_scan_limit=64",
      23);
  ASSERT_TRUE(live_result.ok());
  auto& live = *live_result.value();

  constexpr size_t kWriters = 3;
  constexpr size_t kInsertsPerWriter = 40;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&live, w]() {
      util::Rng writer_rng(910 + w);
      for (size_t i = 0; i < kInsertsPerWriter;) {
        auto id = live.Insert({writer_rng.NextDouble(),
                               writer_rng.NextDouble(),
                               writer_rng.NextDouble()});
        if (id.ok()) {
          ++i;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  threads.emplace_back([&live, &mismatches]() {
    util::Rng reader_rng(820);
    QueryEngine<Vector> engine(1);
    for (size_t i = 0; i < 6; ++i) {
      auto batch = ReaderBatch(&reader_rng);
      auto snapshot = live.Pin();
      VerifyPinnedView(live, snapshot, engine, batch, &mismatches);
    }
  });
  for (auto& thread : threads) thread.join();
  live.WaitForCompaction();
  EXPECT_TRUE(live.last_background_compact_status().ok());
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GE(live.generation_number(), 2u);
  // Writes that landed mid-fold re-arm the trigger from the compaction
  // task itself, so no threshold-sized tail can be left stranded once
  // the background pool drains.
  EXPECT_LT(live.delta_entries(), live.auto_compact_threshold());

  ASSERT_TRUE(live.Compact().ok());
  EXPECT_EQ(live.size(), data.size() + kWriters * kInsertsPerWriter);
  EXPECT_EQ(live.delta_entries(), 0u);
}

// Writers racing an incremental compactor over routed delta slices:
// small CompactPrefix windows fold mid-stream (re-routing the carried
// tail) while side-indexes are republished under the same writer lock
// and readers pin-verify throughout.  The base is three well-separated
// clusters in data order, so shard i = cluster i and the writers —
// who only ever insert near clusters 1 and 2 — never dirty shard 0:
// every fold must share it by shared_ptr, and its epoch must still
// read 1 when the dust settles.
TEST(IngestStress, IncrementalCompactorRacingRoutedWriters) {
  std::vector<Vector> base;
  util::Rng rng(604);
  for (size_t cluster = 0; cluster < 3; ++cluster) {
    for (size_t i = 0; i < 30; ++i) {
      base.push_back({8.0 * cluster + rng.NextDouble(),
                      8.0 * cluster + rng.NextDouble(),
                      8.0 * cluster + rng.NextDouble()});
    }
  }
  auto live_result = LiveDatabase<Vector>::Open(
      base, L2(), 3, "vp-tree:delta_scan_limit=64,delta_index_min=8", 29);
  ASSERT_TRUE(live_result.ok());
  auto& live = *live_result.value();
  const void* shard0 = live.Pin().database().shared_shard(0).get();

  constexpr size_t kWriters = 2;
  constexpr size_t kInsertsPerWriter = 60;
  std::atomic<bool> writers_done{false};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> bad_fold_accounting{0};

  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&live, w]() {
      util::Rng writer_rng(930 + w);
      const double center = 8.0 * (1 + w);  // clusters 1 and 2 only
      for (size_t i = 0; i < kInsertsPerWriter;) {
        auto id = live.Insert({center + writer_rng.NextDouble(),
                               center + writer_rng.NextDouble(),
                               center + writer_rng.NextDouble()});
        if (id.ok()) {
          ++i;
        } else {
          // Backpressure: the compactor has to fold to make room.
          std::this_thread::yield();
        }
      }
    });
  }
  for (size_t r = 0; r < 2; ++r) {
    threads.emplace_back([&live, &mismatches, r]() {
      util::Rng reader_rng(830 + r);
      QueryEngine<Vector> engine(2);
      for (size_t i = 0; i < 8; ++i) {
        auto batch = ReaderBatch(&reader_rng);
        auto snapshot = live.Pin();
        VerifyPinnedView(live, snapshot, engine, batch, &mismatches);
      }
    });
  }
  threads.emplace_back([&live, &writers_done, &bad_fold_accounting]() {
    while (!writers_done.load()) {
      const uint64_t before = live.generation_number();
      ASSERT_TRUE(live.CompactPrefix(16).ok());
      if (live.generation_number() > before) {
        // This thread is the only fold driver, so the stats are this
        // fold's.  Every shard must be accounted rebuilt or shared.
        const LiveCompactionStats stats = live.last_compaction_stats();
        if (!stats.rebalanced &&
            stats.shards_rebuilt + stats.shards_shared !=
                live.shard_count()) {
          bad_fold_accounting.fetch_add(1);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (size_t t = 0; t < kWriters + 2; ++t) threads[t].join();
  writers_done.store(true);
  threads.back().join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(bad_fold_accounting.load(), 0u);

  ASSERT_TRUE(live.Compact().ok());
  EXPECT_EQ(live.delta_entries(), 0u);
  EXPECT_EQ(live.size(), base.size() + kWriters * kInsertsPerWriter);
  // 120 inserts against a 64-entry delta cap force at least one fold,
  // and no fold ever had a reason to touch shard 0: same object, epoch
  // still 1.
  auto pin = live.Pin();
  EXPECT_GE(pin.generation_number(), 2u);
  EXPECT_EQ(pin.database().shared_shard(0).get(), shard0);
  EXPECT_EQ(pin.generation()->epochs()[0], 1u);

  QueryEngine<Vector> engine(1);
  util::Rng final_rng(940);
  std::atomic<size_t> final_mismatches{0};
  VerifyPinnedView(live, pin, engine, ReaderBatch(&final_rng),
                   &final_mismatches);
  EXPECT_EQ(final_mismatches.load(), 0u);
}

}  // namespace
}  // namespace engine
}  // namespace distperm
