#include "core/storage_model.h"

#include "core/bounds.h"
#include "core/euclidean_count.h"
#include "util/bitpack.h"
#include "util/status.h"

namespace distperm {
namespace core {

StorageCost LaesaCost(const StorageScenario& s) {
  DP_CHECK(s.points >= 1 && s.sites >= 1);
  uint64_t bits_per_distance =
      static_cast<uint64_t>(util::BitsFor(s.points));
  uint64_t per_point = bits_per_distance * static_cast<uint64_t>(s.sites);
  return {"laesa-distances", per_point, per_point * s.points};
}

StorageCost RawPermutationCost(const StorageScenario& s) {
  DP_CHECK(s.sites >= 1);
  uint64_t per_point =
      static_cast<uint64_t>(UnrestrictedPermutationBits(s.sites));
  return {"raw-permutation", per_point, per_point * s.points};
}

StorageCost TablePermutationCost(const StorageScenario& s) {
  DP_CHECK(s.occurring_perms >= 1);
  uint64_t index_bits = static_cast<uint64_t>(util::BitsFor(s.occurring_perms));
  uint64_t table_bits =
      s.occurring_perms *
      static_cast<uint64_t>(UnrestrictedPermutationBits(s.sites));
  return {"perm-table", index_bits, index_bits * s.points + table_bits};
}

StorageCost EuclideanBoundCost(const StorageScenario& s) {
  DP_CHECK(s.dimension >= 1);
  EuclideanCounter counter;
  uint64_t per_point =
      static_cast<uint64_t>(counter.StorageBits(s.dimension, s.sites));
  return {"euclidean-bound", per_point, per_point * s.points};
}

std::vector<StorageCost> CompareStorageCosts(const StorageScenario& s) {
  std::vector<StorageCost> costs;
  costs.push_back(LaesaCost(s));
  costs.push_back(RawPermutationCost(s));
  if (s.occurring_perms >= 1) costs.push_back(TablePermutationCost(s));
  if (s.dimension >= 1) costs.push_back(EuclideanBoundCost(s));
  return costs;
}

}  // namespace core
}  // namespace distperm
