// Exact cell counting for arrangements of lines in the plane.
//
// For any arrangement of m distinct lines the number of regions is
//
//   R = 1 + m + sum over intersection points p of (lambda(p) - 1)
//
// where lambda(p) is the number of lines through p (parallel lines simply
// contribute no vertices).  With all computations over exact rationals
// this lets us verify the d = 2 row of the paper's Table 1 from real
// Euclidean bisectors: the bisectors of k integer-coordinate sites in
// general position must produce exactly N_{2,2}(k) cells, concurrent
// triples (a|b, b|c, a|c at the circumcentre) included.

#ifndef DISTPERM_GEOMETRY_ARRANGEMENT2D_H_
#define DISTPERM_GEOMETRY_ARRANGEMENT2D_H_

#include <array>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace distperm {
namespace geometry {

/// A line a*x + b*y = c with integer coefficients, stored in canonical
/// form (gcd 1, lexicographically positive leading coefficient) so that
/// equal lines compare equal.
struct Line {
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;

  /// Canonicalizes in place.  Fatal if a = b = 0.
  void Canonicalize();

  friend bool operator==(const Line& x, const Line& y) {
    return x.a == y.a && x.b == y.b && x.c == y.c;
  }
  friend auto operator<=>(const Line& x, const Line& y) = default;
};

/// An exact arrangement of lines in the plane.
class LineArrangement {
 public:
  /// Adds the line a*x + b*y = c.  Duplicate lines (after
  /// canonicalization) are ignored.  Fatal if a = b = 0.
  void AddLine(int64_t a, int64_t b, int64_t c);

  /// Number of distinct lines.
  size_t line_count() const { return lines_.size(); }

  /// Number of distinct intersection points.
  size_t CountVertices() const;

  /// Number of regions (bounded + unbounded) of the arrangement.
  size_t CountRegions() const;

 private:
  std::vector<Line> lines_;
};

/// Integer-coordinate site in the plane.
using IntPoint2 = std::array<int64_t, 2>;

/// The perpendicular-bisector arrangement of the given sites under the
/// Euclidean metric: for each site pair the line 2(b-a).x = |b|^2 - |a|^2.
/// Site coordinates must stay below 2^20 in magnitude so all intermediate
/// products fit exactly.
LineArrangement EuclideanBisectorArrangement(
    const std::vector<IntPoint2>& sites);

}  // namespace geometry
}  // namespace distperm

#endif  // DISTPERM_GEOMETRY_ARRANGEMENT2D_H_
