// Proximity-search index interface.
//
// The cost model follows the similarity-search literature (and the
// paper): metric evaluations are the expensive operation, so every index
// counts the distance computations it performs, separately for build and
// query phases.  Indexes own a copy of the database; results identify
// points by their position in that database.
//
// Queries are const and safe to issue from many threads at once: each
// call accumulates its metric evaluations in a private QueryStats and
// flushes them once into the index's atomic aggregate, so the per-call
// numbers reproduce the paper's single-threaded cost model exactly no
// matter how the calls are scheduled.

#ifndef DISTPERM_INDEX_INDEX_H_
#define DISTPERM_INDEX_INDEX_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "metric/metric.h"
#include "util/status.h"

namespace distperm {
namespace index {

/// One match: database position plus its distance to the query.
struct SearchResult {
  size_t id = 0;
  double distance = 0.0;

  friend bool operator==(const SearchResult& a, const SearchResult& b) {
    return a.id == b.id && a.distance == b.distance;
  }
};

/// Sorts results by (distance, id) — the canonical result order.
void SortResults(std::vector<SearchResult>* results);

/// Per-call accounting of the paper's cost model.  Each query call gets
/// its own accumulator, so concurrent callers never contend and a
/// caller's numbers cover exactly its own call.
struct QueryStats {
  uint64_t distance_computations = 0;

  void Merge(const QueryStats& other) {
    distance_computations += other.distance_computations;
  }
};

/// Abstract proximity index over points of type P.
///
/// Thread-safety contract: after construction, RangeQuery/KnnQuery are
/// const and may be called concurrently.  Implementations must keep all
/// per-query scratch state on the stack and charge metric evaluations to
/// the QueryStats they receive, never to index members.
template <typename P>
class SearchIndex {
 public:
  /// Takes ownership of a copy of the database.
  SearchIndex(std::vector<P> data, metric::Metric<P> metric)
      : data_(std::move(data)), metric_(std::move(metric)) {}
  virtual ~SearchIndex() = default;

  SearchIndex(const SearchIndex&) = delete;
  SearchIndex& operator=(const SearchIndex&) = delete;

  /// Short name for reports ("linear-scan", "laesa", ...).
  virtual std::string name() const = 0;

  /// All points within `radius` of `query` (inclusive), sorted by
  /// (distance, id).  When `stats` is non-null the call's metric
  /// evaluations are added to it; they always also feed the index-wide
  /// aggregate read by query_distance_computations().
  std::vector<SearchResult> RangeQuery(const P& query, double radius,
                                       QueryStats* stats = nullptr) const {
    QueryStats local;
    std::vector<SearchResult> results = RangeQueryImpl(query, radius, &local);
    Charge(local, stats);
    return results;
  }

  /// The `k` nearest points (fewer if the database is smaller), sorted by
  /// (distance, id); distance ties are broken toward lower ids.  Stats
  /// behave as for RangeQuery.
  std::vector<SearchResult> KnnQuery(const P& query, size_t k,
                                     QueryStats* stats = nullptr) const {
    QueryStats local;
    std::vector<SearchResult> results = KnnQueryImpl(query, k, &local);
    Charge(local, stats);
    return results;
  }

  /// Bits of auxiliary storage the index keeps beyond the raw data.
  virtual uint64_t IndexBits() const = 0;

  /// Database size.
  size_t size() const { return data_.size(); }
  /// The stored database.
  const std::vector<P>& data() const { return data_; }
  /// The metric.
  const metric::Metric<P>& metric() const { return metric_; }

  /// Metric evaluations spent answering queries since ResetQueryCount(),
  /// aggregated across all threads.
  uint64_t query_distance_computations() const {
    return query_count_.load(std::memory_order_relaxed);
  }
  /// Metric evaluations spent building the index.
  uint64_t build_distance_computations() const { return build_count_; }
  /// Zeroes the query aggregate (build count is immutable after
  /// construction).
  void ResetQueryCount() {
    query_count_.store(0, std::memory_order_relaxed);
  }

 protected:
  /// Query implementations: const, reentrant, and required to charge
  /// every metric evaluation to `stats` (never null) via QueryDist.
  virtual std::vector<SearchResult> RangeQueryImpl(
      const P& query, double radius, QueryStats* stats) const = 0;
  virtual std::vector<SearchResult> KnnQueryImpl(
      const P& query, size_t k, QueryStats* stats) const = 0;

  /// Metric evaluation charged to the query phase.
  double QueryDist(const P& a, const P& b, QueryStats* stats) const {
    ++stats->distance_computations;
    return metric_(a, b);
  }
  /// Metric evaluation charged to the build phase (construction is
  /// single-threaded, so a plain counter suffices).
  double BuildDist(const P& a, const P& b) {
    ++build_count_;
    return metric_(a, b);
  }

  std::vector<P> data_;
  metric::Metric<P> metric_;
  uint64_t build_count_ = 0;

 private:
  void Charge(const QueryStats& local, QueryStats* stats) const {
    query_count_.fetch_add(local.distance_computations,
                           std::memory_order_relaxed);
    if (stats != nullptr) stats->Merge(local);
  }

  mutable std::atomic<uint64_t> query_count_{0};
};

/// Keeps the k best (smallest-distance) results seen so far; ties broken
/// toward lower ids.  Used by the kNN search loops.
class KnnCollector {
 public:
  explicit KnnCollector(size_t k) : k_(k) {}

  /// Offers a candidate.
  void Offer(size_t id, double distance);

  /// Current pruning radius: distance of the worst kept result, or
  /// +infinity while fewer than k results are kept.
  double Radius() const;

  /// True iff a candidate at `distance` could still enter the result.
  bool Admits(double distance) const { return distance <= Radius(); }

  /// Extracts the results, sorted by (distance, id).
  std::vector<SearchResult> Take();

  size_t size() const { return heap_.size(); }

 private:
  // Max-heap by (distance, id) so the worst kept result is on top.
  struct Entry {
    double distance;
    size_t id;
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.distance != b.distance) return a.distance < b.distance;
      return a.id < b.id;
    }
  };
  size_t k_;
  std::vector<Entry> heap_;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_INDEX_H_
