// Linear scan baseline: the naive algorithm the paper's introduction
// describes — one distance computation per database point per query.
//
// For dense vectors under a kernel-tagged metric the scan runs on the
// flat data path: distances are evaluated a block at a time over the
// packed store (L2 in squared form, sqrt only on results), which is the
// cache-friendly hot loop bench_kernel_throughput measures.  Results
// and distance counts match the scalar path (one evaluation per point).

#ifndef DISTPERM_INDEX_LINEAR_SCAN_H_
#define DISTPERM_INDEX_LINEAR_SCAN_H_

#include <algorithm>
#include <string>
#include <vector>

#include "index/flat_data_path.h"
#include "index/index.h"
#include "index/query_scratch.h"

namespace distperm {
namespace index {

/// Exhaustive scan.  No build cost, no auxiliary storage, n distance
/// computations per query.
template <typename P>
class LinearScanIndex : public SearchIndex<P> {
 public:
  using SearchIndex<P>::data_;

  LinearScanIndex(std::vector<P> data, metric::Metric<P> metric)
      : SearchIndex<P>(std::move(data), std::move(metric)),
        flat_(data_, this->metric_) {}

  std::string name() const override { return "linear-scan"; }

  uint64_t IndexBits() const override { return 0; }

 protected:
  std::vector<SearchResult> RangeQueryImpl(const P& query, double radius,
                                           QueryStats* stats) const override {
    std::vector<SearchResult> results;
    if (flat_.enabled()) {
      const auto ctx = flat_.MakeQuery(query);
      const double score_bound = flat_.RangeScoreBound(radius);
      std::vector<double>& block = QueryScratch::ForThread().distance_block;
      block.resize(kDistanceBlockRows);
      const size_t n = data_.size();
      for (size_t begin = 0; begin < n; begin += kDistanceBlockRows) {
        const size_t count = std::min(kDistanceBlockRows, n - begin);
        flat_.BlockScores(ctx, begin, count, block.data());
        stats->distance_computations += count;
        for (size_t j = 0; j < count; ++j) {
          if (block[j] > score_bound) continue;
          const double d = flat_.ScoreToDistance(block[j]);
          if (d <= radius) results.push_back({begin + j, d});
        }
      }
    } else {
      for (size_t i = 0; i < data_.size(); ++i) {
        double d = this->QueryDist(data_[i], query, stats);
        if (d <= radius) results.push_back({i, d});
      }
    }
    SortResults(&results);
    return results;
  }

  std::vector<SearchResult> KnnQueryImpl(const P& query, size_t k,
                                         QueryStats* stats) const override {
    KnnCollector collector(k);
    if (flat_.enabled()) {
      const auto ctx = flat_.MakeQuery(query);
      std::vector<double>& block = QueryScratch::ForThread().distance_block;
      block.resize(kDistanceBlockRows);
      const size_t n = data_.size();
      // The collector works in true-distance space, exactly as the
      // scalar path does, so results are bit-identical even at sqrt
      // ties.  Scores are only used to prune: RangeScoreBound gives a
      // conservative score-space image of the current radius, chunks
      // of scores are discarded with one vectorized min pass each, and
      // only candidates surviving the score filter pay ScoreToDistance
      // and touch the collector.
      constexpr size_t kMinChunk = 64;
      double score_bound = flat_.RangeScoreBound(collector.Radius());
      for (size_t begin = 0; begin < n; begin += kDistanceBlockRows) {
        const size_t count = std::min(kDistanceBlockRows, n - begin);
        flat_.BlockScores(ctx, begin, count, block.data());
        stats->distance_computations += count;
        for (size_t c = 0; c < count; c += kMinChunk) {
          const size_t chunk = std::min(kMinChunk, count - c);
          if (metric::MinRaw(block.data() + c, chunk) > score_bound) {
            continue;
          }
          for (size_t j = c; j < c + chunk; ++j) {
            if (block[j] > score_bound) continue;
            collector.Offer(begin + j, flat_.ScoreToDistance(block[j]));
            score_bound = flat_.RangeScoreBound(collector.Radius());
          }
        }
      }
      return collector.Take();
    }
    for (size_t i = 0; i < data_.size(); ++i) {
      collector.Offer(i, this->QueryDist(data_[i], query, stats));
    }
    return collector.Take();
  }

 private:
  FlatDataPath<P> flat_;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_LINEAR_SCAN_H_
