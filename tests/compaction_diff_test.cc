// Differential/property harness for incremental compaction.
//
// Each sequence drives one LiveDatabase through a seeded random script
// of Insert / Remove / CompactPrefix / Compact / query ops and checks
// it against two independent references:
//
//   - a brute-force model of the live multiset (exact specs only):
//     every checkpoint query's (distance, point) fingerprint must match
//     a linear scan over the points the ops say are live;
//   - the full-rebuild reference (every spec): after folding, the store
//     must answer bit-identically — results AND per-query distance
//     computations — to a fresh ShardedDatabase built per-slice over
//     Snapshot::MaterializeSlices() of the same view.  Incremental
//     compaction shares clean shards by shared_ptr; determinism of the
//     per-shard (seed, shard) RNG stream is what makes that sharing
//     invisible, and this harness is what pins it.
//
// Every fold additionally checks the incremental contract itself:
// stats account for every shard, clean shards of generation N+1 are
// the predecessor's own shared_ptrs (pointer identity), rebuilt shards
// carry epoch N+1, and the post-fold id space resolves to exactly the
// model's live multiset.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dataset/string_gen.h"
#include "dataset/vector_gen.h"
#include "engine/live_database.h"
#include "engine/query.h"
#include "engine/query_engine.h"
#include "engine/sharded_database.h"
#include "index/registry.h"
#include "metric/lp.h"
#include "metric/string_metrics.h"
#include "util/rng.h"
#include "util/status.h"

namespace distperm {
namespace engine {
namespace {

using index::SearchResult;
using metric::Vector;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

constexpr size_t kShards = 3;
constexpr size_t kOpsPerSequence = 30;
constexpr size_t kSeedsPerSpec = 28;

// Exact specs answer identically to a linear scan, so the brute-force
// model checks them mid-sequence; approximate ones are pinned only
// against the full-rebuild reference, where determinism — not
// exactness — is the property under test.
const std::vector<std::string> kExactSpecs = {
    "linear-scan", "aesa", "vp-tree", "gh-tree", "laesa:k=4", "iaesa:k=4"};
const std::vector<std::string> kApproxSpecs = {
    "distperm:k=6,fraction=0.5", "distperm-prefix:k=6,prefix=2"};

// The live knobs every sequence runs under.  delta_scan_limit is wide
// enough that a 30-op script never hits backpressure; delta_index_min
// alternates per seed between 8 (side-indexes kick in quickly) and 0
// (disabled) so both delta legs face the same differential.
std::string WithLiveKnobs(const std::string& spec, size_t delta_index_min) {
  std::string out = spec;
  out += spec.find(':') == std::string::npos ? ":" : ",";
  out += "delta_scan_limit=96,delta_index_min=" +
         std::to_string(delta_index_min);
  return out;
}

// Canonical (distance, point) multiset of one result list, for
// comparisons across id spaces.
template <typename P>
std::vector<std::pair<double, P>> Fingerprint(
    const std::vector<SearchResult>& results,
    const std::function<P(size_t)>& resolve) {
  std::vector<std::pair<double, P>> prints;
  prints.reserve(results.size());
  for (const SearchResult& r : results) {
    prints.emplace_back(r.distance, resolve(r.id));
  }
  std::sort(prints.begin(), prints.end());
  return prints;
}

template <typename P>
std::function<P(size_t)> SnapshotResolver(
    const typename LiveDatabase<P>::Snapshot& snapshot) {
  return [&snapshot](size_t id) {
    auto point = snapshot.ResolvePoint(id);
    EXPECT_TRUE(point.ok()) << "unresolvable id " << id;
    return point.ok() ? point.value() : P{};
  };
}

// A fresh registry-built engine over `data`, answering `batch` — the
// reference when a fold rebalanced (uniform split over the flattened
// materialized order).
template <typename P>
typename QueryEngine<P>::BatchOutput FreshAnswers(
    const std::vector<P>& data, const metric::Metric<P>& metric,
    size_t shards, const std::string& spec, uint64_t seed,
    const std::vector<QuerySpec<P>>& batch) {
  auto built = ShardedDatabase<P>::BuildFromRegistry(data, metric, shards,
                                                     spec, seed);
  EXPECT_TRUE(built.ok()) << built.status();
  QueryEngine<P> engine(1);
  return engine.RunBatch(built.value(), batch);
}

// A fresh engine with each shard rebuilt over its pre-routed slice
// (Snapshot::MaterializeSlices) — the full-rebuild reference an
// incremental compaction of the same view must match bit-for-bit.
template <typename P>
typename QueryEngine<P>::BatchOutput FreshSlicedAnswers(
    std::vector<std::vector<P>> slices, const metric::Metric<P>& metric,
    const std::string& spec, uint64_t seed,
    const std::vector<QuerySpec<P>>& batch) {
  auto built = ShardedDatabase<P>::BuildFromRegistrySliced(
      std::move(slices), metric, spec, seed);
  EXPECT_TRUE(built.ok()) << built.status();
  QueryEngine<P> engine(1);
  return engine.RunBatch(built.value(), batch);
}

// One checkpoint query, expressible both as an engine QuerySpec and as
// a brute-force scan over the model's live multiset.  `tie_safe` marks
// probes whose brute fingerprint is deterministic: a kNN boundary
// selects among equal distances by id, which the id-free model cannot
// predict, so integer metrics (strings) only brute-check range probes;
// continuous random vectors never tie.
template <typename P>
struct ProbeQuery {
  enum Kind { kKnn, kRange, kKnnWithinRadius };
  Kind kind;
  P point;
  size_t k = 0;
  double radius = 0.0;
  bool tie_safe = true;

  QuerySpec<P> ToSpec() const {
    switch (kind) {
      case kKnn:
        return QuerySpec<P>::Knn(point, k);
      case kRange:
        return QuerySpec<P>::Range(point, radius);
      case kKnnWithinRadius:
        return QuerySpec<P>::KnnWithinRadius(point, k, radius);
    }
    return QuerySpec<P>::Knn(point, k);
  }

  std::vector<std::pair<double, P>> Brute(
      const std::vector<P>& points, const metric::Metric<P>& metric) const {
    std::vector<std::pair<double, P>> all;
    all.reserve(points.size());
    for (const P& p : points) all.emplace_back(metric(point, p), p);
    std::sort(all.begin(), all.end());
    std::vector<std::pair<double, P>> out;
    for (const auto& entry : all) {
      const bool in_radius = kind == kKnn || entry.first <= radius;
      const bool under_k = kind == kRange || out.size() < k;
      if (in_radius && under_k) out.push_back(entry);
    }
    return out;
  }
};

std::vector<ProbeQuery<Vector>> VectorProbes(size_t dim, util::Rng* rng) {
  auto random_point = [&] {
    Vector p(dim);
    for (double& c : p) c = rng->NextDouble(-0.2, 1.2);
    return p;
  };
  std::vector<ProbeQuery<Vector>> probes;
  probes.push_back({ProbeQuery<Vector>::kKnn, random_point(), 3});
  probes.push_back({ProbeQuery<Vector>::kKnn, random_point(), 7});
  probes.push_back({ProbeQuery<Vector>::kRange, random_point(), 0, 0.35});
  probes.push_back(
      {ProbeQuery<Vector>::kKnnWithinRadius, random_point(), 4, 0.6});
  return probes;
}

std::string RandomDna(util::Rng* rng) {
  static const char kBases[] = "ACGT";
  const size_t length = 5 + rng->NextBounded(8);
  std::string word;
  for (size_t i = 0; i < length; ++i) {
    word += kBases[rng->NextBounded(4)];
  }
  return word;
}

std::vector<ProbeQuery<std::string>> StringProbes(util::Rng* rng) {
  std::vector<ProbeQuery<std::string>> probes;
  probes.push_back({ProbeQuery<std::string>::kKnn, RandomDna(rng), 5, 0.0,
                    /*tie_safe=*/false});
  probes.push_back({ProbeQuery<std::string>::kRange, RandomDna(rng), 0, 3.0});
  probes.push_back({ProbeQuery<std::string>::kRange, RandomDna(rng), 0, 5.0});
  return probes;
}

// The harness's model of the store: the live (id -> point) map in the
// store's current numbering plus the delta entries appended since the
// last swap.  Ops maintain it exactly between folds; a fold remaps
// every id, so the model is re-derived by resolving the post-fold id
// space and checked for multiset equality against the points the ops
// say must be live.
template <typename P>
struct Model {
  std::map<size_t, P> live;
  size_t delta_ops = 0;

  std::vector<P> Points() const {
    std::vector<P> points;
    points.reserve(live.size());
    for (const auto& [id, point] : live) points.push_back(point);
    std::sort(points.begin(), points.end());
    return points;
  }
};

// After a fold: stats must account for every shard, clean shards of
// the new generation must be the predecessor's own shared_ptrs, dirty
// shards must carry the new epoch, and the new id space must resolve
// to exactly the model's live multiset (no lost point, no resurrected
// point, no duplicate).
template <typename P>
void CheckFoldAndRemapModel(const LiveDatabase<P>& live, Model<P>* model,
                            size_t folded,
                            const std::vector<const void*>& shards_before,
                            const std::vector<uint64_t>& epochs_before,
                            size_t id_sweep_bound,
                            const std::string& context) {
  const LiveCompactionStats stats = live.last_compaction_stats();
  EXPECT_EQ(stats.folded_entries, folded) << context;

  auto after = live.Pin();
  const ShardedDatabase<P>& db = after.database();
  const std::vector<uint64_t> epochs_after = after.generation()->epochs();
  ASSERT_EQ(epochs_after.size(), shards_before.size()) << context;
  if (stats.rebalanced) {
    EXPECT_EQ(stats.shards_rebuilt, shards_before.size()) << context;
    EXPECT_EQ(stats.shards_shared, 0u) << context;
  } else {
    EXPECT_EQ(stats.shards_rebuilt + stats.shards_shared,
              shards_before.size())
        << context;
    size_t shared = 0;
    for (size_t s = 0; s < shards_before.size(); ++s) {
      if (epochs_after[s] == epochs_before[s]) {
        EXPECT_EQ(db.shared_shard(s).get(), shards_before[s])
            << context << ": shard " << s
            << " kept its epoch but is not the predecessor's object";
        ++shared;
      } else {
        EXPECT_EQ(epochs_after[s], after.generation_number())
            << context << ": shard " << s;
        EXPECT_NE(db.shared_shard(s).get(), shards_before[s])
            << context << ": shard " << s;
      }
    }
    EXPECT_EQ(shared, stats.shards_shared) << context;
  }

  std::map<size_t, P> resolved;
  for (size_t id = 0; id < id_sweep_bound; ++id) {
    util::Result<P> point = after.ResolvePoint(id);
    if (point.ok()) resolved.emplace(id, std::move(point).value());
  }
  ASSERT_EQ(resolved.size(), model->live.size()) << context;
  std::vector<P> resolved_points;
  resolved_points.reserve(resolved.size());
  for (const auto& [id, point] : resolved) resolved_points.push_back(point);
  std::sort(resolved_points.begin(), resolved_points.end());
  EXPECT_EQ(resolved_points, model->Points()) << context;
  model->live = std::move(resolved);
}

// Checkpoint: every tie-safe probe's live fingerprint must equal the
// brute-force scan over the model (exact base specs only — the delta
// leg is exact for every spec, but an approximate base shard is not a
// linear scan).
template <typename P>
void CheckAgainstModel(LiveDatabase<P>& live, const Model<P>& model,
                       const metric::Metric<P>& metric,
                       const std::vector<ProbeQuery<P>>& probes,
                       const std::string& context) {
  std::vector<QuerySpec<P>> batch;
  batch.reserve(probes.size());
  for (const auto& probe : probes) batch.push_back(probe.ToSpec());
  auto snapshot = live.Pin();
  auto got = live.RunBatch(batch);
  ASSERT_TRUE(got.all_ok()) << context;
  const std::vector<P> points = model.Points();
  auto resolve = SnapshotResolver<P>(snapshot);
  for (size_t q = 0; q < probes.size(); ++q) {
    if (!probes[q].tie_safe) continue;
    EXPECT_EQ(Fingerprint(got.results[q], resolve),
              probes[q].Brute(points, metric))
        << context << " query " << q;
  }
}

template <typename P>
void RunDifferentialSequence(
    const std::string& base_spec, const metric::Metric<P>& metric,
    const std::vector<P>& base, uint64_t store_seed, bool exact,
    const std::function<P(util::Rng*)>& make_point,
    const std::function<std::vector<ProbeQuery<P>>(util::Rng*)>&
        make_probes) {
  const size_t delta_index_min = store_seed % 3 == 0 ? 0 : 8;
  const std::string spec = WithLiveKnobs(base_spec, delta_index_min);
  // Ids are never reused within a window and tail inserts are renamed
  // below base+inserts, so this bounds every id the store can hold.
  const size_t id_sweep_bound = base.size() + kOpsPerSequence + 8;
  const std::string context = base_spec + " seed=" +
                              std::to_string(store_seed) + " side_min=" +
                              std::to_string(delta_index_min);

  auto live_result =
      LiveDatabase<P>::Open(base, metric, kShards, spec, store_seed);
  ASSERT_TRUE(live_result.ok()) << context << ": " << live_result.status();
  LiveDatabase<P>& live = *live_result.value();

  Model<P> model;
  for (size_t i = 0; i < base.size(); ++i) model.live.emplace(i, base[i]);

  util::Rng oprng(store_seed * 0x51d5c4c1ull + 99);
  for (size_t step = 0; step < kOpsPerSequence; ++step) {
    const std::string at = context + " step=" + std::to_string(step);
    const uint64_t roll = oprng.NextBounded(100);
    if (roll < 55 || model.live.empty()) {
      P point = make_point(&oprng);
      util::Result<size_t> id = live.Insert(point);
      ASSERT_TRUE(id.ok()) << at << ": " << id.status();
      model.live.emplace(id.value(), std::move(point));
      ++model.delta_ops;
    } else if (roll < 75) {
      auto victim = model.live.begin();
      std::advance(victim, oprng.NextBounded(model.live.size()));
      ASSERT_TRUE(live.Remove(victim->first).ok()) << at;
      model.live.erase(victim);
      ++model.delta_ops;
    } else if (roll < 90 && model.delta_ops > 0) {
      // Partial fold; the limit sometimes exceeds the committed count
      // to exercise the clamp.
      const size_t limit = 1 + oprng.NextBounded(model.delta_ops + 2);
      const size_t folded = std::min(limit, model.delta_ops);
      auto before = live.Pin();
      std::vector<const void*> shards_before;
      for (size_t s = 0; s < kShards; ++s) {
        shards_before.push_back(before.database().shared_shard(s).get());
      }
      const std::vector<uint64_t> epochs_before =
          before.generation()->epochs();
      ASSERT_TRUE(live.CompactPrefix(limit).ok()) << at;
      model.delta_ops -= folded;
      CheckFoldAndRemapModel(live, &model, folded, shards_before,
                             epochs_before, id_sweep_bound, at);
      if (::testing::Test::HasFatalFailure()) return;
    } else {
      if (exact) {
        CheckAgainstModel(live, model, metric, make_probes(&oprng), at);
        if (::testing::Test::HasFatalFailure()) return;
      }
      EXPECT_EQ(live.size(), model.live.size()) << at;
    }
  }

  // Final fold, pinned strictly against the full-rebuild reference.
  // The slices are materialized BEFORE folding: compacting this exact
  // view and rebuilding per-slice must be the same object, whether the
  // fold rebuilt 0, some, or all shards.
  auto before = live.Pin();
  std::vector<std::vector<P>> slices = before.MaterializeSlices();
  size_t total = 0;
  bool any_empty = false;
  for (const auto& slice : slices) {
    total += slice.size();
    if (slice.empty()) any_empty = true;
  }
  if (total == 0) return;  // nothing left to pin (astronomically unlikely)
  if (model.delta_ops > 0) {
    std::vector<const void*> shards_before;
    for (size_t s = 0; s < kShards; ++s) {
      shards_before.push_back(before.database().shared_shard(s).get());
    }
    const std::vector<uint64_t> epochs_before =
        before.generation()->epochs();
    const size_t folded = model.delta_ops;
    ASSERT_TRUE(live.Compact().ok()) << context;
    model.delta_ops = 0;
    CheckFoldAndRemapModel(live, &model, folded, shards_before,
                           epochs_before, id_sweep_bound,
                           context + " final fold");
    if (::testing::Test::HasFatalFailure()) return;
  }

  util::Rng proberng(store_seed * 0x2545f491ull + 7);
  const std::vector<ProbeQuery<P>> probes = make_probes(&proberng);
  std::vector<QuerySpec<P>> batch;
  batch.reserve(probes.size());
  for (const auto& probe : probes) batch.push_back(probe.ToSpec());
  auto got = live.RunBatch(batch);
  ASSERT_TRUE(got.all_ok()) << context;
  typename QueryEngine<P>::BatchOutput want;
  if (any_empty) {
    // A slice went empty, so the fold rebalanced into a uniform split
    // over the flattened order — compare against that reference.
    std::vector<P> flat;
    flat.reserve(total);
    for (auto& slice : slices) {
      for (auto& point : slice) flat.push_back(std::move(point));
    }
    want = FreshAnswers(flat, metric, kShards, base_spec, store_seed, batch);
  } else {
    want = FreshSlicedAnswers(std::move(slices), metric, base_spec,
                              store_seed, batch);
  }
  EXPECT_EQ(got.results, want.results) << context;
  EXPECT_EQ(got.truncated, want.truncated) << context;
  EXPECT_EQ(got.per_query_distance_computations,
            want.per_query_distance_computations)
      << context;
}

Vector RandomCubePoint(util::Rng* rng) {
  Vector p(2);
  for (double& c : p) c = rng->NextDouble();
  return p;
}

// 6 exact specs x 28 seeds = 168 sequences.
TEST(CompactionDiff, VectorExactSpecSweep) {
  for (const std::string& spec : kExactSpecs) {
    for (uint64_t seed = 0; seed < kSeedsPerSpec; ++seed) {
      util::Rng datarng(seed * 131 + 7);
      const auto base = dataset::UniformCube(24, 2, &datarng);
      RunDifferentialSequence<Vector>(spec, L2(), base, 1000 + seed,
                                      /*exact=*/true, RandomCubePoint,
                                      [](util::Rng* rng) {
                                        return VectorProbes(2, rng);
                                      });
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// 2 approximate specs x 28 seeds = 56 sequences; with the exact sweep
// the harness covers 224 seeded sequences per run.
TEST(CompactionDiff, VectorApproxSpecSweep) {
  for (const std::string& spec : kApproxSpecs) {
    for (uint64_t seed = 0; seed < kSeedsPerSpec; ++seed) {
      util::Rng datarng(seed * 137 + 11);
      const auto base = dataset::UniformCube(24, 2, &datarng);
      RunDifferentialSequence<Vector>(spec, L2(), base, 2000 + seed,
                                      /*exact=*/false, RandomCubePoint,
                                      [](util::Rng* rng) {
                                        return VectorProbes(2, rng);
                                      });
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// Strings route by hash instead of centroid; a smaller sweep keeps
// that path under the same differential.
TEST(CompactionDiff, StringSpecSweepUnderLevenshtein) {
  metric::Metric<std::string> lev((metric::LevenshteinMetric()));
  const std::vector<std::string> specs = {"linear-scan", "vp-tree",
                                          "laesa:k=4"};
  for (const std::string& spec : specs) {
    for (uint64_t seed = 0; seed < 6; ++seed) {
      util::Rng datarng(seed * 149 + 13);
      const auto base = dataset::DnaSequences(24, 4, 5, 12, 0.1, &datarng);
      RunDifferentialSequence<std::string>(
          spec, lev, base, 3000 + seed, /*exact=*/true,
          [](util::Rng* rng) { return RandomDna(rng); }, StringProbes);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// A retired generation must not free shards its successor shares: a
// shard's lifetime follows the shared_ptr graph, not the generation
// that built it — and a clean shard keeps its original epoch (and its
// identity) across any number of folds.
TEST(CompactionDiff, RetiredGenerationKeepsSharedShardsAlive) {
  // Three well-separated clusters in generation-1 data order: the
  // uniform split makes shard i = cluster i, so an insert near cluster
  // 2's center routes to shard 2 and shards 0/1 stay clean.
  std::vector<Vector> base;
  util::Rng rng(77);
  for (size_t cluster = 0; cluster < 3; ++cluster) {
    for (size_t i = 0; i < 8; ++i) {
      base.push_back({10.0 * cluster + rng.NextDouble(),
                      10.0 * cluster + rng.NextDouble()});
    }
  }
  auto live_result = LiveDatabase<Vector>::Open(base, L2(), 3, "vp-tree", 5);
  ASSERT_TRUE(live_result.ok()) << live_result.status();
  auto& live = *live_result.value();

  std::weak_ptr<const Generation<Vector>> gen1;
  std::weak_ptr<const index::SearchIndex<Vector>> shard0;
  const void* shard0_addr = nullptr;
  {
    auto pin = live.Pin();
    gen1 = pin.generation();
    shard0 = pin.database().shared_shard(0);
    shard0_addr = pin.database().shared_shard(0).get();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(live.Insert({20.0 + 0.01 * i, 20.0 - 0.01 * i}).ok());
    }
    ASSERT_TRUE(live.Compact().ok());
  }  // pin released: generation 1 retires

  const LiveCompactionStats stats = live.last_compaction_stats();
  EXPECT_FALSE(stats.rebalanced);
  EXPECT_EQ(stats.shards_rebuilt, 1u);
  EXPECT_EQ(stats.shards_shared, 2u);

  EXPECT_TRUE(gen1.expired())
      << "generation 1 should retire once unpinned";
  auto held = shard0.lock();
  ASSERT_NE(held, nullptr)
      << "a shard shared into generation 2 must outlive generation 1";
  EXPECT_EQ(live.Pin().database().shared_shard(0).get(), shard0_addr);
  EXPECT_EQ(live.Pin().database().shared_shard(0).get(), held.get());

  // A second fold over another shard-2-only delta keeps sharing the
  // same object forward: epoch 1 all the way into generation 3.
  ASSERT_TRUE(live.Insert({20.5, 20.5}).ok());
  ASSERT_TRUE(live.Remove(live.size() - 1).ok());
  ASSERT_TRUE(live.Insert({20.6, 20.4}).ok());
  ASSERT_TRUE(live.Compact().ok());
  auto pin = live.Pin();
  EXPECT_EQ(pin.generation_number(), 3u);
  EXPECT_EQ(pin.database().shared_shard(0).get(), shard0_addr);
  EXPECT_EQ(pin.generation()->epochs()[0], 1u);
  EXPECT_EQ(pin.generation()->epochs()[2], 3u);
}

}  // namespace
}  // namespace engine
}  // namespace distperm
