// Price's cake-cutting numbers (paper Section 4).
//
// S_d(m) is the maximum number of pieces formed by m hyperplanes of
// dimension d-1 in general position in d-dimensional Euclidean space:
//
//   S_d(0) = S_0(m) = 1
//   S_d(m) = S_d(m-1) + S_{d-1}(m-1)
//
// with the closed form S_d(m) = sum_{i=0}^{d} C(m, i).  These numbers
// upper-bound bisector-arrangement cell counts (Theorem 9).

#ifndef DISTPERM_CORE_CAKE_H_
#define DISTPERM_CORE_CAKE_H_

#include <cstdint>

#include "util/big_uint.h"

namespace distperm {
namespace core {

/// S_d(m) via the closed form sum_{i=0}^{d} C(m, i).  Exact.
util::BigUint CakeCount(int dimension, uint64_t cuts);

/// S_d(m) via Price's recurrence (memoized per call chain is unnecessary:
/// evaluated iteratively row by row).  Used to cross-check the closed
/// form in tests.
util::BigUint CakeCountByRecurrence(int dimension, uint64_t cuts);

/// S_d(m) as uint64; fatal on overflow.
uint64_t CakeCount64(int dimension, uint64_t cuts);

}  // namespace core
}  // namespace distperm

#endif  // DISTPERM_CORE_CAKE_H_
