#include "core/dimension_estimate.h"

#include <algorithm>
#include <cmath>

#include "core/euclidean_count.h"
#include "util/status.h"

namespace distperm {
namespace core {

double EstimateEuclideanDimension(uint64_t observed_permutations, int sites,
                                  int max_dimension) {
  DP_CHECK(sites >= 1);
  DP_CHECK(max_dimension >= 1);
  if (observed_permutations <= 1) return 0.0;
  EuclideanCounter counter;
  double log_observed = std::log(static_cast<double>(observed_permutations));
  double prev_log = 0.0;  // log N_{0,2}(k) = log 1
  for (int d = 1; d <= max_dimension; ++d) {
    double log_count = std::log(counter.Count(d, sites).ToDouble());
    if (log_observed <= log_count) {
      // Interpolate between d-1 and d in log space.
      double span = log_count - prev_log;
      if (span <= 0.0) return static_cast<double>(d);
      return (d - 1) + (log_observed - prev_log) / span;
    }
    prev_log = log_count;
  }
  return static_cast<double>(max_dimension);
}

double EstimateEuclideanDimensionMulti(
    const std::vector<std::pair<int, uint64_t>>& sites_and_counts,
    int max_dimension) {
  DP_CHECK(!sites_and_counts.empty());
  std::vector<double> estimates;
  estimates.reserve(sites_and_counts.size());
  for (const auto& [sites, count] : sites_and_counts) {
    estimates.push_back(
        EstimateEuclideanDimension(count, sites, max_dimension));
  }
  std::sort(estimates.begin(), estimates.end());
  size_t n = estimates.size();
  if (n % 2 == 1) return estimates[n / 2];
  return 0.5 * (estimates[n / 2 - 1] + estimates[n / 2]);
}

}  // namespace core
}  // namespace distperm
