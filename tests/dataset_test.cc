// Tests for the synthetic dataset generators and I/O.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "dataset/doc_gen.h"
#include "dataset/io.h"
#include "dataset/sisap_synth.h"
#include "dataset/string_gen.h"
#include "dataset/vector_gen.h"
#include "util/rng.h"

namespace distperm {
namespace dataset {
namespace {

TEST(VectorGen, UniformCubeShapeAndRange) {
  util::Rng rng(1);
  auto points = UniformCube(200, 5, &rng);
  ASSERT_EQ(points.size(), 200u);
  for (const auto& point : points) {
    ASSERT_EQ(point.size(), 5u);
    for (double coord : point) {
      EXPECT_GE(coord, 0.0);
      EXPECT_LT(coord, 1.0);
    }
  }
}

TEST(VectorGen, DeterministicBySeed) {
  util::Rng a(9), b(9), c(10);
  EXPECT_EQ(UniformCube(50, 3, &a), UniformCube(50, 3, &b));
  EXPECT_NE(UniformCube(50, 3, &a), UniformCube(50, 3, &c));
}

TEST(VectorGen, GaussianCentredAtHalf) {
  util::Rng rng(2);
  auto points = GaussianCloud(5000, 2, 0.1, &rng);
  double sum = 0.0;
  for (const auto& point : points) sum += point[0];
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.01);
}

TEST(VectorGen, ClusteredHasLowSpreadWithinClusters) {
  util::Rng rng(3);
  auto tight = ClusteredCloud(500, 4, 3, 0.01, &rng);
  ASSERT_EQ(tight.size(), 500u);
  // With sigma 0.01 and 3 clusters, the set of rounded-to-0.1 points
  // should be tiny compared to n.
  std::set<std::string> coarse;
  for (const auto& point : tight) {
    std::string key;
    for (double coord : point) {
      key += std::to_string(static_cast<int>(coord * 10.0)) + ",";
    }
    coarse.insert(key);
  }
  EXPECT_LT(coarse.size(), 50u);
}

TEST(VectorGen, LowDimEmbeddingHasAmbientDimension) {
  util::Rng rng(4);
  auto points = LowDimEmbedding(100, 20, 3, 0.0, &rng);
  ASSERT_EQ(points.size(), 100u);
  EXPECT_EQ(points[0].size(), 20u);
}

TEST(VectorGen, HistogramsAreNormalized) {
  util::Rng rng(5);
  auto histograms = HistogramCloud(50, 112, 3, &rng);
  for (const auto& histogram : histograms) {
    ASSERT_EQ(histogram.size(), 112u);
    double total = 0.0;
    for (double v : histogram) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(StringGen, DictionaryDistinctSortedLowercase) {
  LanguageProfile profile;
  profile.name = "TestLang";
  util::Rng rng(6);
  MarkovWordGenerator generator(profile);
  auto words = generator.Dictionary(500, &rng);
  ASSERT_EQ(words.size(), 500u);
  EXPECT_TRUE(std::is_sorted(words.begin(), words.end()));
  std::set<std::string> unique(words.begin(), words.end());
  EXPECT_EQ(unique.size(), 500u);
  for (const auto& word : words) {
    EXPECT_FALSE(word.empty());
    for (char c : word) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(StringGen, DifferentLanguagesDiffer) {
  LanguageProfile a, b;
  a.name = "LangA";
  b.name = "LangB";
  util::Rng rng_a(7), rng_b(7);
  auto words_a = MarkovWordGenerator(a).Dictionary(100, &rng_a);
  auto words_b = MarkovWordGenerator(b).Dictionary(100, &rng_b);
  EXPECT_NE(words_a, words_b);
}

TEST(StringGen, DnaAlphabetAndLengths) {
  util::Rng rng(8);
  auto sequences = DnaSequences(300, 5, 10, 30, 0.05, &rng);
  ASSERT_EQ(sequences.size(), 300u);
  std::set<std::string> unique(sequences.begin(), sequences.end());
  EXPECT_EQ(unique.size(), 300u);
  for (const auto& sequence : sequences) {
    EXPECT_GE(sequence.size(), 9u);   // one deletion below min possible
    EXPECT_LE(sequence.size(), 31u);  // one insertion above max possible
    for (char c : sequence) {
      EXPECT_TRUE(c == 'a' || c == 'c' || c == 'g' || c == 't') << c;
    }
  }
}

TEST(DocGen, SparseSortedNonEmpty) {
  util::Rng rng(9);
  DocCorpusProfile profile;
  auto docs = DocumentVectors(100, profile, &rng);
  ASSERT_EQ(docs.size(), 100u);
  for (const auto& doc : docs) {
    EXPECT_FALSE(doc.empty());
    for (size_t i = 1; i < doc.size(); ++i) {
      EXPECT_LT(doc[i - 1].first, doc[i].first);
    }
    for (const auto& [term, weight] : doc) {
      // Stopword ids live in [vocabulary, vocabulary + stopwords).
      EXPECT_LT(term, profile.vocabulary + profile.stopwords);
      EXPECT_GT(weight, 0.0);
    }
  }
}

TEST(SisapSynth, CatalogueHasTwelveEntries) {
  const auto& catalogue = SisapCatalogue();
  ASSERT_EQ(catalogue.size(), 12u);
  EXPECT_EQ(catalogue[0].name, "Dutch");
  EXPECT_EQ(catalogue[0].paper_n, 229328u);
  EXPECT_EQ(catalogue.back().name, "nasa");
}

TEST(SisapSynth, FindByName) {
  auto found = FindSisapDatabase("listeria");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().paper_n, 20660u);
  EXPECT_FALSE(FindSisapDatabase("nonexistent").ok());
}

TEST(SisapSynth, ScaledCardinality) {
  auto info = FindSisapDatabase("English").value();
  EXPECT_EQ(ScaledCardinality(info, 1.0), 69069u);
  EXPECT_EQ(ScaledCardinality(info, 0.01), 691u);
  EXPECT_EQ(ScaledCardinality(info, 1e-9), 64u);  // floor of 64
}

TEST(SisapSynth, StringDatabasesGenerate) {
  auto english = MakeStringDatabase("English", 0.002, 42);
  EXPECT_EQ(english.size(), 138u);
  auto listeria = MakeStringDatabase("listeria", 0.005, 42);
  EXPECT_EQ(listeria.size(), 103u);
  for (const auto& sequence : listeria) {
    for (char c : sequence) {
      EXPECT_TRUE(c == 'a' || c == 'c' || c == 'g' || c == 't');
    }
  }
}

TEST(SisapSynth, DocDatabasesGenerate) {
  auto docs = MakeDocDatabase("long", 0.1, 42);
  EXPECT_EQ(docs.size(), 127u);  // round(1265 * 0.1) = 127 (banker-free)
}

TEST(SisapSynth, VectorDatabasesGenerate) {
  auto colors = MakeVectorDatabase("colors", 0.001, 42);
  EXPECT_EQ(colors.size(), 113u);
  EXPECT_EQ(colors[0].size(), 112u);
  auto nasa = MakeVectorDatabase("nasa", 0.002, 42);
  EXPECT_EQ(nasa[0].size(), 20u);
}

TEST(SisapSynth, DeterministicBySeed) {
  EXPECT_EQ(MakeStringDatabase("German", 0.001, 1),
            MakeStringDatabase("German", 0.001, 1));
  EXPECT_NE(MakeStringDatabase("German", 0.001, 1),
            MakeStringDatabase("German", 0.001, 2));
}

TEST(Io, VectorsRoundTrip) {
  util::Rng rng(10);
  auto points = UniformCube(25, 4, &rng);
  std::string path = ::testing::TempDir() + "/vectors_roundtrip.txt";
  ASSERT_TRUE(WriteVectors(path, points).ok());
  auto loaded = ReadVectors(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < points[i].size(); ++j) {
      EXPECT_DOUBLE_EQ(loaded.value()[i][j], points[i][j]);
    }
  }
  std::remove(path.c_str());
}

TEST(Io, StringsRoundTrip) {
  std::vector<std::string> lines = {"alpha", "beta", "", "gamma delta"};
  std::string path = ::testing::TempDir() + "/strings_roundtrip.txt";
  ASSERT_TRUE(WriteStrings(path, lines).ok());
  auto loaded = ReadStrings(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), lines);
  std::remove(path.c_str());
}

TEST(Io, MissingFileFails) {
  EXPECT_FALSE(ReadVectors("/nonexistent/path/file.txt").ok());
  EXPECT_FALSE(ReadStrings("/nonexistent/path/file.txt").ok());
}

TEST(Io, RejectsNewlinesInStrings) {
  std::string path = ::testing::TempDir() + "/bad_strings.txt";
  EXPECT_FALSE(WriteStrings(path, {"a\nb"}).ok());
}

// --- error taxonomy: callers branch on the code, so each failure mode
// --- must map to exactly one.

std::string WriteRawFile(const std::string& name, const std::string& body) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(Io, MissingFileIsNotFound) {
  EXPECT_EQ(ReadVectors("/nonexistent/path/file.txt").status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(ReadStrings("/nonexistent/path/file.txt").status().code(),
            util::StatusCode::kNotFound);
}

TEST(Io, EmptyVectorFileIsIoError) {
  std::string path = WriteRawFile("empty_vectors.txt", "");
  EXPECT_EQ(ReadVectors(path).status().code(), util::StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(Io, MalformedHeaderIsIoError) {
  for (const char* body : {"hello\n", "3\n", "2 3 4\n", "-1 nope\n"}) {
    std::string path = WriteRawFile("bad_header.txt", body);
    auto loaded = ReadVectors(path);
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError) << body;
    std::remove(path.c_str());
  }
}

TEST(Io, TruncatedPayloadIsIoError) {
  std::string path =
      WriteRawFile("truncated_vectors.txt", "3 2\n0 1\n2 3\n");
  auto loaded = ReadVectors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Io, DimensionMismatchIsInvalidArgument) {
  for (const char* body : {"2 3\n0 1 2\n3 4\n",      // too few coordinates
                           "2 2\n0 1\n2 3 4\n"}) {   // too many
    std::string path = WriteRawFile("dim_mismatch.txt", body);
    auto loaded = ReadVectors(path);
    ASSERT_FALSE(loaded.ok()) << body;
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument)
        << body;
    std::remove(path.c_str());
  }
}

TEST(Io, NonNumericTokenIsIoError) {
  std::string path = WriteRawFile("non_numeric.txt", "1 2\n0.5 abc\n");
  auto loaded = ReadVectors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(Io, WriteVectorsRejectsInconsistentDimensions) {
  std::string path = ::testing::TempDir() + "/inconsistent.txt";
  util::Status status = WriteVectors(path, {{1.0, 2.0}, {3.0}});
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dataset
}  // namespace distperm
