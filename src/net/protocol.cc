#include "net/protocol.h"

#include "storage/crc32.h"

namespace distperm {
namespace net {

const char* WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kOk:
      return "OK";
    case WireCode::kInvalidArgument:
      return "InvalidArgument";
    case WireCode::kOutOfRange:
      return "OutOfRange";
    case WireCode::kNotFound:
      return "NotFound";
    case WireCode::kIoError:
      return "IoError";
    case WireCode::kUnimplemented:
      return "Unimplemented";
    case WireCode::kInternal:
      return "Internal";
    case WireCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

WireCode WireCodeFromStatus(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kOk:
      return WireCode::kOk;
    case util::StatusCode::kInvalidArgument:
      return WireCode::kInvalidArgument;
    case util::StatusCode::kOutOfRange:
      return WireCode::kOutOfRange;
    case util::StatusCode::kNotFound:
      return WireCode::kNotFound;
    case util::StatusCode::kIoError:
      return WireCode::kIoError;
    case util::StatusCode::kUnimplemented:
      return WireCode::kUnimplemented;
    case util::StatusCode::kInternal:
      return WireCode::kInternal;
    case util::StatusCode::kDeadlineExceeded:
      // A timed-out operation is retryable, which is what kUnavailable
      // tells a peer; the wire needs no ninth code for it.
      return WireCode::kUnavailable;
  }
  return WireCode::kInternal;
}

std::string EncodeFrame(MessageType type, const std::string& payload) {
  DP_CHECK(payload.size() <= kMaxPayloadSize);
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  storage::PutFixed32(&frame, kFrameMagic);
  frame.push_back(static_cast<char>(kProtocolVersion));
  frame.push_back(static_cast<char>(type));
  frame.push_back(0);
  frame.push_back(0);
  storage::PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  storage::PutFixed32(&frame,
                      storage::Crc32c(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

FrameParse ParseFrame(const uint8_t* data, size_t size, FrameView* out,
                      size_t* frame_size, util::Status* error) {
  // Reject garbage as early as the bytes allow: a stream that cannot
  // become a valid frame fails on its first four bytes, not after the
  // peer ships a whole bogus "payload".
  if (size < 4) return FrameParse::kIncomplete;
  if (storage::GetFixed32(data) != kFrameMagic) {
    *error = util::Status::InvalidArgument("net: bad frame magic");
    return FrameParse::kError;
  }
  if (size < 5) return FrameParse::kIncomplete;
  if (data[4] != kProtocolVersion) {
    *error = util::Status::InvalidArgument(
        "net: protocol version skew (peer speaks v" +
        std::to_string(data[4]) + ", this build speaks v" +
        std::to_string(kProtocolVersion) + ")");
    return FrameParse::kError;
  }
  if (size < kFrameHeaderSize) return FrameParse::kIncomplete;
  const uint32_t payload_size = storage::GetFixed32(data + 8);
  if (payload_size > kMaxPayloadSize) {
    *error = util::Status::InvalidArgument(
        "net: frame payload of " + std::to_string(payload_size) +
        " bytes exceeds the " + std::to_string(kMaxPayloadSize) +
        "-byte cap");
    return FrameParse::kError;
  }
  const size_t total = kFrameHeaderSize + payload_size;
  if (size < total) return FrameParse::kIncomplete;
  const uint32_t expected_crc = storage::GetFixed32(data + 12);
  const uint32_t actual_crc =
      storage::Crc32c(data + kFrameHeaderSize, payload_size);
  if (expected_crc != actual_crc) {
    *error = util::Status::IoError("net: frame payload checksum mismatch");
    return FrameParse::kError;
  }
  out->version = data[4];
  out->type = static_cast<MessageType>(data[5]);
  out->payload = data + kFrameHeaderSize;
  out->payload_size = payload_size;
  *frame_size = total;
  return FrameParse::kComplete;
}

void EncodeSearchResponse(std::string* out,
                          const WireSearchResponse& response) {
  out->push_back(static_cast<char>(response.status.code));
  storage::PutLengthPrefixed(out, response.status.message);
  uint8_t flags = 0;
  if (response.truncated) flags |= kResponseTruncated;
  if (response.cache_hit) flags |= kResponseCacheHit;
  if (response.bound_seeded) flags |= kResponseBoundSeeded;
  out->push_back(static_cast<char>(flags));
  storage::PutFixed64(out, response.generation);
  storage::PutFixed64(out, response.stats.distance_computations);
  storage::PutFixed64(out, response.stats.pruning_eliminated);
  storage::PutFixed64(out, response.stats.candidates_verified);
  storage::PutFixed32(out, static_cast<uint32_t>(response.results.size()));
  for (const index::SearchResult& result : response.results) {
    storage::PutFixed64(out, result.id);
    storage::PutDouble(out, result.distance);
  }
}

util::Result<WireSearchResponse> DecodeSearchResponse(const uint8_t* data,
                                                      size_t size) {
  PayloadReader reader(data, size);
  WireSearchResponse response;
  const uint8_t code = reader.U8();
  response.status.message = reader.Bytes();
  const uint8_t flags = reader.U8();
  response.generation = reader.U64();
  response.stats.distance_computations = reader.U64();
  response.stats.pruning_eliminated = reader.U64();
  response.stats.candidates_verified = reader.U64();
  const uint32_t count = reader.U32();
  // Bound the reserve by what the payload can actually hold (16 bytes
  // per result), so a corrupt count cannot force a huge allocation.
  if (reader.ok() && static_cast<size_t>(count) * 16 > size) {
    return util::Status::InvalidArgument(
        "net: search response result count exceeds the payload");
  }
  response.results.reserve(count);
  for (uint32_t i = 0; i < count && reader.ok(); ++i) {
    index::SearchResult result;
    result.id = static_cast<size_t>(reader.U64());
    result.distance = reader.F64();
    response.results.push_back(result);
  }
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "net: truncated or oversized search response payload");
  }
  if (code > static_cast<uint8_t>(WireCode::kUnavailable)) {
    return util::Status::InvalidArgument(
        "net: unknown wire status code " + std::to_string(code));
  }
  response.status.code = static_cast<WireCode>(code);
  response.truncated = (flags & kResponseTruncated) != 0;
  response.cache_hit = (flags & kResponseCacheHit) != 0;
  response.bound_seeded = (flags & kResponseBoundSeeded) != 0;
  return response;
}

void EncodeInsertResponse(std::string* out,
                          const WireInsertResponse& response) {
  out->push_back(static_cast<char>(response.status.code));
  storage::PutLengthPrefixed(out, response.status.message);
  storage::PutFixed64(out, response.id);
}

util::Result<WireInsertResponse> DecodeInsertResponse(const uint8_t* data,
                                                      size_t size) {
  PayloadReader reader(data, size);
  WireInsertResponse response;
  const uint8_t code = reader.U8();
  response.status.message = reader.Bytes();
  response.id = reader.U64();
  if (!reader.AtEnd() ||
      code > static_cast<uint8_t>(WireCode::kUnavailable)) {
    return util::Status::InvalidArgument(
        "net: malformed insert response payload");
  }
  response.status.code = static_cast<WireCode>(code);
  return response;
}

void EncodeRemoveRequest(std::string* out, uint64_t id) {
  storage::PutFixed64(out, id);
}

util::Result<uint64_t> DecodeRemoveRequest(const uint8_t* data,
                                           size_t size) {
  PayloadReader reader(data, size);
  const uint64_t id = reader.U64();
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "net: malformed remove request payload");
  }
  return id;
}

void EncodeWireStatus(std::string* out, const WireStatus& status) {
  out->push_back(static_cast<char>(status.code));
  storage::PutLengthPrefixed(out, status.message);
}

util::Result<WireStatus> DecodeWireStatus(const uint8_t* data, size_t size) {
  PayloadReader reader(data, size);
  WireStatus status;
  const uint8_t code = reader.U8();
  status.message = reader.Bytes();
  if (!reader.AtEnd() ||
      code > static_cast<uint8_t>(WireCode::kUnavailable)) {
    return util::Status::InvalidArgument(
        "net: malformed status payload");
  }
  status.code = static_cast<WireCode>(code);
  return status;
}

// ------------------------------------------------- replication messages

void EncodeCatchUpRequest(std::string* out, const CatchUpRequest& request) {
  storage::PutLengthPrefixed(out, request.point_kind);
  storage::PutLengthPrefixed(out, request.spec);
  storage::PutFixed64(out, request.seed);
  storage::PutFixed64(out, request.shard_count);
  storage::PutFixed64(out, request.generation);
  storage::PutFixed64(out, request.next_seq);
}

util::Result<CatchUpRequest> DecodeCatchUpRequest(const uint8_t* data,
                                                  size_t size) {
  PayloadReader reader(data, size);
  CatchUpRequest request;
  request.point_kind = reader.Bytes();
  request.spec = reader.Bytes();
  request.seed = reader.U64();
  request.shard_count = reader.U64();
  request.generation = reader.U64();
  request.next_seq = reader.U64();
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "net: malformed catch-up request payload");
  }
  return request;
}

void EncodeCatchUpResponse(std::string* out,
                           const CatchUpResponse& response) {
  EncodeWireStatus(out, response.status);
  out->push_back(static_cast<char>(response.action));
  storage::PutFixed64(out, response.generation);
  storage::PutFixed64(out, response.next_seq);
  storage::PutFixed64(out, response.snapshot_bytes);
}

util::Result<CatchUpResponse> DecodeCatchUpResponse(const uint8_t* data,
                                                    size_t size) {
  PayloadReader reader(data, size);
  CatchUpResponse response;
  const uint8_t code = reader.U8();
  response.status.message = reader.Bytes();
  const uint8_t action = reader.U8();
  response.generation = reader.U64();
  response.next_seq = reader.U64();
  response.snapshot_bytes = reader.U64();
  if (!reader.AtEnd() ||
      code > static_cast<uint8_t>(WireCode::kUnavailable) ||
      action < static_cast<uint8_t>(CatchUpAction::kStreamWal) ||
      action > static_cast<uint8_t>(CatchUpAction::kFetchSnapshot)) {
    return util::Status::InvalidArgument(
        "net: malformed catch-up response payload");
  }
  response.status.code = static_cast<WireCode>(code);
  response.action = static_cast<CatchUpAction>(action);
  return response;
}

void EncodeFetchSnapshotRequest(std::string* out,
                                const FetchSnapshotRequest& request) {
  storage::PutFixed64(out, request.generation);
  storage::PutFixed64(out, request.offset);
}

util::Result<FetchSnapshotRequest> DecodeFetchSnapshotRequest(
    const uint8_t* data, size_t size) {
  PayloadReader reader(data, size);
  FetchSnapshotRequest request;
  request.generation = reader.U64();
  request.offset = reader.U64();
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "net: malformed fetch-snapshot request payload");
  }
  return request;
}

void EncodeSnapshotChunk(std::string* out, const SnapshotChunk& chunk) {
  EncodeWireStatus(out, chunk.status);
  storage::PutFixed64(out, chunk.generation);
  storage::PutFixed64(out, chunk.total_bytes);
  storage::PutFixed64(out, chunk.offset);
  out->push_back(chunk.last ? 1 : 0);
  storage::PutFixed32(out, chunk.crc);
  storage::PutLengthPrefixed(out, chunk.data);
}

util::Result<SnapshotChunk> DecodeSnapshotChunk(const uint8_t* data,
                                                size_t size) {
  PayloadReader reader(data, size);
  SnapshotChunk chunk;
  const uint8_t code = reader.U8();
  chunk.status.message = reader.Bytes();
  chunk.generation = reader.U64();
  chunk.total_bytes = reader.U64();
  chunk.offset = reader.U64();
  const uint8_t last = reader.U8();
  chunk.crc = reader.U32();
  chunk.data = reader.Bytes();
  if (!reader.AtEnd() ||
      code > static_cast<uint8_t>(WireCode::kUnavailable) || last > 1) {
    return util::Status::InvalidArgument(
        "net: malformed snapshot chunk payload");
  }
  chunk.status.code = static_cast<WireCode>(code);
  chunk.last = last == 1;
  return chunk;
}

void EncodeStreamWalRequest(std::string* out,
                            const StreamWalRequest& request) {
  storage::PutFixed64(out, request.generation);
  storage::PutFixed64(out, request.next_seq);
}

util::Result<StreamWalRequest> DecodeStreamWalRequest(const uint8_t* data,
                                                      size_t size) {
  PayloadReader reader(data, size);
  StreamWalRequest request;
  request.generation = reader.U64();
  request.next_seq = reader.U64();
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "net: malformed stream-wal request payload");
  }
  return request;
}

void EncodeWalStreamFrame(std::string* out, const WalStreamFrame& frame) {
  out->push_back(static_cast<char>(frame.kind));
  storage::PutFixed64(out, frame.generation);
  if (frame.kind == kWalFrameRecord) {
    storage::PutFixed64(out, frame.seq);
    storage::PutLengthPrefixed(out, frame.record);
    return;
  }
  storage::PutFixed64(out, frame.folded);
}

util::Result<WalStreamFrame> DecodeWalStreamFrame(const uint8_t* data,
                                                  size_t size) {
  PayloadReader reader(data, size);
  WalStreamFrame frame;
  frame.kind = reader.U8();
  frame.generation = reader.U64();
  if (frame.kind == kWalFrameRecord) {
    frame.seq = reader.U64();
    frame.record = reader.Bytes();
  } else if (frame.kind == kWalFrameRotate) {
    frame.folded = reader.U64();
  } else {
    return util::Status::InvalidArgument(
        "net: unknown wal stream frame kind " + std::to_string(frame.kind));
  }
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "net: malformed wal stream frame payload");
  }
  return frame;
}

}  // namespace net
}  // namespace distperm
