#include "util/big_uint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace distperm {
namespace util {
namespace {

TEST(BigUint, DefaultIsZero) {
  BigUint zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.ToUint64(), 0u);
  EXPECT_EQ(zero.BitLength(), 0u);
}

TEST(BigUint, FromUint64RoundTrips) {
  for (uint64_t v : {0ULL, 1ULL, 2ULL, 255ULL, 256ULL, 65535ULL, 65536ULL,
                     4294967295ULL, 4294967296ULL, 18446744073709551615ULL}) {
    BigUint big(v);
    EXPECT_TRUE(big.FitsUint64());
    EXPECT_EQ(big.ToUint64(), v) << v;
  }
}

TEST(BigUint, ToStringMatchesDecimal) {
  EXPECT_EQ(BigUint(0).ToString(), "0");
  EXPECT_EQ(BigUint(7).ToString(), "7");
  EXPECT_EQ(BigUint(1000000000).ToString(), "1000000000");
  EXPECT_EQ(BigUint(18446744073709551615ULL).ToString(),
            "18446744073709551615");
}

TEST(BigUint, FromDecimalStringRoundTrips) {
  for (const char* text :
       {"0", "1", "42", "4294967296", "18446744073709551616",
        "123456789012345678901234567890"}) {
    auto parsed = BigUint::FromDecimalString(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.value().ToString(), text);
  }
}

TEST(BigUint, FromDecimalStringRejectsJunk) {
  EXPECT_FALSE(BigUint::FromDecimalString("").ok());
  EXPECT_FALSE(BigUint::FromDecimalString("12a").ok());
  EXPECT_FALSE(BigUint::FromDecimalString("-3").ok());
  EXPECT_FALSE(BigUint::FromDecimalString(" 3").ok());
}

TEST(BigUint, AdditionCarries) {
  BigUint a(0xffffffffULL);
  a += BigUint(1);
  EXPECT_EQ(a.ToUint64(), 0x100000000ULL);
  BigUint b(18446744073709551615ULL);
  b += BigUint(1);
  EXPECT_EQ(b.ToString(), "18446744073709551616");
}

TEST(BigUint, SubtractionBorrows) {
  BigUint a(0x100000000ULL);
  a -= BigUint(1);
  EXPECT_EQ(a.ToUint64(), 0xffffffffULL);
  BigUint b = BigUint::Pow(BigUint(10), 30);
  BigUint c = b - BigUint(1);
  EXPECT_EQ(c.ToString(), std::string(30, '9'));
}

TEST(BigUint, SubtractionToZero) {
  BigUint a(12345);
  a -= BigUint(12345);
  EXPECT_TRUE(a.IsZero());
}

TEST(BigUint, MultiplicationSmallAndLarge) {
  EXPECT_EQ((BigUint(12345) * BigUint(67890)).ToUint64(), 838102050ULL);
  BigUint big = BigUint::Pow(BigUint(2), 100);
  EXPECT_EQ(big.ToString(), "1267650600228229401496703205376");
  EXPECT_EQ((big * BigUint(0)).ToString(), "0");
  EXPECT_EQ((BigUint(0) * big).ToString(), "0");
}

TEST(BigUint, MulSmallAddSmallDivSmall) {
  BigUint v(1);
  for (int i = 0; i < 40; ++i) v.MulSmall(10);
  v.AddSmall(7);
  EXPECT_EQ(v.ToString(), "1" + std::string(39, '0') + "7");
  uint32_t rem = v.DivSmall(10);
  EXPECT_EQ(rem, 7u);
  EXPECT_EQ(v.ToString(), "1" + std::string(39, '0'));
}

TEST(BigUint, CompareOrdersValues) {
  BigUint small(41);
  BigUint large = BigUint::Pow(BigUint(2), 70);
  EXPECT_LT(small, large);
  EXPECT_GT(large, small);
  EXPECT_EQ(small.Compare(BigUint(41)), 0);
  EXPECT_TRUE(BigUint(41) == small);
  EXPECT_TRUE(BigUint(42) != small);
  EXPECT_TRUE(small <= BigUint(41));
  EXPECT_TRUE(small >= BigUint(41));
}

TEST(BigUint, PowEdgeCases) {
  EXPECT_EQ(BigUint::Pow(BigUint(5), 0).ToUint64(), 1u);
  EXPECT_EQ(BigUint::Pow(BigUint(0), 0).ToUint64(), 1u);
  EXPECT_EQ(BigUint::Pow(BigUint(0), 5).ToUint64(), 0u);
  EXPECT_EQ(BigUint::Pow(BigUint(3), 4).ToUint64(), 81u);
}

TEST(BigUint, FactorialValues) {
  EXPECT_EQ(BigUint::Factorial(0).ToUint64(), 1u);
  EXPECT_EQ(BigUint::Factorial(1).ToUint64(), 1u);
  EXPECT_EQ(BigUint::Factorial(12).ToUint64(), 479001600u);
  EXPECT_EQ(BigUint::Factorial(20).ToUint64(), 2432902008176640000ULL);
  EXPECT_EQ(BigUint::Factorial(25).ToString(),
            "15511210043330985984000000");
}

TEST(BigUint, BinomialValues) {
  EXPECT_EQ(BigUint::Binomial(0, 0).ToUint64(), 1u);
  EXPECT_EQ(BigUint::Binomial(5, 2).ToUint64(), 10u);
  EXPECT_EQ(BigUint::Binomial(12, 7).ToUint64(), 792u);
  EXPECT_EQ(BigUint::Binomial(5, 6).ToUint64(), 0u);
  EXPECT_EQ(BigUint::Binomial(100, 50).ToString(),
            "100891344545564193334812497256");
}

TEST(BigUint, BinomialSymmetry) {
  for (uint64_t n = 0; n <= 30; ++n) {
    for (uint64_t k = 0; k <= n; ++k) {
      EXPECT_EQ(BigUint::Binomial(n, k), BigUint::Binomial(n, n - k))
          << n << " choose " << k;
    }
  }
}

TEST(BigUint, PascalIdentity) {
  for (uint64_t n = 1; n <= 25; ++n) {
    for (uint64_t k = 1; k <= n; ++k) {
      EXPECT_EQ(BigUint::Binomial(n, k),
                BigUint::Binomial(n - 1, k) + BigUint::Binomial(n - 1, k - 1));
    }
  }
}

TEST(BigUint, BitLength) {
  EXPECT_EQ(BigUint(1).BitLength(), 1u);
  EXPECT_EQ(BigUint(2).BitLength(), 2u);
  EXPECT_EQ(BigUint(255).BitLength(), 8u);
  EXPECT_EQ(BigUint(256).BitLength(), 9u);
  EXPECT_EQ(BigUint::Pow(BigUint(2), 100).BitLength(), 101u);
}

TEST(BigUint, ToDoubleApproximates) {
  EXPECT_DOUBLE_EQ(BigUint(1000).ToDouble(), 1000.0);
  double big = BigUint::Pow(BigUint(10), 30).ToDouble();
  EXPECT_NEAR(big, 1e30, 1e16);
}

// Property sweep: (a + b) - b == a and a * b / b == a for assorted values.
class BigUintPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigUintPropertyTest, AddSubInverse) {
  uint64_t seed = GetParam();
  BigUint a = BigUint::Pow(BigUint(seed % 97 + 2), seed % 13 + 1);
  BigUint b = BigUint::Pow(BigUint(seed % 89 + 2), seed % 11 + 1);
  BigUint sum = a + b;
  EXPECT_EQ(sum - b, a);
  EXPECT_EQ(sum - a, b);
}

TEST_P(BigUintPropertyTest, MulDivSmallInverse) {
  uint64_t seed = GetParam();
  BigUint a = BigUint::Pow(BigUint(seed % 97 + 2), seed % 17 + 1);
  uint32_t factor = static_cast<uint32_t>(seed % 1000 + 1);
  BigUint product = a;
  product.MulSmall(factor);
  EXPECT_EQ(product.DivSmall(factor), 0u);
  EXPECT_EQ(product, a);
}

TEST_P(BigUintPropertyTest, StringRoundTrip) {
  uint64_t seed = GetParam();
  BigUint a = BigUint::Pow(BigUint(seed + 2), 7);
  auto parsed = BigUint::FromDecimalString(a.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), a);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BigUintPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace util
}  // namespace distperm
