// Enumeration of distance-permutation cells by dense evaluation.
//
// In non-Euclidean Lp spaces the bisector arrangements are not
// well-behaved (Section 4: bisectors may fail to intersect, intersect
// twice, or share rays), so exact cell counting is replaced by dense
// evaluation: sweep a grid (or random sample) across a box, compute the
// distance permutation at every probe, and collect the distinct
// permutations.  Counts obtained this way are lower bounds on the true
// cell count that converge as the resolution grows; the paper's own
// Section 5 experiments (Table 3 and the 108-permutation counterexample)
// are of exactly this kind.

#ifndef DISTPERM_GEOMETRY_CELL_ENUM_H_
#define DISTPERM_GEOMETRY_CELL_ENUM_H_

#include <cstdint>
#include <vector>

#include "core/distance_permutation.h"
#include "metric/metric.h"
#include "util/rng.h"

namespace distperm {
namespace geometry {

/// Result of a cell enumeration: the distinct permutations seen (as
/// Lehmer ranks, sorted) plus the probe count.
struct CellEnumeration {
  std::vector<uint64_t> permutation_ranks;
  uint64_t probes = 0;

  size_t count() const { return permutation_ranks.size(); }
};

/// Evaluates the distance permutation at every vertex of a regular grid
/// with `resolution` points per axis spanning [lo, hi]^d, under the Lp
/// metric.  d = sites[0].size() must be small (probes = resolution^d).
CellEnumeration EnumerateCellsByGrid(const std::vector<metric::Vector>& sites,
                                     double p, double lo, double hi,
                                     size_t resolution);

/// Evaluates the distance permutation at `samples` uniform random points
/// of [lo, hi]^d — the same experiment as the paper's random-vector runs.
CellEnumeration EnumerateCellsBySampling(
    const std::vector<metric::Vector>& sites, double p, double lo, double hi,
    uint64_t samples, util::Rng* rng);

/// Permutations present in `a` but not in `b` (both sorted rank lists).
std::vector<uint64_t> PermutationSetDifference(
    const std::vector<uint64_t>& a, const std::vector<uint64_t>& b);

}  // namespace geometry
}  // namespace distperm

#endif  // DISTPERM_GEOMETRY_CELL_ENUM_H_
