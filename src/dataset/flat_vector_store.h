// Flat, cache-friendly storage for a dense-vector database.
//
// A vector database held as std::vector<metric::Vector> scatters every
// point across the heap: a linear scan chases one pointer per point and
// the rows are rarely contiguous.  FlatVectorStore packs the whole
// database into a single row-major buffer whose rows start on 64-byte
// (cache-line) boundaries, so the blocked kernels in metric/kernels.h
// stream over the data with unit-stride loads and hardware prefetch.
//
// Rows are padded from `dim` to `stride` doubles (stride is dim rounded
// up to a multiple of 8, i.e. one cache line of doubles); the padding is
// zero-filled and never read by the kernels.  VectorView is a cheap
// pointer + dimension handle onto one row.

#ifndef DISTPERM_DATASET_FLAT_VECTOR_STORE_H_
#define DISTPERM_DATASET_FLAT_VECTOR_STORE_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "metric/metric.h"

namespace distperm {
namespace dataset {

/// Non-owning handle onto one packed row: pointer + dimension.
struct VectorView {
  const double* data = nullptr;
  size_t dim = 0;

  double operator[](size_t i) const { return data[i]; }
  const double* begin() const { return data; }
  const double* end() const { return data + dim; }
};

/// One contiguous row-major buffer holding every point of a database.
/// Move-only (the buffer is a single aligned allocation); immutable
/// after construction and therefore freely shared across query threads.
class FlatVectorStore {
 public:
  /// Row alignment in bytes (one x86 cache line).
  static constexpr size_t kRowAlignBytes = 64;

  /// An empty store (size() == 0).
  FlatVectorStore() = default;

  /// Packs `points` into the flat buffer.  All points must share one
  /// dimension >= 1 (fatal otherwise); an empty database yields an
  /// empty store.
  explicit FlatVectorStore(const std::vector<metric::Vector>& points);

  FlatVectorStore(FlatVectorStore&&) = default;
  FlatVectorStore& operator=(FlatVectorStore&&) = default;
  FlatVectorStore(const FlatVectorStore&) = delete;
  FlatVectorStore& operator=(const FlatVectorStore&) = delete;

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }
  /// Doubles per row (dim rounded up to a multiple of 8).
  size_t stride() const { return stride_; }

  /// Pointer to row i (64-byte aligned).
  const double* row(size_t i) const { return data_.get() + i * stride_; }
  /// View of row i.
  VectorView view(size_t i) const { return {row(i), dim_}; }
  /// Copies row i back out as a heap vector.
  metric::Vector ToVector(size_t i) const;

  /// Base of the packed buffer (size() * stride() doubles).
  const double* data() const { return data_.get(); }
  /// Total bytes held by the packed buffer.
  uint64_t AllocatedBytes() const {
    return static_cast<uint64_t>(size_) * stride_ * sizeof(double);
  }

 private:
  struct FreeDeleter {
    void operator()(double* p) const { std::free(p); }
  };

  std::unique_ptr<double[], FreeDeleter> data_;
  size_t size_ = 0;
  size_t dim_ = 0;
  size_t stride_ = 0;
};

}  // namespace dataset
}  // namespace distperm

#endif  // DISTPERM_DATASET_FLAT_VECTOR_STORE_H_
