#include "index/search.h"

namespace distperm {
namespace index {

const char* SearchModeName(SearchMode mode) {
  switch (mode) {
    case SearchMode::kKnn:
      return "knn";
    case SearchMode::kRange:
      return "range";
    case SearchMode::kKnnWithinRadius:
      return "knn-within-radius";
  }
  return "unknown";
}

const char* ShardSchedulingName(ShardScheduling policy) {
  switch (policy) {
    case ShardScheduling::kIndependent:
      return "independent";
    case ShardScheduling::kCooperative:
      return "cooperative";
    case ShardScheduling::kSeedFirst:
      return "seed-first";
  }
  return "unknown";
}

void SortResults(std::vector<SearchResult>* results) {
  std::sort(results->begin(), results->end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
}

void MergeDeltaResults(std::vector<SearchResult>* base,
                       const std::function<bool(size_t)>& is_removed,
                       std::vector<SearchResult> delta_hits,
                       SearchMode mode, size_t k) {
  size_t kept = 0;
  for (size_t i = 0; i < base->size(); ++i) {
    if (is_removed((*base)[i].id)) continue;
    (*base)[kept++] = (*base)[i];
  }
  base->resize(kept);
  base->insert(base->end(), delta_hits.begin(), delta_hits.end());
  SortResults(base);
  if (mode != SearchMode::kRange && base->size() > k) base->resize(k);
}

void KnnCollector::Offer(size_t id, double distance) {
  if (heap_.size() < k_) {
    heap_.push_back({distance, id});
    std::push_heap(heap_.begin(), heap_.end());
    return;
  }
  if (k_ == 0) return;
  Entry candidate{distance, id};
  if (candidate < heap_.front()) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.back() = candidate;
    std::push_heap(heap_.begin(), heap_.end());
  }
}

double KnnCollector::Radius() const {
  if (k_ == 0) return -std::numeric_limits<double>::infinity();
  if (heap_.size() < k_) return std::numeric_limits<double>::infinity();
  return heap_.front().distance;
}

std::vector<SearchResult> KnnCollector::Take() {
  std::vector<SearchResult> results;
  results.reserve(heap_.size());
  for (const Entry& entry : heap_) {
    results.push_back({entry.id, entry.distance});
  }
  heap_.clear();
  SortResults(&results);
  return results;
}

std::vector<SearchResult> SearchContext::TakeResults() {
  if (mode_ == SearchMode::kRange) {
    SortResults(&range_results_);
    return std::move(range_results_);
  }
  return collector_->Take();
}

}  // namespace index
}  // namespace distperm
