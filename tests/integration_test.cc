// Cross-module integration tests: each one exercises the full pipeline
// (dataset -> metric -> permutations -> counting -> theory) and pins the
// result against an independently known value from the paper.

#include <gtest/gtest.h>

#include <numeric>

#include "core/all_perms_construction.h"
#include "core/dimension_estimate.h"
#include "core/euclidean_count.h"
#include "core/perm_counter.h"
#include "core/perm_table.h"
#include "core/bounds.h"
#include "core/tree_count.h"
#include "dataset/string_gen.h"
#include "dataset/vector_gen.h"
#include "geometry/arrangement2d.h"
#include "geometry/cell_enum.h"
#include "index/distperm_index.h"
#include "metric/lp.h"
#include "metric/string_metrics.h"
#include "util/rng.h"

namespace distperm {
namespace {

using core::Permutation;
using metric::Vector;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

TEST(Integration, OneDimensionalDataAchievesTheorem7Row1) {
  // d = 1, any Lp: the maximum C(k,2)+1 is achieved by dense uniform
  // data with probability 1 — the Table 3 d = 1 row is deterministic
  // (7, 29, 67 for k = 4, 8, 12).
  util::Rng rng(101);
  auto data = dataset::UniformCube(50000, 1, &rng);
  core::EuclideanCounter counter;
  for (size_t k : {4u, 8u, 12u}) {
    auto sites = core::SelectRandomSites(data, k, &rng);
    auto result = core::CountDistinctPermutations(data, sites, L2());
    EXPECT_EQ(result.distinct_permutations,
              counter.Count64(1, static_cast<int>(k)))
        << "k=" << k;
  }
}

TEST(Integration, Theorem6WitnessesCountedAsDatabase) {
  // Feed the Theorem 6 witness set through the generic database counter:
  // it must report exactly k! distinct permutations — the construction,
  // the counter, and the codec all agreeing.
  auto construction = core::BuildAllPermsConstruction(5, 2.0);
  auto result = core::CountDistinctPermutations(
      construction.witnesses, construction.sites, L2());
  EXPECT_EQ(result.distinct_permutations, 120u);
}

TEST(Integration, ArrangementSamplingAndRecurrenceAgree) {
  // Three independent methods, one answer: the Theorem 7 recurrence,
  // the exact rational bisector arrangement, and dense grid probing.
  std::vector<geometry::IntPoint2> int_sites = {
      {12, 7}, {93, 40}, {41, 88}, {70, 15}, {25, 51}};
  std::vector<Vector> sites;
  for (const auto& s : int_sites) {
    sites.push_back({static_cast<double>(s[0]) / 100.0,
                     static_cast<double>(s[1]) / 100.0});
  }
  core::EuclideanCounter counter;
  uint64_t predicted = counter.Count64(2, 5);  // 46
  auto arrangement = geometry::EuclideanBisectorArrangement(int_sites);
  EXPECT_EQ(arrangement.CountRegions(), predicted);
  // Grid probing needs both reach (outer unbounded cells) and density
  // (slivers between nearly parallel bisectors); 1500^2 probes over
  // [-9, 10]^2 resolves all 46 cells for this configuration.
  auto cells =
      geometry::EnumerateCellsByGrid(sites, 2.0, -9.0, 10.0, 1500);
  EXPECT_EQ(cells.count(), predicted);
}

TEST(Integration, DistPermIndexCountMatchesGenericCounter) {
  // The index's stored permutations and the standalone counter must see
  // the same number of distinct permutations when given the same sites.
  util::Rng rng(103);
  auto data = dataset::UniformCube(3000, 3, &rng);
  util::Rng site_rng(104);
  index::DistPermIndex<Vector> index(data, L2(), 7, &site_rng);
  auto result =
      core::CountDistinctPermutations(data, index.sites(), L2());
  EXPECT_EQ(index.DistinctPermutationCount(),
            result.distinct_permutations);
}

TEST(Integration, TreeCountersAgreeWithEuclideanLineEmbedding) {
  // A path tree is isometric to points on a line; the tree counter and
  // the vector-space counter over the embedded points must agree.
  auto pc = core::Corollary5Construction(5);
  size_t tree_count =
      core::CountTreePermutationsBruteForce(pc.tree, pc.sites);
  // Embed: vertex i -> the 1-D point (i).
  std::vector<Vector> embedded;
  for (size_t v = 0; v < pc.tree.size(); ++v) {
    embedded.push_back({static_cast<double>(v)});
  }
  std::vector<Vector> embedded_sites;
  for (size_t s : pc.sites) {
    embedded_sites.push_back({static_cast<double>(s)});
  }
  auto vector_count =
      core::CountDistinctPermutations(embedded, embedded_sites, L2());
  EXPECT_EQ(tree_count, vector_count.distinct_permutations);
  EXPECT_EQ(tree_count, core::TreePermutationBound(5));
}

TEST(Integration, PermTableCompressesIndexPermutations) {
  // Store the index's permutations in the table-compressed form and
  // verify the sizes relate as the paper's storage section claims.
  util::Rng rng(105);
  auto data = dataset::UniformCube(5000, 2, &rng);
  util::Rng site_rng(106);
  index::DistPermIndex<Vector> index(data, L2(), 10, &site_rng);
  std::vector<Permutation> perms;
  for (size_t i = 0; i < data.size(); ++i) {
    perms.push_back(index.StoredPermutation(i));
  }
  auto table = core::PermutationTable::Build(perms);
  EXPECT_EQ(table.distinct(), index.DistinctPermutationCount());
  // d = 2, k = 10: at most N_{2,2}(10) = 916 permutations occur, so the
  // table index costs at most 10 bits/pt versus ceil(lg 10!) = 22.
  core::EuclideanCounter counter;
  EXPECT_LE(table.distinct(), counter.Count64(2, 10));
  EXPECT_LE(table.index_bits_per_point(), 10);
  EXPECT_LT(table.TotalBits(), table.RawBits());
  // Entropy can never exceed the index width.
  EXPECT_LE(core::PermutationEntropyBits(perms),
            table.index_bits_per_point());
}

TEST(Integration, DimensionEstimateOnStringsViaPrefixMetric) {
  // The prefix metric is a tree metric; trees behave like d ~ 1 spaces
  // (both have the C(k,2)+1 ceiling), so the estimator must report a
  // dimension of at most ~1 for prefix-metric data.
  util::Rng rng(107);
  dataset::LanguageProfile profile;
  profile.name = "IntegrationLang";
  auto words =
      dataset::MarkovWordGenerator(profile).Dictionary(5000, &rng);
  metric::Metric<std::string> prefix((metric::PrefixMetric()));
  auto sites = core::SelectRandomSites(words, 9, &rng);
  auto result = core::CountDistinctPermutations(words, sites, prefix);
  EXPECT_LE(result.distinct_permutations, core::TreePermutationBound(9));
  double estimate =
      core::EstimateEuclideanDimension(result.distinct_permutations, 9);
  EXPECT_LE(estimate, 1.0 + 1e-9);
}

TEST(Integration, CounterexampleSitesBeatEveryExactIndexCount) {
  // The paper's L1 sites: sampled enumeration exceeds the Euclidean
  // limit, and the Theorem 9 L1 bound covers whatever we find.
  std::vector<Vector> sites = {
      {0.205281, 0.621547, 0.332507}, {0.053421, 0.344351, 0.260859},
      {0.418166, 0.207143, 0.119789}, {0.735218, 0.653301, 0.650154},
      {0.527133, 0.814207, 0.704307},
  };
  util::Rng rng(108);
  auto cells =
      geometry::EnumerateCellsBySampling(sites, 1.0, 0.0, 1.0, 300000,
                                         &rng);
  EXPECT_GT(cells.count(), 96u);
  EXPECT_LE(util::BigUint(cells.count()),
            core::LpPermutationUpperBound(3, 1.0, 5));
}

}  // namespace
}  // namespace distperm
