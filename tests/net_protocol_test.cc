// Wire protocol robustness: frames and payload codecs must round-trip
// every field bit-exactly, and ParseFrame/Decode* must answer any
// byte-level corruption — truncation at every offset, flipped bits,
// bad magic, version skew, hostile lengths, garbage — with a clean
// Status, never a crash or an over-read (the asan CI job runs this
// suite instrumented).

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "index/search.h"
#include "metric/metric.h"
#include "net/protocol.h"
#include "storage/coding.h"
#include "util/rng.h"
#include "util/status.h"

namespace distperm {
namespace net {
namespace {

using metric::Vector;

std::string Frame(MessageType type, const std::string& payload) {
  return EncodeFrame(type, payload);
}

FrameParse Parse(const std::string& bytes, FrameView* view,
                 size_t* frame_size, util::Status* error) {
  return ParseFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                    bytes.size(), view, frame_size, error);
}

TEST(NetProtocol, FrameRoundTrip) {
  const std::string payload = "hello distance permutations";
  const std::string bytes = Frame(MessageType::kSearch, payload);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + payload.size());

  FrameView view;
  size_t frame_size = 0;
  util::Status error;
  ASSERT_EQ(Parse(bytes, &view, &frame_size, &error), FrameParse::kComplete);
  EXPECT_EQ(frame_size, bytes.size());
  EXPECT_EQ(view.version, kProtocolVersion);
  EXPECT_EQ(view.type, MessageType::kSearch);
  ASSERT_EQ(view.payload_size, payload.size());
  EXPECT_EQ(std::memcmp(view.payload, payload.data(), payload.size()), 0);
}

TEST(NetProtocol, EmptyPayloadFrame) {
  const std::string bytes = Frame(MessageType::kPing, "");
  FrameView view;
  size_t frame_size = 0;
  util::Status error;
  ASSERT_EQ(Parse(bytes, &view, &frame_size, &error), FrameParse::kComplete);
  EXPECT_EQ(view.payload_size, 0u);
  EXPECT_EQ(frame_size, kFrameHeaderSize);
}

TEST(NetProtocol, TruncatedAtEveryOffsetIsIncomplete) {
  const std::string bytes = Frame(MessageType::kSearch, "some payload");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::string prefix = bytes.substr(0, cut);
    FrameView view;
    size_t frame_size = 0;
    util::Status error;
    EXPECT_EQ(Parse(prefix, &view, &frame_size, &error),
              FrameParse::kIncomplete)
        << "cut at " << cut;
  }
}

TEST(NetProtocol, CorruptedCrcIsError) {
  std::string bytes = Frame(MessageType::kSearch, "payload under crc");
  bytes[kFrameHeaderSize + 3] ^= 0x40;  // flip a payload bit
  FrameView view;
  size_t frame_size = 0;
  util::Status error;
  ASSERT_EQ(Parse(bytes, &view, &frame_size, &error), FrameParse::kError);
  EXPECT_EQ(error.code(), util::StatusCode::kIoError);
  EXPECT_NE(error.message().find("checksum"), std::string::npos);
}

TEST(NetProtocol, BadMagicIsError) {
  std::string bytes = Frame(MessageType::kPing, "");
  bytes[0] ^= 0xFF;
  FrameView view;
  size_t frame_size = 0;
  util::Status error;
  ASSERT_EQ(Parse(bytes, &view, &frame_size, &error), FrameParse::kError);
  EXPECT_EQ(error.code(), util::StatusCode::kInvalidArgument);
}

TEST(NetProtocol, VersionSkewIsError) {
  std::string bytes = Frame(MessageType::kPing, "");
  bytes[4] = static_cast<char>(kProtocolVersion + 1);
  FrameView view;
  size_t frame_size = 0;
  util::Status error;
  ASSERT_EQ(Parse(bytes, &view, &frame_size, &error), FrameParse::kError);
  EXPECT_NE(error.message().find("version"), std::string::npos);
}

TEST(NetProtocol, OversizedLengthIsRejectedBeforeBuffering) {
  std::string bytes = Frame(MessageType::kSearch, "x");
  // Rewrite the length field to a hostile value; only the 16-byte
  // header is present, yet the parser must answer now, not wait for
  // 4GiB of payload.
  std::string hostile_length;
  storage::PutFixed32(&hostile_length,
                      std::numeric_limits<uint32_t>::max());
  bytes.replace(8, 4, hostile_length);
  FrameView view;
  size_t frame_size = 0;
  util::Status error;
  ASSERT_EQ(Parse(bytes.substr(0, kFrameHeaderSize), &view, &frame_size,
                  &error),
            FrameParse::kError);
  EXPECT_NE(error.message().find("payload"), std::string::npos);
}

TEST(NetProtocol, HeaderBitFlipsNeverCrash) {
  const std::string clean = Frame(MessageType::kSearch, "fuzz me gently");
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bytes = clean;
      bytes[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
      FrameView view;
      size_t frame_size = 0;
      util::Status error;
      const FrameParse parse = Parse(bytes, &view, &frame_size, &error);
      if (parse == FrameParse::kComplete) {
        // A flip that survives must be in the reserved bytes (ignored)
        // or a type change; the CRC guards the payload.
        EXPECT_TRUE(byte == 5 || byte == 6 || byte == 7)
            << "unexpected survivor at byte " << byte << " bit " << bit;
      }
    }
  }
}

TEST(NetProtocol, DeterministicGarbageNeverCrashes) {
  util::Rng rng(20260809);
  for (int round = 0; round < 200; ++round) {
    const size_t size = rng.NextBounded(64);
    std::string bytes;
    for (size_t i = 0; i < size; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    FrameView view;
    size_t frame_size = 0;
    util::Status error;
    Parse(bytes, &view, &frame_size, &error);  // must simply not crash

    // Also hurl the garbage at every payload decoder.
    const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
    DecodeSearchRequest<Vector>(data, bytes.size());
    DecodeSearchRequest<std::string>(data, bytes.size());
    DecodeSearchResponse(data, bytes.size());
    DecodeInsertRequest<Vector>(data, bytes.size());
    DecodeInsertResponse(data, bytes.size());
    DecodeRemoveRequest(data, bytes.size());
    DecodeWireStatus(data, bytes.size());
  }
}

TEST(NetProtocol, SearchRequestRoundTripVector) {
  index::SearchRequest<Vector> request =
      index::SearchRequest<Vector>::Knn(Vector{0.25, -1.5, 3.0}, 7);
  request.max_distance_computations = 123;
  request.approx_candidate_fraction = 0.375;
  request.initial_radius_bound = 2.25;
  request.shard_scheduling = index::ShardScheduling::kCooperative;
  request.split_distance_budget = true;

  std::string payload;
  EncodeSearchRequest(&payload, request, /*no_cache=*/true);
  auto decoded = DecodeSearchRequest<Vector>(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const index::SearchRequest<Vector>& got = decoded.value().request;
  EXPECT_TRUE(decoded.value().no_cache);
  EXPECT_EQ(got.mode, request.mode);
  EXPECT_EQ(got.point, request.point);
  EXPECT_EQ(got.k, request.k);
  EXPECT_EQ(got.max_distance_computations,
            request.max_distance_computations);
  EXPECT_EQ(got.approx_candidate_fraction,
            request.approx_candidate_fraction);
  EXPECT_EQ(got.initial_radius_bound, request.initial_radius_bound);
  EXPECT_EQ(got.shard_scheduling, request.shard_scheduling);
  EXPECT_TRUE(got.split_distance_budget);
}

TEST(NetProtocol, SearchRequestRoundTripString) {
  index::SearchRequest<std::string> request =
      index::SearchRequest<std::string>::Range("permutation", 2.0);
  std::string payload;
  EncodeSearchRequest(&payload, request);
  auto decoded = DecodeSearchRequest<std::string>(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value().request.point, "permutation");
  EXPECT_EQ(decoded.value().request.mode, index::SearchMode::kRange);
  EXPECT_EQ(decoded.value().request.radius, 2.0);
  EXPECT_FALSE(decoded.value().no_cache);
}

TEST(NetProtocol, SearchRequestRejectsUnknownEnums) {
  index::SearchRequest<Vector> request =
      index::SearchRequest<Vector>::Knn(Vector{1.0}, 1);
  std::string payload;
  EncodeSearchRequest(&payload, request);
  {
    std::string bad = payload;
    bad[0] = 17;  // mode
    EXPECT_FALSE(DecodeSearchRequest<Vector>(
                     reinterpret_cast<const uint8_t*>(bad.data()),
                     bad.size())
                     .ok());
  }
  {
    std::string bad = payload;
    bad[1] = 99;  // scheduling
    EXPECT_FALSE(DecodeSearchRequest<Vector>(
                     reinterpret_cast<const uint8_t*>(bad.data()),
                     bad.size())
                     .ok());
  }
  // Trailing junk is an error, not silently ignored.
  payload.push_back('x');
  EXPECT_FALSE(DecodeSearchRequest<Vector>(
                   reinterpret_cast<const uint8_t*>(payload.data()),
                   payload.size())
                   .ok());
}

TEST(NetProtocol, SearchResponseRoundTrip) {
  WireSearchResponse response;
  response.status = {WireCode::kOk, ""};
  response.truncated = true;
  response.cache_hit = true;
  response.bound_seeded = true;
  response.generation = 42;
  response.stats.distance_computations = 987654321;
  response.results = {{7, 0.125}, {9, 2.5}, {123456789, 1e9}};

  std::string payload;
  EncodeSearchResponse(&payload, response);
  auto decoded = DecodeSearchResponse(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const WireSearchResponse& got = decoded.value();
  EXPECT_TRUE(got.status.ok());
  EXPECT_TRUE(got.truncated);
  EXPECT_TRUE(got.cache_hit);
  EXPECT_TRUE(got.bound_seeded);
  EXPECT_EQ(got.generation, 42u);
  EXPECT_EQ(got.stats.distance_computations, 987654321u);
  ASSERT_EQ(got.results.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got.results[i].id, response.results[i].id);
    EXPECT_EQ(got.results[i].distance, response.results[i].distance);
  }
}

TEST(NetProtocol, SearchResponseRejectsHostileResultCount) {
  WireSearchResponse response;
  response.results = {{1, 1.0}};
  std::string payload;
  EncodeSearchResponse(&payload, response);
  // The u32 result count sits right before the single 16-byte result;
  // inflate it and the decoder must reject rather than trust it.
  const size_t count_offset = payload.size() - 16 - 4;
  std::string hostile;
  storage::PutFixed32(&hostile, 1000000000);
  payload.replace(count_offset, 4, hostile);
  auto decoded = DecodeSearchResponse(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(NetProtocol, InsertAndRemoveRoundTrips) {
  const Vector point{1.0, -2.0, 0.5};
  std::string payload;
  EncodeInsertRequest(&payload, point);
  auto decoded_point = DecodeInsertRequest<Vector>(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  ASSERT_TRUE(decoded_point.ok());
  EXPECT_EQ(decoded_point.value(), point);

  WireInsertResponse insert_response;
  insert_response.status = {WireCode::kNotFound, "nope"};
  insert_response.id = 77;
  payload.clear();
  EncodeInsertResponse(&payload, insert_response);
  auto decoded_insert = DecodeInsertResponse(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  ASSERT_TRUE(decoded_insert.ok());
  EXPECT_EQ(decoded_insert.value().status.code, WireCode::kNotFound);
  EXPECT_EQ(decoded_insert.value().status.message, "nope");
  EXPECT_EQ(decoded_insert.value().id, 77u);

  payload.clear();
  EncodeRemoveRequest(&payload, 123456789ull);
  auto decoded_remove = DecodeRemoveRequest(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  ASSERT_TRUE(decoded_remove.ok());
  EXPECT_EQ(decoded_remove.value(), 123456789ull);

  payload.clear();
  EncodeWireStatus(&payload, WireStatus::Unavailable("overloaded"));
  auto decoded_status = DecodeWireStatus(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  ASSERT_TRUE(decoded_status.ok());
  EXPECT_EQ(decoded_status.value().code, WireCode::kUnavailable);
  EXPECT_EQ(decoded_status.value().message, "overloaded");
}

TEST(NetProtocol, WireCodeMapsEveryStatusCode) {
  EXPECT_EQ(WireCodeFromStatus(util::Status::OK()), WireCode::kOk);
  EXPECT_EQ(WireCodeFromStatus(util::Status::InvalidArgument("x")),
            WireCode::kInvalidArgument);
  EXPECT_EQ(WireCodeFromStatus(util::Status::NotFound("x")),
            WireCode::kNotFound);
  EXPECT_EQ(WireCodeFromStatus(util::Status::IoError("x")),
            WireCode::kIoError);
  EXPECT_EQ(WireCodeFromStatus(util::Status::Internal("x")),
            WireCode::kInternal);
  EXPECT_STREQ(WireCodeName(WireCode::kUnavailable), "Unavailable");
}

}  // namespace
}  // namespace net
}  // namespace distperm
