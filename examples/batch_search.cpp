// Batch search demo: shard a database across vp-tree indexes, serve a
// mixed kNN/range batch through the concurrent QueryEngine, and compare
// the merged answers and cost accounting against an exact linear scan.
//
//   ./example_batch_search [--points=20000] [--dim=4] [--shards=4]
//                          [--threads=4] [--batch=32]

#include <iostream>
#include <memory>

#include "dataset/vector_gen.h"
#include "engine/batch_stats.h"
#include "engine/query.h"
#include "engine/query_engine.h"
#include "engine/sharded_database.h"
#include "index/linear_scan.h"
#include "index/vp_tree.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/rng.h"

using distperm::engine::QueryEngine;
using distperm::engine::QuerySpec;
using distperm::engine::ShardedDatabase;
using distperm::metric::Vector;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 20000));
  const size_t dim = static_cast<size_t>(flags.value().GetInt("dim", 4));
  const size_t shards =
      static_cast<size_t>(flags.value().GetInt("shards", 4));
  const size_t threads =
      static_cast<size_t>(flags.value().GetInt("threads", 4));
  const size_t batch_size =
      static_cast<size_t>(flags.value().GetInt("batch", 32));
  if (batch_size < 2) {
    std::cerr << "--batch must be at least 2 (one kNN + one range query)\n";
    return 1;
  }

  // 1. Generate a database and shard it: one vp-tree per contiguous
  //    slice, each with its own deterministic RNG stream.
  distperm::util::Rng rng(2026);
  auto data = distperm::dataset::UniformCube(points, dim, &rng);
  distperm::metric::Metric<Vector> l2(distperm::metric::LpMetric::L2());
  auto db = ShardedDatabase<Vector>::Build(
      data, l2, shards,
      [](std::vector<Vector> slice,
         const distperm::metric::Metric<Vector>& metric, size_t shard) {
        distperm::util::Rng tree_rng(9000 + shard);
        return std::make_unique<distperm::index::VpTreeIndex<Vector>>(
            std::move(slice), metric, &tree_rng);
      });
  std::cout << "sharded database: " << db.size() << " points over "
            << db.shard_count() << " " << db.index_name() << " shards ("
            << db.build_distance_computations() << " build distances)\n";

  // 2. Assemble a mixed batch: half 10-NN queries, half range queries.
  std::vector<QuerySpec<Vector>> batch;
  for (size_t q = 0; q < batch_size; ++q) {
    Vector point(dim);
    for (auto& coord : point) coord = rng.NextDouble();
    if (q % 2 == 0) {
      batch.push_back(QuerySpec<Vector>::Knn(point, 10));
    } else {
      batch.push_back(QuerySpec<Vector>::Range(point, 0.1));
    }
  }

  // 3. Serve the batch on a worker pool.
  QueryEngine<Vector> engine(&db, threads);
  auto out = engine.RunBatch(batch);
  std::cout << "batch of " << out.stats.query_count << " queries on "
            << out.stats.thread_count << " threads: "
            << out.stats.wall_seconds * 1e3 << " ms wall, "
            << out.stats.distance_computations << " metric evaluations ("
            << out.stats.distance_computations / batch.size()
            << "/query; a linear scan would use " << points << ")\n";
  std::cout << "latency ms: min " << out.stats.latency.min_seconds * 1e3
            << ", mean " << out.stats.latency.mean_seconds * 1e3 << ", max "
            << out.stats.latency.max_seconds * 1e3 << "\n";

  std::cout << "\nfirst kNN query results (global ids):\n";
  for (const auto& hit : out.results[0]) {
    std::cout << "  point " << hit.id << " at distance " << hit.distance
              << "\n";
  }
  std::cout << "first range query: " << out.results[1].size()
            << " points within radius 0.1\n";

  // 4. Verify against the exact single-index answer.
  distperm::index::LinearScanIndex<Vector> scan(data, l2);
  std::vector<std::vector<distperm::index::SearchResult>> truth;
  for (const auto& spec : batch) {
    truth.push_back(spec.type == distperm::engine::QueryType::kKnn
                        ? scan.KnnQuery(spec.point, spec.k)
                        : scan.RangeQuery(spec.point, spec.radius));
  }
  double recall = distperm::engine::AverageRecall(out.results, truth);
  std::cout << "\nrecall vs exact linear scan: " << recall
            << (out.results == truth ? " (results identical)" : "") << "\n";
  return 0;
}
