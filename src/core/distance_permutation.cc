#include "core/distance_permutation.h"

#include <algorithm>

namespace distperm {
namespace core {

bool IsPermutation(const Permutation& perm) {
  // Fixed stack bitmask sized by kMaxSites (site values are uint8_t, so
  // every possible value fits): no per-call heap allocation.
  static_assert(kMaxSites == 256);
  uint64_t seen[kMaxSites / 64] = {0, 0, 0, 0};
  for (uint8_t v : perm) {
    if (v >= perm.size()) return false;
    uint64_t& word = seen[v >> 6];
    const uint64_t bit = uint64_t{1} << (v & 63);
    if ((word & bit) != 0) return false;
    word |= bit;
  }
  return true;
}

Permutation PermutationFromDistances(const std::vector<double>& distances) {
  DP_CHECK(distances.size() <= kMaxSites);
  Permutation perm(distances.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](uint8_t a, uint8_t b) {
    if (distances[a] != distances[b]) return distances[a] < distances[b];
    return a < b;  // the paper's tie-break: lower index is closer
  });
  return perm;
}

Permutation InvertPermutation(const Permutation& perm) {
  Permutation inverse(perm.size());
  for (size_t rank = 0; rank < perm.size(); ++rank) {
    inverse[perm[rank]] = static_cast<uint8_t>(rank);
  }
  return inverse;
}

Permutation PermutationPrefixFromDistances(
    const std::vector<double>& distances, size_t prefix_length) {
  DP_CHECK(distances.size() <= kMaxSites);
  prefix_length = std::min(prefix_length, distances.size());
  Permutation order(distances.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + prefix_length,
                    order.end(), [&](uint8_t a, uint8_t b) {
                      if (distances[a] != distances[b]) {
                        return distances[a] < distances[b];
                      }
                      return a < b;
                    });
  order.resize(prefix_length);
  return order;
}

}  // namespace core
}  // namespace distperm
