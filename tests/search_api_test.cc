// Unified Search() API tests.
//
// The legacy RangeQuery/KnnQuery entry points are thin shims over
// Search(SearchRequest), so this file pins, for every one of the seven
// index structures, across metrics (kernel-tagged L2 over vectors and
// scalar Levenshtein over strings) and seeds:
//   - shim equivalence: Search responses match the legacy calls
//     bit-for-bit, results and distance counts alike;
//   - central validation: invalid requests (k = 0, negative/NaN radius,
//     NaN coordinates, out-of-range fractions) are rejected with
//     InvalidArgument at zero cost;
//   - kNN-within-radius: the new mode equals the range answer truncated
//     to k for exact indexes;
//   - distance budgets: truncated = true with the budget respected, and
//     no cost-model perturbation when the budget does not bind.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "dataset/string_gen.h"
#include "dataset/vector_gen.h"
#include "index/linear_scan.h"
#include "index/registry.h"
#include "metric/lp.h"
#include "metric/string_metrics.h"
#include "util/rng.h"

namespace distperm {
namespace index {
namespace {

using metric::Vector;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

// The seven structures (distperm at full fraction, so every index is
// exact and must agree with the linear scan).
const char* kExactSpecs[] = {
    "linear-scan", "aesa",    "iaesa:k=6",
    "laesa:k=8",   "vp-tree", "gh-tree",
    "distperm:k=8,fraction=1.0",
};

template <typename P>
std::vector<std::unique_ptr<SearchIndex<P>>> BuildAll(
    const std::vector<P>& data, const metric::Metric<P>& metric,
    uint64_t seed) {
  std::vector<std::unique_ptr<SearchIndex<P>>> indexes;
  for (const char* spec : kExactSpecs) {
    util::Rng rng(seed);
    auto built = Registry<P>::Global().Create(spec, data, metric, &rng);
    EXPECT_TRUE(built.ok()) << spec << ": " << built.status();
    indexes.push_back(std::move(built).value());
  }
  return indexes;
}

class ShimEquivalenceTest : public ::testing::TestWithParam<int> {};

// Search(SearchRequest::Knn / ::Range) must reproduce the legacy shims
// bit-for-bit: identical results and identical distance counts.
TEST_P(ShimEquivalenceTest, VectorSpace) {
  const int seed = GetParam();
  util::Rng rng(21000 + seed);
  auto data = dataset::UniformCube(220, 3, &rng);
  auto indexes = BuildAll(data, L2(), 600 + seed);
  for (int q = 0; q < 6; ++q) {
    Vector query(3);
    for (auto& coord : query) coord = rng.NextDouble(-0.2, 1.2);
    for (const auto& index : indexes) {
      for (size_t k : {1u, 4u, 300u}) {
        QueryStats legacy_stats;
        auto legacy = index->KnnQuery(query, k, &legacy_stats);
        auto response = index->Search(SearchRequest<Vector>::Knn(query, k));
        EXPECT_TRUE(response.status.ok()) << index->name();
        EXPECT_FALSE(response.truncated) << index->name();
        EXPECT_EQ(response.results, legacy) << index->name() << " k=" << k;
        EXPECT_EQ(response.stats.distance_computations,
                  legacy_stats.distance_computations)
            << index->name() << " k=" << k;
      }
      for (double radius : {0.0, 0.15, 0.6}) {
        QueryStats legacy_stats;
        auto legacy = index->RangeQuery(query, radius, &legacy_stats);
        auto response =
            index->Search(SearchRequest<Vector>::Range(query, radius));
        EXPECT_TRUE(response.status.ok()) << index->name();
        EXPECT_EQ(response.results, legacy)
            << index->name() << " radius=" << radius;
        EXPECT_EQ(response.stats.distance_computations,
                  legacy_stats.distance_computations)
            << index->name() << " radius=" << radius;
      }
    }
  }
}

TEST_P(ShimEquivalenceTest, StringSpace) {
  const int seed = GetParam();
  util::Rng rng(22000 + seed);
  auto words = dataset::DnaSequences(90, 4, 6, 14, 0.1, &rng);
  metric::Metric<std::string> lev((metric::LevenshteinMetric()));
  auto indexes = BuildAll(words, lev, 700 + seed);
  for (int q = 0; q < 5; ++q) {
    const std::string& query = words[rng.NextBounded(words.size())];
    for (const auto& index : indexes) {
      QueryStats knn_stats;
      auto knn = index->KnnQuery(query, 5, &knn_stats);
      auto knn_response =
          index->Search(SearchRequest<std::string>::Knn(query, 5));
      EXPECT_EQ(knn_response.results, knn) << index->name();
      EXPECT_EQ(knn_response.stats.distance_computations,
                knn_stats.distance_computations)
          << index->name();

      QueryStats range_stats;
      auto range = index->RangeQuery(query, 3.0, &range_stats);
      auto range_response =
          index->Search(SearchRequest<std::string>::Range(query, 3.0));
      EXPECT_EQ(range_response.results, range) << index->name();
      EXPECT_EQ(range_response.stats.distance_computations,
                range_stats.distance_computations)
          << index->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShimEquivalenceTest,
                         ::testing::Range(0, 3));

// kNN-within-radius must equal the range answer truncated to its k
// closest entries, for every exact index.
TEST(SearchApi, KnnWithinRadiusMatchesTruncatedRange) {
  util::Rng rng(23);
  auto data = dataset::UniformCube(250, 3, &rng);
  auto indexes = BuildAll(data, L2(), 80);
  for (int q = 0; q < 8; ++q) {
    Vector query(3);
    for (auto& coord : query) coord = rng.NextDouble();
    for (const auto& index : indexes) {
      for (double radius : {0.05, 0.25, 0.7}) {
        for (size_t k : {1u, 5u, 400u}) {
          auto expected = index->RangeQuery(query, radius);
          if (expected.size() > k) expected.resize(k);
          auto response = index->Search(
              SearchRequest<Vector>::KnnWithinRadius(query, k, radius));
          EXPECT_TRUE(response.status.ok()) << index->name();
          EXPECT_EQ(response.results, expected)
              << index->name() << " k=" << k << " radius=" << radius;
        }
      }
    }
  }
}

// Invalid requests come back as InvalidArgument from every index, cost
// zero metric evaluations, and leave the aggregate counter untouched.
TEST(SearchApi, InvalidRequestsRejectedCentrally) {
  util::Rng rng(24);
  auto data = dataset::UniformCube(60, 2, &rng);
  auto indexes = BuildAll(data, L2(), 81);
  const Vector ok_point = {0.5, 0.5};
  const double nan = std::numeric_limits<double>::quiet_NaN();

  std::vector<SearchRequest<Vector>> bad = {
      SearchRequest<Vector>::Knn(ok_point, 0),
      SearchRequest<Vector>::KnnWithinRadius(ok_point, 0, 0.5),
      SearchRequest<Vector>::Range(ok_point, -0.25),
      SearchRequest<Vector>::Range(ok_point, nan),
      SearchRequest<Vector>::KnnWithinRadius(ok_point, 3, -1.0),
      SearchRequest<Vector>::Knn({0.5, nan}, 3),
      SearchRequest<Vector>::Range({nan, 0.5}, 0.5),
      SearchRequest<Vector>::Knn(ok_point, 3).WithCandidateFraction(1.5),
      SearchRequest<Vector>::Knn(ok_point, 3).WithCandidateFraction(-0.1),
      SearchRequest<Vector>::Knn(ok_point, 3).WithCandidateFraction(nan),
  };
  for (const auto& index : indexes) {
    index->ResetQueryCount();
    for (size_t b = 0; b < bad.size(); ++b) {
      auto response = index->Search(bad[b]);
      EXPECT_EQ(response.status.code(), util::StatusCode::kInvalidArgument)
          << index->name() << " case " << b << ": " << response.status;
      EXPECT_TRUE(response.results.empty()) << index->name();
      EXPECT_EQ(response.stats.distance_computations, 0u) << index->name();
      EXPECT_FALSE(response.truncated);
    }
    EXPECT_EQ(index->query_distance_computations(), 0u) << index->name();

    // The shims swallow the status but stay silent-safe: empty result,
    // zero cost, no UB.
    QueryStats stats;
    EXPECT_TRUE(index->KnnQuery(ok_point, 0, &stats).empty())
        << index->name();
    EXPECT_TRUE(index->RangeQuery(ok_point, -1.0, &stats).empty())
        << index->name();
    EXPECT_EQ(stats.distance_computations, 0u);
  }
}

// A binding distance budget truncates: the response is flagged, the
// budget is respected, and a non-binding budget changes nothing — the
// exact paths' accounting is identical to an unbudgeted request.
TEST(SearchApi, DistanceBudgetTruncates) {
  util::Rng rng(25);
  auto data = dataset::UniformCube(300, 3, &rng);
  auto indexes = BuildAll(data, L2(), 82);
  Vector query = {0.4, 0.6, 0.2};
  for (const auto& index : indexes) {
    auto full = index->Search(SearchRequest<Vector>::Knn(query, 5));
    ASSERT_TRUE(full.status.ok());
    EXPECT_FALSE(full.truncated);
    ASSERT_GT(full.stats.distance_computations, 4u) << index->name();

    // Binding budget: fewer evaluations than the full search needs.
    const uint64_t budget = full.stats.distance_computations / 2;
    auto truncated = index->Search(
        SearchRequest<Vector>::Knn(query, 5).WithDistanceBudget(budget));
    ASSERT_TRUE(truncated.status.ok()) << index->name();
    EXPECT_TRUE(truncated.truncated) << index->name();
    EXPECT_LE(truncated.stats.distance_computations, budget)
        << index->name();

    // Non-binding budget: bit-identical to the unbudgeted search.
    auto unbound = index->Search(SearchRequest<Vector>::Knn(query, 5)
                                     .WithDistanceBudget(
                                         full.stats.distance_computations +
                                         1000));
    EXPECT_FALSE(unbound.truncated) << index->name();
    EXPECT_EQ(unbound.results, full.results) << index->name();
    EXPECT_EQ(unbound.stats.distance_computations,
              full.stats.distance_computations)
        << index->name();
  }
}

// The linear scan spends its budget exactly, on both the scalar path
// (strings) and the blocked flat path (vectors): a budget of B costs
// exactly B evaluations.
TEST(SearchApi, LinearScanBudgetIsExact) {
  util::Rng rng(26);
  auto data = dataset::UniformCube(700, 4, &rng);
  LinearScanIndex<Vector> flat(data, L2());
  auto words = dataset::DnaSequences(150, 4, 6, 12, 0.1, &rng);
  metric::Metric<std::string> lev((metric::LevenshteinMetric()));
  LinearScanIndex<std::string> scalar(words, lev);

  for (uint64_t budget : {1u, 100u, 300u, 555u}) {
    auto response = flat.Search(SearchRequest<Vector>::Knn({0.5, 0.5, 0.5,
                                                            0.5},
                                                           3)
                                    .WithDistanceBudget(budget));
    ASSERT_TRUE(response.status.ok());
    EXPECT_TRUE(response.truncated) << budget;
    EXPECT_EQ(response.stats.distance_computations, budget);
  }
  for (uint64_t budget : {1u, 42u, 149u}) {
    auto response = scalar.Search(
        SearchRequest<std::string>::Knn(words[0], 3)
            .WithDistanceBudget(budget));
    ASSERT_TRUE(response.status.ok());
    EXPECT_TRUE(response.truncated) << budget;
    EXPECT_EQ(response.stats.distance_computations, budget);
  }
  // A budget of exactly n completes the scan: nothing remains, so the
  // scan is not truncated.
  auto exact = flat.Search(SearchRequest<Vector>::Knn({0.1, 0.2, 0.3, 0.4},
                                                      3)
                               .WithDistanceBudget(data.size()));
  EXPECT_FALSE(exact.truncated);
  EXPECT_EQ(exact.stats.distance_computations, data.size());
  EXPECT_EQ(exact.results,
            flat.KnnQuery({0.1, 0.2, 0.3, 0.4}, 3));
}

// approx_candidate_fraction overrides the distperm index's configured
// verification fraction per request: forcing 1.0 on an index built at
// fraction 0.05 yields the exact answer, and the default behavior is
// untouched afterwards.
TEST(SearchApi, CandidateFractionOverridesDistPermDefault) {
  util::Rng rng(27);
  auto data = dataset::UniformCube(500, 3, &rng);
  util::Rng site_rng(28);
  auto built = Registry<Vector>::Global().Create(
      "distperm:k=10,fraction=0.05", data, L2(), &site_rng);
  ASSERT_TRUE(built.ok()) << built.status();
  auto& index = *built.value();
  LinearScanIndex<Vector> reference(data, L2());
  for (int q = 0; q < 6; ++q) {
    Vector query(3);
    for (auto& coord : query) coord = rng.NextDouble();
    auto exact = index.Search(
        SearchRequest<Vector>::Knn(query, 5).WithCandidateFraction(1.0));
    ASSERT_TRUE(exact.status.ok());
    EXPECT_EQ(exact.results, reference.KnnQuery(query, 5));
    // The per-request override must not stick: the default fraction
    // verifies ~5% of the database, far fewer evaluations than exact.
    auto defaulted = index.Search(SearchRequest<Vector>::Knn(query, 5));
    ASSERT_TRUE(defaulted.status.ok());
    EXPECT_LT(defaulted.stats.distance_computations,
              exact.stats.distance_computations / 2);
  }
}

// The pooled per-thread collector must not leak state between
// consecutive searches with different k on the same thread.
TEST(SearchApi, PooledCollectorIsResetBetweenQueries) {
  util::Rng rng(29);
  auto data = dataset::UniformCube(120, 2, &rng);
  LinearScanIndex<Vector> scan(data, L2());
  Vector query = {0.3, 0.8};
  auto big = scan.Search(SearchRequest<Vector>::Knn(query, 50));
  auto small = scan.Search(SearchRequest<Vector>::Knn(query, 2));
  auto big_again = scan.Search(SearchRequest<Vector>::Knn(query, 50));
  EXPECT_EQ(big.results, big_again.results);
  EXPECT_EQ(small.results.size(), 2u);
  EXPECT_EQ(small.results,
            std::vector<SearchResult>(big.results.begin(),
                                      big.results.begin() + 2));
}

}  // namespace
}  // namespace index
}  // namespace distperm
