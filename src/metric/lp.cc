#include "metric/lp.h"

#include <cmath>
#include <cstdio>

#include "metric/kernels.h"
#include "util/status.h"

namespace distperm {
namespace metric {

using util::Status;

double L1Distance(const Vector& a, const Vector& b) {
  DP_CHECK_MSG(a.size() == b.size(), "dimension mismatch");
  return L1Raw(a.data(), b.data(), a.size());
}

double L2DistanceSquared(const Vector& a, const Vector& b) {
  DP_CHECK_MSG(a.size() == b.size(), "dimension mismatch");
  return L2sqRaw(a.data(), b.data(), a.size());
}

double L2Distance(const Vector& a, const Vector& b) {
  return std::sqrt(L2DistanceSquared(a, b));
}

double LInfDistance(const Vector& a, const Vector& b) {
  DP_CHECK_MSG(a.size() == b.size(), "dimension mismatch");
  return LInfRaw(a.data(), b.data(), a.size());
}

namespace {

// Construction-time dispatch targets for LpMetric: uniform signature so
// operator() is a single indirect call with no per-evaluation checks.
double L1Fn(const Vector& a, const Vector& b, double) {
  return L1Distance(a, b);
}
double L2Fn(const Vector& a, const Vector& b, double) {
  return L2Distance(a, b);
}
double LInfFn(const Vector& a, const Vector& b, double) {
  return LInfDistance(a, b);
}
double GeneralLpFn(const Vector& a, const Vector& b, double p) {
  DP_CHECK_MSG(a.size() == b.size(), "dimension mismatch");
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::pow(std::fabs(a[i] - b[i]), p);
  }
  return std::pow(sum, 1.0 / p);
}

}  // namespace

double LpDistance(const Vector& a, const Vector& b, double p) {
  DP_CHECK_MSG(p >= 1.0, "Lp requires p >= 1");
  if (p == 1.0) return L1Distance(a, b);
  if (p == 2.0) return L2Distance(a, b);
  if (std::isinf(p)) return LInfDistance(a, b);
  return GeneralLpFn(a, b, p);
}

LpMetric::LpMetric(double p) : p_(p) {
  DP_CHECK_MSG(p >= 1.0, "Lp requires p >= 1");
  if (p == 1.0) {
    fn_ = &L1Fn;
    kernel_ = VectorKernelKind::kL1;
    name_ = "L1";
  } else if (p == 2.0) {
    fn_ = &L2Fn;
    kernel_ = VectorKernelKind::kL2;
    name_ = "L2";
  } else if (std::isinf(p)) {
    fn_ = &LInfFn;
    kernel_ = VectorKernelKind::kLInf;
    name_ = "Linf";
  } else {
    fn_ = &GeneralLpFn;
    kernel_ = VectorKernelKind::kNone;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "L%g", p);
    name_ = buf;
  }
}

}  // namespace metric
}  // namespace distperm
