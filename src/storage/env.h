// Injectable file-system interface for the durability layer.
//
// Every byte the engine persists — WAL frames, snapshots, directory
// metadata — flows through an Env, so tests can swap the real POSIX
// implementation for a FaultInjectionEnv that tears writes mid-frame,
// fails fsync, or "crashes" at an arbitrary byte count and then lets
// the test reopen whatever actually reached the file system.  That is
// how crash recovery is verified without flaky sleeps: the injected
// crash leaves exactly the bytes a SIGKILL would have.
//
// The interface is deliberately small (RocksDB-style): append-only
// writable files with explicit Flush (user buffer -> OS) and Sync
// (fsync) steps, whole-file reads for small metadata, and read-only
// mmap for snapshots.  All operations return util::Status — a durable
// store must surface I/O errors to its caller, never abort.

#ifndef DISTPERM_STORAGE_ENV_H_
#define DISTPERM_STORAGE_ENV_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace distperm {
namespace storage {

/// Append-only file handle.  Append buffers nothing by itself (the WAL
/// layers its own batching on top); Flush pushes user-space buffers the
/// implementation may keep to the OS; Sync makes everything written so
/// far durable (fsync).  Close flushes and releases the descriptor —
/// further operations fail.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual util::Status Append(const void* data, size_t size) = 0;
  util::Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }
  virtual util::Status Flush() = 0;
  virtual util::Status Sync() = 0;
  virtual util::Status Close() = 0;
};

/// A read-only memory mapping of a whole file.  The mapping stays valid
/// for the object's lifetime; pages are faulted in on demand, so a
/// large snapshot costs address space, not resident memory, until it
/// is actually read.
class MappedFile {
 public:
  virtual ~MappedFile() = default;
  virtual const uint8_t* data() const = 0;
  virtual size_t size() const = 0;
};

/// File-system access for the storage layer.  Implementations must be
/// thread-safe at the Env level (distinct files may be manipulated from
/// distinct threads); a single WritableFile is single-writer.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending.  `truncate` starts the file empty;
  /// otherwise existing bytes are kept and appends extend them.
  virtual util::Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Reads the whole file into a string.  NotFound when missing.
  virtual util::Result<std::string> ReadFile(const std::string& path) = 0;

  /// Maps the whole file read-only.  NotFound when missing; an empty
  /// file maps to a zero-length mapping.
  virtual util::Result<std::shared_ptr<MappedFile>> MapFile(
      const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (rename(2) semantics).
  virtual util::Status RenameFile(const std::string& from,
                                  const std::string& to) = 0;
  virtual util::Status DeleteFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual util::Result<uint64_t> FileSize(const std::string& path) = 0;
  /// Truncates the file to `size` bytes (recovery drops a torn WAL tail
  /// this way before reopening the log for appends).
  virtual util::Status TruncateFile(const std::string& path,
                                    uint64_t size) = 0;
  /// Names of the entries in `dir` ("." and ".." excluded).
  virtual util::Result<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;
  /// Creates `dir` if it does not exist (one level; parents must exist).
  virtual util::Status CreateDir(const std::string& dir) = 0;
  /// fsyncs the directory so renames/creates inside it are durable.
  virtual util::Status SyncDir(const std::string& dir) = 0;

  /// The process-wide POSIX implementation.
  static Env* Default();
};

/// Wraps another Env and injects failures for recovery tests.
///
/// Two independent mechanisms:
///   - CrashAfterBytes(n): the next n bytes of Append succeed, then the
///     "process dies" — the failing Append persists only the bytes that
///     fit (a torn write, exactly what a kill mid-write leaves) and
///     every subsequent mutating operation fails with IoError.  Reads
///     keep working so the test can reopen the post-crash state.
///   - FailNextSync(): the next Sync() on any file returns IoError once
///     (the disk said no; the store must surface it, not lose data).
///
/// Counters (bytes_written, syncs) let tests target a precise byte
/// offset inside a multi-step operation like a compaction.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  /// Arms the crash: `bytes` more bytes may be written, then everything
  /// mutating fails.  Pass from a test before the operation under test.
  void CrashAfterBytes(uint64_t bytes) {
    crash_armed_.store(true);
    bytes_until_crash_.store(bytes);
    crashed_.store(false);
  }
  /// Disarms the crash and clears the crashed state.
  void Reset() {
    crash_armed_.store(false);
    crashed_.store(false);
    fail_next_sync_.store(false);
  }
  void FailNextSync() { fail_next_sync_.store(true); }

  bool crashed() const { return crashed_.load(); }
  uint64_t bytes_written() const { return bytes_written_.load(); }
  uint64_t sync_count() const { return sync_count_.load(); }

  util::Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  util::Result<std::string> ReadFile(const std::string& path) override {
    return base_->ReadFile(path);
  }
  util::Result<std::shared_ptr<MappedFile>> MapFile(
      const std::string& path) override {
    return base_->MapFile(path);
  }
  util::Status RenameFile(const std::string& from,
                          const std::string& to) override {
    util::Status crashed = CheckAlive();
    if (!crashed.ok()) return crashed;
    return base_->RenameFile(from, to);
  }
  util::Status DeleteFile(const std::string& path) override {
    util::Status crashed = CheckAlive();
    if (!crashed.ok()) return crashed;
    return base_->DeleteFile(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  util::Result<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  util::Status TruncateFile(const std::string& path,
                            uint64_t size) override {
    util::Status crashed = CheckAlive();
    if (!crashed.ok()) return crashed;
    return base_->TruncateFile(path, size);
  }
  util::Result<std::vector<std::string>> ListDir(
      const std::string& dir) override {
    return base_->ListDir(dir);
  }
  util::Status CreateDir(const std::string& dir) override {
    util::Status crashed = CheckAlive();
    if (!crashed.ok()) return crashed;
    return base_->CreateDir(dir);
  }
  util::Status SyncDir(const std::string& dir) override {
    util::Status crashed = CheckAlive();
    if (!crashed.ok()) return crashed;
    return base_->SyncDir(dir);
  }

  /// IoError once the injected crash has fired; OK before.  Public so
  /// the wrapper file handles (and tests) can consult it.
  util::Status CheckAlive() {
    if (crashed_.load()) {
      return util::Status::IoError("injected crash: process is dead");
    }
    return util::Status::OK();
  }

  /// How many of `want` bytes may still be written; arms `crashed_`
  /// when the budget runs out inside this request.
  size_t ConsumeWriteBudget(size_t want);
  util::Status ConsumeSync();

 private:
  Env* base_;
  std::atomic<bool> crash_armed_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> bytes_until_crash_{0};
  std::atomic<bool> fail_next_sync_{false};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> sync_count_{0};
};

}  // namespace storage
}  // namespace distperm

#endif  // DISTPERM_STORAGE_ENV_H_
