#include "util/big_uint.h"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace distperm {
namespace util {

BigUint::BigUint(uint64_t value) {
  while (value != 0) {
    limbs_.push_back(static_cast<uint32_t>(value & 0xffffffffULL));
    value >>= 32;
  }
}

Result<BigUint> BigUint::FromDecimalString(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty decimal string");
  }
  BigUint out;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("non-digit character '") +
                                     c + "' in decimal string");
    }
    out.MulSmall(10);
    out.AddSmall(static_cast<uint32_t>(c - '0'));
  }
  return out;
}

uint64_t BigUint::ToUint64() const {
  DP_CHECK_MSG(FitsUint64(), "BigUint does not fit in 64 bits: " << *this);
  uint64_t value = 0;
  for (size_t i = limbs_.size(); i > 0; --i) {
    value = (value << 32) | limbs_[i - 1];
  }
  return value;
}

double BigUint::ToDouble() const {
  double value = 0.0;
  for (size_t i = limbs_.size(); i > 0; --i) {
    value = value * 4294967296.0 + static_cast<double>(limbs_[i - 1]);
  }
  return value;
}

size_t BigUint::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::string BigUint::ToString() const {
  if (IsZero()) return "0";
  BigUint scratch = *this;
  std::string digits;
  while (!scratch.IsZero()) {
    uint32_t rem = scratch.DivSmall(1000000000u);
    // All blocks except the most significant are zero-padded to 9 digits.
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigUint& BigUint::operator+=(const BigUint& other) {
  const size_t n = std::max(limbs_.size(), other.limbs_.size());
  limbs_.resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry + limbs_[i] +
                   (i < other.limbs_.size() ? other.limbs_[i] : 0);
    limbs_[i] = static_cast<uint32_t>(sum & 0xffffffffULL);
    carry = sum >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<uint32_t>(carry));
  return *this;
}

BigUint& BigUint::operator-=(const BigUint& other) {
  DP_CHECK_MSG(*this >= other, "BigUint subtraction underflow");
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(limbs_[i]) - borrow -
                   (i < other.limbs_.size()
                        ? static_cast<int64_t>(other.limbs_[i])
                        : 0);
    if (diff < 0) {
      diff += 1LL << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    limbs_[i] = static_cast<uint32_t>(diff);
  }
  Trim();
  return *this;
}

BigUint& BigUint::operator*=(const BigUint& other) {
  if (IsZero() || other.IsZero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<uint32_t> product(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t a = limbs_[i];
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint64_t cur = product[i + j] + a * other.limbs_[j] + carry;
      product[i + j] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    size_t pos = i + other.limbs_.size();
    while (carry != 0) {
      uint64_t cur = product[pos] + carry;
      product[pos] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++pos;
    }
  }
  limbs_ = std::move(product);
  Trim();
  return *this;
}

BigUint& BigUint::MulSmall(uint32_t factor) {
  if (factor == 0) {
    limbs_.clear();
    return *this;
  }
  uint64_t carry = 0;
  for (auto& limb : limbs_) {
    uint64_t cur = static_cast<uint64_t>(limb) * factor + carry;
    limb = static_cast<uint32_t>(cur & 0xffffffffULL);
    carry = cur >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<uint32_t>(carry));
  return *this;
}

BigUint& BigUint::AddSmall(uint32_t value) {
  uint64_t carry = value;
  for (auto& limb : limbs_) {
    if (carry == 0) break;
    uint64_t cur = limb + carry;
    limb = static_cast<uint32_t>(cur & 0xffffffffULL);
    carry = cur >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<uint32_t>(carry));
  return *this;
}

uint32_t BigUint::DivSmall(uint32_t divisor) {
  DP_CHECK(divisor != 0);
  uint64_t rem = 0;
  for (size_t i = limbs_.size(); i > 0; --i) {
    uint64_t cur = (rem << 32) | limbs_[i - 1];
    limbs_[i - 1] = static_cast<uint32_t>(cur / divisor);
    rem = cur % divisor;
  }
  Trim();
  return static_cast<uint32_t>(rem);
}

int BigUint::Compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i > 0; --i) {
    if (limbs_[i - 1] != other.limbs_[i - 1]) {
      return limbs_[i - 1] < other.limbs_[i - 1] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::Pow(const BigUint& base, uint64_t exponent) {
  BigUint result(1);
  BigUint acc = base;
  while (exponent != 0) {
    if (exponent & 1) result *= acc;
    exponent >>= 1;
    if (exponent != 0) acc *= acc;
  }
  return result;
}

BigUint BigUint::Factorial(uint64_t n) {
  BigUint result(1);
  for (uint64_t i = 2; i <= n; ++i) {
    DP_CHECK_MSG(i <= 0xffffffffULL, "factorial argument too large");
    result.MulSmall(static_cast<uint32_t>(i));
  }
  return result;
}

BigUint BigUint::Binomial(uint64_t n, uint64_t k) {
  if (k > n) return BigUint(0);
  if (k > n - k) k = n - k;
  BigUint result(1);
  for (uint64_t i = 1; i <= k; ++i) {
    result.MulSmall(static_cast<uint32_t>(n - k + i));
    uint32_t rem = result.DivSmall(static_cast<uint32_t>(i));
    DP_CHECK(rem == 0);  // binomial products are always divisible stepwise
  }
  return result;
}

void BigUint::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

std::ostream& operator<<(std::ostream& os, const BigUint& value) {
  return os << value.ToString();
}

}  // namespace util
}  // namespace distperm
