// AESA (Vidal 1986): the classic distance-matrix elimination search.
//
// Stores the full O(n^2) matrix of pairwise distances.  At query time it
// repeatedly picks a live candidate, measures its true distance, and uses
// the stored row to tighten every other candidate's triangle-inequality
// lower bound, discarding candidates whose bound exceeds the query
// radius.  Query cost in metric evaluations is famously near-constant;
// the price is the quadratic storage the paper's introduction criticises.

#ifndef DISTPERM_INDEX_AESA_H_
#define DISTPERM_INDEX_AESA_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "index/flat_data_path.h"
#include "index/index.h"

namespace distperm {
namespace index {

/// Full-matrix AESA.  Build cost n(n-1)/2 metric evaluations; memory
/// O(n^2) doubles — use only for small databases.
template <typename P>
class AesaIndex : public SearchIndex<P> {
 public:
  using SearchIndex<P>::data_;

  /// Builds the pairwise matrix.  For kernel-tagged vector data the
  /// strict upper triangle is filled row by row with the one-query-vs-
  /// block kernels (row i against the block of rows i+1..n), which
  /// vectorizes the O(n^2) build; entries and the build count are
  /// bit-identical to the scalar pairwise loop.  The flat store is
  /// construction-local — AESA's query path needs only the matrix.
  AesaIndex(std::vector<P> data, metric::Metric<P> metric)
      : SearchIndex<P>(std::move(data), std::move(metric)),
        matrix_(data_.size() * data_.size(), 0.0) {
    const size_t n = data_.size();
    const FlatDataPath<P> flat(data_, this->metric_);
    if (flat.enabled()) {
      for (size_t i = 0; i < n; ++i) {
        flat.ForEachRowDistance(i, i + 1, n, &this->build_count_,
                                [this, i, n](size_t j, double d) {
                                  matrix_[i * n + j] = d;
                                  matrix_[j * n + i] = d;
                                });
      }
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double d = this->BuildDist(data_[i], data_[j]);
        matrix_[i * n + j] = d;
        matrix_[j * n + i] = d;
      }
    }
  }

  std::string name() const override { return "aesa"; }

  uint64_t IndexBits() const override {
    return static_cast<uint64_t>(matrix_.size()) * sizeof(double) * 8;
  }

  /// The stored distance between database points i and j.
  double StoredDistance(size_t i, size_t j) const {
    return matrix_[i * data_.size() + j];
  }

 protected:
  void SearchImpl(const SearchRequest<P>& request,
                  SearchContext* context) const override {
    EliminationSearch(request.point, MinLowerBoundPicker(), context);
  }

  /// Core elimination loop, shared by every search mode and picker
  /// (iAESA supplies a permutation-guided picker).  `pick` chooses the
  /// next live candidate (or returns n when none remain); the context
  /// supplies the mode-aware pruning radius (it shrinks as a kNN
  /// collector fills) and receives every point whose true distance is
  /// computed.  All per-query state lives on the caller's stack, so
  /// concurrent searches never interfere.
  template <typename Picker>
  void EliminationSearch(const P& query, const Picker& pick,
                         SearchContext* context) const {
    const size_t n = data_.size();
    std::vector<double> lower(n, 0.0);
    std::vector<bool> dead(n, false);
    while (true) {
      size_t next = pick(lower, dead);
      if (next == n) break;
      if (context->StopAfterBudget()) return;
      dead[next] = true;
      if (lower[next] > context->Radius()) continue;  // cannot qualify
      double d = this->QueryDist(data_[next], query, context->stats());
      context->Emit(next, d);
      const double radius = context->Radius();
      const double* row = &matrix_[next * n];
      for (size_t i = 0; i < n; ++i) {
        if (dead[i]) continue;
        double bound = std::fabs(d - row[i]);
        if (bound > lower[i]) lower[i] = bound;
        if (lower[i] > radius) dead[i] = true;
      }
    }
  }

  /// AESA's classic ordering: the live candidate with the smallest
  /// triangle-inequality lower bound.
  auto MinLowerBoundPicker() const {
    return [](const std::vector<double>& lower,
              const std::vector<bool>& dead) {
      const size_t n = lower.size();
      size_t best = n;
      double best_bound = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < n; ++i) {
        if (!dead[i] && lower[i] < best_bound) {
          best_bound = lower[i];
          best = i;
        }
      }
      return best;
    };
  }

  std::vector<double> matrix_;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_AESA_H_
