// One non-blocking connection: owned fd, read buffer, write buffer.
//
// The event loop drives it: ReadReady() drains the socket into the
// read buffer (the frame parser consumes from the front), Queue() +
// Flush() stage and push response bytes.  Partial writes stay queued;
// the server watches EPOLLOUT only while has_pending_write().

#ifndef DISTPERM_NET_CONNECTION_H_
#define DISTPERM_NET_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace distperm {
namespace net {

class Connection {
 public:
  /// Takes ownership of `fd` (closed in the destructor).
  explicit Connection(int fd);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }

  enum class ReadResult {
    kOpen,    ///< Drained what was available; connection still up.
    kClosed,  ///< Peer closed cleanly.
    kError,   ///< Socket error; tear the connection down.
  };

  /// Drains everything available into the read buffer.
  ReadResult ReadReady();

  /// Unparsed received bytes.  Both sides of the connection consume
  /// by advancing an offset rather than erasing the prefix, so
  /// draining a burst of small frames costs O(bytes), not
  /// O(frames x buffered bytes); ReadReady/Queue compact the dead
  /// prefix before growing the buffer.
  const char* read_data() const {
    return read_buffer_.data() + read_consumed_;
  }
  size_t read_size() const { return read_buffer_.size() - read_consumed_; }
  /// Drops `n` parsed bytes from the front of the unparsed region.
  void Consume(size_t n) {
    read_consumed_ += n;
    if (read_consumed_ == read_buffer_.size()) {
      read_buffer_.clear();
      read_consumed_ = 0;
    }
  }

  /// Stages bytes for writing (appends to the write buffer).
  void Queue(const std::string& bytes) {
    if (write_sent_ > 0) {
      write_buffer_.erase(0, write_sent_);
      write_sent_ = 0;
    }
    write_buffer_.append(bytes);
  }

  /// Writes as much of the write buffer as the socket accepts.
  util::Status Flush();
  bool has_pending_write() const {
    return write_sent_ < write_buffer_.size();
  }

  std::chrono::steady_clock::time_point last_activity() const {
    return last_activity_;
  }
  void Touch() { last_activity_ = std::chrono::steady_clock::now(); }

  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  int fd_;
  std::string read_buffer_;
  size_t read_consumed_ = 0;
  std::string write_buffer_;
  size_t write_sent_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  std::chrono::steady_clock::time_point last_activity_;
};

}  // namespace net
}  // namespace distperm

#endif  // DISTPERM_NET_CONNECTION_H_
