#include "metric/tree_metric.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/rng.h"

namespace distperm {
namespace metric {
namespace {

// Floyd-Warshall over the tree's edges, for cross-checking Distance().
std::vector<std::vector<double>> AllPairsBruteForce(const WeightedTree& tree) {
  const size_t n = tree.size();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, inf));
  for (size_t v = 0; v < n; ++v) dist[v][v] = 0.0;
  for (const auto& edge : tree.edges()) {
    dist[edge.u][edge.v] = edge.weight;
    dist[edge.v][edge.u] = edge.weight;
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (dist[i][k] + dist[k][j] < dist[i][j]) {
          dist[i][j] = dist[i][k] + dist[k][j];
        }
      }
    }
  }
  return dist;
}

TEST(WeightedTree, RejectsNonTrees) {
  WeightedTree too_few(3);
  ASSERT_TRUE(too_few.AddEdge(0, 1, 1.0).ok());
  EXPECT_FALSE(too_few.Finalize().ok());  // 2 edges needed

  WeightedTree disconnected(4);
  ASSERT_TRUE(disconnected.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(disconnected.AddEdge(0, 1, 2.0).ok());  // parallel edge
  ASSERT_TRUE(disconnected.AddEdge(2, 3, 1.0).ok());
  EXPECT_FALSE(disconnected.Finalize().ok());
}

TEST(WeightedTree, RejectsBadEdges) {
  WeightedTree tree(3);
  EXPECT_FALSE(tree.AddEdge(0, 0, 1.0).ok());   // self loop
  EXPECT_FALSE(tree.AddEdge(0, 5, 1.0).ok());   // out of range
  EXPECT_FALSE(tree.AddEdge(0, 1, 0.0).ok());   // non-positive weight
  EXPECT_FALSE(tree.AddEdge(0, 1, -2.0).ok());
}

TEST(WeightedTree, PathDistances) {
  WeightedTree path = WeightedTree::MakePath(6);
  EXPECT_DOUBLE_EQ(path.Distance(0, 5), 5.0);
  EXPECT_DOUBLE_EQ(path.Distance(2, 4), 2.0);
  EXPECT_DOUBLE_EQ(path.Distance(3, 3), 0.0);
  EXPECT_EQ(path.HopCount(0, 5), 5u);
}

TEST(WeightedTree, StarDistances) {
  WeightedTree star = WeightedTree::MakeStar(5);
  EXPECT_DOUBLE_EQ(star.Distance(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(star.Distance(1, 4), 2.0);
  EXPECT_EQ(star.Lca(1, 4), 0u);
}

TEST(WeightedTree, CompleteBinaryDistances) {
  WeightedTree tree = WeightedTree::MakeCompleteBinary(7);
  // Vertices: 0 root; 1,2 children; 3,4 under 1; 5,6 under 2.
  EXPECT_DOUBLE_EQ(tree.Distance(3, 4), 2.0);
  EXPECT_DOUBLE_EQ(tree.Distance(3, 6), 4.0);
  EXPECT_EQ(tree.Lca(3, 4), 1u);
  EXPECT_EQ(tree.Lca(3, 6), 0u);
  EXPECT_EQ(tree.Parent(5), 2u);
  EXPECT_EQ(tree.Depth(6), 2u);
}

TEST(WeightedTree, WeightedPathDistance) {
  WeightedTree tree(4);
  ASSERT_TRUE(tree.AddEdge(0, 1, 2.5).ok());
  ASSERT_TRUE(tree.AddEdge(1, 2, 0.5).ok());
  ASSERT_TRUE(tree.AddEdge(2, 3, 10.0).ok());
  ASSERT_TRUE(tree.Finalize().ok());
  EXPECT_DOUBLE_EQ(tree.Distance(0, 3), 13.0);
  EXPECT_DOUBLE_EQ(tree.Distance(1, 3), 10.5);
}

TEST(WeightedTree, DistancesFromMatchesPairwise) {
  util::Rng rng(3);
  WeightedTree tree = WeightedTree::MakeRandom(40, &rng, 0.5, 3.0);
  for (size_t source : {0u, 7u, 39u}) {
    auto from = tree.DistancesFrom(source);
    for (size_t v = 0; v < tree.size(); ++v) {
      EXPECT_NEAR(from[v], tree.Distance(source, v), 1e-9);
    }
  }
}

class RandomTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomTreeTest, LcaDistanceMatchesFloydWarshall) {
  util::Rng rng(100 + GetParam());
  size_t n = 3 + rng.NextBounded(25);
  WeightedTree tree = WeightedTree::MakeRandom(n, &rng, 1.0, 5.0);
  auto brute = AllPairsBruteForce(tree);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(tree.Distance(i, j), brute[i][j], 1e-9)
          << "n=" << n << " i=" << i << " j=" << j;
    }
  }
}

TEST_P(RandomTreeTest, MetricAxiomsHold) {
  util::Rng rng(200 + GetParam());
  WeightedTree tree = WeightedTree::MakeRandom(20, &rng, 0.25, 4.0);
  TreeMetric metric(&tree);
  for (size_t x = 0; x < 20; ++x) {
    for (size_t y = 0; y < 20; ++y) {
      EXPECT_DOUBLE_EQ(metric(x, y), metric(y, x));
      EXPECT_EQ(metric(x, y) == 0.0, x == y);
      for (size_t z = 0; z < 20; z += 3) {
        EXPECT_LE(metric(x, z), metric(x, y) + metric(y, z) + 1e-9);
      }
    }
  }
}

TEST_P(RandomTreeTest, FourPointConditionHolds) {
  util::Rng rng(300 + GetParam());
  WeightedTree tree = WeightedTree::MakeRandom(12, &rng, 1.0, 2.0);
  for (size_t x = 0; x < 12; ++x) {
    for (size_t y = x + 1; y < 12; ++y) {
      for (size_t z = 0; z < 12; ++z) {
        for (size_t t = z + 1; t < 12; ++t) {
          double lhs = tree.Distance(x, y) + tree.Distance(z, t);
          double a = tree.Distance(x, z) + tree.Distance(y, t);
          double b = tree.Distance(x, t) + tree.Distance(y, z);
          EXPECT_LE(lhs, std::max(a, b) + 1e-9);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeTest, ::testing::Range(0, 8));

TEST(WeightedTree, SingleVertexTree) {
  util::Rng rng(1);
  WeightedTree tree = WeightedTree::MakeRandom(1, &rng);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_DOUBLE_EQ(tree.Distance(0, 0), 0.0);
}

TEST(WeightedTree, TwoVertexTree) {
  util::Rng rng(2);
  WeightedTree tree = WeightedTree::MakeRandom(2, &rng, 2.0, 2.0);
  EXPECT_DOUBLE_EQ(tree.Distance(0, 1), 2.0);
}

}  // namespace
}  // namespace metric
}  // namespace distperm
