// Length-prefixed binary wire protocol for the serving subsystem.
//
// Every message travels in one frame:
//
//     offset  size  field
//     ------  ----  --------------------------------------------
//          0     4  magic 0x314E5044 ("DPN1", little-endian)
//          4     1  protocol version (kProtocolVersion)
//          5     1  message type (MessageType)
//          6     2  reserved (written as 0, ignored on read)
//          8     4  payload length (little-endian u32)
//         12     4  CRC32C of the payload (storage::Crc32c)
//         16     n  payload
//
// The frame layer is deliberately dumb: ParseFrame either yields a
// complete frame view, asks for more bytes, or reports a malformed
// stream (bad magic, version skew, oversized length, checksum
// mismatch) as a util::Status — the caller tears the connection down.
// Payload codecs reuse the storage layer's little-endian primitives
// and PointCodec<P>, so points round-trip bit-exactly over the wire
// the same way they do through the WAL.
//
// Responses carry a WireCode rather than util::StatusCode: the wire
// needs one extra value, kUnavailable, for admission-control
// rejections (overload is not an error in the library's sense — the
// request was well-formed, the server declined the work).

#ifndef DISTPERM_NET_PROTOCOL_H_
#define DISTPERM_NET_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "index/search.h"
#include "storage/coding.h"
#include "storage/point_codec.h"
#include "util/status.h"

namespace distperm {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x314E5044;  // "DPN1"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 16;
/// Hard cap on one frame's payload; ParseFrame rejects anything larger
/// before buffering it, so a hostile length field cannot balloon a
/// connection's read buffer.
inline constexpr size_t kMaxPayloadSize = 16u << 20;

enum class MessageType : uint8_t {
  kPing = 1,
  kPong = 2,
  kSearch = 3,
  kSearchResult = 4,
  kInsert = 5,
  kInsertResult = 6,
  kRemove = 7,
  kRemoveResult = 8,
  /// Server -> client: the stream was malformed; the connection closes
  /// after this frame.  Payload is a WireStatus.
  kError = 9,
  // ---- replication (see README "Replication").  A replica opens with
  // kCatchUpHandshake carrying its identity and resume position; the
  // primary answers with the same type (CatchUpResponse), directing it
  // to fetch a snapshot or stream the WAL.  Snapshot transfer is a
  // pull loop of kFetchSnapshot -> kSnapshotChunk (each chunk CRC32C'd
  // and offset-stamped, so a torn transfer resumes at the exact byte).
  // kStreamWal subscribes the connection; the primary then pushes
  // seq-numbered kWalFrame frames until the connection dies.
  kCatchUpHandshake = 10,
  kFetchSnapshot = 11,
  kSnapshotChunk = 12,
  kStreamWal = 13,
  kWalFrame = 14,
};

/// Response status codes: util::StatusCode values plus kUnavailable
/// (admission control declined the request — retry later or elsewhere).
enum class WireCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kIoError = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kUnavailable = 7,
};

const char* WireCodeName(WireCode code);
WireCode WireCodeFromStatus(const util::Status& status);

struct WireStatus {
  WireCode code = WireCode::kOk;
  std::string message;

  bool ok() const { return code == WireCode::kOk; }
  static WireStatus FromStatus(const util::Status& status) {
    return {WireCodeFromStatus(status), status.message()};
  }
  static WireStatus Unavailable(std::string message) {
    return {WireCode::kUnavailable, std::move(message)};
  }
};

// ------------------------------------------------------------- frames

/// A parsed frame borrowing the caller's buffer.
struct FrameView {
  uint8_t version = 0;
  MessageType type = MessageType::kPing;
  const uint8_t* payload = nullptr;
  size_t payload_size = 0;
};

enum class FrameParse {
  kComplete,    ///< `*out` is valid; consume `*frame_size` bytes.
  kIncomplete,  ///< Valid so far; read more bytes and retry.
  kError,       ///< Malformed stream; `*error` says why.  Tear down.
};

/// One full frame: header (with CRC32C over `payload`) plus payload.
std::string EncodeFrame(MessageType type, const std::string& payload);

/// Examines the first frame in `data`.  Never reads past `size`; a
/// truncated prefix of a valid frame is kIncomplete at every offset.
FrameParse ParseFrame(const uint8_t* data, size_t size, FrameView* out,
                      size_t* frame_size, util::Status* error);

// ----------------------------------------------------- payload reader

/// Bounds-checked little-endian reader over one payload.  Every getter
/// returns a zero value once the reader has failed; callers check
/// ok()/AtEnd() after the reads (the storage-layer decode idiom).
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == size_; }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    const uint32_t value = storage::GetFixed32(data_ + pos_);
    pos_ += 4;
    return value;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    const uint64_t value = storage::GetFixed64(data_ + pos_);
    pos_ += 8;
    return value;
  }
  double F64() {
    if (!Need(8)) return 0.0;
    const double value = storage::GetDouble(data_ + pos_);
    pos_ += 8;
    return value;
  }
  /// u32 length + raw bytes.
  std::string Bytes() {
    const uint32_t length = U32();
    if (!Need(length)) return std::string();
    std::string value(reinterpret_cast<const char*>(data_ + pos_), length);
    pos_ += length;
    return value;
  }
  template <typename P>
  P Point() {
    P point{};
    size_t consumed = 0;
    if (!ok_ ||
        !storage::PointCodec<P>::Decode(data_ + pos_, size_ - pos_,
                                        &consumed, &point)) {
      ok_ = false;
      return P{};
    }
    pos_ += consumed;
    return point;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------- search messages

/// Request flag bits (u8 on the wire).
inline constexpr uint8_t kRequestSplitBudget = 1u << 0;
/// Client asks the server to bypass its perm cache for this request
/// (used by benches to measure the uncached path on a warm server).
inline constexpr uint8_t kRequestNoCache = 1u << 1;

/// A decoded search request plus the wire-only knobs that have no
/// SearchRequest field.
template <typename P>
struct DecodedSearchRequest {
  index::SearchRequest<P> request;
  bool no_cache = false;
};

template <typename P>
void EncodeSearchRequest(std::string* out,
                         const index::SearchRequest<P>& request,
                         bool no_cache = false) {
  out->push_back(static_cast<char>(request.mode));
  out->push_back(static_cast<char>(request.shard_scheduling));
  uint8_t flags = 0;
  if (request.split_distance_budget) flags |= kRequestSplitBudget;
  if (no_cache) flags |= kRequestNoCache;
  out->push_back(static_cast<char>(flags));
  storage::PutFixed64(out, request.k);
  storage::PutDouble(out, request.radius);
  storage::PutFixed64(out, request.max_distance_computations);
  storage::PutDouble(out, request.approx_candidate_fraction);
  storage::PutDouble(out, request.initial_radius_bound);
  storage::PointCodec<P>::Encode(out, request.point);
}

template <typename P>
util::Result<DecodedSearchRequest<P>> DecodeSearchRequest(
    const uint8_t* data, size_t size) {
  PayloadReader reader(data, size);
  const uint8_t mode = reader.U8();
  const uint8_t scheduling = reader.U8();
  const uint8_t flags = reader.U8();
  DecodedSearchRequest<P> decoded;
  index::SearchRequest<P>& request = decoded.request;
  request.k = reader.U64();
  request.radius = reader.F64();
  request.max_distance_computations = reader.U64();
  request.approx_candidate_fraction = reader.F64();
  request.initial_radius_bound = reader.F64();
  request.point = reader.template Point<P>();
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "net: truncated or oversized search request payload");
  }
  if (mode > static_cast<uint8_t>(index::SearchMode::kKnnWithinRadius)) {
    return util::Status::InvalidArgument(
        "net: unknown search mode " + std::to_string(mode));
  }
  if (scheduling >
      static_cast<uint8_t>(index::ShardScheduling::kSeedFirst)) {
    return util::Status::InvalidArgument(
        "net: unknown shard scheduling " + std::to_string(scheduling));
  }
  request.mode = static_cast<index::SearchMode>(mode);
  request.shard_scheduling = static_cast<index::ShardScheduling>(scheduling);
  request.split_distance_budget = (flags & kRequestSplitBudget) != 0;
  decoded.no_cache = (flags & kRequestNoCache) != 0;
  return decoded;
}

/// Response flag bits (u8 on the wire).
inline constexpr uint8_t kResponseTruncated = 1u << 0;
inline constexpr uint8_t kResponseCacheHit = 1u << 1;
inline constexpr uint8_t kResponseBoundSeeded = 1u << 2;

/// One search answer as it travels: per-request status, result list,
/// the exact distance accounting, and the generation that answered.
struct WireSearchResponse {
  WireStatus status;
  bool truncated = false;
  /// Served verbatim from the server's perm cache.
  bool cache_hit = false;
  /// The perm cache seeded this search's initial_radius_bound.
  bool bound_seeded = false;
  uint64_t generation = 0;
  index::QueryStats stats;
  std::vector<index::SearchResult> results;
};

void EncodeSearchResponse(std::string* out,
                          const WireSearchResponse& response);
util::Result<WireSearchResponse> DecodeSearchResponse(const uint8_t* data,
                                                      size_t size);

// -------------------------------------------------- write-path messages

template <typename P>
void EncodeInsertRequest(std::string* out, const P& point) {
  storage::PointCodec<P>::Encode(out, point);
}

template <typename P>
util::Result<P> DecodeInsertRequest(const uint8_t* data, size_t size) {
  PayloadReader reader(data, size);
  P point = reader.template Point<P>();
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "net: truncated or oversized insert request payload");
  }
  return point;
}

struct WireInsertResponse {
  WireStatus status;
  uint64_t id = 0;
};

void EncodeInsertResponse(std::string* out,
                          const WireInsertResponse& response);
util::Result<WireInsertResponse> DecodeInsertResponse(const uint8_t* data,
                                                      size_t size);

void EncodeRemoveRequest(std::string* out, uint64_t id);
util::Result<uint64_t> DecodeRemoveRequest(const uint8_t* data, size_t size);

/// Remove responses and kError frames share this shape: one WireStatus.
void EncodeWireStatus(std::string* out, const WireStatus& status);
util::Result<WireStatus> DecodeWireStatus(const uint8_t* data, size_t size);

// ------------------------------------------------- replication messages

/// Replica -> primary: identity plus resume position.  The identity
/// half (point kind, residual spec, seed, shard count) must match the
/// primary exactly — replication relies on the engine's determinism
/// guarantee, which only holds for identical build parameters.  The
/// resume half names the first WAL record the replica still needs:
/// generation G, sequence next_seq (1 when the replica holds only the
/// snapshot of G; generation 0 = no local state at all).
struct CatchUpRequest {
  std::string point_kind;
  std::string spec;
  uint64_t seed = 0;
  uint64_t shard_count = 0;
  uint64_t generation = 0;
  uint64_t next_seq = 1;
};

void EncodeCatchUpRequest(std::string* out, const CatchUpRequest& request);
util::Result<CatchUpRequest> DecodeCatchUpRequest(const uint8_t* data,
                                                  size_t size);

enum class CatchUpAction : uint8_t {
  /// The replica's position is inside the primary's history: send
  /// kStreamWal with the same (generation, next_seq) to subscribe.
  kStreamWal = 1,
  /// The position is gone (compacted past, divergent, or fresh): fetch
  /// the snapshot of `generation` first, then handshake again.
  kFetchSnapshot = 2,
};

/// Primary -> replica, answering kCatchUpHandshake.
struct CatchUpResponse {
  WireStatus status;
  CatchUpAction action = CatchUpAction::kStreamWal;
  /// The primary's current generation and the seq its next record will
  /// carry (so the replica can report lag before the stream starts).
  uint64_t generation = 0;
  uint64_t next_seq = 1;
  /// Size of snapshot-<generation>.snap; set when action=kFetchSnapshot
  /// so the replica can pre-check resume offsets against the total.
  uint64_t snapshot_bytes = 0;
};

void EncodeCatchUpResponse(std::string* out, const CatchUpResponse& response);
util::Result<CatchUpResponse> DecodeCatchUpResponse(const uint8_t* data,
                                                    size_t size);

/// Replica -> primary: one chunk of snapshot-<generation>.snap starting
/// at `offset`.  Pull-model on purpose: the replica drives the pace (no
/// server-side buffering of a slow receiver) and a reconnect resumes by
/// asking for the offset it has durably written — nothing to negotiate.
struct FetchSnapshotRequest {
  uint64_t generation = 0;
  uint64_t offset = 0;
};

void EncodeFetchSnapshotRequest(std::string* out,
                                const FetchSnapshotRequest& request);
util::Result<FetchSnapshotRequest> DecodeFetchSnapshotRequest(
    const uint8_t* data, size_t size);

/// Primary -> replica, answering kFetchSnapshot.  `crc` is the CRC32C
/// of `data` alone (the frame layer checksums the whole payload too;
/// the chunk CRC survives into the replica's partial-file bookkeeping
/// so a resumed transfer re-verifies what it already wrote).
struct SnapshotChunk {
  WireStatus status;
  uint64_t generation = 0;
  uint64_t total_bytes = 0;
  uint64_t offset = 0;
  bool last = false;
  uint32_t crc = 0;
  std::string data;
};

void EncodeSnapshotChunk(std::string* out, const SnapshotChunk& chunk);
util::Result<SnapshotChunk> DecodeSnapshotChunk(const uint8_t* data,
                                                size_t size);

/// Replica -> primary: subscribe to WAL frames of `generation` from
/// `next_seq` on.  The primary replays history [next_seq ..] and keeps
/// pushing; a position it no longer holds gets a kError frame and the
/// replica re-handshakes.
struct StreamWalRequest {
  uint64_t generation = 0;
  uint64_t next_seq = 1;
};

void EncodeStreamWalRequest(std::string* out, const StreamWalRequest& request);
util::Result<StreamWalRequest> DecodeStreamWalRequest(const uint8_t* data,
                                                      size_t size);

inline constexpr uint8_t kWalFrameRecord = 1;
inline constexpr uint8_t kWalFrameRotate = 2;

/// Primary -> replica: one streamed replication event.
///   kind=kWalFrameRecord  one WAL record of `generation`: `seq` (the
///                         1-based position in that generation's delta
///                         log) and `record` (the engine's WAL payload,
///                         byte-identical to what the primary logged —
///                         the replica applies it through its own
///                         LiveDatabase write path).
///   kind=kWalFrameRotate  the primary compacted: the first `folded`
///                         records folded into generation `generation`
///                         (= old + 1).  The replica runs the same
///                         deterministic CompactPrefix(folded) locally
///                         and both sides land on bit-identical state.
struct WalStreamFrame {
  uint8_t kind = kWalFrameRecord;
  uint64_t generation = 0;
  uint64_t seq = 0;     ///< records only
  uint64_t folded = 0;  ///< rotates only
  std::string record;   ///< records only
};

void EncodeWalStreamFrame(std::string* out, const WalStreamFrame& frame);
util::Result<WalStreamFrame> DecodeWalStreamFrame(const uint8_t* data,
                                                  size_t size);

}  // namespace net
}  // namespace distperm

#endif  // DISTPERM_NET_PROTOCOL_H_
