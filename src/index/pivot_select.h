// Pivot (site) selection strategies.
//
// Random selection is the paper's protocol for its counting experiments;
// max-min (farthest-first) selection is the standard heuristic for
// LAESA-style pivot tables.

#ifndef DISTPERM_INDEX_PIVOT_SELECT_H_
#define DISTPERM_INDEX_PIVOT_SELECT_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "metric/metric.h"
#include "util/rng.h"
#include "util/status.h"

namespace distperm {
namespace index {

/// `count` distinct random indices into `data`.
template <typename P>
std::vector<size_t> RandomPivots(const std::vector<P>& data, size_t count,
                                 util::Rng* rng) {
  DP_CHECK(count <= data.size());
  return rng->SampleDistinct(data.size(), count);
}

/// Farthest-first (max-min) pivots: the first pivot is random; each
/// subsequent pivot maximises its minimum distance to the pivots chosen
/// so far.  `distance_budget`, when non-null, is incremented by the
/// number of metric evaluations used (n per added pivot).
template <typename P>
std::vector<size_t> MaxMinPivots(const std::vector<P>& data,
                                 const metric::Metric<P>& metric,
                                 size_t count, util::Rng* rng,
                                 uint64_t* distance_budget = nullptr) {
  DP_CHECK(count <= data.size());
  std::vector<size_t> pivots;
  if (count == 0) return pivots;
  pivots.reserve(count);
  pivots.push_back(static_cast<size_t>(rng->NextBounded(data.size())));
  std::vector<double> nearest(data.size(),
                              std::numeric_limits<double>::infinity());
  while (pivots.size() < count) {
    size_t latest = pivots.back();
    size_t best = 0;
    double best_distance = -1.0;
    for (size_t i = 0; i < data.size(); ++i) {
      double d = metric(data[latest], data[i]);
      if (distance_budget != nullptr) ++*distance_budget;
      if (d < nearest[i]) nearest[i] = d;
      if (nearest[i] > best_distance) {
        best_distance = nearest[i];
        best = i;
      }
    }
    if (best_distance <= 0.0) {
      // Degenerate database (all remaining points coincide with pivots);
      // fall back to an arbitrary unused index.
      for (size_t i = 0; i < data.size(); ++i) {
        if (nearest[i] > 0.0 ||
            std::find(pivots.begin(), pivots.end(), i) == pivots.end()) {
          best = i;
          break;
        }
      }
    }
    pivots.push_back(best);
  }
  return pivots;
}

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_PIVOT_SELECT_H_
