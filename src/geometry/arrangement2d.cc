#include "geometry/arrangement2d.h"

#include <algorithm>
#include <map>

namespace distperm {
namespace geometry {
namespace {

using Int128 = __int128;

Int128 Gcd128(Int128 a, Int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    Int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

// An exact rational point (x, y) = (nx/d, ny/d) in canonical form:
// d > 0 and gcd(nx, ny, d) = 1.
struct RationalPoint {
  Int128 nx = 0;
  Int128 ny = 0;
  Int128 d = 1;

  void Canonicalize() {
    if (d < 0) {
      nx = -nx;
      ny = -ny;
      d = -d;
    }
    Int128 g = Gcd128(Gcd128(nx, ny), d);
    if (g > 1) {
      nx /= g;
      ny /= g;
      d /= g;
    }
  }

  friend bool operator<(const RationalPoint& p, const RationalPoint& q) {
    if (p.nx != q.nx) return p.nx < q.nx;
    if (p.ny != q.ny) return p.ny < q.ny;
    return p.d < q.d;
  }
};

}  // namespace

void Line::Canonicalize() {
  DP_CHECK_MSG(a != 0 || b != 0, "degenerate line 0x + 0y = c");
  int64_t g = static_cast<int64_t>(
      Gcd128(Gcd128(static_cast<Int128>(a), static_cast<Int128>(b)),
             static_cast<Int128>(c)));
  if (g > 1) {
    a /= g;
    b /= g;
    c /= g;
  }
  if (a < 0 || (a == 0 && b < 0)) {
    a = -a;
    b = -b;
    c = -c;
  }
}

void LineArrangement::AddLine(int64_t a, int64_t b, int64_t c) {
  Line line{a, b, c};
  line.Canonicalize();
  if (std::find(lines_.begin(), lines_.end(), line) == lines_.end()) {
    lines_.push_back(line);
  }
}

size_t LineArrangement::CountVertices() const {
  std::map<RationalPoint, int> multiplicity;
  for (size_t i = 0; i < lines_.size(); ++i) {
    for (size_t j = i + 1; j < lines_.size(); ++j) {
      const Line& p = lines_[i];
      const Line& q = lines_[j];
      Int128 det = static_cast<Int128>(p.a) * q.b -
                   static_cast<Int128>(p.b) * q.a;
      if (det == 0) continue;  // parallel, no vertex
      RationalPoint point;
      point.nx = static_cast<Int128>(p.c) * q.b -
                 static_cast<Int128>(p.b) * q.c;
      point.ny = static_cast<Int128>(p.a) * q.c -
                 static_cast<Int128>(p.c) * q.a;
      point.d = det;
      point.Canonicalize();
      ++multiplicity[point];
    }
  }
  return multiplicity.size();
}

size_t LineArrangement::CountRegions() const {
  // Group intersecting line pairs by intersection point; a point hit by
  // t pairs has lambda = (1 + sqrt(1 + 8t)) / 2 concurrent lines, but it
  // is simpler to record the set size directly: we count, per point, the
  // number of distinct lines through it.
  std::map<RationalPoint, std::vector<size_t>> lines_through;
  for (size_t i = 0; i < lines_.size(); ++i) {
    for (size_t j = i + 1; j < lines_.size(); ++j) {
      const Line& p = lines_[i];
      const Line& q = lines_[j];
      Int128 det = static_cast<Int128>(p.a) * q.b -
                   static_cast<Int128>(p.b) * q.a;
      if (det == 0) continue;
      RationalPoint point;
      point.nx = static_cast<Int128>(p.c) * q.b -
                 static_cast<Int128>(p.b) * q.c;
      point.ny = static_cast<Int128>(p.a) * q.c -
                 static_cast<Int128>(p.c) * q.a;
      point.d = det;
      point.Canonicalize();
      auto& through = lines_through[point];
      for (size_t id : {i, j}) {
        if (std::find(through.begin(), through.end(), id) == through.end()) {
          through.push_back(id);
        }
      }
    }
  }
  size_t regions = 1 + lines_.size();
  for (const auto& [point, through] : lines_through) {
    regions += through.size() - 1;
  }
  return regions;
}

LineArrangement EuclideanBisectorArrangement(
    const std::vector<IntPoint2>& sites) {
  constexpr int64_t kMaxCoord = int64_t{1} << 20;
  LineArrangement arrangement;
  for (size_t i = 0; i < sites.size(); ++i) {
    DP_CHECK_MSG(std::llabs(sites[i][0]) < kMaxCoord &&
                     std::llabs(sites[i][1]) < kMaxCoord,
                 "site coordinates too large for exact arithmetic");
    for (size_t j = i + 1; j < sites.size(); ++j) {
      const auto& s = sites[i];
      const auto& t = sites[j];
      DP_CHECK_MSG(s != t, "duplicate sites have no bisector");
      // |z - s|^2 = |z - t|^2  <=>  2(t - s) . z = |t|^2 - |s|^2.
      int64_t a = 2 * (t[0] - s[0]);
      int64_t b = 2 * (t[1] - s[1]);
      int64_t c = t[0] * t[0] + t[1] * t[1] - s[0] * s[0] - s[1] * s[1];
      arrangement.AddLine(a, b, c);
    }
  }
  return arrangement;
}

}  // namespace geometry
}  // namespace distperm
