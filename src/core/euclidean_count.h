// Exact Euclidean permutation counts (paper Theorem 7, Corollary 8,
// Table 1).
//
// N_{d,2}(k), the maximum number of distinct distance permutations of k
// sites in d-dimensional Euclidean space, satisfies
//
//   N_{0,2}(k) = N_{d,2}(1) = 1
//   N_{d,2}(k) = N_{d,2}(k-1) + (k-1) * N_{d-1,2}(k-1)
//
// The recurrence extends Price's cake-cutting argument: each of the k-1
// bisectors between the new site and an old site is itself a
// (d-1)-dimensional space cut by the old bisector arrangement, and
// same-group bisector intersections coincide with already-counted ones
// (a|x  intersect  b|x  =  a|b  intersect  b|x).

#ifndef DISTPERM_CORE_EUCLIDEAN_COUNT_H_
#define DISTPERM_CORE_EUCLIDEAN_COUNT_H_

#include <cstdint>
#include <vector>

#include "util/big_uint.h"

namespace distperm {
namespace core {

/// Memoized evaluator of N_{d,2}(k).  All values are exact (BigUint).
class EuclideanCounter {
 public:
  /// N_{d,2}(k): maximum distinct distance permutations of k sites in
  /// d-dimensional Euclidean space.  Requires k >= 1, d >= 0.
  const util::BigUint& Count(int dimension, int sites);

  /// Count() as uint64; fatal on overflow.
  uint64_t Count64(int dimension, int sites);

  /// Minimum bits to store a distance permutation in d-dimensional
  /// Euclidean space with k sites: ceil(lg N_{d,2}(k)).
  int StorageBits(int dimension, int sites);

  /// Leading-term approximation from Corollary 8:
  /// N_{d,2}(k) ~ k^(2d) / (2^d d!).
  static double AsymptoticEstimate(int dimension, int sites);

  /// The k^(2d) upper bound from Corollary 8 (exact BigUint).
  static util::BigUint UpperBound(int dimension, int sites);

 private:
  // memo_[d][k] caches Count(d, k); empty entries are BigUint(0), which is
  // never a legal count, so zero doubles as "absent".
  std::vector<std::vector<util::BigUint>> memo_;
};

/// Convenience single-shot evaluation of N_{d,2}(k).
util::BigUint EuclideanPermutationCount(int dimension, int sites);

}  // namespace core
}  // namespace distperm

#endif  // DISTPERM_CORE_EUCLIDEAN_COUNT_H_
