#include "net/protocol.h"

#include "storage/crc32.h"

namespace distperm {
namespace net {

const char* WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kOk:
      return "OK";
    case WireCode::kInvalidArgument:
      return "InvalidArgument";
    case WireCode::kOutOfRange:
      return "OutOfRange";
    case WireCode::kNotFound:
      return "NotFound";
    case WireCode::kIoError:
      return "IoError";
    case WireCode::kUnimplemented:
      return "Unimplemented";
    case WireCode::kInternal:
      return "Internal";
    case WireCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

WireCode WireCodeFromStatus(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kOk:
      return WireCode::kOk;
    case util::StatusCode::kInvalidArgument:
      return WireCode::kInvalidArgument;
    case util::StatusCode::kOutOfRange:
      return WireCode::kOutOfRange;
    case util::StatusCode::kNotFound:
      return WireCode::kNotFound;
    case util::StatusCode::kIoError:
      return WireCode::kIoError;
    case util::StatusCode::kUnimplemented:
      return WireCode::kUnimplemented;
    case util::StatusCode::kInternal:
      return WireCode::kInternal;
  }
  return WireCode::kInternal;
}

std::string EncodeFrame(MessageType type, const std::string& payload) {
  DP_CHECK(payload.size() <= kMaxPayloadSize);
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  storage::PutFixed32(&frame, kFrameMagic);
  frame.push_back(static_cast<char>(kProtocolVersion));
  frame.push_back(static_cast<char>(type));
  frame.push_back(0);
  frame.push_back(0);
  storage::PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  storage::PutFixed32(&frame,
                      storage::Crc32c(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

FrameParse ParseFrame(const uint8_t* data, size_t size, FrameView* out,
                      size_t* frame_size, util::Status* error) {
  // Reject garbage as early as the bytes allow: a stream that cannot
  // become a valid frame fails on its first four bytes, not after the
  // peer ships a whole bogus "payload".
  if (size < 4) return FrameParse::kIncomplete;
  if (storage::GetFixed32(data) != kFrameMagic) {
    *error = util::Status::InvalidArgument("net: bad frame magic");
    return FrameParse::kError;
  }
  if (size < 5) return FrameParse::kIncomplete;
  if (data[4] != kProtocolVersion) {
    *error = util::Status::InvalidArgument(
        "net: protocol version skew (peer speaks v" +
        std::to_string(data[4]) + ", this build speaks v" +
        std::to_string(kProtocolVersion) + ")");
    return FrameParse::kError;
  }
  if (size < kFrameHeaderSize) return FrameParse::kIncomplete;
  const uint32_t payload_size = storage::GetFixed32(data + 8);
  if (payload_size > kMaxPayloadSize) {
    *error = util::Status::InvalidArgument(
        "net: frame payload of " + std::to_string(payload_size) +
        " bytes exceeds the " + std::to_string(kMaxPayloadSize) +
        "-byte cap");
    return FrameParse::kError;
  }
  const size_t total = kFrameHeaderSize + payload_size;
  if (size < total) return FrameParse::kIncomplete;
  const uint32_t expected_crc = storage::GetFixed32(data + 12);
  const uint32_t actual_crc =
      storage::Crc32c(data + kFrameHeaderSize, payload_size);
  if (expected_crc != actual_crc) {
    *error = util::Status::IoError("net: frame payload checksum mismatch");
    return FrameParse::kError;
  }
  out->version = data[4];
  out->type = static_cast<MessageType>(data[5]);
  out->payload = data + kFrameHeaderSize;
  out->payload_size = payload_size;
  *frame_size = total;
  return FrameParse::kComplete;
}

void EncodeSearchResponse(std::string* out,
                          const WireSearchResponse& response) {
  out->push_back(static_cast<char>(response.status.code));
  storage::PutLengthPrefixed(out, response.status.message);
  uint8_t flags = 0;
  if (response.truncated) flags |= kResponseTruncated;
  if (response.cache_hit) flags |= kResponseCacheHit;
  if (response.bound_seeded) flags |= kResponseBoundSeeded;
  out->push_back(static_cast<char>(flags));
  storage::PutFixed64(out, response.generation);
  storage::PutFixed64(out, response.stats.distance_computations);
  storage::PutFixed64(out, response.stats.pruning_eliminated);
  storage::PutFixed64(out, response.stats.candidates_verified);
  storage::PutFixed32(out, static_cast<uint32_t>(response.results.size()));
  for (const index::SearchResult& result : response.results) {
    storage::PutFixed64(out, result.id);
    storage::PutDouble(out, result.distance);
  }
}

util::Result<WireSearchResponse> DecodeSearchResponse(const uint8_t* data,
                                                      size_t size) {
  PayloadReader reader(data, size);
  WireSearchResponse response;
  const uint8_t code = reader.U8();
  response.status.message = reader.Bytes();
  const uint8_t flags = reader.U8();
  response.generation = reader.U64();
  response.stats.distance_computations = reader.U64();
  response.stats.pruning_eliminated = reader.U64();
  response.stats.candidates_verified = reader.U64();
  const uint32_t count = reader.U32();
  // Bound the reserve by what the payload can actually hold (16 bytes
  // per result), so a corrupt count cannot force a huge allocation.
  if (reader.ok() && static_cast<size_t>(count) * 16 > size) {
    return util::Status::InvalidArgument(
        "net: search response result count exceeds the payload");
  }
  response.results.reserve(count);
  for (uint32_t i = 0; i < count && reader.ok(); ++i) {
    index::SearchResult result;
    result.id = static_cast<size_t>(reader.U64());
    result.distance = reader.F64();
    response.results.push_back(result);
  }
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "net: truncated or oversized search response payload");
  }
  if (code > static_cast<uint8_t>(WireCode::kUnavailable)) {
    return util::Status::InvalidArgument(
        "net: unknown wire status code " + std::to_string(code));
  }
  response.status.code = static_cast<WireCode>(code);
  response.truncated = (flags & kResponseTruncated) != 0;
  response.cache_hit = (flags & kResponseCacheHit) != 0;
  response.bound_seeded = (flags & kResponseBoundSeeded) != 0;
  return response;
}

void EncodeInsertResponse(std::string* out,
                          const WireInsertResponse& response) {
  out->push_back(static_cast<char>(response.status.code));
  storage::PutLengthPrefixed(out, response.status.message);
  storage::PutFixed64(out, response.id);
}

util::Result<WireInsertResponse> DecodeInsertResponse(const uint8_t* data,
                                                      size_t size) {
  PayloadReader reader(data, size);
  WireInsertResponse response;
  const uint8_t code = reader.U8();
  response.status.message = reader.Bytes();
  response.id = reader.U64();
  if (!reader.AtEnd() ||
      code > static_cast<uint8_t>(WireCode::kUnavailable)) {
    return util::Status::InvalidArgument(
        "net: malformed insert response payload");
  }
  response.status.code = static_cast<WireCode>(code);
  return response;
}

void EncodeRemoveRequest(std::string* out, uint64_t id) {
  storage::PutFixed64(out, id);
}

util::Result<uint64_t> DecodeRemoveRequest(const uint8_t* data,
                                           size_t size) {
  PayloadReader reader(data, size);
  const uint64_t id = reader.U64();
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "net: malformed remove request payload");
  }
  return id;
}

void EncodeWireStatus(std::string* out, const WireStatus& status) {
  out->push_back(static_cast<char>(status.code));
  storage::PutLengthPrefixed(out, status.message);
}

util::Result<WireStatus> DecodeWireStatus(const uint8_t* data, size_t size) {
  PayloadReader reader(data, size);
  WireStatus status;
  const uint8_t code = reader.U8();
  status.message = reader.Bytes();
  if (!reader.AtEnd() ||
      code > static_cast<uint8_t>(WireCode::kUnavailable)) {
    return util::Status::InvalidArgument(
        "net: malformed status payload");
  }
  status.code = static_cast<WireCode>(code);
  return status;
}

}  // namespace net
}  // namespace distperm
