#include "storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace distperm {
namespace storage {

namespace {

util::Status ErrnoStatus(const std::string& op, const std::string& path,
                         int err) {
  const std::string message = op + " " + path + ": " + std::strerror(err);
  if (err == ENOENT) return util::Status::NotFound(message);
  return util::Status::IoError(message);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  util::Status Append(const void* data, size_t size) override {
    if (fd_ < 0) return util::Status::IoError("append on closed file " + path_);
    const char* p = static_cast<const char*>(data);
    while (size > 0) {
      const ssize_t n = ::write(fd_, p, size);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      p += n;
      size -= static_cast<size_t>(n);
    }
    return util::Status::OK();
  }

  util::Status Flush() override {
    // Appends go straight to the OS; nothing buffered here.
    return util::Status::OK();
  }

  util::Status Sync() override {
    if (fd_ < 0) return util::Status::IoError("sync on closed file " + path_);
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    return util::Status::OK();
  }

  util::Status Close() override {
    if (fd_ < 0) return util::Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return util::Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixMappedFile : public MappedFile {
 public:
  PosixMappedFile(void* base, size_t size) : base_(base), size_(size) {}

  ~PosixMappedFile() override {
    if (base_ != nullptr && size_ > 0) ::munmap(base_, size_);
  }

  const uint8_t* data() const override {
    return static_cast<const uint8_t*>(base_);
  }
  size_t size() const override { return size_; }

 private:
  void* base_;
  size_t size_;
};

class PosixEnv : public Env {
 public:
  util::Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    if (truncate) flags |= O_TRUNC;
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  util::Result<std::string> ReadFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    std::string out;
    char buffer[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        return ErrnoStatus("read", path, err);
      }
      if (n == 0) break;
      out.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  util::Result<std::shared_ptr<MappedFile>> MapFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("fstat", path, err);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return std::shared_ptr<MappedFile>(new PosixMappedFile(nullptr, 0));
    }
    // MAP_POPULATE pre-faults the mapping: snapshot readers sweep the
    // whole file for checksums immediately, so taking one batched
    // page-in here beats ~size/4KiB soft faults during that sweep.
    void* base =
        ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE | MAP_POPULATE, fd, 0);
    if (base == MAP_FAILED && errno == EINVAL) {
      // Portability fallback for kernels without MAP_POPULATE.
      base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    }
    const int err = errno;
    ::close(fd);  // The mapping keeps its own reference to the file.
    if (base == MAP_FAILED) return ErrnoStatus("mmap", path, err);
    return std::shared_ptr<MappedFile>(new PosixMappedFile(base, size));
  }

  util::Status RenameFile(const std::string& from,
                          const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to, errno);
    }
    return util::Status::OK();
  }

  util::Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
    return util::Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  util::Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat", path, errno);
    return static_cast<uint64_t>(st.st_size);
  }

  util::Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path, errno);
    }
    return util::Status::OK();
  }

  util::Result<std::vector<std::string>> ListDir(
      const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return ErrnoStatus("opendir", dir, errno);
    std::vector<std::string> names;
    for (;;) {
      errno = 0;
      struct dirent* entry = ::readdir(d);
      if (entry == nullptr) {
        const int err = errno;
        ::closedir(d);
        if (err != 0) return ErrnoStatus("readdir", dir, err);
        break;
      }
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    return names;
  }

  util::Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", dir, errno);
    }
    return util::Status::OK();
  }

  util::Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", dir, errno);
    util::Status status = util::Status::OK();
    if (::fsync(fd) != 0) status = ErrnoStatus("fsync", dir, errno);
    ::close(fd);
    return status;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

namespace {

/// WritableFile that charges appends against the owning env's crash
/// budget.  A crash mid-append persists the prefix that fit — the same
/// bytes a real kill between write(2) calls would leave on disk.
class FaultInjectionFile : public WritableFile {
 public:
  FaultInjectionFile(std::unique_ptr<WritableFile> base,
                     FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  util::Status Append(const void* data, size_t size) override {
    util::Status alive = env_->CheckAlive();
    if (!alive.ok()) return alive;
    const size_t allowed = env_->ConsumeWriteBudget(size);
    if (allowed > 0) {
      util::Status appended = base_->Append(data, allowed);
      if (!appended.ok()) return appended;
    }
    if (allowed < size) {
      return util::Status::IoError("injected crash: short write");
    }
    return util::Status::OK();
  }

  util::Status Flush() override {
    util::Status alive = env_->CheckAlive();
    if (!alive.ok()) return alive;
    return base_->Flush();
  }

  util::Status Sync() override {
    util::Status alive = env_->CheckAlive();
    if (!alive.ok()) return alive;
    util::Status injected = env_->ConsumeSync();
    if (!injected.ok()) return injected;
    return base_->Sync();
  }

  util::Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

}  // namespace

util::Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  util::Status alive = CheckAlive();
  if (!alive.ok()) return alive;
  auto base = base_->NewWritableFile(path, truncate);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultInjectionFile(std::move(base).value(), this));
}

size_t FaultInjectionEnv::ConsumeWriteBudget(size_t want) {
  if (!crash_armed_.load()) {
    bytes_written_.fetch_add(want);
    return want;
  }
  uint64_t budget = bytes_until_crash_.load();
  for (;;) {
    const uint64_t allowed =
        budget < static_cast<uint64_t>(want) ? budget : want;
    if (bytes_until_crash_.compare_exchange_weak(budget, budget - allowed)) {
      if (allowed < want) crashed_.store(true);
      bytes_written_.fetch_add(allowed);
      return static_cast<size_t>(allowed);
    }
  }
}

util::Status FaultInjectionEnv::ConsumeSync() {
  sync_count_.fetch_add(1);
  bool expected = true;
  if (fail_next_sync_.compare_exchange_strong(expected, false)) {
    return util::Status::IoError("injected fsync failure");
  }
  return util::Status::OK();
}

}  // namespace storage
}  // namespace distperm
