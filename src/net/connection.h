// One non-blocking connection: owned fd, read buffer, write buffer.
//
// The event loop drives it: ReadReady() drains the socket into the
// read buffer (the frame parser consumes from the front), Queue() +
// Flush() stage and push response bytes.  Partial writes stay queued;
// the server watches EPOLLOUT only while has_pending_write().

#ifndef DISTPERM_NET_CONNECTION_H_
#define DISTPERM_NET_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace distperm {
namespace net {

class Connection {
 public:
  /// Takes ownership of `fd` (closed in the destructor).
  explicit Connection(int fd);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }

  enum class ReadResult {
    kOpen,    ///< Drained what was available; connection still up.
    kClosed,  ///< Peer closed cleanly.
    kError,   ///< Socket error; tear the connection down.
  };

  /// Drains everything available into the read buffer.
  ReadResult ReadReady();

  std::string& read_buffer() { return read_buffer_; }
  /// Drops `n` parsed bytes from the front of the read buffer.
  void Consume(size_t n) { read_buffer_.erase(0, n); }

  /// Stages bytes for writing (appends to the write buffer).
  void Queue(const std::string& bytes) { write_buffer_.append(bytes); }

  /// Writes as much of the write buffer as the socket accepts.
  util::Status Flush();
  bool has_pending_write() const { return !write_buffer_.empty(); }

  std::chrono::steady_clock::time_point last_activity() const {
    return last_activity_;
  }
  void Touch() { last_activity_ = std::chrono::steady_clock::now(); }

  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  int fd_;
  std::string read_buffer_;
  std::string write_buffer_;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  std::chrono::steady_clock::time_point last_activity_;
};

}  // namespace net
}  // namespace distperm

#endif  // DISTPERM_NET_CONNECTION_H_
