// Deeper index tests: stored-structure invariants, cross-index
// agreement on non-vector metrics, and counter bookkeeping.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dataset/doc_gen.h"
#include "dataset/vector_gen.h"
#include "index/aesa.h"
#include "index/distperm_index.h"
#include "index/gh_tree.h"
#include "index/iaesa.h"
#include "index/laesa.h"
#include "index/linear_scan.h"
#include "index/vp_tree.h"
#include "metric/cosine.h"
#include "metric/lp.h"
#include "util/rng.h"

namespace distperm {
namespace index {
namespace {

using metric::SparseVector;
using metric::Vector;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }
metric::Metric<Vector> L1() { return metric::LpMetric::L1(); }

TEST(AesaInternals, MatrixIsSymmetricWithZeroDiagonal) {
  util::Rng rng(51);
  auto data = dataset::UniformCube(40, 3, &rng);
  AesaIndex<Vector> aesa(data, L2());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(aesa.StoredDistance(i, i), 0.0);
    for (size_t j = 0; j < data.size(); ++j) {
      EXPECT_DOUBLE_EQ(aesa.StoredDistance(i, j),
                       aesa.StoredDistance(j, i));
    }
  }
}

TEST(AesaInternals, MatrixSatisfiesTriangleInequality) {
  util::Rng rng(52);
  auto data = dataset::UniformCube(25, 4, &rng);
  AesaIndex<Vector> aesa(data, L2());
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = 0; j < data.size(); ++j) {
      for (size_t k = 0; k < data.size(); ++k) {
        EXPECT_LE(aesa.StoredDistance(i, k),
                  aesa.StoredDistance(i, j) + aesa.StoredDistance(j, k) +
                      1e-9);
      }
    }
  }
}

TEST(LaesaInternals, TableMatchesMetric) {
  util::Rng rng(53), pivot_rng(54);
  auto data = dataset::UniformCube(60, 2, &rng);
  LaesaIndex<Vector> laesa(data, L2(), 5, &pivot_rng);
  ASSERT_EQ(laesa.pivot_ids().size(), 5u);
  metric::LpMetric l2 = metric::LpMetric::L2();
  for (size_t i = 0; i < data.size(); i += 7) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(laesa.StoredDistance(i, j),
                       l2(data[i], data[laesa.pivot_ids()[j]]));
    }
  }
}

TEST(Iaesa, AgreesWithAesaUnderL1) {
  util::Rng rng(55), site_rng(56);
  auto data = dataset::UniformCube(150, 4, &rng);
  AesaIndex<Vector> aesa(data, L1());
  IaesaIndex<Vector> iaesa(data, L1(), 8, &site_rng);
  for (int q = 0; q < 10; ++q) {
    Vector query(4);
    for (auto& coord : query) coord = rng.NextDouble();
    EXPECT_EQ(iaesa.KnnQuery(query, 7), aesa.KnnQuery(query, 7));
    EXPECT_EQ(iaesa.RangeQuery(query, 0.4), aesa.RangeQuery(query, 0.4));
  }
}

TEST(Indexes, AgreeOnSparseDocumentSpace) {
  util::Rng rng(57);
  dataset::DocCorpusProfile profile;
  profile.vocabulary = 500;
  profile.topics = 5;
  profile.terms_per_doc = 15;
  auto docs = dataset::DocumentVectors(120, profile, &rng);
  metric::Metric<SparseVector> angle((metric::AngleMetric()));
  LinearScanIndex<SparseVector> reference(docs, angle);
  util::Rng r1(58), r2(59);
  VpTreeIndex<SparseVector> vp(docs, angle, &r1);
  GhTreeIndex<SparseVector> gh(docs, angle, &r2);
  AesaIndex<SparseVector> aesa(docs, angle);
  for (int q = 0; q < 6; ++q) {
    const SparseVector& query = docs[rng.NextBounded(docs.size())];
    auto expected = reference.KnnQuery(query, 4);
    EXPECT_EQ(vp.KnnQuery(query, 4), expected);
    EXPECT_EQ(gh.KnnQuery(query, 4), expected);
    EXPECT_EQ(aesa.KnnQuery(query, 4), expected);
    auto expected_range = reference.RangeQuery(query, 0.8);
    EXPECT_EQ(vp.RangeQuery(query, 0.8), expected_range);
    EXPECT_EQ(gh.RangeQuery(query, 0.8), expected_range);
  }
}

TEST(Indexes, QueryOutsideDataRangeStillCorrect) {
  util::Rng rng(60);
  auto data = dataset::UniformCube(200, 2, &rng);
  LinearScanIndex<Vector> reference(data, L2());
  util::Rng r1(61), r2(62), r3(62);
  VpTreeIndex<Vector> vp(data, L2(), &r1);
  GhTreeIndex<Vector> gh(data, L2(), &r2);
  LaesaIndex<Vector> laesa(data, L2(), 6, &r3);
  Vector far_query = {25.0, -13.0};
  auto expected = reference.KnnQuery(far_query, 3);
  EXPECT_EQ(vp.KnnQuery(far_query, 3), expected);
  EXPECT_EQ(gh.KnnQuery(far_query, 3), expected);
  EXPECT_EQ(laesa.KnnQuery(far_query, 3), expected);
  // A huge radius returns everything, sorted.
  auto all = reference.RangeQuery(far_query, 100.0);
  EXPECT_EQ(all.size(), data.size());
  EXPECT_EQ(vp.RangeQuery(far_query, 100.0), all);
}

TEST(Indexes, RadiusBoundaryIsInclusive) {
  std::vector<Vector> data = {{0.0, 0.0}, {3.0, 4.0}, {6.0, 8.0}};
  LinearScanIndex<Vector> scan(data, L2());
  auto hits = scan.RangeQuery({0.0, 0.0}, 5.0);  // d to point 1 is 5.0
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[1].id, 1u);
  EXPECT_DOUBLE_EQ(hits[1].distance, 5.0);
}

TEST(DistPerm, WorksOnSparseDocuments) {
  util::Rng rng(63), site_rng(64);
  dataset::DocCorpusProfile profile;
  profile.vocabulary = 400;
  profile.topics = 4;
  auto docs = dataset::DocumentVectors(200, profile, &rng);
  metric::Metric<SparseVector> angle((metric::AngleMetric()));
  DistPermIndex<SparseVector> index(docs, angle, 6, &site_rng, 1.0);
  LinearScanIndex<SparseVector> reference(docs, angle);
  const SparseVector& query = docs[17];
  EXPECT_EQ(index.KnnQuery(query, 5), reference.KnnQuery(query, 5));
  EXPECT_GE(index.DistinctPermutationCount(), 1u);
  EXPECT_LE(index.DistinctPermutationCount(), docs.size());
}

TEST(Counters, ResetQueryCountOnlyClearsQueries) {
  util::Rng rng(65), site_rng(66);
  auto data = dataset::UniformCube(100, 2, &rng);
  DistPermIndex<Vector> index(data, L2(), 5, &site_rng);
  uint64_t build = index.build_distance_computations();
  EXPECT_EQ(build, 100u * 5u);
  index.KnnQuery(data[0], 3);
  EXPECT_GT(index.query_distance_computations(), 0u);
  index.ResetQueryCount();
  EXPECT_EQ(index.query_distance_computations(), 0u);
  EXPECT_EQ(index.build_distance_computations(), build);
}

TEST(VpTree, HandlesCollinearData) {
  // Degenerate geometry: all points on a line; median splits still work.
  std::vector<Vector> data;
  for (int i = 0; i < 64; ++i) data.push_back({static_cast<double>(i)});
  util::Rng rng(67);
  VpTreeIndex<Vector> vp(data, L2(), &rng);
  LinearScanIndex<Vector> reference(data, L2());
  for (double q : {-5.0, 0.0, 31.5, 63.0, 99.0}) {
    Vector query = {q};
    EXPECT_EQ(vp.KnnQuery(query, 5), reference.KnnQuery(query, 5)) << q;
  }
}

TEST(GhTree, HandlesTwoPointDatabase) {
  std::vector<Vector> data = {{0.0}, {1.0}};
  util::Rng rng(68);
  GhTreeIndex<Vector> gh(data, L2(), &rng);
  auto hits = gh.KnnQuery({0.2}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_EQ(hits[1].id, 1u);
}

}  // namespace
}  // namespace index
}  // namespace distperm
