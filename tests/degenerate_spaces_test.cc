// Counting behaviour in degenerate and discrete spaces: the discrete
// metric (every pair equidistant) and the Hamming cube (which is L1 on
// {0,1}^d, so Theorem 9's L1 bound applies to it).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/bounds.h"
#include "core/euclidean_count.h"
#include "core/perm_counter.h"
#include "metric/metric.h"
#include "metric/string_metrics.h"
#include "util/big_uint.h"
#include "util/rng.h"

namespace distperm {
namespace core {
namespace {

TEST(DiscreteMetric, SatisfiesAxioms) {
  metric::DiscreteMetric<int> d;
  EXPECT_DOUBLE_EQ(d(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(d(3, 4), 1.0);
  EXPECT_DOUBLE_EQ(d(4, 3), 1.0);
  // Triangle: 1 <= 1 + 1 always; 0-cases trivial.
  EXPECT_LE(d(1, 3), d(1, 2) + d(2, 3));
}

TEST(DiscreteMetric, PermutationCountIsSitesPlusOne) {
  // In the discrete metric every non-site point is equidistant (1) from
  // all sites, so it gets the identity permutation by tie-break.  Site
  // x_i is at distance 0 from itself, giving the permutation that moves
  // i to the front.  Total: k + 1 distinct permutations (identity plus
  // one per site except site 0, whose permutation IS the identity) = k.
  std::vector<int> data;
  for (int i = 0; i < 50; ++i) data.push_back(i);
  metric::Metric<int> d{metric::DiscreteMetric<int>()};
  std::vector<int> sites = {5, 12, 30, 41};
  auto result = CountDistinctPermutations(data, sites, d);
  // Permutations: identity (all non-sites AND site 5, since moving site
  // index 0 to the front is the identity), plus one per other site.
  EXPECT_EQ(result.distinct_permutations, sites.size());
}

std::vector<std::string> BinaryCube(size_t d) {
  std::vector<std::string> points;
  for (size_t mask = 0; mask < (size_t{1} << d); ++mask) {
    std::string s(d, '0');
    for (size_t b = 0; b < d; ++b) {
      if (mask & (size_t{1} << b)) s[b] = '1';
    }
    points.push_back(s);
  }
  return points;
}

class HammingCubeTest : public ::testing::TestWithParam<int> {};

TEST_P(HammingCubeTest, CountsRespectL1Bound) {
  // The Hamming cube {0,1}^d embeds isometrically in L1, so Theorem 9's
  // L1 cell bound applies to any site set.
  const int d = GetParam();
  auto cube = BinaryCube(static_cast<size_t>(d));
  metric::Metric<std::string> hamming((metric::HammingMetric()));
  util::Rng rng(70 + d);
  for (size_t k : {2u, 3u, 5u}) {
    if (cube.size() < k) continue;
    auto sites = SelectRandomSites(cube, k, &rng);
    auto result = CountDistinctPermutations(cube, sites, hamming);
    EXPECT_LE(util::BigUint(result.distinct_permutations),
              LpPermutationUpperBound(d, 1.0, static_cast<int>(k)))
        << "d=" << d << " k=" << k;
    EXPECT_LE(result.distinct_permutations, cube.size());
    EXPECT_GE(result.distinct_permutations, 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HammingCubeTest,
                         ::testing::Values(2, 3, 4, 6, 8, 10));

TEST(HammingCube, TwoAntipodalSitesSplitTheCubeEvenly) {
  // Sites 000..0 and 111..1: a point is nearer the site matching the
  // majority of its bits; ties (equal weight) go to site 0.
  auto cube = BinaryCube(5);
  metric::Metric<std::string> hamming((metric::HammingMetric()));
  std::vector<std::string> sites = {std::string(5, '0'),
                                    std::string(5, '1')};
  auto histogram = PermutationHistogram(cube, sites, hamming);
  ASSERT_EQ(histogram.size(), 2u);
  // Weight <= 2 (10+5+1 = 16 strings) get perm (0,1); weight >= 3 get
  // (1,0).  d = 5 is odd so there are no exact ties.
  EXPECT_EQ(histogram[0], 16u);  // identity rank 0
  EXPECT_EQ(histogram[1], 16u);  // swapped rank 1
}

TEST(HammingCube, TieBreakMatchesPaperRule) {
  // d = 4 (even): weight-2 strings are equidistant from 0000 and 1111;
  // the paper's rule says the lower-indexed site wins.
  auto cube = BinaryCube(4);
  metric::Metric<std::string> hamming((metric::HammingMetric()));
  std::vector<std::string> sites = {"0000", "1111"};
  auto histogram = PermutationHistogram(cube, sites, hamming);
  // identity: weight 0,1,2 -> 1 + 4 + 6 = 11; swapped: weight 3,4 -> 5.
  EXPECT_EQ(histogram[0], 11u);
  EXPECT_EQ(histogram[1], 5u);
}

}  // namespace
}  // namespace core
}  // namespace distperm
