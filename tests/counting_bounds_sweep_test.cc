// Property sweep: for random databases across dimensions, metrics, and
// site counts, every observed distinct-permutation count must satisfy
// every applicable bound from the paper simultaneously:
//
//   count <= n                          (trivially)
//   count <= k!                         (it's a set of permutations)
//   count <= N_{d,2}(k)     for L2      (Theorem 7)
//   count <= S_d(C(k,2) h)  for L1/Linf (Theorem 9)
//   count <= C(k,2)+1       for d = 1, any p (all Lp agree on a line)

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "core/bounds.h"
#include "core/euclidean_count.h"
#include "core/perm_counter.h"
#include "core/tree_count.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "util/big_uint.h"
#include "util/rng.h"

namespace distperm {
namespace core {
namespace {

using metric::Vector;

constexpr double kInf = std::numeric_limits<double>::infinity();

class CountingBoundsSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(CountingBoundsSweep, AllApplicableBoundsHold) {
  auto [d, p, k] = GetParam();
  util::Rng rng(90000 + d * 131 + k * 7 +
                static_cast<uint64_t>(p * 1000));
  const size_t n = 4000;
  auto data = dataset::UniformCube(n, static_cast<size_t>(d), &rng);
  metric::Metric<Vector> metric{metric::LpMetric(p)};
  auto sites = SelectRandomSites(data, static_cast<size_t>(k), &rng);
  auto result = CountDistinctPermutations(data, sites, metric);
  const util::BigUint count(result.distinct_permutations);

  EXPECT_LE(result.distinct_permutations, n);
  EXPECT_LE(count,
            util::BigUint::Factorial(static_cast<uint64_t>(k)));
  if (p == 2.0) {
    EXPECT_LE(count, EuclideanPermutationCount(d, k))
        << "d=" << d << " k=" << k;
  }
  if (p == 1.0 || p == 2.0 || std::isinf(p)) {
    EXPECT_LE(count, LpPermutationUpperBound(d, p, k))
        << "d=" << d << " p=" << p << " k=" << k;
  }
  if (d == 1) {
    // On the line all Lp metrics coincide; the tree bound applies.
    EXPECT_LE(result.distinct_permutations,
              TreePermutationBound(static_cast<size_t>(k)));
  }
  EXPECT_GE(result.distinct_permutations, 2u);  // k >= 2, generic data
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CountingBoundsSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(1.0, 1.5, 2.0, kInf),
                       ::testing::Values(2, 4, 7, 10)));

// Subset monotonicity: adding a site never decreases the count (the new
// permutations refine the old ones).
TEST(CountingMonotonicity, AddingSitesNeverDecreasesCount) {
  util::Rng rng(91000);
  auto data = dataset::UniformCube(5000, 3, &rng);
  metric::Metric<Vector> l2(metric::LpMetric::L2());
  auto sites = SelectRandomSites(data, 12, &rng);
  std::vector<size_t> ks = {2, 3, 4, 6, 8, 10, 12};
  auto results = CountForSitePrefixes(data, sites, l2, ks);
  for (size_t t = 1; t < results.size(); ++t) {
    EXPECT_GE(results[t].distinct_permutations,
              results[t - 1].distinct_permutations)
        << "k=" << ks[t];
  }
}

// Data-subset monotonicity: a superset of the database sees a superset
// of permutations.
TEST(CountingMonotonicity, SupersetSeesSupersetOfPermutations) {
  util::Rng rng(92000);
  auto data = dataset::UniformCube(3000, 2, &rng);
  metric::Metric<Vector> l1(metric::LpMetric::L1());
  auto sites = SelectRandomSites(data, 6, &rng);
  for (size_t half : {500u, 1500u, 2500u}) {
    std::vector<Vector> subset(data.begin(), data.begin() + half);
    auto small = CountDistinctPermutations(subset, sites, l1);
    auto large = CountDistinctPermutations(data, sites, l1);
    EXPECT_LE(small.distinct_permutations, large.distinct_permutations);
  }
}

}  // namespace
}  // namespace core
}  // namespace distperm
