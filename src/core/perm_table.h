// Table-compressed permutation storage — the paper's storage scheme
// realised as a data structure.
//
// Section 4: "When the number of points in the database is large in
// comparison to the number of permutations, the bound can be achieved
// simply by storing the full permutations in a separate table and
// storing the index numbers into that table alongside the points."
// PermutationTable does exactly that: a sorted side table of the N
// distinct permutations that occur, plus one ceil(lg N)-bit index per
// point, both bit-packed.

#ifndef DISTPERM_CORE_PERM_TABLE_H_
#define DISTPERM_CORE_PERM_TABLE_H_

#include <cstdint>
#include <vector>

#include "core/distance_permutation.h"
#include "util/bitpack.h"

namespace distperm {
namespace core {

/// Immutable compressed store of one distance permutation per database
/// point.  Requires k <= 20 (64-bit Lehmer ranks).
class PermutationTable {
 public:
  /// Builds from the per-point permutations (all the same size k).
  static PermutationTable Build(const std::vector<Permutation>& perms);

  /// The permutation of point i, decoded.
  Permutation Get(size_t index) const;

  /// Number of points stored.
  size_t size() const { return point_count_; }

  /// Number of distinct permutations (the paper's counted quantity N).
  size_t distinct() const { return table_.size(); }

  /// Number of sites k.
  size_t sites() const { return sites_; }

  /// Bits per point in the index stream: ceil(lg N).
  int index_bits_per_point() const { return index_width_; }

  /// Total bits: packed index stream plus the packed side table.
  uint64_t TotalBits() const;

  /// Bits a raw (uncompressed-table-free) encoding would use:
  /// points * ceil(lg k!).
  uint64_t RawBits() const;

 private:
  std::vector<uint64_t> table_;        // sorted distinct Lehmer ranks
  std::vector<uint8_t> index_stream_;  // bit-packed indexes into table_
  size_t point_count_ = 0;
  size_t sites_ = 0;
  int index_width_ = 0;
  int rank_width_ = 0;  // bits per table entry when packed
};

/// Shannon entropy (bits) of the permutation distribution over a
/// database: how much information one stored permutation actually
/// carries.  The paper's closing observation — once few permutations are
/// possible, a permutation index cannot discriminate much — is this
/// quantity; it is at most lg(distinct) and far below lg k! in practice.
double PermutationEntropyBits(const std::vector<Permutation>& perms);

}  // namespace core
}  // namespace distperm

#endif  // DISTPERM_CORE_PERM_TABLE_H_
