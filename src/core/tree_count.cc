#include "core/tree_count.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/perm_codec.h"
#include "util/status.h"

namespace distperm {
namespace core {
namespace {

// Vertices along the path from u to v inclusive, in order.
std::vector<size_t> PathVertices(const metric::WeightedTree& tree, size_t u,
                                 size_t v) {
  size_t meet = tree.Lca(u, v);
  std::vector<size_t> head;
  for (size_t x = u; x != meet; x = tree.Parent(x)) head.push_back(x);
  head.push_back(meet);
  std::vector<size_t> tail;
  for (size_t x = v; x != meet; x = tree.Parent(x)) tail.push_back(x);
  head.insert(head.end(), tail.rbegin(), tail.rend());
  return head;
}

std::vector<std::vector<double>> SiteDistances(
    const metric::WeightedTree& tree, const std::vector<size_t>& sites) {
  std::vector<std::vector<double>> dist;
  dist.reserve(sites.size());
  for (size_t s : sites) dist.push_back(tree.DistancesFrom(s));
  return dist;
}

}  // namespace

uint64_t TreePermutationBound(size_t sites) {
  return sites * (sites - 1) / 2 + 1;
}

size_t CountTreePermutationsBruteForce(const metric::WeightedTree& tree,
                                       const std::vector<size_t>& sites) {
  const auto dist = SiteDistances(tree, sites);
  std::unordered_set<uint64_t> seen;
  std::vector<double> point_distances(sites.size());
  for (size_t v = 0; v < tree.size(); ++v) {
    for (size_t i = 0; i < sites.size(); ++i) {
      point_distances[i] = dist[i][v];
    }
    seen.insert(PermutationKey(PermutationFromDistances(point_distances)));
  }
  return seen.size();
}

size_t CountTreePermutationsBySplitEdges(const metric::WeightedTree& tree,
                                         const std::vector<size_t>& sites) {
  const auto dist = SiteDistances(tree, sites);
  // "Site i is closer than site j" at vertex z, with the paper's
  // tie-break: ties go to the lower site index (callers pass i < j).
  auto closer = [&](size_t i, size_t j, size_t z) {
    if (dist[i][z] != dist[j][z]) return dist[i][z] < dist[j][z];
    return i < j;
  };
  std::unordered_set<uint64_t> split_edges;
  for (size_t i = 0; i < sites.size(); ++i) {
    for (size_t j = i + 1; j < sites.size(); ++j) {
      if (sites[i] == sites[j]) continue;  // identical sites never split
      std::vector<size_t> path = PathVertices(tree, sites[i], sites[j]);
      size_t flips = 0;
      for (size_t t = 0; t + 1 < path.size(); ++t) {
        bool before = closer(i, j, path[t]);
        bool after = closer(i, j, path[t + 1]);
        if (before != after) {
          ++flips;
          size_t a = std::min(path[t], path[t + 1]);
          size_t b = std::max(path[t], path[t + 1]);
          split_edges.insert((static_cast<uint64_t>(a) << 32) | b);
        }
      }
      DP_CHECK_MSG(flips == 1,
                   "Theorem 4 violated: comparison flipped " << flips
                       << " times along a site-site path");
    }
  }
  return split_edges.size() + 1;
}

std::vector<Permutation> EnumerateTreePermutations(
    const metric::WeightedTree& tree, const std::vector<size_t>& sites) {
  DP_CHECK(sites.size() <= kMaxRank64Sites);
  const auto dist = SiteDistances(tree, sites);
  std::unordered_set<uint64_t> seen;
  std::vector<double> point_distances(sites.size());
  for (size_t v = 0; v < tree.size(); ++v) {
    for (size_t i = 0; i < sites.size(); ++i) {
      point_distances[i] = dist[i][v];
    }
    seen.insert(RankPermutation(PermutationFromDistances(point_distances)));
  }
  std::vector<uint64_t> ranks(seen.begin(), seen.end());
  std::sort(ranks.begin(), ranks.end());
  std::vector<Permutation> perms;
  perms.reserve(ranks.size());
  for (uint64_t r : ranks) perms.push_back(UnrankPermutation(r, sites.size()));
  return perms;
}

PathConstruction Corollary5Construction(size_t sites) {
  DP_CHECK_MSG(sites >= 1 && sites <= 24,
               "Corollary 5 path has 2^(k-1) edges; k limited to 24");
  size_t length = size_t{1} << (sites - 1);  // edges on the path
  PathConstruction out{metric::WeightedTree::MakePath(length + 1), {}};
  out.sites.push_back(0);
  for (size_t i = 1; i < sites; ++i) {
    out.sites.push_back(size_t{1} << i);
  }
  return out;
}

}  // namespace core
}  // namespace distperm
