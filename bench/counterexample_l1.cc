// Reproduces the Section 5 counterexample: the paper's five explicit
// sites (equation 12) in 3-dimensional L1 space generate more distance
// permutations than the Euclidean maximum N_{3,2}(5) = 96 — the paper
// observed 108 within a database of 10^6 uniform points — refuting the
// hypothesis that the Euclidean count bounds all Lp spaces.
//
// Also repeats the paper's search for counterexamples in the other
// reported configurations (L1 d=3 k=6, L1 d=4 k=6, Linf d=3 k=5).
//
// Usage: counterexample_l1 [--samples=1000000] [--grid=160]
//                          [--search-trials=40] [--seed=12]

#include <iostream>
#include <limits>
#include <vector>

#include "core/euclidean_count.h"
#include "geometry/cell_enum.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::core::EuclideanCounter;
using distperm::geometry::CellEnumeration;
using distperm::geometry::EnumerateCellsByGrid;
using distperm::geometry::EnumerateCellsBySampling;
using distperm::metric::Vector;
using distperm::util::Rng;
using distperm::util::TablePrinter;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const uint64_t samples =
      static_cast<uint64_t>(flags.value().GetInt("samples", 1000000));
  const size_t grid =
      static_cast<size_t>(flags.value().GetInt("grid", 160));
  const int search_trials =
      static_cast<int>(flags.value().GetInt("search-trials", 40));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 12));

  EuclideanCounter counter;

  // The paper's exceptional sites, equation (12).
  std::vector<Vector> paper_sites = {
      {0.205281, 0.621547, 0.332507},
      {0.053421, 0.344351, 0.260859},
      {0.418166, 0.207143, 0.119789},
      {0.735218, 0.653301, 0.650154},
      {0.527133, 0.814207, 0.704307},
  };

  std::cout << "Section 5 counterexample: N_{d,p}(k) can exceed "
               "N_{d,2}(k)\n\n";
  std::cout << "Euclidean limit N_{3,2}(5) = " << counter.Count64(3, 5)
            << "; paper observed 108 with its L1 sites.\n\n";

  Rng rng(seed);
  CellEnumeration sampled = EnumerateCellsBySampling(
      paper_sites, 1.0, 0.0, 1.0, samples, &rng);
  CellEnumeration gridded =
      EnumerateCellsByGrid(paper_sites, 1.0, 0.0, 1.0, grid);

  TablePrinter table;
  table.SetHeader({"method", "probes", "distinct perms",
                   "exceeds 96?"});
  table.AddRow({"uniform sampling (paper protocol)",
                std::to_string(sampled.probes),
                std::to_string(sampled.count()),
                sampled.count() > 96 ? "YES" : "no"});
  table.AddRow({"regular grid", std::to_string(gridded.probes),
                std::to_string(gridded.count()),
                gridded.count() > 96 ? "YES" : "no"});
  table.Print(std::cout);

  std::cout << "\nSearch for counterexamples in the paper's other "
               "configurations (random site draws, counts via sampling):\n\n";
  constexpr double kInf = std::numeric_limits<double>::infinity();
  struct Config {
    const char* label;
    double p;
    int d;
    int k;
  };
  const Config configs[] = {
      {"L1   d=3 k=5", 1.0, 3, 5},
      {"L1   d=3 k=6", 1.0, 3, 6},
      {"L1   d=4 k=6", 1.0, 4, 6},
      {"Linf d=3 k=5", kInf, 3, 5},
  };
  TablePrinter search;
  search.SetHeader({"config", "Euclidean limit", "best found",
                    "exceeded?"});
  const uint64_t search_samples = std::min<uint64_t>(samples, 200000);
  for (const auto& config : configs) {
    uint64_t limit = counter.Count64(config.d, config.k);
    size_t best = 0;
    for (int trial = 0; trial < search_trials; ++trial) {
      std::vector<Vector> sites(config.k, Vector(config.d));
      for (auto& site : sites) {
        for (auto& coord : site) coord = rng.NextDouble();
      }
      CellEnumeration cells = EnumerateCellsBySampling(
          sites, config.p, 0.0, 1.0, search_samples, &rng);
      best = std::max(best, cells.count());
    }
    search.AddRow({config.label, std::to_string(limit),
                   std::to_string(best), best > limit ? "YES" : "no"});
    std::cerr << "searched " << config.label << "\n";
  }
  search.Print(std::cout);
  std::cout << "\nThe explicit paper sites always exceed the Euclidean "
               "limit; random draws exceed it only occasionally, matching "
               "the paper's account of a computer search.\n";
  return 0;
}
