#include "core/perm_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "util/rng.h"

namespace distperm {
namespace core {
namespace {

uint64_t Factorial(size_t n) {
  uint64_t f = 1;
  for (size_t i = 2; i <= n; ++i) f *= i;
  return f;
}

TEST(PermCodec, IdentityHasRankZero) {
  for (size_t k = 0; k <= 10; ++k) {
    Permutation identity(k);
    std::iota(identity.begin(), identity.end(), 0);
    EXPECT_EQ(RankPermutation(identity), 0u) << k;
  }
}

TEST(PermCodec, ReverseHasMaxRank) {
  for (size_t k = 1; k <= 10; ++k) {
    Permutation reversed(k);
    for (size_t i = 0; i < k; ++i) {
      reversed[i] = static_cast<uint8_t>(k - 1 - i);
    }
    EXPECT_EQ(RankPermutation(reversed), Factorial(k) - 1) << k;
  }
}

TEST(PermCodec, KnownSmallRanks) {
  // Lexicographic order of the 6 permutations of {0,1,2}.
  EXPECT_EQ(RankPermutation({0, 1, 2}), 0u);
  EXPECT_EQ(RankPermutation({0, 2, 1}), 1u);
  EXPECT_EQ(RankPermutation({1, 0, 2}), 2u);
  EXPECT_EQ(RankPermutation({1, 2, 0}), 3u);
  EXPECT_EQ(RankPermutation({2, 0, 1}), 4u);
  EXPECT_EQ(RankPermutation({2, 1, 0}), 5u);
}

class CodecSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CodecSweepTest, RankUnrankBijective) {
  const size_t k = GetParam();
  const uint64_t total = Factorial(k);
  std::set<uint64_t> ranks;
  Permutation perm(k);
  std::iota(perm.begin(), perm.end(), 0);
  do {
    uint64_t rank = RankPermutation(perm);
    EXPECT_LT(rank, total);
    EXPECT_TRUE(ranks.insert(rank).second) << "duplicate rank " << rank;
    EXPECT_EQ(UnrankPermutation(rank, k), perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(ranks.size(), total);
}

TEST_P(CodecSweepTest, UnrankEnumeratesLexicographically) {
  const size_t k = GetParam();
  Permutation previous = UnrankPermutation(0, k);
  for (uint64_t rank = 1; rank < Factorial(k); ++rank) {
    Permutation current = UnrankPermutation(rank, k);
    EXPECT_TRUE(std::lexicographical_compare(
        previous.begin(), previous.end(), current.begin(), current.end()));
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallK, CodecSweepTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(PermCodec, LargeKRoundTripsViaRandomPerms) {
  util::Rng rng(99);
  for (size_t k : {10u, 15u, 20u}) {
    for (int trial = 0; trial < 50; ++trial) {
      Permutation perm(k);
      std::iota(perm.begin(), perm.end(), 0);
      rng.Shuffle(&perm);
      uint64_t rank = RankPermutation(perm);
      EXPECT_EQ(UnrankPermutation(rank, k), perm);
    }
  }
}

TEST(PermCodec, BigVersionMatches64BitVersion) {
  util::Rng rng(100);
  for (size_t k : {3u, 8u, 15u, 20u}) {
    for (int trial = 0; trial < 20; ++trial) {
      Permutation perm(k);
      std::iota(perm.begin(), perm.end(), 0);
      rng.Shuffle(&perm);
      util::BigUint big = RankPermutationBig(perm);
      ASSERT_TRUE(big.FitsUint64());
      EXPECT_EQ(big.ToUint64(), RankPermutation(perm));
      EXPECT_EQ(UnrankPermutationBig(big, k), perm);
    }
  }
}

TEST(PermCodec, BigVersionHandlesKBeyond20) {
  util::Rng rng(101);
  for (size_t k : {21u, 30u, 60u}) {
    for (int trial = 0; trial < 10; ++trial) {
      Permutation perm(k);
      std::iota(perm.begin(), perm.end(), 0);
      rng.Shuffle(&perm);
      util::BigUint rank = RankPermutationBig(perm);
      EXPECT_LT(rank, util::BigUint::Factorial(k));
      EXPECT_EQ(UnrankPermutationBig(rank, k), perm);
    }
  }
}

TEST(PermCodec, PermutationKeyDistinguishesSmallPerms) {
  // For k <= 20 the key is the exact Lehmer rank, so distinct perms get
  // distinct keys.
  std::set<uint64_t> keys;
  Permutation perm = {0, 1, 2, 3, 4};
  do {
    EXPECT_TRUE(keys.insert(PermutationKey(perm)).second);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(keys.size(), 120u);
}

}  // namespace
}  // namespace core
}  // namespace distperm
