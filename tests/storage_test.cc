// Tests for the storage layer: the little-endian coding helpers, the
// CRC32C implementation (known-answer + incremental composition), the
// CRC-framed WAL (roundtrip, torn tails at every byte offset, fsync
// policies, fault injection) and the snapshot container (roundtrip,
// alignment, whole-file rejection of corruption).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "storage/coding.h"
#include "storage/crc32.h"
#include "storage/env.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/status.h"

namespace distperm {
namespace storage {
namespace {

/// A per-test directory, emptied of leftovers from previous runs
/// (TempDir persists across ctest invocations).
std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/storage_test_" + name;
  EXPECT_TRUE(Env::Default()->CreateDir(dir).ok());
  auto listing = Env::Default()->ListDir(dir);
  if (listing.ok()) {
    for (const std::string& file : listing.value()) {
      Env::Default()->DeleteFile(dir + "/" + file);
    }
  }
  return dir;
}

// ----------------------------------------------------------------- coding

TEST(Coding, FixedWidthRoundTrip) {
  std::string buffer;
  PutFixed32(&buffer, 0xDEADBEEFu);
  PutFixed64(&buffer, 0x0123456789ABCDEFull);
  PutDouble(&buffer, -1234.5678);
  ASSERT_EQ(buffer.size(), 4u + 8u + 8u);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buffer.data());
  EXPECT_EQ(GetFixed32(p), 0xDEADBEEFu);
  EXPECT_EQ(GetFixed64(p + 4), 0x0123456789ABCDEFull);
  EXPECT_EQ(GetDouble(p + 12), -1234.5678);
}

TEST(Coding, LittleEndianLayout) {
  std::string buffer;
  PutFixed32(&buffer, 0x04030201u);
  EXPECT_EQ(buffer, std::string("\x01\x02\x03\x04", 4));
}

// ------------------------------------------------------------------ crc32

TEST(Crc32, KnownAnswer) {
  // The standard CRC32C check value: crc of the ASCII digits 1..9.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32, IncrementalCompositionMatchesOneShot) {
  const std::string data =
      "the quick brown fox jumps over the lazy dog 0123456789";
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t first = Crc32c(data.data(), split);
    const uint32_t whole =
        Crc32c(data.data() + split, data.size() - split, first);
    EXPECT_EQ(whole, Crc32c(data.data(), data.size())) << "split " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string data(64, '\x5a');
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t bit = 0; bit < data.size() * 8; bit += 37) {
    std::string flipped = data;
    flipped[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_NE(Crc32c(flipped.data(), flipped.size()), clean) << bit;
  }
}

// -------------------------------------------------------------------- wal

std::vector<std::string> SamplePayloads() {
  return {"first", "", std::string(300, 'x'), "last-one"};
}

TEST(Wal, RoundTrip) {
  const std::string path = TestDir("wal_roundtrip") + "/wal.log";
  WalWriter::Options options;
  options.policy = FsyncPolicy::kAlways;
  auto writer = WalWriter::Open(Env::Default(), path, /*truncate=*/true,
                                /*first_seq=*/1, options);
  ASSERT_TRUE(writer.ok());
  for (const std::string& payload : SamplePayloads()) {
    ASSERT_TRUE(writer.value()->Append(payload).ok());
  }
  EXPECT_EQ(writer.value()->next_seq(), 1u + SamplePayloads().size());
  ASSERT_TRUE(writer.value()->Close().ok());

  auto contents = ReadWal(Env::Default(), path, /*first_seq=*/1);
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents.value().torn_tail);
  ASSERT_EQ(contents.value().records.size(), SamplePayloads().size());
  for (size_t i = 0; i < SamplePayloads().size(); ++i) {
    EXPECT_EQ(contents.value().records[i].seq, i + 1);
    EXPECT_EQ(contents.value().records[i].payload, SamplePayloads()[i]);
  }
  auto size = Env::Default()->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(contents.value().valid_bytes, size.value());
}

TEST(Wal, TornTailAtEveryByteOffset) {
  // Write a clean 3-record log, then replay every possible prefix of
  // it as "what a crash left behind": the complete frames must come
  // back, the torn remainder must be flagged, and valid_bytes must
  // point at the last frame boundary.
  const std::string dir = TestDir("wal_torn");
  const std::string full_path = dir + "/full.log";
  WalWriter::Options options;
  options.policy = FsyncPolicy::kAlways;
  {
    auto writer = WalWriter::Open(Env::Default(), full_path, true, 1, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append("alpha").ok());
    ASSERT_TRUE(writer.value()->Append("beta-beta").ok());
    ASSERT_TRUE(writer.value()->Append("g").ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  auto full = Env::Default()->ReadFile(full_path);
  ASSERT_TRUE(full.ok());
  const std::string& bytes = full.value();
  // Frame = 16-byte header + payload.
  const std::vector<uint64_t> boundaries = {0, 16 + 5, (16 + 5) + (16 + 9),
                                            (16 + 5) + (16 + 9) + (16 + 1)};
  ASSERT_EQ(bytes.size(), boundaries.back());

  for (size_t len = 0; len <= bytes.size(); ++len) {
    const std::string prefix_path = dir + "/prefix.log";
    {
      auto file =
          Env::Default()->NewWritableFile(prefix_path, /*truncate=*/true);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE(file.value()->Append(bytes.data(), len).ok());
      ASSERT_TRUE(file.value()->Close().ok());
    }
    auto contents = ReadWal(Env::Default(), prefix_path, 1);
    ASSERT_TRUE(contents.ok()) << "prefix " << len;
    size_t complete = 0;
    while (complete + 1 < boundaries.size() &&
           boundaries[complete + 1] <= len) {
      ++complete;
    }
    EXPECT_EQ(contents.value().records.size(), complete) << "prefix " << len;
    EXPECT_EQ(contents.value().valid_bytes, boundaries[complete])
        << "prefix " << len;
    EXPECT_EQ(contents.value().torn_tail, len != boundaries[complete])
        << "prefix " << len;
  }
}

TEST(Wal, TruncateThenContinueAppending) {
  // The recovery sequence: drop the torn tail, reopen in append mode
  // with the continuation seq, and verify old + new records chain.
  const std::string dir = TestDir("wal_continue");
  const std::string path = dir + "/wal.log";
  WalWriter::Options options;
  options.policy = FsyncPolicy::kAlways;
  {
    auto writer = WalWriter::Open(Env::Default(), path, true, 1, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append("one").ok());
    ASSERT_TRUE(writer.value()->Append("two").ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  // Tear the second frame.
  auto size = Env::Default()->FileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(Env::Default()->TruncateFile(path, size.value() - 1).ok());
  auto contents = ReadWal(Env::Default(), path, 1);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents.value().records.size(), 1u);
  ASSERT_TRUE(contents.value().torn_tail);
  ASSERT_TRUE(
      Env::Default()->TruncateFile(path, contents.value().valid_bytes).ok());
  {
    auto writer = WalWriter::Open(Env::Default(), path, /*truncate=*/false,
                                  /*first_seq=*/2, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append("two-again").ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  auto replayed = ReadWal(Env::Default(), path, 1);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().records.size(), 2u);
  EXPECT_FALSE(replayed.value().torn_tail);
  EXPECT_EQ(replayed.value().records[0].payload, "one");
  EXPECT_EQ(replayed.value().records[1].payload, "two-again");
  EXPECT_EQ(replayed.value().records[1].seq, 2u);
}

TEST(Wal, SequenceBreakStopsReplay) {
  // A stale frame from a recycled file fails the seq chain even though
  // its CRC is fine.
  const std::string dir = TestDir("wal_seqbreak");
  const std::string path = dir + "/wal.log";
  WalWriter::Options options;
  options.policy = FsyncPolicy::kAlways;
  {
    auto writer = WalWriter::Open(Env::Default(), path, true, 1, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append("good").ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  {
    // Append a frame whose seq is 7, not the expected 2.
    auto writer = WalWriter::Open(Env::Default(), path, /*truncate=*/false,
                                  /*first_seq=*/7, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append("stale").ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  auto contents = ReadWal(Env::Default(), path, 1);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents.value().records.size(), 1u);
  EXPECT_EQ(contents.value().records[0].payload, "good");
  EXPECT_TRUE(contents.value().torn_tail);
}

TEST(Wal, BatchedPolicySyncsAtThreshold) {
  const std::string dir = TestDir("wal_batched");
  FaultInjectionEnv env(Env::Default());
  WalWriter::Options options;
  options.policy = FsyncPolicy::kBatched;
  options.batch_bytes = 64;
  auto writer = WalWriter::Open(&env, dir + "/wal.log", true, 1, options);
  ASSERT_TRUE(writer.ok());
  // 16-byte header + 16-byte payload = 32 bytes per record: the second
  // append crosses the 64-byte threshold.
  const std::string payload(16, 'p');
  ASSERT_TRUE(writer.value()->Append(payload).ok());
  EXPECT_EQ(env.sync_count(), 0u);
  ASSERT_TRUE(writer.value()->Append(payload).ok());
  EXPECT_EQ(env.sync_count(), 1u);
  ASSERT_TRUE(writer.value()->Append(payload).ok());
  EXPECT_EQ(env.sync_count(), 1u);
  ASSERT_TRUE(writer.value()->Sync().ok());
  EXPECT_EQ(env.sync_count(), 2u);
  ASSERT_TRUE(writer.value()->Close().ok());
  // Everything is durable: full replay.
  auto contents = ReadWal(&env, dir + "/wal.log", 1);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value().records.size(), 3u);
}

TEST(Wal, AlwaysPolicySyncsEveryAppend) {
  const std::string dir = TestDir("wal_always");
  FaultInjectionEnv env(Env::Default());
  WalWriter::Options options;
  options.policy = FsyncPolicy::kAlways;
  auto writer = WalWriter::Open(&env, dir + "/wal.log", true, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append("a").ok());
  ASSERT_TRUE(writer.value()->Append("b").ok());
  EXPECT_EQ(env.sync_count(), 2u);
  ASSERT_TRUE(writer.value()->Close().ok());
}

TEST(Wal, NeverPolicyDoesNotSync) {
  const std::string dir = TestDir("wal_never");
  FaultInjectionEnv env(Env::Default());
  WalWriter::Options options;
  options.policy = FsyncPolicy::kNever;
  options.batch_bytes = 16;
  auto writer = WalWriter::Open(&env, dir + "/wal.log", true, 1, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(writer.value()->Append("some payload").ok());
  }
  ASSERT_TRUE(writer.value()->Close().ok());
  EXPECT_EQ(env.sync_count(), 0u);
  auto contents = ReadWal(&env, dir + "/wal.log", 1);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value().records.size(), 8u);
}

TEST(Wal, ParseFsyncPolicyNames) {
  ASSERT_TRUE(ParseFsyncPolicy("always").ok());
  EXPECT_EQ(ParseFsyncPolicy("always").value(), FsyncPolicy::kAlways);
  EXPECT_EQ(ParseFsyncPolicy("batched").value(), FsyncPolicy::kBatched);
  EXPECT_EQ(ParseFsyncPolicy("never").value(), FsyncPolicy::kNever);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kBatched), "batched");
}

TEST(Wal, FailedSyncPoisonsTheWriter) {
  const std::string dir = TestDir("wal_failsync");
  FaultInjectionEnv env(Env::Default());
  WalWriter::Options options;
  options.policy = FsyncPolicy::kAlways;
  auto writer = WalWriter::Open(&env, dir + "/wal.log", true, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append("ok").ok());
  env.FailNextSync();
  EXPECT_FALSE(writer.value()->Append("doomed").ok());
  // The writer is poisoned: even with the fault cleared, appends fail
  // (the file may hold a torn frame only recovery may repair).
  EXPECT_FALSE(writer.value()->Append("after").ok());
}

TEST(Wal, InjectedCrashLeavesTornWrite) {
  const std::string dir = TestDir("wal_crash");
  FaultInjectionEnv env(Env::Default());
  WalWriter::Options options;
  options.policy = FsyncPolicy::kAlways;
  const std::string path = dir + "/wal.log";
  auto writer = WalWriter::Open(&env, path, true, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append("survives").ok());
  // Allow 7 more bytes: the next frame (16 + 7 bytes) tears mid-header.
  env.CrashAfterBytes(7);
  EXPECT_FALSE(writer.value()->Append("torn-away").ok());
  EXPECT_TRUE(env.crashed());

  // "Reboot": read what actually hit the file system with a clean env.
  auto contents = ReadWal(Env::Default(), path, 1);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents.value().records.size(), 1u);
  EXPECT_EQ(contents.value().records[0].payload, "survives");
  EXPECT_TRUE(contents.value().torn_tail);
}

// --------------------------------------------------------------- snapshot

TEST(Snapshot, RoundTripMetaAndSections) {
  const std::string dir = TestDir("snap_roundtrip");
  const std::string path = dir + "/test.snap";
  const std::string block(1000, '\x42');
  SnapshotWriter writer;
  writer.SetMeta("format", "test.v1");
  writer.SetMeta("answer", "42");
  writer.AddSection("alpha", "alpha-bytes");
  writer.AddSectionRef("block", block.data(), block.size());
  writer.AddSection("empty", "");
  ASSERT_TRUE(writer.Write(Env::Default(), path).ok());
  EXPECT_FALSE(Env::Default()->FileExists(path + ".tmp"));

  auto reader = SnapshotReader::Open(Env::Default(), path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().GetMeta("format").value(), "test.v1");
  EXPECT_EQ(reader.value().GetMeta("answer").value(), "42");
  EXPECT_FALSE(reader.value().GetMeta("absent").ok());
  ASSERT_TRUE(reader.value().HasSection("alpha"));
  auto alpha = reader.value().GetSection("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(alpha.value().data),
                        alpha.value().size),
            "alpha-bytes");
  auto section = reader.value().GetSection("block");
  ASSERT_TRUE(section.ok());
  ASSERT_EQ(section.value().size, block.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(section.value().data),
                        section.value().size),
            block);
  EXPECT_FALSE(reader.value().GetSection("missing").ok());
}

TEST(Snapshot, SectionsAre64ByteAligned) {
  const std::string dir = TestDir("snap_aligned");
  const std::string path = dir + "/test.snap";
  SnapshotWriter writer;
  writer.AddSection("a", "x");
  writer.AddSection("b", std::string(65, 'y'));
  writer.AddSection("c", "z");
  ASSERT_TRUE(writer.Write(Env::Default(), path).ok());
  auto reader = SnapshotReader::Open(Env::Default(), path);
  ASSERT_TRUE(reader.ok());
  const uint8_t* base = reader.value().mapping()->data();
  for (const char* name : {"a", "b", "c"}) {
    auto section = reader.value().GetSection(name);
    ASSERT_TRUE(section.ok());
    EXPECT_EQ(static_cast<uint64_t>(section.value().data - base) % 64, 0u)
        << name;
  }
}

TEST(Snapshot, RejectsCorruptionAnywhere) {
  const std::string dir = TestDir("snap_corrupt");
  const std::string path = dir + "/test.snap";
  SnapshotWriter writer;
  writer.SetMeta("k", "v");
  writer.AddSection("payload", std::string(256, '\x7f'));
  ASSERT_TRUE(writer.Write(Env::Default(), path).ok());
  auto pristine = Env::Default()->ReadFile(path);
  ASSERT_TRUE(pristine.ok());
  const std::string& bytes = pristine.value();

  // Flipping a byte of the magic, the header, or a section must reject
  // the file (inter-section padding is the only uncovered region).
  const uint32_t header_len = GetFixed32(
      reinterpret_cast<const uint8_t*>(bytes.data()) + 8);
  const size_t section_offset = bytes.find(std::string(256, '\x7f'));
  ASSERT_NE(section_offset, std::string::npos);
  for (size_t offset : {size_t{0}, size_t{9}, size_t{header_len - 2},
                        section_offset, bytes.size() - 1}) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x01);
    const std::string corrupt_path = dir + "/corrupt.snap";
    auto file = Env::Default()->NewWritableFile(corrupt_path, true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append(corrupt).ok());
    ASSERT_TRUE(file.value()->Close().ok());
    EXPECT_FALSE(SnapshotReader::Open(Env::Default(), corrupt_path).ok())
        << "offset " << offset;
  }

  // Truncation anywhere must reject too.
  for (size_t len : {size_t{0}, size_t{4}, size_t{header_len - 1},
                     bytes.size() - 1}) {
    const std::string trunc_path = dir + "/trunc.snap";
    auto file = Env::Default()->NewWritableFile(trunc_path, true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append(bytes.data(), len).ok());
    ASSERT_TRUE(file.value()->Close().ok());
    EXPECT_FALSE(SnapshotReader::Open(Env::Default(), trunc_path).ok())
        << "len " << len;
  }
}

TEST(Snapshot, TwoPhaseWritePublishesAfterRename) {
  // The engine's rotation: bytes land under .tmp (recovery ignores
  // them), then a rename publishes.
  const std::string dir = TestDir("snap_twophase");
  const std::string path = dir + "/gen.snap";
  SnapshotWriter writer;
  writer.SetMeta("phase", "two");
  writer.AddSection("s", "payload");
  ASSERT_TRUE(writer.WriteFile(Env::Default(), path + ".tmp").ok());
  EXPECT_FALSE(Env::Default()->FileExists(path));
  ASSERT_TRUE(Env::Default()->RenameFile(path + ".tmp", path).ok());
  ASSERT_TRUE(Env::Default()->SyncDir(dir).ok());
  auto reader = SnapshotReader::Open(Env::Default(), path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().GetMeta("phase").value(), "two");
}

}  // namespace
}  // namespace storage
}  // namespace distperm
