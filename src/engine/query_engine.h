// Concurrent batch query engine.
//
// RunBatch fans a batch of kNN/range queries out as one task per
// (query, shard) pair onto a reusable worker pool, maps shard-local ids
// to global ids, and merges per-shard partials into globally correct
// answers: for an exact index, the merged results are identical to what
// a single index over the whole database would return.  Metric
// evaluations are accumulated per (query, shard) task in its own
// QueryStats slot and summed after the batch barrier, so concurrency
// never perturbs the paper's cost-model accounting.
//
// Allocation behavior: the pool's threads are fixed for the engine's
// lifetime, so the per-thread index::QueryScratch buffers (kernel score
// blocks, candidate rankings, bound orderings) warm up over the first
// few queries a worker serves; the database-sized transient buffers are
// then reused allocation-free.  Small fixed-size per-query allocations
// (site-distance vectors, result sets) remain.  The engine itself
// allocates only the per-batch slot arrays sized by |batch| x |shards|.

#ifndef DISTPERM_ENGINE_QUERY_ENGINE_H_
#define DISTPERM_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/batch_stats.h"
#include "engine/query.h"
#include "engine/sharded_database.h"
#include "index/index.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace distperm {
namespace engine {

/// Executes query batches against a ShardedDatabase on a fixed worker
/// pool.  The database is borrowed, not owned, so several engines (e.g.
/// with different thread counts) can serve the same shards.  RunBatch is
/// not reentrant: issue one batch at a time per engine.
template <typename P>
class QueryEngine {
 public:
  struct BatchOutput {
    /// Per query, the merged results with global ids in canonical
    /// (distance, id) order; kNN results are truncated to k globally.
    std::vector<std::vector<index::SearchResult>> results;
    /// Per query, metric evaluations summed over its shard tasks.
    std::vector<uint64_t> per_query_distance_computations;
    BatchStats stats;
  };

  QueryEngine(const ShardedDatabase<P>* db, size_t thread_count)
      : db_(db), pool_(thread_count) {
    DP_CHECK(db != nullptr);
  }

  size_t thread_count() const { return pool_.thread_count(); }
  const ShardedDatabase<P>& database() const { return *db_; }

  BatchOutput RunBatch(const std::vector<QuerySpec<P>>& batch) {
    const size_t query_count = batch.size();
    const size_t shard_count = db_->shard_count();
    BatchOutput out;
    out.results.resize(query_count);
    out.per_query_distance_computations.assign(query_count, 0);
    out.stats.query_count = query_count;
    out.stats.shard_count = shard_count;
    out.stats.thread_count = pool_.thread_count();
    if (query_count == 0) return out;

    // One slot per (query, shard) task: no two tasks share a slot, so
    // workers never contend on anything but the two batch atomics.
    std::vector<std::vector<index::SearchResult>> partials(query_count *
                                                           shard_count);
    std::vector<index::QueryStats> task_stats(query_count * shard_count);
    std::vector<std::atomic<size_t>> tasks_left(query_count);
    for (auto& counter : tasks_left) {
      counter.store(shard_count, std::memory_order_relaxed);
    }
    std::vector<double> latencies(query_count, 0.0);
    const auto start = std::chrono::steady_clock::now();

    for (size_t q = 0; q < query_count; ++q) {
      for (size_t s = 0; s < shard_count; ++s) {
        pool_.Submit([this, &batch, &partials, &task_stats, &tasks_left,
                      &latencies, start, shard_count, q, s]() {
          const QuerySpec<P>& spec = batch[q];
          index::QueryStats* stats = &task_stats[q * shard_count + s];
          const index::SearchIndex<P>& shard = db_->shard(s);
          std::vector<index::SearchResult> local =
              spec.type == QueryType::kKnn
                  ? shard.KnnQuery(spec.point, spec.k, stats)
                  : shard.RangeQuery(spec.point, spec.radius, stats);
          const size_t offset = db_->shard_offset(s);
          for (index::SearchResult& r : local) r.id += offset;
          partials[q * shard_count + s] = std::move(local);
          // The last shard task to finish stamps the query's latency.
          if (tasks_left[q].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            latencies[q] = Seconds(start, std::chrono::steady_clock::now());
          }
        });
      }
    }
    pool_.Wait();

    for (size_t q = 0; q < query_count; ++q) {
      std::vector<index::SearchResult> merged;
      size_t total = 0;
      for (size_t s = 0; s < shard_count; ++s) {
        total += partials[q * shard_count + s].size();
      }
      merged.reserve(total);
      uint64_t distances = 0;
      for (size_t s = 0; s < shard_count; ++s) {
        const auto& partial = partials[q * shard_count + s];
        merged.insert(merged.end(), partial.begin(), partial.end());
        distances += task_stats[q * shard_count + s].distance_computations;
      }
      index::SortResults(&merged);
      if (batch[q].type == QueryType::kKnn && merged.size() > batch[q].k) {
        merged.resize(batch[q].k);
      }
      out.results[q] = std::move(merged);
      out.per_query_distance_computations[q] = distances;
      out.stats.distance_computations += distances;
    }

    out.stats.wall_seconds = Seconds(start, std::chrono::steady_clock::now());
    out.stats.latency = SummarizeLatencies(std::move(latencies));
    return out;
  }

 private:
  static double Seconds(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
    return std::chrono::duration<double>(to - from).count();
  }

  const ShardedDatabase<P>* db_;
  util::ThreadPool pool_;
};

}  // namespace engine
}  // namespace distperm

#endif  // DISTPERM_ENGINE_QUERY_ENGINE_H_
