#include "geometry/cell_components.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.h"

namespace distperm {
namespace geometry {
namespace {

using metric::Vector;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(CellComponents, TwoSitesTwoConvexCells) {
  std::vector<Vector> sites = {{0.3, 0.5}, {0.7, 0.5}};
  auto analysis = AnalyzeCellComponents2D(sites, 2.0, 0.0, 1.0, 100);
  EXPECT_EQ(analysis.distinct_permutations, 2u);
  EXPECT_EQ(analysis.connected_components, 2u);
  EXPECT_FALSE(analysis.HasDisconnectedRegions());
  EXPECT_EQ(analysis.probes, 10000u);
}

TEST(CellComponents, EuclideanWedgesAreConnected) {
  // Three generic sites: six fat 60-degree-ish wedges around the
  // circumcentre.  In L2 every permutation region is convex; for fat
  // regions at adequate resolution components == permutations.  (Thin
  // slivers in larger configurations can be split by the grid itself,
  // so the exact-equality check uses a fat configuration.)
  std::vector<Vector> sites = {{0.35, 0.3}, {0.65, 0.3}, {0.5, 0.62}};
  auto analysis = AnalyzeCellComponents2D(sites, 2.0, -1.0, 2.0, 500);
  EXPECT_EQ(analysis.distinct_permutations, 6u);
  EXPECT_EQ(analysis.connected_components, 6u);
}

TEST(CellComponents, GridSplitShrinksWithResolution) {
  // Convex L2 regions: any component excess is a grid artifact, so it
  // must not grow as the resolution increases.
  util::Rng rng(21);
  std::vector<Vector> sites(4, Vector(2));
  for (auto& site : sites) {
    site[0] = rng.NextDouble(0.15, 0.85);
    site[1] = rng.NextDouble(0.15, 0.85);
  }
  auto coarse = AnalyzeCellComponents2D(sites, 2.0, -1.0, 2.0, 150);
  auto fine = AnalyzeCellComponents2D(sites, 2.0, -1.0, 2.0, 600);
  size_t coarse_excess =
      coarse.connected_components - coarse.distinct_permutations;
  size_t fine_excess =
      fine.connected_components - fine.distinct_permutations;
  EXPECT_LE(fine_excess, coarse_excess + 2);
  EXPECT_GE(fine.distinct_permutations, coarse.distinct_permutations);
}

TEST(CellComponents, ComponentsNeverFewerThanPermutations) {
  util::Rng rng(22);
  for (double p : {1.0, 2.0, kInf}) {
    std::vector<Vector> sites(5, Vector(2));
    for (auto& site : sites) {
      site[0] = rng.NextDouble();
      site[1] = rng.NextDouble();
    }
    auto analysis = AnalyzeCellComponents2D(sites, p, -0.5, 1.5, 250);
    EXPECT_GE(analysis.connected_components,
              analysis.distinct_permutations);
  }
}

TEST(CellComponents, L1TieRegionsCanDisconnect) {
  // A configuration with axis-aligned sites under L1: the bisector of
  // two sites at equal coordinate offsets contains 2-D pieces, and the
  // tie-broken regions flanking them are prone to disconnection.  We
  // assert only the structural possibility that L1 produces at least as
  // many components as L2 does for the same sites.
  std::vector<Vector> sites = {
      {0.25, 0.25}, {0.75, 0.75}, {0.25, 0.75}, {0.75, 0.25}};
  auto l2 = AnalyzeCellComponents2D(sites, 2.0, -0.5, 1.5, 400);
  auto l1 = AnalyzeCellComponents2D(sites, 1.0, -0.5, 1.5, 400);
  EXPECT_GE(l1.connected_components, l2.connected_components);
}

TEST(CellComponents, SingleSiteSingleComponent) {
  std::vector<Vector> sites = {{0.5, 0.5}};
  auto analysis = AnalyzeCellComponents2D(sites, 1.0, 0.0, 1.0, 50);
  EXPECT_EQ(analysis.distinct_permutations, 1u);
  EXPECT_EQ(analysis.connected_components, 1u);
}

}  // namespace
}  // namespace geometry
}  // namespace distperm
