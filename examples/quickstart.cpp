// Quickstart: build a permutation (distperm) index over random vectors,
// run a k-nearest-neighbour query, count the distinct distance
// permutations, and compare with the theoretical Euclidean maximum.
//
//   ./example_quickstart [--points=10000] [--dim=3] [--sites=8]

#include <iostream>

#include "core/euclidean_count.h"
#include "dataset/vector_gen.h"
#include "index/distperm_index.h"
#include "index/linear_scan.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/rng.h"

using distperm::metric::Vector;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 10000));
  const size_t dim = static_cast<size_t>(flags.value().GetInt("dim", 3));
  const size_t sites = static_cast<size_t>(flags.value().GetInt("sites", 8));

  // 1. Generate a database: uniform random vectors in the unit cube.
  distperm::util::Rng rng(2024);
  auto data = distperm::dataset::UniformCube(points, dim, &rng);
  distperm::metric::Metric<Vector> l2(distperm::metric::LpMetric::L2());

  // 2. Build the permutation index: k random sites, one distance
  //    permutation (ceil lg k! bits) stored per point.
  distperm::index::DistPermIndex<Vector> index(data, l2, sites, &rng,
                                               /*fraction=*/0.1);
  std::cout << "built distperm index over " << points << " points, "
            << sites << " sites\n";
  std::cout << "index size: " << index.IndexBits() / 8 << " bytes ("
            << index.IndexBits() / points << " bits/point)\n";

  // 3. Query: 5 nearest neighbours of a random point (approximate — the
  //    index verifies the 10% of the database with the most similar
  //    permutations).
  Vector query(dim);
  for (auto& coord : query) coord = rng.NextDouble();
  auto hits = index.KnnQuery(query, 5);
  std::cout << "\n5-NN of a random query (approximate):\n";
  for (const auto& hit : hits) {
    std::cout << "  point " << hit.id << " at distance " << hit.distance
              << "\n";
  }
  std::cout << "metric evaluations used: "
            << index.query_distance_computations() << " (linear scan would "
            << points << ")\n";

  // 4. The paper's question: how many distinct permutations occur?
  size_t distinct = index.DistinctPermutationCount();
  distperm::core::EuclideanCounter counter;
  std::cout << "\ndistinct distance permutations in the database: "
            << distinct << "\n";
  std::cout << "theoretical Euclidean maximum N_{" << dim << ",2}(" << sites
            << ") = "
            << counter.Count(static_cast<int>(dim),
                             static_cast<int>(sites))
            << "\n";
  std::cout << "unrestricted permutations k! = "
            << distperm::util::BigUint::Factorial(sites) << "\n";
  return 0;
}
