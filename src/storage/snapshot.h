// Versioned snapshot container: named, checksummed, 64-byte-aligned
// sections behind a self-describing header, designed to be read back
// with a single mmap.
//
// Layout (all integers little-endian):
//
//     [magic "DPSNAP01"]
//     [u32 header_len]                    total header bytes, magic..crc
//     [u32 meta_count]  meta_count x [lp key][lp value]
//     [u32 section_count] per section: [lp name][u64 offset][u64 size][u32 crc]
//     [u32 header_crc]                    CRC32C of all preceding bytes
//     <zero padding to 64-byte boundary>
//     [section 0 bytes] <zero padding to 64> [section 1 bytes] ...
//
// ("lp" = u32 length-prefixed byte string.)  Every section offset is a
// multiple of 64, so a FlatVectorStore block dropped in as a section
// keeps the alignment its SIMD kernels rely on when the file is mapped
// (mmap returns page-aligned memory, and 4096 is a multiple of 64).
//
// Writing is crash-atomic: the container is written to `path.tmp`,
// fsynced, renamed over `path`, and the directory fsynced — a reader
// either sees the complete old file, the complete new file, or a .tmp
// it ignores.  Reading validates the magic, the header CRC, and every
// section CRC before returning, so a half-written or bit-rotted
// snapshot is rejected as a whole and recovery falls back to the
// previous one.
//
// The meta map carries the engine-level identity of the snapshot
// (registry spec, seed, generation number, point kind) so recovery can
// refuse to load a snapshot into a database opened with different
// parameters instead of silently serving wrong results.

#ifndef DISTPERM_STORAGE_SNAPSHOT_H_
#define DISTPERM_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/status.h"

namespace distperm {
namespace storage {

inline constexpr char kSnapshotMagic[8] = {'D', 'P', 'S', 'N',
                                           'A', 'P', '0', '1'};

/// Assembles and atomically writes one snapshot container.
class SnapshotWriter {
 public:
  void SetMeta(const std::string& key, const std::string& value) {
    meta_[key] = value;
  }

  /// Adds a section owning its bytes.
  void AddSection(const std::string& name, std::string data);

  /// Adds a section borrowing `size` bytes at `data`; the memory must
  /// stay valid until Write returns (used for the vector-store block,
  /// which would be wasteful to copy).
  void AddSectionRef(const std::string& name, const void* data,
                     uint64_t size);

  /// Writes the container to `path` via tmp + fsync + rename + dir
  /// fsync.  On failure the tmp file may remain; readers ignore it and
  /// the next successful write replaces it.
  util::Status Write(Env* env, const std::string& path) const;

  /// Writes the container bytes directly to `path` (truncating) and
  /// fsyncs, without the rename step.  For two-phase protocols that
  /// must order the publication rename after other durable writes
  /// (e.g. the engine's WAL rotation): write the .tmp here, then
  /// Env::RenameFile + Env::SyncDir when it is safe to publish.
  util::Status WriteFile(Env* env, const std::string& path) const;

 private:
  struct Section {
    std::string name;
    std::string owned;      // used when data == nullptr
    const void* data = nullptr;
    uint64_t size = 0;

    const void* bytes() const { return data != nullptr ? data : owned.data(); }
  };

  std::map<std::string, std::string> meta_;
  std::vector<Section> sections_;
};

/// Maps and fully validates one snapshot container.
class SnapshotReader {
 public:
  /// A validated section inside the mapping; valid while the reader
  /// (or a copy of its mapping handle) lives.
  struct Section {
    const uint8_t* data = nullptr;
    uint64_t size = 0;
  };

  /// Maps `path` and validates magic, header CRC, section bounds and
  /// every section CRC.  Any failure rejects the whole file.
  static util::Result<SnapshotReader> Open(Env* env, const std::string& path);

  const std::map<std::string, std::string>& meta() const { return meta_; }

  /// Meta value for `key`; NotFound if absent.
  util::Result<std::string> GetMeta(const std::string& key) const;

  bool HasSection(const std::string& name) const {
    return sections_.count(name) != 0;
  }

  /// Section bytes; NotFound if absent.
  util::Result<Section> GetSection(const std::string& name) const;

  /// The underlying mapping; hold a copy to keep sections valid past
  /// the reader's lifetime.
  std::shared_ptr<MappedFile> mapping() const { return mapping_; }

 private:
  SnapshotReader() = default;

  std::shared_ptr<MappedFile> mapping_;
  std::map<std::string, std::string> meta_;
  std::map<std::string, Section> sections_;
};

}  // namespace storage
}  // namespace distperm

#endif  // DISTPERM_STORAGE_SNAPSHOT_H_
