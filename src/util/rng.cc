#include "util/rng.h"

#include <cmath>

namespace distperm {
namespace util {
namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.Next();
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  DP_CHECK(bound > 0);
  // Lemire's method: multiply into a 128-bit product and reject the small
  // biased region at the bottom of each residue class.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_gaussian_) {
    has_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_gaussian_ = true;
  return u * factor;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  DP_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

std::vector<size_t> Rng::SampleDistinct(size_t n, size_t count) {
  DP_CHECK(count <= n);
  // Floyd's algorithm: O(count) expected time and memory.
  std::vector<size_t> out;
  out.reserve(count);
  for (size_t j = n - count; j < n; ++j) {
    size_t t = static_cast<size_t>(NextBounded(j + 1));
    bool seen = false;
    for (size_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  Shuffle(&out);
  return out;
}

Rng Rng::Split() {
  return Rng(NextU64());
}

}  // namespace util
}  // namespace distperm
