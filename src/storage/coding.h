// Little-endian fixed-width encoding helpers for the on-disk formats.
//
// Every storage format in this directory (WAL frames, snapshot headers,
// point payloads) is written in explicit little-endian byte order so a
// file is readable regardless of the host the writer ran on.  The
// helpers append to a std::string (the storage layer's byte-buffer
// currency) and read from raw pointers with explicit bounds handled by
// the caller.

#ifndef DISTPERM_STORAGE_CODING_H_
#define DISTPERM_STORAGE_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace distperm {
namespace storage {

inline void PutFixed32(std::string* out, uint32_t value) {
  char buffer[4];
  for (int i = 0; i < 4; ++i) {
    buffer[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  out->append(buffer, 4);
}

inline void PutFixed64(std::string* out, uint64_t value) {
  char buffer[8];
  for (int i = 0; i < 8; ++i) {
    buffer[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  out->append(buffer, 8);
}

/// Doubles travel as their IEEE-754 bit pattern in little-endian order;
/// round-trips are bit-exact (NaN payloads included).
inline void PutDouble(std::string* out, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  PutFixed64(out, bits);
}

/// Length-prefixed byte string (u32 length + raw bytes).
inline void PutLengthPrefixed(std::string* out, const std::string& value) {
  PutFixed32(out, static_cast<uint32_t>(value.size()));
  out->append(value);
}

inline uint32_t GetFixed32(const uint8_t* p) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return value;
}

inline uint64_t GetFixed64(const uint8_t* p) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return value;
}

inline double GetDouble(const uint8_t* p) {
  const uint64_t bits = GetFixed64(p);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace storage
}  // namespace distperm

#endif  // DISTPERM_STORAGE_CODING_H_
