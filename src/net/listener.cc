#include "net/listener.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace distperm {
namespace net {

namespace {
util::Status IoError(const std::string& what) {
  return util::Status::IoError("net: " + what + ": " +
                               std::strerror(errno));
}
}  // namespace

util::Result<std::unique_ptr<Listener>> Listener::Bind(uint16_t port) {
  const int fd =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return IoError("socket");
  const int enable = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_ANY);
  address.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&address),
           sizeof(address)) != 0) {
    const util::Status status = IoError("bind");
    close(fd);
    return status;
  }
  if (listen(fd, 128) != 0) {
    const util::Status status = IoError("listen");
    close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_size) !=
      0) {
    const util::Status status = IoError("getsockname");
    close(fd);
    return status;
  }
  return std::unique_ptr<Listener>(
      new Listener(fd, ntohs(bound.sin_port)));
}

Listener::~Listener() { close(fd_); }

util::Result<int> Listener::Accept() {
  const int client =
      accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (client < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return IoError("accept");
  }
  const int enable = 1;
  setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return client;
}

}  // namespace net
}  // namespace distperm
