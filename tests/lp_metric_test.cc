#include "metric/lp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace distperm {
namespace metric {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Lp, KnownDistances2D) {
  Vector a = {0.0, 0.0};
  Vector b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(L2Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(L2DistanceSquared(a, b), 25.0);
  EXPECT_DOUBLE_EQ(LInfDistance(a, b), 4.0);
}

TEST(Lp, ZeroDistanceToSelf) {
  Vector a = {1.5, -2.5, 3.0};
  EXPECT_DOUBLE_EQ(L1Distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(L2Distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(LInfDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(LpDistance(a, a, 3.0), 0.0);
}

TEST(Lp, GeneralPMatchesSpecializations) {
  Vector a = {1.0, 2.0, -1.0};
  Vector b = {-2.0, 0.5, 4.0};
  EXPECT_DOUBLE_EQ(LpDistance(a, b, 1.0), L1Distance(a, b));
  EXPECT_DOUBLE_EQ(LpDistance(a, b, 2.0), L2Distance(a, b));
  EXPECT_DOUBLE_EQ(LpDistance(a, b, kInf), LInfDistance(a, b));
}

TEST(Lp, GeneralPKnownValue) {
  Vector a = {0.0};
  Vector b = {2.0};
  // One dimension: all Lp metrics coincide with |x - y|.
  for (double p : {1.0, 1.5, 2.0, 3.0, 7.0}) {
    EXPECT_DOUBLE_EQ(LpDistance(a, b, p), 2.0) << p;
  }
  Vector c = {1.0, 1.0};
  Vector origin = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(LpDistance(origin, c, 3.0), std::pow(2.0, 1.0 / 3.0));
}

TEST(Lp, MonotoneNonIncreasingInP) {
  // For fixed vectors, ||v||_p is non-increasing in p.
  Vector a = {0.3, -0.8, 0.5, 0.1};
  Vector b = {-0.2, 0.4, 0.9, -0.7};
  double previous = LpDistance(a, b, 1.0);
  for (double p : {1.5, 2.0, 3.0, 5.0, 10.0, kInf}) {
    double current = LpDistance(a, b, p);
    EXPECT_LE(current, previous + 1e-12) << p;
    previous = current;
  }
}

TEST(Lp, SymmetricInArguments) {
  Vector a = {0.1, 0.9, -0.4};
  Vector b = {0.7, -0.3, 0.2};
  for (double p : {1.0, 2.0, 3.5, kInf}) {
    EXPECT_DOUBLE_EQ(LpDistance(a, b, p), LpDistance(b, a, p)) << p;
  }
}

TEST(Lp, EmptyVectorsHaveZeroDistance) {
  Vector a, b;
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(L2Distance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(LInfDistance(a, b), 0.0);
}

TEST(LpMetric, NamesAndFactories) {
  EXPECT_EQ(LpMetric::L1().name(), "L1");
  EXPECT_EQ(LpMetric::L2().name(), "L2");
  EXPECT_EQ(LpMetric::LInf().name(), "Linf");
  EXPECT_EQ(LpMetric(3.0).name(), "L3");
  EXPECT_DOUBLE_EQ(LpMetric::L1().p(), 1.0);
  EXPECT_TRUE(std::isinf(LpMetric::LInf().p()));
}

TEST(LpMetric, CallableAndWrappable) {
  Vector a = {0.0, 0.0};
  Vector b = {3.0, 4.0};
  LpMetric l2 = LpMetric::L2();
  EXPECT_DOUBLE_EQ(l2(a, b), 5.0);
  Metric<Vector> wrapped(l2);
  EXPECT_DOUBLE_EQ(wrapped(a, b), 5.0);
  EXPECT_EQ(wrapped.name(), "L2");
}

}  // namespace
}  // namespace metric
}  // namespace distperm
