// Batch engine throughput, cooperative cross-shard pruning, and
// parallel shard construction.  Emits a machine-readable JSON report
// (BENCH_engine.json by default) so CI can track the engine's perf
// trajectory next to the kernel numbers.
//
// Three sections:
//
//  1. Throughput sweep — shard count x worker threads x index type:
//     batch wall-clock, queries/second, speedup over the 1-thread
//     execution of the same sharded database, per-query metric
//     evaluations, and recall against the exact linear scan.  Two
//     invariants are checked on every row ("cost" column): the
//     engine's distance counts with T threads must equal the counts
//     with 1 thread (independent scheduling never perturbs the paper's
//     cost model), and linear-scan shards must cost exactly n per
//     query.
//
//  2. Cooperative pruning — at 8 shards on a clustered dim-16 workload
//     with near-data queries (the regime metric indexes are for), kNN
//     fan-out with a shared k-th-distance bound (kCooperative and
//     kSeedFirst) versus the independent fan-out: per-query distance
//     computations and the reduction.  Merged results must stay
//     bit-identical; measured on a 1-thread engine so the counts are
//     deterministic.  The run fails unless the best exact-index
//     reduction reaches 25% (hardware-independent, so it is gated even
//     in --smoke; --no-strict reports without asserting).
//
//  3. Parallel build — ShardedDatabase::BuildFromRegistry wall time at
//     1/2/4/8 build threads for an AESA (O(n^2)) and a LAESA (O(nk))
//     table build: speedup over the serial build, with
//     build_distance_computations and IndexBits required identical at
//     every thread count (builds are deterministic).  Speedup is
//     hardware-dependent and reported, not gated.
//
//  4. Live ingest — a LiveDatabase serving the same batch continuously
//     while a writer thread streams inserts (~1k/s) and background
//     compactions fold the delta into new generations: q/s during the
//     whole ingest window (delta scans + compaction CPU + writer
//     contention) versus the steady-state reference, taken as the mean
//     of rest-state q/s at the initial and at the final compacted size
//     (the dataset grows during the window; the bracket separates
//     ingest overhead from the inherent cost of serving more data).
//     The run fails unless ingest-time throughput holds >= 70% of that
//     reference and the final compacted store answers bit-identically
//     to a fresh build over its materialized dataset.  The ratio is
//     the bench's only wall-clock gate, so --smoke (CI on shared
//     runners) reports it without asserting and gates only the
//     bit-identical check; --no-strict reports everything without
//     asserting.
//
//  5. Observability — steady-state q/s of a metrics-off engine versus
//     the same engine wired into an obs::MetricsRegistry, interleaved
//     rounds with best-of per mode: overhead_fraction must stay <= 3%
//     (wall-clock, so --smoke reports without asserting; the CI
//     release-bench job checks the JSON), and per-query traces must be
//     exact — bit-identical results with spans that partition each
//     query's distance count.
//
//  6. Durability — the cost of the write-ahead log and the payoff of
//     snapshots.  (a) Insert throughput of a durable store
//     (fsync=batched) versus the identical in-memory store: the WAL
//     ingest rate must hold >= 60% of the in-memory rate.  (b)
//     LiveDatabase::Open of a snapshotted 100k-point distperm
//     generation (mmap + checksum + state decode, no distance
//     computations) versus the cold in-memory build over the same
//     dataset: the open must cost < 10% of the rebuild.  (c) The
//     durable store, closed and recovered from disk, must answer the
//     batch bit-identically to its pre-close self — gated always; the
//     two ratios are wall-clock, so --smoke reports them for the
//     CI-side JSON check without asserting in-process.
//
//  7. Serving — the network front door versus the in-process engine
//     it fronts: the same batch answered by LiveDatabase::RunBatch on
//     one thread, over a loopback TCP connection with the perm cache
//     bypassed (kRequestNoCache), and from the warmed
//     distance-permutation cache.  Wire answers must be bit-identical
//     to the in-process engine — ids, distances, AND per-query
//     distance counts (cache-probe site distances are accounted
//     separately, never folded into query stats) — gated always.
//     Loopback must hold >= 50% of in-process on one engine thread
//     and warm cache replays must run >= 5x the uncached wire rate;
//     both are wall-clock, so --smoke defers them to the CI-side JSON
//     check.
//
//  8. Replication — wire catch-up versus local recovery over the same
//     WAL delta: a primary seeded with the base dataset plus an
//     unfolded R-record delta is (a) reopened locally (recovery
//     replays the delta) and (b) tailed by a fresh replica that
//     bootstraps the snapshot over loopback TCP and applies the R
//     frames through its own durable write path.  Catch-up must hold
//     >= 50% of the local replay rate (wall-clock, so --smoke defers
//     it to the CI-side JSON check); the caught-up replica must be
//     bit-identical to the primary — generation, delta, materialized
//     points, and batch answers — gated always.
//
// Index structures are selected at runtime through the index registry;
// --index=<spec> restricts the throughput sweep to a single entry.
//
// Usage: engine_throughput [--points=4000] [--queries=48] [--dim=16]
//                          [--k=10] [--seed=7] [--index=<spec>]
//                          [--smoke] [--no-strict]
//                          [--out=BENCH_engine.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dataset/vector_gen.h"
#include "engine/batch_stats.h"
#include "engine/live_database.h"
#include "engine/query.h"
#include "engine/query_engine.h"
#include "engine/sharded_database.h"
#include "index/linear_scan.h"
#include "metric/lp.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "server/replica_server.h"
#include "server/search_server.h"
#include "storage/env.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::engine::QueryEngine;
using distperm::engine::QuerySpec;
using distperm::engine::ShardedDatabase;
using distperm::index::ShardScheduling;
using distperm::metric::Metric;
using distperm::metric::Vector;
using distperm::util::Rng;

namespace {

std::string Ms(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", seconds * 1e3);
  return buffer;
}

std::string Fixed(double v, int digits) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, v);
  return buffer;
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ThroughputRow {
  std::string index;
  size_t shards = 0;
  size_t threads = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double speedup = 1.0;
  double dist_per_query = 0.0;
  bool cost_ok = true;
  double recall = 0.0;
};

struct CooperativeRow {
  std::string index;
  size_t shards = 0;
  double naive = 0.0;       // per-query distance computations
  double cooperative = 0.0;
  double seed_first = 0.0;
  double reduction_pct = 0.0;
  double seed_first_reduction_pct = 0.0;
  bool results_match = true;
};

struct BuildRow {
  std::string index;
  size_t threads = 0;
  double wall_ms = 0.0;
  double speedup = 1.0;
  bool counts_match = true;
};

struct ObservabilityResult {
  double qps_off = 0.0;  // metrics disabled (the seed behavior)
  double qps_on = 0.0;   // EnableMetrics wired into a registry
  double overhead_fraction = 0.0;  // max(0, 1 - qps_on / qps_off)
  bool trace_exact = true;
};

struct DurabilityResult {
  std::string ingest_spec;
  std::string snapshot_spec;
  double memory_inserts_per_s = 0.0;  // in-memory store, no WAL
  double wal_inserts_per_s = 0.0;     // fsync=batched WAL ahead of commit
  double wal_ratio_pct = 0.0;         // 100 * wal / memory (gate: >= 60)
  size_t snapshot_points = 0;
  double cold_build_s = 0.0;   // fresh in-memory build over the dataset
  double snapshot_open_s = 0.0;  // Open() from the snapshot on disk
  double open_ratio_pct = 0.0;   // 100 * open / cold (gate: < 10)
  bool recovered_match = true;   // reopened store == pre-close answers
};

struct LiveIngestResult {
  std::string spec;
  double steady_before_qps = 0.0;  // rest state at the initial size
  double steady_after_qps = 0.0;   // rest state at the final size
  double steady_qps = 0.0;         // the mean: the gate's reference
  double ingest_qps = 0.0;
  double ratio_pct = 0.0;
  size_t inserted = 0;
  size_t compactions = 0;
  size_t final_size = 0;
  bool results_match = true;
};

struct IncrementalCompactionResult {
  std::string spec;
  size_t shards = 0;
  size_t base_points = 0;
  size_t delta_inserts = 0;
  size_t shards_rebuilt = 0;       // expect 1 (only the dirty shard)
  size_t shards_shared = 0;        // expect shards - 1
  double incremental_s = 0.0;      // best fold wall time
  double full_rebuild_s = 0.0;     // best per-slice full rebuild
  double wall_speedup = 0.0;       // full / incremental (gate: >= 4)
  uint64_t incremental_build_distances = 0;
  uint64_t full_build_distances = 0;
  double work_ratio = 0.0;         // full / incremental (gate: >= 4)
  bool results_match = true;       // post-fold store == sliced rebuild
};

struct ReplicationResult {
  std::string spec;
  size_t records = 0;        // WAL delta records both sides apply
  double replay_rps = 0.0;   // local recovery replay, records/s
  double catchup_rps = 0.0;  // wire catch-up into a fresh replica
  double catchup_ratio_pct = 0.0;  // 100 * catchup/replay (gate: >= 50)
  double bootstrap_s = 0.0;  // snapshot transfer + replica open
  bool converged = true;     // replica == primary after catch-up
  bool gated = true;         // ratio enforced (multi-core, not --smoke)
};

struct ServingResult {
  std::string spec;
  double inproc_qps = 0.0;    // LiveDatabase::RunBatch, 1 engine thread
  double loopback_qps = 0.0;  // same batch over TCP, cache bypassed
  double loopback_ratio_pct = 0.0;  // 100 * loopback/inproc (gate: >= 50)
  double uncached_qps = 0.0;  // == loopback (kRequestNoCache path)
  double cached_qps = 0.0;    // warm perm-cache replays over the wire
  double cached_speedup = 0.0;  // cached / uncached (gate: >= 5)
  size_t cache_hits = 0;        // hits in the last cached round
  bool results_match = true;    // wire == in-process, incl. counts
};

bool WriteJson(const std::string& path, size_t points, size_t queries,
               size_t dim, size_t coop_dim, size_t k, uint64_t seed,
               bool smoke, size_t hardware,
               const std::vector<ThroughputRow>& throughput,
               const std::vector<CooperativeRow>& cooperative,
               const std::vector<BuildRow>& builds,
               const LiveIngestResult& live,
               const IncrementalCompactionResult& incremental,
               const ObservabilityResult& obs,
               const DurabilityResult& durability,
               const ServingResult& serving,
               const ReplicationResult& replication, bool pass) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out << "{\n";
  out << "  \"schema\": \"BENCH_engine\",\n";
  out << "  \"config\": {\"points\": " << points
      << ", \"queries\": " << queries << ", \"dim\": " << dim
      << ", \"coop_dim\": " << coop_dim << ", \"k\": " << k
      << ", \"seed\": " << seed
      << ", \"smoke\": " << (smoke ? "true" : "false")
      << ", \"hardware_threads\": " << hardware << "},\n";
  out << "  \"throughput\": [\n";
  for (size_t i = 0; i < throughput.size(); ++i) {
    const ThroughputRow& r = throughput[i];
    out << "    {\"index\": \"" << r.index << "\", \"shards\": " << r.shards
        << ", \"threads\": " << r.threads
        << ", \"wall_ms\": " << Fixed(r.wall_ms, 3)
        << ", \"qps\": " << Fixed(r.qps, 1)
        << ", \"speedup\": " << Fixed(r.speedup, 3)
        << ", \"dist_per_query\": " << Fixed(r.dist_per_query, 1)
        << ", \"cost_ok\": " << (r.cost_ok ? "true" : "false")
        << ", \"recall\": " << Fixed(r.recall, 4) << "}"
        << (i + 1 < throughput.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"cooperative\": [\n";
  for (size_t i = 0; i < cooperative.size(); ++i) {
    const CooperativeRow& r = cooperative[i];
    out << "    {\"index\": \"" << r.index << "\", \"shards\": " << r.shards
        << ", \"naive_dist_per_query\": " << Fixed(r.naive, 1)
        << ", \"cooperative_dist_per_query\": " << Fixed(r.cooperative, 1)
        << ", \"seed_first_dist_per_query\": " << Fixed(r.seed_first, 1)
        << ", \"reduction_pct\": " << Fixed(r.reduction_pct, 1)
        << ", \"seed_first_reduction_pct\": "
        << Fixed(r.seed_first_reduction_pct, 1)
        << ", \"results_match\": " << (r.results_match ? "true" : "false")
        << "}" << (i + 1 < cooperative.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"parallel_build\": [\n";
  for (size_t i = 0; i < builds.size(); ++i) {
    const BuildRow& r = builds[i];
    out << "    {\"index\": \"" << r.index
        << "\", \"threads\": " << r.threads
        << ", \"wall_ms\": " << Fixed(r.wall_ms, 2)
        << ", \"speedup\": " << Fixed(r.speedup, 3)
        << ", \"counts_match\": " << (r.counts_match ? "true" : "false")
        << "}" << (i + 1 < builds.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"live_ingest\": {\"spec\": \"" << live.spec
      << "\", \"steady_before_qps\": " << Fixed(live.steady_before_qps, 1)
      << ", \"steady_after_qps\": " << Fixed(live.steady_after_qps, 1)
      << ", \"steady_qps\": " << Fixed(live.steady_qps, 1)
      << ", \"ingest_qps\": " << Fixed(live.ingest_qps, 1)
      << ", \"ratio_pct\": " << Fixed(live.ratio_pct, 1)
      << ", \"gate_pct\": 70"
      << ", \"inserted\": " << live.inserted
      << ", \"compactions\": " << live.compactions
      << ", \"final_size\": " << live.final_size
      << ", \"results_match\": " << (live.results_match ? "true" : "false")
      << "},\n";
  out << "  \"incremental_compaction\": {\"spec\": \"" << incremental.spec
      << "\", \"shards\": " << incremental.shards
      << ", \"base_points\": " << incremental.base_points
      << ", \"delta_inserts\": " << incremental.delta_inserts
      << ", \"shards_rebuilt\": " << incremental.shards_rebuilt
      << ", \"shards_shared\": " << incremental.shards_shared
      << ", \"incremental_s\": " << Fixed(incremental.incremental_s, 5)
      << ", \"full_rebuild_s\": " << Fixed(incremental.full_rebuild_s, 5)
      << ", \"wall_speedup\": " << Fixed(incremental.wall_speedup, 2)
      << ", \"incremental_build_distances\": "
      << incremental.incremental_build_distances
      << ", \"full_build_distances\": "
      << incremental.full_build_distances
      << ", \"work_ratio\": " << Fixed(incremental.work_ratio, 2)
      << ", \"gate_ratio\": 4"
      << ", \"results_match\": "
      << (incremental.results_match ? "true" : "false") << "},\n";
  out << "  \"observability\": {\"qps_metrics_off\": "
      << Fixed(obs.qps_off, 1)
      << ", \"qps_metrics_on\": " << Fixed(obs.qps_on, 1)
      << ", \"overhead_fraction\": " << Fixed(obs.overhead_fraction, 4)
      << ", \"gate_fraction\": 0.03"
      << ", \"trace_exact\": " << (obs.trace_exact ? "true" : "false")
      << "},\n";
  out << "  \"durability\": {\"ingest_spec\": \"" << durability.ingest_spec
      << "\", \"snapshot_spec\": \"" << durability.snapshot_spec
      << "\", \"memory_inserts_per_s\": "
      << Fixed(durability.memory_inserts_per_s, 1)
      << ", \"wal_inserts_per_s\": "
      << Fixed(durability.wal_inserts_per_s, 1)
      << ", \"wal_ratio_pct\": " << Fixed(durability.wal_ratio_pct, 1)
      << ", \"wal_gate_pct\": 60"
      << ", \"snapshot_points\": " << durability.snapshot_points
      << ", \"cold_build_s\": " << Fixed(durability.cold_build_s, 4)
      << ", \"snapshot_open_s\": " << Fixed(durability.snapshot_open_s, 4)
      << ", \"open_ratio_pct\": " << Fixed(durability.open_ratio_pct, 1)
      << ", \"open_gate_pct\": 10"
      << ", \"recovered_match\": "
      << (durability.recovered_match ? "true" : "false") << "},\n";
  out << "  \"serving\": {\"spec\": \"" << serving.spec
      << "\", \"inproc_qps\": " << Fixed(serving.inproc_qps, 1)
      << ", \"loopback_qps\": " << Fixed(serving.loopback_qps, 1)
      << ", \"loopback_ratio_pct\": "
      << Fixed(serving.loopback_ratio_pct, 1)
      << ", \"loopback_gate_pct\": 50"
      << ", \"uncached_qps\": " << Fixed(serving.uncached_qps, 1)
      << ", \"cached_qps\": " << Fixed(serving.cached_qps, 1)
      << ", \"cached_speedup\": " << Fixed(serving.cached_speedup, 2)
      << ", \"speedup_gate\": 5"
      << ", \"cache_hits\": " << serving.cache_hits
      << ", \"results_match\": "
      << (serving.results_match ? "true" : "false") << "},\n";
  out << "  \"replication\": {\"spec\": \"" << replication.spec
      << "\", \"records\": " << replication.records
      << ", \"replay_records_per_s\": " << Fixed(replication.replay_rps, 1)
      << ", \"catchup_records_per_s\": "
      << Fixed(replication.catchup_rps, 1)
      << ", \"catchup_ratio_pct\": "
      << Fixed(replication.catchup_ratio_pct, 1)
      << ", \"catchup_gate_pct\": 50"
      << ", \"gated\": " << (replication.gated ? "true" : "false")
      << ", \"bootstrap_s\": " << Fixed(replication.bootstrap_s, 4)
      << ", \"converged\": "
      << (replication.converged ? "true" : "false") << "},\n";
  out << "  \"pass\": " << (pass ? "true" : "false") << "\n";
  out << "}\n";
  out.flush();
  if (!out) {
    std::cerr << "failed writing " << path << "\n";
    return false;
  }
  std::cout << "\nwrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const bool smoke = flags.value().GetBool("smoke", false);
  const bool strict = !flags.value().GetBool("no-strict", false);
  const size_t points = static_cast<size_t>(
      flags.value().GetInt("points", smoke ? 1500 : 4000));
  const size_t queries = static_cast<size_t>(
      flags.value().GetInt("queries", smoke ? 24 : 48));
  const size_t dim = static_cast<size_t>(flags.value().GetInt("dim", 16));
  const size_t k = static_cast<size_t>(flags.value().GetInt("k", 10));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 7));
  const std::string out_path =
      flags.value().GetString("out", "BENCH_engine.json");

  // Registry specs to sweep: the default four, or the single spec the
  // caller asked for.
  std::vector<std::string> specs = {"linear-scan", "vp-tree", "laesa:k=8",
                                    "distperm:k=10,fraction=0.2"};
  if (flags.value().Has("index")) {
    specs = {flags.value().GetString("index", "linear-scan")};
  }

  Rng rng(seed);
  auto data = distperm::dataset::UniformCube(points, dim, &rng);
  Metric<Vector> l2(distperm::metric::LpMetric::L2());

  std::vector<QuerySpec<Vector>> batch;
  for (size_t q = 0; q < queries; ++q) {
    Vector point(dim);
    for (auto& coord : point) coord = rng.NextDouble();
    batch.push_back(QuerySpec<Vector>::Knn(point, k));
  }

  // Exact ground truth for recall, from the unsharded linear scan.
  distperm::index::LinearScanIndex<Vector> scan(data, l2);
  std::vector<std::vector<distperm::index::SearchResult>> truth;
  for (const auto& spec : batch) truth.push_back(scan.KnnQuery(spec.point, k));

  const size_t hardware = std::thread::hardware_concurrency();
  std::cout << "engine throughput: n=" << points << ", d=" << dim
            << ", batch=" << queries << " x " << k
            << "-NN, hardware threads=" << hardware
            << (smoke ? " (smoke)" : "") << "\n\n";

  distperm::util::TablePrinter table;
  table.SetHeader({"index", "shards", "threads", "wall ms", "q/s",
                   "speedup", "dist/query", "cost", "recall"});

  std::vector<ThroughputRow> throughput_rows;
  bool cost_model_ok = true;
  bool concurrency_win = false;
  double best_speedup = 1.0;
  for (const std::string& spec : specs) {
    for (size_t shards : {1u, 4u, 8u}) {
      auto built = ShardedDatabase<Vector>::BuildFromRegistry(
          data, l2, shards, spec, seed);
      if (!built.ok()) {
        std::cerr << "failed to build '" << spec << "': " << built.status()
                  << "\n";
        return 1;
      }
      const ShardedDatabase<Vector>& db = built.value();
      // Single-threaded reference execution of the same sharded queries:
      // the baseline for speedup and for cost-model equality.
      QueryEngine<Vector> sequential(&db, 1);
      auto base = sequential.RunBatch(batch);

      for (size_t threads : {1u, 2u, 4u, 8u}) {
        // The 1-thread row is the base run itself; rerunning it would
        // double the work and decouple the row from its own baseline.
        auto out = base;
        if (threads > 1) {
          QueryEngine<Vector> engine(&db, threads);
          out = engine.RunBatch(batch);
        }

        bool counts_match =
            out.stats.distance_computations ==
                base.stats.distance_computations &&
            out.per_query_distance_computations ==
                base.per_query_distance_computations;
        if (spec == "linear-scan") {
          for (uint64_t per_query : out.per_query_distance_computations) {
            counts_match = counts_match && per_query == points;
          }
        }
        cost_model_ok = cost_model_ok && counts_match;

        double speedup = threads == 1
                             ? 1.0
                             : base.stats.wall_seconds /
                                   out.stats.wall_seconds;
        if (threads >= 4 && shards >= 4 && speedup > 1.05) {
          concurrency_win = true;
          if (speedup > best_speedup) best_speedup = speedup;
        }
        double qps = static_cast<double>(queries) / out.stats.wall_seconds;
        double recall = distperm::engine::AverageRecall(out.results, truth);
        table.AddRow(
            {spec, std::to_string(shards), std::to_string(threads),
             Ms(out.stats.wall_seconds), Fixed(qps, 0), Fixed(speedup, 2),
             Fixed(static_cast<double>(out.stats.distance_computations) /
                       static_cast<double>(queries),
                   1),
             counts_match ? "OK" : "MISMATCH", Fixed(recall, 3)});
        throughput_rows.push_back(
            {spec, shards, threads, out.stats.wall_seconds * 1e3, qps,
             speedup,
             static_cast<double>(out.stats.distance_computations) /
                 static_cast<double>(queries),
             counts_match, recall});
      }
    }
  }
  table.Print(std::cout);

  std::cout << "\ncost model: "
            << (cost_model_ok
                    ? "OK — distance counts are identical across all "
                      "thread counts (and n/query for linear scan)"
                    : "MISMATCH — concurrency perturbed the accounting")
            << "\n";
  if (concurrency_win) {
    std::cout << "concurrency: with >=4 threads on >=4 shards the batch "
                 "ran up to "
              << Fixed(best_speedup, 2)
              << "x faster than the same sharded execution on 1 thread\n";
  } else {
    std::cout << "concurrency: no wall-clock win measured (hardware "
                 "threads="
              << hardware
              << "); on a multi-core host >=4 threads on >=4 shards beat "
                 "sequential execution\n";
  }

  // ---------------------------------------------- cooperative pruning
  // Clustered dim-16 data with near-data queries: the workload where a
  // k-th-distance bound has pruning power.  Counts come from a 1-thread
  // engine, so they are deterministic and hardware-independent.
  const size_t coop_dim = std::max<size_t>(dim, 16);
  const size_t coop_shards = 8;
  Rng coop_rng(seed + 1);
  auto clustered = distperm::dataset::ClusteredCloud(
      points, coop_dim, std::max<size_t>(8, points / 60), 0.01, &coop_rng);
  std::vector<QuerySpec<Vector>> coop_batch;
  for (size_t q = 0; q < queries; ++q) {
    Vector point = clustered[coop_rng.NextBounded(clustered.size())];
    for (double& c : point) c += coop_rng.NextDouble(-0.005, 0.005);
    coop_batch.push_back(QuerySpec<Vector>::Knn(point, k));
  }

  std::cout << "\ncooperative cross-shard pruning: clustered n=" << points
            << ", d=" << coop_dim << ", " << coop_shards
            << " shards, k=" << k << " (1-thread engine, exact counts)\n\n";
  distperm::util::TablePrinter coop_table;
  coop_table.SetHeader({"index", "naive d/q", "coop d/q", "seed1st d/q",
                        "saved", "seed1st saved", "results"});
  std::vector<CooperativeRow> coop_rows;
  bool coop_results_ok = true;
  double best_reduction = 0.0;
  std::vector<std::string> coop_specs = {"vp-tree", "laesa:k=16"};
  // AESA's matrix is quadratic; bench it on a capped slice.
  const size_t aesa_points = std::min<size_t>(points, 1500);
  for (const std::string& spec : coop_specs) {
    auto built = ShardedDatabase<Vector>::BuildFromRegistry(
        clustered, l2, coop_shards, spec, seed);
    if (!built.ok()) {
      std::cerr << "failed to build '" << spec << "': " << built.status()
                << "\n";
      return 1;
    }
    QueryEngine<Vector> engine(&built.value(), 1);
    auto policy_batch = coop_batch;
    auto run = [&](ShardScheduling policy) {
      for (auto& q : policy_batch) q.shard_scheduling = policy;
      return engine.RunBatch(policy_batch);
    };
    auto naive = run(ShardScheduling::kIndependent);
    auto coop = run(ShardScheduling::kCooperative);
    auto seed1 = run(ShardScheduling::kSeedFirst);

    CooperativeRow row;
    row.index = spec;
    row.shards = coop_shards;
    const double q_count = static_cast<double>(queries);
    row.naive =
        static_cast<double>(naive.stats.distance_computations) / q_count;
    row.cooperative =
        static_cast<double>(coop.stats.distance_computations) / q_count;
    row.seed_first =
        static_cast<double>(seed1.stats.distance_computations) / q_count;
    row.reduction_pct = 100.0 * (1.0 - row.cooperative / row.naive);
    row.seed_first_reduction_pct =
        100.0 * (1.0 - row.seed_first / row.naive);
    row.results_match =
        coop.results == naive.results && seed1.results == naive.results;
    coop_results_ok = coop_results_ok && row.results_match;
    best_reduction = std::max(
        best_reduction,
        std::max(row.reduction_pct, row.seed_first_reduction_pct));
    coop_table.AddRow({spec, Fixed(row.naive, 1), Fixed(row.cooperative, 1),
                       Fixed(row.seed_first, 1),
                       Fixed(row.reduction_pct, 1) + "%",
                       Fixed(row.seed_first_reduction_pct, 1) + "%",
                       row.results_match ? "OK" : "MISMATCH"});
    coop_rows.push_back(row);
  }
  coop_table.Print(std::cout);
  std::cout << "\ncooperative: best exact-index reduction "
            << Fixed(best_reduction, 1) << "% (gate: >= 25%), results "
            << (coop_results_ok ? "bit-identical to the naive fan-out"
                                : "MISMATCH")
            << "\n";

  // ------------------------------------------------- parallel builds
  std::cout << "\nparallel shard construction (8 shards, wall time of "
               "BuildFromRegistry):\n\n";
  distperm::util::TablePrinter build_table;
  build_table.SetHeader({"index", "build threads", "wall ms", "speedup",
                         "determinism"});
  std::vector<BuildRow> build_rows;
  bool build_counts_ok = true;
  struct BuildCase {
    std::string spec;
    const std::vector<Vector>* data;
  };
  std::vector<Vector> aesa_data(clustered.begin(),
                                clustered.begin() +
                                    static_cast<ptrdiff_t>(aesa_points));
  const std::vector<BuildCase> build_cases = {
      {"aesa", &aesa_data}, {"laesa:k=64", &clustered}};
  for (const BuildCase& c : build_cases) {
    uint64_t serial_counts = 0;
    uint64_t serial_bits = 0;
    double serial_ms = 0.0;
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      double best = 1e100;
      uint64_t counts = 0;
      uint64_t bits = 0;
      const int reps = smoke ? 2 : 3;
      for (int rep = 0; rep < reps; ++rep) {
        // Copy outside the timed window and move in: the timer covers
        // the build itself, not a serial deep copy of the dataset.
        std::vector<Vector> rep_data = *c.data;
        const double t0 = Now();
        auto built = ShardedDatabase<Vector>::BuildFromRegistry(
            std::move(rep_data), l2, 8, c.spec, seed, threads);
        best = std::min(best, Now() - t0);
        if (!built.ok()) {
          std::cerr << "failed to build '" << c.spec
                    << "': " << built.status() << "\n";
          return 1;
        }
        counts = built.value().build_distance_computations();
        bits = built.value().IndexBits();
      }
      if (threads == 1) {
        serial_counts = counts;
        serial_bits = bits;
        serial_ms = best * 1e3;
      }
      const bool counts_match = counts == serial_counts &&
                                bits == serial_bits;
      build_counts_ok = build_counts_ok && counts_match;
      BuildRow row;
      row.index = c.spec;
      row.threads = threads;
      row.wall_ms = best * 1e3;
      row.speedup = serial_ms / row.wall_ms;
      row.counts_match = counts_match;
      build_table.AddRow({c.spec, std::to_string(threads),
                          Fixed(row.wall_ms, 2), Fixed(row.speedup, 2),
                          counts_match ? "OK" : "MISMATCH"});
      build_rows.push_back(row);
    }
  }
  build_table.Print(std::cout);
  std::cout << "\nparallel build: distance counts and index bits are "
            << (build_counts_ok ? "identical" : "DIFFERENT")
            << " at every thread count (speedup is hardware-dependent; "
               "hardware threads="
            << hardware << ")\n";

  // -------------------------------------------------- live ingest
  // The same batch served continuously from a LiveDatabase: first with
  // the store idle (steady state), then across a whole ingest window —
  // a writer thread streaming inserts, auto-compactions folding the
  // delta into new generations in the background, every query paying
  // its pinned delta scan.  Throughput during ingest must hold >= 70%
  // of steady state, and the final compacted store must answer
  // bit-identically to a fresh build over its materialized dataset.
  using distperm::engine::LiveDatabase;
  LiveIngestResult live_row;
  // Scale the fold threshold with the database: the per-query delta
  // scan stays a small fraction of the base query cost at any
  // --points, so the gate measures compaction overhead, not a
  // mis-sized buffer.
  const size_t compact_threshold = std::max<size_t>(32, points / 24);
  live_row.spec = "vp-tree:auto_compact_threshold=" +
                  std::to_string(compact_threshold) +
                  ",delta_scan_limit=" +
                  std::to_string(8 * compact_threshold);
  const size_t ingest_total = smoke ? 500 : 1000;
  {
    distperm::engine::LiveOptions live_options;
    live_options.query_threads = 2;
    live_options.build_threads = 1;
    auto opened = LiveDatabase<Vector>::Open(data, l2, 4, live_row.spec,
                                             seed, live_options);
    if (!opened.ok()) {
      std::cerr << "failed to open live store: " << opened.status() << "\n";
      return 1;
    }
    LiveDatabase<Vector>& live = *opened.value();

    const int steady_reps = smoke ? 8 : 16;
    const auto measure_steady = [&live, &batch, queries, steady_reps]() {
      live.RunBatch(batch);  // warm the scratch buffers
      const double t0 = Now();
      for (int rep = 0; rep < steady_reps; ++rep) live.RunBatch(batch);
      return static_cast<double>(steady_reps) *
             static_cast<double>(queries) / (Now() - t0);
    };
    live_row.steady_before_qps = measure_steady();

    std::atomic<bool> writer_done{false};
    std::thread writer([&live, &writer_done, ingest_total, seed, dim]() {
      Rng writer_rng(seed + 99);
      for (size_t i = 0; i < ingest_total;) {
        Vector p;
        p.reserve(dim);
        for (size_t d = 0; d < dim; ++d) p.push_back(writer_rng.NextDouble());
        if (live.Insert(std::move(p)).ok()) {
          ++i;
          // A paced insert stream (~1k/s) so the window spans many
          // compaction cycles instead of one burst.
          std::this_thread::sleep_for(std::chrono::microseconds(1000));
        } else {
          // Backpressure: let a compaction fold the delta.
          std::this_thread::sleep_for(std::chrono::microseconds(1000));
        }
      }
      writer_done.store(true);
    });

    size_t ingest_batches = 0;
    const double t0 = Now();
    while (!writer_done.load(std::memory_order_relaxed)) {
      live.RunBatch(batch);
      ++ingest_batches;
    }
    const double ingest_elapsed = Now() - t0;
    writer.join();
    live_row.ingest_qps = static_cast<double>(ingest_batches) *
                          static_cast<double>(queries) / ingest_elapsed;
    live_row.inserted = ingest_total;

    live.WaitForCompaction();
    // Count only the compactions the measured window ran against; the
    // forced fold below is post-measurement cleanup.
    live_row.compactions = live.generation_number() - 1;
    const auto final_fold = live.Compact();
    const auto background = live.last_background_compact_status();
    if (!final_fold.ok() || !background.ok()) {
      // A compaction error is its own failure, not a determinism
      // divergence — say which one happened before failing the gate.
      std::cerr << "live ingest: compaction failed — foreground: "
                << final_fold << ", background: " << background << "\n";
      live_row.results_match = false;
    }
    auto snapshot = live.Pin();
    live_row.final_size = snapshot.live_size();

    // The dataset grows by `ingest_total` during the window, so the
    // fair steady-state reference brackets it: the mean of rest-state
    // throughput at the initial size and at the final (compacted)
    // size.  The ratio then isolates the ingest machinery's overhead —
    // delta scans, compaction CPU, writer contention — from the
    // inherent cost of serving a larger database.
    live_row.steady_after_qps = measure_steady();
    live_row.steady_qps =
        0.5 * (live_row.steady_before_qps + live_row.steady_after_qps);
    live_row.ratio_pct =
        100.0 * live_row.ingest_qps / live_row.steady_qps;

    // Bit-identical serving after the swaps: the compacted store vs. a
    // full per-slice rebuild of the same routed layout
    // (MaterializeSlices is the reference an incremental fold must
    // reproduce shard for shard).
    auto fresh = ShardedDatabase<Vector>::BuildFromRegistrySliced(
        snapshot.MaterializeSlices(), l2, live.index_spec(), seed);
    if (!fresh.ok()) {
      live_row.results_match = false;
    } else {
      QueryEngine<Vector> fresh_engine(1);
      auto want = fresh_engine.RunBatch(fresh.value(), batch);
      auto got = live.RunBatch(batch);
      live_row.results_match =
          live_row.results_match && got.results == want.results;
    }
  }
  std::cout << "\nlive ingest (" << live_row.spec << ", "
            << ingest_total << " inserts streamed):\n\n";
  distperm::util::TablePrinter live_table;
  live_table.SetHeader({"phase", "q/s", "ratio", "compactions", "final n",
                        "results"});
  live_table.AddRow({"steady (initial size)",
                     Fixed(live_row.steady_before_qps, 0), "-", "-", "-",
                     "-"});
  live_table.AddRow({"steady (final size)",
                     Fixed(live_row.steady_after_qps, 0), "-", "-", "-",
                     "-"});
  live_table.AddRow({"steady reference (mean)",
                     Fixed(live_row.steady_qps, 0), "100%", "-", "-", "-"});
  live_table.AddRow(
      {"ingest", Fixed(live_row.ingest_qps, 0),
       Fixed(live_row.ratio_pct, 1) + "%",
       std::to_string(live_row.compactions),
       std::to_string(live_row.final_size),
       live_row.results_match ? "OK" : "MISMATCH"});
  live_table.Print(std::cout);
  std::cout << "\nlive ingest: query throughput during background "
               "compaction at "
            << Fixed(live_row.ratio_pct, 1)
            << "% of the steady-state reference (gate: >= 70%), final "
               "store "
            << (live_row.results_match
                    ? "bit-identical to a fresh build"
                    : "DIVERGES from a fresh build")
            << "\n";

  // -------------------------------------- incremental compaction
  // Eight well-separated clusters laid out in cluster order, so
  // generation 1's uniform split makes shard s = cluster s and a delta
  // streamed at cluster 3's center routes to exactly one shard.
  // Folding that delta incrementally must do >= 4x less work than the
  // full per-slice rebuild — wall time AND build distance
  // computations — while the folded store answers bit-identically
  // (results and per-query counts) to the rebuild.  Both sides build
  // single-threaded, so the ratio measures shards skipped, not
  // threads.
  IncrementalCompactionResult inc_row;
  {
    constexpr size_t kIncShards = 8;
    const size_t per_cluster = smoke ? 600 : 2000;
    const size_t inc_dim = 4;
    const size_t delta_inserts = 64;
    inc_row.spec = "laesa:k=32";
    inc_row.shards = kIncShards;
    inc_row.base_points = kIncShards * per_cluster;
    inc_row.delta_inserts = delta_inserts;

    Rng inc_rng(seed + 31);
    std::vector<Vector> inc_base;
    inc_base.reserve(inc_row.base_points);
    for (size_t c = 0; c < kIncShards; ++c) {
      for (size_t i = 0; i < per_cluster; ++i) {
        Vector p(inc_dim);
        for (double& x : p) x = 10.0 * c + inc_rng.NextDouble();
        inc_base.push_back(std::move(p));
      }
    }
    std::vector<Vector> inc_delta;
    inc_delta.reserve(delta_inserts);
    for (size_t i = 0; i < delta_inserts; ++i) {
      Vector p(inc_dim);
      for (double& x : p) x = 30.0 + inc_rng.NextDouble();
      inc_delta.push_back(std::move(p));
    }
    std::vector<QuerySpec<Vector>> inc_batch;
    for (int q = 0; q < 24; ++q) {
      const size_t c = inc_rng.NextBounded(kIncShards);
      Vector p(inc_dim);
      for (double& x : p) x = 10.0 * c + inc_rng.NextDouble();
      inc_batch.push_back(QuerySpec<Vector>::Knn(p, 10));
    }
    const std::string live_spec = inc_row.spec + ",delta_scan_limit=256";

    inc_row.incremental_s = std::numeric_limits<double>::infinity();
    inc_row.full_rebuild_s = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      auto opened = LiveDatabase<Vector>::Open(inc_base, l2, kIncShards,
                                               live_spec, seed);
      if (!opened.ok()) {
        std::cerr << "incremental compaction open failed: "
                  << opened.status() << "\n";
        return 1;
      }
      LiveDatabase<Vector>& live = *opened.value();
      bool inserted = true;
      for (const Vector& p : inc_delta) {
        inserted = inserted && live.Insert(p).ok();
      }
      if (!inserted) {
        std::cerr << "incremental compaction insert failed\n";
        return 1;
      }
      auto snapshot = live.Pin();
      auto slices = snapshot.MaterializeSlices();

      const double fold_t0 = Now();
      if (const auto folded = live.Compact(); !folded.ok()) {
        std::cerr << "incremental compaction fold failed: " << folded
                  << "\n";
        return 1;
      }
      inc_row.incremental_s =
          std::min(inc_row.incremental_s, Now() - fold_t0);
      const auto stats = live.last_compaction_stats();
      inc_row.shards_rebuilt = stats.shards_rebuilt;
      inc_row.shards_shared = stats.shards_shared;
      inc_row.incremental_build_distances =
          stats.build_distance_computations;

      const double full_t0 = Now();
      auto full = ShardedDatabase<Vector>::BuildFromRegistrySliced(
          std::move(slices), l2, inc_row.spec, seed);
      if (!full.ok()) {
        std::cerr << "full sliced rebuild failed: " << full.status()
                  << "\n";
        return 1;
      }
      inc_row.full_rebuild_s =
          std::min(inc_row.full_rebuild_s, Now() - full_t0);
      inc_row.full_build_distances =
          full.value().build_distance_computations();

      if (round == 0) {
        QueryEngine<Vector> full_engine(1);
        auto want = full_engine.RunBatch(full.value(), inc_batch);
        auto got = live.RunBatch(inc_batch);
        inc_row.results_match =
            got.results == want.results &&
            got.per_query_distance_computations ==
                want.per_query_distance_computations;
      }
    }
    inc_row.wall_speedup = inc_row.full_rebuild_s / inc_row.incremental_s;
    inc_row.work_ratio =
        inc_row.incremental_build_distances == 0
            ? 0.0
            : static_cast<double>(inc_row.full_build_distances) /
                  static_cast<double>(inc_row.incremental_build_distances);
  }
  std::cout << "\nincremental compaction (" << inc_row.spec << ", "
            << inc_row.shards << " shards, " << inc_row.delta_inserts
            << " inserts routed to one shard):\n\n";
  distperm::util::TablePrinter inc_table;
  inc_table.SetHeader({"fold", "wall s", "build distances", "shards built",
                       "results"});
  inc_table.AddRow({"full per-slice rebuild",
                    Fixed(inc_row.full_rebuild_s, 4),
                    std::to_string(inc_row.full_build_distances),
                    std::to_string(inc_row.shards), "-"});
  inc_table.AddRow({"incremental", Fixed(inc_row.incremental_s, 4),
                    std::to_string(inc_row.incremental_build_distances),
                    std::to_string(inc_row.shards_rebuilt),
                    inc_row.results_match ? "OK" : "MISMATCH"});
  inc_table.Print(std::cout);
  std::cout << "\nincremental compaction: " << Fixed(inc_row.wall_speedup, 1)
            << "x wall, " << Fixed(inc_row.work_ratio, 1)
            << "x build distances vs the full rebuild (gates: >= 4x both), "
            << inc_row.shards_shared << "/" << inc_row.shards
            << " shards shared, folded store "
            << (inc_row.results_match
                    ? "bit-identical to the sliced rebuild"
                    : "DIVERGES from the sliced rebuild")
            << "\n";

  // -------------------------------------------------- observability
  // Metrics overhead: the same sharded batch on two engines over one
  // database — one plain (the seed behavior: no registry, no clock
  // reads), one wired into a MetricsRegistry.  The modes run
  // interleaved and the best round per mode is kept, so scheduler and
  // frequency noise hit both sides alike.  Tracing is then checked for
  // exactness: bit-identical results and spans that partition each
  // query's distance count.
  //
  // The workload is floored at 4000 points x 48 queries regardless of
  // --points/--queries: the 3% gate measures per-task instrument cost
  // amortized over serving-regime shard searches, and on a toy store
  // the fixed clock reads dominate the task itself, which is noise for
  // this gate, not signal (the CI smoke profile runs 1500 points).
  ObservabilityResult obs_row;
  const size_t obs_points = std::max<size_t>(points, 4000);
  const size_t obs_queries = std::max<size_t>(queries, 48);
  {
    Rng obs_rng(seed);
    auto obs_data = distperm::dataset::UniformCube(obs_points, dim, &obs_rng);
    std::vector<QuerySpec<Vector>> obs_batch;
    for (size_t q = 0; q < obs_queries; ++q) {
      Vector point(dim);
      for (auto& coord : point) coord = obs_rng.NextDouble();
      obs_batch.push_back(QuerySpec<Vector>::Knn(point, k));
    }
    auto built = ShardedDatabase<Vector>::BuildFromRegistry(
        std::move(obs_data), l2, 4, "vp-tree", seed);
    if (!built.ok()) {
      std::cerr << "failed to build 'vp-tree': " << built.status() << "\n";
      return 1;
    }
    const ShardedDatabase<Vector>& db = built.value();
    distperm::obs::MetricsRegistry registry("bench");
    QueryEngine<Vector> plain_engine(&db, 4);
    QueryEngine<Vector> metered_engine(&db, 4);
    metered_engine.EnableMetrics(&registry);
    plain_engine.RunBatch(obs_batch);  // warm both pools and the scratch
    metered_engine.RunBatch(obs_batch);

    const int obs_reps = smoke ? 12 : 30;
    double best_off = 1e100;
    double best_on = 1e100;
    for (int rep = 0; rep < obs_reps; ++rep) {
      double t0 = Now();
      plain_engine.RunBatch(obs_batch);
      best_off = std::min(best_off, Now() - t0);
      t0 = Now();
      metered_engine.RunBatch(obs_batch);
      best_on = std::min(best_on, Now() - t0);
    }
    obs_row.qps_off = static_cast<double>(obs_queries) / best_off;
    obs_row.qps_on = static_cast<double>(obs_queries) / best_on;
    obs_row.overhead_fraction =
        std::max(0.0, 1.0 - obs_row.qps_on / obs_row.qps_off);

    auto traced_batch = obs_batch;
    for (auto& q : traced_batch) q.WithTrace();
    auto want = plain_engine.RunBatch(obs_batch);
    auto got = metered_engine.RunBatch(traced_batch);
    obs_row.trace_exact = got.results == want.results;
    for (size_t q = 0; q < traced_batch.size(); ++q) {
      obs_row.trace_exact =
          obs_row.trace_exact &&
          got.traces[q].total_distance_computations() ==
              got.per_query_distance_computations[q];
    }
  }
  std::cout << "\nobservability (vp-tree, n=" << obs_points << ", "
            << obs_queries << " x " << k
            << "-NN, 4 shards, 4 threads, best of " << (smoke ? 12 : 30)
            << " interleaved rounds):\n\n";
  distperm::util::TablePrinter obs_table;
  obs_table.SetHeader({"mode", "q/s", "overhead", "traces"});
  obs_table.AddRow({"metrics off", Fixed(obs_row.qps_off, 0), "-", "-"});
  obs_table.AddRow({"metrics on", Fixed(obs_row.qps_on, 0),
                    Fixed(100.0 * obs_row.overhead_fraction, 2) + "%",
                    obs_row.trace_exact ? "exact" : "MISMATCH"});
  obs_table.Print(std::cout);
  std::cout << "\nobservability: metrics overhead "
            << Fixed(100.0 * obs_row.overhead_fraction, 2)
            << "% (gate: <= 3%), traced spans "
            << (obs_row.trace_exact
                    ? "partition every query's distance count exactly "
                      "with bit-identical results"
                    : "MISMATCH")
            << "\n";

  // ---------------------------------------------------- durability
  // (a) WAL ingest tax: the same insert stream into the same store
  // spec, once purely in memory and once with a batched-fsync WAL
  // ahead of every commit.  (b) Snapshot payoff: Open() of a
  // snapshotted distperm generation (mmap + checksums + state decode)
  // versus the cold build, at 100k points so both sides are well out
  // of the noise.  (c) Recovery exactness: the durable store closed
  // and reopened must answer the batch bit-identically.
  DurabilityResult durability;
  {
    const char* tmp_env = std::getenv("TMPDIR");
    const std::string tmp_root = tmp_env != nullptr ? tmp_env : "/tmp";
    distperm::storage::Env* env = distperm::storage::Env::Default();
    const auto fresh_dir = [&](const std::string& name) {
      const std::string dir = tmp_root + "/distperm_bench_" + name;
      env->CreateDir(dir);
      auto listing = env->ListDir(dir);
      if (listing.ok()) {
        for (const std::string& file : listing.value()) {
          env->DeleteFile(dir + "/" + file);
        }
      }
      return dir;
    };
    const std::string wal_dir = fresh_dir("wal_ingest");
    const std::string snap_dir = fresh_dir("snapshot");

    // --- (a) ingest: in-memory versus WAL (fsync=batched).  The timed
    // window is the whole pipeline — the insert stream plus the
    // compaction that folds it into a new generation — because an
    // ingest session is not done until the delta is folded; a raw
    // memory append (~ns) against a logged append (~µs) would compare
    // a mutex increment to real I/O and say nothing about ingest.
    // Auto-compaction is off so both sides fold exactly once, at the
    // same point in the stream.  laesa:k=128 is the engine's exact
    // pivot-table tier at production pivot counts (section 3 runs the
    // same index at k=64): the fold pays 128 pivot distances per
    // point, which is the compute any exact-search deployment pays,
    // while the durable side's extra cost — WAL group commits plus the
    // snapshot+rename syncs — is bounded by bytes, not by k.
    const std::string ingest_base = "laesa:k=128,delta_scan_limit=20000";
    durability.ingest_spec = ingest_base + ",wal_dir=<dir>,fsync=batched";
    const size_t ingest_inserts = smoke ? 2000 : 8000;
    Rng ingest_rng(seed + 7);
    std::vector<Vector> stream;
    stream.reserve(ingest_inserts);
    for (size_t i = 0; i < ingest_inserts; ++i) {
      Vector p(dim);
      for (double& c : p) c = ingest_rng.NextDouble();
      stream.push_back(std::move(p));
    }
    const auto timed_ingest = [&](const std::string& spec,
                                  double* out_rate) {
      auto opened = LiveDatabase<Vector>::Open(data, l2, 4, spec, seed);
      if (!opened.ok()) {
        std::cerr << "durable ingest open failed: " << opened.status()
                  << "\n";
        return false;
      }
      const double t0 = Now();
      for (const Vector& p : stream) {
        if (!opened.value()->Insert(p).ok()) {
          std::cerr << "durable ingest insert failed\n";
          return false;
        }
      }
      if (!opened.value()->Compact().ok()) {
        std::cerr << "durable ingest compact failed\n";
        return false;
      }
      *out_rate = static_cast<double>(ingest_inserts) / (Now() - t0);
      return true;
    };
    // Best-of-3 per side (see the snapshot gate below for why); each
    // durable round starts from an emptied directory so every run
    // seeds, streams, and folds the same store from scratch.  The last
    // round's store is left on disk for the recovery check in (c).
    durability.memory_inserts_per_s = 0.0;
    durability.wal_inserts_per_s = 0.0;
    for (int round = 0; round < 3; ++round) {
      double rate = 0.0;
      if (!timed_ingest(ingest_base, &rate)) return 1;
      durability.memory_inserts_per_s =
          std::max(durability.memory_inserts_per_s, rate);
      fresh_dir("wal_ingest");
      if (!timed_ingest(ingest_base + ",wal_dir=" + wal_dir +
                            ",fsync=batched",
                        &rate)) {
        return 1;
      }
      durability.wal_inserts_per_s =
          std::max(durability.wal_inserts_per_s, rate);
    }
    durability.wal_ratio_pct = 100.0 * durability.wal_inserts_per_s /
                               durability.memory_inserts_per_s;

    // --- (c) recovery exactness on the store (a) just wrote: reopen
    // from disk and require bit-identical batch answers.  A compaction
    // first folds the delta so the reopened store restores the distperm
    // case's sections rather than replaying thousands of records.
    {
      const std::string spec =
          ingest_base + ",wal_dir=" + wal_dir + ",fsync=batched";
      auto reopened = LiveDatabase<Vector>::Open({}, l2, 4, spec, seed);
      if (!reopened.ok()) {
        std::cerr << "durable reopen failed: " << reopened.status() << "\n";
        durability.recovered_match = false;
      } else {
        auto got = reopened.value()->RunBatch(batch);
        // The restored generation carries the routed slicing the fold
        // produced, so the reference is a per-slice rebuild, not a
        // uniform split of the flattened dataset.
        auto fresh = ShardedDatabase<Vector>::BuildFromRegistrySliced(
            reopened.value()->Pin().MaterializeSlices(), l2,
            reopened.value()->index_spec(), seed);
        if (!fresh.ok()) {
          durability.recovered_match = false;
        } else {
          QueryEngine<Vector> fresh_engine(1);
          auto want = fresh_engine.RunBatch(fresh.value(), batch);
          durability.recovered_match = got.results == want.results;
        }
      }
    }

    // --- (b) snapshot open versus cold rebuild.  distperm:k=20 keeps
    // the build doing real work (20 anchor distances + a permutation
    // sort per point) while the snapshot restore does none of it.
    // dim 8 is inside the paper's experimental range (uniform [0,1]^d,
    // d <= 10) and packs each row into exactly one 64-byte aligned
    // stride, so the restore's byte sweeps measure payload, not
    // padding.
    const std::string snap_base = "distperm:k=20,fraction=0.2";
    const size_t snap_dim = 8;
    durability.snapshot_spec = snap_base;
    durability.snapshot_points = smoke ? 20000 : 100000;
    Rng snap_rng(seed + 8);
    auto snap_data = distperm::dataset::UniformCube(
        durability.snapshot_points, snap_dim, &snap_rng);
    // Best-of-3 on both sides, like the observability section's
    // interleaved rounds: one build or open is a single sample of a
    // noisy disk/allocator, and the gate compares medians of nothing.
    durability.cold_build_s = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      const double t0 = Now();
      auto cold = LiveDatabase<Vector>::Open(snap_data, l2, 4, snap_base,
                                             seed);
      const double elapsed = Now() - t0;
      if (!cold.ok()) {
        std::cerr << "cold build failed: " << cold.status() << "\n";
        return 1;
      }
      durability.cold_build_s = std::min(durability.cold_build_s, elapsed);
    }
    const std::string snap_spec = snap_base + ",wal_dir=" + snap_dir;
    {
      auto seeded = LiveDatabase<Vector>::Open(snap_data, l2, 4, snap_spec,
                                               seed);
      if (!seeded.ok()) {
        std::cerr << "snapshot seed failed: " << seeded.status() << "\n";
        return 1;
      }
    }
    durability.snapshot_open_s = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      const double t0 = Now();
      auto opened = LiveDatabase<Vector>::Open({}, l2, 4, snap_spec, seed);
      const double elapsed = Now() - t0;
      if (!opened.ok()) {
        std::cerr << "snapshot open failed: " << opened.status() << "\n";
        return 1;
      }
      durability.snapshot_open_s =
          std::min(durability.snapshot_open_s, elapsed);
    }
    durability.open_ratio_pct =
        100.0 * durability.snapshot_open_s / durability.cold_build_s;
  }
  std::cout << "\ndurability (WAL fsync=batched ingest, snapshot open at n="
            << durability.snapshot_points << "):\n\n";
  distperm::util::TablePrinter dur_table;
  dur_table.SetHeader({"measurement", "baseline", "durable", "ratio",
                       "recovery"});
  dur_table.AddRow({"ingest inserts/s",
                    Fixed(durability.memory_inserts_per_s, 0),
                    Fixed(durability.wal_inserts_per_s, 0),
                    Fixed(durability.wal_ratio_pct, 1) + "%",
                    durability.recovered_match ? "OK" : "MISMATCH"});
  dur_table.AddRow({"open vs cold build (s)",
                    Fixed(durability.cold_build_s, 3),
                    Fixed(durability.snapshot_open_s, 3),
                    Fixed(durability.open_ratio_pct, 1) + "%", "-"});
  dur_table.Print(std::cout);
  std::cout << "\ndurability: WAL ingest at "
            << Fixed(durability.wal_ratio_pct, 1)
            << "% of the in-memory rate (gate: >= 60%), snapshot open at "
            << Fixed(durability.open_ratio_pct, 1)
            << "% of the cold rebuild (gate: < 10%), recovered store "
            << (durability.recovered_match
                    ? "bit-identical to its pre-close answers"
                    : "DIVERGES from its pre-close answers")
            << "\n";

  // ------------------------------------------------------ serving
  // The network front door versus the in-process engine it fronts.
  // Both sides run one engine thread over the same LiveDatabase; the
  // wire side adds codec + epoll + TCP loopback, and the cached side
  // answers from the distance-permutation cache after a warm pass.
  // Every wire round is verified against the in-process reference —
  // ids, distances, and per-query distance counts must be
  // bit-identical (the cache probe's site distances are accounted in
  // perm_cache_probe_distances_total, never in query stats).
  ServingResult serving;
  serving.spec = "vp-tree";
  {
    distperm::engine::LiveOptions serve_live_options;
    serve_live_options.query_threads = 1;
    auto opened = LiveDatabase<Vector>::Open(data, l2, 4, serving.spec,
                                             seed, serve_live_options);
    if (!opened.ok()) {
      std::cerr << "serving: open failed: " << opened.status() << "\n";
      return 1;
    }
    LiveDatabase<Vector>& live = *opened.value();

    const int serve_reps = smoke ? 12 : 24;
    live.RunBatch(batch);  // warm the scratch buffers
    double best_local = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < serve_reps; ++rep) {
      const double t0 = Now();
      live.RunBatch(batch);
      best_local = std::min(best_local, Now() - t0);
    }
    serving.inproc_qps = static_cast<double>(queries) / best_local;
    const auto want = live.RunBatch(batch);

    distperm::server::SearchServer<Vector>::Options server_options;
    server_options.engine_threads = 1;
    server_options.perm_cache_capacity = 4096;
    server_options.perm_cache_sites = 12;
    distperm::server::SearchServer<Vector> server(&live, server_options);
    if (auto status = server.Start(0); !status.ok()) {
      std::cerr << "serving: " << status << "\n";
      return 1;
    }
    std::thread serve_thread([&server]() { server.Run(); });
    bool wire_up = true;
    {
      auto connected =
          distperm::net::Client::Connect("127.0.0.1", server.port());
      if (!connected.ok()) {
        std::cerr << "serving: " << connected.status() << "\n";
        wire_up = false;
        serving.results_match = false;
      } else {
        distperm::net::Client& client = *connected.value();
        // One wire round: the whole batch pipelined on one
        // connection, every response checked against the reference.
        size_t round_hits = 0;
        const auto wire_round = [&](bool no_cache) {
          auto responses = client.SearchBatch(batch, no_cache);
          if (!responses.ok()) {
            std::cerr << "serving: " << responses.status() << "\n";
            serving.results_match = false;
            return false;
          }
          round_hits = 0;
          for (size_t q = 0; q < responses.value().size(); ++q) {
            const auto& r = responses.value()[q];
            if (!r.status.ok() || r.results != want.results[q] ||
                r.stats.distance_computations !=
                    want.per_query_distance_computations[q]) {
              serving.results_match = false;
            }
            if (r.cache_hit) ++round_hits;
          }
          return true;
        };

        // (a) uncached loopback: kRequestNoCache skips the cache
        // probe entirely, so this is the plain serving path — decode,
        // admit, engine, encode.
        double best_wire = std::numeric_limits<double>::infinity();
        if (wire_round(true)) {  // warm the connection
          for (int rep = 0; rep < serve_reps; ++rep) {
            const double t0 = Now();
            if (!wire_round(true)) break;
            best_wire = std::min(best_wire, Now() - t0);
          }
        }
        serving.loopback_qps = static_cast<double>(queries) / best_wire;
        serving.uncached_qps = serving.loopback_qps;
        serving.loopback_ratio_pct =
            100.0 * serving.loopback_qps / serving.inproc_qps;

        // (b) cached: the first default-flag pass fills the cache,
        // later rounds replay the stored responses verbatim.
        double best_cached = std::numeric_limits<double>::infinity();
        if (wire_round(false)) {  // fill the cache
          for (int rep = 0; rep < serve_reps; ++rep) {
            const double t0 = Now();
            if (!wire_round(false)) break;
            best_cached = std::min(best_cached, Now() - t0);
          }
        }
        serving.cached_qps = static_cast<double>(queries) / best_cached;
        serving.cache_hits = round_hits;
        serving.cached_speedup =
            serving.cached_qps / serving.uncached_qps;
      }
    }
    server.Shutdown();
    serve_thread.join();
    if (!wire_up) {
      std::cerr << "serving: loopback connection failed\n";
    }
  }
  std::cout << "\nserving (" << serving.spec
            << ", 1 engine thread, loopback TCP, best of "
            << (smoke ? 12 : 24) << " rounds):\n\n";
  distperm::util::TablePrinter serve_table;
  serve_table.SetHeader({"path", "q/s", "ratio", "cache hits", "results"});
  serve_table.AddRow({"in-process", Fixed(serving.inproc_qps, 0), "100%",
                      "-", "-"});
  serve_table.AddRow({"loopback (uncached)", Fixed(serving.loopback_qps, 0),
                      Fixed(serving.loopback_ratio_pct, 1) + "%", "-",
                      serving.results_match ? "OK" : "MISMATCH"});
  serve_table.AddRow({"loopback (perm cache)", Fixed(serving.cached_qps, 0),
                      Fixed(serving.cached_speedup, 2) + "x uncached",
                      std::to_string(serving.cache_hits),
                      serving.results_match ? "OK" : "MISMATCH"});
  serve_table.Print(std::cout);
  std::cout << "\nserving: loopback at "
            << Fixed(serving.loopback_ratio_pct, 1)
            << "% of in-process (gate: >= 50%), warm cache replays at "
            << Fixed(serving.cached_speedup, 2)
            << "x the uncached wire rate (gate: >= 5x), wire answers "
            << (serving.results_match
                    ? "bit-identical to the in-process engine"
                    : "DIVERGE from the in-process engine")
            << "\n";

  // --------------------------------------------------- replication
  // How fast a fresh replica catches up over the wire versus the local
  // recovery path replaying the same WAL delta.  A primary is seeded
  // with the base dataset (folded into its generation-1 snapshot) plus
  // an unfolded delta of R records; (a) reopening that directory
  // replays the R records through recovery, best-of-3; (b) a replica
  // bootstraps the snapshot over loopback TCP, then the timed window
  // covers the streamed records a poller observes between the first
  // applied record and applied_records() == R — framed records plus
  // the replica's own WAL append per record, with connect/handshake
  // constants excluded.  Catch-up must hold >= 50% of the local replay rate
  // (wall-clock, so --smoke defers it to the CI-side JSON check);
  // convergence — replica bit-identical to the primary, including
  // batch answers — is deterministic and gated always.
  ReplicationResult replication;
  replication.spec = "vp-tree";
  {
    const char* tmp_env = std::getenv("TMPDIR");
    const std::string tmp_root = tmp_env != nullptr ? tmp_env : "/tmp";
    distperm::storage::Env* env = distperm::storage::Env::Default();
    const auto fresh_dir = [&](const std::string& name) {
      const std::string dir = tmp_root + "/distperm_bench_" + name;
      env->CreateDir(dir);
      if (auto listing = env->ListDir(dir); listing.ok()) {
        for (const std::string& file : listing.value()) {
          env->DeleteFile(dir + "/" + file);
        }
      }
      return dir;
    };
    const std::string primary_dir = fresh_dir("repl_primary");
    const std::string replica_dir = fresh_dir("repl_replica");
    // delta_scan_limit is a live knob (stripped from the identity the
    // handshake checks); raised so the delta holds the whole stream
    // without backpressure on either side.
    const std::string primary_spec = std::string(replication.spec) +
                                     ":delta_scan_limit=20000,wal_dir=" +
                                     primary_dir;

    replication.records = smoke ? 4000 : 12000;
    Rng repl_rng(seed + 9);
    {
      auto seeded = LiveDatabase<Vector>::Open(data, l2, 4, primary_spec,
                                               seed);
      if (!seeded.ok()) {
        std::cerr << "replication seed failed: " << seeded.status() << "\n";
        return 1;
      }
      for (size_t i = 0; i < replication.records; ++i) {
        Vector p(dim);
        for (double& c : p) c = repl_rng.NextDouble();
        if (!seeded.value()->Insert(p).ok()) {
          std::cerr << "replication seed insert failed\n";
          return 1;
        }
      }
    }  // closed without Compact(): the delta stays in the WAL

    // (a) local replay: every reopen replays the same R records.
    double best_replay = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      const double t0 = Now();
      auto reopened = LiveDatabase<Vector>::Open({}, l2, 4, primary_spec,
                                                 seed);
      const double elapsed = Now() - t0;
      if (!reopened.ok()) {
        std::cerr << "replication reopen failed: " << reopened.status()
                  << "\n";
        return 1;
      }
      best_replay = std::min(best_replay, elapsed);
    }
    replication.replay_rps =
        static_cast<double>(replication.records) / best_replay;

    // (b) wire catch-up into a fresh replica.
    auto primary = LiveDatabase<Vector>::Open({}, l2, 4, primary_spec,
                                              seed);
    if (!primary.ok()) {
      std::cerr << "replication primary open failed: " << primary.status()
                << "\n";
      return 1;
    }
    distperm::server::SearchServer<Vector>::Options primary_options;
    primary_options.engine_threads = 1;
    distperm::server::SearchServer<Vector> primary_server(
        primary.value().get(), primary_options);
    if (auto status = primary_server.Start(0); !status.ok()) {
      std::cerr << "replication primary start: " << status << "\n";
      return 1;
    }
    std::thread primary_thread([&primary_server]() { primary_server.Run(); });

    typename distperm::server::ReplicaServer<Vector>::Options replica_options;
    replica_options.dir = replica_dir;
    replica_options.index_spec = replication.spec;
    replica_options.seed = seed;
    replica_options.shard_count = 4;
    replica_options.live_knobs = "delta_scan_limit=20000";
    replica_options.replication.primary_port = primary_server.port();
    replica_options.replication.idle_timeout_ms = 250;
    const double boot0 = Now();
    auto replica =
        distperm::server::ReplicaServer<Vector>::Open(l2, replica_options);
    replication.bootstrap_s = Now() - boot0;
    if (!replica.ok()) {
      std::cerr << "replica open failed: " << replica.status() << "\n";
      return 1;
    }
    if (auto status = replica.value()->Start(0); !status.ok()) {
      std::cerr << "replica start: " << status << "\n";
      return 1;
    }
    const double start0 = Now();
    std::thread replica_thread([&replica]() { replica.value()->Run(); });
    // The timed window opens at the first applied record the poller
    // observes, so connect + handshake + thread-spawn constants don't
    // pollute the rate; the applied count is sampled at both window
    // edges because on a single-core host the apply thread can run an
    // arbitrary burst between two polls.
    const double deadline = Now() + 60.0;
    while (replica.value()->replication().applied_records() < 1 &&
           Now() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    const double t0 = Now();
    const uint64_t n0 = replica.value()->replication().applied_records();
    while (replica.value()->replication().applied_records() <
               replication.records &&
           Now() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    const double t1 = Now();
    const uint64_t n1 = replica.value()->replication().applied_records();
    replication.converged = n1 == replication.records;
    // A fast stream can outrun the poller: when most records land
    // before the first observation the [t0, t1] window is degenerate.
    // Use the in-window rate only when the window saw at least half
    // the stream; otherwise fall back to the Start()-anchored span — a
    // conservative lower bound that includes the connect + handshake
    // constants.
    if (n1 > n0 && n1 - n0 >= replication.records / 2) {
      replication.catchup_rps =
          static_cast<double>(n1 - n0) / (t1 - t0);
    } else {
      replication.catchup_rps = static_cast<double>(n1) / (t1 - start0);
    }
    if (replication.converged) {
      replication.converged =
          replica.value()->db().generation_number() ==
              primary.value()->generation_number() &&
          replica.value()->db().delta_entries() ==
              primary.value()->delta_entries() &&
          replica.value()->db().Pin().Materialize() ==
              primary.value()->Pin().Materialize() &&
          replica.value()->db().RunBatch(batch).results ==
              primary.value()->RunBatch(batch).results;
    }
    replica.value()->Shutdown();
    replica_thread.join();
    primary_server.Shutdown();
    primary_thread.join();
  }
  replication.catchup_ratio_pct =
      100.0 * replication.catchup_rps / replication.replay_rps;
  std::cout << "\nreplication (" << replication.spec << ", "
            << replication.records
            << "-record WAL delta, loopback TCP):\n\n";
  distperm::util::TablePrinter repl_table;
  repl_table.SetHeader({"path", "records/s", "ratio", "converged"});
  repl_table.AddRow({"local WAL replay", Fixed(replication.replay_rps, 0),
                     "100%", "-"});
  repl_table.AddRow({"wire catch-up", Fixed(replication.catchup_rps, 0),
                     Fixed(replication.catchup_ratio_pct, 1) + "%",
                     replication.converged ? "OK" : "DIVERGED"});
  repl_table.Print(std::cout);
  std::cout << "\nreplication: wire catch-up at "
            << Fixed(replication.catchup_ratio_pct, 1)
            << "% of local WAL replay (gate: >= 50%), snapshot bootstrap "
            << Fixed(replication.bootstrap_s, 3) << "s, replica "
            << (replication.converged
                    ? "bit-identical to the primary after catch-up"
                    : "DIVERGES from the primary")
            << "\n";
  if (std::thread::hardware_concurrency() < 2) {
    std::cout << "replication: single-core host — the primary's send "
                 "side and the replica's apply side serialize onto one "
                 "CPU, so the catch-up ratio is reported but the gate "
                 "is deferred to the multi-core CI runner\n";
  }

  const bool reduction_ok = best_reduction >= 25.0;
  // The ratio is the bench's only wall-clock gate, so --smoke (CI on
  // shared runners) checks just the count/equality half; full runs
  // enforce the 70% floor.
  const bool ingest_ok = (smoke || live_row.ratio_pct >= 70.0) &&
                         live_row.results_match;
  // Bit-identity, the shard accounting, and the distance-computation
  // ratio are deterministic and always gated; the wall-clock speedup
  // is deferred to the CI-side JSON check under --smoke like every
  // other wall gate.
  const bool incremental_ok =
      inc_row.results_match && inc_row.shards_rebuilt == 1 &&
      inc_row.shards_shared == inc_row.shards - 1 &&
      inc_row.work_ratio >= 4.0 &&
      (smoke || inc_row.wall_speedup >= 4.0);
  // Trace exactness is deterministic and always gated; the 3% overhead
  // floor is wall-clock, so --smoke reports it for the CI-side check
  // without asserting here.
  const bool obs_ok = obs_row.trace_exact &&
                      (smoke || obs_row.overhead_fraction <= 0.03);
  // Recovery exactness is deterministic and always gated; the two
  // ratios are wall-clock, so --smoke defers them to the CI-side JSON
  // check.
  const bool durability_ok =
      durability.recovered_match &&
      (smoke || (durability.wal_ratio_pct >= 60.0 &&
                 durability.open_ratio_pct < 10.0));
  // Wire bit-identity is deterministic and always gated; the loopback
  // ratio and cache speedup are wall-clock, so --smoke defers them to
  // the CI-side JSON check.
  const bool serving_ok =
      serving.results_match &&
      (smoke || (serving.loopback_ratio_pct >= 50.0 &&
                 serving.cached_speedup >= 5.0));
  // Convergence is deterministic and always gated.  The catch-up ratio
  // is wall-clock AND assumes the primary's send side and the replica's
  // apply side overlap as a pipeline; on a single-core host both ends
  // serialize onto one CPU while the replay baseline is one thread, so
  // the ratio is not meaningful there — `gated` records whether the
  // host can enforce it, and the CI-side JSON check respects the flag
  // (hosted runners have >= 2 cores, so CI always enforces).  --smoke
  // additionally defers the in-binary check to that CI-side gate, like
  // every other wall-clock ratio.
  replication.gated = std::thread::hardware_concurrency() >= 2;
  const bool replication_ok =
      replication.converged &&
      (smoke || !replication.gated ||
       replication.catchup_ratio_pct >= 50.0);
  const bool pass = cost_model_ok && coop_results_ok && build_counts_ok &&
                    reduction_ok && ingest_ok && incremental_ok && obs_ok &&
                    durability_ok && serving_ok && replication_ok;
  const bool wrote =
      WriteJson(out_path, points, queries, dim, coop_dim, k, seed, smoke,
                hardware, throughput_rows, coop_rows, build_rows, live_row,
                inc_row, obs_row, durability, serving, replication, pass);
  if (!pass || !wrote) {
    std::cout << "\nRESULT: "
              << (strict ? "FAIL" : "WARN (--no-strict)")
              << " — cost_model=" << (cost_model_ok ? "ok" : "bad")
              << " coop_results=" << (coop_results_ok ? "ok" : "bad")
              << " coop_reduction="
              << (reduction_ok ? "ok" : "below 25%")
              << " build_determinism=" << (build_counts_ok ? "ok" : "bad")
              << " live_ingest=" << (ingest_ok ? "ok" : "below 70% or bad")
              << " incremental_compaction="
              << (incremental_ok ? "ok" : "below 4x or bad")
              << " observability="
              << (obs_ok ? "ok" : "overhead above 3% or traces bad")
              << " durability="
              << (durability_ok ? "ok" : "ratios out of gate or recovery bad")
              << " serving="
              << (serving_ok ? "ok" : "gates missed or wire answers bad")
              << " replication="
              << (replication_ok ? "ok" : "below 50% or diverged")
              << " json=" << (wrote ? "ok" : "not written") << "\n";
    return strict ? 1 : 0;
  }
  std::cout << "\nRESULT: PASS\n";
  return 0;
}
