// Reproduces the message of paper Figure 7: a database may fail to hit
// every cell of the generalized Voronoi diagram, in two ways —
//   (a) sampling: cells empty just because the database is finite; a
//       larger database eventually hits them;
//   (b) range limitation: cells lying wholly outside the data's value
//       range that no amount of data will ever hit.
//
// For fixed sites in the plane the harness sweeps the database size and
// reports cells hit, first for data spanning a window that covers all
// cells, then for range-limited data — whose curve plateaus strictly
// below the total, exactly Fig. 7's cross-hatched cells.
//
// Usage: fig7_cell_coverage [--sites=6] [--seed=13]

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/euclidean_count.h"
#include "geometry/cell_enum.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::geometry::EnumerateCellsBySampling;
using distperm::metric::Vector;
using distperm::util::Rng;
using distperm::util::TablePrinter;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t k = static_cast<size_t>(flags.value().GetInt("sites", 6));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 13));

  Rng rng(seed);
  std::vector<Vector> sites(k, Vector(2));
  for (auto& site : sites) {
    site[0] = rng.NextDouble(0.2, 0.8);
    site[1] = rng.NextDouble(0.2, 0.8);
  }

  // Reference: the number of cells reachable from a wide window,
  // estimated with a heavy probe.
  auto reference =
      EnumerateCellsBySampling(sites, 2.0, -4.0, 5.0, 3000000, &rng);
  distperm::core::EuclideanCounter counter;
  std::cout << "Fig. 7: database coverage of the permutation cells\n\n";
  std::cout << "k = " << k << " sites in [0.2, 0.8]^2; Theorem 7 maximum "
            << counter.Count64(2, static_cast<int>(k))
            << "; cells reachable in the wide window [-4, 5]^2: "
            << reference.count() << "\n\n";

  TablePrinter table;
  table.SetHeader({"database size", "cells hit (wide data)",
                   "cells hit (range-limited data)"});
  for (uint64_t n : {100ULL, 1000ULL, 10000ULL, 100000ULL, 1000000ULL}) {
    Rng wide_rng(seed + 1);
    auto wide = EnumerateCellsBySampling(sites, 2.0, -4.0, 5.0, n,
                                         &wide_rng);
    Rng narrow_rng(seed + 2);
    // Range-limited data: the grey box of Fig. 7 — values confined to
    // the sites' own range, so outer cells are unreachable forever.
    auto narrow = EnumerateCellsBySampling(sites, 2.0, 0.25, 0.75, n,
                                           &narrow_rng);
    table.AddRow({std::to_string(n), std::to_string(wide.count()),
                  std::to_string(narrow.count())});
  }
  table.Print(std::cout);
  std::cout << "\nReading guide: the wide-data curve climbs toward the "
               "reachable total as the database grows (sampling misses "
               "vanish); the range-limited curve plateaus strictly below "
               "it — those are Fig. 7's cross-hatched cells that will "
               "never appear no matter how large the database grows.\n";
  return 0;
}
