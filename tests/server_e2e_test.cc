// Loopback end-to-end: a SearchServer answering the binary protocol
// must be indistinguishable from calling QueryEngine::RunBatch in
// process — bit-identical results, statuses, truncation flags, AND
// per-query distance counts — for every index spec in the registry.
// On top of that contract: writes over the wire are immediately
// visible, admission control answers kUnavailable instead of dropping,
// malformed streams get a kError frame then teardown, the perm cache
// replays bit-identically and invalidates across mutations and
// compactions, the bound path only ever reduces distance computations,
// and a durable store survives serve -> shutdown -> reopen with its
// WAL tail intact.
//
// The LiveClock suite pins the pin-free accessor semantics the cache
// tags rely on.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dataset/vector_gen.h"
#include "engine/live_database.h"
#include "engine/query_engine.h"
#include "metric/lp.h"
#include "net/client.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "server/search_server.h"
#include "storage/env.h"
#include "util/rng.h"

namespace distperm {
namespace server {
namespace {

using engine::LiveDatabase;
using engine::QueryEngine;
using index::SearchRequest;
using metric::Vector;
using net::Client;
using net::WireCode;
using net::WireSearchResponse;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

const std::vector<std::string> kAllSpecs = {
    "linear-scan",          "aesa",
    "vp-tree",              "gh-tree",
    "laesa:k=4",            "iaesa:k=4",
    "distperm:k=6,fraction=0.5", "distperm-prefix:k=6,prefix=2"};

/// A LiveDatabase plus a SearchServer running on its own thread; the
/// destructor drains and joins.
struct TestServer {
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<LiveDatabase<Vector>> db;
  std::unique_ptr<SearchServer<Vector>> server;
  std::thread thread;

  ~TestServer() {
    if (server) {
      server->Shutdown();
      thread.join();
    }
    // The server (and its engine callbacks) must die before the
    // registry they record into.
    server.reset();
    db.reset();
  }
};

std::unique_ptr<TestServer> StartServer(
    const std::string& spec, size_t n, size_t dim, uint64_t seed,
    typename SearchServer<Vector>::Options options = {},
    const std::string& wal_dir = "") {
  auto ts = std::make_unique<TestServer>();
  ts->metrics = std::make_unique<obs::MetricsRegistry>("server_e2e");
  util::Rng rng(seed);
  std::vector<Vector> data;
  std::string live_spec = spec;
  if (!wal_dir.empty()) {
    live_spec += (live_spec.find(':') == std::string::npos ? ":" : ",");
    live_spec += "wal_dir=" + wal_dir;
    storage::Env* env = storage::Env::Default();
    bool has_snapshot = false;
    if (auto listing = env->ListDir(wal_dir); listing.ok()) {
      for (const std::string& name : listing.value()) {
        if (name.rfind("snapshot-", 0) == 0) has_snapshot = true;
      }
    }
    if (!has_snapshot) data = dataset::UniformCube(n, dim, &rng);
  } else {
    data = dataset::UniformCube(n, dim, &rng);
  }
  auto opened =
      LiveDatabase<Vector>::Open(std::move(data), L2(), /*shard_count=*/3,
                                 live_spec, seed);
  EXPECT_TRUE(opened.ok()) << opened.status();
  if (!opened.ok()) return nullptr;
  ts->db = std::move(opened).value();
  options.metrics = ts->metrics.get();
  ts->server =
      std::make_unique<SearchServer<Vector>>(ts->db.get(), options);
  auto started = ts->server->Start(0);
  EXPECT_TRUE(started.ok()) << started;
  if (!started.ok()) return nullptr;
  SearchServer<Vector>* server = ts->server.get();
  ts->thread = std::thread([server]() { server->Run(); });
  return ts;
}

std::unique_ptr<Client> Connect(const TestServer& ts) {
  auto client = Client::Connect("127.0.0.1", ts.server->port());
  EXPECT_TRUE(client.ok()) << client.status();
  return client.ok() ? std::move(client).value() : nullptr;
}

/// A mixed batch exercising the full request surface.
std::vector<SearchRequest<Vector>> MixedBatch(size_t dim, uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<Vector> probes = dataset::UniformCube(24, dim, &rng);
  std::vector<SearchRequest<Vector>> batch;
  for (size_t i = 0; i < probes.size(); ++i) {
    switch (i % 4) {
      case 0:
        batch.push_back(SearchRequest<Vector>::Knn(probes[i], 5));
        break;
      case 1:
        batch.push_back(SearchRequest<Vector>::Range(probes[i], 0.4));
        break;
      case 2: {
        SearchRequest<Vector> request =
            SearchRequest<Vector>::KnnWithinRadius(probes[i], 3, 0.8);
        request.shard_scheduling = index::ShardScheduling::kCooperative;
        batch.push_back(request);
        break;
      }
      default: {
        SearchRequest<Vector> request =
            SearchRequest<Vector>::Knn(probes[i], 4);
        request.max_distance_computations = 150;
        request.split_distance_budget = true;
        batch.push_back(request);
        break;
      }
    }
  }
  return batch;
}

void ExpectBitIdentical(const WireSearchResponse& wire,
                        const QueryEngine<Vector>::BatchOutput& local,
                        size_t i, const std::string& context) {
  ASSERT_TRUE(wire.status.ok())
      << context << " query " << i << ": " << wire.status.message;
  ASSERT_TRUE(local.statuses[i].ok()) << context << " query " << i;
  EXPECT_EQ(wire.truncated, local.truncated[i]) << context << " query " << i;
  EXPECT_EQ(wire.stats.distance_computations,
            local.per_query_distance_computations[i])
      << context << " query " << i;
  ASSERT_EQ(wire.results.size(), local.results[i].size())
      << context << " query " << i;
  for (size_t r = 0; r < wire.results.size(); ++r) {
    EXPECT_EQ(wire.results[r].id, local.results[i][r].id)
        << context << " query " << i << " result " << r;
    EXPECT_EQ(wire.results[r].distance, local.results[i][r].distance)
        << context << " query " << i << " result " << r;
  }
}

TEST(ServerE2E, LoopbackBitIdenticalAcrossRegistrySpecs) {
  for (const std::string& spec : kAllSpecs) {
    SCOPED_TRACE(spec);
    auto ts = StartServer(spec, 500, 6, 20260809);
    ASSERT_NE(ts, nullptr);
    auto client = Connect(*ts);
    ASSERT_NE(client, nullptr);

    const std::vector<SearchRequest<Vector>> batch = MixedBatch(6, 7);
    QueryEngine<Vector> local_engine(1);
    const auto local = ts->db->RunBatch(local_engine, batch);

    auto remote = client->SearchBatch(batch);
    ASSERT_TRUE(remote.ok()) << remote.status();
    ASSERT_EQ(remote.value().size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ExpectBitIdentical(remote.value()[i], local, i, spec);
      EXPECT_FALSE(remote.value()[i].cache_hit);
      EXPECT_EQ(remote.value()[i].generation,
                ts->db->generation_number());
    }
  }
}

TEST(ServerE2E, PingPong) {
  auto ts = StartServer("vp-tree", 100, 4, 1);
  ASSERT_NE(ts, nullptr);
  auto client = Connect(*ts);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());
}

TEST(ServerE2E, InsertAndRemoveVisibleOverTheWire) {
  auto ts = StartServer("vp-tree", 300, 4, 2);
  ASSERT_NE(ts, nullptr);
  auto client = Connect(*ts);
  ASSERT_NE(client, nullptr);

  // Insert a point far outside the unit cube: its own nearest
  // neighbour, trivially.
  const Vector outlier{50.0, 50.0, 50.0, 50.0};
  auto inserted = client->Insert(outlier);
  ASSERT_TRUE(inserted.ok()) << inserted.status();
  ASSERT_TRUE(inserted.value().status.ok());
  const uint64_t id = inserted.value().id;
  EXPECT_EQ(id, 300u);

  auto found = client->Search(SearchRequest<Vector>::Knn(outlier, 1));
  ASSERT_TRUE(found.ok()) << found.status();
  ASSERT_EQ(found.value().results.size(), 1u);
  EXPECT_EQ(found.value().results[0].id, id);
  EXPECT_EQ(found.value().results[0].distance, 0.0);

  auto removed = client->Remove(id);
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_TRUE(removed.value().ok());

  auto gone = client->Search(SearchRequest<Vector>::Knn(outlier, 1));
  ASSERT_TRUE(gone.ok());
  ASSERT_EQ(gone.value().results.size(), 1u);
  EXPECT_NE(gone.value().results[0].id, id);

  // Removing it again reports the library's NotFound over the wire.
  auto again = client->Remove(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().code, WireCode::kNotFound);
}

TEST(ServerE2E, AdmissionBudgetRejectsWithUnavailable) {
  SearchServer<Vector>::Options options;
  options.max_inflight_distance_budget = 1;  // below one search's cost
  auto ts = StartServer("linear-scan", 400, 4, 3, options);
  ASSERT_NE(ts, nullptr);
  auto client = Connect(*ts);
  ASSERT_NE(client, nullptr);

  util::Rng rng(5);
  const std::vector<Vector> probes = dataset::UniformCube(3, 4, &rng);
  std::vector<SearchRequest<Vector>> batch;
  for (const Vector& probe : probes) {
    batch.push_back(SearchRequest<Vector>::Knn(probe, 3));
  }
  auto responses = client->SearchBatch(batch);
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses.value().size(), 3u);
  // The first is always admitted (progress guarantee); the rest are
  // over budget and get an explicit kUnavailable, not a dropped frame.
  EXPECT_TRUE(responses.value()[0].status.ok());
  EXPECT_GT(responses.value()[0].results.size(), 0u);
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(responses.value()[i].status.code, WireCode::kUnavailable);
    EXPECT_TRUE(responses.value()[i].results.empty());
  }
  EXPECT_EQ(ts->server->overload_rejected(), 2u);
}

TEST(ServerE2E, PerConnectionRequestCapRejects) {
  SearchServer<Vector>::Options options;
  options.max_requests_per_connection = 2;
  auto ts = StartServer("vp-tree", 200, 4, 4, options);
  ASSERT_NE(ts, nullptr);
  auto client = Connect(*ts);
  ASSERT_NE(client, nullptr);

  util::Rng rng(6);
  const std::vector<Vector> probes = dataset::UniformCube(4, 4, &rng);
  std::vector<SearchRequest<Vector>> batch;
  for (const Vector& probe : probes) {
    batch.push_back(SearchRequest<Vector>::Knn(probe, 2));
  }
  auto responses = client->SearchBatch(batch);
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses.value().size(), 4u);
  EXPECT_TRUE(responses.value()[0].status.ok());
  EXPECT_TRUE(responses.value()[1].status.ok());
  EXPECT_EQ(responses.value()[2].status.code, WireCode::kUnavailable);
  EXPECT_EQ(responses.value()[3].status.code, WireCode::kUnavailable);
}

TEST(ServerE2E, GarbageGetsErrorFrameThenTeardown) {
  auto ts = StartServer("vp-tree", 100, 4, 8);
  ASSERT_NE(ts, nullptr);
  auto client = Connect(*ts);
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->SendRaw("this is not a frame at all......").ok());
  auto frame = client->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame.value().first, net::MessageType::kError);
  auto error = net::DecodeWireStatus(
      reinterpret_cast<const uint8_t*>(frame.value().second.data()),
      frame.value().second.size());
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().code, WireCode::kInvalidArgument);
  // After the error frame the server hangs up.
  EXPECT_FALSE(client->ReadFrame().ok());
  EXPECT_GE(ts->server->decode_errors(), 1u);

  // A fresh connection still works: the blast radius was one socket.
  auto client2 = Connect(*ts);
  ASSERT_NE(client2, nullptr);
  EXPECT_TRUE(client2->Ping().ok());

  // Corrupted CRC on an otherwise valid frame: same contract.
  std::string payload;
  net::EncodeSearchRequest(
      &payload, SearchRequest<Vector>::Knn(Vector{0.1, 0.1, 0.1, 0.1}, 1));
  std::string bytes = net::EncodeFrame(net::MessageType::kSearch, payload);
  bytes[net::kFrameHeaderSize] ^= 0x01;
  ASSERT_TRUE(client2->SendRaw(bytes).ok());
  auto crc_frame = client2->ReadFrame();
  ASSERT_TRUE(crc_frame.ok());
  EXPECT_EQ(crc_frame.value().first, net::MessageType::kError);
  EXPECT_FALSE(client2->ReadFrame().ok());
}

TEST(ServerE2E, CacheHitsReplayBitIdentically) {
  SearchServer<Vector>::Options options;
  options.perm_cache_capacity = 1024;
  options.perm_cache_sites = 8;
  auto ts = StartServer("vp-tree", 500, 6, 9, options);
  ASSERT_NE(ts, nullptr);
  auto client = Connect(*ts);
  ASSERT_NE(client, nullptr);

  const std::vector<SearchRequest<Vector>> batch = MixedBatch(6, 11);
  auto first = client->SearchBatch(batch);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = client->SearchBatch(batch);
  ASSERT_TRUE(second.ok()) << second.status();

  ASSERT_EQ(first.value().size(), second.value().size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const WireSearchResponse& a = first.value()[i];
    const WireSearchResponse& b = second.value()[i];
    EXPECT_FALSE(a.cache_hit);
    EXPECT_TRUE(b.cache_hit) << "query " << i;
    EXPECT_EQ(a.generation, b.generation);
    EXPECT_EQ(a.truncated, b.truncated);
    EXPECT_EQ(a.stats.distance_computations, b.stats.distance_computations);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t r = 0; r < a.results.size(); ++r) {
      EXPECT_EQ(a.results[r].id, b.results[r].id);
      EXPECT_EQ(a.results[r].distance, b.results[r].distance);
    }
  }
  const PermCacheStore* store = ts->server->cache_store();
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->hits(), batch.size());
  EXPECT_EQ(store->misses(), batch.size());

  // The no-cache flag bypasses the warm cache.
  auto uncached = client->SearchBatch(batch, /*no_cache=*/true);
  ASSERT_TRUE(uncached.ok());
  for (const WireSearchResponse& response : uncached.value()) {
    EXPECT_FALSE(response.cache_hit);
  }
  EXPECT_EQ(store->hits(), batch.size());
}

TEST(ServerE2E, CacheInvalidatesAcrossMutationsAndCompaction) {
  SearchServer<Vector>::Options options;
  options.perm_cache_capacity = 1024;
  options.perm_cache_sites = 8;
  auto ts = StartServer("vp-tree", 400, 5, 10, options);
  ASSERT_NE(ts, nullptr);
  auto client = Connect(*ts);
  ASSERT_NE(client, nullptr);

  const SearchRequest<Vector> request = SearchRequest<Vector>::Knn(
      Vector{0.5, 0.5, 0.5, 0.5, 0.5}, 6);
  ASSERT_TRUE(client->Search(request).ok());
  ASSERT_TRUE(client->Search(request).value().cache_hit);

  // An insert over the wire bumps the mutation clock: the next probe
  // misses, re-executes against the post-insert view, and refills.
  const Vector near{0.5, 0.5, 0.5, 0.5, 0.501};
  ASSERT_TRUE(client->Insert(near).ok());
  auto after_insert = client->Search(request);
  ASSERT_TRUE(after_insert.ok());
  EXPECT_FALSE(after_insert.value().cache_hit);
  bool sees_insert = false;
  for (const auto& result : after_insert.value().results) {
    if (result.id == 400u) sees_insert = true;
  }
  EXPECT_TRUE(sees_insert) << "post-insert execution must see the insert";
  ASSERT_TRUE(client->Search(request).value().cache_hit);

  // A compaction swaps the generation (ids remap): cached answers die;
  // the re-executed answer matches a local run on the new generation.
  ASSERT_TRUE(ts->db->Compact().ok());
  auto after_compact = client->Search(request);
  ASSERT_TRUE(after_compact.ok());
  EXPECT_FALSE(after_compact.value().cache_hit);
  EXPECT_EQ(after_compact.value().generation,
            ts->db->generation_number());
  QueryEngine<Vector> local_engine(1);
  const auto local = ts->db->RunBatch(local_engine, {request});
  ExpectBitIdentical(after_compact.value(), local, 0, "post-compact");
  const PermCacheStore* store = ts->server->cache_store();
  ASSERT_NE(store, nullptr);
  EXPECT_GE(store->invalidations(), 2u);
}

TEST(ServerE2E, BoundSeedingOnlyReducesDistanceComputations) {
  SearchServer<Vector>::Options options;
  options.perm_cache_capacity = 1024;
  options.perm_cache_sites = 8;
  options.perm_cache_prefix = 2;
  auto ts = StartServer("vp-tree", 1500, 4, 12, options);
  ASSERT_NE(ts, nullptr);
  auto client = Connect(*ts);
  ASSERT_NE(client, nullptr);

  // Warm the bound table from one query...
  const Vector anchor{0.31, 0.62, 0.45, 0.58};
  ASSERT_TRUE(
      client->Search(SearchRequest<Vector>::Knn(anchor, 5)).ok());

  // ...then ask a *different* nearby query: full key misses, but the
  // permutation-prefix cell matches and seeds the bound.
  Vector neighbour = anchor;
  neighbour[0] += 0.004;
  const SearchRequest<Vector> request =
      SearchRequest<Vector>::Knn(neighbour, 5);
  auto seeded = client->Search(request);
  ASSERT_TRUE(seeded.ok()) << seeded.status();
  EXPECT_FALSE(seeded.value().cache_hit);
  ASSERT_TRUE(seeded.value().bound_seeded)
      << "neighbour query should land in the same permutation cell";

  // Ground truth without any cache interference.
  QueryEngine<Vector> local_engine(1);
  const auto local = ts->db->RunBatch(local_engine, {request});
  ASSERT_TRUE(local.statuses[0].ok());

  // Exact results, never more distance computations than unhinted.
  ASSERT_EQ(seeded.value().results.size(), local.results[0].size());
  for (size_t r = 0; r < local.results[0].size(); ++r) {
    EXPECT_EQ(seeded.value().results[r].id, local.results[0][r].id);
    EXPECT_EQ(seeded.value().results[r].distance,
              local.results[0][r].distance);
  }
  EXPECT_LE(seeded.value().stats.distance_computations,
            local.per_query_distance_computations[0]);
  const PermCacheStore* store = ts->server->cache_store();
  ASSERT_NE(store, nullptr);
  EXPECT_GE(store->bound_seeds(), 1u);
}

TEST(ServerE2E, GracefulShutdownPreservesWalTail) {
  storage::Env* env = storage::Env::Default();
  const std::string dir = ::testing::TempDir() + "/server_e2e_wal";
  ASSERT_TRUE(env->CreateDir(dir).ok());
  if (auto listing = env->ListDir(dir); listing.ok()) {
    for (const std::string& file : listing.value()) {
      env->DeleteFile(dir + "/" + file);
    }
  }

  const Vector outlier{9.0, 9.0, 9.0, 9.0};
  {
    auto ts = StartServer("vp-tree", 200, 4, 13, {}, dir);
    ASSERT_NE(ts, nullptr);
    auto client = Connect(*ts);
    ASSERT_NE(client, nullptr);
    auto inserted = client->Insert(outlier);
    ASSERT_TRUE(inserted.ok());
    ASSERT_TRUE(inserted.value().status.ok());
    ASSERT_TRUE(ts->db->SyncWal().ok());
    // TestServer's destructor shuts the server down gracefully; the
    // store closes with the insert only in the WAL tail.
  }

  // Reopen from disk alone: the tail must replay.
  auto reopened = StartServer("vp-tree", 0, 4, 13, {}, dir);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->db->size(), 201u);
  auto client = Connect(*reopened);
  ASSERT_NE(client, nullptr);
  auto found = client->Search(SearchRequest<Vector>::Knn(outlier, 1));
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found.value().results.size(), 1u);
  EXPECT_EQ(found.value().results[0].distance, 0.0);
}

/// Plain HTTP GET against the metrics port.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&address),
                    sizeof(address)),
            0);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

TEST(ServerE2E, MetricsEndpointServesExpositionAndStatz) {
  SearchServer<Vector>::Options options;
  options.perm_cache_capacity = 256;
  options.perm_cache_sites = 6;
  auto ts = StartServer("vp-tree", 300, 4, 14, options);
  ASSERT_NE(ts, nullptr);
  ASSERT_TRUE(ts->server->StartMetrics(0).ok());
  const uint16_t metrics_port = ts->server->metrics_port();
  ASSERT_NE(metrics_port, 0);

  auto client = Connect(*ts);
  ASSERT_NE(client, nullptr);
  const SearchRequest<Vector> request =
      SearchRequest<Vector>::Knn(Vector{0.2, 0.4, 0.6, 0.8}, 3);
  ASSERT_TRUE(client->Search(request).ok());
  ASSERT_TRUE(client->Search(request).ok());  // cache hit

  const std::string metrics = HttpGet(metrics_port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("perm_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(metrics.find("perm_cache_misses_total 1"), std::string::npos);
  EXPECT_NE(metrics.find("server_requests_total 2"), std::string::npos);
  EXPECT_NE(metrics.find("engine_queries_total"), std::string::npos);

  const std::string statz = HttpGet(metrics_port, "/statz");
  EXPECT_NE(statz.find("\"generation\": 1"), std::string::npos);
  EXPECT_NE(statz.find("\"cache_hits\": 1"), std::string::npos);
  EXPECT_NE(statz.find("\"requests\": 2"), std::string::npos);

  const std::string missing = HttpGet(metrics_port, "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
}

// ----------------------------------------------------------- LiveClock

TEST(LiveClock, AccessorsAdvanceWithoutPinning) {
  util::Rng rng(15);
  auto data = dataset::UniformCube(100, 4, &rng);
  auto opened = LiveDatabase<Vector>::Open(data, L2(), 2, "vp-tree", 15);
  ASSERT_TRUE(opened.ok());
  LiveDatabase<Vector>& db = *opened.value();

  EXPECT_EQ(db.generation_number(), 1u);
  EXPECT_EQ(db.delta_entries(), 0u);
  EXPECT_EQ(db.mutation_clock(), 0u);
  EXPECT_EQ(db.remove_clock(), 0u);

  ASSERT_TRUE(db.Insert(Vector{2.0, 2.0, 2.0, 2.0}).ok());
  EXPECT_EQ(db.delta_entries(), 1u);
  EXPECT_EQ(db.mutation_clock(), 1u);
  EXPECT_EQ(db.remove_clock(), 0u);

  ASSERT_TRUE(db.Remove(0).ok());
  EXPECT_EQ(db.delta_entries(), 2u);
  EXPECT_EQ(db.mutation_clock(), 2u);
  EXPECT_EQ(db.remove_clock(), 1u);

  // Compaction advances the generation and the mutation clock (ids
  // remap) but not the remove clock (the live point set is preserved).
  const uint64_t mutations_before = db.mutation_clock();
  ASSERT_TRUE(db.Compact().ok());
  EXPECT_EQ(db.generation_number(), 2u);
  EXPECT_EQ(db.delta_entries(), 0u);
  EXPECT_GT(db.mutation_clock(), mutations_before);
  EXPECT_EQ(db.remove_clock(), 1u);
}

TEST(LiveClock, ClocksAreMonotone) {
  util::Rng rng(16);
  auto data = dataset::UniformCube(50, 3, &rng);
  auto opened = LiveDatabase<Vector>::Open(data, L2(), 2, "linear-scan", 16);
  ASSERT_TRUE(opened.ok());
  LiveDatabase<Vector>& db = *opened.value();

  uint64_t last_mutation = db.mutation_clock();
  uint64_t last_remove = db.remove_clock();
  uint64_t last_generation = db.generation_number();
  for (int i = 0; i < 10; ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(db.Insert(Vector{1.0, 1.0, 1.0}).ok());
    } else if (i % 3 == 1) {
      ASSERT_TRUE(db.Remove(static_cast<size_t>(i)).ok());
    } else {
      ASSERT_TRUE(db.Compact().ok());
    }
    EXPECT_GE(db.mutation_clock(), last_mutation);
    EXPECT_GE(db.remove_clock(), last_remove);
    EXPECT_GE(db.generation_number(), last_generation);
    last_mutation = db.mutation_clock();
    last_remove = db.remove_clock();
    last_generation = db.generation_number();
  }
}

}  // namespace
}  // namespace server
}  // namespace distperm
