#include "dataset/doc_gen.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/status.h"

namespace distperm {
namespace dataset {

std::vector<metric::SparseVector> DocumentVectors(
    size_t n, const DocCorpusProfile& profile, util::Rng* rng) {
  DP_CHECK(profile.vocabulary >= profile.topics);
  DP_CHECK(profile.topics >= 1);
  DP_CHECK(profile.terms_per_doc >= 1);
  DP_CHECK(profile.stopword_fraction >= 0.0 &&
           profile.stopword_fraction < 1.0);

  const size_t terms_per_topic = profile.vocabulary / profile.topics;
  // Precompute the Zipf cumulative distribution over a topic's terms.
  std::vector<double> zipf_cdf(terms_per_topic);
  double total = 0.0;
  for (size_t r = 0; r < terms_per_topic; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), profile.zipf_s);
    zipf_cdf[r] = total;
  }
  for (auto& v : zipf_cdf) v /= total;
  auto zipf_rank = [&](double u) {
    size_t rank = static_cast<size_t>(
        std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), u) -
        zipf_cdf.begin());
    return rank >= terms_per_topic ? terms_per_topic - 1 : rank;
  };
  // Stopword ids live above the topical vocabulary.
  const uint32_t stopword_base = static_cast<uint32_t>(profile.vocabulary);

  std::vector<metric::SparseVector> docs;
  docs.reserve(n);
  while (docs.size() < n) {
    // 1-3 topics per document, primary topic dominant.
    size_t topic_count = 1 + static_cast<size_t>(rng->NextBounded(3));
    std::vector<size_t> topics(topic_count);
    for (auto& t : topics) {
      t = static_cast<size_t>(rng->NextBounded(profile.topics));
    }
    double spread = 1.0 + profile.length_spread *
                              (2.0 * rng->NextDouble() - 1.0);
    double stop_fraction = std::clamp(
        profile.stopword_fraction +
            profile.stopword_fraction_spread *
                (2.0 * rng->NextDouble() - 1.0),
        0.0, 0.95);
    size_t term_count = std::max<size_t>(
        4, static_cast<size_t>(
               std::lround(profile.terms_per_doc * spread)));
    std::map<uint32_t, double> terms;
    for (size_t t = 0; t < term_count; ++t) {
      if (profile.stopwords > 0 && rng->NextDouble() < stop_fraction) {
        // Zipf-weighted draw from the shared stopword pool.
        size_t rank = std::min<size_t>(
            profile.stopwords - 1,
            static_cast<size_t>(std::floor(
                std::pow(rng->NextDouble(),
                         2.0) * static_cast<double>(profile.stopwords))));
        terms[stopword_base + static_cast<uint32_t>(rank)] += 1.0;
        continue;
      }
      // Primary topic with probability ~0.7, otherwise a secondary one.
      size_t topic = topics[rng->NextDouble() < 0.7
                                ? 0
                                : rng->NextBounded(topic_count)];
      uint32_t term =
          static_cast<uint32_t>(topic * terms_per_topic +
                                zipf_rank(rng->NextDouble()));
      terms[term] += 1.0;
    }
    metric::SparseVector doc;
    doc.reserve(terms.size());
    for (const auto& [term, tf] : terms) {
      // Sub-linear tf weighting with per-document jitter.
      double jitter =
          1.0 + profile.weight_jitter * (2.0 * rng->NextDouble() - 1.0);
      doc.emplace_back(term, (1.0 + std::log(tf)) * jitter);
    }
    if (!doc.empty()) docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace dataset
}  // namespace distperm
