// Lock-free engine telemetry: counters, gauges, histograms, and the
// registry that exposes them.
//
// Design constraints, in order:
//   1. The hot path must never take a lock or touch a shared cache
//      line under contention.  Counter and Gauge shard their state
//      across cache-line-padded atomic cells indexed by a per-thread
//      slot, so concurrent writers from different threads usually hit
//      different lines; Histogram records with one relaxed fetch_add
//      into a bucket plus one sharded sum cell.  The LiveDatabase
//      zero-lock query path stays zero-lock when instrumented.
//   2. Counts are exact.  Sharding changes *where* increments land,
//      never their sum: Value() folds every cell, and a histogram's
//      bucket totals always add up to its count (regression-tested
//      under contention in tests/obs_metrics_test.cc, including the
//      TSan CI job).
//   3. Reading is rare and may be approximate in time.  Exposition
//      walks the cells with relaxed loads, so a snapshot taken while
//      writers are active is some valid interleaving, not a torn
//      value.
//
// Instruments live in a named MetricsRegistry and are created at setup
// time (GetCounter/GetGauge/GetHistogram take a mutex; the returned
// pointers are stable for the registry's lifetime and shared between
// same-name callers).  Point-in-time values owned by other components
// (queue depth, delta-log depth, pinned generations) register as
// callback gauges, evaluated at exposition time; RegisterCallback
// returns a handle the owner must unregister before it dies.
//
// Exposition: TextExposition() renders Prometheus-style lines
// (`name{label="v"} value`, histograms as cumulative `_bucket{le=...}`
// plus `_sum`/`_count`); JsonExposition() renders one JSON object with
// derived percentiles (p50/p99/p999) per histogram.
//
// This library sits at the bottom of the dependency stack (std-only,
// below util) so every layer — ThreadPool included — can record into
// it.

#ifndef DISTPERM_OBS_METRICS_H_
#define DISTPERM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace distperm {
namespace obs {

namespace internal {

/// Number of padded cells a sharded instrument spreads its writers
/// over.  A power of two so the slot mask is one AND.
inline constexpr size_t kCellCount = 16;

/// This thread's cell slot: threads are assigned round-robin on first
/// use, so up to kCellCount concurrent writers touch distinct lines.
size_t ThreadCellSlot();

/// One cache line holding one atomic; padding keeps adjacent cells of
/// the same instrument (and adjacent instruments) from false sharing.
template <typename T>
struct alignas(64) PaddedAtomic {
  std::atomic<T> value{};
};

}  // namespace internal

/// Monotonically increasing exact counter.  Add() is wait-free (one
/// relaxed fetch_add on this thread's cell); Value() folds the cells.
class Counter {
 public:
  void Add(uint64_t n) {
    cells_[internal::ThreadCellSlot()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<internal::PaddedAtomic<uint64_t>, internal::kCellCount> cells_;
};

/// Exact signed up/down gauge with the same sharded-cell layout as
/// Counter.  For values owned elsewhere (a queue depth, a log length),
/// prefer a registry callback gauge over mirroring updates here.
class Gauge {
 public:
  void Add(int64_t n) {
    cells_[internal::ThreadCellSlot()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }

  int64_t Value() const {
    int64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<internal::PaddedAtomic<int64_t>, internal::kCellCount> cells_;
};

/// Fixed-bucket log-spaced histogram: kBucketsPerDecade buckets per
/// decade from kMinValue up to kMinValue * 10^kDecades, plus an
/// underflow bucket (<= kMinValue) and an overflow bucket.  Record()
/// is lock-free: one relaxed fetch_add on the bucket plus one on a
/// sharded sum cell.  Bucket counts are exact; percentiles read out at
/// bucket resolution — with 8 buckets per decade an upper-bound
/// readout overestimates by at most a factor of 10^(1/8) (~33%).
/// The range covers seconds-scale latencies (1e-9 .. 1e9) and integer
/// magnitudes like folded delta entries with the same layout.
class Histogram {
 public:
  static constexpr double kMinValue = 1e-9;
  static constexpr size_t kBucketsPerDecade = 8;
  static constexpr size_t kDecades = 18;
  /// underflow + spanned decades + overflow
  static constexpr size_t kBucketCount = kBucketsPerDecade * kDecades + 2;

  /// Records one observation.  NaN and values <= kMinValue land in the
  /// underflow bucket; values beyond the top decade in the overflow
  /// bucket.  Exactly one bucket count and the sum advance per call.
  void Record(double value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_cells_[internal::ThreadCellSlot()].value.fetch_add(
        std::isnan(value) ? 0.0 : value, std::memory_order_relaxed);
  }

  /// Upper bound of bucket `i` (+infinity for the overflow bucket).
  static double BucketUpperBound(size_t i);

  /// Which bucket a value lands in.
  static size_t BucketIndex(double value);

  /// A point-in-time copy of the distribution, read with relaxed loads
  /// (concurrent Record()s may or may not be included; bucket totals
  /// always sum to count()).
  struct Snapshot {
    std::array<uint64_t, kBucketCount> buckets{};
    double sum = 0.0;

    uint64_t count() const;
    double mean() const;
    /// Quantile `q` in [0, 1] at bucket resolution: the upper bound of
    /// the bucket holding rank ceil(q * count) (the overflow bucket
    /// reports its finite lower edge).  0 when empty.
    double Quantile(double q) const;
  };

  Snapshot Snap() const;

 private:
  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::array<internal::PaddedAtomic<double>, internal::kCellCount>
      sum_cells_;
};

/// Named home of a component tree's instruments.  Creation and
/// exposition take a mutex; the instruments themselves stay lock-free.
/// Series names may carry Prometheus-style labels inline
/// (`engine_shard_tasks_total` or `queries_total{mode="knn"}`); the
/// histogram exposition splices its `le` label into an existing label
/// set.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::string name) : name_(std::move(name)) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named instrument.  Pointers are stable for
  /// the registry's lifetime; same-name calls return the same
  /// instrument (so two engines on one registry aggregate).  A name
  /// already bound to a different instrument kind returns nullptr.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Registers a point-in-time gauge evaluated at exposition; several
  /// callbacks under one name sum.  The callback must not call back
  /// into this registry.  Returns a handle for UnregisterCallback —
  /// the owner must unregister before anything the callback reads
  /// dies.
  uint64_t RegisterCallback(const std::string& name,
                            std::function<double()> callback);
  void UnregisterCallback(uint64_t handle);

  /// Prometheus-style text lines.  Histograms render only their
  /// populated buckets (cumulative, closed by `le="+Inf"`) to keep the
  /// output readable.
  std::string TextExposition() const;

  /// One JSON object: {"registry", "counters", "gauges",
  /// "histograms"}, each histogram with count/sum/mean/p50/p99/p999.
  std::string JsonExposition() const;

  const std::string& name() const { return name_; }

 private:
  struct CallbackEntry {
    uint64_t handle = 0;
    std::function<double()> callback;
  };

  const std::string name_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::vector<CallbackEntry>> callbacks_;
  uint64_t next_callback_handle_ = 1;
};

/// Optional instrument hooks a util::ThreadPool records into (defined
/// here so util can depend on obs without obs knowing about util).
/// Null members are skipped; wire-up happens at setup time.
struct ThreadPoolInstruments {
  Counter* tasks_submitted = nullptr;
  Counter* tasks_executed = nullptr;
  Histogram* task_seconds = nullptr;
};

}  // namespace obs
}  // namespace distperm

#endif  // DISTPERM_OBS_METRICS_H_
