#include "core/bounds.h"

#include <cmath>

#include "core/cake.h"
#include "util/status.h"

namespace distperm {
namespace core {

using util::BigUint;

BigUint HyperplanesPerBisector(int dimension, double p) {
  DP_CHECK(dimension >= 0);
  if (p == 2.0) return BigUint(1);
  if (p == 1.0) {
    // d(x,z) is one of 2^d signed linear forms; likewise d(y,z).
    return BigUint::Pow(BigUint(2), 2 * static_cast<uint64_t>(dimension));
  }
  if (std::isinf(p)) {
    // d(x,z) is one of 2d signed coordinate forms; likewise d(y,z).
    uint64_t forms = 2 * static_cast<uint64_t>(dimension);
    return BigUint(forms) * BigUint(forms);
  }
  DP_CHECK_MSG(false, "Theorem 9 covers only p in {1, 2, infinity}");
  return BigUint(0);
}

BigUint LpPermutationUpperBound(int dimension, double p, int sites) {
  DP_CHECK(sites >= 1);
  uint64_t k = static_cast<uint64_t>(sites);
  BigUint bisectors(k * (k - 1) / 2);
  BigUint cuts = bisectors * HyperplanesPerBisector(dimension, p);
  DP_CHECK_MSG(cuts.FitsUint64(), "cut count too large");
  return CakeCount(dimension, cuts.ToUint64());
}

int LpStorageBitBound(int dimension, double p, int sites) {
  BigUint bound = LpPermutationUpperBound(dimension, p, sites);
  if (bound <= BigUint(1)) return 0;
  BigUint minus_one = bound - BigUint(1);
  return static_cast<int>(minus_one.BitLength());
}

int UnrestrictedPermutationBits(int sites) {
  BigUint fact = BigUint::Factorial(static_cast<uint64_t>(sites));
  if (fact <= BigUint(1)) return 0;
  BigUint minus_one = fact - BigUint(1);
  return static_cast<int>(minus_one.BitLength());
}

}  // namespace core
}  // namespace distperm
