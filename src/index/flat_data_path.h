// Flat blocked-kernel data path for vector indexes.
//
// FlatDataPath<P> is the bridge between SearchIndex implementations and
// the contiguous storage + vectorized kernels introduced for the paper's
// Section 5 hot loops.  For P = metric::Vector with a kernel-tagged
// metric (Metric<Vector>::vector_kernel() != kNone) it packs the
// database into a dataset::FlatVectorStore at build time, precomputes
// per-row norms for the angle metric, and serves distances one row or
// one block at a time through metric/kernels.h.  For every other point
// type (or an untagged metric) it is a zero-size stub whose enabled()
// is false, so index templates keep a single code path:
//
//   if (flat_.enabled()) { ... blocked kernels ... }
//   else                 { ... scalar Metric<P> evaluations ... }
//
// Equivalence contract: because the scalar Lp/angle entry points
// delegate to the very same kernels (see kernels.h), a flat-path
// distance is bit-identical to metric_(data_[i], query), and callers
// charge exactly one distance computation per row either way — the
// paper's cost model is untouched.
//
// For L2 the path hands out *scores* (squared distances) so sqrt stays
// out of the inner loop: scores are monotone in the true distance,
// ScoreToDistance finishes the survivors, and RangeScoreBound gives a
// conservative squared-radius filter that is re-checked exactly.
//
// Memory tradeoff: a flat-enabled index holds the packed store next to
// the SearchIndex's own std::vector<P> copy (whose data() accessor and
// scalar fallback the base API guarantees) — roughly 2x the raw
// database bytes.  Deduplicating requires the base class to serve
// data() from the store and is deliberately out of scope here.

#ifndef DISTPERM_INDEX_FLAT_DATA_PATH_H_
#define DISTPERM_INDEX_FLAT_DATA_PATH_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "dataset/flat_vector_store.h"
#include "metric/cosine.h"
#include "metric/kernels.h"
#include "metric/metric.h"
#include "util/status.h"

namespace distperm {
namespace index {

/// Rows evaluated per blocked-kernel call: large enough to amortize the
/// loop setup, small enough that a block of scores stays in L1.
inline constexpr size_t kDistanceBlockRows = 256;

/// Generic stub: no flat path for non-vector point types.  All methods
/// exist so index templates compile unchanged; none may be called
/// (enabled() is always false).
template <typename P>
class FlatDataPath {
 public:
  static constexpr bool kSupported = false;

  struct QueryContext {};

  FlatDataPath() = default;
  FlatDataPath(const std::vector<P>&, const metric::Metric<P>&) {}

  bool enabled() const { return false; }
  QueryContext MakeQuery(const P&) const { return {}; }
  QueryContext MakeRowQuery(size_t) const { return {}; }
  template <typename Fn>
  void ForEachRowDistance(size_t, size_t, size_t, uint64_t*,
                          const Fn&) const {
    DP_CHECK(false);
  }
  void BlockScores(const QueryContext&, size_t, size_t, double*) const {
    DP_CHECK(false);
  }
  double RowScore(const QueryContext&, size_t) const {
    DP_CHECK(false);
    return 0.0;
  }
  double RowDistance(const QueryContext&, size_t) const {
    DP_CHECK(false);
    return 0.0;
  }
  double ChargedRowDistance(const QueryContext&, size_t, uint64_t*) const {
    DP_CHECK(false);
    return 0.0;
  }
  double RowPairDistance(size_t, size_t) const {
    DP_CHECK(false);
    return 0.0;
  }
  double ChargedRowPairDistance(size_t, size_t, uint64_t*) const {
    DP_CHECK(false);
    return 0.0;
  }
  double ScoreToDistance(double s) const { return s; }
  double RangeScoreBound(double radius) const { return radius; }
};

/// Dense-vector specialization: flat storage + blocked kernels.
template <>
class FlatDataPath<metric::Vector> {
 public:
  static constexpr bool kSupported = true;

  /// Per-query precomputation: the raw query row and, for the angle
  /// metric, its norm (computed once instead of once per pair).
  struct QueryContext {
    const double* query = nullptr;
    size_t dim = 0;
    double query_norm = 0.0;
  };

  FlatDataPath() = default;

  /// Packs `data` if the metric is kernel-tagged and the database is a
  /// non-empty, non-ragged set of dimension >= 1; otherwise stays
  /// disabled and the caller falls back to scalar evaluation.
  FlatDataPath(const std::vector<metric::Vector>& data,
               const metric::Metric<metric::Vector>& metric)
      : kind_(metric.vector_kernel()) {
    if (kind_ == metric::VectorKernelKind::kNone || data.empty()) {
      kind_ = metric::VectorKernelKind::kNone;
      return;
    }
    const size_t dim = data.front().size();
    if (dim == 0) {
      kind_ = metric::VectorKernelKind::kNone;
      return;
    }
    for (const metric::Vector& p : data) {
      if (p.size() != dim) {
        kind_ = metric::VectorKernelKind::kNone;
        return;
      }
    }
    store_ = dataset::FlatVectorStore(data);
    if (kind_ == metric::VectorKernelKind::kAngle) {
      norms_.resize(store_.size());
      for (size_t i = 0; i < store_.size(); ++i) {
        norms_[i] = std::sqrt(metric::DotRaw(store_.row(i), store_.row(i),
                                             dim));
      }
    }
  }

  bool enabled() const {
    return kind_ != metric::VectorKernelKind::kNone;
  }
  const dataset::FlatVectorStore& store() const { return store_; }

  QueryContext MakeQuery(const metric::Vector& query) const {
    DP_CHECK_MSG(query.size() == store_.dim(), "dimension mismatch");
    QueryContext ctx{query.data(), query.size(), 0.0};
    if (kind_ == metric::VectorKernelKind::kAngle) {
      ctx.query_norm =
          std::sqrt(metric::DotRaw(ctx.query, ctx.query, ctx.dim));
    }
    return ctx;
  }

  /// Query context over stored row i — the build-path counterpart of
  /// MakeQuery.  Table builds (AESA's matrix, LAESA's pivot table) use
  /// it to evaluate one stored row against whole blocks of rows;
  /// ScoreToDistance(BlockScores(...)[r]) is bit-identical to
  /// RowPairDistance(i, begin + r).
  QueryContext MakeRowQuery(size_t i) const {
    QueryContext ctx{store_.row(i), store_.dim(), 0.0};
    if (kind_ == metric::VectorKernelKind::kAngle) {
      ctx.query_norm = norms_[i];
    }
    return ctx;
  }

  /// Evaluates stored row i against every row in [begin, end), one
  /// kDistanceBlockRows block at a time: charges one distance
  /// computation per row to `counter` and calls fn(row, distance) with
  /// the true distance.  The blocked build loop shared by AESA's matrix
  /// and LAESA's pivot table; each distance is bit-identical to
  /// RowPairDistance(i, row).
  template <typename Fn>
  void ForEachRowDistance(size_t i, size_t begin, size_t end,
                          uint64_t* counter, const Fn& fn) const {
    const QueryContext ctx = MakeRowQuery(i);
    double block[kDistanceBlockRows];
    for (size_t b = begin; b < end; b += kDistanceBlockRows) {
      const size_t count = std::min(kDistanceBlockRows, end - b);
      BlockScores(ctx, b, count, block);
      *counter += count;
      for (size_t r = 0; r < count; ++r) {
        fn(b + r, ScoreToDistance(block[r]));
      }
    }
  }

  /// Scores for rows [begin, begin + count): the distance itself for
  /// L1/LInf/angle, the squared distance for L2.  Monotone in the true
  /// distance in every case.
  void BlockScores(const QueryContext& ctx, size_t begin, size_t count,
                   double* out) const {
    const double* rows = store_.row(begin);
    const size_t stride = store_.stride();
    switch (kind_) {
      case metric::VectorKernelKind::kL1:
        metric::L1Block(ctx.query, rows, count, stride, ctx.dim, out);
        break;
      case metric::VectorKernelKind::kL2:
        metric::L2sqBlock(ctx.query, rows, count, stride, ctx.dim, out);
        break;
      case metric::VectorKernelKind::kLInf:
        metric::LInfBlock(ctx.query, rows, count, stride, ctx.dim, out);
        break;
      case metric::VectorKernelKind::kAngle:
        metric::DotBlock(ctx.query, rows, count, stride, ctx.dim, out);
        for (size_t r = 0; r < count; ++r) {
          out[r] = metric::AngleFromParts(out[r], ctx.query_norm,
                                          norms_[begin + r]);
        }
        break;
      default:
        DP_CHECK(false);
    }
  }

  /// Score of a single row (same convention as BlockScores).
  double RowScore(const QueryContext& ctx, size_t i) const {
    const double* row = store_.row(i);
    switch (kind_) {
      case metric::VectorKernelKind::kL1:
        return metric::L1Raw(ctx.query, row, ctx.dim);
      case metric::VectorKernelKind::kL2:
        return metric::L2sqRaw(ctx.query, row, ctx.dim);
      case metric::VectorKernelKind::kLInf:
        return metric::LInfRaw(ctx.query, row, ctx.dim);
      case metric::VectorKernelKind::kAngle:
        return metric::AngleFromParts(
            metric::DotRaw(ctx.query, row, ctx.dim), ctx.query_norm,
            norms_[i]);
      default:
        DP_CHECK(false);
        return 0.0;
    }
  }

  /// True distance of row i to the query — bit-identical to evaluating
  /// the wrapped metric on (data[i], query).
  double RowDistance(const QueryContext& ctx, size_t i) const {
    return ScoreToDistance(RowScore(ctx, i));
  }

  /// RowDistance plus the cost-model charge: exactly one distance
  /// computation, credited to `counter` (a QueryStats field or the
  /// build counter) so call sites cannot forget the accounting.
  double ChargedRowDistance(const QueryContext& ctx, size_t i,
                            uint64_t* counter) const {
    ++*counter;
    return RowDistance(ctx, i);
  }

  /// True distance between two stored rows (build-path helper).
  double RowPairDistance(size_t i, size_t j) const {
    const double* a = store_.row(i);
    const double* b = store_.row(j);
    const size_t dim = store_.dim();
    switch (kind_) {
      case metric::VectorKernelKind::kL1:
        return metric::L1Raw(a, b, dim);
      case metric::VectorKernelKind::kL2:
        return std::sqrt(metric::L2sqRaw(a, b, dim));
      case metric::VectorKernelKind::kLInf:
        return metric::LInfRaw(a, b, dim);
      case metric::VectorKernelKind::kAngle:
        return metric::AngleFromParts(metric::DotRaw(a, b, dim), norms_[i],
                                      norms_[j]);
      default:
        DP_CHECK(false);
        return 0.0;
    }
  }

  /// RowPairDistance plus the cost-model charge (see
  /// ChargedRowDistance).
  double ChargedRowPairDistance(size_t i, size_t j,
                                uint64_t* counter) const {
    ++*counter;
    return RowPairDistance(i, j);
  }

  /// Maps a score back to the true distance (sqrt for L2).
  double ScoreToDistance(double score) const {
    return kind_ == metric::VectorKernelKind::kL2 ? std::sqrt(score)
                                                  : score;
  }

  /// Conservative score-space filter for a range query of `radius`:
  /// every row with true distance <= radius scores <= the bound, so the
  /// cheap block filter never drops a result; survivors are re-checked
  /// with the exact `ScoreToDistance(score) <= radius` predicate.  For
  /// L2 the slack covers the rounding of radius^2 and of the correctly
  /// rounded sqrt (a few ULP).
  double RangeScoreBound(double radius) const {
    if (kind_ != metric::VectorKernelKind::kL2) return radius;
    const double rr = radius * radius;
    return rr + 8.0 * (std::numeric_limits<double>::epsilon() * rr +
                       std::numeric_limits<double>::denorm_min());
  }

 private:
  metric::VectorKernelKind kind_ = metric::VectorKernelKind::kNone;
  dataset::FlatVectorStore store_;
  std::vector<double> norms_;  // per-row L2 norms; angle metric only
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_FLAT_DATA_PATH_H_
