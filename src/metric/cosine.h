// Angle ("cosine") distance on sparse document vectors.
//
// The SISAP sample databases `long` and `short` are feature vectors
// extracted from news articles, compared with the angle between vectors
// (arccos of the cosine similarity), which is a true metric on the unit
// sphere.  We reproduce that space for the synthetic document databases.

#ifndef DISTPERM_METRIC_COSINE_H_
#define DISTPERM_METRIC_COSINE_H_

#include <string>

#include "metric/metric.h"

namespace distperm {
namespace metric {

/// Dot product of two sparse vectors (both sorted by dimension id).
double SparseDot(const SparseVector& a, const SparseVector& b);

/// Euclidean norm of a sparse vector.
double SparseNorm(const SparseVector& a);

/// Angle distance in radians: arccos(cos-similarity), clamped to [0, pi].
/// Fatal if either vector has zero norm.
double AngleDistance(const SparseVector& a, const SparseVector& b);

/// Angle distance on dense vectors.
double AngleDistanceDense(const Vector& a, const Vector& b);

/// Metric wrapper for sparse angle distance.
class AngleMetric {
 public:
  double operator()(const SparseVector& a, const SparseVector& b) const {
    return AngleDistance(a, b);
  }
  std::string name() const { return "angle"; }
};

}  // namespace metric
}  // namespace distperm

#endif  // DISTPERM_METRIC_COSINE_H_
