// Permutation ranking and unranking (Lehmer codes / factorial number
// system).
//
// The storage results in the paper hinge on encoding a permutation (or an
// index into the set of permutations that actually occur) in as few bits
// as possible.  RankPermutation maps a permutation of {0..k-1} to its
// lexicographic rank in [0, k!), which is the densest possible fixed-width
// code; UnrankPermutation inverts it.

#ifndef DISTPERM_CORE_PERM_CODEC_H_
#define DISTPERM_CORE_PERM_CODEC_H_

#include <cstdint>

#include "core/distance_permutation.h"
#include "util/big_uint.h"
#include "util/status.h"

namespace distperm {
namespace core {

/// Largest k with k! representable in 64 bits (20! < 2^64 < 21!).
inline constexpr size_t kMaxRank64Sites = 20;

/// Lexicographic rank of `perm` in [0, k!).  Requires k <= 20 and that
/// `perm` is a valid permutation.  O(k log k) via a Fenwick tree.
uint64_t RankPermutation(const Permutation& perm);

/// Inverse of RankPermutation: the `rank`-th permutation of {0..k-1} in
/// lexicographic order.  Requires k <= 20 and rank < k!.
Permutation UnrankPermutation(uint64_t rank, size_t k);

/// Arbitrary-k rank over BigUint (used when k > 20).
util::BigUint RankPermutationBig(const Permutation& perm);

/// Arbitrary-k unrank over BigUint.
Permutation UnrankPermutationBig(const util::BigUint& rank, size_t k);

/// A compact hashable key for a permutation: the 64-bit Lehmer rank when
/// k <= 20, otherwise a positional byte-string hash key.  Used by the
/// distinct-permutation counters.
uint64_t PermutationKey(const Permutation& perm);

}  // namespace core
}  // namespace distperm

#endif  // DISTPERM_CORE_PERM_CODEC_H_
