// PermCache semantics: answer hits replay the cached response
// verbatim, clock tags invalidate exactly as designed (any mutation
// kills answers; only removes kill bounds), the triangle-inequality
// bound is computed exactly and is always a valid upper bound on the
// true k-th distance, LRU eviction bounds memory, and concurrent
// Lookup/Fill is race-free (the tsan CI job runs this suite).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "index/search.h"
#include "metric/lp.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "server/perm_cache.h"
#include "util/rng.h"

namespace distperm {
namespace server {
namespace {

using index::SearchRequest;
using metric::Vector;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

std::vector<Vector> CornerSites() {
  return {Vector{0.0, 0.0}, Vector{10.0, 0.0}, Vector{0.0, 10.0},
          Vector{10.0, 10.0}};
}

net::WireSearchResponse MakeResponse(std::vector<index::SearchResult> results,
                                     uint64_t generation) {
  net::WireSearchResponse response;
  response.generation = generation;
  response.stats.distance_computations = 100;
  response.results = std::move(results);
  return response;
}

TEST(PermCache, HitReplaysVerbatim) {
  PermCache<Vector> cache(L2(), {});
  cache.SetSites(CornerSites());
  ASSERT_TRUE(cache.enabled());

  const SearchRequest<Vector> request =
      SearchRequest<Vector>::Knn(Vector{1.0, 1.0}, 3);
  const CacheTags tags{7, 11, 2};

  CacheProbe miss = cache.Lookup(request, tags);
  ASSERT_TRUE(miss.eligible);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.probe_distance_computations, 4u);
  EXPECT_EQ(cache.store().misses(), 1u);

  const net::WireSearchResponse response =
      MakeResponse({{5, 0.5}, {9, 1.25}, {2, 2.0}}, 7);
  cache.Fill(miss, request, response, tags);

  CacheProbe hit = cache.Lookup(request, tags);
  ASSERT_TRUE(hit.hit);
  EXPECT_EQ(cache.store().hits(), 1u);
  EXPECT_EQ(hit.cached.generation, 7u);
  EXPECT_EQ(hit.cached.stats.distance_computations, 100u);
  ASSERT_EQ(hit.cached.results.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hit.cached.results[i].id, response.results[i].id);
    EXPECT_EQ(hit.cached.results[i].distance, response.results[i].distance);
  }
}

TEST(PermCache, DistinctRequestsDoNotCollide) {
  PermCache<Vector> cache(L2(), {});
  cache.SetSites(CornerSites());
  const CacheTags tags{1, 0, 0};
  const SearchRequest<Vector> k3 =
      SearchRequest<Vector>::Knn(Vector{1.0, 1.0}, 3);
  const SearchRequest<Vector> k5 =
      SearchRequest<Vector>::Knn(Vector{1.0, 1.0}, 5);

  CacheProbe probe = cache.Lookup(k3, tags);
  cache.Fill(probe, k3, MakeResponse({{1, 0.5}, {2, 0.6}, {3, 0.7}}, 1),
             tags);
  // Same point, different k: a different full key, so no answer hit —
  // but same mode lands nothing either since k differs in the prefix
  // key too.
  EXPECT_FALSE(cache.Lookup(k5, tags).hit);
  EXPECT_TRUE(cache.Lookup(k3, tags).hit);
}

TEST(PermCache, AnyMutationInvalidatesAnswers) {
  PermCache<Vector> cache(L2(), {});
  cache.SetSites(CornerSites());
  const SearchRequest<Vector> request =
      SearchRequest<Vector>::Knn(Vector{2.0, 3.0}, 2);

  const CacheTags filled{3, 10, 4};
  CacheProbe probe = cache.Lookup(request, filled);
  cache.Fill(probe, request, MakeResponse({{1, 0.1}, {2, 0.2}}, 3), filled);

  // An insert bumps mutation_clock only: answers die.
  const CacheTags after_insert{3, 11, 4};
  EXPECT_FALSE(cache.Lookup(request, after_insert).hit);
  EXPECT_GE(cache.store().invalidations(), 1u);

  // A compaction swap changes the generation: answers die too.
  cache.Fill(cache.Lookup(request, after_insert), request,
             MakeResponse({{1, 0.1}, {2, 0.2}}, 3), after_insert);
  const CacheTags after_swap{4, 12, 4};
  EXPECT_FALSE(cache.Lookup(request, after_swap).hit);
}

TEST(PermCache, BoundMathIsExactAndValid) {
  const metric::Metric<Vector> l2 = L2();
  PermCache<Vector> cache(l2, {});
  const std::vector<Vector> sites = CornerSites();
  cache.SetSites(sites);
  const CacheTags tags{1, 0, 0};

  // Fill from q_c with a proven k-th distance.
  const Vector cached_query{1.0, 1.0};
  const SearchRequest<Vector> cached_request =
      SearchRequest<Vector>::Knn(cached_query, 3);
  const double kth = 2.0;
  CacheProbe fill_probe = cache.Lookup(cached_request, tags);
  cache.Fill(fill_probe, cached_request,
             MakeResponse({{1, 0.5}, {2, 1.0}, {3, kth}}, 1), tags);

  // A different query in the same permutation cell seeds its bound.
  const Vector query{1.2, 0.9};
  const SearchRequest<Vector> request = SearchRequest<Vector>::Knn(query, 3);
  CacheProbe probe = cache.Lookup(request, tags);
  EXPECT_FALSE(probe.hit);
  ASSERT_TRUE(probe.bound_seeded);
  EXPECT_EQ(cache.store().bound_seeds(), 1u);

  double via_site = std::numeric_limits<double>::infinity();
  for (const Vector& site : sites) {
    via_site = std::min(via_site, l2(site, query) + l2(site, cached_query));
  }
  EXPECT_DOUBLE_EQ(probe.bound, kth + via_site);
  // Triangle-inequality validity: the bound dominates the direct path.
  EXPECT_GE(probe.bound, kth + l2(query, cached_query) - 1e-12);
}

TEST(PermCache, OnlyRemovesInvalidateBounds) {
  PermCache<Vector> cache(L2(), {});
  cache.SetSites(CornerSites());
  const SearchRequest<Vector> cached_request =
      SearchRequest<Vector>::Knn(Vector{1.0, 1.0}, 3);
  const CacheTags filled{1, 5, 2};
  cache.Fill(cache.Lookup(cached_request, filled), cached_request,
             MakeResponse({{1, 0.5}, {2, 1.0}, {3, 2.0}}, 1), filled);

  const SearchRequest<Vector> request =
      SearchRequest<Vector>::Knn(Vector{1.1, 1.0}, 3);
  // Insert + compaction (mutation/generation move, remove_clock
  // doesn't): inserts can only shrink the true k-th distance, so the
  // bound stays valid and still seeds.
  const CacheTags after_insert{2, 9, 2};
  CacheProbe seeded = cache.Lookup(request, after_insert);
  EXPECT_TRUE(seeded.bound_seeded);

  // A remove can grow the true k-th distance: the bound dies.
  const CacheTags after_remove{2, 10, 3};
  CacheProbe dropped = cache.Lookup(request, after_remove);
  EXPECT_FALSE(dropped.bound_seeded);
}

TEST(PermCache, BoundRequiresProvenKthDistance) {
  PermCache<Vector> cache(L2(), {});
  cache.SetSites(CornerSites());
  const CacheTags tags{1, 0, 0};
  const SearchRequest<Vector> request =
      SearchRequest<Vector>::Knn(Vector{1.0, 1.0}, 3);

  // Two results for k=3 (store smaller than k): no k-th distance, no
  // bound entry.
  cache.Fill(cache.Lookup(request, tags), request,
             MakeResponse({{1, 0.5}, {2, 1.0}}, 1), tags);
  const SearchRequest<Vector> neighbour =
      SearchRequest<Vector>::Knn(Vector{1.1, 1.0}, 3);
  EXPECT_FALSE(cache.Lookup(neighbour, tags).bound_seeded);

  // A truncated response proves nothing either.
  net::WireSearchResponse truncated =
      MakeResponse({{1, 0.5}, {2, 1.0}, {3, 2.0}}, 1);
  truncated.truncated = true;
  cache.Fill(cache.Lookup(request, tags), request, truncated, tags);
  EXPECT_FALSE(cache.Lookup(neighbour, tags).bound_seeded);
}

TEST(PermCache, BudgetedAndRangeQueriesSkipBounds) {
  PermCache<Vector> cache(L2(), {});
  cache.SetSites(CornerSites());
  const CacheTags tags{1, 0, 0};
  SearchRequest<Vector> budgeted =
      SearchRequest<Vector>::Knn(Vector{1.0, 1.0}, 3);
  budgeted.max_distance_computations = 50;
  CacheProbe probe = cache.Lookup(budgeted, tags);
  EXPECT_TRUE(probe.prefix_key.empty());

  const SearchRequest<Vector> range =
      SearchRequest<Vector>::Range(Vector{1.0, 1.0}, 2.5);
  EXPECT_TRUE(cache.Lookup(range, tags).prefix_key.empty());
}

TEST(PermCache, TtlExpiresEntries) {
  PermCacheStore::Options options;
  options.ttl_seconds = 1;
  PermCache<Vector> cache(L2(), options);
  cache.SetSites(CornerSites());
  const CacheTags tags{1, 0, 0};
  const SearchRequest<Vector> request =
      SearchRequest<Vector>::Knn(Vector{1.0, 1.0}, 2);
  cache.Fill(cache.Lookup(request, tags), request,
             MakeResponse({{1, 0.5}, {2, 1.0}}, 1), tags);
  EXPECT_TRUE(cache.Lookup(request, tags).hit);
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  EXPECT_FALSE(cache.Lookup(request, tags).hit);
  EXPECT_GE(cache.store().invalidations(), 1u);
}

TEST(PermCache, LruEvictionBoundsTheCache) {
  PermCacheStore::Options options;
  options.capacity = 16;
  options.shard_count = 2;
  PermCache<Vector> cache(L2(), options);
  cache.SetSites(CornerSites());
  const CacheTags tags{1, 0, 0};
  util::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const SearchRequest<Vector> request = SearchRequest<Vector>::Knn(
        Vector{rng.NextDouble() * 10.0, rng.NextDouble() * 10.0},
        1 + (i % 7));
    cache.Fill(cache.Lookup(request, tags), request,
               MakeResponse({{static_cast<size_t>(i), 0.5}}, 1), tags);
  }
  EXPECT_GT(cache.store().evictions(), 0u);
}

TEST(PermCache, DisabledBelowTwoSites) {
  PermCache<Vector> cache(L2(), {});
  cache.SetSites({Vector{0.0, 0.0}});
  EXPECT_FALSE(cache.enabled());
  const SearchRequest<Vector> request =
      SearchRequest<Vector>::Knn(Vector{1.0, 1.0}, 2);
  EXPECT_FALSE(cache.Lookup(request, CacheTags{}).eligible);
}

TEST(PermCache, ConcurrentLookupAndFillIsRaceFree) {
  PermCacheStore::Options options;
  options.capacity = 64;
  options.shard_count = 4;
  PermCache<Vector> cache(L2(), options);
  cache.SetSites(CornerSites());
  const CacheTags tags{1, 0, 0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&cache, &tags, t]() {
      util::Rng rng(1000 + t);
      for (int i = 0; i < 300; ++i) {
        const SearchRequest<Vector> request = SearchRequest<Vector>::Knn(
            Vector{rng.NextDouble() * 10.0, rng.NextDouble() * 10.0},
            1 + (i % 5));
        CacheProbe probe = cache.Lookup(request, tags);
        if (!probe.hit) {
          cache.Fill(probe, request,
                     MakeResponse({{static_cast<size_t>(i), 1.0}}, 1),
                     tags);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(cache.store().hits() + cache.store().misses(), 1200u);
}

}  // namespace
}  // namespace server
}  // namespace distperm
